//! # popan — population analysis for hierarchical data structures
//!
//! Umbrella crate for the reproduction of **Nelson & Samet, "A Population
//! Analysis for Hierarchical Data Structures" (SIGMOD 1987)**. It re-exports
//! the public API of every workspace crate so applications can depend on a
//! single crate:
//!
//! * [`core`] — the paper's contribution: transform matrices, steady-state
//!   solvers, expected distributions, aging & phasing analysis.
//! * [`spatial`] — PR quadtree/octree, bintree, point quadtree, PMR
//!   quadtree, with occupancy instrumentation.
//! * [`exthash`] — extendible hashing, the statistical baseline.
//! * [`query`] — the snapshot-serving query tier: epoch-published,
//!   Morton-packed read replicas behind the unified `Queryable` trait.
//! * [`workload`] — seeded synthetic data generators.
//! * [`engine`] — the unified experiment engine: the `Experiment` trait
//!   and the deterministic parallel trial scheduler (`POPAN_THREADS`).
//! * [`geom`] — geometric primitives.
//! * [`numeric`] — the numeric substrate (linear algebra, solvers, stats).
//! * [`experiments`] — the table/figure reproduction harness.
//!
//! ## Quickstart
//!
//! ```
//! use popan::core::{PrModel, SteadyStateSolver};
//!
//! // Expected occupancy distribution of a PR quadtree with node capacity 4.
//! let model = PrModel::quadtree(4).unwrap();
//! let steady = SteadyStateSolver::new().solve(&model).unwrap();
//! println!("distribution: {:?}", steady.distribution().proportions());
//! println!("average occupancy: {:.3}", steady.distribution().average_occupancy());
//! ```

pub use popan_core as core;
pub use popan_engine as engine;
pub use popan_experiments as experiments;
pub use popan_exthash as exthash;
pub use popan_geom as geom;
pub use popan_numeric as numeric;
pub use popan_query as query;
pub use popan_spatial as spatial;
pub use popan_workload as workload;
