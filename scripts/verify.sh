#!/usr/bin/env bash
# Full offline verification: build, test, and smoke-bench the workspace.
#
# The repo is hermetic — every dependency lives in-tree (popan-rng,
# popan-proptest, the popan-bench harness), so this script must succeed
# with no network and an empty cargo registry. CI runs it with network
# access disabled to keep that invariant honest.
set -euo pipefail
cd "$(dirname "$0")/.."

cargo build --release --offline --workspace
cargo test -q --offline --workspace
# --smoke: one iteration per bench, just proving every target runs and
# writes its target/popan-bench/BENCH_<group>.json artifact.
cargo bench -q --offline --workspace -- --smoke

echo "verify: build + test + bench smoke all green (offline)"
