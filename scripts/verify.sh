#!/usr/bin/env bash
# Full offline verification: build, test, and smoke-bench the workspace.
#
# The repo is hermetic — every dependency lives in-tree (popan-rng,
# popan-proptest, the popan-bench harness), so this script must succeed
# with no network and an empty cargo registry. CI runs it with network
# access disabled to keep that invariant honest.
set -euo pipefail
cd "$(dirname "$0")/.."

# Static invariants first (DESIGN.md §8, §14): popan-lint builds the
# whole-workspace call graph and enforces the determinism/hermeticity/
# layering rules plus the transitive taint rules before anything
# expensive runs. A reintroduced HashMap in the engine, a wall-clock
# read in a trial path, a crates.io dependency, or a new panic edge
# under a serving entry point all fail right here. Pre-existing
# findings ride in lint-baseline.json (a per-site ratchet: counts may
# only shrink); the machine-readable report is archived next to the
# bench artifacts.
mkdir -p bench
cargo run -q --release --offline -p popan-lint -- \
  --baseline lint-baseline.json --json > bench/lint-report.json || {
  cat bench/lint-report.json >&2
  echo "verify: popan-lint gate failed (report above)" >&2; exit 1; }

# Formatting and clippy gates. The toolchain components are optional in
# minimal containers; skip with a visible notice rather than failing
# the whole verification when they are absent.
if cargo fmt --version > /dev/null 2>&1; then
  cargo fmt --all --check
else
  echo "verify: NOTICE — rustfmt unavailable, skipping cargo fmt --check" >&2
fi
if cargo clippy --version > /dev/null 2>&1; then
  cargo clippy --release --offline --workspace --all-targets -- -D warnings
else
  echo "verify: NOTICE — clippy unavailable, skipping cargo clippy" >&2
fi

cargo build --release --offline --workspace
# The whole suite runs twice: once forced sequential, once on four
# engine workers. The experiment engine's contract is that the two are
# bit-identical (tests/engine_determinism.rs asserts it directly; this
# double run keeps every other test honest under parallel execution).
POPAN_THREADS=1 cargo test -q --offline --workspace
POPAN_THREADS=4 cargo test -q --offline --workspace
# Fault-injection suite: panic isolation, retry determinism, and
# checkpoint behavior, exercised explicitly (they are also part of the
# workspace runs above; this names them so a regression is unmissable).
cargo test -q --offline -p popan-engine --test fault_isolation
cargo test -q --offline -p popan-experiments --test engine_determinism
# Query-tier concurrency suite, named explicitly at both reader counts:
# the epoch-publish harness reads POPAN_THREADS for its reader pool, so
# these two runs prove the merged result log is bit-identical for 1 and
# 4 concurrent readers (plus the oracle differential + zero-alloc read
# proofs riding in the same crate).
POPAN_THREADS=1 cargo test -q --offline -p popan-query
POPAN_THREADS=4 cargo test -q --offline -p popan-query
# Batch differential suite, named at both reader counts: the
# Morton-batched serving forms must be bit-identical to the serial
# forms AND the full-scan oracle at every original query index, and a
# POPAN_THREADS-wide pool of concurrent readers running the same batch
# must agree byte-for-byte (the bottom-up build feeding these
# snapshots is covered by the same run via Snapshot::from_points).
POPAN_THREADS=1 cargo test -q --offline -p popan-query --test batch_equivalence
POPAN_THREADS=4 cargo test -q --offline -p popan-query --test batch_equivalence
# Serving-path chaos suite, named at both reader counts: scripted
# corrupt/stall/reject fault rounds must leave every reader serving the
# last-good snapshot (verified, never torn) with a quarantine log and
# health counters that match the serial oracle bit for bit, and the
# post-fault recovery publish must restore byte-identical digests.
POPAN_THREADS=1 cargo test -q --offline -p popan-query --test chaos
POPAN_THREADS=4 cargo test -q --offline -p popan-query --test chaos

# Graceful degradation: an injected panic fails one registry entry; the
# runner must exit 1 yet still produce the other artifacts.
DEGRADE_DIR=$(mktemp -d "${TMPDIR:-/tmp}/popan-degrade.XXXXXX")
trap 'rm -rf "$DEGRADE_DIR"' EXIT
set +e
POPAN_FAULTS='table1/m1:0:panic' \
  target/release/repro table1 fig1 --quick --json "$DEGRADE_DIR" > /dev/null 2>&1
degrade_status=$?
set -e
[ "$degrade_status" -eq 1 ] || {
  echo "verify: degraded repro run should exit 1, got $degrade_status" >&2; exit 1; }
grep -q '"error"' "$DEGRADE_DIR/table1.json" || {
  echo "verify: failed driver must write an error artifact" >&2; exit 1; }
grep -q '"ascii"' "$DEGRADE_DIR/fig1.json" || {
  echo "verify: surviving drivers must still produce artifacts" >&2; exit 1; }

# Kill-and-resume: abort mid-run via an injected fault, resume from the
# checkpoint, require a byte-identical JSON artifact.
bash scripts/resume_smoke.sh

# Split-tree renewal-theory driver: the regression slopes must be
# bit-identical between a sequential run and four engine workers (the
# linear fits consume engine-aggregated means, so any parallel
# nondeterminism would surface in the JSON bytes).
SPLIT_DIR=$(mktemp -d "${TMPDIR:-/tmp}/popan-split.XXXXXX")
trap 'rm -rf "$DEGRADE_DIR" "$SPLIT_DIR"' EXIT
POPAN_THREADS=1 target/release/repro split --quick --json "$SPLIT_DIR/t1" > /dev/null
POPAN_THREADS=4 target/release/repro split --quick --json "$SPLIT_DIR/t4" > /dev/null
cmp "$SPLIT_DIR/t1/split.json" "$SPLIT_DIR/t4/split.json" || {
  echo "verify: split artifact differs between 1 and 4 engine threads" >&2; exit 1; }

# --smoke: one iteration per bench, just proving every target runs and
# writes its target/popan-bench/BENCH_<group>.json artifact.
cargo bench -q --offline --workspace -- --smoke

# Archive the spatial bench artifact next to the committed trajectory.
# bench/BENCH_spatial.json holds full-run numbers (committed per PR, so
# the trajectory accumulates in history); the .smoke archive proves the
# group still runs end to end and is deterministic in name, so repeat
# verifications are idempotent.
[ -f target/popan-bench/BENCH_spatial.json ] || {
  echo "verify: bench smoke did not produce BENCH_spatial.json" >&2; exit 1; }
mkdir -p bench
cp target/popan-bench/BENCH_spatial.json bench/BENCH_spatial.smoke.json
# Same for the query tier: bench/BENCH_query.json is the committed
# full-run trajectory; the .smoke archive proves BENCH_query (including
# its pre-timing bit-identity assertion across 1/2/4 readers) still
# runs end to end.
[ -f target/popan-bench/BENCH_query.json ] || {
  echo "verify: bench smoke did not produce BENCH_query.json" >&2; exit 1; }
cp target/popan-bench/BENCH_query.json bench/BENCH_query.smoke.json
# And the split-tree group: bench/BENCH_split.json is the committed
# full-run trajectory (m-ary builds, census reads, SplitSpec transform
# derivation); the .smoke archive proves the group runs end to end.
[ -f target/popan-bench/BENCH_split.json ] || {
  echo "verify: bench smoke did not produce BENCH_split.json" >&2; exit 1; }
cp target/popan-bench/BENCH_split.json bench/BENCH_split.smoke.json
# And the self-healing group: bench/BENCH_query_faults.json is the
# committed full run (checksummed vs plain freeze — the ≤5% overhead
# record — plus verify/publish/quarantine and budgeted-query costs);
# the .smoke archive proves the group, with its pre-timing
# budget-completeness assertions, runs end to end.
[ -f target/popan-bench/BENCH_query_faults.json ] || {
  echo "verify: bench smoke did not produce BENCH_query_faults.json" >&2; exit 1; }
cp target/popan-bench/BENCH_query_faults.json bench/BENCH_query_faults.smoke.json
# And the analyzer itself: bench/BENCH_lint.json is the committed full
# run of the three analysis phases (parse / graph / rules) over the
# real tree; the .smoke archive proves the phased API still drives a
# whole-workspace analysis end to end.
[ -f target/popan-bench/BENCH_lint.json ] || {
  echo "verify: bench smoke did not produce BENCH_lint.json" >&2; exit 1; }
cp target/popan-bench/BENCH_lint.json bench/BENCH_lint.smoke.json

echo "verify: lint (baselined graph analysis, report archived) + build + test (POPAN_THREADS=1 and =4) + faults + resume + query suite + chaos suite + split bit-identity + bench smoke (BENCH_spatial, BENCH_query, BENCH_split, BENCH_query_faults, BENCH_lint archived) all green (offline)"
