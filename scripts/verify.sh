#!/usr/bin/env bash
# Full offline verification: build, test, and smoke-bench the workspace.
#
# The repo is hermetic — every dependency lives in-tree (popan-rng,
# popan-proptest, the popan-bench harness), so this script must succeed
# with no network and an empty cargo registry. CI runs it with network
# access disabled to keep that invariant honest.
set -euo pipefail
cd "$(dirname "$0")/.."

cargo build --release --offline --workspace
# The whole suite runs twice: once forced sequential, once on four
# engine workers. The experiment engine's contract is that the two are
# bit-identical (tests/engine_determinism.rs asserts it directly; this
# double run keeps every other test honest under parallel execution).
POPAN_THREADS=1 cargo test -q --offline --workspace
POPAN_THREADS=4 cargo test -q --offline --workspace
# --smoke: one iteration per bench, just proving every target runs and
# writes its target/popan-bench/BENCH_<group>.json artifact.
cargo bench -q --offline --workspace -- --smoke

echo "verify: build + test (POPAN_THREADS=1 and =4) + bench smoke all green (offline)"
