#!/usr/bin/env bash
# Kill-and-resume smoke test for the repro runner's checkpointing.
#
# Protocol:
#   1. reference: run `repro table1 --quick --json` uninterrupted;
#   2. aborted:   the same run with an injected hard abort
#      (POPAN_FAULTS=...:abort simulates kill -9 mid-run) and a
#      checkpoint directory — it must die with the abort exit code (86);
#   3. resumed:   re-run with --resume pointing at the same directory —
#      it must finish, loading the checkpointed trials;
#   4. the resumed JSON artifact must be byte-identical to the reference.
#
# Run after `cargo build --release` (verify.sh does); uses the release
# binary directly so an injected abort kills repro, not cargo.
set -euo pipefail
cd "$(dirname "$0")/.."

REPRO=target/release/repro
[ -x "$REPRO" ] || { echo "resume_smoke: $REPRO missing; build first" >&2; exit 1; }

WORK=$(mktemp -d "${TMPDIR:-/tmp}/popan-resume-smoke.XXXXXX")
trap 'rm -rf "$WORK"' EXIT

# 1. Reference run, no faults, no checkpoint.
"$REPRO" table1 --quick --json "$WORK/ref" > /dev/null

# 2. Aborted run: trial 2 of table1/m2 hard-exits the process. Trials
#    completed before the abort are already flushed to the checkpoint.
set +e
POPAN_FAULTS='table1/m2:2:abort' \
  "$REPRO" table1 --quick --json "$WORK/aborted" --resume "$WORK/ckpt" > /dev/null 2>"$WORK/abort.log"
status=$?
set -e
if [ "$status" -ne 86 ]; then
  echo "resume_smoke: expected abort exit code 86, got $status" >&2
  cat "$WORK/abort.log" >&2
  exit 1
fi
if ! ls "$WORK"/ckpt/*.jsonl > /dev/null 2>&1; then
  echo "resume_smoke: aborted run left no checkpoint files" >&2
  exit 1
fi

# 3. Resume: no faults this time; checkpointed trials are loaded, the
#    rest run fresh.
"$REPRO" table1 --quick --json "$WORK/res" --resume "$WORK/ckpt" > /dev/null

# 4. Byte-identical artifact.
if ! cmp -s "$WORK/ref/table1.json" "$WORK/res/table1.json"; then
  echo "resume_smoke: resumed artifact differs from the uninterrupted run" >&2
  diff "$WORK/ref/table1.json" "$WORK/res/table1.json" >&2 || true
  exit 1
fi

echo "resume_smoke: abort(86) -> resume -> byte-identical artifact"
