//! End-to-end integration: model → solver → data structure → measurement.
//!
//! These tests exercise the full pipeline across crates: build the
//! analytic model in `popan-core`, solve it, generate workloads with
//! `popan-workload`, build trees with `popan-spatial`, and check that the
//! prediction describes the measurement the way the paper reports.

use popan::core::{PrModel, SolveMethod, SteadyStateSolver};
use popan::geom::Rect;
use popan::spatial::PrQuadtree;
use popan::workload::points::{PointSource, UniformRect};
use popan::workload::TrialRunner;

/// Builds the paper's experimental estimate for one capacity.
fn measured_distribution(capacity: usize, trials: usize, points: usize, seed: u64) -> Vec<f64> {
    let runner = TrialRunner::new(seed, trials);
    let source = UniformRect::unit();
    let vectors: Vec<Vec<f64>> = runner.run(|_, rng| {
        let tree = PrQuadtree::build(Rect::unit(), capacity, source.sample_n(rng, points))
            .expect("points in region");
        tree.occupancy_profile().proportions(capacity)
    });
    popan::numeric::stats::mean_vector(&vectors).expect("equal lengths")
}

#[test]
fn theory_predicts_measurement_for_small_capacities() {
    for capacity in 1..=4 {
        let model = PrModel::quadtree(capacity).unwrap();
        let steady = SteadyStateSolver::new().solve(&model).unwrap();
        let theory = steady.distribution();
        let measured = measured_distribution(capacity, 8, 1000, 0xe2e ^ capacity as u64);
        // Componentwise within 0.08 — the paper's own theory/experiment
        // gaps (Table 1) reach ~0.06.
        for (i, (&m, &t)) in measured.iter().zip(theory.proportions()).enumerate() {
            assert!(
                (m - t).abs() < 0.08,
                "m={capacity}, class {i}: measured {m:.3} vs theory {t:.3}"
            );
        }
    }
}

#[test]
fn m1_split_is_near_53_47() {
    // The paper: "approximately 53% empty and 47% full nodes" vs the
    // model's (1/2, 1/2).
    let measured = measured_distribution(1, 10, 1000, 0x5347);
    assert!(
        (measured[0] - 0.53).abs() < 0.03,
        "empty fraction {:.3}",
        measured[0]
    );
    assert!(
        measured[0] > 0.5,
        "experiment must show MORE empty nodes than the model's 1/2 (aging)"
    );
}

#[test]
fn both_solver_methods_agree_with_measurement() {
    let model = PrModel::quadtree(3).unwrap();
    let fp = SteadyStateSolver::new()
        .method(SolveMethod::FixedPoint)
        .solve(&model)
        .unwrap();
    let nt = SteadyStateSolver::new()
        .method(SolveMethod::Newton)
        .solve(&model)
        .unwrap();
    assert!(
        fp.distribution().max_abs_diff(nt.distribution()).unwrap() < 1e-10,
        "solver cross-check"
    );
    let measured = measured_distribution(3, 6, 1000, 0xabc);
    let theory_avg = fp.distribution().average_occupancy();
    let measured_avg: f64 = measured
        .iter()
        .enumerate()
        .map(|(i, &p)| i as f64 * p)
        .sum();
    let pd = 100.0 * (theory_avg - measured_avg) / measured_avg;
    // The paper's Table 2 band for m=3 is ~13%; allow noise around it.
    assert!((2.0..25.0).contains(&pd), "percent difference {pd:.1}");
}

#[test]
fn analytic_numeric_and_measured_m1_line_up() {
    let analytic = popan::core::analytic::simple_pr_distribution();
    let model = PrModel::quadtree(1).unwrap();
    let numeric = SteadyStateSolver::new().solve(&model).unwrap();
    assert!(numeric.distribution().max_abs_diff(&analytic).unwrap() < 1e-10);
    let measured = measured_distribution(1, 8, 1000, 0x111);
    assert!((measured[0] - analytic.proportion(0)).abs() < 0.06);
}

#[test]
fn count_dynamics_tree_and_solver_triangulate() {
    // Three independent routes to the same occupancy mix:
    // solver fixed point, mean-field count dynamics, and (approximately,
    // aging aside) real trees.
    let model = PrModel::quadtree(2).unwrap();
    let steady = SteadyStateSolver::new().solve(&model).unwrap();
    let mut dynamics = popan::core::dynamics::CountDynamics::new(&model).unwrap();
    dynamics.run(50_000).unwrap();
    assert!(
        dynamics
            .distribution()
            .unwrap()
            .max_abs_diff(steady.distribution())
            .unwrap()
            < 5e-3
    );
    let measured = measured_distribution(2, 6, 1000, 0x3f);
    for (i, &m) in measured.iter().enumerate() {
        assert!(
            (m - steady.distribution().proportion(i)).abs() < 0.07,
            "class {i}"
        );
    }
}

#[test]
fn deeper_trees_do_not_change_the_mix() {
    // The steady state is size-free: 4000-point trees show the same mix
    // as 1000-point trees up to phasing wobble.
    let a = measured_distribution(2, 5, 1000, 0xd0);
    let b = measured_distribution(2, 5, 4000, 0xd1);
    for i in 0..3 {
        assert!(
            (a[i] - b[i]).abs() < 0.07,
            "class {i}: {0:.3} vs {1:.3}",
            a[i],
            b[i]
        );
    }
}
