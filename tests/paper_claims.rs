//! The paper's headline claims, asserted against this implementation.
//!
//! Each test names the claim (section/table) it checks. These are the
//! "shape" assertions of the reproduction: who wins, in which direction,
//! with what periodicity — not bit-exact 1987 numbers.

use popan::core::aging::newborn_average_occupancy;
use popan::core::phasing::analyze_phasing;
use popan::core::{PopulationModel, PrModel, SteadyStateSolver};
use popan::experiments::table45::{run_ladder, Workload};
use popan::experiments::{table2, table3, ExperimentConfig};

fn cfg(trials: usize) -> ExperimentConfig {
    ExperimentConfig {
        trials,
        ..ExperimentConfig::paper()
    }
}

/// §III: the m = 1 model solves to (1/2, 1/2) and the transform matrix is
/// t₀ = (0,1), t₁ = (3,2).
#[test]
fn claim_section3_worked_example() {
    let model = PrModel::quadtree(1).unwrap();
    let t = model.transform_matrix();
    assert_eq!(t.row(0).as_slice(), &[0.0, 1.0]);
    assert!((t.row(1)[0] - 3.0).abs() < 1e-12);
    assert!((t.row(1)[1] - 2.0).abs() < 1e-12);
    let e = SteadyStateSolver::new().solve(&model).unwrap();
    assert!((e.distribution().proportion(0) - 0.5).abs() < 1e-10);
}

/// Table 2, trend 1: "the theoretical occupancy predictions are slightly,
/// but uniformly higher than the experimental values".
#[test]
fn claim_table2_uniform_overprediction() {
    for row in table2::run(&cfg(5), 8) {
        assert!(
            row.theoretical > row.experimental,
            "m={}: {} !> {}",
            row.capacity,
            row.theoretical,
            row.experimental
        );
    }
}

/// Table 3: occupancy decreases with depth toward the newborn value
/// (0.4 for m = 1), with the truncation-depth artifact bouncing back up.
#[test]
fn claim_table3_aging_gradient() {
    let model = PrModel::quadtree(1).unwrap();
    assert!((newborn_average_occupancy(&model) - 0.4).abs() < 1e-12);
    let rows = table3::run(&cfg(5));
    let populated: Vec<_> = rows.iter().filter(|r| r.n0 + r.n1 > 30.0).collect();
    assert!(populated.len() >= 3);
    assert!(
        populated.first().unwrap().occupancy > populated.last().unwrap().occupancy,
        "occupancy must fall from shallow to deep"
    );
}

/// Table 4 / Figure 2: uniform workload oscillates with period ×4 in N
/// and does not damp.
#[test]
fn claim_table4_sustained_phasing() {
    let ladder: Vec<usize> = (0..13)
        .map(|k| (64.0 * 2f64.powf(k as f64 / 2.0)).round() as usize)
        .collect();
    let rows = run_ladder(&cfg(6), Workload::Uniform, &ladder);
    let series: Vec<f64> = rows.iter().map(|r| r.occupancy).collect();
    let report = analyze_phasing(&series, 4, 2f64.sqrt()).unwrap();
    assert_eq!(report.period_samples, 4);
    assert!(report.oscillates(0.2), "{:?}", report.metrics);
    assert!(!report.is_damped(0.4), "damping {}", report.damping);
}

/// Table 5 / Figure 3: the Gaussian workload's oscillation damps.
#[test]
fn claim_table5_gaussian_damps() {
    let ladder: Vec<usize> = (0..13)
        .map(|k| (64.0 * 2f64.powf(k as f64 / 2.0)).round() as usize)
        .collect();
    let uniform = run_ladder(&cfg(6), Workload::Uniform, &ladder);
    let gauss = run_ladder(&cfg(6), Workload::Gaussian, &ladder);
    let late_swing = |rows: &[popan::experiments::table45::SizeSweepRow]| -> f64 {
        let series: Vec<f64> = rows.iter().map(|r| r.occupancy).collect();
        let r = analyze_phasing(&series, 4, 2f64.sqrt()).unwrap();
        r.metrics.amplitude - r.damping
    };
    assert!(
        late_swing(&gauss) < late_swing(&uniform),
        "gaussian late swing {} vs uniform {}",
        late_swing(&gauss),
        late_swing(&uniform)
    );
}

/// §II: the statistical limit d⃗_N does not settle — consecutive ladder
/// points keep moving by a non-vanishing amount under uniform data.
#[test]
fn claim_no_statistical_limit_under_uniform() {
    let ladder: Vec<usize> = (0..13)
        .map(|k| (64.0 * 2f64.powf(k as f64 / 2.0)).round() as usize)
        .collect();
    let rows = run_ladder(&cfg(6), Workload::Uniform, &ladder);
    // Late-series successive differences stay macroscopic.
    let late: Vec<f64> = rows.iter().rev().take(5).map(|r| r.occupancy).collect();
    let max_step = late
        .windows(2)
        .map(|w| (w[1] - w[0]).abs())
        .fold(0.0f64, f64::max);
    assert!(
        max_step > 0.15,
        "occupancy keeps oscillating late in the series (max step {max_step})"
    );
}

/// §V: the method needs only local probabilities — the PMR model built
/// purely from local Monte-Carlo agrees with full-tree simulation.
#[test]
fn claim_pmr_agrees_well() {
    let result = popan::experiments::pmr_exp::run(&cfg(4), 4, 500);
    let rel =
        (result.theory_occupancy - result.experiment_occupancy).abs() / result.experiment_occupancy;
    assert!(
        rel < 0.15,
        "PMR model {} vs simulation {} (rel {rel:.3})",
        result.theory_occupancy,
        result.experiment_occupancy
    );
}

/// The Fagin et al. connection: extendible hashing shows the same
/// phenomenon class (utilization oscillating around ln 2).
#[test]
fn claim_fagin_baseline_utilization() {
    let rows = popan::experiments::exthash_exp::run(&cfg(4));
    let mean: f64 = rows.iter().map(|r| r.utilization).sum::<f64>() / rows.len() as f64;
    assert!((mean - std::f64::consts::LN_2).abs() < 0.04, "mean {mean}");
}
