//! Cross-structure integration: the generalized model against every
//! substrate at once, plus structural identities that tie the crates
//! together.

use popan::core::{PrModel, SteadyStateSolver};
use popan::exthash::{fagin, ExtendibleHashTable};
use popan::geom::{Aabb3, Rect};
use popan::spatial::{Bintree, OccupancyInstrumented, PrOctree, PrQuadtree};
use popan::workload::keys::UniformKeys;
use popan::workload::points::{PointSource, UniformCube, UniformRect};
use popan::workload::TrialRunner;

fn theory_occupancy(branching: usize, capacity: usize) -> f64 {
    let model = PrModel::with_branching(branching, capacity).unwrap();
    SteadyStateSolver::new()
        .solve(&model)
        .unwrap()
        .distribution()
        .average_occupancy()
}

#[test]
fn occupancy_ordering_bintree_quadtree_octree() {
    // Theory: occupancy falls with branching factor; measurements agree
    // structure by structure.
    let capacity = 3;
    let runner = TrialRunner::new(0xc5, 4);
    let bt: f64 = runner.run_mean(|_, rng| {
        Bintree::build(
            Rect::unit(),
            capacity,
            UniformRect::unit().sample_n(rng, 1200),
        )
        .unwrap()
        .occupancy_profile()
        .average_occupancy()
    });
    let qt: f64 = runner.run_mean(|_, rng| {
        PrQuadtree::build(
            Rect::unit(),
            capacity,
            UniformRect::unit().sample_n(rng, 1200),
        )
        .unwrap()
        .occupancy_profile()
        .average_occupancy()
    });
    let ot: f64 = runner.run_mean(|_, rng| {
        PrOctree::build(
            Aabb3::unit(),
            capacity,
            UniformCube::unit().sample_n(rng, 1200),
        )
        .unwrap()
        .occupancy_profile()
        .average_occupancy()
    });
    assert!(
        bt > qt && qt > ot,
        "measured: bt {bt:.2}, qt {qt:.2}, ot {ot:.2}"
    );
    let (tb, tq, to) = (
        theory_occupancy(2, capacity),
        theory_occupancy(4, capacity),
        theory_occupancy(8, capacity),
    );
    assert!(tb > tq && tq > to, "theory: {tb:.2}, {tq:.2}, {to:.2}");
}

#[test]
fn node_count_identities_hold_across_structures() {
    let mut rng = TrialRunner::new(0x1d, 1).rng_for_trial(0);
    let pts = UniformRect::unit().sample_n(&mut rng, 700);

    let qt = PrQuadtree::build(Rect::unit(), 1, pts.iter().copied()).unwrap();
    let internal = qt.node_count() - qt.leaf_count();
    assert_eq!(qt.leaf_count(), 3 * internal + 1, "4-ary identity");

    let bt = Bintree::build(Rect::unit(), 1, pts.iter().copied()).unwrap();
    let internal = bt.node_count() - bt.leaf_count();
    assert_eq!(bt.leaf_count(), internal + 1, "binary identity");

    let pts3 = UniformCube::unit().sample_n(&mut rng, 700);
    let ot = PrOctree::build(Aabb3::unit(), 1, pts3).unwrap();
    let internal = ot.node_count() - ot.leaf_count();
    assert_eq!(ot.leaf_count(), 7 * internal + 1, "8-ary identity");
}

#[test]
fn model_average_occupancy_against_every_structure() {
    // Theory tracks measurement for every branching factor, with a band
    // wide enough for the systematic part of the gap: aging (PAPER.md §1:
    // "theory slightly over-predicts average occupancy") grows with b,
    // and for the octree at m = 4 the converged bias is ≈ 39% (measured
    // over 32 trials), so the band is 45%. Exact bands are asserted in
    // the dims experiment with cycle averaging.
    let capacity = 4;
    let runner = TrialRunner::new(0xac, 4);
    let measured: [(usize, f64); 3] = [
        (
            2,
            runner.run_mean(|_, rng| {
                Bintree::build(
                    Rect::unit(),
                    capacity,
                    UniformRect::unit().sample_n(rng, 2000),
                )
                .unwrap()
                .occupancy_profile()
                .average_occupancy()
            }),
        ),
        (
            4,
            runner.run_mean(|_, rng| {
                PrQuadtree::build(
                    Rect::unit(),
                    capacity,
                    UniformRect::unit().sample_n(rng, 2000),
                )
                .unwrap()
                .occupancy_profile()
                .average_occupancy()
            }),
        ),
        (
            8,
            runner.run_mean(|_, rng| {
                PrOctree::build(
                    Aabb3::unit(),
                    capacity,
                    UniformCube::unit().sample_n(rng, 2000),
                )
                .unwrap()
                .occupancy_profile()
                .average_occupancy()
            }),
        ),
    ];
    for (b, occ) in measured {
        let thy = theory_occupancy(b, capacity);
        let rel = (thy - occ).abs() / occ;
        assert!(rel < 0.45, "b={b}: theory {thy:.3} vs measured {occ:.3}");
    }
}

#[test]
fn exthash_and_quadtree_show_the_same_phenomenon_class() {
    // Both bucketing disciplines run at partial utilization with the gap
    // explained by their splitting statistics: extendible hashing near
    // ln 2 ≈ 0.69, the m=8 PR quadtree near 0.47 (measured).
    let mut table = ExtendibleHashTable::new(8).unwrap();
    let mut rng = TrialRunner::new(0xef, 1).rng_for_trial(0);
    for k in UniformKeys.sample_n(&mut rng, 8000) {
        table.insert(k);
    }
    assert!((table.utilization() - fagin::expected_utilization()).abs() < 0.06);

    let tree = PrQuadtree::build(
        Rect::unit(),
        8,
        UniformRect::unit().sample_n(&mut rng, 8000),
    )
    .unwrap();
    let u = tree.occupancy_profile().utilization(8);
    assert!((0.38..=0.56).contains(&u), "quadtree utilization {u}");
    assert!(
        table.utilization() > u,
        "hashing (splits in 2) beats the quadtree (splits in 4) on utilization"
    );
}

#[test]
fn pmr_and_pr_disagree_in_the_expected_direction() {
    // PR leaves never exceed capacity; PMR leaves may (split-once rule).
    let mut rng = TrialRunner::new(0x9e, 1).rng_for_trial(0);
    let pts = UniformRect::unit().sample_n(&mut rng, 1500);
    let pr = PrQuadtree::build(Rect::unit(), 4, pts).unwrap();
    assert!(pr.occupancy_profile().max_occupancy() <= 4);

    use popan::workload::lines::{SegmentSource, UniformEndpoints};
    let segs = UniformEndpoints::unit().sample_n(&mut rng, 300);
    let pmr = popan::spatial::PmrQuadtree::build(Rect::unit(), 4, segs).unwrap();
    assert!(
        pmr.occupancy_profile().max_occupancy() > 4,
        "PMR must show occupancies above the threshold"
    );
}
