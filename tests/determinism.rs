//! Reproducibility: everything in the suite is a pure function of its
//! seed. These tests pin that property across crate boundaries — if any
//! component starts consuming ambient randomness or iteration order, the
//! published EXPERIMENTS.md numbers would silently drift.

use popan::experiments::table45::{run_ladder, Workload};
use popan::experiments::{table1, ExperimentConfig};
use popan::geom::Rect;
use popan::spatial::{OccupancyInstrumented, PrQuadtree};
use popan::workload::points::{PointSource, UniformRect};
use popan::workload::TrialRunner;

fn cfg(seed: u64) -> ExperimentConfig {
    ExperimentConfig {
        master_seed: seed,
        trials: 3,
        points: 300,
    }
}

#[test]
fn table1_is_seed_deterministic() {
    let a = table1::run_capacity(&cfg(7), 2);
    let b = table1::run_capacity(&cfg(7), 2);
    assert_eq!(a.experiment, b.experiment);
    assert_eq!(a.theory, b.theory);
    let c = table1::run_capacity(&cfg(8), 2);
    assert_ne!(a.experiment, c.experiment, "different seeds must differ");
}

#[test]
fn sweeps_are_seed_deterministic() {
    let ladder = [64usize, 128, 256];
    let a = run_ladder(&cfg(3), Workload::Gaussian, &ladder);
    let b = run_ladder(&cfg(3), Workload::Gaussian, &ladder);
    for (x, y) in a.iter().zip(&b) {
        assert_eq!(x.nodes, y.nodes);
        assert_eq!(x.occupancy, y.occupancy);
    }
}

#[test]
fn trees_from_identical_streams_are_identical() {
    let build = || {
        let mut rng = TrialRunner::new(42, 1).rng_for_trial(0);
        let pts = UniformRect::unit().sample_n(&mut rng, 500);
        PrQuadtree::build(Rect::unit(), 2, pts).unwrap()
    };
    let a = build();
    let b = build();
    assert_eq!(a.node_count(), b.node_count());
    assert_eq!(a.leaf_records(), b.leaf_records());
    assert_eq!(a.points(), b.points());
}

#[test]
fn pmr_model_estimation_is_seed_deterministic() {
    use popan::core::pmr_model::{PmrModel, RandomChords};
    use popan::core::PopulationModel;
    let a = PmrModel::estimate(2, 4, &RandomChords, 1000, 5).unwrap();
    let b = PmrModel::estimate(2, 4, &RandomChords, 1000, 5).unwrap();
    assert_eq!(a.transform_matrix().matrix(), b.transform_matrix().matrix());
}

#[test]
fn solver_is_fully_deterministic() {
    use popan::core::{PrModel, SteadyStateSolver};
    let model = PrModel::quadtree(6).unwrap();
    let a = SteadyStateSolver::new().solve(&model).unwrap();
    let b = SteadyStateSolver::new().solve(&model).unwrap();
    assert_eq!(a.distribution().proportions(), b.distribution().proportions());
    assert_eq!(a.diagnostics().iterations, b.diagnostics().iterations);
}
