//! Reproducibility: everything in the suite is a pure function of its
//! seed. These tests pin that property across crate boundaries — if any
//! component starts consuming ambient randomness or iteration order, the
//! published EXPERIMENTS.md numbers would silently drift.

use popan::experiments::table45::{run_ladder, Workload};
use popan::experiments::{table1, ExperimentConfig};
use popan::exthash::gridfile::GridFile;
use popan::geom::{Aabb3, Rect};
use popan::spatial::{OccupancyInstrumented, PrOctree, PrQuadtree};
use popan::workload::points::{PointSource, UniformCube, UniformRect};
use popan::workload::TrialRunner;

/// Bit-level equality for f64 sequences: `assert_eq!` on floats tolerates
/// `-0.0 == 0.0`; reproducibility demands identical bit patterns.
fn assert_bits_eq(a: &[f64], b: &[f64], what: &str) {
    assert_eq!(a.len(), b.len(), "{what}: length mismatch");
    for (i, (x, y)) in a.iter().zip(b).enumerate() {
        assert_eq!(
            x.to_bits(),
            y.to_bits(),
            "{what}[{i}]: {x:.17e} vs {y:.17e}"
        );
    }
}

fn cfg(seed: u64) -> ExperimentConfig {
    ExperimentConfig {
        master_seed: seed,
        trials: 3,
        points: 300,
    }
}

#[test]
fn table1_is_seed_deterministic() {
    let a = table1::run_capacity(&cfg(7), 2);
    let b = table1::run_capacity(&cfg(7), 2);
    assert_eq!(a.experiment, b.experiment);
    assert_eq!(a.theory, b.theory);
    let c = table1::run_capacity(&cfg(8), 2);
    assert_ne!(a.experiment, c.experiment, "different seeds must differ");
}

#[test]
fn sweeps_are_seed_deterministic() {
    let ladder = [64usize, 128, 256];
    let a = run_ladder(&cfg(3), Workload::Gaussian, &ladder);
    let b = run_ladder(&cfg(3), Workload::Gaussian, &ladder);
    for (x, y) in a.iter().zip(&b) {
        assert_eq!(x.nodes, y.nodes);
        assert_eq!(x.occupancy, y.occupancy);
    }
}

#[test]
fn full_table1_pipeline_is_bit_identical_at_paper_scale() {
    // The paper's Table 1 protocol — 10 trees × 1000 uniform points per
    // capacity — run twice from master seed 42 must agree to the last
    // bit, theory and experiment columns alike.
    let cfg = ExperimentConfig {
        master_seed: 42,
        trials: 10,
        points: 1000,
    };
    let a = table1::run(&cfg, 8);
    let b = table1::run(&cfg, 8);
    assert_eq!(a.len(), b.len());
    for (ra, rb) in a.iter().zip(&b) {
        assert_eq!(ra.capacity, rb.capacity);
        assert_bits_eq(&ra.theory, &rb.theory, "theory");
        assert_bits_eq(&ra.experiment, &rb.experiment, "experiment");
        assert_eq!(
            ra.trial_spread.to_bits(),
            rb.trial_spread.to_bits(),
            "trial_spread"
        );
    }
}

#[test]
fn octrees_from_identical_streams_are_identical() {
    let build = || {
        let mut rng = TrialRunner::new(42, 1).rng_for_trial(0);
        let pts = UniformCube::unit().sample_n(&mut rng, 500);
        PrOctree::build(Aabb3::unit(), 2, pts).unwrap()
    };
    let a = build();
    let b = build();
    assert_eq!(a.node_count(), b.node_count());
    assert_eq!(a.leaf_count(), b.leaf_count());
    assert_bits_eq(
        &a.occupancy_profile().proportions(2),
        &b.occupancy_profile().proportions(2),
        "octree occupancy",
    );
}

#[test]
fn grid_files_from_identical_streams_are_identical() {
    let build = || {
        let mut rng = TrialRunner::new(42, 1).rng_for_trial(0);
        let mut grid = GridFile::new(Rect::unit(), 4).unwrap();
        for p in UniformRect::unit().sample_n(&mut rng, 1000) {
            grid.insert(p).unwrap();
        }
        grid
    };
    let a = build();
    let b = build();
    assert_eq!(a.len(), b.len());
    assert_eq!((a.nx(), a.ny()), (b.nx(), b.ny()));
    assert_eq!(a.bucket_count(), b.bucket_count());
    assert_eq!(a.cell_count(), b.cell_count());
    assert_eq!(a.utilization().to_bits(), b.utilization().to_bits());
}

#[test]
fn trees_from_identical_streams_are_identical() {
    let build = || {
        let mut rng = TrialRunner::new(42, 1).rng_for_trial(0);
        let pts = UniformRect::unit().sample_n(&mut rng, 500);
        PrQuadtree::build(Rect::unit(), 2, pts).unwrap()
    };
    let a = build();
    let b = build();
    assert_eq!(a.node_count(), b.node_count());
    assert_eq!(a.leaf_records(), b.leaf_records());
    assert_eq!(a.points(), b.points());
}

#[test]
fn pmr_model_estimation_is_seed_deterministic() {
    use popan::core::pmr_model::{PmrModel, RandomChords};
    use popan::core::PopulationModel;
    let a = PmrModel::estimate(2, 4, &RandomChords, 1000, 5).unwrap();
    let b = PmrModel::estimate(2, 4, &RandomChords, 1000, 5).unwrap();
    assert_eq!(a.transform_matrix().matrix(), b.transform_matrix().matrix());
}

#[test]
fn solver_is_fully_deterministic() {
    use popan::core::{PrModel, SteadyStateSolver};
    let model = PrModel::quadtree(6).unwrap();
    let a = SteadyStateSolver::new().solve(&model).unwrap();
    let b = SteadyStateSolver::new().solve(&model).unwrap();
    assert_eq!(
        a.distribution().proportions(),
        b.distribution().proportions()
    );
    assert_eq!(a.diagnostics().iterations, b.diagnostics().iterations);
}
