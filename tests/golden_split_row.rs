//! Golden-value tests for the PR-quadtree split row.
//!
//! The paper's closed form for the `b = 4` split row is
//!
//! ```text
//! T_{m,i} = C(m+1, i) · 3^{m+1−i} / (4^m − 1),   i = 0..=m
//! ```
//!
//! These tests recompute the expected values *independently* of the
//! library — in exact `u128` integer arithmetic, converted to `f64` only
//! at the very end — and pin both the closed-form accessor and the
//! transform-matrix rows against them to 1e-12, for capacities well past
//! the paper's `m ≤ 8` range.

use popan::core::{PopulationModel, PrModel};

/// Exact binomial coefficient. Each step `acc·(n−j)/(j+1)` is an exact
/// integer because `acc` is `C(n, j)` and `C(n, j+1) = C(n,j)(n−j)/(j+1)`.
fn binomial_u128(n: u64, k: u64) -> u128 {
    let k = k.min(n - k);
    let mut acc: u128 = 1;
    for j in 0..k {
        acc = acc * (n - j) as u128 / (j as u128 + 1);
    }
    acc
}

fn pow_u128(base: u128, exp: u32) -> u128 {
    let mut acc: u128 = 1;
    for _ in 0..exp {
        acc *= base;
    }
    acc
}

/// `T_{m,i}` from exact integers: `C(m+1,i)·3^{m+1−i}/(4^m − 1)`.
fn golden_split_entry(m: u64, i: u64) -> f64 {
    let numer = binomial_u128(m + 1, i) * pow_u128(3, (m + 1 - i) as u32);
    let denom = pow_u128(4, m as u32) - 1;
    numer as f64 / denom as f64
}

const CAPACITIES: [usize; 6] = [1, 2, 4, 8, 16, 32];

#[test]
fn split_row_matches_exact_integer_golden_values() {
    for &m in &CAPACITIES {
        let model = PrModel::quadtree(m).unwrap();
        let row = model.transform_matrix().row(m);
        for i in 0..=m {
            let want = golden_split_entry(m as u64, i as u64);
            let closed = model.split_row_closed_form(i);
            assert!(
                (closed - want).abs() < 1e-12,
                "closed form m={m} i={i}: {closed:.17e} vs golden {want:.17e}"
            );
            assert!(
                (row[i] - want).abs() < 1e-12,
                "transform row m={m} i={i}: {:.17e} vs golden {want:.17e}",
                row[i]
            );
        }
    }
}

#[test]
fn paper_m1_split_row_is_3_2() {
    // §III worked example: t_1 = (3, 2) — three empty children and two
    // singletons per split, on average, once re-splits are resummed.
    assert_eq!(golden_split_entry(1, 0), 3.0);
    assert_eq!(golden_split_entry(1, 1), 2.0);
}

#[test]
fn every_row_sums_to_its_node_count_growth_factor() {
    // Inserting into a non-full node leaves the node count unchanged
    // (rows 0..m are shifts, factor exactly 1); splitting a full node
    // replaces it with (4^{m+1} − 1)/(4^m − 1) nodes on average (the
    // resummed 1 + 4 + 4·4^{-m} + … series).
    for &m in &CAPACITIES {
        let model = PrModel::quadtree(m).unwrap();
        let sums = model.transform_matrix().row_sums();
        for (i, &s) in sums.iter().enumerate().take(m) {
            assert_eq!(s, 1.0, "m={m}: non-split row {i} sums to {s}");
        }
        let numer = pow_u128(4, m as u32 + 1) - 1;
        let denom = pow_u128(4, m as u32) - 1;
        let want = numer as f64 / denom as f64;
        assert!(
            (sums[m] - want).abs() < 1e-12,
            "m={m}: split row sums to {:.17e}, golden growth factor {want:.17e}",
            sums[m]
        );
        assert!(
            (model.split_yield() - want).abs() < 1e-12,
            "m={m}: split_yield {:.17e} vs golden {want:.17e}",
            model.split_yield()
        );
    }
}

#[test]
fn split_row_conserves_the_m_plus_1_items() {
    // Σᵢ i·T_{m,i} = m + 1: the split scatters exactly the overflowing
    // node's items into the surviving children.
    for &m in &CAPACITIES {
        let model = PrModel::quadtree(m).unwrap();
        let row = model.transform_matrix().row(m);
        let items: f64 = (0..=m).map(|i| i as f64 * row[i]).sum();
        assert!(
            (items - (m as f64 + 1.0)).abs() < 1e-9,
            "m={m}: split scatters {items} items"
        );
    }
}
