//! Golden-artifact regression: the arena rewrite must not move a byte.
//!
//! `tests/goldens/*.json` were produced by `repro <id> --quick --json`
//! under `POPAN_THREADS=1` on the boxed-tree implementation. The arena
//! core replicates that implementation operation for operation (same
//! push order, same `swap_remove`, same redistribution and merge
//! order), so every downstream f64 statistic — and therefore every
//! artifact byte — must be identical. This test regenerates the same
//! artifacts in-process and compares byte for byte.

use popan::experiments::registry;
use popan::experiments::ExperimentConfig;

// One test function: the engine reads POPAN_THREADS at construction,
// and setting the variable from parallel test threads would race.
#[test]
fn quick_artifacts_match_committed_goldens() {
    std::env::set_var("POPAN_THREADS", "1");
    let config = ExperimentConfig::quick();
    for id in ["table1", "table3", "churn", "phasing_sweep"] {
        let golden_path = format!("{}/tests/goldens/{id}.json", env!("CARGO_MANIFEST_DIR"));
        let golden = std::fs::read_to_string(&golden_path)
            .unwrap_or_else(|e| panic!("missing golden {golden_path}: {e}"));
        let artifact = registry::find(id)
            .unwrap_or_else(|| panic!("unknown experiment {id}"))
            .try_run(&config)
            .unwrap_or_else(|e| panic!("{id} failed: {e}"));
        assert_eq!(
            artifact.to_json(),
            golden,
            "{id}: regenerated artifact differs from the committed golden — \
             a structural or floating-point divergence from the boxed baseline"
        );
    }
}
