//! Integration tests for the extension systems, exercised through the
//! umbrella crate's public API the way a downstream user would.

use popan::core::btree_model::{BTreeModel, SplitKind};
use popan::core::convergence::fixed_point_rate;
use popan::core::{PopulationModel, PrModel};
use popan::exthash::excell::ExcellGrid;
use popan::exthash::gridfile::GridFile;
use popan::geom::{BoxN, PointN, Rect};
use popan::spatial::{LinearQuadtree, PrQuadtree, PrTreeNd};
use popan::workload::cascade::Cascade;
use popan::workload::points::{PointSource, UniformRect};
use popan::workload::TrialRunner;

#[test]
fn three_directory_structures_agree_on_membership() {
    // ExcellGrid, GridFile and PrQuadtree answer the same membership
    // questions over the same data.
    let mut rng = TrialRunner::new(0xe6, 1).rng_for_trial(0);
    let points = UniformRect::unit().sample_n(&mut rng, 600);
    let probes = UniformRect::unit().sample_n(&mut rng, 100);

    let tree = PrQuadtree::build(Rect::unit(), 8, points.iter().copied()).unwrap();
    let mut excell = ExcellGrid::new(Rect::unit(), 8).unwrap();
    let mut gridfile = GridFile::new(Rect::unit(), 8).unwrap();
    for p in &points {
        excell.insert(*p).unwrap();
        gridfile.insert(*p).unwrap();
    }
    for p in points.iter().chain(&probes) {
        let expect = tree.contains(p);
        assert_eq!(excell.contains(p), expect, "excell {p}");
        assert_eq!(gridfile.contains(p), expect, "gridfile {p}");
    }
}

#[test]
fn linear_quadtree_round_trips_through_public_api() {
    let mut rng = TrialRunner::new(3, 1).rng_for_trial(0);
    let points = UniformRect::unit().sample_n(&mut rng, 400);
    let tree = PrQuadtree::build(Rect::unit(), 2, points.iter().copied()).unwrap();
    let linear = LinearQuadtree::from_tree(&tree).unwrap();
    linear.check_invariants();
    let window = Rect::from_bounds(0.25, 0.25, 0.8, 0.6);
    assert_eq!(
        linear.range_query(&window).len(),
        tree.range_query(&window).len()
    );
}

#[test]
fn four_dimensional_tree_matches_generalized_model_direction() {
    // b = 16: measured occupancy sits below the count-model prediction
    // (aging), as for every other branching factor.
    let model = PrModel::with_branching(16, 4).unwrap();
    let theory = popan::core::SteadyStateSolver::new()
        .solve(&model)
        .unwrap()
        .distribution()
        .average_occupancy();
    let runner = TrialRunner::new(0x4d, 3);
    let measured = runner.run_mean(|_, rng| {
        use popan_rng::Rng;
        let pts = (0..3000)
            .map(|_| PointN::<4>::new(std::array::from_fn(|_| rng.random_range(0.0..1.0))));
        let t = PrTreeNd::<4>::build(BoxN::unit(), 4, pts).unwrap();
        t.occupancy_profile().average_occupancy()
    });
    assert!(theory > measured, "theory {theory} vs measured {measured}");
    assert!(measured > 0.5 * theory, "not wildly apart");
}

#[test]
fn cascade_workload_drives_skewed_model_through_public_api() {
    let q = [0.5, 0.2, 0.2, 0.1];
    let model = PrModel::with_bucket_probs(q.to_vec(), 3).unwrap();
    let steady = popan::core::SteadyStateSolver::new().solve(&model).unwrap();
    let runner = TrialRunner::new(0x5c, 3);
    let source = Cascade::new(Rect::unit(), q, 14);
    let measured_empty = runner.run_mean(|_, rng| {
        let tree = PrQuadtree::build(Rect::unit(), 3, source.sample_n(rng, 1200)).unwrap();
        tree.occupancy_profile().proportions(3)[0]
    });
    // Skew raises the empty fraction in both model and measurement
    // relative to the uniform model's 0.165.
    assert!(steady.distribution().fraction_empty() > 0.17);
    assert!(measured_empty > 0.17, "measured empty {measured_empty}");
}

#[test]
fn btree_model_solves_through_the_shared_framework() {
    // The B-tree model plugs into the same PopulationModel machinery.
    let model = BTreeModel::new(8, SplitKind::BPlusLeaf).unwrap();
    assert_eq!(model.classes(), 9);
    assert_eq!(model.transform_matrix().row_sums()[8], 2.0);
    // And the convergence analysis applies to any model that solves.
    let pr = PrModel::quadtree(4).unwrap();
    let est = fixed_point_rate(&pr, 1e-12).unwrap();
    assert!(est.rate > 0.0 && est.rate < 1.0);
    assert!(est.predicted_iterations > 1.0);
}

#[test]
fn churned_tree_serves_all_query_kinds() {
    // Insert, delete, then exercise every query the PR quadtree offers.
    let mut rng = TrialRunner::new(0x17, 1).rng_for_trial(0);
    let points = UniformRect::unit().sample_n(&mut rng, 500);
    let mut tree = PrQuadtree::build(Rect::unit(), 4, points.iter().copied()).unwrap();
    for p in &points[..250] {
        assert!(tree.remove(p));
    }
    tree.check_invariants();
    let survivors = &points[250..];
    let window = Rect::from_bounds(0.1, 0.1, 0.9, 0.5);
    assert_eq!(
        tree.count_in_range(&window),
        survivors.iter().filter(|p| window.contains(p)).count()
    );
    let target = popan::geom::Point2::new(0.4, 0.4);
    let knn = tree.k_nearest(&target, 5);
    assert_eq!(knn.len(), 5);
    let nearest = tree.nearest(&target).unwrap();
    assert_eq!(
        nearest.distance_squared(&target),
        knn[0].distance_squared(&target)
    );
}
