//! Convergence regression for the steady-state solver.
//!
//! The paper: "The systems were solved numerically using an iterative
//! technique which converged on the positive solution." This suite pins
//! that the normalized fixed-point iteration keeps converging far past
//! the paper's `m ≤ 8` range, and that what it converges *to* is a
//! genuine probability vector matching the published `m = 1` values.

use popan::core::{PrModel, SteadyStateSolver};
use popan::experiments::paper_data;

#[test]
fn fixed_point_converges_for_capacities_1_through_32() {
    for m in 1..=32 {
        let model = PrModel::quadtree(m).unwrap();
        let steady = SteadyStateSolver::new()
            .solve(&model)
            .unwrap_or_else(|e| panic!("m={m}: solver failed: {e}"));
        let e = steady.distribution().proportions();
        assert_eq!(e.len(), m + 1, "m={m}: wrong class count");
        let total: f64 = e.iter().sum();
        assert!(
            (total - 1.0).abs() < 1e-10,
            "m={m}: Σe = {total:.15} is not 1 ± 1e-10"
        );
        assert!(
            e.iter().all(|&p| p >= 0.0),
            "m={m}: negative component in {e:?}"
        );
        // The paper's uniqueness argument requires the *positive* solution.
        assert!(e.iter().all(|&p| p > 0.0), "m={m}: zero component in {e:?}");
        assert!(
            steady.diagnostics().residual < 1e-10,
            "m={m}: residual {:.3e}",
            steady.diagnostics().residual
        );
    }
}

#[test]
fn other_branching_factors_converge_too() {
    for m in 1..=32 {
        for model in [PrModel::bintree(m).unwrap(), PrModel::octree(m).unwrap()] {
            let steady = SteadyStateSolver::new().solve(&model).unwrap();
            let total: f64 = steady.distribution().proportions().iter().sum();
            assert!((total - 1.0).abs() < 1e-10);
        }
    }
}

#[test]
fn m1_solution_matches_paper_values() {
    // §III solves m = 1 analytically: e = (1/2, 1/2). Table 1 prints the
    // same row to three decimals; check both the exact value and the
    // transcription in paper_data.
    let model = PrModel::quadtree(1).unwrap();
    let steady = SteadyStateSolver::new().solve(&model).unwrap();
    let e = steady.distribution().proportions();
    assert!((e[0] - 0.5).abs() < 1e-10, "e₀ = {:.15}", e[0]);
    assert!((e[1] - 0.5).abs() < 1e-10, "e₁ = {:.15}", e[1]);
    for (i, &printed) in paper_data::TABLE1_THEORY[0].iter().enumerate() {
        assert!(
            (e[i] - printed).abs() < 5e-4,
            "i={i}: computed {:.4} vs paper {printed:.3}",
            e[i]
        );
    }
}
