//! Property tests for the deterministic parallel trial scheduler:
//! for any master seed, trial count, and thread count, `run_par` must
//! return exactly what the sequential `run` returns, in trial order.

use popan_proptest::prelude::*;
use popan_rng::Rng;
use popan_workload::TrialRunner;

proptest! {
    #[test]
    fn run_par_is_bit_identical_to_run(
        seed in any::<u64>(),
        trials in 1usize..24,
        threads in 1usize..9,
    ) {
        let runner = TrialRunner::new(seed, trials);
        let sequential: Vec<(usize, u64, f64)> =
            runner.run(|t, rng| (t, rng.random(), rng.random_range(0.0f64..1.0)));
        let parallel = runner.run_par(threads, |t, rng| {
            (t, rng.random::<u64>(), rng.random_range(0.0f64..1.0))
        });
        prop_assert_eq!(parallel.len(), sequential.len());
        for (p, s) in parallel.iter().zip(&sequential) {
            prop_assert_eq!(p.0, s.0);
            prop_assert_eq!(p.1, s.1);
            // Floats compared at the bit level: reproducibility means
            // identical bit patterns, not approximate equality.
            prop_assert_eq!(p.2.to_bits(), s.2.to_bits());
        }
    }

    #[test]
    fn run_par_thread_counts_agree_with_each_other(
        seed in any::<u64>(),
        trials in 1usize..16,
        threads_a in 2usize..7,
        threads_b in 2usize..7,
    ) {
        let runner = TrialRunner::new(seed, trials);
        let a = runner.run_par(threads_a, |_, rng| rng.random::<u64>());
        let b = runner.run_par(threads_b, |_, rng| rng.random::<u64>());
        prop_assert_eq!(a, b);
    }
}
