//! Seeded synthetic workload generators.
//!
//! The paper's experiments insert random points into quadtrees — uniform
//! for Tables 1–4, Gaussian for Table 5 — and average over 10 trees. This
//! crate provides those data sources plus the extras the extension
//! experiments need:
//!
//! * [`points`] — 2-D/3-D point distributions: uniform, truncated
//!   Gaussian, clustered (Neyman–Scott), jittered grid.
//! * [`lines`] — random line segments for the PMR quadtree experiments.
//! * [`keys`] — random hash keys for the extendible-hashing baseline.
//! * [`trials`] — the seeded multi-trial runner: derives independent
//!   per-trial RNG streams from one master seed so every experiment is
//!   exactly reproducible, sequentially or across threads
//!   ([`TrialRunner::run_par`]).
//! * [`accum`] — streaming trial aggregation (Welford mean/variance,
//!   min/max, per-occupancy-class accumulators).
//!
//! All generators draw from a caller-supplied [`popan_rng::Rng`]; nothing here
//! touches global or OS randomness.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod accum;
pub mod cascade;
pub mod keys;
pub mod lines;
pub mod points;
pub mod trials;

pub use accum::{ClassAccumulator, Welford};
pub use lines::SegmentSource;
pub use points::{GaussianCentered, PointSource, UniformRect};
pub use trials::TrialRunner;
