//! Point distributions over a rectangle (and cube).
//!
//! Every source implements [`PointSource`]: a stateless description of a
//! distribution that samples through a caller-supplied RNG. The paper's
//! workloads:
//!
//! * [`UniformRect`] — uniform over the region (Tables 1–4): the paper's
//!   "random points ... drawn from a uniform distribution".
//! * [`GaussianCentered`] — Table 5's "Gaussian distribution of points two
//!   standard deviations wide centered in the square region": σ = side/4
//!   on each axis, samples outside the square rejected and redrawn (see
//!   DESIGN.md §4 for the interpretation).
//!
//! Extensions:
//!
//! * [`Clustered`] — a Neyman–Scott cluster process (parents uniform,
//!   offspring Gaussian around parents), a standard "real data is clumpy"
//!   stand-in.
//! * [`GridJitter`] — a jittered regular grid, the opposite extreme of
//!   clustering (hyper-uniform).
//! * [`UniformCube`] — uniform points in 3-space for the octree
//!   experiments.

use popan_geom::{Aabb3, Point2, Point3, Rect};
use popan_rng::Rng;

/// A distribution of points over a planar region.
pub trait PointSource {
    /// The region all samples fall in.
    fn region(&self) -> Rect;

    /// Draws one point, always inside [`Self::region`].
    fn sample(&self, rng: &mut dyn popan_rng::RngCore) -> Point2;

    /// Draws `n` points.
    fn sample_n(&self, rng: &mut dyn popan_rng::RngCore, n: usize) -> Vec<Point2> {
        (0..n).map(|_| self.sample(rng)).collect()
    }
}

/// Uniform distribution over a rectangle.
#[derive(Debug, Clone, Copy)]
pub struct UniformRect {
    region: Rect,
}

impl UniformRect {
    /// Uniform over `region`.
    pub fn new(region: Rect) -> Self {
        UniformRect { region }
    }

    /// Uniform over the unit square (the paper's setting).
    pub fn unit() -> Self {
        UniformRect::new(Rect::unit())
    }
}

impl PointSource for UniformRect {
    fn region(&self) -> Rect {
        self.region
    }

    fn sample(&self, rng: &mut dyn popan_rng::RngCore) -> Point2 {
        let x = self.region.x().lo() + rng.random_range(0.0..1.0) * self.region.width();
        let y = self.region.y().lo() + rng.random_range(0.0..1.0) * self.region.height();
        Point2::new(x, y)
    }
}

/// Draws a standard-normal variate by the Box–Muller transform.
///
/// One branch of the transform is enough here; callers needing pairs can
/// call twice (throughput is irrelevant next to tree construction).
pub fn standard_normal(rng: &mut dyn popan_rng::RngCore) -> f64 {
    // Guard the log: random_range(0.0..1.0) can return exactly 0.
    let mut u1: f64 = rng.random_range(0.0..1.0);
    if u1 <= f64::MIN_POSITIVE {
        u1 = f64::MIN_POSITIVE;
    }
    let u2: f64 = rng.random_range(0.0..1.0);
    (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos()
}

/// Truncated Gaussian centered in a rectangle.
///
/// "Two standard deviations wide" per the paper: the region spans ±2σ
/// around the center on each axis, i.e. σ = extent/4. Samples falling
/// outside the region are rejected and redrawn (≈ 4.6% of draws per axis
/// at 2σ truncation), keeping the source total-mass-correct for tree
/// insertion counts.
#[derive(Debug, Clone, Copy)]
pub struct GaussianCentered {
    region: Rect,
    sigma_x: f64,
    sigma_y: f64,
}

impl GaussianCentered {
    /// The paper's configuration: σ = extent/4 per axis over `region`.
    pub fn two_sigma_wide(region: Rect) -> Self {
        GaussianCentered {
            region,
            sigma_x: region.width() / 4.0,
            sigma_y: region.height() / 4.0,
        }
    }

    /// Explicit per-axis standard deviations. Panics if not positive.
    pub fn with_sigmas(region: Rect, sigma_x: f64, sigma_y: f64) -> Self {
        assert!(
            sigma_x > 0.0 && sigma_y > 0.0,
            "standard deviations must be positive"
        );
        GaussianCentered {
            region,
            sigma_x,
            sigma_y,
        }
    }
}

impl PointSource for GaussianCentered {
    fn region(&self) -> Rect {
        self.region
    }

    fn sample(&self, rng: &mut dyn popan_rng::RngCore) -> Point2 {
        let c = self.region.center();
        loop {
            let p = Point2::new(
                c.x + self.sigma_x * standard_normal(rng),
                c.y + self.sigma_y * standard_normal(rng),
            );
            if self.region.contains(&p) {
                return p;
            }
        }
    }
}

/// Neyman–Scott cluster process: `clusters` parent centers uniform in the
/// region, offspring Gaussian (σ = `spread`) around a uniformly chosen
/// parent, rejected to the region.
///
/// Cluster centers are drawn once per source from a dedicated seed so that
/// sampling is stateless and repeatable.
#[derive(Debug, Clone)]
pub struct Clustered {
    region: Rect,
    centers: Vec<Point2>,
    spread: f64,
}

impl Clustered {
    /// Creates a cluster process with centers drawn through `rng`.
    ///
    /// Panics if `clusters == 0` or `spread <= 0`.
    pub fn new(
        region: Rect,
        clusters: usize,
        spread: f64,
        rng: &mut dyn popan_rng::RngCore,
    ) -> Self {
        assert!(clusters > 0, "need at least one cluster");
        assert!(spread > 0.0, "spread must be positive");
        let uniform = UniformRect::new(region);
        let centers = uniform.sample_n(rng, clusters);
        Clustered {
            region,
            centers,
            spread,
        }
    }

    /// The parent centers.
    pub fn centers(&self) -> &[Point2] {
        &self.centers
    }
}

impl PointSource for Clustered {
    fn region(&self) -> Rect {
        self.region
    }

    fn sample(&self, rng: &mut dyn popan_rng::RngCore) -> Point2 {
        let c = self.centers[rng.random_range(0..self.centers.len())];
        loop {
            let p = Point2::new(
                c.x + self.spread * standard_normal(rng),
                c.y + self.spread * standard_normal(rng),
            );
            if self.region.contains(&p) {
                return p;
            }
        }
    }
}

/// A jittered `k × k` grid: sample a uniformly random cell, then a uniform
/// point within it. With `jitter = 1.0` this is plain uniform; smaller
/// jitter concentrates points near cell centers, producing a hyper-uniform
/// (anti-clustered) pattern.
#[derive(Debug, Clone, Copy)]
pub struct GridJitter {
    region: Rect,
    k: usize,
    jitter: f64,
}

impl GridJitter {
    /// Creates a jittered grid source. Panics unless `k > 0` and
    /// `0 < jitter <= 1`.
    pub fn new(region: Rect, k: usize, jitter: f64) -> Self {
        assert!(k > 0, "grid must have at least one cell");
        assert!(jitter > 0.0 && jitter <= 1.0, "jitter must be in (0, 1]");
        GridJitter { region, k, jitter }
    }
}

impl PointSource for GridJitter {
    fn region(&self) -> Rect {
        self.region
    }

    fn sample(&self, rng: &mut dyn popan_rng::RngCore) -> Point2 {
        let cw = self.region.width() / self.k as f64;
        let ch = self.region.height() / self.k as f64;
        let ci = rng.random_range(0..self.k) as f64;
        let cj = rng.random_range(0..self.k) as f64;
        // Jittered offset around the cell center.
        let off = |rng: &mut dyn popan_rng::RngCore, jitter: f64| {
            0.5 + jitter * (rng.random_range(0.0..1.0) - 0.5)
        };
        let x = self.region.x().lo() + (ci + off(rng, self.jitter)) * cw;
        let y = self.region.y().lo() + (cj + off(rng, self.jitter)) * ch;
        // Clamp pathological rounding at the far edge back inside.
        let x = x.min(self.region.x().hi() - f64::EPSILON * self.region.width());
        let y = y.min(self.region.y().hi() - f64::EPSILON * self.region.height());
        Point2::new(x, y)
    }
}

/// Uniform distribution over a 3-D box, for the octree experiments.
#[derive(Debug, Clone, Copy)]
pub struct UniformCube {
    region: Aabb3,
}

impl UniformCube {
    /// Uniform over `region`.
    pub fn new(region: Aabb3) -> Self {
        UniformCube { region }
    }

    /// Uniform over the unit cube.
    pub fn unit() -> Self {
        UniformCube::new(Aabb3::unit())
    }

    /// The region sampled.
    pub fn region(&self) -> Aabb3 {
        self.region
    }

    /// Draws one point.
    pub fn sample(&self, rng: &mut dyn popan_rng::RngCore) -> Point3 {
        Point3::new(
            self.region.x().lo() + rng.random_range(0.0..1.0) * self.region.x().length(),
            self.region.y().lo() + rng.random_range(0.0..1.0) * self.region.y().length(),
            self.region.z().lo() + rng.random_range(0.0..1.0) * self.region.z().length(),
        )
    }

    /// Draws `n` points.
    pub fn sample_n(&self, rng: &mut dyn popan_rng::RngCore, n: usize) -> Vec<Point3> {
        (0..n).map(|_| self.sample(rng)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use popan_rng::rngs::StdRng;
    use popan_rng::SeedableRng;

    fn rng() -> StdRng {
        StdRng::seed_from_u64(0x5eed)
    }

    #[test]
    fn uniform_stays_in_region_and_covers_quadrants() {
        let src = UniformRect::unit();
        let mut r = rng();
        let pts = src.sample_n(&mut r, 4000);
        assert_eq!(pts.len(), 4000);
        let region = src.region();
        let mut counts = [0usize; 4];
        for p in &pts {
            assert!(region.contains(p));
            counts[region.quadrant_of(p).index()] += 1;
        }
        // Each quadrant should hold roughly a quarter (±5σ ≈ ±137).
        for (i, &c) in counts.iter().enumerate() {
            assert!(
                (c as i64 - 1000).abs() < 150,
                "quadrant {i} count {c} far from uniform"
            );
        }
    }

    #[test]
    fn uniform_is_deterministic_per_seed() {
        let src = UniformRect::unit();
        let a = src.sample_n(&mut StdRng::seed_from_u64(7), 10);
        let b = src.sample_n(&mut StdRng::seed_from_u64(7), 10);
        let c = src.sample_n(&mut StdRng::seed_from_u64(8), 10);
        assert_eq!(a, b);
        assert_ne!(a, c);
    }

    #[test]
    fn standard_normal_moments() {
        let mut r = rng();
        let n = 20_000;
        let xs: Vec<f64> = (0..n).map(|_| standard_normal(&mut r)).collect();
        let mean = xs.iter().sum::<f64>() / n as f64;
        let var = xs.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / (n - 1) as f64;
        assert!(mean.abs() < 0.03, "mean {mean}");
        assert!((var - 1.0).abs() < 0.05, "variance {var}");
    }

    #[test]
    fn gaussian_concentrates_in_center() {
        let src = GaussianCentered::two_sigma_wide(Rect::unit());
        let mut r = rng();
        let pts = src.sample_n(&mut r, 4000);
        let center_box = Rect::from_bounds(0.25, 0.25, 0.75, 0.75);
        let inside = pts.iter().filter(|p| center_box.contains(p)).count();
        // Central ±1σ box holds ~47% (0.6827² / 0.9545² of truncated mass),
        // far above the uniform 25%.
        assert!(
            inside > 4000 * 38 / 100,
            "only {inside} of 4000 in central box"
        );
        for p in &pts {
            assert!(src.region().contains(p));
        }
    }

    #[test]
    fn gaussian_with_explicit_sigmas() {
        let src = GaussianCentered::with_sigmas(Rect::unit(), 0.05, 0.05);
        let mut r = rng();
        let pts = src.sample_n(&mut r, 1000);
        // Very tight sigma: nearly everything within 0.2 of center.
        let near = pts
            .iter()
            .filter(|p| p.distance(&Point2::new(0.5, 0.5)) < 0.2)
            .count();
        assert!(near > 990, "{near}");
    }

    #[test]
    #[should_panic(expected = "must be positive")]
    fn gaussian_rejects_nonpositive_sigma() {
        GaussianCentered::with_sigmas(Rect::unit(), 0.0, 1.0);
    }

    #[test]
    fn clustered_points_hug_centers() {
        let mut r = rng();
        let src = Clustered::new(Rect::unit(), 5, 0.02, &mut r);
        assert_eq!(src.centers().len(), 5);
        let pts = src.sample_n(&mut r, 1000);
        let close = pts
            .iter()
            .filter(|p| src.centers().iter().any(|c| c.distance(p) < 0.1))
            .count();
        assert!(close > 950, "{close} of 1000 near a center");
        for p in &pts {
            assert!(src.region().contains(p));
        }
    }

    #[test]
    #[should_panic(expected = "at least one cluster")]
    fn clustered_rejects_zero_clusters() {
        Clustered::new(Rect::unit(), 0, 0.1, &mut rng());
    }

    #[test]
    fn grid_jitter_stays_in_region_and_spreads() {
        let src = GridJitter::new(Rect::unit(), 8, 0.5);
        let mut r = rng();
        let pts = src.sample_n(&mut r, 2000);
        for p in &pts {
            assert!(src.region().contains(p));
        }
        // All 4 quadrants occupied.
        let mut seen = [false; 4];
        for p in &pts {
            seen[src.region().quadrant_of(p).index()] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    #[should_panic(expected = "jitter must be in")]
    fn grid_jitter_rejects_bad_jitter() {
        GridJitter::new(Rect::unit(), 4, 0.0);
    }

    #[test]
    fn uniform_cube_contains_samples() {
        let src = UniformCube::unit();
        let mut r = rng();
        for p in src.sample_n(&mut r, 500) {
            assert!(src.region().contains(&p));
        }
    }

    #[test]
    fn trait_object_usability() {
        // The sources are usable behind a dyn pointer (the trial runner
        // depends on this).
        let sources: Vec<Box<dyn PointSource>> = vec![
            Box::new(UniformRect::unit()),
            Box::new(GaussianCentered::two_sigma_wide(Rect::unit())),
        ];
        let mut r = rng();
        for s in &sources {
            let p = s.sample(&mut r);
            assert!(s.region().contains(&p));
        }
    }
}
