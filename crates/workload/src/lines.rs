//! Random line-segment generators for the PMR quadtree experiments.
//!
//! The PMR quadtree stores segments; its population analysis needs a model
//! of "random lines in a block". Two standard models are provided:
//!
//! * [`UniformEndpoints`] — both endpoints uniform in the region: long
//!   chords that typically cross several blocks.
//! * [`FixedLengthSegments`] — uniform midpoint and direction with a fixed
//!   length (rejection-sampled to stay in the region): short edges, the
//!   regime typical of map data (many short road/river segments).

use crate::points::{PointSource, UniformRect};
use popan_geom::{Point2, Rect, Segment2};

/// A distribution of segments over a planar region.
pub trait SegmentSource {
    /// The region all segments fall in.
    fn region(&self) -> Rect;

    /// Draws one segment, entirely inside [`Self::region`].
    fn sample(&self, rng: &mut dyn popan_rng::RngCore) -> Segment2;

    /// Draws `n` segments.
    fn sample_n(&self, rng: &mut dyn popan_rng::RngCore, n: usize) -> Vec<Segment2> {
        (0..n).map(|_| self.sample(rng)).collect()
    }
}

/// Segments whose endpoints are independent uniform points.
#[derive(Debug, Clone, Copy)]
pub struct UniformEndpoints {
    region: Rect,
}

impl UniformEndpoints {
    /// Creates the source.
    pub fn new(region: Rect) -> Self {
        UniformEndpoints { region }
    }

    /// Over the unit square.
    pub fn unit() -> Self {
        UniformEndpoints::new(Rect::unit())
    }
}

impl SegmentSource for UniformEndpoints {
    fn region(&self) -> Rect {
        self.region
    }

    fn sample(&self, rng: &mut dyn popan_rng::RngCore) -> Segment2 {
        let uniform = UniformRect::new(self.region);
        loop {
            let a = uniform.sample(rng);
            let b = uniform.sample(rng);
            if a != b {
                return Segment2::new(a, b);
            }
        }
    }
}

/// Segments of a fixed length with uniform midpoint and direction,
/// rejection-sampled so both endpoints stay inside the region.
#[derive(Debug, Clone, Copy)]
pub struct FixedLengthSegments {
    region: Rect,
    length: f64,
}

impl FixedLengthSegments {
    /// Creates the source. Panics unless `0 < length` and the length fits
    /// inside the region (otherwise rejection would never terminate).
    pub fn new(region: Rect, length: f64) -> Self {
        assert!(length > 0.0, "segment length must be positive");
        assert!(
            length < region.width().min(region.height()),
            "segment length {length} cannot fit in region {region}"
        );
        FixedLengthSegments { region, length }
    }

    /// The configured segment length.
    pub fn length(&self) -> f64 {
        self.length
    }
}

impl SegmentSource for FixedLengthSegments {
    fn region(&self) -> Rect {
        self.region
    }

    fn sample(&self, rng: &mut dyn popan_rng::RngCore) -> Segment2 {
        use popan_rng::Rng;
        let uniform = UniformRect::new(self.region);
        loop {
            let mid = uniform.sample(rng);
            let theta: f64 = rng.random_range(0.0..std::f64::consts::TAU);
            let (dy, dx) = theta.sin_cos();
            let half = self.length / 2.0;
            let a = Point2::new(mid.x - dx * half, mid.y - dy * half);
            let b = Point2::new(mid.x + dx * half, mid.y + dy * half);
            if self.region.contains(&a) && self.region.contains(&b) {
                return Segment2::new(a, b);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use popan_rng::rngs::StdRng;
    use popan_rng::SeedableRng;

    fn rng() -> StdRng {
        StdRng::seed_from_u64(0x11e5)
    }

    #[test]
    fn uniform_endpoints_inside_region() {
        let src = UniformEndpoints::unit();
        let mut r = rng();
        for s in src.sample_n(&mut r, 500) {
            assert!(src.region().contains(&s.a));
            assert!(src.region().contains(&s.b));
            assert!(s.length() > 0.0);
        }
    }

    #[test]
    fn uniform_endpoints_have_expected_mean_length() {
        // Mean distance between two uniform points in a unit square is
        // ≈ 0.5214.
        let src = UniformEndpoints::unit();
        let mut r = rng();
        let n = 5000;
        let mean: f64 = src
            .sample_n(&mut r, n)
            .iter()
            .map(Segment2::length)
            .sum::<f64>()
            / n as f64;
        assert!((mean - 0.5214).abs() < 0.02, "mean length {mean}");
    }

    #[test]
    fn fixed_length_segments_have_exact_length() {
        let src = FixedLengthSegments::new(Rect::unit(), 0.1);
        let mut r = rng();
        for s in src.sample_n(&mut r, 300) {
            assert!((s.length() - 0.1).abs() < 1e-12);
            assert!(src.region().contains(&s.a));
            assert!(src.region().contains(&s.b));
        }
    }

    #[test]
    #[should_panic(expected = "cannot fit")]
    fn fixed_length_rejects_oversized() {
        FixedLengthSegments::new(Rect::unit(), 1.5);
    }

    #[test]
    #[should_panic(expected = "must be positive")]
    fn fixed_length_rejects_zero() {
        FixedLengthSegments::new(Rect::unit(), 0.0);
    }

    #[test]
    fn sources_are_deterministic_per_seed() {
        let src = UniformEndpoints::unit();
        let a = src.sample_n(&mut StdRng::seed_from_u64(3), 5);
        let b = src.sample_n(&mut StdRng::seed_from_u64(3), 5);
        assert_eq!(a, b);
    }
}
