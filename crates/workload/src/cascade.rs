//! Multiplicative-cascade point distributions.
//!
//! The skewed population model ([`popan-core`'s
//! `PrModel::with_bucket_probs`]) assumes a *self-similar* skew: at every
//! block, quadrant `j` receives a fixed fraction `q_j` of the local
//! probability mass, recursively. The matching data source is a
//! multiplicative cascade (a de Wijs / binomial-measure process): to draw
//! a point, descend the regular decomposition choosing quadrant `j` with
//! probability `q_j` at each of `depth` levels, then place the point
//! uniformly within the reached cell.
//!
//! This makes the skewed model *exactly* testable: a PR quadtree built
//! from cascade data has local interaction statistics equal to the
//! model's by construction (up to the finite cascade depth).

use crate::points::PointSource;
use popan_geom::{Point2, Quadrant, Rect};
use popan_rng::Rng;

/// A multiplicative-cascade distribution over a rectangle.
#[derive(Debug, Clone)]
pub struct Cascade {
    region: Rect,
    /// Quadrant probabilities in [`Quadrant::ALL`] order (sum 1).
    quadrant_probs: [f64; 4],
    /// Cascade depth; below it the measure is uniform.
    depth: u32,
}

impl Cascade {
    /// Creates a cascade. Panics unless the probabilities are positive
    /// and sum to 1 (±1e-9) and `depth ≥ 1`.
    pub fn new(region: Rect, quadrant_probs: [f64; 4], depth: u32) -> Self {
        assert!(depth >= 1, "cascade depth must be at least 1");
        assert!(
            quadrant_probs.iter().all(|&q| q > 0.0 && q.is_finite()),
            "quadrant probabilities must be positive"
        );
        let total: f64 = quadrant_probs.iter().sum();
        assert!(
            (total - 1.0).abs() < 1e-9,
            "quadrant probabilities must sum to 1, got {total}"
        );
        Cascade {
            region,
            quadrant_probs,
            depth,
        }
    }

    /// The uniform cascade — identical in distribution to
    /// [`crate::points::UniformRect`] (useful as a control).
    pub fn uniform(region: Rect, depth: u32) -> Self {
        Cascade::new(region, [0.25; 4], depth)
    }

    /// The quadrant probabilities.
    pub fn quadrant_probs(&self) -> [f64; 4] {
        self.quadrant_probs
    }

    fn pick_quadrant(&self, rng: &mut dyn popan_rng::RngCore) -> Quadrant {
        let u: f64 = rng.random_range(0.0..1.0);
        let mut acc = 0.0;
        for (i, &q) in self.quadrant_probs.iter().enumerate() {
            acc += q;
            if u < acc {
                return Quadrant::from_index(i);
            }
        }
        Quadrant::Ne
    }
}

impl PointSource for Cascade {
    fn region(&self) -> Rect {
        self.region
    }

    fn sample(&self, rng: &mut dyn popan_rng::RngCore) -> Point2 {
        let mut cell = self.region;
        for _ in 0..self.depth {
            cell = cell.quadrant(self.pick_quadrant(rng));
        }
        // Uniform within the reached cell.
        let x = cell.x().lo() + rng.random_range(0.0..1.0) * cell.width();
        let y = cell.y().lo() + rng.random_range(0.0..1.0) * cell.height();
        Point2::new(
            x.min(self.region.x().hi() - f64::EPSILON),
            y.min(self.region.y().hi() - f64::EPSILON),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use popan_rng::rngs::StdRng;
    use popan_rng::SeedableRng;

    fn rng() -> StdRng {
        StdRng::seed_from_u64(0xca5c)
    }

    #[test]
    fn samples_stay_in_region() {
        let c = Cascade::new(Rect::unit(), [0.4, 0.3, 0.2, 0.1], 12);
        let mut r = rng();
        for p in c.sample_n(&mut r, 2000) {
            assert!(c.region().contains(&p));
        }
    }

    #[test]
    fn quadrant_frequencies_match_probabilities() {
        let probs = [0.5, 0.25, 0.15, 0.1];
        let c = Cascade::new(Rect::unit(), probs, 10);
        let mut r = rng();
        let n = 8000;
        let mut counts = [0usize; 4];
        for p in c.sample_n(&mut r, n) {
            counts[Rect::unit().quadrant_of(&p).index()] += 1;
        }
        for (i, &cnt) in counts.iter().enumerate() {
            let freq = cnt as f64 / n as f64;
            assert!(
                (freq - probs[i]).abs() < 0.02,
                "quadrant {i}: frequency {freq} vs prob {}",
                probs[i]
            );
        }
    }

    #[test]
    fn skew_is_self_similar() {
        // Within the heavy quadrant, the sub-quadrant frequencies follow
        // the same probabilities.
        let probs = [0.55, 0.15, 0.15, 0.15];
        let c = Cascade::new(Rect::unit(), probs, 10);
        let mut r = rng();
        let heavy = Rect::unit().quadrant(Quadrant::Sw);
        let mut counts = [0usize; 4];
        let mut total = 0usize;
        for p in c.sample_n(&mut r, 20_000) {
            if heavy.contains(&p) {
                counts[heavy.quadrant_of(&p).index()] += 1;
                total += 1;
            }
        }
        assert!(total > 8000, "heavy quadrant should hold >40% of mass");
        for (i, &cnt) in counts.iter().enumerate() {
            let freq = cnt as f64 / total as f64;
            assert!(
                (freq - probs[i]).abs() < 0.03,
                "sub-quadrant {i}: {freq} vs {}",
                probs[i]
            );
        }
    }

    #[test]
    fn uniform_cascade_is_uniform() {
        let c = Cascade::uniform(Rect::unit(), 8);
        let mut r = rng();
        let mut counts = [0usize; 4];
        for p in c.sample_n(&mut r, 4000) {
            counts[Rect::unit().quadrant_of(&p).index()] += 1;
        }
        for &cnt in &counts {
            assert!((cnt as i64 - 1000).abs() < 160, "{counts:?}");
        }
    }

    #[test]
    #[should_panic(expected = "sum to 1")]
    fn rejects_unnormalized_probs() {
        Cascade::new(Rect::unit(), [0.5, 0.5, 0.5, 0.5], 4);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn rejects_zero_prob() {
        Cascade::new(Rect::unit(), [0.0, 0.5, 0.25, 0.25], 4);
    }

    #[test]
    #[should_panic(expected = "depth")]
    fn rejects_zero_depth() {
        Cascade::new(Rect::unit(), [0.25; 4], 0);
    }
}
