//! Key streams for the extendible-hashing baseline.
//!
//! Fagin et al.'s analysis (and the paper's discussion of it) assumes keys
//! whose hash values are uniform bits. [`UniformKeys`] provides exactly
//! that; [`SequentialKeys`] provides adversarially *non*-uniform raw keys
//! that become uniform only after hashing, which exercises the hash
//! function itself.

use popan_rng::Rng;

/// Uniformly random 64-bit keys (duplicates possible but vanishingly rare).
#[derive(Debug, Clone, Copy, Default)]
pub struct UniformKeys;

impl UniformKeys {
    /// Draws one key.
    pub fn sample(&self, rng: &mut dyn popan_rng::RngCore) -> u64 {
        rng.random()
    }

    /// Draws `n` keys.
    pub fn sample_n(&self, rng: &mut dyn popan_rng::RngCore, n: usize) -> Vec<u64> {
        (0..n).map(|_| self.sample(rng)).collect()
    }
}

/// Sequential keys `start, start+1, …` — maximally structured input.
#[derive(Debug, Clone, Copy)]
pub struct SequentialKeys {
    next: u64,
}

impl SequentialKeys {
    /// Starts the sequence at `start`.
    pub fn new(start: u64) -> Self {
        SequentialKeys { next: start }
    }

    /// Takes the next `n` keys.
    pub fn take_n(&mut self, n: usize) -> Vec<u64> {
        let out: Vec<u64> = (0..n as u64).map(|i| self.next.wrapping_add(i)).collect();
        self.next = self.next.wrapping_add(n as u64);
        out
    }
}

/// A 64-bit mixing function (the finalizer of SplitMix64). Used as the
/// hash for extendible hashing: even sequential keys produce uniform
/// pseudo-random bucket addresses.
pub fn mix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
    x = (x ^ (x >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    x ^ (x >> 31)
}

#[cfg(test)]
mod tests {
    use super::*;
    use popan_rng::rngs::StdRng;
    use popan_rng::SeedableRng;

    #[test]
    fn uniform_keys_are_deterministic_and_distinct() {
        let ks = UniformKeys;
        let a = ks.sample_n(&mut StdRng::seed_from_u64(1), 100);
        let b = ks.sample_n(&mut StdRng::seed_from_u64(1), 100);
        assert_eq!(a, b);
        let mut sorted = a.clone();
        sorted.sort_unstable();
        sorted.dedup();
        assert_eq!(sorted.len(), 100, "collisions in 100 draws are ~impossible");
    }

    #[test]
    fn sequential_keys_count_up_and_wrap() {
        let mut s = SequentialKeys::new(10);
        assert_eq!(s.take_n(3), vec![10, 11, 12]);
        assert_eq!(s.take_n(2), vec![13, 14]);
        let mut w = SequentialKeys::new(u64::MAX);
        assert_eq!(w.take_n(2), vec![u64::MAX, 0]);
    }

    #[test]
    fn mix64_spreads_sequential_keys() {
        // The top bits of mixed sequential keys should look uniform: count
        // how many land in each of 8 buckets by the top 3 bits.
        let mut counts = [0usize; 8];
        let n = 8000;
        for i in 0..n {
            counts[(mix64(i) >> 61) as usize] += 1;
        }
        for (b, &c) in counts.iter().enumerate() {
            assert!(
                (c as i64 - 1000).abs() < 150,
                "bucket {b} got {c}, expected ~1000"
            );
        }
    }

    #[test]
    fn mix64_is_injective_on_a_sample() {
        let mut out: Vec<u64> = (0..10_000u64).map(mix64).collect();
        out.sort_unstable();
        out.dedup();
        assert_eq!(out.len(), 10_000);
    }

    #[test]
    fn mix64_known_values_stable() {
        // Pin a couple of values so the hash can never silently change —
        // experiment reproducibility depends on it.
        assert_eq!(mix64(0), 0xe220a8397b1dcdaf);
        assert_eq!(mix64(1), 0x910a2dec89025cc1);
    }
}
