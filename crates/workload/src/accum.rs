//! Streaming trial aggregation.
//!
//! The experiment drivers used to collect every trial's output into a
//! `Vec<Vec<f64>>` and average afterwards; these accumulators replace
//! that with one-pass streaming reduction. [`Welford`] tracks
//! mean/variance/min/max of a scalar series with Welford's numerically
//! stable update; [`ClassAccumulator`] keeps one [`Welford`] per
//! occupancy class, consuming one proportion vector per trial.
//!
//! Determinism contract: an accumulator's output is a pure function of
//! the *sequence* of pushed values. The engine feeds trials in trial
//! order whether it ran them sequentially or in parallel, so aggregated
//! summaries are bit-identical across thread counts.

/// Streaming mean/variance/min/max (Welford's online algorithm).
#[derive(Debug, Clone, Default)]
pub struct Welford {
    n: usize,
    mean: f64,
    m2: f64,
    min: f64,
    max: f64,
}

impl Welford {
    /// An empty accumulator.
    pub fn new() -> Self {
        Welford {
            n: 0,
            mean: 0.0,
            m2: 0.0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
        }
    }

    /// Consumes one observation.
    pub fn push(&mut self, x: f64) {
        self.n += 1;
        let delta = x - self.mean;
        self.mean += delta / self.n as f64;
        self.m2 += delta * (x - self.mean);
        self.min = self.min.min(x);
        self.max = self.max.max(x);
    }

    /// Number of observations consumed.
    pub fn count(&self) -> usize {
        self.n
    }

    /// Running mean (0 for an empty accumulator).
    pub fn mean(&self) -> f64 {
        self.mean
    }

    /// Unbiased sample variance (n−1 denominator); 0 for n ≤ 1.
    pub fn variance(&self) -> f64 {
        if self.n > 1 {
            self.m2 / (self.n - 1) as f64
        } else {
            0.0
        }
    }

    /// Sample standard deviation.
    pub fn std_dev(&self) -> f64 {
        self.variance().sqrt()
    }

    /// Smallest observation (`+∞` when empty).
    pub fn min(&self) -> f64 {
        self.min
    }

    /// Largest observation (`−∞` when empty).
    pub fn max(&self) -> f64 {
        self.max
    }

    /// Relative spread `(max − min) / |mean|` — the statistic behind the
    /// paper's "corresponding data points from different trees were
    /// typically within about 10% of each other". Zero when the mean is
    /// zero or fewer than two observations were pushed.
    pub fn relative_spread(&self) -> f64 {
        if self.n < 2 || self.mean == 0.0 {
            0.0
        } else {
            (self.max - self.min) / self.mean.abs()
        }
    }
}

/// One [`Welford`] per vector component — the per-occupancy-class
/// accumulator for distribution vectors.
#[derive(Debug, Clone, Default)]
pub struct ClassAccumulator {
    classes: Vec<Welford>,
}

impl ClassAccumulator {
    /// An empty accumulator; the class count is fixed by the first push.
    pub fn new() -> Self {
        ClassAccumulator {
            classes: Vec::new(),
        }
    }

    /// Consumes one per-class vector (e.g. an occupancy proportion
    /// vector). Panics if its length differs from previous pushes —
    /// trials of one experiment must report the same classes.
    pub fn push(&mut self, vector: &[f64]) {
        if self.classes.is_empty() {
            self.classes = vec![Welford::new(); vector.len()];
        }
        assert_eq!(
            vector.len(),
            self.classes.len(),
            "per-class vector length changed between trials"
        );
        for (acc, &v) in self.classes.iter_mut().zip(vector) {
            acc.push(v);
        }
    }

    /// Number of vectors consumed.
    pub fn count(&self) -> usize {
        self.classes.first().map_or(0, Welford::count)
    }

    /// Per-class running means (empty before the first push).
    pub fn means(&self) -> Vec<f64> {
        self.classes.iter().map(Welford::mean).collect()
    }

    /// The per-class accumulators.
    pub fn classes(&self) -> &[Welford] {
        &self.classes
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn welford_matches_textbook_mean_and_variance() {
        let mut w = Welford::new();
        for x in [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0] {
            w.push(x);
        }
        assert_eq!(w.count(), 8);
        assert!((w.mean() - 5.0).abs() < 1e-12);
        // Unbiased variance of the classic sample: 32/7.
        assert!((w.variance() - 32.0 / 7.0).abs() < 1e-12);
        assert_eq!(w.min(), 2.0);
        assert_eq!(w.max(), 9.0);
    }

    #[test]
    fn spread_formula_is_max_minus_min_over_mean() {
        // Pins the dedup'd trial-spread formula: (max − min) / |mean|.
        let mut w = Welford::new();
        for x in [0.95, 1.0, 1.05] {
            w.push(x);
        }
        assert!((w.relative_spread() - 0.1).abs() < 1e-12);
    }

    #[test]
    fn spread_of_constant_or_short_series_is_zero() {
        let mut w = Welford::new();
        w.push(3.0);
        assert_eq!(w.relative_spread(), 0.0);
        w.push(3.0);
        assert_eq!(w.relative_spread(), 0.0);
        assert_eq!(w.variance(), 0.0);
    }

    #[test]
    fn spread_uses_absolute_mean() {
        let mut w = Welford::new();
        for x in [-1.05, -1.0, -0.95] {
            w.push(x);
        }
        assert!((w.relative_spread() - 0.1).abs() < 1e-12);
    }

    #[test]
    fn class_accumulator_averages_componentwise() {
        let mut acc = ClassAccumulator::new();
        acc.push(&[1.0, 2.0]);
        acc.push(&[3.0, 6.0]);
        assert_eq!(acc.count(), 2);
        assert_eq!(acc.means(), vec![2.0, 4.0]);
        assert_eq!(acc.classes()[1].max(), 6.0);
    }

    #[test]
    #[should_panic(expected = "length changed")]
    fn class_accumulator_rejects_ragged_vectors() {
        let mut acc = ClassAccumulator::new();
        acc.push(&[1.0]);
        acc.push(&[1.0, 2.0]);
    }

    #[test]
    fn empty_accumulators_are_harmless() {
        assert_eq!(Welford::new().mean(), 0.0);
        assert_eq!(ClassAccumulator::new().means(), Vec::<f64>::new());
        assert_eq!(ClassAccumulator::new().count(), 0);
    }
}
