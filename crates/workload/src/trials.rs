//! Seeded multi-trial execution.
//!
//! The paper's experimental numbers are averages over ten independently
//! built trees. [`TrialRunner`] reproduces that protocol: it derives one
//! independent RNG stream per trial from a single master seed (via a
//! SplitMix-style mix of the master seed and trial index), runs a closure
//! per trial, and returns the per-trial results for aggregation.

use crate::keys::mix64;
use popan_rng::rngs::StdRng;
use popan_rng::SeedableRng;

/// Runs `n` seeded trials of an experiment.
#[derive(Debug, Clone, Copy)]
pub struct TrialRunner {
    master_seed: u64,
    trials: usize,
}

impl TrialRunner {
    /// Creates a runner with a master seed and trial count.
    ///
    /// Panics if `trials == 0` — an experiment with no trials is a
    /// configuration bug.
    pub fn new(master_seed: u64, trials: usize) -> Self {
        assert!(trials > 0, "trial count must be positive");
        TrialRunner {
            master_seed,
            trials,
        }
    }

    /// The paper's protocol: 10 trials.
    pub fn paper_protocol(master_seed: u64) -> Self {
        TrialRunner::new(master_seed, 10)
    }

    /// Number of trials.
    pub fn trials(&self) -> usize {
        self.trials
    }

    /// The master seed all per-trial streams derive from.
    pub fn master_seed(&self) -> u64 {
        self.master_seed
    }

    /// The RNG for trial `t` (stable across runs and across reorderings —
    /// trial 3 gets the same stream whether or not trials 0–2 ran).
    pub fn rng_for_trial(&self, t: usize) -> StdRng {
        StdRng::seed_from_u64(mix64(self.master_seed ^ mix64(t as u64 + 1)))
    }

    /// The RNG for re-run `attempt` of trial `t` — a pure function of
    /// `(master_seed, t, attempt)`, so retried trials stay bit-identical
    /// at any thread count. Attempt 0 is exactly
    /// [`rng_for_trial`](TrialRunner::rng_for_trial)'s stream (first
    /// attempts are unchanged by the existence of a retry policy); later
    /// attempts get independent streams for policies that re-draw after a
    /// data-dependent failure.
    pub fn rng_for_attempt(&self, t: usize, attempt: usize) -> StdRng {
        if attempt == 0 {
            return self.rng_for_trial(t);
        }
        StdRng::seed_from_u64(mix64(
            self.master_seed ^ mix64(t as u64 + 1) ^ mix64(0x9e77_0000 + attempt as u64),
        ))
    }

    /// Runs `f` once per trial, collecting results in trial order.
    pub fn run<T>(&self, mut f: impl FnMut(usize, &mut StdRng) -> T) -> Vec<T> {
        (0..self.trials)
            .map(|t| {
                let mut rng = self.rng_for_trial(t);
                f(t, &mut rng)
            })
            .collect()
    }

    /// Runs `f` once per trial and averages the scalar results.
    pub fn run_mean(&self, f: impl FnMut(usize, &mut StdRng) -> f64) -> f64 {
        let results = self.run(f);
        results.iter().sum::<f64>() / results.len() as f64
    }

    /// Runs `f` once per trial across `threads` workers, returning the
    /// results in trial order.
    ///
    /// Bit-identical to [`run`](TrialRunner::run) for every thread count:
    /// trial `t`'s RNG stream depends only on `(master_seed, t)` (see
    /// [`rng_for_trial`](TrialRunner::rng_for_trial)), so it does not
    /// matter which worker executes it or in what order, and the output
    /// vector is reassembled by trial index before it is returned.
    /// Workers take trials round-robin (worker `w` runs trials `w`,
    /// `w + k`, `w + 2k`, …) so long and short trials spread evenly.
    ///
    /// Panics if `threads == 0`.
    pub fn run_par<T: Send>(
        &self,
        threads: usize,
        f: impl Fn(usize, &mut StdRng) -> T + Sync,
    ) -> Vec<T> {
        let indices: Vec<usize> = (0..self.trials).collect();
        self.run_par_subset(threads, &indices, |t| {
            let mut rng = self.rng_for_trial(t);
            f(t, &mut rng)
        })
        .into_iter()
        .map(|(_, value)| value)
        .collect()
    }

    /// Runs `f` over an explicit subset of trial indices across `threads`
    /// workers, returning `(index, result)` pairs in the order of
    /// `indices`. This is the scheduling primitive under
    /// [`run_par`](TrialRunner::run_par) and the engine's fault-isolated
    /// and checkpoint-resumed runs: `f` receives the trial index only —
    /// deriving the RNG stream (and catching panics) is the caller's
    /// business, which is what lets callers skip already-checkpointed
    /// trials or re-run an attempt on a different stream.
    ///
    /// Workers take entries round-robin (worker `w` runs positions `w`,
    /// `w + k`, `w + 2k`, …) so long and short trials spread evenly.
    ///
    /// Panics if `threads == 0`.
    pub fn run_par_subset<T: Send>(
        &self,
        threads: usize,
        indices: &[usize],
        f: impl Fn(usize) -> T + Sync,
    ) -> Vec<(usize, T)> {
        assert!(threads > 0, "thread count must be positive");
        let workers = threads.min(indices.len());
        if workers <= 1 {
            return indices.iter().map(|&t| (t, f(t))).collect();
        }
        let mut slots: Vec<Option<(usize, T)>> = (0..indices.len()).map(|_| None).collect();
        std::thread::scope(|scope| {
            let handles: Vec<_> = (0..workers)
                .map(|w| {
                    let f = &f;
                    scope.spawn(move || {
                        (w..indices.len())
                            .step_by(workers)
                            .map(|pos| (pos, f(indices[pos])))
                            .collect::<Vec<(usize, T)>>()
                    })
                })
                .collect();
            for handle in handles {
                for (pos, value) in handle.join().expect("trial worker panicked") {
                    slots[pos] = Some((indices[pos], value));
                }
            }
        });
        slots
            .into_iter()
            .map(|s| s.expect("every position was assigned to exactly one worker"))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use popan_rng::Rng;

    #[test]
    fn runs_requested_number_of_trials() {
        let runner = TrialRunner::new(42, 7);
        let results = runner.run(|t, _| t);
        assert_eq!(results, vec![0, 1, 2, 3, 4, 5, 6]);
    }

    #[test]
    fn paper_protocol_is_ten_trials() {
        assert_eq!(TrialRunner::paper_protocol(0).trials(), 10);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn rejects_zero_trials() {
        TrialRunner::new(0, 0);
    }

    #[test]
    fn trials_are_independent_streams() {
        let runner = TrialRunner::new(42, 3);
        let draws: Vec<u64> = runner.run(|_, rng| rng.random());
        assert_ne!(draws[0], draws[1]);
        assert_ne!(draws[1], draws[2]);
    }

    #[test]
    fn streams_are_reproducible() {
        let a: Vec<u64> = TrialRunner::new(7, 4).run(|_, rng| rng.random());
        let b: Vec<u64> = TrialRunner::new(7, 4).run(|_, rng| rng.random());
        assert_eq!(a, b);
    }

    #[test]
    fn trial_stream_is_stable_under_trial_count_change() {
        // Trial 2's stream must not depend on how many trials run.
        let mut r_small = TrialRunner::new(9, 3).rng_for_trial(2);
        let mut r_large = TrialRunner::new(9, 10).rng_for_trial(2);
        let a: u64 = r_small.random();
        let b: u64 = r_large.random();
        assert_eq!(a, b);
    }

    #[test]
    fn different_master_seeds_differ() {
        let a: Vec<u64> = TrialRunner::new(1, 2).run(|_, rng| rng.random());
        let b: Vec<u64> = TrialRunner::new(2, 2).run(|_, rng| rng.random());
        assert_ne!(a, b);
    }

    #[test]
    fn run_mean_averages() {
        let runner = TrialRunner::new(0, 4);
        let mean = runner.run_mean(|t, _| t as f64);
        assert_eq!(mean, 1.5);
    }

    #[test]
    fn run_par_matches_run_for_every_thread_count() {
        let runner = TrialRunner::new(0xfeed, 7);
        let sequential: Vec<u64> = runner.run(|_, rng| rng.random());
        for threads in 1..=9 {
            let parallel = runner.run_par(threads, |_, rng| rng.random::<u64>());
            assert_eq!(parallel, sequential, "threads = {threads}");
        }
    }

    #[test]
    fn run_par_preserves_trial_order() {
        let runner = TrialRunner::new(3, 10);
        let indices = runner.run_par(4, |t, _| t);
        assert_eq!(indices, (0..10).collect::<Vec<_>>());
    }

    #[test]
    fn run_par_with_more_threads_than_trials() {
        let runner = TrialRunner::new(5, 2);
        let a = runner.run_par(16, |_, rng| rng.random::<u64>());
        let b = runner.run(|_, rng| rng.random::<u64>());
        assert_eq!(a, b);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn run_par_rejects_zero_threads() {
        TrialRunner::new(1, 3).run_par(0, |t, _| t);
    }

    #[test]
    fn attempt_zero_is_the_trial_stream() {
        let runner = TrialRunner::new(0xabcd, 5);
        for t in 0..5 {
            let a: u64 = runner.rng_for_attempt(t, 0).random();
            let b: u64 = runner.rng_for_trial(t).random();
            assert_eq!(a, b, "trial {t}");
        }
    }

    #[test]
    fn later_attempts_are_independent_but_reproducible() {
        let runner = TrialRunner::new(0xabcd, 3);
        let a0: u64 = runner.rng_for_attempt(1, 0).random();
        let a1: u64 = runner.rng_for_attempt(1, 1).random();
        let a2: u64 = runner.rng_for_attempt(1, 2).random();
        assert_ne!(a0, a1);
        assert_ne!(a1, a2);
        // Pure function of (master_seed, t, attempt): re-deriving gives
        // the identical stream.
        let again: u64 = runner.rng_for_attempt(1, 1).random();
        assert_eq!(a1, again);
        // And distinct trials get distinct attempt-1 streams.
        let other: u64 = runner.rng_for_attempt(2, 1).random();
        assert_ne!(a1, other);
    }

    #[test]
    fn run_par_subset_runs_exactly_the_requested_indices() {
        let runner = TrialRunner::new(7, 10);
        for threads in [1, 3, 4, 16] {
            let out = runner.run_par_subset(threads, &[1, 4, 7], |t| t * 10);
            assert_eq!(out, vec![(1, 10), (4, 40), (7, 70)], "threads = {threads}");
        }
    }

    #[test]
    fn run_par_subset_of_nothing_is_empty() {
        let runner = TrialRunner::new(7, 4);
        let out = runner.run_par_subset(4, &[], |t| t);
        assert!(out.is_empty());
    }
}
