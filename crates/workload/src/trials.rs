//! Seeded multi-trial execution.
//!
//! The paper's experimental numbers are averages over ten independently
//! built trees. [`TrialRunner`] reproduces that protocol: it derives one
//! independent RNG stream per trial from a single master seed (via a
//! SplitMix-style mix of the master seed and trial index), runs a closure
//! per trial, and returns the per-trial results for aggregation.

use crate::keys::mix64;
use popan_rng::rngs::StdRng;
use popan_rng::SeedableRng;

/// Runs `n` seeded trials of an experiment.
#[derive(Debug, Clone, Copy)]
pub struct TrialRunner {
    master_seed: u64,
    trials: usize,
}

impl TrialRunner {
    /// Creates a runner with a master seed and trial count.
    ///
    /// Panics if `trials == 0` — an experiment with no trials is a
    /// configuration bug.
    pub fn new(master_seed: u64, trials: usize) -> Self {
        assert!(trials > 0, "trial count must be positive");
        TrialRunner {
            master_seed,
            trials,
        }
    }

    /// The paper's protocol: 10 trials.
    pub fn paper_protocol(master_seed: u64) -> Self {
        TrialRunner::new(master_seed, 10)
    }

    /// Number of trials.
    pub fn trials(&self) -> usize {
        self.trials
    }

    /// The RNG for trial `t` (stable across runs and across reorderings —
    /// trial 3 gets the same stream whether or not trials 0–2 ran).
    pub fn rng_for_trial(&self, t: usize) -> StdRng {
        StdRng::seed_from_u64(mix64(self.master_seed ^ mix64(t as u64 + 1)))
    }

    /// Runs `f` once per trial, collecting results in trial order.
    pub fn run<T>(&self, mut f: impl FnMut(usize, &mut StdRng) -> T) -> Vec<T> {
        (0..self.trials)
            .map(|t| {
                let mut rng = self.rng_for_trial(t);
                f(t, &mut rng)
            })
            .collect()
    }

    /// Runs `f` once per trial and averages the scalar results.
    pub fn run_mean(&self, f: impl FnMut(usize, &mut StdRng) -> f64) -> f64 {
        let results = self.run(f);
        results.iter().sum::<f64>() / results.len() as f64
    }

    /// Runs `f` once per trial across `threads` workers, returning the
    /// results in trial order.
    ///
    /// Bit-identical to [`run`](TrialRunner::run) for every thread count:
    /// trial `t`'s RNG stream depends only on `(master_seed, t)` (see
    /// [`rng_for_trial`](TrialRunner::rng_for_trial)), so it does not
    /// matter which worker executes it or in what order, and the output
    /// vector is reassembled by trial index before it is returned.
    /// Workers take trials round-robin (worker `w` runs trials `w`,
    /// `w + k`, `w + 2k`, …) so long and short trials spread evenly.
    ///
    /// Panics if `threads == 0`.
    pub fn run_par<T: Send>(
        &self,
        threads: usize,
        f: impl Fn(usize, &mut StdRng) -> T + Sync,
    ) -> Vec<T> {
        assert!(threads > 0, "thread count must be positive");
        let workers = threads.min(self.trials);
        if workers == 1 {
            return self.run(f);
        }
        let mut slots: Vec<Option<T>> = (0..self.trials).map(|_| None).collect();
        let runner = *self;
        std::thread::scope(|scope| {
            let handles: Vec<_> = (0..workers)
                .map(|w| {
                    let f = &f;
                    scope.spawn(move || {
                        (w..runner.trials)
                            .step_by(workers)
                            .map(|t| {
                                let mut rng = runner.rng_for_trial(t);
                                (t, f(t, &mut rng))
                            })
                            .collect::<Vec<(usize, T)>>()
                    })
                })
                .collect();
            for handle in handles {
                for (t, value) in handle.join().expect("trial worker panicked") {
                    slots[t] = Some(value);
                }
            }
        });
        slots
            .into_iter()
            .map(|s| s.expect("every trial index was assigned to exactly one worker"))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use popan_rng::Rng;

    #[test]
    fn runs_requested_number_of_trials() {
        let runner = TrialRunner::new(42, 7);
        let results = runner.run(|t, _| t);
        assert_eq!(results, vec![0, 1, 2, 3, 4, 5, 6]);
    }

    #[test]
    fn paper_protocol_is_ten_trials() {
        assert_eq!(TrialRunner::paper_protocol(0).trials(), 10);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn rejects_zero_trials() {
        TrialRunner::new(0, 0);
    }

    #[test]
    fn trials_are_independent_streams() {
        let runner = TrialRunner::new(42, 3);
        let draws: Vec<u64> = runner.run(|_, rng| rng.random());
        assert_ne!(draws[0], draws[1]);
        assert_ne!(draws[1], draws[2]);
    }

    #[test]
    fn streams_are_reproducible() {
        let a: Vec<u64> = TrialRunner::new(7, 4).run(|_, rng| rng.random());
        let b: Vec<u64> = TrialRunner::new(7, 4).run(|_, rng| rng.random());
        assert_eq!(a, b);
    }

    #[test]
    fn trial_stream_is_stable_under_trial_count_change() {
        // Trial 2's stream must not depend on how many trials run.
        let mut r_small = TrialRunner::new(9, 3).rng_for_trial(2);
        let mut r_large = TrialRunner::new(9, 10).rng_for_trial(2);
        let a: u64 = r_small.random();
        let b: u64 = r_large.random();
        assert_eq!(a, b);
    }

    #[test]
    fn different_master_seeds_differ() {
        let a: Vec<u64> = TrialRunner::new(1, 2).run(|_, rng| rng.random());
        let b: Vec<u64> = TrialRunner::new(2, 2).run(|_, rng| rng.random());
        assert_ne!(a, b);
    }

    #[test]
    fn run_mean_averages() {
        let runner = TrialRunner::new(0, 4);
        let mean = runner.run_mean(|t, _| t as f64);
        assert_eq!(mean, 1.5);
    }

    #[test]
    fn run_par_matches_run_for_every_thread_count() {
        let runner = TrialRunner::new(0xfeed, 7);
        let sequential: Vec<u64> = runner.run(|_, rng| rng.random());
        for threads in 1..=9 {
            let parallel = runner.run_par(threads, |_, rng| rng.random::<u64>());
            assert_eq!(parallel, sequential, "threads = {threads}");
        }
    }

    #[test]
    fn run_par_preserves_trial_order() {
        let runner = TrialRunner::new(3, 10);
        let indices = runner.run_par(4, |t, _| t);
        assert_eq!(indices, (0..10).collect::<Vec<_>>());
    }

    #[test]
    fn run_par_with_more_threads_than_trials() {
        let runner = TrialRunner::new(5, 2);
        let a = runner.run_par(16, |_, rng| rng.random::<u64>());
        let b = runner.run(|_, rng| rng.random::<u64>());
        assert_eq!(a, b);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn run_par_rejects_zero_threads() {
        TrialRunner::new(1, 3).run_par(0, |t, _| t);
    }
}
