//! Fagin et al.'s statistical predictions for extendible hashing.
//!
//! The 1979 TODS analysis predicts, for `n` uniformly hashed keys and
//! bucket capacity `b`:
//!
//! * expected number of buckets `≈ n / (b·ln 2)`, hence storage
//!   utilization oscillating around `ln 2 ≈ 0.6931`;
//! * the oscillation ("higher terms in a Fourier series expansion", as the
//!   population-analysis paper puts it) is periodic in `log₂ n` and does
//!   not damp — the phenomenon the population-analysis paper names
//!   *phasing* and derives for quadtrees with period `log₄ n`.
//!
//! These closed forms are the baseline the `exthash` experiment compares
//! measurements against.

/// Asymptotic expected storage utilization, `ln 2`.
pub fn expected_utilization() -> f64 {
    std::f64::consts::LN_2
}

/// Asymptotic expected number of buckets for `n` keys at capacity `b`.
pub fn expected_bucket_count(n: usize, bucket_capacity: usize) -> f64 {
    assert!(bucket_capacity > 0, "bucket capacity must be positive");
    n as f64 / (bucket_capacity as f64 * std::f64::consts::LN_2)
}

/// Asymptotic expected directory size for `n` keys at capacity `b`:
/// Flajolet's refinement gives directory size `≈ (e/(b ln 2)) ·
/// n^{1 + 1/b}` up to oscillation; this returns that leading form. It
/// over-counts for small `n` — use it for trends, not point predictions.
pub fn expected_directory_size(n: usize, bucket_capacity: usize) -> f64 {
    assert!(bucket_capacity > 0, "bucket capacity must be positive");
    let b = bucket_capacity as f64;
    (std::f64::consts::E / (b * std::f64::consts::LN_2)) * (n as f64).powf(1.0 + 1.0 / b)
}

/// The phasing period of extendible hashing on a geometric size ladder:
/// utilization repeats every doubling of `n`, i.e. every
/// `log(2)/log(step)` samples when `n` grows by `step` per sample.
pub fn phasing_period_in_steps(step: f64) -> f64 {
    assert!(step > 1.0, "ladder step must exceed 1");
    std::f64::consts::LN_2 / step.ln()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ExtendibleHashTable;

    #[test]
    fn utilization_constant_is_ln2() {
        assert_eq!(expected_utilization(), std::f64::consts::LN_2);
        assert!(expected_utilization() > 0.69 && expected_utilization() < 0.70);
    }

    #[test]
    fn bucket_count_formula() {
        // 1000 keys, b = 4: 1000/(4·0.6931) ≈ 360.7.
        let e = expected_bucket_count(1000, 4);
        assert!((e - 360.67).abs() < 0.1, "{e}");
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn bucket_count_rejects_zero_capacity() {
        expected_bucket_count(10, 0);
    }

    #[test]
    fn phasing_period_doubling_ladder() {
        // On a ×√2 ladder, utilization repeats every 2 samples.
        assert!((phasing_period_in_steps(2f64.sqrt()) - 2.0).abs() < 1e-12);
        // On a ×2 ladder, every sample.
        assert!((phasing_period_in_steps(2.0) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn measured_bucket_count_matches_prediction_within_oscillation() {
        // Build a real table and compare. The oscillation keeps measured
        // utilization within roughly ±10% of ln 2.
        for &n in &[4096usize, 10_000, 30_000] {
            let mut t = ExtendibleHashTable::new(8).unwrap();
            for k in 0..n as u64 {
                t.insert(k);
            }
            let predicted = expected_bucket_count(n, 8);
            let measured = t.bucket_count() as f64;
            let ratio = measured / predicted;
            assert!(
                (0.85..=1.20).contains(&ratio),
                "n={n}: measured {measured} vs predicted {predicted:.1} (ratio {ratio:.3})"
            );
        }
    }

    #[test]
    fn directory_size_grows_superlinearly() {
        let small = expected_directory_size(1000, 4);
        let large = expected_directory_size(2000, 4);
        // n^{1.25}: doubling n grows the directory by 2^{1.25} ≈ 2.38.
        assert!((large / small - 2f64.powf(1.25)).abs() < 1e-9);
    }
}
