//! EXCELL (Tamminen 1981): extendible hashing over space.
//!
//! The paper's §I/§II place EXCELL and the grid file in the same
//! hierarchical family as the PR quadtree ("this principle is similar to
//! that used by Tamminen in his EXCELL system"). EXCELL maintains a
//! directory of `2^g` *equal-sized* grid cells — the regular
//! decomposition refined one halving (alternating x/y) at a time,
//! globally — where several cells may share one data bucket (a bucket of
//! *local depth* `l < g` serves a `2^{g−l}`-cell region). A bucket
//! overflow splits the bucket; an overflow of a bucket already at the
//! directory's depth doubles the whole directory.
//!
//! The implementation addresses cells by the top bits of a Morton code,
//! so a bucket's cells always form a contiguous directory range and a
//! split is a range rewrite.

use crate::HashError;
use popan_geom::{morton, Point2, Rect};

/// Bits of Morton code available (31 per axis).
const CODE_BITS: u32 = 2 * morton::MORTON_BITS;

/// Hard cap on directory depth; beyond it buckets overflow in place.
///
/// Deliberately modest: unlike per-path quadtree splitting, EXCELL
/// refinement doubles the *whole* directory, so depth `g` costs `2^g`
/// slots no matter how local the hot spot is — the structure's known
/// weakness with clustered data. 22 caps the directory at 4M slots.
pub const MAX_DEPTH: u32 = 22;

#[derive(Debug, Clone)]
struct Bucket {
    /// Number of leading Morton bits all points in this bucket share.
    local_depth: u32,
    /// That shared prefix (in the low `local_depth` bits).
    prefix: u64,
    points: Vec<Point2>,
}

/// An EXCELL grid over a rectangular region with fixed-capacity buckets.
#[derive(Debug, Clone)]
pub struct ExcellGrid {
    region: Rect,
    directory: Vec<usize>,
    buckets: Vec<Bucket>,
    bucket_capacity: usize,
    global_depth: u32,
    len: usize,
    /// Incrementally maintained bucket census: `occ_counts[i]` buckets
    /// hold `i` points (overflowing buckets clamp into the top class).
    occ_counts: Vec<u64>,
}

impl ExcellGrid {
    /// Creates an empty grid over `region`.
    pub fn new(region: Rect, bucket_capacity: usize) -> Result<Self, HashError> {
        if bucket_capacity == 0 {
            return Err(HashError::InvalidParameter(
                "bucket capacity must be at least 1",
            ));
        }
        let mut occ_counts = vec![0u64; bucket_capacity + 1];
        occ_counts[0] = 1; // the one empty bucket
        Ok(ExcellGrid {
            region,
            directory: vec![0],
            buckets: vec![Bucket {
                local_depth: 0,
                prefix: 0,
                points: Vec::new(),
            }],
            bucket_capacity,
            global_depth: 0,
            len: 0,
            occ_counts,
        })
    }

    /// Occupancy class of a bucket holding `n` points (clamped).
    fn occ_class(&self, n: usize) -> usize {
        n.min(self.bucket_capacity)
    }

    /// Census update: a bucket moved from `old` to `new` points.
    fn occ_move(&mut self, old: usize, new: usize) {
        let (from, to) = (self.occ_class(old), self.occ_class(new));
        if from != to {
            debug_assert!(self.occ_counts[from] > 0, "census class {from} underflow");
            self.occ_counts[from] -= 1;
            self.occ_counts[to] += 1;
        }
    }

    /// The covered region.
    pub fn region(&self) -> Rect {
        self.region
    }

    /// Stored point count.
    pub fn len(&self) -> usize {
        self.len
    }

    /// `true` when empty.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Bucket capacity `b`.
    pub fn bucket_capacity(&self) -> usize {
        self.bucket_capacity
    }

    /// Directory depth `g` (the grid has `2^g` cells).
    pub fn global_depth(&self) -> u32 {
        self.global_depth
    }

    /// Number of grid cells (`2^g`).
    pub fn cell_count(&self) -> usize {
        self.directory.len()
    }

    /// Number of distinct buckets.
    pub fn bucket_count(&self) -> usize {
        self.buckets.len()
    }

    fn code_of(&self, p: &Point2) -> u64 {
        morton::morton_of_point(p, &self.region)
    }

    fn dir_index(&self, code: u64) -> usize {
        if self.global_depth == 0 {
            0
        } else {
            (code >> (CODE_BITS - self.global_depth)) as usize
        }
    }

    /// `true` when an exactly equal point is stored.
    pub fn contains(&self, p: &Point2) -> bool {
        if !self.region.contains(p) {
            return false;
        }
        let bucket = &self.buckets[self.directory[self.dir_index(self.code_of(p))]];
        bucket.points.contains(p)
    }

    /// Inserts a point (multiset semantics, like the PR quadtree).
    pub fn insert(&mut self, p: Point2) -> Result<(), HashError> {
        if !p.is_finite() || !self.region.contains(&p) {
            return Err(HashError::InvalidParameter(
                "point must be finite and inside the region",
            ));
        }
        let code = self.code_of(&p);
        loop {
            let bi = self.directory[self.dir_index(code)];
            let occ = self.buckets[bi].points.len();
            if occ < self.bucket_capacity {
                self.buckets[bi].points.push(p);
                self.len += 1;
                self.occ_move(occ, occ + 1);
                return Ok(());
            }
            // Pile-ups that splitting cannot separate — identical Morton
            // codes (coincident or sub-resolution points), or a bucket
            // already at the depth cap — store over capacity instead of
            // doubling the directory fruitlessly.
            let local = self.buckets[bi].local_depth;
            let first_code = self.code_of(&self.buckets[bi].points[0]);
            let unsplittable = self.buckets[bi]
                .points
                .iter()
                .all(|q| self.code_of(q) == first_code)
                && first_code == code;
            if unsplittable || local >= MAX_DEPTH || local >= CODE_BITS {
                self.buckets[bi].points.push(p);
                self.len += 1;
                self.occ_move(occ, occ + 1);
                return Ok(());
            }
            if local == self.global_depth {
                self.double_directory();
            }
            self.split_bucket(self.directory[self.dir_index(code)]);
        }
    }

    fn double_directory(&mut self) {
        // Top-bit addressing: old slot i becomes slots 2i and 2i+1.
        let mut next = Vec::with_capacity(self.directory.len() * 2);
        for &bi in &self.directory {
            next.push(bi);
            next.push(bi);
        }
        self.directory = next;
        self.global_depth += 1;
    }

    /// Splits bucket `bi` on its next Morton bit; its directory slots are
    /// the contiguous range of the old prefix.
    fn split_bucket(&mut self, bi: usize) {
        let old = &self.buckets[bi];
        let l = old.local_depth;
        debug_assert!(l < self.global_depth, "split without headroom");
        let new_l = l + 1;
        let bit_shift = CODE_BITS - new_l;
        let points = std::mem::take(&mut self.buckets[bi].points);
        let n = points.len();
        let (zeros, ones): (Vec<Point2>, Vec<Point2>) = points
            .into_iter()
            .partition(|p| (self.code_of(p) >> bit_shift) & 1 == 0);
        // One bucket of `n` points becomes two with `zeros`/`ones`.
        let (cn, cz, co) = (
            self.occ_class(n),
            self.occ_class(zeros.len()),
            self.occ_class(ones.len()),
        );
        self.occ_counts[cn] -= 1;
        self.occ_counts[cz] += 1;
        self.occ_counts[co] += 1;
        let prefix0 = self.buckets[bi].prefix << 1;
        let prefix1 = prefix0 | 1;
        self.buckets[bi].local_depth = new_l;
        self.buckets[bi].prefix = prefix0;
        self.buckets[bi].points = zeros;
        let new_bi = self.buckets.len();
        self.buckets.push(Bucket {
            local_depth: new_l,
            prefix: prefix1,
            points: ones,
        });
        // Rewire the one-suffix half of the old bucket's slot range.
        let range_shift = self.global_depth - new_l;
        let start = (prefix1 as usize) << range_shift;
        let end = ((prefix1 as usize) + 1) << range_shift;
        for slot in &mut self.directory[start..end] {
            debug_assert_eq!(*slot, bi);
            *slot = new_bi;
        }
    }

    /// All points within `query`.
    pub fn range_query(&self, query: &Rect) -> Vec<Point2> {
        // Scan distinct buckets; fine-grained cell pruning is possible but
        // the experiments only need correctness.
        let mut seen = vec![false; self.buckets.len()];
        let mut out = Vec::new();
        for &bi in &self.directory {
            if seen[bi] {
                continue;
            }
            seen[bi] = true;
            out.extend(
                self.buckets[bi]
                    .points
                    .iter()
                    .filter(|p| query.contains(p))
                    .copied(),
            );
        }
        out
    }

    /// Storage utilization `n / (buckets · b)`.
    pub fn utilization(&self) -> f64 {
        self.len as f64 / (self.buckets.len() * self.bucket_capacity) as f64
    }

    /// Bucket counts by occupancy (overflowing buckets clamp into the
    /// last class). Served from the incrementally maintained census —
    /// O(b) in the capacity, not in the bucket count.
    pub fn occupancy_counts(&self) -> Vec<u64> {
        self.occ_counts.clone()
    }

    /// Verifies structural invariants; panics on violation.
    pub fn check_invariants(&self) {
        assert_eq!(self.directory.len(), 1usize << self.global_depth);
        let mut total = 0;
        for (i, b) in self.buckets.iter().enumerate() {
            total += b.points.len();
            assert!(b.local_depth <= self.global_depth);
            // Every point shares the bucket prefix.
            for p in &b.points {
                let code = self.code_of(p);
                let shift = CODE_BITS - b.local_depth;
                let prefix = if b.local_depth == 0 { 0 } else { code >> shift };
                assert_eq!(prefix, b.prefix, "point {p} in wrong bucket");
            }
            // The bucket's slots form the expected contiguous range.
            let range_shift = self.global_depth - b.local_depth;
            let start = (b.prefix as usize) << range_shift;
            let end = ((b.prefix as usize) + 1) << range_shift;
            for (slot, &bi) in self.directory.iter().enumerate() {
                assert_eq!(
                    bi == i,
                    (start..end).contains(&slot),
                    "directory slot {slot} mismatch for bucket {i}"
                );
            }
        }
        assert_eq!(total, self.len);
        // The incremental census must equal a fresh scan.
        let mut scanned = vec![0u64; self.bucket_capacity + 1];
        for b in &self.buckets {
            scanned[b.points.len().min(self.bucket_capacity)] += 1;
        }
        assert_eq!(
            self.occ_counts, scanned,
            "incremental occupancy census diverged from bucket scan"
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pt(x: f64, y: f64) -> Point2 {
        Point2::new(x, y)
    }

    #[test]
    fn empty_grid() {
        let g = ExcellGrid::new(Rect::unit(), 2).unwrap();
        assert!(g.is_empty());
        assert_eq!(g.cell_count(), 1);
        assert_eq!(g.bucket_count(), 1);
        assert!(!g.contains(&pt(0.5, 0.5)));
        g.check_invariants();
        assert!(ExcellGrid::new(Rect::unit(), 0).is_err());
    }

    #[test]
    fn insert_and_lookup() {
        let mut g = ExcellGrid::new(Rect::unit(), 2).unwrap();
        let points = [
            pt(0.1, 0.1),
            pt(0.9, 0.1),
            pt(0.1, 0.9),
            pt(0.9, 0.9),
            pt(0.5, 0.5),
        ];
        for p in points {
            g.insert(p).unwrap();
        }
        assert_eq!(g.len(), 5);
        for p in points {
            assert!(g.contains(&p));
        }
        assert!(!g.contains(&pt(0.2, 0.2)));
        g.check_invariants();
        assert!(g.global_depth() >= 1, "5 points at b=2 must split");
    }

    #[test]
    fn rejects_out_of_region() {
        let mut g = ExcellGrid::new(Rect::unit(), 2).unwrap();
        assert!(g.insert(pt(1.5, 0.5)).is_err());
        assert!(g.insert(pt(f64::NAN, 0.5)).is_err());
    }

    #[test]
    fn splitting_preserves_spatial_prefixes() {
        let mut g = ExcellGrid::new(Rect::unit(), 1).unwrap();
        for i in 0..64 {
            let f = i as f64 / 64.0;
            g.insert(pt(f, (f * 7.0) % 1.0)).unwrap();
        }
        g.check_invariants(); // prefix assertions inside
        assert!(g.global_depth() >= 6);
    }

    #[test]
    fn coincident_points_overflow_in_place() {
        let mut g = ExcellGrid::new(Rect::unit(), 1).unwrap();
        for _ in 0..5 {
            g.insert(pt(0.25, 0.75)).unwrap();
        }
        assert_eq!(g.len(), 5);
        g.check_invariants();
    }

    #[test]
    fn range_query_matches_scan() {
        use popan_rng::rngs::StdRng;
        use popan_rng::SeedableRng;
        use popan_workload::points::{PointSource, UniformRect};
        let mut rng = StdRng::seed_from_u64(8);
        let points = UniformRect::unit().sample_n(&mut rng, 500);
        let mut g = ExcellGrid::new(Rect::unit(), 4).unwrap();
        for p in &points {
            g.insert(*p).unwrap();
        }
        g.check_invariants();
        let query = Rect::from_bounds(0.2, 0.1, 0.7, 0.8);
        let mut got = g.range_query(&query);
        let mut expect: Vec<Point2> = points
            .iter()
            .filter(|p| query.contains(p))
            .copied()
            .collect();
        let key = |p: &Point2| (p.x, p.y);
        got.sort_by(|a, b| key(a).partial_cmp(&key(b)).unwrap());
        expect.sort_by(|a, b| key(a).partial_cmp(&key(b)).unwrap());
        assert_eq!(got, expect);
    }

    #[test]
    fn uniform_utilization_near_ln2() {
        use popan_rng::rngs::StdRng;
        use popan_rng::SeedableRng;
        use popan_workload::points::{PointSource, UniformRect};
        let mut rng = StdRng::seed_from_u64(9);
        let mut g = ExcellGrid::new(Rect::unit(), 8).unwrap();
        for p in UniformRect::unit().sample_n(&mut rng, 20_000) {
            g.insert(p).unwrap();
        }
        let u = g.utilization();
        assert!((0.55..=0.8).contains(&u), "utilization {u}");
        g.check_invariants();
    }

    #[test]
    fn occupancy_counts_account_for_buckets_and_points() {
        use popan_rng::rngs::StdRng;
        use popan_rng::SeedableRng;
        use popan_workload::points::{PointSource, UniformRect};
        let mut rng = StdRng::seed_from_u64(10);
        let mut g = ExcellGrid::new(Rect::unit(), 4).unwrap();
        for p in UniformRect::unit().sample_n(&mut rng, 1000) {
            g.insert(p).unwrap();
        }
        let counts = g.occupancy_counts();
        assert_eq!(counts.iter().sum::<u64>() as usize, g.bucket_count());
        let items: u64 = counts.iter().enumerate().map(|(i, &c)| i as u64 * c).sum();
        assert_eq!(items as usize, g.len());
    }

    #[test]
    fn directory_growth_is_global() {
        // EXCELL refines ALL cells at once: cell_count is always a power
        // of two and ≥ bucket_count... (buckets ≤ cells).
        use popan_rng::rngs::StdRng;
        use popan_rng::SeedableRng;
        use popan_workload::points::{PointSource, UniformRect};
        let mut rng = StdRng::seed_from_u64(11);
        let mut g = ExcellGrid::new(Rect::unit(), 2).unwrap();
        for p in UniformRect::unit().sample_n(&mut rng, 300) {
            g.insert(p).unwrap();
        }
        assert!(g.cell_count().is_power_of_two());
        assert!(g.bucket_count() <= g.cell_count());
        // Clustered data would blow the directory up much faster than the
        // bucket count — the known EXCELL weakness the PR quadtree avoids.
        assert!(g.cell_count() >= g.bucket_count());
    }
}
