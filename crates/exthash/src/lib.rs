//! Extendible hashing (Fagin, Nievergelt, Pippenger & Strong, TODS 1979).
//!
//! The population-analysis paper positions itself against the *statistical*
//! analysis tradition, "most notably Fagin et al. in their analysis of
//! extendible hashing which turns out also to apply to certain types of
//! quadtrees". This crate implements that baseline structure so the
//! reproduction can demonstrate, on the real thing:
//!
//! * storage utilization oscillating around `ln 2 ≈ 0.693`, and
//! * *phasing* — the oscillation is periodic in `log₂ N` and does not damp
//!   for uniform hashes, the same phenomenon the paper's §IV shows for PR
//!   quadtrees with period `log₄ N`.
//!
//! Two spatial members of the same directory-based family round out the
//! crate: [`excell::ExcellGrid`] (Tamminen's EXCELL) and
//! [`gridfile::GridFile`] (Nievergelt et al.'s grid file).
//!
//! The implementation is the textbook one: a directory of `2^g` slots
//! (indexed by the low `g` bits of the hash) pointing into an arena of
//! buckets, each with a local depth `l ≤ g`; an overflowing bucket with
//! `l < g` splits in place, one with `l = g` first doubles the directory.
//! Deletion comes in both flavors Fagin et al. discuss: plain removal
//! ([`ExtendibleHashTable::remove`]) and buddy-coalescing removal with
//! directory shrinking ([`ExtendibleHashTable::remove_and_merge`]).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod excell;
pub mod fagin;
pub mod gridfile;

use std::fmt;

/// Hard cap on the directory's global depth. With a 64-bit mixed hash,
/// distinct keys virtually never collide on 44 bits; the cap turns a
/// would-be infinite split loop (all keys hashing alike) into a bucket
/// that simply exceeds its capacity.
pub const MAX_GLOBAL_DEPTH: u32 = 44;

/// Errors from table operations.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum HashError {
    /// Invalid construction parameter.
    InvalidParameter(&'static str),
}

impl fmt::Display for HashError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            HashError::InvalidParameter(msg) => write!(f, "invalid parameter: {msg}"),
        }
    }
}

impl std::error::Error for HashError {}

#[derive(Debug, Clone)]
struct Bucket {
    local_depth: u32,
    /// Hashed keys (the table stores hashes; callers keep the key→value
    /// association — the occupancy experiments only need membership).
    keys: Vec<u64>,
}

/// An extendible hash table over `u64` keys with fixed-capacity buckets.
///
/// Keys are hashed internally with a SplitMix64 finalizer, so adversarially
/// structured keys (sequential ids) still spread uniformly — the setting
/// Fagin et al.'s analysis assumes.
#[derive(Debug, Clone)]
pub struct ExtendibleHashTable {
    /// `directory[i]` = index into `buckets` for hash suffix `i`.
    directory: Vec<usize>,
    buckets: Vec<Bucket>,
    bucket_capacity: usize,
    global_depth: u32,
    len: usize,
    hash_keys: bool,
    /// Incrementally maintained bucket census: `occ_counts[i]` buckets
    /// hold `i` keys (over-capacity buckets clamp into the top class).
    /// Updated at every insert/split/remove/merge, so
    /// [`Self::occupancy_counts`] is a read, not a scan.
    occ_counts: Vec<u64>,
}

impl ExtendibleHashTable {
    /// Creates an empty table with the given bucket capacity.
    pub fn new(bucket_capacity: usize) -> Result<Self, HashError> {
        Self::with_hashing(bucket_capacity, true)
    }

    /// Creates a table that optionally skips internal hashing (test hook:
    /// lets tests place keys in chosen buckets deterministically).
    pub fn with_hashing(bucket_capacity: usize, hash_keys: bool) -> Result<Self, HashError> {
        if bucket_capacity == 0 {
            return Err(HashError::InvalidParameter(
                "bucket capacity must be at least 1",
            ));
        }
        let mut occ_counts = vec![0u64; bucket_capacity + 1];
        occ_counts[0] = 1; // the one empty bucket
        Ok(ExtendibleHashTable {
            directory: vec![0],
            buckets: vec![Bucket {
                local_depth: 0,
                keys: Vec::new(),
            }],
            bucket_capacity,
            global_depth: 0,
            len: 0,
            hash_keys,
            occ_counts,
        })
    }

    /// Occupancy class of a bucket holding `n` keys (clamped at capacity).
    fn occ_class(&self, n: usize) -> usize {
        n.min(self.bucket_capacity)
    }

    /// Census update: a bucket moved from `old` to `new` keys.
    fn occ_move(&mut self, old: usize, new: usize) {
        let (from, to) = (self.occ_class(old), self.occ_class(new));
        if from != to {
            debug_assert!(self.occ_counts[from] > 0, "census class {from} underflow");
            self.occ_counts[from] -= 1;
            self.occ_counts[to] += 1;
        }
    }

    fn hash(&self, key: u64) -> u64 {
        if self.hash_keys {
            // SplitMix64 finalizer, identical to popan-workload's mix64 —
            // duplicated rather than imported to keep this crate
            // dependency-free (value equality is pinned by a test there).
            let mut x = key;
            x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
            x = (x ^ (x >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
            x = (x ^ (x >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
            x ^ (x >> 31)
        } else {
            key
        }
    }

    fn dir_index(&self, h: u64) -> usize {
        (h & ((1u64 << self.global_depth) - 1)) as usize
    }

    /// Number of stored keys.
    pub fn len(&self) -> usize {
        self.len
    }

    /// `true` when empty.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Bucket capacity `b`.
    pub fn bucket_capacity(&self) -> usize {
        self.bucket_capacity
    }

    /// Current global depth `g` (directory size is `2^g`).
    pub fn global_depth(&self) -> u32 {
        self.global_depth
    }

    /// Directory size (`2^g`).
    pub fn directory_size(&self) -> usize {
        self.directory.len()
    }

    /// Number of distinct buckets.
    pub fn bucket_count(&self) -> usize {
        self.buckets.len()
    }

    /// `true` when the key is present.
    pub fn contains(&self, key: u64) -> bool {
        let h = self.hash(key);
        let b = &self.buckets[self.directory[self.dir_index(h)]];
        b.keys.contains(&h)
    }

    /// Inserts a key. Returns `false` (without change) when already
    /// present — set semantics, as in Fagin et al.
    pub fn insert(&mut self, key: u64) -> bool {
        let h = self.hash(key);
        if self.buckets[self.directory[self.dir_index(h)]]
            .keys
            .contains(&h)
        {
            return false;
        }
        loop {
            let bi = self.directory[self.dir_index(h)];
            let occ = self.buckets[bi].keys.len();
            if occ < self.bucket_capacity {
                self.buckets[bi].keys.push(h);
                self.len += 1;
                self.occ_move(occ, occ + 1);
                return true;
            }
            // Overflow: split (doubling the directory first if needed).
            if self.buckets[bi].local_depth == self.global_depth {
                if self.global_depth >= MAX_GLOBAL_DEPTH {
                    // Pathological collision pile-up: store over capacity.
                    self.buckets[bi].keys.push(h);
                    self.len += 1;
                    self.occ_move(occ, occ + 1);
                    return true;
                }
                self.double_directory();
            }
            self.split_bucket(self.directory[self.dir_index(h)]);
        }
    }

    /// Removes a key. Returns `true` when it was present. Buckets are not
    /// merged and the directory never shrinks — the simple deletion of
    /// Fagin et al.; see [`Self::remove_and_merge`] for the coalescing
    /// variant.
    pub fn remove(&mut self, key: u64) -> bool {
        let h = self.hash(key);
        let bi = self.directory[self.dir_index(h)];
        let bucket = &mut self.buckets[bi];
        match bucket.keys.iter().position(|&k| k == h) {
            Some(pos) => {
                let occ = bucket.keys.len();
                bucket.keys.swap_remove(pos);
                self.len -= 1;
                self.occ_move(occ, occ - 1);
                true
            }
            None => false,
        }
    }

    /// Removes a key and coalesces: if the affected bucket and its
    /// *buddy* (the bucket whose hash-suffix class differs only in the
    /// top local-depth bit) together fit in one bucket, they merge; the
    /// directory halves whenever no bucket uses its full depth. Returns
    /// `true` when the key was present.
    ///
    /// Merging keeps the table's shape identical to one built by pure
    /// insertion of the surviving keys *in the best case*, and never
    /// worse than one extra split's worth of buckets — the invariant
    /// checks remain exact either way.
    pub fn remove_and_merge(&mut self, key: u64) -> bool {
        if !self.remove(key) {
            return false;
        }
        let h = self.hash(key);
        self.merge_chain(h);
        self.shrink_directory();
        true
    }

    /// Cascades buddy merges upward from the bucket serving hash `h`.
    fn merge_chain(&mut self, h: u64) {
        loop {
            let slot = self.dir_index(h);
            let bi = self.directory[slot];
            let l = self.buckets[bi].local_depth;
            if l == 0 {
                return; // single bucket, nothing to merge with
            }
            let buddy_slot = slot ^ (1usize << (l - 1));
            let buddy = self.directory[buddy_slot];
            if buddy == bi
                || self.buckets[buddy].local_depth != l
                || self.buckets[bi].keys.len() + self.buckets[buddy].keys.len()
                    > self.bucket_capacity
            {
                return;
            }
            // Merge the buddy into `bi` and drop it from the arena. Two
            // census classes collapse into one (the emptied buddy bucket
            // is dropped, not recounted).
            let (a, b) = (self.buckets[bi].keys.len(), self.buckets[buddy].keys.len());
            let (ca, cb, cm) = (self.occ_class(a), self.occ_class(b), self.occ_class(a + b));
            self.occ_counts[ca] -= 1;
            self.occ_counts[cb] -= 1;
            self.occ_counts[cm] += 1;
            let moved = std::mem::take(&mut self.buckets[buddy].keys);
            self.buckets[bi].keys.extend(moved);
            self.buckets[bi].local_depth = l - 1;
            for target in &mut self.directory {
                if *target == buddy {
                    *target = bi;
                }
            }
            self.drop_bucket(buddy);
            // Loop: the merged bucket may now be mergeable one level up.
        }
    }

    /// Removes bucket `dead` from the arena (swap-remove + directory
    /// index fix-up). The bucket must already be unreferenced.
    fn drop_bucket(&mut self, dead: usize) {
        let last = self.buckets.len() - 1;
        self.buckets.swap_remove(dead);
        if dead != last {
            for target in &mut self.directory {
                if *target == last {
                    *target = dead;
                }
            }
        }
    }

    /// Halves the directory while no bucket needs its full depth.
    fn shrink_directory(&mut self) {
        while self.global_depth > 0
            && self
                .buckets
                .iter()
                .all(|b| b.local_depth < self.global_depth)
        {
            let half = self.directory.len() / 2;
            debug_assert!(
                (0..half).all(|i| self.directory[i] == self.directory[i + half]),
                "directory halves must mirror before shrinking"
            );
            self.directory.truncate(half);
            self.global_depth -= 1;
        }
    }

    fn double_directory(&mut self) {
        let old = self.directory.clone();
        self.directory.extend_from_slice(&old);
        self.global_depth += 1;
    }

    /// Splits bucket `bi` (which must be full and have `local < global`):
    /// allocates a sibling with local depth +1 and redistributes keys on
    /// bit `local_depth`.
    fn split_bucket(&mut self, bi: usize) {
        let old_local = self.buckets[bi].local_depth;
        debug_assert!(old_local < self.global_depth, "split without headroom");
        let new_local = old_local + 1;
        let split_bit = 1u64 << old_local;

        let keys = std::mem::take(&mut self.buckets[bi].keys);
        let n = keys.len();
        let (stay, go): (Vec<u64>, Vec<u64>) = keys.into_iter().partition(|&k| k & split_bit == 0);
        // One bucket of `n` keys becomes two with `stay`/`go`.
        let (cn, cs, cg) = (
            self.occ_class(n),
            self.occ_class(stay.len()),
            self.occ_class(go.len()),
        );
        self.occ_counts[cn] -= 1;
        self.occ_counts[cs] += 1;
        self.occ_counts[cg] += 1;
        self.buckets[bi].local_depth = new_local;
        self.buckets[bi].keys = stay;
        let new_bi = self.buckets.len();
        self.buckets.push(Bucket {
            local_depth: new_local,
            keys: go,
        });

        // Redirect the directory: among slots currently pointing at `bi`,
        // those whose `old_local` bit is set move to the sibling.
        for (slot, target) in self.directory.iter_mut().enumerate() {
            if *target == bi && (slot as u64) & split_bit != 0 {
                *target = new_bi;
            }
        }
    }

    /// Storage utilization `n / (buckets · b)` — the quantity Fagin et
    /// al. show oscillates around `ln 2`.
    pub fn utilization(&self) -> f64 {
        self.len as f64 / (self.buckets.len() * self.bucket_capacity) as f64
    }

    /// Average keys per bucket.
    pub fn average_occupancy(&self) -> f64 {
        self.len as f64 / self.buckets.len() as f64
    }

    /// Bucket counts by occupancy: `counts[i]` buckets hold `i` keys.
    /// This is the extendible-hashing analogue of the paper's population
    /// state vector. Served from the incrementally maintained census —
    /// O(b) in the capacity, not in the bucket count.
    pub fn occupancy_counts(&self) -> Vec<u64> {
        self.occ_counts.clone()
    }

    /// Verifies structural invariants; panics on violation.
    pub fn check_invariants(&self) {
        assert_eq!(self.directory.len(), 1usize << self.global_depth);
        let mut total = 0;
        let mut referenced = vec![false; self.buckets.len()];
        for (slot, &bi) in self.directory.iter().enumerate() {
            assert!(bi < self.buckets.len(), "dangling directory entry");
            referenced[bi] = true;
            let b = &self.buckets[bi];
            assert!(b.local_depth <= self.global_depth);
            // The slot must agree with the bucket's hash-suffix class.
            let mask = (1u64 << b.local_depth) - 1;
            for &k in &b.keys {
                assert_eq!(
                    k & mask,
                    (slot as u64) & mask,
                    "key in wrong bucket for its suffix"
                );
            }
        }
        assert!(referenced.iter().all(|&r| r), "orphaned bucket");
        for b in &self.buckets {
            total += b.keys.len();
            assert!(
                b.keys.len() <= self.bucket_capacity || self.global_depth >= MAX_GLOBAL_DEPTH,
                "over-full bucket below the depth cap"
            );
            // Each bucket is referenced by exactly 2^(g - l) slots.
            let expected_refs = 1usize << (self.global_depth - b.local_depth);
            let actual = self
                .directory
                .iter()
                .filter(|&&bi| std::ptr::eq(&self.buckets[bi], b))
                .count();
            assert_eq!(actual, expected_refs, "directory reference count wrong");
        }
        assert_eq!(total, self.len, "stored key count mismatch");
        // The incremental census must equal a fresh scan.
        let mut scanned = vec![0u64; self.bucket_capacity + 1];
        for b in &self.buckets {
            scanned[b.keys.len().min(self.bucket_capacity)] += 1;
        }
        assert_eq!(
            self.occ_counts, scanned,
            "incremental occupancy census diverged from bucket scan"
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_table() {
        let t = ExtendibleHashTable::new(4).unwrap();
        assert!(t.is_empty());
        assert_eq!(t.global_depth(), 0);
        assert_eq!(t.directory_size(), 1);
        assert_eq!(t.bucket_count(), 1);
        assert!(!t.contains(42));
        t.check_invariants();
    }

    #[test]
    fn rejects_zero_capacity() {
        assert!(ExtendibleHashTable::new(0).is_err());
    }

    #[test]
    fn insert_lookup_remove_round_trip() {
        let mut t = ExtendibleHashTable::new(2).unwrap();
        for k in 0..100u64 {
            assert!(t.insert(k), "fresh insert of {k}");
            assert!(t.contains(k));
        }
        assert_eq!(t.len(), 100);
        t.check_invariants();
        for k in 0..100u64 {
            assert!(!t.insert(k), "duplicate insert of {k}");
        }
        assert_eq!(t.len(), 100);
        for k in (0..100u64).step_by(2) {
            assert!(t.remove(k));
            assert!(!t.contains(k));
        }
        assert_eq!(t.len(), 50);
        assert!(!t.remove(0), "double remove");
        t.check_invariants();
        for k in (1..100u64).step_by(2) {
            assert!(t.contains(k), "{k} must survive unrelated removals");
        }
    }

    #[test]
    fn directory_doubles_under_growth() {
        let mut t = ExtendibleHashTable::new(1).unwrap();
        for k in 0..64u64 {
            t.insert(k);
        }
        assert!(t.global_depth() >= 6, "64 keys at b=1 need ≥64 buckets");
        assert_eq!(t.directory_size(), 1 << t.global_depth());
        t.check_invariants();
    }

    #[test]
    fn unhashed_mode_places_keys_deterministically() {
        let mut t = ExtendibleHashTable::with_hashing(1, false).unwrap();
        // Keys 0b00 and 0b10 differ in bit 1: with b=1 they force depth 2.
        t.insert(0b00);
        t.insert(0b10);
        // First split on bit 0 leaves both in the even bucket; second
        // split (bit 1) separates them.
        assert_eq!(t.global_depth(), 2);
        assert!(t.contains(0b00));
        assert!(t.contains(0b10));
        t.check_invariants();
    }

    #[test]
    fn pathological_identical_suffixes_hit_depth_cap_gracefully() {
        let t = ExtendibleHashTable::with_hashing(1, false).unwrap();
        // Two keys equal in their low MAX_GLOBAL_DEPTH bits force the cap.
        let a = 0u64;
        let b = 1u64 << (MAX_GLOBAL_DEPTH + 5);
        // Splitting distinguishes them only above the cap... but the cap
        // is 44 and splitting by low bits reaches bit 44 after 44 doubles,
        // which is a 2^44 directory — far too big for a test. Use a tiny
        // cap surrogate: keys identical in low bits up to depth where the
        // loop would explode are exactly the case the cap guards, so here
        // we only verify the *logic* on hashed keys with a sane cap:
        // distinct keys mix to distinct hashes, never reaching the cap.
        let mut h = ExtendibleHashTable::new(1).unwrap();
        for k in [a, b, 7, 9] {
            h.insert(k);
        }
        assert!(h.global_depth() < 16);
        h.check_invariants();
        let _ = t;
    }

    #[test]
    fn occupancy_counts_sum_to_bucket_count() {
        let mut t = ExtendibleHashTable::new(4).unwrap();
        for k in 0..500u64 {
            t.insert(k);
        }
        let counts = t.occupancy_counts();
        assert_eq!(counts.iter().sum::<u64>() as usize, t.bucket_count());
        let items: u64 = counts.iter().enumerate().map(|(i, &c)| i as u64 * c).sum();
        assert_eq!(items as usize, t.len());
    }

    #[test]
    fn utilization_near_ln2_for_large_tables() {
        // Fagin et al.: expected utilization oscillates around ln 2.
        let mut t = ExtendibleHashTable::new(8).unwrap();
        for k in 0..20_000u64 {
            t.insert(k);
        }
        let u = t.utilization();
        assert!(
            (0.55..=0.80).contains(&u),
            "utilization {u} outside the ln2 oscillation band"
        );
        t.check_invariants();
    }

    #[test]
    fn average_occupancy_tracks_utilization() {
        let mut t = ExtendibleHashTable::new(4).unwrap();
        for k in 0..1000u64 {
            t.insert(k);
        }
        assert!((t.average_occupancy() - 4.0 * t.utilization()).abs() < 1e-12);
    }

    #[test]
    fn remove_and_merge_coalesces_buckets() {
        let mut t = ExtendibleHashTable::new(2).unwrap();
        for k in 0..64u64 {
            t.insert(k);
        }
        let buckets_full = t.bucket_count();
        let depth_full = t.global_depth();
        for k in 0..60u64 {
            assert!(t.remove_and_merge(k));
            t.check_invariants();
        }
        assert_eq!(t.len(), 4);
        assert!(
            t.bucket_count() < buckets_full / 2,
            "buckets {} should shrink from {buckets_full}",
            t.bucket_count()
        );
        assert!(
            t.global_depth() < depth_full,
            "directory should shrink from depth {depth_full}"
        );
        for k in 60..64u64 {
            assert!(t.contains(k), "{k} must survive the merges");
        }
    }

    #[test]
    fn remove_and_merge_to_empty_restores_initial_shape() {
        let mut t = ExtendibleHashTable::new(1).unwrap();
        for k in 0..32u64 {
            t.insert(k);
        }
        for k in 0..32u64 {
            assert!(t.remove_and_merge(k));
        }
        assert!(t.is_empty());
        assert_eq!(t.bucket_count(), 1);
        assert_eq!(t.global_depth(), 0);
        t.check_invariants();
    }

    #[test]
    fn merge_keeps_utilization_healthy_under_churn() {
        let mut t = ExtendibleHashTable::new(8).unwrap();
        for k in 0..4096u64 {
            t.insert(k);
        }
        // Delete three quarters with merging: utilization stays in the
        // ln2 neighborhood instead of collapsing.
        for k in 0..3072u64 {
            t.remove_and_merge(k);
        }
        t.check_invariants();
        assert!(
            t.utilization() > 0.45,
            "merged utilization {} should stay healthy",
            t.utilization()
        );
        // Plain remove (no merging) would have left it much lower.
        let mut plain = ExtendibleHashTable::new(8).unwrap();
        for k in 0..4096u64 {
            plain.insert(k);
        }
        for k in 0..3072u64 {
            plain.remove(k);
        }
        assert!(plain.utilization() < t.utilization());
    }

    #[test]
    fn removal_then_reinsert() {
        let mut t = ExtendibleHashTable::new(2).unwrap();
        for k in 0..50u64 {
            t.insert(k);
        }
        for k in 0..50u64 {
            t.remove(k);
        }
        assert!(t.is_empty());
        t.check_invariants();
        for k in 0..50u64 {
            assert!(t.insert(k));
        }
        assert_eq!(t.len(), 50);
        t.check_invariants();
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use popan_proptest::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(48))]

        #[test]
        fn model_equivalence_with_btreeset(
            ops in popan_proptest::collection::vec((any::<u64>(), any::<bool>()), 0..300),
            capacity in 1usize..6,
        ) {
            let mut t = ExtendibleHashTable::new(capacity).unwrap();
            let mut model = std::collections::BTreeSet::new();
            for (key, is_insert) in ops {
                if is_insert {
                    prop_assert_eq!(t.insert(key), model.insert(key));
                } else if key % 2 == 0 {
                    prop_assert_eq!(t.remove_and_merge(key), model.remove(&key));
                } else {
                    prop_assert_eq!(t.remove(key), model.remove(&key));
                }
            }
            prop_assert_eq!(t.len(), model.len());
            for k in model.iter().take(50) {
                prop_assert!(t.contains(*k));
            }
            t.check_invariants();
        }
    }
}
