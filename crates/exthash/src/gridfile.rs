//! The grid file (Nievergelt, Hinterberger & Sevcik, TODS 1984).
//!
//! The paper's §I names the grid file as a member of the hierarchical
//! family ("grid files \[Niev84\]"), and §II notes its splitting principle
//! is the one the generalized PR quadtree shares. The grid file organizes
//! points with:
//!
//! * two *linear scales* — sorted split positions per axis, defining a
//!   grid of cells;
//! * a *directory* mapping each cell to a data bucket, where a bucket may
//!   serve a rectangular *region* of cells;
//! * fixed-capacity buckets.
//!
//! An overflowing bucket whose region spans several cells splits its
//! region (no directory growth); one whose region is a single cell forces
//! a new split line across the whole axis (directory grows by one row or
//! column), after which the region split applies. This implementation
//! follows that textbook algorithm with midpoint splits and keeps every
//! bucket region rectangular — the grid file's signature invariant.

use crate::HashError;
use popan_geom::{Point2, Rect};

/// Cap on splits per axis; beyond it buckets overflow in place (guards
/// against coincident-point pathologies, like the quadtree's depth cap).
pub const MAX_SCALES_PER_AXIS: usize = 4096;

#[derive(Debug, Clone)]
struct Bucket {
    /// Cell region `[cx0, cx1) × [cy0, cy1)` this bucket serves.
    cx0: usize,
    cx1: usize,
    cy0: usize,
    cy1: usize,
    points: Vec<Point2>,
}

impl Bucket {
    fn cell_span(&self) -> (usize, usize) {
        (self.cx1 - self.cx0, self.cy1 - self.cy0)
    }
}

/// A grid file over a rectangular region with fixed-capacity buckets.
#[derive(Debug, Clone)]
pub struct GridFile {
    region: Rect,
    /// Interior split positions per axis, sorted ascending.
    x_scale: Vec<f64>,
    y_scale: Vec<f64>,
    /// `directory[cy * nx + cx]` = bucket index for cell `(cx, cy)`.
    directory: Vec<usize>,
    buckets: Vec<Bucket>,
    bucket_capacity: usize,
    len: usize,
    /// Incrementally maintained bucket census: `occ_counts[i]` buckets
    /// hold `i` points (overflowing buckets clamp into the top class).
    occ_counts: Vec<u64>,
}

impl GridFile {
    /// Creates an empty grid file over `region`.
    pub fn new(region: Rect, bucket_capacity: usize) -> Result<Self, HashError> {
        if bucket_capacity == 0 {
            return Err(HashError::InvalidParameter(
                "bucket capacity must be at least 1",
            ));
        }
        let mut occ_counts = vec![0u64; bucket_capacity + 1];
        occ_counts[0] = 1; // the one empty bucket
        Ok(GridFile {
            region,
            x_scale: Vec::new(),
            y_scale: Vec::new(),
            directory: vec![0],
            buckets: vec![Bucket {
                cx0: 0,
                cx1: 1,
                cy0: 0,
                cy1: 1,
                points: Vec::new(),
            }],
            bucket_capacity,
            len: 0,
            occ_counts,
        })
    }

    /// Occupancy class of a bucket holding `n` points (clamped).
    fn occ_class(&self, n: usize) -> usize {
        n.min(self.bucket_capacity)
    }

    /// Census update: a bucket moved from `old` to `new` points.
    fn occ_move(&mut self, old: usize, new: usize) {
        let (from, to) = (self.occ_class(old), self.occ_class(new));
        if from != to {
            debug_assert!(self.occ_counts[from] > 0, "census class {from} underflow");
            self.occ_counts[from] -= 1;
            self.occ_counts[to] += 1;
        }
    }

    /// The covered region.
    pub fn region(&self) -> Rect {
        self.region
    }

    /// Stored point count.
    pub fn len(&self) -> usize {
        self.len
    }

    /// `true` when empty.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Grid width in cells (`x` splits + 1).
    pub fn nx(&self) -> usize {
        self.x_scale.len() + 1
    }

    /// Grid height in cells.
    pub fn ny(&self) -> usize {
        self.y_scale.len() + 1
    }

    /// Directory size in cells.
    pub fn cell_count(&self) -> usize {
        self.nx() * self.ny()
    }

    /// Number of buckets.
    pub fn bucket_count(&self) -> usize {
        self.buckets.len()
    }

    /// Storage utilization `n / (buckets · b)`.
    pub fn utilization(&self) -> f64 {
        self.len as f64 / (self.buckets.len() * self.bucket_capacity) as f64
    }

    /// Bucket counts by occupancy (overflowing buckets clamp into the
    /// last class). Served from the incrementally maintained census —
    /// O(b) in the capacity, not in the bucket count.
    pub fn occupancy_counts(&self) -> Vec<u64> {
        self.occ_counts.clone()
    }

    /// Cell column of coordinate `x` (count of splits ≤ x).
    fn col_of(&self, x: f64) -> usize {
        self.x_scale.partition_point(|&s| s <= x)
    }

    fn row_of(&self, y: f64) -> usize {
        self.y_scale.partition_point(|&s| s <= y)
    }

    fn cell_of(&self, p: &Point2) -> (usize, usize) {
        (self.col_of(p.x), self.row_of(p.y))
    }

    fn bucket_of_cell(&self, cx: usize, cy: usize) -> usize {
        self.directory[cy * self.nx() + cx]
    }

    /// The coordinate interval of cell column `cx`: `[lo, hi)`.
    fn col_bounds(&self, cx: usize) -> (f64, f64) {
        let lo = if cx == 0 {
            self.region.x().lo()
        } else {
            self.x_scale[cx - 1]
        };
        let hi = if cx == self.x_scale.len() {
            self.region.x().hi()
        } else {
            self.x_scale[cx]
        };
        (lo, hi)
    }

    fn row_bounds(&self, cy: usize) -> (f64, f64) {
        let lo = if cy == 0 {
            self.region.y().lo()
        } else {
            self.y_scale[cy - 1]
        };
        let hi = if cy == self.y_scale.len() {
            self.region.y().hi()
        } else {
            self.y_scale[cy]
        };
        (lo, hi)
    }

    /// `true` when an exactly equal point is stored.
    pub fn contains(&self, p: &Point2) -> bool {
        if !self.region.contains(p) {
            return false;
        }
        let (cx, cy) = self.cell_of(p);
        self.buckets[self.bucket_of_cell(cx, cy)].points.contains(p)
    }

    /// Inserts a point (multiset semantics).
    pub fn insert(&mut self, p: Point2) -> Result<(), HashError> {
        if !p.is_finite() || !self.region.contains(&p) {
            return Err(HashError::InvalidParameter(
                "point must be finite and inside the region",
            ));
        }
        loop {
            let (cx, cy) = self.cell_of(&p);
            let bi = self.bucket_of_cell(cx, cy);
            let occ = self.buckets[bi].points.len();
            if occ < self.bucket_capacity {
                self.buckets[bi].points.push(p);
                self.len += 1;
                self.occ_move(occ, occ + 1);
                return Ok(());
            }
            if !self.make_room(bi) {
                // Unsplittable (coincident pile or scale cap): overflow.
                self.buckets[bi].points.push(p);
                self.len += 1;
                self.occ_move(occ, occ + 1);
                return Ok(());
            }
        }
    }

    /// Tries to create room in bucket `bi`: region split if it spans
    /// several cells, otherwise a new scale line followed by the region
    /// split. Returns `false` when no progress is possible.
    fn make_room(&mut self, bi: usize) -> bool {
        let (span_x, span_y) = self.buckets[bi].cell_span();
        if span_x <= 1 && span_y <= 1 {
            // Single-cell region: refine the grid first.
            if !self.refine_cell(bi) {
                return false;
            }
        }
        self.split_bucket_region(bi);
        true
    }

    /// Adds a scale line through bucket `bi`'s single cell, choosing the
    /// axis whose coordinate extent is larger. Returns `false` when the
    /// bucket's points cannot be separated or the scale cap is reached.
    fn refine_cell(&mut self, bi: usize) -> bool {
        let b = &self.buckets[bi];
        let (x_lo, x_hi) = self.col_bounds(b.cx0);
        let (y_lo, y_hi) = self.row_bounds(b.cy0);
        // A pile of coincident points can never be separated.
        let first = b.points[0];
        if b.points.iter().all(|q| *q == first) {
            return false;
        }
        let split_x = (x_hi - x_lo) >= (y_hi - y_lo);
        if split_x {
            if self.x_scale.len() >= MAX_SCALES_PER_AXIS {
                return false;
            }
            let mid = x_lo + (x_hi - x_lo) / 2.0;
            if mid <= x_lo || mid >= x_hi {
                return false; // interval exhausted f64 resolution
            }
            self.insert_x_scale(self.buckets[bi].cx0, mid);
        } else {
            if self.y_scale.len() >= MAX_SCALES_PER_AXIS {
                return false;
            }
            let mid = y_lo + (y_hi - y_lo) / 2.0;
            if mid <= y_lo || mid >= y_hi {
                return false;
            }
            self.insert_y_scale(self.buckets[bi].cy0, mid);
        }
        true
    }

    /// Inserts a vertical split after column `col` at position `value`:
    /// column `col` becomes columns `col` and `col + 1`.
    fn insert_x_scale(&mut self, col: usize, value: f64) {
        self.x_scale.insert(col, value);
        for b in &mut self.buckets {
            if b.cx0 > col {
                b.cx0 += 1;
            }
            if b.cx1 > col {
                b.cx1 += 1;
            }
        }
        self.rebuild_directory();
    }

    fn insert_y_scale(&mut self, row: usize, value: f64) {
        self.y_scale.insert(row, value);
        for b in &mut self.buckets {
            if b.cy0 > row {
                b.cy0 += 1;
            }
            if b.cy1 > row {
                b.cy1 += 1;
            }
        }
        self.rebuild_directory();
    }

    /// Splits bucket `bi`'s multi-cell region in half along its wider
    /// axis (in cells), creating a sibling bucket and redistributing
    /// points geometrically.
    fn split_bucket_region(&mut self, bi: usize) {
        let (span_x, span_y) = self.buckets[bi].cell_span();
        debug_assert!(span_x > 1 || span_y > 1, "region must be splittable");
        let old = &self.buckets[bi];
        let split_on_x = span_x >= span_y;
        let mut sibling = Bucket {
            cx0: old.cx0,
            cx1: old.cx1,
            cy0: old.cy0,
            cy1: old.cy1,
            points: Vec::new(),
        };
        let (boundary_col, boundary_row);
        if split_on_x {
            let mid = old.cx0 + span_x / 2;
            sibling.cx0 = mid;
            boundary_col = mid;
            boundary_row = usize::MAX;
        } else {
            let mid = old.cy0 + span_y / 2;
            sibling.cy0 = mid;
            boundary_col = usize::MAX;
            boundary_row = mid;
        }
        // Redistribute points: those at/right of the boundary move.
        let pts = std::mem::take(&mut self.buckets[bi].points);
        let n = pts.len();
        let (stay, go): (Vec<Point2>, Vec<Point2>) = pts.into_iter().partition(|p| {
            if split_on_x {
                self.col_of(p.x) < boundary_col
            } else {
                self.row_of(p.y) < boundary_row
            }
        });
        // One bucket of `n` points becomes two with `stay`/`go`.
        let (cn, cs, cg) = (
            self.occ_class(n),
            self.occ_class(stay.len()),
            self.occ_class(go.len()),
        );
        self.occ_counts[cn] -= 1;
        self.occ_counts[cs] += 1;
        self.occ_counts[cg] += 1;
        if split_on_x {
            self.buckets[bi].cx1 = boundary_col;
        } else {
            self.buckets[bi].cy1 = boundary_row;
        }
        self.buckets[bi].points = stay;
        sibling.points = go;
        self.buckets.push(sibling);
        self.rebuild_directory();
    }

    /// Rewrites the cell → bucket map from the bucket regions.
    fn rebuild_directory(&mut self) {
        let nx = self.nx();
        let ny = self.ny();
        self.directory = vec![usize::MAX; nx * ny];
        for (i, b) in self.buckets.iter().enumerate() {
            for cy in b.cy0..b.cy1 {
                for cx in b.cx0..b.cx1 {
                    debug_assert_eq!(
                        self.directory[cy * nx + cx],
                        usize::MAX,
                        "bucket regions must not overlap"
                    );
                    self.directory[cy * nx + cx] = i;
                }
            }
        }
        debug_assert!(
            self.directory.iter().all(|&b| b != usize::MAX),
            "bucket regions must tile the grid"
        );
    }

    /// All points within `query`.
    pub fn range_query(&self, query: &Rect) -> Vec<Point2> {
        let mut out = Vec::new();
        if !self.region.overlaps(query) {
            return out;
        }
        // Candidate buckets: those whose cell-region bounding box
        // overlaps the query's cell range.
        let cx_lo = self.col_of(query.x().lo().max(self.region.x().lo()));
        let cx_hi =
            self.col_of((query.x().hi() - f64::EPSILON).min(self.region.x().hi() - f64::EPSILON));
        let cy_lo = self.row_of(query.y().lo().max(self.region.y().lo()));
        let cy_hi =
            self.row_of((query.y().hi() - f64::EPSILON).min(self.region.y().hi() - f64::EPSILON));
        let mut seen = vec![false; self.buckets.len()];
        for cy in cy_lo..=cy_hi.min(self.ny() - 1) {
            for cx in cx_lo..=cx_hi.min(self.nx() - 1) {
                let bi = self.bucket_of_cell(cx, cy);
                if seen[bi] {
                    continue;
                }
                seen[bi] = true;
                out.extend(
                    self.buckets[bi]
                        .points
                        .iter()
                        .filter(|p| query.contains(p))
                        .copied(),
                );
            }
        }
        out
    }

    /// Verifies structural invariants; panics on violation.
    pub fn check_invariants(&self) {
        // Scales sorted strictly inside the region.
        for w in self.x_scale.windows(2) {
            assert!(w[0] < w[1], "x scale must be strictly increasing");
        }
        for w in self.y_scale.windows(2) {
            assert!(w[0] < w[1], "y scale must be strictly increasing");
        }
        // Regions tile the grid (rebuild_directory asserts in debug; do
        // it unconditionally here).
        let nx = self.nx();
        let mut coverage = vec![0u32; self.cell_count()];
        for b in &self.buckets {
            assert!(b.cx0 < b.cx1 && b.cy0 < b.cy1, "empty bucket region");
            assert!(b.cx1 <= nx && b.cy1 <= self.ny(), "region out of grid");
            for cy in b.cy0..b.cy1 {
                for cx in b.cx0..b.cx1 {
                    coverage[cy * nx + cx] += 1;
                }
            }
        }
        assert!(
            coverage.iter().all(|&c| c == 1),
            "bucket regions must tile the grid exactly once"
        );
        // Every point lies in its bucket's geometric region, counts agree.
        let mut total = 0;
        for b in &self.buckets {
            total += b.points.len();
            let (x_lo, _) = self.col_bounds(b.cx0);
            let (_, x_hi) = self.col_bounds(b.cx1 - 1);
            let (y_lo, _) = self.row_bounds(b.cy0);
            let (_, y_hi) = self.row_bounds(b.cy1 - 1);
            for p in &b.points {
                assert!(
                    p.x >= x_lo && p.x < x_hi && p.y >= y_lo && p.y < y_hi,
                    "point {p} outside its bucket region"
                );
            }
        }
        assert_eq!(total, self.len);
        // The incremental census must equal a fresh scan.
        let mut scanned = vec![0u64; self.bucket_capacity + 1];
        for b in &self.buckets {
            scanned[b.points.len().min(self.bucket_capacity)] += 1;
        }
        assert_eq!(
            self.occ_counts, scanned,
            "incremental occupancy census diverged from bucket scan"
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use popan_rng::rngs::StdRng;
    use popan_rng::SeedableRng;
    use popan_workload::points::{PointSource, UniformRect};

    fn pt(x: f64, y: f64) -> Point2 {
        Point2::new(x, y)
    }

    #[test]
    fn empty_grid_file() {
        let g = GridFile::new(Rect::unit(), 2).unwrap();
        assert!(g.is_empty());
        assert_eq!(g.cell_count(), 1);
        assert_eq!(g.bucket_count(), 1);
        assert!(!g.contains(&pt(0.5, 0.5)));
        g.check_invariants();
        assert!(GridFile::new(Rect::unit(), 0).is_err());
    }

    #[test]
    fn insert_and_lookup_with_splitting() {
        let mut g = GridFile::new(Rect::unit(), 2).unwrap();
        let points = [
            pt(0.1, 0.1),
            pt(0.9, 0.1),
            pt(0.1, 0.9),
            pt(0.9, 0.9),
            pt(0.5, 0.5),
            pt(0.3, 0.7),
        ];
        for p in points {
            g.insert(p).unwrap();
            g.check_invariants();
        }
        assert_eq!(g.len(), 6);
        for p in points {
            assert!(g.contains(&p), "{p}");
        }
        assert!(!g.contains(&pt(0.2, 0.2)));
        assert!(g.bucket_count() > 1, "6 points at b=2 must split");
    }

    #[test]
    fn rejects_out_of_region() {
        let mut g = GridFile::new(Rect::unit(), 2).unwrap();
        assert!(g.insert(pt(1.5, 0.5)).is_err());
        assert!(g.insert(pt(f64::NAN, 0.5)).is_err());
    }

    #[test]
    fn coincident_points_overflow_in_place() {
        let mut g = GridFile::new(Rect::unit(), 1).unwrap();
        for _ in 0..5 {
            g.insert(pt(0.25, 0.75)).unwrap();
        }
        assert_eq!(g.len(), 5);
        g.check_invariants();
        assert_eq!(g.bucket_count(), 1);
    }

    #[test]
    fn random_build_invariants_and_lookup() {
        let mut rng = StdRng::seed_from_u64(21);
        let points = UniformRect::unit().sample_n(&mut rng, 800);
        let mut g = GridFile::new(Rect::unit(), 4).unwrap();
        for p in &points {
            g.insert(*p).unwrap();
        }
        g.check_invariants();
        assert_eq!(g.len(), 800);
        for p in &points {
            assert!(g.contains(p));
        }
    }

    #[test]
    fn range_query_matches_scan() {
        let mut rng = StdRng::seed_from_u64(22);
        let points = UniformRect::unit().sample_n(&mut rng, 500);
        let mut g = GridFile::new(Rect::unit(), 4).unwrap();
        for p in &points {
            g.insert(*p).unwrap();
        }
        for query in [
            Rect::from_bounds(0.2, 0.1, 0.7, 0.8),
            Rect::from_bounds(0.0, 0.0, 1.0, 1.0),
            Rect::from_bounds(0.45, 0.45, 0.55, 0.55),
        ] {
            let mut got = g.range_query(&query);
            let mut expect: Vec<Point2> = points
                .iter()
                .filter(|p| query.contains(p))
                .copied()
                .collect();
            let key = |p: &Point2| (p.x, p.y);
            got.sort_by(|a, b| key(a).partial_cmp(&key(b)).unwrap());
            expect.sort_by(|a, b| key(a).partial_cmp(&key(b)).unwrap());
            assert_eq!(got, expect, "{query}");
        }
    }

    #[test]
    fn utilization_is_healthy_for_uniform_data() {
        let mut rng = StdRng::seed_from_u64(23);
        let mut g = GridFile::new(Rect::unit(), 8).unwrap();
        for p in UniformRect::unit().sample_n(&mut rng, 10_000) {
            g.insert(p).unwrap();
        }
        g.check_invariants();
        let u = g.utilization();
        // Grid-file utilization for uniform data sits in the 0.5–0.75
        // band (Nievergelt et al. report ≈ 69% for the two-bucket split).
        assert!((0.45..=0.8).contains(&u), "utilization {u}");
    }

    #[test]
    fn directory_stays_moderate_for_uniform_data() {
        let mut rng = StdRng::seed_from_u64(24);
        let mut g = GridFile::new(Rect::unit(), 8).unwrap();
        for p in UniformRect::unit().sample_n(&mut rng, 4000) {
            g.insert(p).unwrap();
        }
        // nx·ny cells vs buckets: super-linear but tame on uniform data.
        assert!(
            g.cell_count() < 30 * g.bucket_count(),
            "{} cells for {} buckets",
            g.cell_count(),
            g.bucket_count()
        );
    }

    #[test]
    fn occupancy_counts_account_for_buckets_and_points() {
        let mut rng = StdRng::seed_from_u64(25);
        let mut g = GridFile::new(Rect::unit(), 4).unwrap();
        for p in UniformRect::unit().sample_n(&mut rng, 1000) {
            g.insert(p).unwrap();
        }
        g.check_invariants(); // asserts census == scan
        let counts = g.occupancy_counts();
        assert_eq!(counts.iter().sum::<u64>() as usize, g.bucket_count());
        let items: u64 = counts.iter().enumerate().map(|(i, &c)| i as u64 * c).sum();
        assert_eq!(items as usize, g.len());
    }

    #[test]
    fn scales_partition_both_axes() {
        let mut g = GridFile::new(Rect::from_bounds(-4.0, 10.0, 4.0, 20.0), 1).unwrap();
        for i in 0..40 {
            let f = i as f64 / 40.0;
            g.insert(pt(-4.0 + 8.0 * f, 10.0 + 10.0 * ((f * 3.7) % 1.0)))
                .unwrap();
        }
        g.check_invariants();
        assert!(g.nx() > 1, "x axis must have split");
        assert!(g.ny() > 1, "y axis must have split");
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use popan_proptest::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(48))]

        #[test]
        fn invariants_hold_and_all_points_findable(
            raw in popan_proptest::collection::vec((0.0f64..1.0, 0.0f64..1.0), 0..120),
            capacity in 1usize..5,
        ) {
            let mut g = GridFile::new(Rect::unit(), capacity).unwrap();
            for &(x, y) in &raw {
                g.insert(Point2::new(x, y)).unwrap();
            }
            g.check_invariants();
            prop_assert_eq!(g.len(), raw.len());
            for &(x, y) in &raw {
                prop_assert!(g.contains(&Point2::new(x, y)));
            }
        }
    }
}
