//! Theory-derived default budgets for degraded serving.
//!
//! The paper's occupancy analysis predicts, for a tree grown under a
//! [`SplitSpec`], how much work a well-formed query *should* cost:
//! a root-to-leaf descent of expected depth `c·ln n` (Holmgren's law,
//! `c = 1/μ`) plus the interior leaves the query window actually
//! covers. [`budget_for`] turns that prediction into a
//! [`CostBudget`] for the bounded query paths — a query that wants
//! more work than theory says it needs is itself evidence of a
//! pathological window or damaged state, and gets a degraded
//! (prefix-guaranteed) answer instead of unbounded slab traffic.
//!
//! Work units are deterministic (leaves scanned, points read), never
//! wall-clock, so a budgeted answer stays a pure function of
//! `(snapshot, query, budget)` and the determinism lint's D2 rule
//! holds across the crate.

use popan_core::{Result, SplitSpec};
use popan_spatial::CostBudget;

/// Slack multiplier applied by [`default_budget`]: covers perimeter
/// leaves, aging bias, and moderate workload skew while still tripping
/// on pathological (or corrupted) traversals within a small constant
/// factor of the theoretical cost.
pub const DEFAULT_SLACK: f64 = 4.0;

/// Builds a [`CostBudget`] from the split-spec occupancy model for an
/// `n`-point snapshot answering windows of the given `selectivity`
/// (query area as a fraction of the region, in `[0, 1]`).
///
/// `slack ≥ 1` scales both limits; estimates are rounded up and floored
/// at one leaf / one point so a legal query can always make progress.
/// Errors are the spec's own [`popan_core::SplitSpecError`] argument
/// rejections.
pub fn budget_for(spec: &SplitSpec, n: usize, selectivity: f64, slack: f64) -> Result<CostBudget> {
    let leaves = spec.expected_leaf_visits(n, selectivity, slack)?;
    let points = spec.expected_point_visits(n, selectivity, slack)?;
    Ok(CostBudget::new(
        (leaves.ceil() as u64).max(1),
        (points.ceil() as u64).max(1),
    ))
}

/// [`budget_for`] with the stock [`DEFAULT_SLACK`] — the budget the
/// README quickstart and the chaos suite use.
pub fn default_budget(spec: &SplitSpec, n: usize, selectivity: f64) -> Result<CostBudget> {
    budget_for(spec, n, selectivity, DEFAULT_SLACK)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quad_spec() -> SplitSpec {
        // A PR-quadtree-shaped spec: branch 4, uniform splits.
        SplitSpec::uniform(4, 2).unwrap()
    }

    #[test]
    fn budgets_scale_with_population_and_selectivity() {
        let spec = quad_spec();
        let small = default_budget(&spec, 1_000, 0.01).unwrap();
        let big = default_budget(&spec, 100_000, 0.01).unwrap();
        assert!(big.leaf_visits > small.leaf_visits);
        assert!(big.point_visits > small.point_visits);
        let wide = default_budget(&spec, 100_000, 0.25).unwrap();
        assert!(wide.leaf_visits > big.leaf_visits);
        assert!(wide.point_visits > big.point_visits);
        // The matching mass is always affordable.
        assert!(wide.point_visits as f64 >= 0.25 * 100_000.0);
    }

    #[test]
    fn point_queries_get_a_descent_budget() {
        let spec = quad_spec();
        let budget = default_budget(&spec, 100_000, 0.0).unwrap();
        // Selectivity zero still pays one descent: c·ln n leaves, ≥ 1.
        assert!(budget.leaf_visits >= 1);
        assert!((budget.leaf_visits as f64) < 200.0, "{budget:?}");
        assert!(budget.point_visits >= 1);
    }

    #[test]
    fn bad_arguments_surface_the_spec_error() {
        let spec = quad_spec();
        assert!(budget_for(&spec, 1000, -0.5, 1.0).is_err());
        assert!(budget_for(&spec, 1000, 0.5, 0.0).is_err());
        assert!(budget_for(&spec, 1000, f64::NAN, 1.0).is_err());
    }

    #[test]
    fn tiny_populations_floor_at_one_unit() {
        let spec = quad_spec();
        let b = budget_for(&spec, 0, 0.0, 1.0).unwrap();
        assert!(b.leaf_visits >= 1 && b.point_visits >= 1);
    }
}
