//! The immutable, epoch-stamped read replica.
//!
//! A [`Snapshot`] is a [`LinearQuadtree`] — three flat, Morton-sorted
//! slabs (leaf records, leaf blocks, points) — plus the epoch it was
//! published at. Freezing happens once, on the write side; afterwards
//! the snapshot is strictly read-only and safely shared across threads
//! behind an [`std::sync::Arc`] (it is `Send + Sync` by construction:
//! no interior mutability anywhere).
//!
//! The serving forms are the `_into` methods: they write into
//! caller-owned buffers and a per-reader [`QueryScratch`], performing no
//! heap allocation once those have warmed to the workload's high-water
//! marks (`tests/zero_alloc_read.rs` pins this with a counting global
//! allocator).

use popan_geom::{Point2, Rect};
use popan_spatial::{
    BoundedOutcome, CostBudget, DirectFreezeError, FreezeError, LinearQuadtree, PrQuadtree,
    QueryScratch, SectionDigests, SlabFootprint, SnapshotSection,
};

use crate::queryable::{canonical_sort, Queryable};

/// An immutable Morton-packed replica of a point set at one epoch.
///
/// The section digests are computed once, at freeze time, over the
/// frozen slabs (the epoch is deliberately excluded — the publisher
/// re-stamps it at publish time without invalidating the checksum).
/// [`Snapshot::verify`] recomputes them and reports any drift as a
/// typed [`SnapshotCorruption`] naming the damaged section(s).
#[derive(Debug, Clone)]
pub struct Snapshot {
    epoch: u64,
    index: LinearQuadtree,
    digests: SectionDigests,
}

impl Snapshot {
    /// Freezes `tree` into a snapshot stamped `epoch`.
    ///
    /// Fails with [`FreezeError::DepthExceedsMortonBits`] when the tree
    /// has leaves deeper than the Morton resolution (see
    /// [`LinearQuadtree::from_tree`]).
    pub fn freeze(epoch: u64, tree: &PrQuadtree) -> Result<Snapshot, FreezeError> {
        let index = LinearQuadtree::from_tree(tree)?;
        let digests = index.section_digests();
        Ok(Snapshot {
            epoch,
            index,
            digests,
        })
    }

    /// Builds a snapshot directly from points: the route for structures
    /// that are not PR quadtrees (EXCELL, grid file, …): enumerate,
    /// rebuild, freeze. Since the Morton-radix bulk path landed this
    /// freezes bottom-up ([`LinearQuadtree::from_points_direct`]),
    /// skipping the pointer tree entirely on grid-exact regions —
    /// same validation, same errors, bit-identical slabs and digests.
    pub fn from_points(
        epoch: u64,
        region: Rect,
        capacity: usize,
        points: impl IntoIterator<Item = Point2>,
    ) -> Result<Snapshot, SnapshotBuildError> {
        let index = LinearQuadtree::from_points_direct(
            region,
            capacity,
            popan_spatial::pr_quadtree::DEFAULT_MAX_DEPTH,
            points.into_iter().collect(),
        )
        .map_err(|e| match e {
            DirectFreezeError::Tree(t) => SnapshotBuildError::Tree(t.to_string()),
            DirectFreezeError::Freeze(f) => SnapshotBuildError::Freeze(f),
        })?;
        let digests = index.section_digests();
        Ok(Snapshot {
            epoch,
            index,
            digests,
        })
    }

    /// The epoch this snapshot was published at.
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    /// Re-stamps the epoch. Crate-internal: publisher-assigned epochs
    /// are the truth; user code never renumbers a published snapshot.
    pub(crate) fn set_epoch(&mut self, epoch: u64) {
        self.epoch = epoch;
    }

    /// The region covered.
    pub fn region(&self) -> Rect {
        self.index.region()
    }

    /// Number of stored points.
    pub fn len(&self) -> usize {
        self.index.len()
    }

    /// `true` when no points are stored.
    pub fn is_empty(&self) -> bool {
        self.index.is_empty()
    }

    /// Number of leaf records in the packed index.
    pub fn leaf_count(&self) -> usize {
        self.index.leaf_count()
    }

    /// Heap footprint in bytes, accounting every slab (leaf records,
    /// block rects, points) at allocated capacity.
    pub fn heap_bytes(&self) -> usize {
        self.index.heap_bytes()
    }

    /// The per-slab heap footprint.
    pub fn footprint(&self) -> SlabFootprint {
        self.index.footprint()
    }

    /// The freeze-time section digests this snapshot carries.
    pub fn digests(&self) -> SectionDigests {
        self.digests
    }

    /// One-stop health view of the frozen replica, the shape
    /// `QueryService::health` and the ops tooling consume.
    pub fn stats(&self) -> SnapshotStats {
        SnapshotStats {
            epoch: self.epoch,
            len: self.len(),
            leaf_count: self.leaf_count(),
            footprint: self.footprint(),
            digests: self.digests,
        }
    }

    /// Recomputes the section digests and checks them against the
    /// freeze-time values. `Ok(())` means every slab is bit-identical
    /// to what was frozen; otherwise the error names each damaged
    /// section. Cost is one linear pass over the slabs — cheap enough
    /// to run on every publish.
    pub fn verify(&self) -> Result<(), SnapshotCorruption> {
        let actual = self.index.section_digests();
        if actual == self.digests {
            return Ok(());
        }
        let mut damaged = Vec::new();
        if actual.leaves != self.digests.leaves {
            damaged.push(SnapshotSection::Leaves);
        }
        if actual.blocks != self.digests.blocks {
            damaged.push(SnapshotSection::Blocks);
        }
        if actual.points != self.digests.points {
            damaged.push(SnapshotSection::Points);
        }
        Err(SnapshotCorruption {
            epoch: self.epoch,
            expected: self.digests,
            actual,
            damaged,
        })
    }

    /// Chaos hook: flips one bit in the chosen frozen section *without*
    /// refreshing the stored digests, so [`Snapshot::verify`] must
    /// catch it. Returns `false` when the section is empty (nothing to
    /// damage). Deterministic: the same `bit` always damages the same
    /// slab byte. Test/fault-injection only — a corrupted snapshot is
    /// quarantined by the publisher, never served.
    pub fn corrupt_section(&mut self, section: SnapshotSection, bit: u64) -> bool {
        self.index.corrupt_slab_bit(section, bit)
    }

    /// The underlying Morton-packed index.
    pub fn index(&self) -> &LinearQuadtree {
        &self.index
    }

    /// Serving-form range query: writes all stored points inside
    /// `query` into `out` (cleared first), sorted canonically.
    /// Allocation-free once `scratch` and `out` are warm.
    pub fn range_into(&self, query: &Rect, scratch: &mut QueryScratch, out: &mut Vec<Point2>) {
        self.index.range_query_into(query, scratch, out);
        canonical_sort(out);
    }

    /// Serving-form count: counts stored points inside `query` without
    /// materializing them. Allocation-free once `scratch` is warm.
    pub fn count_with(&self, query: &Rect, scratch: &mut QueryScratch) -> usize {
        self.index.count_in_range_with(query, scratch)
    }

    /// Serving-form k-NN: writes the `k` nearest points to `target`
    /// into `out` (cleared first), in the canonical k-NN order.
    /// Allocation-free once `scratch` and `out` are warm.
    pub fn knn_into(
        &self,
        target: &Point2,
        k: usize,
        scratch: &mut QueryScratch,
        out: &mut Vec<Point2>,
    ) {
        self.index.k_nearest_into(target, k, scratch, out);
    }

    /// Budgeted range query (degraded serving): like
    /// [`Snapshot::range_into`] but stops once `budget` work units are
    /// spent. On [`BoundedOutcome::Partial`] the answer is the
    /// guaranteed canonical *prefix* of the full answer — correct and
    /// gap-free as far as it goes.
    pub fn range_bounded_into(
        &self,
        query: &Rect,
        budget: &CostBudget,
        scratch: &mut QueryScratch,
        out: &mut Vec<Point2>,
    ) -> BoundedOutcome {
        self.index
            .range_query_bounded_into(query, budget, scratch, out)
    }

    /// Budgeted count: the count equals the length of the range prefix
    /// [`Snapshot::range_bounded_into`] would return under the same
    /// budget.
    pub fn count_bounded_with(
        &self,
        query: &Rect,
        budget: &CostBudget,
        scratch: &mut QueryScratch,
    ) -> (usize, BoundedOutcome) {
        self.index
            .count_in_range_bounded_with(query, budget, scratch)
    }

    /// Budgeted k-NN: on [`BoundedOutcome::Partial`] every returned
    /// neighbor is a true `i`-th nearest neighbor (a prefix of the full
    /// answer under [`popan_spatial::knn_cmp`]).
    pub fn knn_bounded_into(
        &self,
        target: &Point2,
        k: usize,
        budget: &CostBudget,
        scratch: &mut QueryScratch,
        out: &mut Vec<Point2>,
    ) -> BoundedOutcome {
        self.index
            .k_nearest_bounded_into(target, k, budget, scratch, out)
    }
}

/// A point-in-time health view of one frozen snapshot.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SnapshotStats {
    /// The epoch the snapshot carries.
    pub epoch: u64,
    /// Number of stored points.
    pub len: usize,
    /// Number of leaf records.
    pub leaf_count: usize,
    /// Per-slab heap footprint.
    pub footprint: SlabFootprint,
    /// Freeze-time section digests.
    pub digests: SectionDigests,
}

impl SnapshotStats {
    /// Total heap bytes across every slab.
    pub fn heap_bytes(&self) -> usize {
        self.footprint.total()
    }
}

/// A failed [`Snapshot::verify`]: the recomputed digests drifted from
/// the freeze-time values. Names every damaged section so operators
/// (and the chaos suite) can localize the fault.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SnapshotCorruption {
    /// Epoch stamped on the damaged snapshot.
    pub epoch: u64,
    /// Digests recorded at freeze time.
    pub expected: SectionDigests,
    /// Digests recomputed over the (damaged) slabs.
    pub actual: SectionDigests,
    /// Sections whose digest drifted, in slab order. Empty only in the
    /// pathological case where just the combined digest drifted (region
    /// or length tampering).
    pub damaged: Vec<SnapshotSection>,
}

impl std::fmt::Display for SnapshotCorruption {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "snapshot at epoch {} is corrupt: ", self.epoch)?;
        if self.damaged.is_empty() {
            write!(
                f,
                "structural drift (region or slab lengths), combined {:#018x} != {:#018x}",
                self.actual.combined, self.expected.combined
            )
        } else {
            write!(f, "damaged section(s):")?;
            for s in &self.damaged {
                write!(f, " {s}")?;
            }
            Ok(())
        }
    }
}

impl std::error::Error for SnapshotCorruption {}

impl Queryable for Snapshot {
    fn len(&self) -> usize {
        self.len()
    }

    fn range(&self, query: &Rect) -> Vec<Point2> {
        let mut out = Vec::new();
        self.range_into(query, &mut QueryScratch::new(), &mut out);
        out
    }

    fn count(&self, query: &Rect) -> usize {
        self.count_with(query, &mut QueryScratch::new())
    }

    fn knn(&self, target: &Point2, k: usize) -> Vec<Point2> {
        let mut out = Vec::new();
        self.knn_into(target, k, &mut QueryScratch::new(), &mut out);
        out
    }
}

/// Errors from [`Snapshot::from_points`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SnapshotBuildError {
    /// Building the intermediate PR quadtree failed (bad parameters,
    /// out-of-region or non-finite points).
    Tree(String),
    /// Freezing failed (leaves below the Morton resolution).
    Freeze(FreezeError),
}

impl std::fmt::Display for SnapshotBuildError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SnapshotBuildError::Tree(msg) => write!(f, "building load tree: {msg}"),
            SnapshotBuildError::Freeze(e) => write!(f, "freezing: {e}"),
        }
    }
}

impl std::error::Error for SnapshotBuildError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn freeze_stamps_epoch_and_serves() {
        let tree = PrQuadtree::build(
            Rect::unit(),
            2,
            [
                Point2::new(0.2, 0.2),
                Point2::new(0.8, 0.2),
                Point2::new(0.2, 0.8),
            ],
        )
        .unwrap();
        let snap = Snapshot::freeze(7, &tree).unwrap();
        assert_eq!(snap.epoch(), 7);
        assert_eq!(snap.len(), 3);
        assert_eq!(snap.region(), Rect::unit());
        assert!(snap.leaf_count() >= 1);
        assert!(snap.heap_bytes() > 0);
        let q = Rect::from_bounds(0.0, 0.0, 1.0, 0.5);
        assert_eq!(
            snap.range(&q),
            vec![Point2::new(0.2, 0.2), Point2::new(0.8, 0.2)]
        );
        assert_eq!(snap.count(&q), 2);
        assert_eq!(
            snap.knn(&Point2::new(0.9, 0.1), 1),
            vec![Point2::new(0.8, 0.2)]
        );
    }

    #[test]
    fn from_points_round_trips() {
        let snap = Snapshot::from_points(
            1,
            Rect::unit(),
            4,
            (0..50).map(|i| Point2::new((i as f64 + 0.5) / 50.0, 0.5)),
        )
        .unwrap();
        assert_eq!(snap.len(), 50);
        assert_eq!(snap.count(&Rect::unit()), 50);
        assert!(!snap.is_empty());
    }

    #[test]
    fn from_points_reports_build_errors() {
        let err = Snapshot::from_points(0, Rect::unit(), 0, []).unwrap_err();
        assert!(matches!(err, SnapshotBuildError::Tree(_)), "{err}");
        let err = Snapshot::from_points(0, Rect::unit(), 1, [Point2::new(2.0, 2.0)]).unwrap_err();
        assert!(err.to_string().contains("load tree"), "{err}");
    }

    #[test]
    fn verify_accepts_pristine_and_names_damaged_sections() {
        let snap = Snapshot::from_points(
            3,
            Rect::unit(),
            2,
            (0..40).map(|i| Point2::new((i as f64 + 0.5) / 40.0, (i as f64 * 0.37) % 1.0)),
        )
        .unwrap();
        snap.verify().expect("pristine snapshot verifies");
        for (bit, section) in [
            (5, popan_spatial::SnapshotSection::Points),
            (97, popan_spatial::SnapshotSection::Blocks),
            (11, popan_spatial::SnapshotSection::Leaves),
        ] {
            let mut damaged = snap.clone();
            assert!(damaged.corrupt_section(section, bit));
            let report = damaged.verify().unwrap_err();
            assert_eq!(report.epoch, 3);
            assert_eq!(report.damaged, vec![section], "{report}");
            assert_ne!(report.actual.combined, report.expected.combined);
            assert!(report.to_string().contains(&section.to_string()));
        }
        // The original is untouched: corruption operated on clones.
        snap.verify().unwrap();
    }

    #[test]
    fn epoch_restamp_preserves_the_checksum() {
        let snap = Snapshot::from_points(0, Rect::unit(), 4, [Point2::new(0.5, 0.5)]).unwrap();
        let digests = snap.digests();
        // Publisher-style re-stamp: digests must survive unchanged.
        let mut restamped = snap.clone();
        restamped.set_epoch(9);
        assert_eq!(restamped.digests(), digests);
        restamped.verify().unwrap();
    }

    #[test]
    fn stats_account_every_slab() {
        let snap = Snapshot::from_points(
            2,
            Rect::unit(),
            2,
            (0..64).map(|i| Point2::new(((i * 7) % 64) as f64 / 64.0 + 0.001, 0.5)),
        )
        .unwrap();
        let stats = snap.stats();
        assert_eq!(stats.epoch, 2);
        assert_eq!(stats.len, 64);
        assert_eq!(stats.leaf_count, snap.leaf_count());
        assert_eq!(stats.digests, snap.digests());
        // heap_bytes is the sum of the per-slab footprints — no slab
        // missing, none double-counted.
        let fp = snap.footprint();
        assert_eq!(stats.heap_bytes(), fp.leaves + fp.blocks + fp.points);
        assert_eq!(snap.heap_bytes(), stats.heap_bytes());
        assert!(fp.leaves > 0 && fp.blocks > 0 && fp.points > 0);
    }

    #[test]
    fn snapshots_are_send_and_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<Snapshot>();
    }
}
