//! The immutable, epoch-stamped read replica.
//!
//! A [`Snapshot`] is a [`LinearQuadtree`] — three flat, Morton-sorted
//! slabs (leaf records, leaf blocks, points) — plus the epoch it was
//! published at. Freezing happens once, on the write side; afterwards
//! the snapshot is strictly read-only and safely shared across threads
//! behind an [`std::sync::Arc`] (it is `Send + Sync` by construction:
//! no interior mutability anywhere).
//!
//! The serving forms are the `_into` methods: they write into
//! caller-owned buffers and a per-reader [`QueryScratch`], performing no
//! heap allocation once those have warmed to the workload's high-water
//! marks (`tests/zero_alloc_read.rs` pins this with a counting global
//! allocator).

use popan_geom::{Point2, Rect};
use popan_spatial::{FreezeError, LinearQuadtree, PrQuadtree, QueryScratch};

use crate::queryable::{canonical_sort, Queryable};

/// An immutable Morton-packed replica of a point set at one epoch.
#[derive(Debug, Clone)]
pub struct Snapshot {
    epoch: u64,
    index: LinearQuadtree,
}

impl Snapshot {
    /// Freezes `tree` into a snapshot stamped `epoch`.
    ///
    /// Fails with [`FreezeError::DepthExceedsMortonBits`] when the tree
    /// has leaves deeper than the Morton resolution (see
    /// [`LinearQuadtree::from_tree`]).
    pub fn freeze(epoch: u64, tree: &PrQuadtree) -> Result<Snapshot, FreezeError> {
        Ok(Snapshot {
            epoch,
            index: LinearQuadtree::from_tree(tree)?,
        })
    }

    /// Builds a snapshot directly from points: bulk-loads a PR quadtree
    /// with node capacity `capacity` over `region`, then freezes it.
    /// The route for structures that are not PR quadtrees (EXCELL, grid
    /// file, …): enumerate, rebuild, freeze.
    pub fn from_points(
        epoch: u64,
        region: Rect,
        capacity: usize,
        points: impl IntoIterator<Item = Point2>,
    ) -> Result<Snapshot, SnapshotBuildError> {
        let tree = PrQuadtree::build(region, capacity, points)
            .map_err(|e| SnapshotBuildError::Tree(e.to_string()))?;
        Snapshot::freeze(epoch, &tree).map_err(SnapshotBuildError::Freeze)
    }

    /// The epoch this snapshot was published at.
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    /// Re-stamps the epoch. Crate-internal: publisher-assigned epochs
    /// are the truth; user code never renumbers a published snapshot.
    pub(crate) fn set_epoch(&mut self, epoch: u64) {
        self.epoch = epoch;
    }

    /// The region covered.
    pub fn region(&self) -> Rect {
        self.index.region()
    }

    /// Number of stored points.
    pub fn len(&self) -> usize {
        self.index.len()
    }

    /// `true` when no points are stored.
    pub fn is_empty(&self) -> bool {
        self.index.is_empty()
    }

    /// Number of leaf records in the packed index.
    pub fn leaf_count(&self) -> usize {
        self.index.leaf_count()
    }

    /// Approximate heap footprint in bytes.
    pub fn heap_bytes(&self) -> usize {
        self.index.heap_bytes()
    }

    /// The underlying Morton-packed index.
    pub fn index(&self) -> &LinearQuadtree {
        &self.index
    }

    /// Serving-form range query: writes all stored points inside
    /// `query` into `out` (cleared first), sorted canonically.
    /// Allocation-free once `scratch` and `out` are warm.
    pub fn range_into(&self, query: &Rect, scratch: &mut QueryScratch, out: &mut Vec<Point2>) {
        self.index.range_query_into(query, scratch, out);
        canonical_sort(out);
    }

    /// Serving-form count: counts stored points inside `query` without
    /// materializing them. Allocation-free once `scratch` is warm.
    pub fn count_with(&self, query: &Rect, scratch: &mut QueryScratch) -> usize {
        self.index.count_in_range_with(query, scratch)
    }

    /// Serving-form k-NN: writes the `k` nearest points to `target`
    /// into `out` (cleared first), in the canonical k-NN order.
    /// Allocation-free once `scratch` and `out` are warm.
    pub fn knn_into(
        &self,
        target: &Point2,
        k: usize,
        scratch: &mut QueryScratch,
        out: &mut Vec<Point2>,
    ) {
        self.index.k_nearest_into(target, k, scratch, out);
    }
}

impl Queryable for Snapshot {
    fn len(&self) -> usize {
        self.len()
    }

    fn range(&self, query: &Rect) -> Vec<Point2> {
        let mut out = Vec::new();
        self.range_into(query, &mut QueryScratch::new(), &mut out);
        out
    }

    fn count(&self, query: &Rect) -> usize {
        self.count_with(query, &mut QueryScratch::new())
    }

    fn knn(&self, target: &Point2, k: usize) -> Vec<Point2> {
        let mut out = Vec::new();
        self.knn_into(target, k, &mut QueryScratch::new(), &mut out);
        out
    }
}

/// Errors from [`Snapshot::from_points`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SnapshotBuildError {
    /// Building the intermediate PR quadtree failed (bad parameters,
    /// out-of-region or non-finite points).
    Tree(String),
    /// Freezing failed (leaves below the Morton resolution).
    Freeze(FreezeError),
}

impl std::fmt::Display for SnapshotBuildError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SnapshotBuildError::Tree(msg) => write!(f, "building load tree: {msg}"),
            SnapshotBuildError::Freeze(e) => write!(f, "freezing: {e}"),
        }
    }
}

impl std::error::Error for SnapshotBuildError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn freeze_stamps_epoch_and_serves() {
        let tree = PrQuadtree::build(
            Rect::unit(),
            2,
            [
                Point2::new(0.2, 0.2),
                Point2::new(0.8, 0.2),
                Point2::new(0.2, 0.8),
            ],
        )
        .unwrap();
        let snap = Snapshot::freeze(7, &tree).unwrap();
        assert_eq!(snap.epoch(), 7);
        assert_eq!(snap.len(), 3);
        assert_eq!(snap.region(), Rect::unit());
        assert!(snap.leaf_count() >= 1);
        assert!(snap.heap_bytes() > 0);
        let q = Rect::from_bounds(0.0, 0.0, 1.0, 0.5);
        assert_eq!(
            snap.range(&q),
            vec![Point2::new(0.2, 0.2), Point2::new(0.8, 0.2)]
        );
        assert_eq!(snap.count(&q), 2);
        assert_eq!(
            snap.knn(&Point2::new(0.9, 0.1), 1),
            vec![Point2::new(0.8, 0.2)]
        );
    }

    #[test]
    fn from_points_round_trips() {
        let snap = Snapshot::from_points(
            1,
            Rect::unit(),
            4,
            (0..50).map(|i| Point2::new((i as f64 + 0.5) / 50.0, 0.5)),
        )
        .unwrap();
        assert_eq!(snap.len(), 50);
        assert_eq!(snap.count(&Rect::unit()), 50);
        assert!(!snap.is_empty());
    }

    #[test]
    fn from_points_reports_build_errors() {
        let err = Snapshot::from_points(0, Rect::unit(), 0, []).unwrap_err();
        assert!(matches!(err, SnapshotBuildError::Tree(_)), "{err}");
        let err = Snapshot::from_points(0, Rect::unit(), 1, [Point2::new(2.0, 2.0)]).unwrap_err();
        assert!(err.to_string().contains("load tree"), "{err}");
    }

    #[test]
    fn snapshots_are_send_and_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<Snapshot>();
    }
}
