//! The snapshot-serving query tier (ROADMAP item 1).
//!
//! The paper's population analysis characterizes what hierarchical
//! structures look like under insertion; this crate is the read side
//! that exploits it: freeze a live tree into an immutable, Morton-sorted
//! [`Snapshot`], publish it at an epoch, and serve `range` / `count` /
//! `knn` to any number of reader threads with **zero locks and zero heap
//! allocations on the hot path**.
//!
//! Three layers:
//!
//! * [`Queryable`] — one query trait over every point structure in the
//!   workspace (PR quadtree, bintree, point quadtree, `PrTreeNd<2>`,
//!   the linear quadtree, EXCELL, the grid file) plus the frozen boxed
//!   [`popan_spatial::reference::BoxedPrQuadtree`] oracle. The contract
//!   is *bit-identity*: every implementation returns byte-for-byte the
//!   same answer for the same data, because results follow the canonical
//!   orders ([`popan_geom::Point2::canonical_cmp`] for ranges,
//!   [`popan_spatial::knn_cmp`] for k-NN). The differential suite in
//!   `tests/oracle_equivalence.rs` enforces this against the oracle.
//! * [`Snapshot`] — an epoch-stamped, immutable
//!   [`popan_spatial::LinearQuadtree`]: three flat slabs (leaf records,
//!   blocks, points) sorted by locational code, built by
//!   [`Snapshot::freeze`] from a PR quadtree or
//!   [`Snapshot::from_points`] from anything else.
//! * [`SnapshotPublisher`] / [`SnapshotReader`] / [`QueryService`] — the
//!   epoch protocol (DESIGN.md §10): a single writer publishes into a
//!   double-buffered pair of slots and then advances an atomic epoch;
//!   readers serve from a cached [`std::sync::Arc`] guard and re-sync
//!   opportunistically (`try_lock`, falling back to the cached complete
//!   snapshot), so a reader never blocks and never observes a torn
//!   snapshot. `tests/epoch_publish.rs` drives N readers under a seeded
//!   schedule and asserts the merged result log is bit-identical for 1
//!   and 4 readers.
//!
//! The tier self-heals (DESIGN.md §12):
//!
//! * **Integrity** — every [`Snapshot`] carries per-section FNV-1a 64
//!   digests computed at freeze; [`Snapshot::verify`] recomputes them
//!   and names any damaged section in a typed
//!   [`snapshot::SnapshotCorruption`] report.
//! * **Quarantine and rollback** — [`SnapshotPublisher::publish`]
//!   validates every candidate *before* the epoch swap; a corrupt one
//!   lands in the bounded [`publisher::QuarantineLog`] and the
//!   last-good epoch keeps serving. [`QueryService::health`] reports
//!   the last-good epoch, rejection count, and degraded-answer count.
//! * **Budgeted degraded queries** — `range_bounded` / `count_bounded`
//!   / `knn_bounded` take a [`popan_spatial::CostBudget`] in
//!   deterministic work units (leaves scanned, points read — never
//!   wall clock); on exhaustion the answer is a *guaranteed canonical
//!   prefix* of the full answer. [`budget::budget_for`] derives the
//!   default budget from the split-spec occupancy model (expected
//!   visits ≈ `c·ln n` + selectivity-scaled leaf mass).
//! * **Chaos-tested** — `tests/chaos.rs` drives publish rounds under a
//!   seeded fault plan (`corrupt:<section>`, `publish-stall`,
//!   `reject-epoch`) and asserts the service never serves a damaged
//!   snapshot, answers stay bit-identical to the last-good oracle, and
//!   recovery is byte-identical to a never-faulted run.
//!
//! ```
//! use popan_geom::{Point2, Rect};
//! use popan_query::{QueryService, Queryable, Snapshot};
//! use popan_spatial::PrQuadtree;
//!
//! let tree = PrQuadtree::build(
//!     Rect::unit(),
//!     4,
//!     [Point2::new(0.2, 0.3), Point2::new(0.7, 0.6)],
//! )
//! .unwrap();
//! let mut service = QueryService::new(Snapshot::freeze(0, &tree).unwrap());
//! let mut reader = service.reader();
//! let hits = reader.current().range(&Rect::from_bounds(0.0, 0.0, 0.5, 0.5));
//! assert_eq!(hits, vec![Point2::new(0.2, 0.3)]);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod batch;
pub mod budget;
pub mod publisher;
pub mod queryable;
pub mod snapshot;

pub use batch::{BatchAnswers, BatchScratch};
pub use budget::{budget_for, default_budget, DEFAULT_SLACK};
pub use publisher::{
    PublishError, QuarantineCause, QuarantineEntry, QuarantineLog, QueryService, ReaderError,
    ServiceHealth, SnapshotPublisher, SnapshotReader, QUARANTINE_LOG_CAP,
};
pub use queryable::{canonical_sort, knn_by_scan, range_by_scan, Queryable};
pub use snapshot::{Snapshot, SnapshotBuildError, SnapshotCorruption, SnapshotStats};
