//! Morton-batched query execution (DESIGN.md §15).
//!
//! Serving a batch of queries one by one walks the Morton-packed slabs
//! in whatever order the caller happened to submit, so consecutive
//! queries land in unrelated slab regions and every traversal starts
//! cold. The batch forms here sort the query set by the Morton code of
//! each query's anchor (a range's low corner, a k-NN's target) before
//! executing, so consecutive traversals touch neighboring leaf runs and
//! the slab walk stays cache-sequential — while one [`QueryScratch`]
//! and one answer arena are reused across the whole batch.
//!
//! # The permutation contract
//!
//! Reordering is invisible to the caller. Each answer is computed by
//! the *same* serving form the serial path uses (`range_into`,
//! `count_with`, `knn_into`), so each individual answer is bit-identical
//! to a serial call — canonical order included — and answers are
//! addressed by the caller's original query index: execution order is
//! an internal permutation, recorded in the scratch and applied in
//! reverse when results are written. `BatchAnswers::answer(i)` is the
//! answer to `queries[i]`, always.
//!
//! Allocation behaves like the serial forms: nothing is allocated once
//! the scratch and answer buffers have warmed to the workload's
//! high-water marks (the sort is an in-place unstable sort; the
//! differential suite and the Q2 lint rule pin this).

use popan_geom::morton;
use popan_geom::{Point2, Rect};
use popan_spatial::QueryScratch;

use crate::publisher::SnapshotReader;
use crate::snapshot::Snapshot;

/// Reusable state for batch execution: the per-query scratch, the
/// execution-order permutation, and a staging buffer for one answer.
/// Contents are meaningless between calls — one scratch can serve any
/// sequence of batches against any snapshots.
#[derive(Debug, Default)]
pub struct BatchScratch {
    query: QueryScratch,
    /// `(morton key of anchor, original index)` — sorted to give the
    /// execution order.
    order: Vec<(u64, u32)>,
    /// One query's answer, staged before appending to the arena.
    staged: Vec<Point2>,
}

impl BatchScratch {
    /// Creates an empty scratch (buffers warm up on first use).
    pub fn new() -> BatchScratch {
        BatchScratch::default()
    }
}

/// Answers for one batch, in the caller's original query order.
///
/// Points live in one flat arena in *execution* order; the span table,
/// indexed by original query position, is the permutation index that
/// maps each query to its slice. The arena is reused across batches.
#[derive(Debug, Default, Clone)]
pub struct BatchAnswers {
    points: Vec<Point2>,
    spans: Vec<(u32, u32)>,
}

impl BatchAnswers {
    /// Creates an empty answer set.
    pub fn new() -> BatchAnswers {
        BatchAnswers::default()
    }

    /// Number of answers (one per query in the batch).
    pub fn len(&self) -> usize {
        self.spans.len()
    }

    /// `true` when the batch was empty.
    pub fn is_empty(&self) -> bool {
        self.spans.is_empty()
    }

    /// The answer to the `i`-th query *as originally submitted* —
    /// bit-identical, canonical order included, to the corresponding
    /// serial serving form.
    pub fn answer(&self, i: usize) -> &[Point2] {
        let (start, len) = self.spans[i];
        &self.points[start as usize..start as usize + len as usize]
    }

    /// All answers in original query order.
    pub fn iter(&self) -> impl Iterator<Item = &[Point2]> + '_ {
        (0..self.spans.len()).map(|i| self.answer(i))
    }

    /// Total points across all answers.
    pub fn total_points(&self) -> usize {
        self.points.len()
    }

    fn reset(&mut self, queries: usize) {
        self.points.clear();
        self.spans.clear();
        self.spans.resize(queries, (0, 0));
    }

    fn push_staged(&mut self, i: usize, staged: &[Point2]) {
        let start = self.points.len() as u32;
        self.points.extend_from_slice(staged);
        self.spans[i] = (start, staged.len() as u32);
    }
}

/// The Morton key a query is scheduled by: its anchor point quantized
/// over the snapshot region. Anchors outside the region saturate to the
/// boundary cells, which keeps the schedule monotone without branching;
/// the key orders execution only and never affects any answer.
fn anchor_key(region: &Rect, x: f64, y: f64) -> u64 {
    morton::morton_of_point(&Point2 { x, y }, region)
}

/// Fills `scratch.order` with the Morton execution schedule.
fn schedule(scratch: &mut BatchScratch, keys: impl Iterator<Item = u64>) {
    scratch.order.clear();
    scratch
        .order
        .extend(keys.enumerate().map(|(i, k)| (k, i as u32)));
    scratch.order.sort_unstable();
}

impl Snapshot {
    /// Batch range query: answers every rectangle in `queries`,
    /// executing in Morton order of the rectangles' low corners.
    /// `out.answer(i)` is bit-identical (canonical order included) to
    /// `range_into(&queries[i], ..)`.
    pub fn range_batch_into(
        &self,
        queries: &[Rect],
        scratch: &mut BatchScratch,
        out: &mut BatchAnswers,
    ) {
        let region = self.region();
        schedule(
            scratch,
            queries
                .iter()
                .map(|q| anchor_key(&region, q.x().lo(), q.y().lo())),
        );
        out.reset(queries.len());
        for k in 0..scratch.order.len() {
            let i = scratch.order[k].1 as usize;
            let mut staged = std::mem::take(&mut scratch.staged);
            self.range_into(&queries[i], &mut scratch.query, &mut staged);
            out.push_staged(i, &staged);
            scratch.staged = staged;
        }
    }

    /// Batch count: `out[i]` equals `count_with(&queries[i], ..)`, with
    /// execution Morton-ordered like [`Snapshot::range_batch_into`].
    pub fn count_batch_with(
        &self,
        queries: &[Rect],
        scratch: &mut BatchScratch,
        out: &mut Vec<usize>,
    ) {
        let region = self.region();
        schedule(
            scratch,
            queries
                .iter()
                .map(|q| anchor_key(&region, q.x().lo(), q.y().lo())),
        );
        out.clear();
        out.resize(queries.len(), 0);
        for k in 0..scratch.order.len() {
            let i = scratch.order[k].1 as usize;
            out[i] = self.count_with(&queries[i], &mut scratch.query);
        }
    }

    /// Batch k-NN: for each target, its `k` nearest stored points in
    /// the canonical k-NN order; execution is Morton-ordered by target.
    /// `out.answer(i)` is bit-identical to `knn_into(&targets[i], k, ..)`.
    pub fn knn_batch_into(
        &self,
        targets: &[Point2],
        k: usize,
        scratch: &mut BatchScratch,
        out: &mut BatchAnswers,
    ) {
        let region = self.region();
        schedule(
            scratch,
            targets.iter().map(|t| anchor_key(&region, t.x, t.y)),
        );
        out.reset(targets.len());
        for j in 0..scratch.order.len() {
            let i = scratch.order[j].1 as usize;
            let mut staged = std::mem::take(&mut scratch.staged);
            self.knn_into(&targets[i], k, &mut scratch.query, &mut staged);
            out.push_staged(i, &staged);
            scratch.staged = staged;
        }
    }
}

impl SnapshotReader {
    /// [`Snapshot::range_batch_into`] against the reader's cached
    /// snapshot. Serving never resyncs — call
    /// [`SnapshotReader::refresh`] first when the freshest epoch is
    /// wanted; the split keeps the batch entry on the zero-allocation
    /// read path (the Q2 lint rule walks it).
    pub fn range_batch_into(
        &self,
        queries: &[Rect],
        scratch: &mut BatchScratch,
        out: &mut BatchAnswers,
    ) {
        self.cached().range_batch_into(queries, scratch, out);
    }

    /// [`Snapshot::count_batch_with`] against the reader's cached
    /// snapshot (see [`SnapshotReader::range_batch_into`] on refresh).
    pub fn count_batch_with(
        &self,
        queries: &[Rect],
        scratch: &mut BatchScratch,
        out: &mut Vec<usize>,
    ) {
        self.cached().count_batch_with(queries, scratch, out);
    }

    /// [`Snapshot::knn_batch_into`] against the reader's cached
    /// snapshot (see [`SnapshotReader::range_batch_into`] on refresh).
    pub fn knn_batch_into(
        &self,
        targets: &[Point2],
        k: usize,
        scratch: &mut BatchScratch,
        out: &mut BatchAnswers,
    ) {
        self.cached().knn_batch_into(targets, k, scratch, out);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pts() -> Vec<Point2> {
        (0..500)
            .map(|i| {
                Point2::new(
                    (i as f64 * 0.618_033_9) % 1.0,
                    (i as f64 * 0.414_213_6) % 1.0,
                )
            })
            .collect()
    }

    fn queries() -> Vec<Rect> {
        (0..64)
            .map(|i| {
                let x = (i as f64 * 0.31) % 0.8;
                let y = (i as f64 * 0.47) % 0.8;
                Rect::from_bounds(x, y, x + 0.17, y + 0.13)
            })
            .collect()
    }

    #[test]
    fn batch_answers_match_serial_in_original_order() {
        let snap = Snapshot::from_points(1, Rect::unit(), 4, pts()).unwrap();
        let qs = queries();
        let mut scratch = BatchScratch::new();
        let mut out = BatchAnswers::new();
        snap.range_batch_into(&qs, &mut scratch, &mut out);
        assert_eq!(out.len(), qs.len());

        let mut serial_scratch = QueryScratch::default();
        let mut serial = Vec::new();
        for (i, q) in qs.iter().enumerate() {
            snap.range_into(q, &mut serial_scratch, &mut serial);
            assert_eq!(out.answer(i), serial.as_slice(), "query {i}");
        }
    }

    #[test]
    fn count_batch_matches_serial() {
        let snap = Snapshot::from_points(1, Rect::unit(), 4, pts()).unwrap();
        let qs = queries();
        let mut scratch = BatchScratch::new();
        let mut counts = Vec::new();
        snap.count_batch_with(&qs, &mut scratch, &mut counts);
        let mut serial_scratch = QueryScratch::default();
        for (i, q) in qs.iter().enumerate() {
            assert_eq!(
                counts[i],
                snap.count_with(q, &mut serial_scratch),
                "query {i}"
            );
        }
    }

    #[test]
    fn knn_batch_matches_serial() {
        let snap = Snapshot::from_points(1, Rect::unit(), 4, pts()).unwrap();
        let targets: Vec<Point2> = (0..48)
            .map(|i| Point2::new((i as f64 * 0.71) % 1.0, (i as f64 * 0.53) % 1.0))
            .collect();
        let mut scratch = BatchScratch::new();
        let mut out = BatchAnswers::new();
        snap.knn_batch_into(&targets, 5, &mut scratch, &mut out);
        let mut serial_scratch = QueryScratch::default();
        let mut serial = Vec::new();
        for (i, t) in targets.iter().enumerate() {
            snap.knn_into(t, 5, &mut serial_scratch, &mut serial);
            assert_eq!(out.answer(i), serial.as_slice(), "target {i}");
        }
    }

    #[test]
    fn empty_batch_and_scratch_reuse() {
        let snap = Snapshot::from_points(1, Rect::unit(), 4, pts()).unwrap();
        let mut scratch = BatchScratch::new();
        let mut out = BatchAnswers::new();
        snap.range_batch_into(&[], &mut scratch, &mut out);
        assert!(out.is_empty());
        assert_eq!(out.total_points(), 0);
        // Same scratch serves a real batch afterwards.
        let qs = queries();
        snap.range_batch_into(&qs, &mut scratch, &mut out);
        assert_eq!(out.len(), qs.len());
        assert!(out.total_points() > 0);
        assert_eq!(out.iter().count(), qs.len());
    }
}
