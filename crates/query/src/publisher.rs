//! Epoch publishing: single writer, many wait-free readers — with a
//! quarantine gate in front of the swap.
//!
//! The protocol (DESIGN.md §10, §12) is a double-buffered epoch swap:
//!
//! * The shared state is one atomic epoch counter plus two slots, each
//!   holding a complete `(epoch, Arc<Snapshot>)` pair. Epoch `e` lives
//!   in slot `e & 1`, so the writer always overwrites the slot readers
//!   of the *current* epoch are not directed to.
//! * **Validate** (writer): before any shared mutation, the candidate
//!   runs [`Snapshot::verify`] against its freeze-time checksums. A
//!   corrupt candidate never touches a slot: it is recorded in the
//!   bounded [`QuarantineLog`], the rejection counter ticks, and the
//!   last-good epoch keeps serving unchanged ([`PublishError`] tells
//!   the writer why).
//! * **Publish** (writer): write the new pair into slot `(e+1) & 1`,
//!   *then* advance the epoch counter with `Release`. The slot is
//!   complete before any reader can be routed to it.
//! * **Refresh** (reader): load the epoch with `Acquire`; if it moved,
//!   `try_lock` the indicated slot and clone the `Arc` out. The slot
//!   lock is only ever held for that clone (or the writer's pair
//!   store), never while answering queries — and because a slot is
//!   written *before* the epoch advances, a successfully locked slot
//!   always holds a complete snapshot at least as new as the loaded
//!   epoch. If `try_lock` loses the race with a concurrent publish, the
//!   reader simply keeps serving its cached snapshot — still complete,
//!   at worst one epoch stale — and retries on the next query. Readers
//!   hold the shared state weakly: if the publisher is dropped
//!   mid-flight, [`SnapshotReader::try_refresh`] reports
//!   [`ReaderError::PublisherGone`] and the reader keeps serving its
//!   cached (complete) snapshot forever.
//!
//! Consequences, which `tests/epoch_publish.rs` and `tests/chaos.rs`
//! pin down:
//!
//! * Readers never block and never allocate: the hot path is one atomic
//!   load plus (rarely) one uncontended `try_lock` and an `Arc` clone.
//! * A reader can never observe a torn *or damaged* snapshot: snapshots
//!   are immutable after freeze, the only shared mutation — the slot
//!   pair store — happens before the epoch that routes readers to it,
//!   and the quarantine gate keeps corrupt candidates out of the slots
//!   entirely.
//! * Per-reader epochs are monotone: a refresh only ever installs a
//!   strictly newer snapshot.
//!
//! This module is the query tier's *only* home of lock types: the
//! in-tree linter's Q1 rule forbids `Mutex`/`RwLock` anywhere else in
//! the crate, keeping the read paths honest by construction. Its R1
//! rule additionally bans `unwrap`/`expect` in this crate's library
//! code: a poisoned slot mutex (a reader panicked mid-`Arc`-clone) is
//! recovered with [`PoisonError::into_inner`] — the slot pair is always
//! complete, so the data behind a poisoned lock is still valid.

use std::collections::VecDeque;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, PoisonError, Weak};

use popan_geom::{Point2, Rect};
use popan_spatial::{BoundedOutcome, CostBudget, FreezeError, PrQuadtree, QueryScratch};

use crate::snapshot::{Snapshot, SnapshotCorruption};

/// Rejections the [`QuarantineLog`] retains before evicting the oldest
/// (evictions are counted, never silent).
pub const QUARANTINE_LOG_CAP: usize = 32;

/// One published pair. Slot `i` only ever holds epochs `e ≡ i (mod 2)`.
struct Slot {
    epoch: u64,
    snap: Arc<Snapshot>,
}

/// State shared between the writer and all readers.
struct Shared {
    /// The latest published epoch; advanced with `Release` after the
    /// owning slot holds the complete pair.
    epoch: AtomicU64,
    /// Double buffer, indexed by `epoch & 1`.
    slots: [Mutex<Slot>; 2],
    /// Degraded ([`BoundedOutcome::Partial`]) answers served across all
    /// readers; feeds [`ServiceHealth::degraded_answers`].
    degraded: AtomicU64,
}

/// Recovers the slot pair behind a poisoned lock: the pair is written
/// atomically under the lock and is complete at every instant a reader
/// could panic, so the data is still valid.
fn relock<T>(r: Result<T, PoisonError<T>>) -> T {
    r.unwrap_or_else(PoisonError::into_inner)
}

/// The single writer of an epoch sequence.
///
/// Not `Clone` — single-writer is a type-level invariant. Create
/// readers with [`SnapshotPublisher::subscribe`].
pub struct SnapshotPublisher {
    shared: Arc<Shared>,
    current: u64,
    rejected: u64,
    quarantine: QuarantineLog,
}

impl SnapshotPublisher {
    /// Creates a publisher whose initial snapshot is `initial`,
    /// re-stamped as epoch 0 and installed in both slots (so any routed
    /// read is valid from the start).
    pub fn new(initial: Snapshot) -> SnapshotPublisher {
        let snap = Arc::new(initial.with_epoch(0));
        let shared = Arc::new(Shared {
            epoch: AtomicU64::new(0),
            slots: [
                Mutex::new(Slot {
                    epoch: 0,
                    snap: Arc::clone(&snap),
                }),
                Mutex::new(Slot { epoch: 0, snap }),
            ],
            degraded: AtomicU64::new(0),
        });
        SnapshotPublisher {
            shared,
            current: 0,
            rejected: 0,
            quarantine: QuarantineLog::new(),
        }
    }

    /// The latest published (last-good) epoch.
    pub fn epoch(&self) -> u64 {
        self.current
    }

    /// Validates `snapshot` and, if its checksums hold, publishes it as
    /// the next epoch and returns that epoch. The snapshot's embedded
    /// epoch is overwritten with the assigned one; readers observe the
    /// new epoch only after the slot holds the complete pair.
    ///
    /// A candidate that fails [`Snapshot::verify`] is quarantined
    /// instead: no slot is touched, the last-good epoch keeps serving,
    /// the rejection is logged, and the corruption report comes back as
    /// [`PublishError::Corrupt`]. A later valid candidate takes the
    /// same epoch number the rejected one would have — the published
    /// sequence stays gapless.
    pub fn publish(&mut self, snapshot: Snapshot) -> Result<u64, PublishError> {
        if let Err(report) = snapshot.verify() {
            self.log_rejection(&snapshot, QuarantineCause::Corrupt(report.clone()));
            return Err(PublishError::Corrupt(report));
        }
        let epoch = self.current + 1;
        let snap = Arc::new(snapshot.with_epoch(epoch));
        {
            let mut slot = relock(self.shared.slots[(epoch & 1) as usize].lock());
            *slot = Slot { epoch, snap };
        }
        self.shared.epoch.store(epoch, Ordering::Release);
        self.current = epoch;
        Ok(epoch)
    }

    /// Forcibly rejects `snapshot` without publishing it (the
    /// `reject-epoch` fault in the chaos vocabulary): logs a
    /// [`QuarantineCause::Forced`] entry and returns the epoch the
    /// candidate would have taken. The last-good epoch keeps serving.
    pub fn quarantine(&mut self, snapshot: &Snapshot) -> u64 {
        self.log_rejection(snapshot, QuarantineCause::Forced);
        self.current + 1
    }

    fn log_rejection(&mut self, snapshot: &Snapshot, cause: QuarantineCause) {
        self.rejected += 1;
        self.quarantine.push(QuarantineEntry {
            seq: self.rejected,
            candidate_epoch: self.current + 1,
            len: snapshot.len(),
            cause,
        });
    }

    /// Freezes `tree`, validates, and publishes it as the next epoch.
    pub fn freeze_and_publish(&mut self, tree: &PrQuadtree) -> Result<u64, PublishError> {
        let snap = Snapshot::freeze(0, tree).map_err(PublishError::Freeze)?;
        self.publish(snap)
    }

    /// The quarantine log: every rejection since startup, newest last,
    /// bounded at [`QUARANTINE_LOG_CAP`] retained entries.
    pub fn quarantine_log(&self) -> &QuarantineLog {
        &self.quarantine
    }

    /// Aggregate serving health: last-good epoch, rejections, degraded
    /// answers across every subscribed reader.
    pub fn health(&self) -> ServiceHealth {
        ServiceHealth {
            last_good_epoch: self.current,
            rejected: self.rejected,
            degraded_answers: self.shared.degraded.load(Ordering::Relaxed),
            quarantined: self.quarantine.len(),
        }
    }

    /// Creates a reader handle starting at the latest published epoch.
    pub fn subscribe(&self) -> SnapshotReader {
        let epoch = self.shared.epoch.load(Ordering::Acquire);
        let slot = relock(self.shared.slots[(epoch & 1) as usize].lock());
        SnapshotReader {
            shared: Arc::downgrade(&self.shared),
            cached_epoch: slot.epoch,
            cached: Arc::clone(&slot.snap),
        }
    }
}

/// Why a publish was refused.
#[derive(Debug, Clone, PartialEq)]
pub enum PublishError {
    /// The candidate failed checksum verification; the report names the
    /// damaged section(s). The candidate was quarantined and the
    /// last-good epoch keeps serving.
    Corrupt(SnapshotCorruption),
    /// Freezing the tree failed before validation could even run.
    Freeze(FreezeError),
}

impl std::fmt::Display for PublishError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            PublishError::Corrupt(report) => write!(f, "candidate quarantined: {report}"),
            PublishError::Freeze(e) => write!(f, "freezing candidate: {e}"),
        }
    }
}

impl std::error::Error for PublishError {}

/// Why a candidate landed in the [`QuarantineLog`].
#[derive(Debug, Clone, PartialEq)]
pub enum QuarantineCause {
    /// Checksum verification failed with this report.
    Corrupt(SnapshotCorruption),
    /// Operator- or fault-plan-forced rejection
    /// ([`SnapshotPublisher::quarantine`]).
    Forced,
}

/// One rejected candidate.
#[derive(Debug, Clone, PartialEq)]
pub struct QuarantineEntry {
    /// 1-based rejection number, stable even after log eviction.
    pub seq: u64,
    /// The epoch the candidate would have been published at.
    pub candidate_epoch: u64,
    /// Points the rejected candidate claimed to hold.
    pub len: usize,
    /// Why it was rejected.
    pub cause: QuarantineCause,
}

/// A bounded, deterministic record of rejected candidates: entries are
/// kept in rejection order, newest last; once more than
/// [`QUARANTINE_LOG_CAP`] accumulate the oldest are evicted and
/// counted in [`QuarantineLog::evicted`].
#[derive(Debug, Default)]
pub struct QuarantineLog {
    entries: VecDeque<QuarantineEntry>,
    evicted: u64,
}

impl QuarantineLog {
    fn new() -> QuarantineLog {
        QuarantineLog::default()
    }

    fn push(&mut self, entry: QuarantineEntry) {
        self.entries.push_back(entry);
        while self.entries.len() > QUARANTINE_LOG_CAP {
            self.entries.pop_front();
            self.evicted += 1;
        }
    }

    /// Retained entries, oldest first.
    pub fn iter(&self) -> impl Iterator<Item = &QuarantineEntry> {
        self.entries.iter()
    }

    /// The most recent rejection, if any.
    pub fn latest(&self) -> Option<&QuarantineEntry> {
        self.entries.back()
    }

    /// Number of retained entries (≤ [`QUARANTINE_LOG_CAP`]).
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// `true` when nothing has ever been rejected (or everything
    /// retained was evicted — see [`QuarantineLog::evicted`]).
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Entries evicted to honor the cap.
    pub fn evicted(&self) -> u64 {
        self.evicted
    }
}

/// Aggregate serving health, the shape `popan-experiments` and the ops
/// tooling poll.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ServiceHealth {
    /// The epoch currently being served (never a quarantined one).
    pub last_good_epoch: u64,
    /// Candidates rejected since startup (corrupt + forced).
    pub rejected: u64,
    /// Degraded ([`BoundedOutcome::Partial`]) answers served across all
    /// readers.
    pub degraded_answers: u64,
    /// Entries currently retained in the quarantine log.
    pub quarantined: usize,
}

/// Reader-side failures. The reader's cached snapshot stays valid and
/// serving through every one of these.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ReaderError {
    /// The publisher (and its shared epoch state) has been dropped; no
    /// newer epoch can ever arrive. The cached snapshot keeps serving.
    PublisherGone,
}

impl std::fmt::Display for ReaderError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ReaderError::PublisherGone => {
                f.write_str("publisher dropped; serving the cached snapshot")
            }
        }
    }
}

impl std::error::Error for ReaderError {}

/// A reader handle: serves queries from a cached [`Arc<Snapshot>`]
/// guard, re-syncing opportunistically. One per reader thread
/// (`SnapshotReader` is `Send`; create as many as needed).
///
/// The shared epoch state is held weakly: dropping the publisher does
/// not wedge readers — they degrade to serving the cached snapshot and
/// report [`ReaderError::PublisherGone`] on [`SnapshotReader::try_refresh`].
pub struct SnapshotReader {
    shared: Weak<Shared>,
    cached_epoch: u64,
    cached: Arc<Snapshot>,
}

impl SnapshotReader {
    /// Re-syncs with the publisher if a newer epoch is out; `Ok(true)`
    /// when a newer snapshot was installed, `Ok(false)` when already
    /// current or the slot `try_lock` lost a race with a concurrent
    /// publish (the cached snapshot is still complete, at worst one
    /// epoch stale). [`ReaderError::PublisherGone`] when the publisher
    /// has been dropped — the cached snapshot remains valid and keeps
    /// serving. Never blocks; performs no heap allocation.
    pub fn try_refresh(&mut self) -> Result<bool, ReaderError> {
        let shared = self.shared.upgrade().ok_or(ReaderError::PublisherGone)?;
        let observed = shared.epoch.load(Ordering::Acquire);
        if observed == self.cached_epoch {
            return Ok(false);
        }
        if let Ok(slot) = shared.slots[(observed & 1) as usize].try_lock() {
            // The slot is written before the epoch advances, so it holds
            // a complete pair with epoch ≥ observed > cached (the epoch
            // counter is monotone); the guard keeps per-reader epochs
            // monotone even if a future refactor weakens that argument.
            if slot.epoch > self.cached_epoch {
                self.cached_epoch = slot.epoch;
                self.cached = Arc::clone(&slot.snap);
                return Ok(true);
            }
        }
        Ok(false)
    }

    /// [`SnapshotReader::try_refresh`], treating a vanished publisher as
    /// "nothing newer" — the ergonomic form for readers that don't care
    /// why no new epoch arrived.
    pub fn refresh(&mut self) -> bool {
        self.try_refresh().unwrap_or(false)
    }

    /// The freshest available snapshot: refreshes opportunistically,
    /// then returns the guard.
    pub fn current(&mut self) -> &Snapshot {
        self.refresh();
        &self.cached
    }

    /// The cached snapshot without attempting a refresh.
    pub fn cached(&self) -> &Snapshot {
        &self.cached
    }

    /// An owned guard on the freshest available snapshot, for holding
    /// across a batch while the writer keeps publishing.
    pub fn guard(&mut self) -> Arc<Snapshot> {
        self.refresh();
        Arc::clone(&self.cached)
    }

    /// The epoch of the cached snapshot.
    pub fn epoch(&self) -> u64 {
        self.cached_epoch
    }

    /// Budgeted range query against the freshest available snapshot; a
    /// [`BoundedOutcome::Partial`] answer (the guaranteed canonical
    /// prefix) ticks the service-wide degraded-answer counter.
    pub fn range_bounded(
        &mut self,
        query: &Rect,
        budget: &CostBudget,
        scratch: &mut QueryScratch,
        out: &mut Vec<Point2>,
    ) -> BoundedOutcome {
        self.refresh();
        let outcome = self.cached.range_bounded_into(query, budget, scratch, out);
        self.note(&outcome);
        outcome
    }

    /// Budgeted count against the freshest available snapshot; the
    /// count is the length of the prefix [`SnapshotReader::range_bounded`]
    /// would return under the same budget.
    pub fn count_bounded(
        &mut self,
        query: &Rect,
        budget: &CostBudget,
        scratch: &mut QueryScratch,
    ) -> (usize, BoundedOutcome) {
        self.refresh();
        let (n, outcome) = self.cached.count_bounded_with(query, budget, scratch);
        self.note(&outcome);
        (n, outcome)
    }

    /// Budgeted k-NN against the freshest available snapshot; a partial
    /// answer is a true prefix of the full k-NN answer.
    pub fn knn_bounded(
        &mut self,
        target: &Point2,
        k: usize,
        budget: &CostBudget,
        scratch: &mut QueryScratch,
        out: &mut Vec<Point2>,
    ) -> BoundedOutcome {
        self.refresh();
        let outcome = self
            .cached
            .knn_bounded_into(target, k, budget, scratch, out);
        self.note(&outcome);
        outcome
    }

    fn note(&self, outcome: &BoundedOutcome) {
        if !outcome.is_complete() {
            if let Some(shared) = self.shared.upgrade() {
                shared.degraded.fetch_add(1, Ordering::Relaxed);
            }
        }
    }
}

/// The high-level facade: a publisher plus reader factory, the shape
/// the README quickstart and the experiment driver use.
pub struct QueryService {
    publisher: SnapshotPublisher,
}

impl QueryService {
    /// Starts a service serving `initial` as epoch 0.
    pub fn new(initial: Snapshot) -> QueryService {
        QueryService {
            publisher: SnapshotPublisher::new(initial),
        }
    }

    /// The latest published epoch.
    pub fn epoch(&self) -> u64 {
        self.publisher.epoch()
    }

    /// Creates a reader handle (one per reader thread).
    pub fn reader(&self) -> SnapshotReader {
        self.publisher.subscribe()
    }

    /// Validates and publishes a pre-built snapshot as the next epoch;
    /// corrupt candidates are quarantined and the last-good epoch keeps
    /// serving (see [`SnapshotPublisher::publish`]).
    pub fn publish(&mut self, snapshot: Snapshot) -> Result<u64, PublishError> {
        self.publisher.publish(snapshot)
    }

    /// Forcibly quarantines a candidate without publishing it.
    pub fn quarantine(&mut self, snapshot: &Snapshot) -> u64 {
        self.publisher.quarantine(snapshot)
    }

    /// Freezes `tree`, validates, and publishes it as the next epoch.
    pub fn freeze_and_publish(&mut self, tree: &PrQuadtree) -> Result<u64, PublishError> {
        self.publisher.freeze_and_publish(tree)
    }

    /// Aggregate serving health (last-good epoch, rejections, degraded
    /// answers).
    pub fn health(&self) -> ServiceHealth {
        self.publisher.health()
    }

    /// The quarantine log.
    pub fn quarantine_log(&self) -> &QuarantineLog {
        self.publisher.quarantine_log()
    }
}

impl Snapshot {
    /// Re-stamps the epoch (publisher-assigned epochs are the truth).
    fn with_epoch(mut self, epoch: u64) -> Snapshot {
        self.set_epoch(epoch);
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::queryable::Queryable;
    use popan_spatial::SnapshotSection;

    fn snap_of(n: usize) -> Snapshot {
        Snapshot::from_points(
            0,
            Rect::unit(),
            2,
            (0..n).map(|i| Point2::new((i as f64 + 0.5) / n as f64, 0.5)),
        )
        .unwrap()
    }

    #[test]
    fn publish_advances_epochs_and_readers_follow() {
        let mut publisher = SnapshotPublisher::new(snap_of(1));
        let mut reader = publisher.subscribe();
        assert_eq!(reader.epoch(), 0);
        assert_eq!(reader.current().len(), 1);

        assert_eq!(publisher.publish(snap_of(2)).unwrap(), 1);
        assert_eq!(publisher.publish(snap_of(3)).unwrap(), 2);
        assert_eq!(publisher.epoch(), 2);
        // The reader skips straight to the freshest epoch.
        assert_eq!(reader.current().len(), 3);
        assert_eq!(reader.epoch(), 2);
        assert_eq!(reader.current().epoch(), 2);
    }

    #[test]
    fn cached_serves_without_resync() {
        let mut publisher = SnapshotPublisher::new(snap_of(4));
        let reader = publisher.subscribe();
        publisher.publish(snap_of(5)).unwrap();
        // `cached` deliberately does not chase the new epoch.
        assert_eq!(reader.cached().len(), 4);
    }

    #[test]
    fn guard_outlives_subsequent_publishes() {
        let mut publisher = SnapshotPublisher::new(snap_of(2));
        let mut reader = publisher.subscribe();
        let guard = reader.guard();
        for _ in 0..5 {
            publisher.publish(snap_of(7)).unwrap();
        }
        // The guard pins the old snapshot; a refresh then moves on.
        assert_eq!(guard.len(), 2);
        assert!(reader.refresh());
        assert_eq!(reader.cached().len(), 7);
        assert!(!reader.refresh(), "second refresh is a no-op");
    }

    #[test]
    fn corrupt_candidates_are_quarantined_and_last_good_serves() {
        let mut publisher = SnapshotPublisher::new(snap_of(3));
        let mut reader = publisher.subscribe();
        assert_eq!(publisher.publish(snap_of(5)).unwrap(), 1);

        let mut bad = snap_of(9);
        assert!(bad.corrupt_section(SnapshotSection::Points, 42));
        let err = publisher.publish(bad).unwrap_err();
        match &err {
            PublishError::Corrupt(report) => {
                assert_eq!(report.damaged, vec![SnapshotSection::Points])
            }
            other => panic!("expected Corrupt, got {other:?}"),
        }
        // No epoch advanced; the reader still sees the last good one.
        assert_eq!(publisher.epoch(), 1);
        assert_eq!(reader.current().len(), 5);
        assert_eq!(reader.epoch(), 1);

        // The rejection is logged and counted.
        let health = publisher.health();
        assert_eq!(health.last_good_epoch, 1);
        assert_eq!(health.rejected, 1);
        assert_eq!(health.quarantined, 1);
        let entry = publisher.quarantine_log().latest().unwrap();
        assert_eq!(entry.seq, 1);
        assert_eq!(entry.candidate_epoch, 2);
        assert_eq!(entry.len, 9);
        assert!(matches!(entry.cause, QuarantineCause::Corrupt(_)));

        // Recovery: the next valid candidate takes the freed epoch.
        assert_eq!(publisher.publish(snap_of(6)).unwrap(), 2);
        assert_eq!(reader.current().len(), 6);
    }

    #[test]
    fn forced_quarantine_rejects_without_publishing() {
        let mut publisher = SnapshotPublisher::new(snap_of(2));
        let candidate = snap_of(4);
        assert_eq!(publisher.quarantine(&candidate), 1);
        assert_eq!(publisher.epoch(), 0);
        let health = publisher.health();
        assert_eq!(health.rejected, 1);
        assert!(matches!(
            publisher.quarantine_log().latest().unwrap().cause,
            QuarantineCause::Forced
        ));
        // The candidate itself was never consumed and can publish later.
        assert_eq!(publisher.publish(candidate).unwrap(), 1);
    }

    #[test]
    fn quarantine_log_is_bounded_and_counts_evictions() {
        let mut publisher = SnapshotPublisher::new(snap_of(1));
        let candidate = snap_of(2);
        for _ in 0..(QUARANTINE_LOG_CAP + 5) {
            publisher.quarantine(&candidate);
        }
        let log = publisher.quarantine_log();
        assert_eq!(log.len(), QUARANTINE_LOG_CAP);
        assert_eq!(log.evicted(), 5);
        assert!(!log.is_empty());
        // Sequence numbers survive eviction: newest is the total count.
        assert_eq!(log.latest().unwrap().seq, (QUARANTINE_LOG_CAP + 5) as u64);
        let seqs: Vec<u64> = log.iter().map(|e| e.seq).collect();
        assert!(seqs.windows(2).all(|w| w[1] == w[0] + 1), "ordered log");
        assert_eq!(publisher.health().rejected, (QUARANTINE_LOG_CAP + 5) as u64);
    }

    #[test]
    fn dropped_publisher_leaves_readers_serving_cached() {
        let publisher = SnapshotPublisher::new(snap_of(4));
        let mut reader = publisher.subscribe();
        drop(publisher);
        assert_eq!(reader.try_refresh(), Err(ReaderError::PublisherGone));
        // The ergonomic form degrades to "nothing newer".
        assert!(!reader.refresh());
        // The cached snapshot still serves, forever.
        assert_eq!(reader.current().len(), 4);
        assert_eq!(reader.cached().count(&Rect::unit()), 4);
        assert_eq!(
            ReaderError::PublisherGone.to_string(),
            "publisher dropped; serving the cached snapshot"
        );
    }

    #[test]
    fn degraded_answers_tick_the_shared_counter() {
        let publisher = SnapshotPublisher::new(snap_of(64));
        let mut reader = publisher.subscribe();
        let mut scratch = QueryScratch::new();
        let mut out = Vec::new();

        // Unbounded budget: complete, no degradation recorded.
        let outcome = reader.range_bounded(
            &Rect::unit(),
            &CostBudget::unbounded(),
            &mut scratch,
            &mut out,
        );
        assert!(outcome.is_complete());
        assert_eq!(out.len(), 64);
        assert_eq!(publisher.health().degraded_answers, 0);

        // A one-leaf budget on a 64-point, capacity-2 tree must degrade.
        let tiny = CostBudget::new(1, u64::MAX);
        let outcome = reader.range_bounded(&Rect::unit(), &tiny, &mut scratch, &mut out);
        assert!(!outcome.is_complete());
        assert_eq!(publisher.health().degraded_answers, 1);

        let (_, outcome) = reader.count_bounded(&Rect::unit(), &tiny, &mut scratch);
        assert!(!outcome.is_complete());
        let outcome = reader.knn_bounded(
            &Point2::new(0.5, 0.5),
            8,
            &CostBudget::new(u64::MAX, 2),
            &mut scratch,
            &mut out,
        );
        assert!(!outcome.is_complete());
        assert_eq!(publisher.health().degraded_answers, 3);
    }

    #[test]
    fn service_facade_round_trips() {
        let mut service = QueryService::new(snap_of(3));
        let mut reader = service.reader();
        let tree = PrQuadtree::build(
            Rect::unit(),
            4,
            (0..10).map(|i| Point2::new((i as f64 + 0.5) / 10.0, 0.25)),
        )
        .unwrap();
        assert_eq!(service.freeze_and_publish(&tree).unwrap(), 1);
        assert_eq!(service.epoch(), 1);
        let snap = reader.current();
        assert_eq!(snap.len(), 10);
        assert_eq!(snap.count(&Rect::from_bounds(0.0, 0.0, 1.0, 0.5)), 10);
        let health = service.health();
        assert_eq!(health.last_good_epoch, 1);
        assert_eq!(health.rejected, 0);
        assert_eq!(health.degraded_answers, 0);
        assert!(service.quarantine_log().is_empty());
    }

    #[test]
    fn readers_are_send() {
        fn assert_send<T: Send>() {}
        assert_send::<SnapshotReader>();
        assert_send::<SnapshotPublisher>();
    }
}
