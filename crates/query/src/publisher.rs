//! Epoch publishing: single writer, many wait-free readers.
//!
//! The protocol (DESIGN.md §10) is a double-buffered epoch swap:
//!
//! * The shared state is one atomic epoch counter plus two slots, each
//!   holding a complete `(epoch, Arc<Snapshot>)` pair. Epoch `e` lives
//!   in slot `e & 1`, so the writer always overwrites the slot readers
//!   of the *current* epoch are not directed to.
//! * **Publish** (writer): write the new pair into slot `(e+1) & 1`,
//!   *then* advance the epoch counter with `Release`. The slot is
//!   complete before any reader can be routed to it.
//! * **Refresh** (reader): load the epoch with `Acquire`; if it moved,
//!   `try_lock` the indicated slot and clone the `Arc` out. The slot
//!   lock is only ever held for that clone (or the writer's pair
//!   store), never while answering queries — and because a slot is
//!   written *before* the epoch advances, a successfully locked slot
//!   always holds a complete snapshot at least as new as the loaded
//!   epoch. If `try_lock` loses the race with a concurrent publish, the
//!   reader simply keeps serving its cached snapshot — still complete,
//!   at worst one epoch stale — and retries on the next query.
//!
//! Consequences, which `tests/epoch_publish.rs` pins down:
//!
//! * Readers never block and never allocate: the hot path is one atomic
//!   load plus (rarely) one uncontended `try_lock` and an `Arc` clone.
//! * A reader can never observe a torn snapshot: snapshots are
//!   immutable after freeze, and the only shared mutation — the slot
//!   pair store — happens before the epoch that routes readers to it.
//! * Per-reader epochs are monotone: a refresh only ever installs a
//!   strictly newer snapshot.
//!
//! This module is the query tier's *only* home of lock types: the
//! in-tree linter's Q1 rule forbids `Mutex`/`RwLock` anywhere else in
//! the crate, keeping the read paths honest by construction.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

use popan_spatial::{FreezeError, PrQuadtree};

use crate::snapshot::Snapshot;

/// One published pair. Slot `i` only ever holds epochs `e ≡ i (mod 2)`.
struct Slot {
    epoch: u64,
    snap: Arc<Snapshot>,
}

/// State shared between the writer and all readers.
struct Shared {
    /// The latest published epoch; advanced with `Release` after the
    /// owning slot holds the complete pair.
    epoch: AtomicU64,
    /// Double buffer, indexed by `epoch & 1`.
    slots: [Mutex<Slot>; 2],
}

/// The single writer of an epoch sequence.
///
/// Not `Clone` — single-writer is a type-level invariant. Create
/// readers with [`SnapshotPublisher::subscribe`].
pub struct SnapshotPublisher {
    shared: Arc<Shared>,
    current: u64,
}

impl SnapshotPublisher {
    /// Creates a publisher whose initial snapshot is `initial`,
    /// re-stamped as epoch 0 and installed in both slots (so any routed
    /// read is valid from the start).
    pub fn new(initial: Snapshot) -> SnapshotPublisher {
        let snap = Arc::new(initial.with_epoch(0));
        let shared = Arc::new(Shared {
            epoch: AtomicU64::new(0),
            slots: [
                Mutex::new(Slot {
                    epoch: 0,
                    snap: Arc::clone(&snap),
                }),
                Mutex::new(Slot { epoch: 0, snap }),
            ],
        });
        SnapshotPublisher { shared, current: 0 }
    }

    /// The latest published epoch.
    pub fn epoch(&self) -> u64 {
        self.current
    }

    /// Publishes `snapshot` as the next epoch and returns that epoch.
    /// The snapshot's embedded epoch is overwritten with the assigned
    /// one; readers observe the new epoch only after the slot holds the
    /// complete pair.
    pub fn publish(&mut self, snapshot: Snapshot) -> u64 {
        let epoch = self.current + 1;
        let snap = Arc::new(snapshot.with_epoch(epoch));
        {
            let mut slot = self.shared.slots[(epoch & 1) as usize]
                .lock()
                .expect("snapshot slot poisoned");
            *slot = Slot { epoch, snap };
        }
        self.shared.epoch.store(epoch, Ordering::Release);
        self.current = epoch;
        epoch
    }

    /// Freezes `tree` and publishes it as the next epoch.
    pub fn freeze_and_publish(&mut self, tree: &PrQuadtree) -> Result<u64, FreezeError> {
        let snap = Snapshot::freeze(0, tree)?;
        Ok(self.publish(snap))
    }

    /// Creates a reader handle starting at the latest published epoch.
    pub fn subscribe(&self) -> SnapshotReader {
        let epoch = self.shared.epoch.load(Ordering::Acquire);
        let slot = self.shared.slots[(epoch & 1) as usize]
            .lock()
            .expect("snapshot slot poisoned");
        SnapshotReader {
            shared: Arc::clone(&self.shared),
            cached_epoch: slot.epoch,
            cached: Arc::clone(&slot.snap),
        }
    }
}

/// A reader handle: serves queries from a cached [`Arc<Snapshot>`]
/// guard, re-syncing opportunistically. One per reader thread
/// (`SnapshotReader` is `Send`; create as many as needed).
pub struct SnapshotReader {
    shared: Arc<Shared>,
    cached_epoch: u64,
    cached: Arc<Snapshot>,
}

impl SnapshotReader {
    /// Re-syncs with the publisher if a newer epoch is out; returns
    /// `true` when a newer snapshot was installed. Never blocks: a lost
    /// `try_lock` race keeps the (complete) cached snapshot. Performs
    /// no heap allocation.
    pub fn refresh(&mut self) -> bool {
        let observed = self.shared.epoch.load(Ordering::Acquire);
        if observed == self.cached_epoch {
            return false;
        }
        if let Ok(slot) = self.shared.slots[(observed & 1) as usize].try_lock() {
            // The slot is written before the epoch advances, so it holds
            // a complete pair with epoch ≥ observed > cached (the epoch
            // counter is monotone); the guard keeps per-reader epochs
            // monotone even if a future refactor weakens that argument.
            if slot.epoch > self.cached_epoch {
                self.cached_epoch = slot.epoch;
                self.cached = Arc::clone(&slot.snap);
                return true;
            }
        }
        false
    }

    /// The freshest available snapshot: refreshes opportunistically,
    /// then returns the guard.
    pub fn current(&mut self) -> &Snapshot {
        self.refresh();
        &self.cached
    }

    /// The cached snapshot without attempting a refresh.
    pub fn cached(&self) -> &Snapshot {
        &self.cached
    }

    /// An owned guard on the freshest available snapshot, for holding
    /// across a batch while the writer keeps publishing.
    pub fn guard(&mut self) -> Arc<Snapshot> {
        self.refresh();
        Arc::clone(&self.cached)
    }

    /// The epoch of the cached snapshot.
    pub fn epoch(&self) -> u64 {
        self.cached_epoch
    }
}

/// The high-level facade: a publisher plus reader factory, the shape
/// the README quickstart and the experiment driver use.
pub struct QueryService {
    publisher: SnapshotPublisher,
}

impl QueryService {
    /// Starts a service serving `initial` as epoch 0.
    pub fn new(initial: Snapshot) -> QueryService {
        QueryService {
            publisher: SnapshotPublisher::new(initial),
        }
    }

    /// The latest published epoch.
    pub fn epoch(&self) -> u64 {
        self.publisher.epoch()
    }

    /// Creates a reader handle (one per reader thread).
    pub fn reader(&self) -> SnapshotReader {
        self.publisher.subscribe()
    }

    /// Publishes a pre-built snapshot as the next epoch.
    pub fn publish(&mut self, snapshot: Snapshot) -> u64 {
        self.publisher.publish(snapshot)
    }

    /// Freezes `tree` and publishes it as the next epoch.
    pub fn freeze_and_publish(&mut self, tree: &PrQuadtree) -> Result<u64, FreezeError> {
        self.publisher.freeze_and_publish(tree)
    }
}

impl Snapshot {
    /// Re-stamps the epoch (publisher-assigned epochs are the truth).
    fn with_epoch(mut self, epoch: u64) -> Snapshot {
        self.set_epoch(epoch);
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::queryable::Queryable;
    use popan_geom::{Point2, Rect};

    fn snap_of(n: usize) -> Snapshot {
        Snapshot::from_points(
            0,
            Rect::unit(),
            2,
            (0..n).map(|i| Point2::new((i as f64 + 0.5) / n as f64, 0.5)),
        )
        .unwrap()
    }

    #[test]
    fn publish_advances_epochs_and_readers_follow() {
        let mut publisher = SnapshotPublisher::new(snap_of(1));
        let mut reader = publisher.subscribe();
        assert_eq!(reader.epoch(), 0);
        assert_eq!(reader.current().len(), 1);

        assert_eq!(publisher.publish(snap_of(2)), 1);
        assert_eq!(publisher.publish(snap_of(3)), 2);
        assert_eq!(publisher.epoch(), 2);
        // The reader skips straight to the freshest epoch.
        assert_eq!(reader.current().len(), 3);
        assert_eq!(reader.epoch(), 2);
        assert_eq!(reader.current().epoch(), 2);
    }

    #[test]
    fn cached_serves_without_resync() {
        let mut publisher = SnapshotPublisher::new(snap_of(4));
        let reader = publisher.subscribe();
        publisher.publish(snap_of(5));
        // `cached` deliberately does not chase the new epoch.
        assert_eq!(reader.cached().len(), 4);
    }

    #[test]
    fn guard_outlives_subsequent_publishes() {
        let mut publisher = SnapshotPublisher::new(snap_of(2));
        let mut reader = publisher.subscribe();
        let guard = reader.guard();
        for _ in 0..5 {
            publisher.publish(snap_of(7));
        }
        // The guard pins the old snapshot; a refresh then moves on.
        assert_eq!(guard.len(), 2);
        assert!(reader.refresh());
        assert_eq!(reader.cached().len(), 7);
        assert!(!reader.refresh(), "second refresh is a no-op");
    }

    #[test]
    fn service_facade_round_trips() {
        let mut service = QueryService::new(snap_of(3));
        let mut reader = service.reader();
        let tree = PrQuadtree::build(
            Rect::unit(),
            4,
            (0..10).map(|i| Point2::new((i as f64 + 0.5) / 10.0, 0.25)),
        )
        .unwrap();
        assert_eq!(service.freeze_and_publish(&tree).unwrap(), 1);
        assert_eq!(service.epoch(), 1);
        let snap = reader.current();
        assert_eq!(snap.len(), 10);
        assert_eq!(snap.count(&Rect::from_bounds(0.0, 0.0, 1.0, 0.5)), 10);
    }

    #[test]
    fn readers_are_send() {
        fn assert_send<T: Send>() {}
        assert_send::<SnapshotReader>();
        assert_send::<SnapshotPublisher>();
    }
}
