//! The unified query trait and its implementations.
//!
//! One trait, one contract: for the same stored multiset of points,
//! every implementation returns **bit-identical** answers. Range results
//! are sorted by [`Point2::canonical_cmp`]; k-NN results follow
//! [`knn_cmp`] (squared distance, then canonical order), so coincident
//! piles and equidistant rings resolve the same way everywhere. The
//! differential suite (`tests/oracle_equivalence.rs`) checks each
//! backend against the frozen boxed oracle byte for byte.

use popan_exthash::excell::ExcellGrid;
use popan_exthash::gridfile::GridFile;
use popan_geom::{Point2, Rect};
use popan_spatial::reference::BoxedPrQuadtree;
use popan_spatial::{knn_cmp, Bintree, LinearQuadtree, PointQuadtree, PrQuadtree, PrTreeNd};

/// Uniform read interface over every point structure in the workspace.
///
/// The contract is determinism, not speed: implementations may answer
/// from a pointer tree, a flat snapshot, or a hash directory, but the
/// returned bytes must be identical. Hot serving always goes through
/// [`crate::Snapshot`] (which also offers allocation-free `_into`
/// forms); the other backends exist so the same differential tests and
/// experiment drivers cover every structure.
pub trait Queryable {
    /// Number of stored points.
    fn len(&self) -> usize;

    /// `true` when no points are stored.
    fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// All stored points inside `query` (half-open on both axes),
    /// sorted by [`Point2::canonical_cmp`]. Duplicates are returned
    /// with their multiplicity.
    fn range(&self, query: &Rect) -> Vec<Point2>;

    /// Number of stored points inside `query`.
    fn count(&self, query: &Rect) -> usize {
        self.range(query).len()
    }

    /// The `k` stored points nearest to `target`, ordered by
    /// [`knn_cmp`]; fewer when fewer than `k` points are stored.
    fn knn(&self, target: &Point2, k: usize) -> Vec<Point2>;
}

/// Sorts points into the canonical range-result order.
pub fn canonical_sort(points: &mut [Point2]) {
    points.sort_unstable_by(Point2::canonical_cmp);
}

/// Reference range implementation: filter a full scan, sort
/// canonically. Every backend's `range` must agree with this.
pub fn range_by_scan(points: impl IntoIterator<Item = Point2>, query: &Rect) -> Vec<Point2> {
    let mut out: Vec<Point2> = points.into_iter().filter(|p| query.contains(p)).collect();
    canonical_sort(&mut out);
    out
}

/// Reference k-NN implementation: rank a full scan by [`knn_cmp`] and
/// keep the first `k`. Every backend's `knn` must agree with this.
pub fn knn_by_scan(
    points: impl IntoIterator<Item = Point2>,
    target: &Point2,
    k: usize,
) -> Vec<Point2> {
    let mut ranked: Vec<(f64, Point2)> = points
        .into_iter()
        .map(|p| (p.distance_squared(target), p))
        .collect();
    ranked.sort_unstable_by(knn_cmp);
    ranked.truncate(k);
    ranked.into_iter().map(|(_, p)| p).collect()
}

impl Queryable for PrQuadtree {
    fn len(&self) -> usize {
        self.len()
    }

    fn range(&self, query: &Rect) -> Vec<Point2> {
        let mut out = self.range_query(query);
        canonical_sort(&mut out);
        out
    }

    fn count(&self, query: &Rect) -> usize {
        self.count_in_range(query)
    }

    fn knn(&self, target: &Point2, k: usize) -> Vec<Point2> {
        // Native traversal already uses the canonical k-NN order.
        self.k_nearest(target, k)
    }
}

impl Queryable for BoxedPrQuadtree {
    // The oracle answers from first principles — full scans against the
    // reference implementations — so a shared bug in a clever traversal
    // cannot cancel out in the differential tests.
    fn len(&self) -> usize {
        self.len()
    }

    fn range(&self, query: &Rect) -> Vec<Point2> {
        range_by_scan(self.points(), query)
    }

    fn knn(&self, target: &Point2, k: usize) -> Vec<Point2> {
        knn_by_scan(self.points(), target, k)
    }
}

impl Queryable for LinearQuadtree {
    fn len(&self) -> usize {
        self.len()
    }

    fn range(&self, query: &Rect) -> Vec<Point2> {
        let mut out = self.range_query(query);
        canonical_sort(&mut out);
        out
    }

    fn count(&self, query: &Rect) -> usize {
        self.count_in_range(query)
    }

    fn knn(&self, target: &Point2, k: usize) -> Vec<Point2> {
        self.k_nearest(target, k)
    }
}

impl Queryable for Bintree {
    fn len(&self) -> usize {
        self.len()
    }

    fn range(&self, query: &Rect) -> Vec<Point2> {
        let mut out = self.range_query(query);
        canonical_sort(&mut out);
        out
    }

    fn count(&self, query: &Rect) -> usize {
        self.count_in_range(query)
    }

    fn knn(&self, target: &Point2, k: usize) -> Vec<Point2> {
        knn_by_scan(self.points(), target, k)
    }
}

impl Queryable for PointQuadtree {
    fn len(&self) -> usize {
        self.len()
    }

    fn range(&self, query: &Rect) -> Vec<Point2> {
        let mut out = self.range_query(query);
        canonical_sort(&mut out);
        out
    }

    fn count(&self, query: &Rect) -> usize {
        self.count_in_range(query)
    }

    fn knn(&self, target: &Point2, k: usize) -> Vec<Point2> {
        knn_by_scan(self.points(), target, k)
    }
}

impl Queryable for PrTreeNd<2> {
    fn len(&self) -> usize {
        self.len()
    }

    fn range(&self, query: &Rect) -> Vec<Point2> {
        let lo = [query.x().lo(), query.y().lo()];
        let hi = [query.x().hi(), query.y().hi()];
        let mut out: Vec<Point2> = self
            .range_query(&lo, &hi)
            .into_iter()
            .map(|p| Point2::new(p.coords[0], p.coords[1]))
            .collect();
        canonical_sort(&mut out);
        out
    }

    fn knn(&self, target: &Point2, k: usize) -> Vec<Point2> {
        knn_by_scan(
            self.points()
                .into_iter()
                .map(|p| Point2::new(p.coords[0], p.coords[1])),
            target,
            k,
        )
    }
}

impl Queryable for ExcellGrid {
    fn len(&self) -> usize {
        self.len()
    }

    fn range(&self, query: &Rect) -> Vec<Point2> {
        let mut out = self.range_query(query);
        canonical_sort(&mut out);
        out
    }

    fn knn(&self, target: &Point2, k: usize) -> Vec<Point2> {
        // The directory has no ordered sweep; rank its full contents.
        knn_by_scan(self.range_query(&self.region()), target, k)
    }
}

impl Queryable for GridFile {
    fn len(&self) -> usize {
        self.len()
    }

    fn range(&self, query: &Rect) -> Vec<Point2> {
        let mut out = self.range_query(query);
        canonical_sort(&mut out);
        out
    }

    fn knn(&self, target: &Point2, k: usize) -> Vec<Point2> {
        knn_by_scan(self.range_query(&self.region()), target, k)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scan_helpers_define_the_contract() {
        let pts = [
            Point2::new(0.6, 0.1),
            Point2::new(0.2, 0.8),
            Point2::new(0.2, 0.3),
            Point2::new(0.2, 0.3), // duplicate, kept with multiplicity
        ];
        let q = Rect::from_bounds(0.0, 0.0, 0.5, 1.0);
        let r = range_by_scan(pts, &q);
        assert_eq!(
            r,
            vec![
                Point2::new(0.2, 0.3),
                Point2::new(0.2, 0.3),
                Point2::new(0.2, 0.8),
            ]
        );
        let nn = knn_by_scan(pts, &Point2::new(0.0, 0.0), 2);
        assert_eq!(nn, vec![Point2::new(0.2, 0.3), Point2::new(0.2, 0.3)]);
    }

    #[test]
    fn trait_objects_work() {
        let tree = PrQuadtree::build(
            Rect::unit(),
            2,
            [Point2::new(0.1, 0.1), Point2::new(0.9, 0.9)],
        )
        .unwrap();
        let q: &dyn Queryable = &tree;
        assert_eq!(q.len(), 2);
        assert!(!q.is_empty());
        assert_eq!(q.count(&Rect::from_bounds(0.0, 0.0, 0.5, 0.5)), 1);
        assert_eq!(
            q.knn(&Point2::new(0.8, 0.8), 1),
            vec![Point2::new(0.9, 0.9)]
        );
    }
}
