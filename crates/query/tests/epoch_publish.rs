//! Deterministic concurrency suite for the epoch protocol.
//!
//! Two experiments:
//!
//! * **Phase-locked schedule** — a writer publishes a fixed sequence of
//!   epochs; between publishes, N reader threads (N from
//!   `POPAN_THREADS`, the workspace-wide determinism knob) sync to the
//!   round's epoch behind a barrier and answer their share of a seeded
//!   query schedule. Every result is digested; the merged log, sorted
//!   by (round, query), must be **bit-identical** for 1 reader and 4
//!   readers — and identical to the serially computed expected answers
//!   and to the committed golden (`tests/goldens/epoch_publish.golden`,
//!   regenerate with `POPAN_BLESS=1`).
//! * **Unsynchronized churn** — the writer publishes as fast as it can
//!   while readers query with no coordination at all. Each epoch's
//!   snapshot has a distinctive point count, so any torn read would
//!   produce a count that matches *no* epoch; readers assert their
//!   observed count always matches their snapshot's embedded epoch and
//!   that per-reader epochs never move backwards.

use std::sync::{Arc, Barrier};

use popan_geom::{Point2, Rect};
use popan_query::{Queryable, Snapshot, SnapshotPublisher};
use popan_rng::rngs::StdRng;
use popan_rng::{Rng, SeedableRng};
use popan_workload::points::{PointSource, UniformRect};

const EPOCHS: usize = 6;
const QUERIES_PER_ROUND: usize = 24;
const MASTER_SEED: u64 = 0x51_6e_a7;

/// FNV-1a 64, the log digest. Stable, dependency-free, byte-exact.
#[derive(Clone, Copy)]
struct Digest(u64);

impl Digest {
    fn new() -> Digest {
        Digest(0xcbf2_9ce4_8422_2325)
    }

    fn push_bytes(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.0 ^= u64::from(b);
            self.0 = self.0.wrapping_mul(0x100_0000_01b3);
        }
    }

    fn push_u64(&mut self, v: u64) {
        self.push_bytes(&v.to_le_bytes());
    }

    fn push_points(&mut self, pts: &[Point2]) {
        self.push_u64(pts.len() as u64);
        for p in pts {
            self.push_u64(p.x.to_bits());
            self.push_u64(p.y.to_bits());
        }
    }

    fn finish(self) -> u64 {
        self.0
    }
}

/// The point set published at `epoch`: size varies per epoch so every
/// epoch's answers are distinguishable.
fn epoch_points(epoch: u64) -> Vec<Point2> {
    let mut rng = StdRng::seed_from_u64(MASTER_SEED ^ (epoch * 0x9e37_79b9));
    UniformRect::unit().sample_n(&mut rng, 1500 + 173 * epoch as usize)
}

fn epoch_snapshot(epoch: u64) -> Snapshot {
    Snapshot::from_points(epoch, Rect::unit(), 4, epoch_points(epoch)).unwrap()
}

#[derive(Clone, Copy)]
enum Query {
    Range(Rect),
    Count(Rect),
    Knn(Point2, usize),
}

/// The seeded query schedule of one round — every thread derives the
/// identical list.
fn round_queries(round: u64) -> Vec<Query> {
    let mut rng = StdRng::seed_from_u64(MASTER_SEED ^ (0xded1 + round * 0x85eb_ca6b));
    (0..QUERIES_PER_ROUND)
        .map(|qi| {
            let x = rng.random_range(0.0..0.8);
            let y = rng.random_range(0.0..0.8);
            let w = rng.random_range(0.01..0.2);
            match qi % 3 {
                0 => Query::Range(Rect::from_bounds(x, y, x + w, y + w)),
                1 => Query::Count(Rect::from_bounds(
                    x,
                    y,
                    (x + 4.0 * w).min(1.0),
                    (y + 4.0 * w).min(1.0),
                )),
                _ => Query::Knn(Point2::new(x, y), 1 + (qi % 13)),
            }
        })
        .collect()
}

/// Answers one query against a snapshot and digests result + epoch.
fn answer(snap: &Snapshot, q: &Query) -> u64 {
    let mut d = Digest::new();
    d.push_u64(snap.epoch());
    match q {
        Query::Range(rect) => d.push_points(&snap.range(rect)),
        Query::Count(rect) => d.push_u64(snap.count(rect) as u64),
        Query::Knn(target, k) => d.push_points(&snap.knn(target, *k)),
    }
    d.finish()
}

/// Runs the phase-locked schedule with `n_readers` threads and returns
/// the merged, (round, query)-sorted result log.
fn run_schedule(n_readers: usize) -> Vec<(u64, usize, u64)> {
    let mut publisher = SnapshotPublisher::new(epoch_snapshot(0));
    let barrier = Arc::new(Barrier::new(n_readers + 1));
    let handles: Vec<_> = (0..n_readers)
        .map(|rid| {
            let mut reader = publisher.subscribe();
            let barrier = Arc::clone(&barrier);
            std::thread::spawn(move || {
                let mut log = Vec::new();
                for round in 0..EPOCHS as u64 {
                    barrier.wait();
                    // Sync to the round's epoch. `refresh` is
                    // opportunistic (try_lock), so a contended attempt
                    // just retries; the writer is parked at the barrier
                    // and cannot move the epoch mid-round.
                    while reader.epoch() != round {
                        reader.refresh();
                        std::thread::yield_now();
                    }
                    let queries = round_queries(round);
                    let snap = reader.cached();
                    for (qi, q) in queries.iter().enumerate() {
                        if qi % n_readers == rid {
                            log.push((round, qi, answer(snap, q)));
                        }
                    }
                    barrier.wait();
                }
                log
            })
        })
        .collect();
    for round in 0..EPOCHS as u64 {
        if round > 0 {
            assert_eq!(publisher.publish(epoch_snapshot(round)).unwrap(), round);
        }
        barrier.wait(); // round starts: readers sync + query
        barrier.wait(); // round ends: safe to publish the next epoch
    }
    let mut merged = Vec::new();
    for h in handles {
        merged.extend(h.join().expect("reader thread panicked"));
    }
    merged.sort_unstable();
    assert_eq!(merged.len(), EPOCHS * QUERIES_PER_ROUND);
    merged
}

fn digest_of_log(log: &[(u64, usize, u64)]) -> u64 {
    let mut d = Digest::new();
    for &(round, qi, h) in log {
        d.push_u64(round);
        d.push_u64(qi as u64);
        d.push_u64(h);
    }
    d.finish()
}

/// Reader count under test: the workspace determinism knob, so
/// `scripts/verify.sh`'s POPAN_THREADS=1 and =4 runs exercise both.
fn env_readers() -> usize {
    std::env::var("POPAN_THREADS")
        .ok()
        .and_then(|v| v.parse().ok())
        .filter(|&n| (1..=16).contains(&n))
        .unwrap_or(4)
}

#[test]
fn merged_log_is_bit_identical_across_reader_counts() {
    // Serial expectation: answer every query directly from each round's
    // snapshot, no threads involved.
    let mut expected = Vec::new();
    for round in 0..EPOCHS as u64 {
        let snap = epoch_snapshot(round);
        for (qi, q) in round_queries(round).iter().enumerate() {
            expected.push((round, qi, answer(&snap, q)));
        }
    }

    let one = run_schedule(1);
    assert_eq!(one, expected, "single reader must reproduce the serial log");

    let four = run_schedule(4);
    assert_eq!(
        four, one,
        "4-reader merged log must be bit-identical to 1-reader"
    );

    let env_n = env_readers();
    if env_n != 1 && env_n != 4 {
        assert_eq!(run_schedule(env_n), one);
    }

    // Pin the whole workload against the committed golden.
    let digest = format!("{:016x}", digest_of_log(&one));
    let golden_path = concat!(
        env!("CARGO_MANIFEST_DIR"),
        "/tests/goldens/epoch_publish.golden"
    );
    if std::env::var("POPAN_BLESS").is_ok() {
        std::fs::write(golden_path, format!("{digest}\n")).expect("write golden");
        return;
    }
    let golden = std::fs::read_to_string(golden_path)
        .expect("missing tests/goldens/epoch_publish.golden — run once with POPAN_BLESS=1");
    assert_eq!(
        golden.trim(),
        digest,
        "epoch-publish workload digest drifted from the committed golden"
    );
}

#[test]
fn unsynchronized_readers_never_observe_torn_snapshots() {
    // Every epoch's snapshot has a distinctive size; a torn read would
    // yield a (epoch, count) pair matching no published snapshot.
    const CHURN_EPOCHS: u64 = 40;
    let expected_len = |epoch: u64| 1500 + 173 * epoch as usize;

    let mut publisher = SnapshotPublisher::new(epoch_snapshot(0));
    let n_readers = env_readers();
    let start = Arc::new(Barrier::new(n_readers + 1));
    let handles: Vec<_> = (0..n_readers)
        .map(|_| {
            let mut reader = publisher.subscribe();
            let start = Arc::clone(&start);
            std::thread::spawn(move || {
                start.wait();
                let mut last_epoch = 0u64;
                let mut observations = 0u64;
                while reader.cached().epoch() < CHURN_EPOCHS {
                    let snap = reader.current();
                    let epoch = snap.epoch();
                    assert!(
                        epoch >= last_epoch,
                        "reader went back in time: {epoch} after {last_epoch}"
                    );
                    last_epoch = epoch;
                    assert_eq!(
                        snap.len(),
                        expected_len(epoch),
                        "snapshot torn: epoch {epoch} with wrong population"
                    );
                    assert_eq!(snap.count(&Rect::unit()), expected_len(epoch));
                    observations += 1;
                }
                observations
            })
        })
        .collect();
    start.wait();
    for epoch in 1..=CHURN_EPOCHS {
        assert_eq!(publisher.publish(epoch_snapshot(epoch)).unwrap(), epoch);
        std::thread::yield_now();
    }
    for h in handles {
        assert!(h.join().expect("reader panicked") > 0);
    }
}
