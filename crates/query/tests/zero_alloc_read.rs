//! The snapshot read path must not allocate.
//!
//! The serving contract (DESIGN.md §10): once a reader's buffers have
//! warmed to the workload's high-water marks, a query batch — including
//! epoch refreshes — performs **zero heap allocations**. This test
//! installs a counting global allocator (the same pattern as
//! `crates/spatial/tests/zero_alloc.rs`) and pins that contract so a
//! future refactor cannot quietly reintroduce per-query allocation.
//!
//! The `unsafe impl GlobalAlloc` below is required by the trait;
//! popan-lint carries an R2 `allow_paths` entry for this file, and the
//! library crates remain under `#![forbid(unsafe_code)]`.

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};

struct CountingAlloc;

static ALLOCATIONS: AtomicU64 = AtomicU64::new(0);

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::SeqCst);
        unsafe { System.alloc(layout) }
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        unsafe { System.dealloc(ptr, layout) }
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::SeqCst);
        unsafe { System.realloc(ptr, layout, new_size) }
    }
}

#[global_allocator]
static GLOBAL: CountingAlloc = CountingAlloc;

/// Runs `f` and returns how many heap allocations it performed.
fn allocations_during(f: impl FnOnce()) -> u64 {
    let before = ALLOCATIONS.load(Ordering::SeqCst);
    f();
    ALLOCATIONS.load(Ordering::SeqCst) - before
}

// A single test function: integration tests in one binary run on
// multiple threads, and a second test's allocations would leak into
// this one's counter window.
#[test]
fn snapshot_read_path_does_not_allocate() {
    use popan_geom::{Point2, Rect};
    use popan_query::{Snapshot, SnapshotPublisher};
    use popan_rng::rngs::StdRng;
    use popan_rng::{Rng, SeedableRng};
    use popan_spatial::QueryScratch;

    let snapshot_of = |seed: u64| {
        let mut rng = StdRng::seed_from_u64(seed);
        Snapshot::from_points(
            0,
            Rect::unit(),
            4,
            (0..20_000)
                .map(|_| Point2::new(rng.random_range(0.0..1.0), rng.random_range(0.0..1.0))),
        )
        .unwrap()
    };

    let mut publisher = SnapshotPublisher::new(snapshot_of(1));
    let mut reader = publisher.subscribe();

    // The measured batch: a mix of range, count and k-NN queries plus a
    // refresh per iteration, written through reusable buffers.
    let mut rng = StdRng::seed_from_u64(2);
    let queries: Vec<(Rect, Point2, usize)> = (0..64)
        .map(|i| {
            let x = rng.random_range(0.0..0.7);
            let y = rng.random_range(0.0..0.7);
            let w = rng.random_range(0.01..0.3);
            (
                Rect::from_bounds(x, y, x + w, y + w),
                Point2::new(x, y),
                1 + i % 16,
            )
        })
        .collect();

    let mut scratch = QueryScratch::new();
    let mut out = Vec::new();
    let mut sink = 0usize;
    let batch = |reader: &mut popan_query::SnapshotReader,
                 scratch: &mut QueryScratch,
                 out: &mut Vec<Point2>,
                 sink: &mut usize| {
        for (rect, target, k) in &queries {
            reader.refresh();
            let snap = reader.cached();
            snap.range_into(rect, scratch, out);
            *sink = sink.wrapping_add(out.len());
            *sink = sink.wrapping_add(snap.count_with(rect, scratch));
            snap.knn_into(target, *k, scratch, out);
            *sink = sink.wrapping_add(out.len());
        }
    };

    // Warm pass: buffers grow to the workload's high-water marks, and
    // the full-region query bounds the result buffer for any rect.
    batch(&mut reader, &mut scratch, &mut out, &mut sink);
    reader
        .cached()
        .range_into(&Rect::unit(), &mut scratch, &mut out);
    sink = sink.wrapping_add(out.len());

    // Publish a fresh epoch of the same population, outside the window:
    // the measured pass must absorb the epoch swap allocation-free.
    publisher.publish(snapshot_of(3)).unwrap();

    let allocs = allocations_during(|| {
        batch(&mut reader, &mut scratch, &mut out, &mut sink);
    });
    assert!(sink != 0, "reads must not be optimized away");
    assert_eq!(reader.epoch(), 1, "batch must have absorbed the new epoch");
    assert_eq!(
        allocs, 0,
        "snapshot read path allocated {allocs} times; refresh + range/count/knn must be \
         allocation-free once warm"
    );

    // Sanity: the counter does observe this binary's allocations — the
    // allocating convenience forms show up immediately.
    use popan_query::Queryable;
    let observed = allocations_during(|| {
        sink = sink.wrapping_add(reader.cached().range(&Rect::unit()).len());
    });
    assert!(
        observed > 0,
        "counting allocator failed to observe the allocating path"
    );
}
