//! Differential suite: every `Queryable` backend is bit-identical to
//! the frozen boxed oracle.
//!
//! The oracle ([`BoxedPrQuadtree`] behind full-scan reference answers)
//! is deliberately naive — no Morton decomposition, no pruning, no
//! shared code with the clever paths — so agreement means the clever
//! paths are right, not that two copies of the same bug cancel out.
//! "Agreement" is literal: every returned coordinate must match the
//! oracle's **bit for bit** (compared through `f64::to_bits`), for
//! arbitrary point multisets (duplicates included) and query mixes,
//! k-NN tie piles on coincident points among them.

use popan_exthash::excell::ExcellGrid;
use popan_exthash::gridfile::GridFile;
use popan_geom::{Point2, Rect};
use popan_proptest::prelude::*;
use popan_query::{Queryable, Snapshot};
use popan_spatial::reference::BoxedPrQuadtree;
use popan_spatial::{Bintree, LinearQuadtree, PointQuadtree, PrQuadtree, PrTreeNd};

/// Builds every backend over the same point multiset.
///
/// The point quadtree is absent: it stores *distinct* keys by design,
/// so it gets its own deduplicated differential test below.
fn backends(points: &[Point2], capacity: usize) -> Vec<(&'static str, Box<dyn Queryable>)> {
    let tree = PrQuadtree::build(Rect::unit(), capacity, points.iter().copied()).unwrap();
    let linear = LinearQuadtree::from_tree(&tree).unwrap();
    let snapshot = Snapshot::freeze(0, &tree).unwrap();
    let bintree = Bintree::build(Rect::unit(), capacity, points.iter().copied()).unwrap();
    let nd = PrTreeNd::<2>::build(
        popan_geom::BoxN::unit(),
        capacity,
        points.iter().map(|p| popan_geom::PointN::new([p.x, p.y])),
    )
    .unwrap();
    let mut excell = ExcellGrid::new(Rect::unit(), capacity.max(2)).unwrap();
    let mut gridfile = GridFile::new(Rect::unit(), capacity.max(2)).unwrap();
    for p in points {
        excell.insert(*p).unwrap();
        gridfile.insert(*p).unwrap();
    }
    vec![
        ("pr_quadtree", Box::new(tree)),
        ("linear_quadtree", Box::new(linear)),
        ("snapshot", Box::new(snapshot)),
        ("bintree", Box::new(bintree)),
        ("pr_tree_nd2", Box::new(nd)),
        ("excell", Box::new(excell)),
        ("gridfile", Box::new(gridfile)),
    ]
}

fn assert_bits_eq(name: &str, what: &str, got: &[Point2], want: &[Point2]) {
    assert_eq!(
        got.len(),
        want.len(),
        "{name}: {what} returned {} points, oracle {}",
        got.len(),
        want.len()
    );
    for (i, (g, w)) in got.iter().zip(want).enumerate() {
        assert!(
            g.x.to_bits() == w.x.to_bits() && g.y.to_bits() == w.y.to_bits(),
            "{name}: {what} result {i} is {g}, oracle has {w}"
        );
    }
}

/// Runs the full query mix over every backend and diffs it against the
/// oracle bit for bit.
fn differential(points: &[Point2], capacity: usize, queries: &[Rect], knn: &[(Point2, usize)]) {
    let oracle = BoxedPrQuadtree::build(Rect::unit(), capacity, points.iter().copied()).unwrap();
    for (name, backend) in backends(points, capacity) {
        assert_eq!(backend.len(), oracle.len(), "{name}: len");
        assert_eq!(backend.is_empty(), oracle.is_empty(), "{name}: is_empty");
        for q in queries {
            let want = Queryable::range(&oracle, q);
            assert_bits_eq(name, &format!("range({q})"), &backend.range(q), &want);
            assert_eq!(backend.count(q), want.len(), "{name}: count({q})");
        }
        for &(target, k) in knn {
            let want = Queryable::knn(&oracle, &target, k);
            assert_bits_eq(
                name,
                &format!("knn({target}, {k})"),
                &backend.knn(&target, k),
                &want,
            );
        }
    }
}

fn standard_queries() -> Vec<Rect> {
    vec![
        Rect::from_bounds(0.0, 0.0, 1.0, 1.0),
        Rect::from_bounds(0.1, 0.2, 0.5, 0.9),
        Rect::from_bounds(0.25, 0.25, 0.75, 0.75),
        Rect::from_bounds(0.5, 0.5, 0.5625, 0.5625),
        Rect::from_bounds(0.9, 0.0, 1.0, 0.1),
    ]
}

#[test]
fn empty_structures_agree() {
    differential(
        &[],
        2,
        &standard_queries(),
        &[(Point2::new(0.5, 0.5), 1), (Point2::new(0.0, 0.0), 3)],
    );
}

#[test]
fn coincident_piles_and_tie_rings_agree() {
    // The adversarial tie workload: three coincident piles (one right
    // on a quadrant corner), an equidistant ring around each, and a few
    // loose points. Every k straddling a tie boundary must resolve
    // identically everywhere.
    let mut points = Vec::new();
    for &(cx, cy) in &[(0.5, 0.5), (0.25, 0.75), (0.75, 0.25)] {
        for _ in 0..3 {
            points.push(Point2::new(cx, cy));
        }
        for &(dx, dy) in &[(0.125, 0.0), (-0.125, 0.0), (0.0, 0.125), (0.0, -0.125)] {
            points.push(Point2::new(cx + dx, cy + dy));
        }
    }
    points.push(Point2::new(0.0, 0.0));
    points.push(Point2::new(0.9375, 0.9375));
    let knn: Vec<(Point2, usize)> = (1..=8)
        .map(|k| (Point2::new(0.5, 0.5), k))
        .chain((1..=8).map(|k| (Point2::new(0.25, 0.75), k)))
        .chain([(Point2::new(0.5, 0.5), 100)])
        .collect();
    for capacity in [1, 2, 4] {
        differential(&points, capacity, &standard_queries(), &knn);
    }
}

#[test]
fn point_quadtree_agrees_on_distinct_keys() {
    // The point quadtree rejects duplicates, so its differential runs
    // on a deduplicated workload against an oracle over the same keys.
    use popan_rng::rngs::StdRng;
    use popan_rng::SeedableRng;
    use popan_workload::points::{PointSource, UniformRect};
    let mut rng = StdRng::seed_from_u64(0xbeef);
    let points = UniformRect::unit().sample_n(&mut rng, 400);
    let oracle = BoxedPrQuadtree::build(Rect::unit(), 2, points.iter().copied()).unwrap();
    let pq = PointQuadtree::build(points.iter().copied()).unwrap();
    assert_eq!(Queryable::len(&pq), oracle.len());
    for q in &standard_queries() {
        let want = Queryable::range(&oracle, q);
        assert_bits_eq(
            "point_quadtree",
            &format!("range({q})"),
            &pq.range(q),
            &want,
        );
        assert_eq!(pq.count(q), want.len(), "count({q})");
    }
    for &(target, k) in &[
        (Point2::new(0.5, 0.5), 1),
        (Point2::new(0.0, 0.0), 7),
        (Point2::new(0.99, 0.01), 25),
    ] {
        let want = Queryable::knn(&oracle, &target, k);
        assert_bits_eq(
            "point_quadtree",
            &format!("knn({target}, {k})"),
            &pq.knn(&target, k),
            &want,
        );
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn arbitrary_workloads_agree(
        raw in popan_proptest::collection::vec((0.0f64..1.0, 0.0f64..1.0), 0..150),
        dups in popan_proptest::collection::vec(0usize..30, 0..8),
        capacity in 1usize..6,
        qx in 0.0f64..0.9,
        qy in 0.0f64..0.9,
        qw in 0.001f64..0.5,
        tx in 0.0f64..1.0,
        ty in 0.0f64..1.0,
        k in 0usize..20,
    ) {
        // Duplicate some generated points to force multiset + tie paths.
        let mut points: Vec<Point2> = raw.iter().map(|&(x, y)| Point2::new(x, y)).collect();
        for &d in &dups {
            if !points.is_empty() {
                let p = points[d % points.len()];
                points.push(p);
            }
        }
        let queries = [
            Rect::from_bounds(qx, qy, (qx + qw).min(1.0), (qy + qw).min(1.0)),
            Rect::from_bounds(0.0, 0.0, 1.0, 1.0),
        ];
        let knn = [(Point2::new(tx, ty), k), (Point2::new(tx, ty), 3)];
        differential(&points, capacity, &queries, &knn);
    }
}
