//! Serving-path chaos suite: fault-injected publish rounds.
//!
//! A seeded writer pushes a fixed sequence of candidate snapshots at a
//! [`QueryService`] while a [`popan_engine::FaultPlan`] damages the
//! pipeline with the query-tier fault vocabulary:
//!
//! * `corrupt:<section>` — one bit of the candidate's named slab is
//!   flipped before publish; the quarantine gate must reject it.
//! * `publish-stall` — the candidate is held back one full round;
//!   readers keep serving the last-good epoch.
//! * `reject-epoch` — operator-forced quarantine of a pristine
//!   candidate.
//!
//! Between rounds, `POPAN_THREADS` reader threads answer a seeded query
//! schedule. The suite proves three invariants:
//!
//! 1. **Never torn, never damaged** — every snapshot a reader observes
//!    passes [`Snapshot::verify`] and has the exact population of the
//!    simulated last-good epoch for that round.
//! 2. **Bit-identical serving** — the merged result log equals the
//!    serially computed last-good oracle, for 1 reader and for N.
//! 3. **Byte-identical recovery** — once the faults pass and a clean
//!    candidate publishes, the served snapshot is byte-identical
//!    (section digests and answers) to the one a never-faulted run
//!    serves.

use std::sync::{Arc, Barrier};

use popan_engine::{CorruptTarget, Fault, FaultPlan};
use popan_geom::{Point2, Rect};
use popan_query::{PublishError, QuarantineCause, QueryService, Snapshot};
use popan_rng::rngs::StdRng;
use popan_rng::{Rng, SeedableRng};
use popan_spatial::SnapshotSection;
use popan_workload::points::{PointSource, UniformRect};

const SCOPE: &str = "chaos";
const ROUNDS: u64 = 10;
/// Content id of the final, clean, post-fault publish.
const FINAL_CONTENT: u64 = ROUNDS + 1;
const QUERIES_PER_ROUND: usize = 9;
const MASTER_SEED: u64 = 0xc4a05;

/// The deterministic fault schedule under test, in the `POPAN_FAULTS`
/// wire syntax. One of every vocabulary entry, including a stall
/// immediately followed by a corrupt round.
const PLAN_SPEC: &str = "chaos:2:corrupt:points,chaos:4:publish-stall,\
                         chaos:5:corrupt:leaf,chaos:7:reject-epoch,chaos:8:corrupt:blocks";

fn plan() -> FaultPlan {
    FaultPlan::parse(PLAN_SPEC).expect("chaos plan parses")
}

fn section_of(target: CorruptTarget) -> SnapshotSection {
    match target {
        CorruptTarget::Leaves => SnapshotSection::Leaves,
        CorruptTarget::Blocks => SnapshotSection::Blocks,
        CorruptTarget::Points => SnapshotSection::Points,
    }
}

/// Candidate content for round `r`: distinct sizes make every round's
/// answers distinguishable, so serving the wrong epoch cannot hide.
fn content_len(r: u64) -> usize {
    900 + 113 * r as usize
}

fn round_snapshot(r: u64) -> Snapshot {
    let mut rng = StdRng::seed_from_u64(MASTER_SEED ^ (r * 0x9e37_79b9));
    let pts = UniformRect::unit().sample_n(&mut rng, content_len(r));
    Snapshot::from_points(r, Rect::unit(), 4, pts).unwrap()
}

/// What the service must be serving after each round's writer action:
/// `(epoch, content_round)`, plus the final state after the post-fault
/// clean publish. Pure simulation — no service involved.
fn simulate(plan: &FaultPlan) -> (Vec<(u64, u64)>, (u64, u64)) {
    let mut epoch = 0u64;
    let mut content = 0u64;
    let mut pending: Option<u64> = None;
    let mut per_round = Vec::new();
    for r in 1..=ROUNDS {
        if let Some(p) = pending.take() {
            epoch += 1;
            content = p;
        }
        match plan.fault_for(SCOPE, r as usize, 0) {
            None => {
                epoch += 1;
                content = r;
            }
            Some(Fault::PublishStall) => pending = Some(r),
            Some(Fault::Corrupt(_)) | Some(Fault::RejectEpoch) => {}
            Some(other) => panic!("not a query-tier fault: {other:?}"),
        }
        per_round.push((epoch, content));
    }
    if pending.take().is_some() {
        epoch += 1;
    }
    (per_round, (epoch + 1, FINAL_CONTENT))
}

#[derive(Clone, Copy)]
enum Query {
    Range(Rect),
    Count(Rect),
    Knn(Point2, usize),
}

fn round_queries(round: u64) -> Vec<Query> {
    let mut rng = StdRng::seed_from_u64(MASTER_SEED ^ (0xfau64 + round * 0x85eb_ca6b));
    (0..QUERIES_PER_ROUND)
        .map(|qi| {
            let x = rng.random_range(0.0..0.8);
            let y = rng.random_range(0.0..0.8);
            let w = rng.random_range(0.02..0.2);
            match qi % 3 {
                0 => Query::Range(Rect::from_bounds(x, y, x + w, y + w)),
                1 => Query::Count(Rect::from_bounds(
                    x,
                    y,
                    (x + 3.0 * w).min(1.0),
                    (y + 3.0 * w).min(1.0),
                )),
                _ => Query::Knn(Point2::new(x, y), 1 + (qi % 7)),
            }
        })
        .collect()
}

fn fnv_u64(h: u64, v: u64) -> u64 {
    let mut h = h;
    for b in v.to_le_bytes() {
        h = (h ^ u64::from(b)).wrapping_mul(0x100_0000_01b3);
    }
    h
}

fn fnv_points(h: u64, pts: &[Point2]) -> u64 {
    let mut h = fnv_u64(h, pts.len() as u64);
    for p in pts {
        h = fnv_u64(h, p.x.to_bits());
        h = fnv_u64(h, p.y.to_bits());
    }
    h
}

/// FNV-1a 64 digest of one answer. Deliberately excludes the epoch:
/// the faulted and never-faulted runs publish the same *content* at
/// different epoch numbers, and recovery is judged on bytes served.
fn answer(snap: &Snapshot, q: &Query) -> u64 {
    use popan_query::Queryable;
    let h = 0xcbf2_9ce4_8422_2325;
    match q {
        Query::Range(rect) => fnv_points(h, &snap.range(rect)),
        Query::Count(rect) => fnv_u64(h, snap.count(rect) as u64),
        Query::Knn(target, k) => fnv_points(h, &snap.knn(target, *k)),
    }
}

/// Drives the full chaos schedule with `n_readers` phase-locked reader
/// threads; returns the merged (round, query, digest) log and the
/// digests of the finally served snapshot.
fn run_chaos(n_readers: usize) -> (Vec<(u64, usize, u64)>, popan_spatial::SectionDigests) {
    let plan = plan();
    let (per_round, (final_epoch, _)) = simulate(&plan);

    let mut service = QueryService::new(round_snapshot(0));
    let barrier = Arc::new(Barrier::new(n_readers + 1));
    let handles: Vec<_> = (0..n_readers)
        .map(|rid| {
            let mut reader = service.reader();
            let barrier = Arc::clone(&barrier);
            let per_round = per_round.clone();
            std::thread::spawn(move || {
                let mut log = Vec::new();
                for round in 1..=ROUNDS {
                    barrier.wait();
                    let (want_epoch, want_content) = per_round[(round - 1) as usize];
                    while reader.epoch() != want_epoch {
                        reader.refresh();
                        std::thread::yield_now();
                    }
                    let snap = reader.cached();
                    // Invariant 1: never torn, never damaged.
                    snap.verify().unwrap_or_else(|report| {
                        panic!("reader {rid} served a damaged snapshot in round {round}: {report}")
                    });
                    assert_eq!(
                        snap.len(),
                        content_len(want_content),
                        "round {round}: serving the wrong content"
                    );
                    for (qi, q) in round_queries(round).iter().enumerate() {
                        if qi % n_readers == rid {
                            log.push((round, qi, answer(snap, q)));
                        }
                    }
                    barrier.wait();
                }
                log
            })
        })
        .collect();

    let mut pending: Option<Snapshot> = None;
    for round in 1..=ROUNDS {
        if let Some(stalled) = pending.take() {
            service
                .publish(stalled)
                .expect("stalled candidate is pristine");
        }
        let candidate = round_snapshot(round);
        match plan.fault_for(SCOPE, round as usize, 0) {
            None => {
                service.publish(candidate).expect("clean publish");
            }
            Some(Fault::Corrupt(target)) => {
                let section = section_of(target);
                let mut damaged = candidate;
                assert!(damaged.corrupt_section(section, 1000 + round));
                match service.publish(damaged) {
                    Err(PublishError::Corrupt(report)) => {
                        assert_eq!(report.damaged, vec![section], "round {round}")
                    }
                    other => panic!("round {round}: corrupt candidate not rejected: {other:?}"),
                }
            }
            Some(Fault::PublishStall) => pending = Some(candidate),
            Some(Fault::RejectEpoch) => {
                service.quarantine(&candidate);
            }
            Some(other) => panic!("not a query-tier fault: {other:?}"),
        }
        assert_eq!(service.epoch(), per_round[(round - 1) as usize].0);
        barrier.wait(); // round starts: readers sync + query
        barrier.wait(); // round ends: safe to mutate the service
    }
    let mut merged = Vec::new();
    for h in handles {
        merged.extend(h.join().expect("reader thread panicked"));
    }
    merged.sort_unstable();
    assert_eq!(merged.len(), ROUNDS as usize * QUERIES_PER_ROUND);

    // Recovery: flush the stall (if the plan left one) and publish the
    // final clean candidate.
    if let Some(stalled) = pending.take() {
        service
            .publish(stalled)
            .expect("stalled candidate is pristine");
    }
    service
        .publish(round_snapshot(FINAL_CONTENT))
        .expect("recovery publish");
    assert_eq!(service.epoch(), final_epoch);

    // Health reflects the plan exactly: three corrupt + one forced.
    let health = service.health();
    assert_eq!(health.last_good_epoch, final_epoch);
    assert_eq!(health.rejected, 4);
    assert_eq!(health.quarantined, 4);
    let causes: Vec<bool> = service
        .quarantine_log()
        .iter()
        .map(|e| matches!(e.cause, QuarantineCause::Corrupt(_)))
        .collect();
    assert_eq!(causes, vec![true, true, false, true]);

    let mut reader = service.reader();
    let served = reader.current();
    served.verify().expect("recovered snapshot verifies");
    (merged, served.digests())
}

#[test]
fn chaos_rounds_serve_only_last_good_and_recover_byte_identically() {
    let plan = plan();
    // The wire syntax and the programmatic builder agree.
    let built = FaultPlan::none()
        .inject(SCOPE, 2, Fault::Corrupt(CorruptTarget::Points))
        .inject(SCOPE, 4, Fault::PublishStall)
        .inject(SCOPE, 5, Fault::Corrupt(CorruptTarget::Leaves))
        .inject(SCOPE, 7, Fault::RejectEpoch)
        .inject(SCOPE, 8, Fault::Corrupt(CorruptTarget::Blocks));
    assert_eq!(plan, built);

    // Invariant 2's oracle: answer every round from the simulated
    // last-good snapshot, serially, no service involved.
    let (per_round, _) = simulate(&plan);
    let mut expected = Vec::new();
    for round in 1..=ROUNDS {
        let (_, content) = per_round[(round - 1) as usize];
        let snap = round_snapshot(content);
        for (qi, q) in round_queries(round).iter().enumerate() {
            expected.push((round, qi, answer(&snap, q)));
        }
    }

    let (one, digests_one) = run_chaos(1);
    assert_eq!(
        one, expected,
        "1-reader log must match the last-good oracle"
    );

    let n = std::env::var("POPAN_THREADS")
        .ok()
        .and_then(|v| v.parse().ok())
        .filter(|&n| (1..=16).contains(&n))
        .unwrap_or(4);
    if n != 1 {
        let (many, digests_many) = run_chaos(n);
        assert_eq!(
            many, one,
            "{n}-reader log must be bit-identical to 1-reader"
        );
        assert_eq!(digests_many, digests_one);
    }

    // Invariant 3: the recovered snapshot is byte-identical to what a
    // never-faulted run serves — same section digests, same answers.
    let unfaulted = round_snapshot(FINAL_CONTENT);
    assert_eq!(digests_one, unfaulted.digests());
}

#[test]
fn never_faulted_schedule_is_the_identity_baseline() {
    // With an empty plan the simulation collapses to "round r serves
    // content r at epoch r" — pinning the simulator itself.
    let empty = FaultPlan::none();
    let (per_round, (final_epoch, final_content)) = simulate(&empty);
    for (i, &(epoch, content)) in per_round.iter().enumerate() {
        assert_eq!((epoch, content), ((i + 1) as u64, (i + 1) as u64));
    }
    assert_eq!((final_epoch, final_content), (ROUNDS + 1, FINAL_CONTENT));
}
