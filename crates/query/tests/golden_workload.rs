//! Committed golden for a fixed serving workload.
//!
//! A seeded N=10⁴ snapshot answers a seeded mix of range/count/k-NN
//! queries; the digest of every result, bit for bit, is pinned in
//! `tests/goldens/query_workload.golden`. This is the cross-machine,
//! cross-run anchor for the query tier: the oracle suite proves the
//! backends agree with each other *today*, the golden proves the shared
//! answer never drifts *over time* (a changed sort, a reordered leaf, a
//! flipped tie would all show up here). Regenerate deliberately with
//! `POPAN_BLESS=1` and review the diff.

use popan_geom::{Point2, Rect};
use popan_query::{Queryable, Snapshot};
use popan_rng::rngs::StdRng;
use popan_rng::{Rng, SeedableRng};
use popan_workload::points::{PointSource, UniformRect};

fn fnv1a(acc: u64, bytes: &[u8]) -> u64 {
    let mut h = acc;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x100_0000_01b3);
    }
    h
}

fn push_points(mut h: u64, pts: &[Point2]) -> u64 {
    h = fnv1a(h, &(pts.len() as u64).to_le_bytes());
    for p in pts {
        h = fnv1a(h, &p.x.to_bits().to_le_bytes());
        h = fnv1a(h, &p.y.to_bits().to_le_bytes());
    }
    h
}

#[test]
fn fixed_workload_matches_committed_golden() {
    let mut rng = StdRng::seed_from_u64(0x90_1d_e2);
    let points = UniformRect::unit().sample_n(&mut rng, 10_000);
    let snap = Snapshot::from_points(0, Rect::unit(), 4, points).unwrap();
    assert_eq!(snap.len(), 10_000);

    let mut h = 0xcbf2_9ce4_8422_2325u64;
    h = fnv1a(h, &(snap.leaf_count() as u64).to_le_bytes());
    let mut qrng = StdRng::seed_from_u64(0x0b_5e55);
    for qi in 0..100usize {
        let x = qrng.random_range(0.0..0.9);
        let y = qrng.random_range(0.0..0.9);
        let w = qrng.random_range(0.001..0.4);
        let rect = Rect::from_bounds(x, y, (x + w).min(1.0), (y + w).min(1.0));
        match qi % 3 {
            0 => h = push_points(h, &snap.range(&rect)),
            1 => h = fnv1a(h, &(snap.count(&rect) as u64).to_le_bytes()),
            _ => h = push_points(h, &snap.knn(&Point2::new(x, y), 1 + qi % 20)),
        }
    }
    let digest = format!("{h:016x}");

    let golden_path = concat!(
        env!("CARGO_MANIFEST_DIR"),
        "/tests/goldens/query_workload.golden"
    );
    if std::env::var("POPAN_BLESS").is_ok() {
        std::fs::write(golden_path, format!("{digest}\n")).expect("write golden");
        return;
    }
    let golden = std::fs::read_to_string(golden_path)
        .expect("missing tests/goldens/query_workload.golden — run once with POPAN_BLESS=1");
    assert_eq!(
        golden.trim(),
        digest,
        "fixed query workload digest drifted from the committed golden"
    );
}
