//! Integrity and degraded-serving differentials.
//!
//! Two families of properties:
//!
//! * **Checksums catch damage** — for arbitrary point sets, flipping
//!   *any single bit* in *any* frozen section is caught by
//!   [`Snapshot::verify`], and the corruption report names exactly the
//!   damaged section. The FNV-1a state transition `h ← (h ⊕ b)·p` is a
//!   bijection for fixed remaining input (the prime is odd), so a
//!   one-bit flip provably changes the digest — the property holds by
//!   construction, and this suite pins the implementation to it.
//! * **Partial answers are canonical prefixes** — under any budget, a
//!   degraded range / count / k-NN answer is byte-identical to a prefix
//!   of the full answer: correct as far as it goes, with nothing
//!   skipped. Theory-derived default budgets
//!   ([`popan_query::default_budget`]) are generous enough that healthy
//!   queries on uniform data complete.

use popan_core::SplitSpec;
use popan_geom::{Point2, Rect};
use popan_proptest::prelude::*;
use popan_query::{default_budget, Snapshot};
use popan_rng::rngs::StdRng;
use popan_rng::{Rng, SeedableRng};
use popan_spatial::{CostBudget, QueryScratch, SnapshotSection};
use popan_workload::points::{PointSource, UniformRect};

const SECTIONS: [SnapshotSection; 3] = [
    SnapshotSection::Leaves,
    SnapshotSection::Blocks,
    SnapshotSection::Points,
];

fn uniform_snapshot(seed: u64, n: usize, capacity: usize) -> Snapshot {
    let mut rng = StdRng::seed_from_u64(seed);
    let pts = UniformRect::unit().sample_n(&mut rng, n);
    Snapshot::from_points(0, Rect::unit(), capacity, pts).unwrap()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn any_single_bit_flip_is_caught(
        raw in popan_proptest::collection::vec((0.0f64..1.0, 0.0f64..1.0), 1..120),
        capacity in 1usize..5,
        section_idx in 0usize..3,
        bit in 0u64..1_000_000,
    ) {
        let points: Vec<Point2> = raw.iter().map(|&(x, y)| Point2::new(x, y)).collect();
        let snap = Snapshot::from_points(0, Rect::unit(), capacity, points).unwrap();
        prop_assert!(snap.verify().is_ok(), "pristine snapshot must verify");

        let section = SECTIONS[section_idx];
        let mut damaged = snap.clone();
        if !damaged.corrupt_section(section, bit) {
            // Empty section (no leaves is impossible, but keep the
            // guard honest): nothing was damaged, nothing to detect.
            prop_assert!(damaged.verify().is_ok());
            return Ok(());
        }
        match damaged.verify() {
            Ok(()) => prop_assert!(false, "bit {bit} flip in {section} went undetected"),
            Err(report) => {
                prop_assert_eq!(report.damaged.clone(), vec![section]);
                prop_assert!(report.to_string().contains(&section.to_string()));
            }
        }
    }

    #[test]
    fn partial_range_and_count_are_canonical_prefixes(
        seed in 0u64..1_000,
        n in 1usize..400,
        capacity in 1usize..5,
        leaf_budget in 1u64..40,
        point_budget in 1u64..200,
        qx in 0.0f64..0.7,
        qy in 0.0f64..0.7,
        qw in 0.05f64..0.3,
    ) {
        let snap = uniform_snapshot(seed, n, capacity);
        let query = Rect::from_bounds(qx, qy, qx + qw, qy + qw);
        let mut scratch = QueryScratch::new();

        let mut full = Vec::new();
        snap.range_into(&query, &mut scratch, &mut full);

        let budget = CostBudget::new(leaf_budget, point_budget);
        let mut partial = Vec::new();
        let outcome = snap.range_bounded_into(&query, &budget, &mut scratch, &mut partial);
        if outcome.is_complete() {
            prop_assert_eq!(&partial, &full, "complete answer must be the full answer");
        } else {
            prop_assert!(partial.len() <= full.len());
        }
        // Prefix property, bit for bit.
        for (i, (got, want)) in partial.iter().zip(&full).enumerate() {
            prop_assert!(
                got.x.to_bits() == want.x.to_bits() && got.y.to_bits() == want.y.to_bits(),
                "prefix diverges at {i}: {got} vs {want}"
            );
        }
        // The budgeted count is the length of the budgeted range.
        let (count, _) = snap.count_bounded_with(&query, &budget, &mut scratch);
        prop_assert_eq!(count, partial.len());
    }

    #[test]
    fn partial_knn_is_a_prefix_of_the_true_answer(
        seed in 0u64..1_000,
        n in 1usize..300,
        capacity in 1usize..5,
        point_budget in 1u64..120,
        k in 1usize..20,
        tx in 0.0f64..1.0,
        ty in 0.0f64..1.0,
    ) {
        let snap = uniform_snapshot(seed ^ 0x5eed, n, capacity);
        let target = Point2::new(tx, ty);
        let mut scratch = QueryScratch::new();

        let mut full = Vec::new();
        snap.knn_into(&target, k, &mut scratch, &mut full);

        let budget = CostBudget::new(u64::MAX, point_budget);
        let mut partial = Vec::new();
        let outcome = snap.knn_bounded_into(&target, k, &budget, &mut scratch, &mut partial);
        if outcome.is_complete() {
            prop_assert_eq!(partial.len(), full.len());
        }
        for (i, (got, want)) in partial.iter().zip(&full).enumerate() {
            prop_assert!(
                got.x.to_bits() == want.x.to_bits() && got.y.to_bits() == want.y.to_bits(),
                "k-NN prefix diverges at {i}: {got} vs {want}"
            );
        }
    }
}

#[test]
fn theory_budgets_complete_healthy_uniform_queries() {
    // A PR quadtree splits its window in four equal parts: uniform
    // branch-4 spec with the tree's own capacity.
    let capacity = 4;
    let n = 4_000;
    let snap = uniform_snapshot(0xbeef, n, capacity);
    let spec = SplitSpec::uniform(4, capacity).unwrap();
    let mut scratch = QueryScratch::new();
    let mut rng = StdRng::seed_from_u64(7);
    for _ in 0..20 {
        let x = rng.random_range(0.0..0.7);
        let y = rng.random_range(0.0..0.7);
        let w = rng.random_range(0.02..0.3);
        let query = Rect::from_bounds(x, y, x + w, y + w);
        let budget = default_budget(&spec, n, w * w).unwrap();

        let mut full = Vec::new();
        snap.range_into(&query, &mut scratch, &mut full);
        let mut bounded = Vec::new();
        let outcome = snap.range_bounded_into(&query, &budget, &mut scratch, &mut bounded);
        assert!(
            outcome.is_complete(),
            "theory budget {budget:?} exhausted on a healthy {w:.3}-window"
        );
        assert_eq!(bounded, full);
    }
}

#[test]
fn snapshot_footprint_regression() {
    // Freeze shrinks every slab to exact capacity, so the footprint is
    // an exact linear function of the slab lengths — any slab missing
    // from the accounting breaks one of these equations.
    for n in [1usize, 17, 256] {
        let snap = uniform_snapshot(n as u64, n, 2);
        let fp = snap.footprint();
        assert_eq!(snap.heap_bytes(), fp.leaves + fp.blocks + fp.points);
        assert_eq!(fp.points, n * std::mem::size_of::<Point2>());
        assert_eq!(fp.blocks, snap.leaf_count() * std::mem::size_of::<Rect>());
        assert!(fp.leaves > 0 && fp.leaves.is_multiple_of(snap.leaf_count()));
        assert_eq!(snap.stats().heap_bytes(), snap.heap_bytes());
    }
}
