//! Batch differential suite: Morton-batched execution is invisible.
//!
//! Three layers of agreement, each bit-for-bit:
//!
//! 1. **Batch vs serial** — `range_batch_into` / `count_batch_with` /
//!    `knn_batch_into` must return, at every original query index, the
//!    exact answer the serial serving form produces (canonical order
//!    included). The batch path may reorder *execution* however it
//!    likes; the permutation contract says the caller can never tell.
//! 2. **Batch vs oracle** — the same answers must match the naive
//!    full-scan reference (`range_by_scan` / `knn_by_scan`), so the
//!    batch path can't inherit a bug from the serial path it wraps.
//! 3. **Across readers** — a pool of concurrent `SnapshotReader`s
//!    (sized by `POPAN_THREADS`, the same knob `scripts/verify.sh`
//!    exercises at 1 and 4) each runs the same batch against the same
//!    published epoch with its own scratch; every reader's answers
//!    must be byte-identical to every other's.

use std::sync::Arc;

use popan_geom::{Point2, Rect};
use popan_proptest::prelude::*;
use popan_query::{
    knn_by_scan, range_by_scan, BatchAnswers, BatchScratch, Snapshot, SnapshotPublisher,
};
use popan_spatial::QueryScratch;

fn bits(points: &[Point2]) -> Vec<(u64, u64)> {
    points
        .iter()
        .map(|p| (p.x.to_bits(), p.y.to_bits()))
        .collect()
}

fn arb_points() -> impl Strategy<Value = Vec<Point2>> {
    popan_proptest::collection::vec((0u8..8, 0.0f64..1.0, 0.0f64..1.0, 0u8..6, 0u8..6), 0..160)
        .prop_map(|elems| {
            elems
                .into_iter()
                .map(|(kind, x, y, i, j)| {
                    if kind < 6 {
                        Point2::new(x, y)
                    } else {
                        // Exact collisions: coincident piles and k-NN ties.
                        Point2::new(f64::from(i) / 6.0, f64::from(j) / 6.0)
                    }
                })
                .collect()
        })
}

fn arb_queries() -> impl Strategy<Value = Vec<Rect>> {
    popan_proptest::collection::vec((0.0f64..1.0, 0.0f64..1.0, 0.0f64..0.5, 0.0f64..0.5), 0..40)
        .prop_map(|elems| {
            elems
                .into_iter()
                .map(|(x, y, w, h)| Rect::from_bounds(x, y, (x + w).min(1.0), (y + h).min(1.0)))
                .collect()
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn range_batch_matches_serial_and_oracle(
        points in arb_points(),
        queries in arb_queries(),
        capacity in 1usize..5,
    ) {
        let snap = Snapshot::from_points(1, Rect::unit(), capacity, points.clone()).unwrap();
        let mut scratch = BatchScratch::new();
        let mut batch = BatchAnswers::new();
        snap.range_batch_into(&queries, &mut scratch, &mut batch);
        prop_assert_eq!(batch.len(), queries.len());

        let mut serial_scratch = QueryScratch::default();
        let mut serial = Vec::new();
        for (i, q) in queries.iter().enumerate() {
            snap.range_into(q, &mut serial_scratch, &mut serial);
            prop_assert_eq!(bits(batch.answer(i)), bits(&serial), "serial mismatch at {}", i);
            let oracle = range_by_scan(points.iter().copied(), q);
            prop_assert_eq!(bits(batch.answer(i)), bits(&oracle), "oracle mismatch at {}", i);
        }
    }

    #[test]
    fn count_batch_matches_serial_and_oracle(
        points in arb_points(),
        queries in arb_queries(),
        capacity in 1usize..5,
    ) {
        let snap = Snapshot::from_points(1, Rect::unit(), capacity, points.clone()).unwrap();
        let mut scratch = BatchScratch::new();
        let mut counts = Vec::new();
        snap.count_batch_with(&queries, &mut scratch, &mut counts);
        prop_assert_eq!(counts.len(), queries.len());

        let mut serial_scratch = QueryScratch::default();
        for (i, q) in queries.iter().enumerate() {
            prop_assert_eq!(counts[i], snap.count_with(q, &mut serial_scratch));
            prop_assert_eq!(counts[i], range_by_scan(points.iter().copied(), q).len());
        }
    }

    #[test]
    fn knn_batch_matches_serial_and_oracle(
        points in arb_points(),
        targets in popan_proptest::collection::vec((0.0f64..1.0, 0.0f64..1.0), 0..32),
        k in 0usize..8,
        capacity in 1usize..5,
    ) {
        let targets: Vec<Point2> = targets.iter().map(|&(x, y)| Point2::new(x, y)).collect();
        let snap = Snapshot::from_points(1, Rect::unit(), capacity, points.clone()).unwrap();
        let mut scratch = BatchScratch::new();
        let mut batch = BatchAnswers::new();
        snap.knn_batch_into(&targets, k, &mut scratch, &mut batch);
        prop_assert_eq!(batch.len(), targets.len());

        let mut serial_scratch = QueryScratch::default();
        let mut serial = Vec::new();
        for (i, t) in targets.iter().enumerate() {
            snap.knn_into(t, k, &mut serial_scratch, &mut serial);
            prop_assert_eq!(bits(batch.answer(i)), bits(&serial), "serial mismatch at {}", i);
            let oracle = knn_by_scan(points.iter().copied(), t, k);
            prop_assert_eq!(bits(batch.answer(i)), bits(&oracle), "oracle mismatch at {}", i);
        }
    }
}

/// Reader-pool width: `POPAN_THREADS` when set to a positive count, the
/// same 4-way default `scripts/verify.sh` pins otherwise.
fn pool_width() -> usize {
    std::env::var("POPAN_THREADS")
        .ok()
        .and_then(|v| v.parse::<usize>().ok())
        .filter(|&n| n > 0)
        .unwrap_or(4)
}

#[test]
fn concurrent_readers_agree_bit_for_bit() {
    let points: Vec<Point2> = (0..4000)
        .map(|i| {
            Point2::new(
                (i as f64 * 0.618_033_988_7) % 1.0,
                (i as f64 * 0.414_213_562_3) % 1.0,
            )
        })
        .collect();
    let queries: Vec<Rect> = (0..256)
        .map(|i| {
            let x = (i as f64 * 0.37) % 0.8;
            let y = (i as f64 * 0.59) % 0.8;
            Rect::from_bounds(x, y, x + 0.11, y + 0.07)
        })
        .collect();
    let targets: Vec<Point2> = (0..128)
        .map(|i| Point2::new((i as f64 * 0.71) % 1.0, (i as f64 * 0.53) % 1.0))
        .collect();

    let snap = Snapshot::from_points(0, Rect::unit(), 8, points).unwrap();
    let publisher = SnapshotPublisher::new(snap);
    let queries = Arc::new(queries);
    let targets = Arc::new(targets);

    let handles: Vec<_> = (0..pool_width())
        .map(|_| {
            let reader = publisher.subscribe();
            let queries = Arc::clone(&queries);
            let targets = Arc::clone(&targets);
            std::thread::spawn(move || {
                let mut scratch = BatchScratch::new();
                let mut ranges = BatchAnswers::new();
                reader.range_batch_into(&queries, &mut scratch, &mut ranges);
                let mut counts = Vec::new();
                reader.count_batch_with(&queries, &mut scratch, &mut counts);
                let mut knn = BatchAnswers::new();
                reader.knn_batch_into(&targets, 6, &mut scratch, &mut knn);
                let range_bits: Vec<Vec<(u64, u64)>> = ranges.iter().map(bits).collect();
                let knn_bits: Vec<Vec<(u64, u64)>> = knn.iter().map(bits).collect();
                (range_bits, counts, knn_bits)
            })
        })
        .collect();

    let results: Vec<_> = handles
        .into_iter()
        .map(|h| h.join().expect("reader thread panicked"))
        .collect();
    let first = &results[0];
    assert_eq!(first.0.len(), queries.len());
    assert_eq!(first.2.len(), targets.len());
    for (i, other) in results.iter().enumerate().skip(1) {
        assert_eq!(&first.0, &other.0, "reader {i} range answers diverged");
        assert_eq!(&first.1, &other.1, "reader {i} counts diverged");
        assert_eq!(&first.2, &other.2, "reader {i} knn answers diverged");
    }
}
