//! Arena-vs-boxed equivalence suite.
//!
//! The arena-backed [`PrQuadtree`] must be *observationally identical* to
//! the frozen boxed implementation ([`reference::BoxedPrQuadtree`]) under
//! arbitrary insert/remove interleavings: same leaf records in the same
//! traversal order, same node counts, same stored points — bit for bit.
//! On top of that, the incrementally maintained census must equal a
//! census rebuilt from a full traversal after *every* operation, and
//! free-list reuse (remove-then-reinsert) must leave the traversal order
//! unchanged.

use popan_geom::{Point2, Rect};
use popan_proptest::prelude::*;
use popan_spatial::reference::BoxedPrQuadtree;
use popan_spatial::{
    Bintree, DepthOccupancyTable, OccupancyCensus, OccupancyInstrumented, OccupancyProfile,
    PrQuadtree,
};

/// Asserts every observable of the arena tree against the boxed oracle.
fn assert_matches_oracle(arena: &PrQuadtree, boxed: &BoxedPrQuadtree) {
    assert_eq!(arena.len(), boxed.len());
    assert_eq!(arena.node_count(), boxed.node_count());
    assert_eq!(arena.leaf_count(), boxed.leaf_count());

    // Leaf records in traversal (pre-order, NW..SE) order, including the
    // exact f64 block bounds — this is the bit-identity check that keeps
    // every downstream statistic byte-stable.
    let arena_leaves = arena.leaf_records();
    let boxed_leaves = boxed.leaf_records();
    assert_eq!(arena_leaves, boxed_leaves, "leaf traversal diverged");

    // Stored points in traversal + within-leaf order.
    let mut arena_points = Vec::new();
    arena.for_each_leaf(|_, _, pts| arena_points.extend_from_slice(pts));
    let mut boxed_points = Vec::new();
    boxed.for_each_leaf(|_, _, pts| boxed_points.extend_from_slice(pts));
    assert_eq!(arena_points, boxed_points, "point order diverged");
}

/// Asserts the incremental census equals one rebuilt from traversal.
fn assert_census_fresh(arena: &PrQuadtree) {
    let records = arena.leaf_records();
    let rebuilt = OccupancyCensus::from_leaves(&records);
    assert_eq!(
        arena.census(),
        &rebuilt,
        "incremental census diverged from traversal census"
    );
    assert_eq!(
        arena.occupancy_profile(),
        &OccupancyProfile::from_leaves(&records)
    );
    assert_eq!(
        arena.depth_table(),
        &DepthOccupancyTable::from_leaves(&records)
    );
}

fn arb_coords() -> impl Strategy<Value = Vec<(f64, f64)>> {
    popan_proptest::collection::vec((0.0f64..1.0, 0.0f64..1.0), 0..120)
}

/// Point multisets slanted toward the bulk paths' hard cases: exact
/// dyadic-grid collisions (coincident piles on split boundaries) and
/// sub-quantum clusters (distinct points sharing one full-resolution
/// Morton cell, which force max-depth spill leaves at capacity 1 and the
/// bottom-up path's geometric fallback). Lengths 0 and 1 cover the
/// empty/singleton edges.
fn arb_messy_points() -> impl Strategy<Value = Vec<Point2>> {
    popan_proptest::collection::vec((0u8..10, 0.0f64..1.0, 0.0f64..1.0, 0u8..8, 0u8..8), 0..140)
        .prop_map(|elems| {
            elems
                .into_iter()
                .map(|(kind, x, y, i, j)| match kind {
                    0..=4 => Point2::new(x, y),
                    5..=7 => Point2::new(f64::from(i) / 8.0, f64::from(j) / 8.0),
                    _ => Point2::new(0.5 + f64::from(i) * 1e-13, 0.25 + f64::from(j) * 1e-13),
                })
                .collect()
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn builds_are_bit_identical(coords in arb_coords(), capacity in 1usize..6) {
        let points: Vec<Point2> = coords.iter().map(|&(x, y)| Point2::new(x, y)).collect();
        let arena = PrQuadtree::build(Rect::unit(), capacity, points.iter().copied()).unwrap();
        let boxed = BoxedPrQuadtree::build(Rect::unit(), capacity, points.iter().copied()).unwrap();
        assert_matches_oracle(&arena, &boxed);
        assert_census_fresh(&arena);
    }

    #[test]
    fn bottomup_builds_are_bit_identical(
        points in arb_messy_points(),
        capacity in 1usize..6,
    ) {
        // Three-way: Morton-radix bottom-up vs level-streaming bulk
        // vs the boxed oracle — all three must agree bit for bit.
        let bottomup =
            PrQuadtree::build_bottomup(Rect::unit(), capacity, points.iter().copied()).unwrap();
        let bulk = PrQuadtree::build(Rect::unit(), capacity, points.iter().copied()).unwrap();
        let boxed =
            BoxedPrQuadtree::build(Rect::unit(), capacity, points.iter().copied()).unwrap();
        assert_eq!(bottomup.leaf_records(), bulk.leaf_records());
        assert_eq!(bottomup.node_count(), bulk.node_count());
        assert_matches_oracle(&bottomup, &boxed);
        assert_census_fresh(&bottomup);
        bottomup.check_invariants();
    }

    #[test]
    fn bintree_bottomup_builds_are_bit_identical(
        points in arb_messy_points(),
        capacity in 1usize..6,
    ) {
        let bottomup =
            Bintree::build_bottomup(Rect::unit(), capacity, points.iter().copied()).unwrap();
        let bulk = Bintree::build(Rect::unit(), capacity, points.iter().copied()).unwrap();
        assert_eq!(bottomup.len(), bulk.len());
        assert_eq!(bottomup.node_count(), bulk.node_count());
        let mut a = Vec::new();
        bottomup.for_each_leaf(|r, d, pts| a.push((r, d, pts.to_vec())));
        let mut b = Vec::new();
        bulk.for_each_leaf(|r, d, pts| b.push((r, d, pts.to_vec())));
        assert_eq!(a, b, "bintree leaf traversal diverged");
        assert_eq!(bottomup.occupancy_profile(), bulk.occupancy_profile());
        assert_eq!(bottomup.depth_table(), bulk.depth_table());
        bottomup.check_invariants();
    }

    #[test]
    fn interleaved_ops_stay_bit_identical(
        seed in arb_coords(),
        ops in popan_proptest::collection::vec(
            (0.0f64..1.0, 0.0f64..1.0, popan_proptest::bool::ANY),
            0..90,
        ),
        capacity in 1usize..5,
    ) {
        let mut arena = PrQuadtree::new(Rect::unit(), capacity).unwrap();
        let mut boxed = BoxedPrQuadtree::new(Rect::unit(), capacity).unwrap();
        let mut live: Vec<Point2> = Vec::new();

        for &(x, y) in &seed {
            let p = Point2::new(x, y);
            arena.insert(p).unwrap();
            boxed.insert(p).unwrap();
            live.push(p);
        }
        assert_matches_oracle(&arena, &boxed);

        for (i, &(x, y, is_insert)) in ops.iter().enumerate() {
            if is_insert || live.is_empty() {
                let p = Point2::new(x, y);
                arena.insert(p).unwrap();
                boxed.insert(p).unwrap();
                live.push(p);
            } else {
                // Deterministic victim choice scattered across the live set.
                let idx = (i * 7919) % live.len();
                let p = live.remove(idx);
                prop_assert!(arena.remove(&p));
                prop_assert!(boxed.remove(&p));
            }
            // The census must be exact after *every* operation, not just
            // at quiescence.
            assert_census_fresh(&arena);
        }
        assert_matches_oracle(&arena, &boxed);
        arena.check_invariants();
    }

    #[test]
    fn free_list_reuse_is_invisible_to_traversal(
        coords in popan_proptest::collection::vec((0.0f64..1.0, 0.0f64..1.0), 1..60),
        capacity in 1usize..4,
    ) {
        let points: Vec<Point2> = coords.iter().map(|&(x, y)| Point2::new(x, y)).collect();
        let mut arena = PrQuadtree::build(Rect::unit(), capacity, points.iter().copied()).unwrap();

        // Tear down (collapses populate the free lists), then rebuild the
        // same tree: recycled blocks and leaf buffers must be
        // unobservable — the traversal matches a never-churned build.
        for p in &points {
            prop_assert!(arena.remove(p));
        }
        prop_assert!(arena.is_empty());
        assert_census_fresh(&arena);
        for p in &points {
            arena.insert(*p).unwrap();
        }

        let fresh = PrQuadtree::build(Rect::unit(), capacity, points.iter().copied()).unwrap();
        assert_eq!(arena.leaf_records(), fresh.leaf_records());
        assert_eq!(arena.node_count(), fresh.node_count());
        let boxed = BoxedPrQuadtree::build(Rect::unit(), capacity, points.iter().copied()).unwrap();
        assert_matches_oracle(&arena, &boxed);
        assert_census_fresh(&arena);
        arena.check_invariants();
    }
}
