//! Census reads must not allocate.
//!
//! `occupancy_profile()`, `depth_table()`, `leaf_count()` and `census()`
//! are O(m) *reads* of incrementally maintained state — the whole point
//! of the arena rewrite. This test installs a counting global allocator
//! and pins the zero-allocation contract so a future refactor cannot
//! quietly reintroduce a rebuild-on-read.
//!
//! The `unsafe impl GlobalAlloc` below is the one place the workspace
//! needs `unsafe` (the trait itself is unsafe); popan-lint carries an
//! R2 `allow_paths` entry for this file, and the library crates remain
//! under `#![forbid(unsafe_code)]`.

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};

struct CountingAlloc;

static ALLOCATIONS: AtomicU64 = AtomicU64::new(0);

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::SeqCst);
        unsafe { System.alloc(layout) }
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        unsafe { System.dealloc(ptr, layout) }
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::SeqCst);
        unsafe { System.realloc(ptr, layout, new_size) }
    }
}

#[global_allocator]
static GLOBAL: CountingAlloc = CountingAlloc;

/// Runs `f` and returns how many heap allocations it performed.
fn allocations_during(f: impl FnOnce()) -> u64 {
    let before = ALLOCATIONS.load(Ordering::SeqCst);
    f();
    ALLOCATIONS.load(Ordering::SeqCst) - before
}

// A single test function: integration tests in one binary run on
// multiple threads, and a second test's allocations would leak into
// this one's counter window.
#[test]
fn census_reads_do_not_allocate() {
    use popan_geom::{Point2, Rect};
    use popan_rng::rngs::StdRng;
    use popan_rng::{Rng, SeedableRng};
    use popan_spatial::PrQuadtree;

    let mut rng = StdRng::seed_from_u64(42);
    let points: Vec<Point2> = (0..5_000)
        .map(|_| Point2::new(rng.random_range(0.0..1.0), rng.random_range(0.0..1.0)))
        .collect();
    let mut tree = PrQuadtree::build(Rect::unit(), 4, points.iter().copied()).unwrap();
    for p in &points[..1_000] {
        assert!(tree.remove(p));
    }

    let mut sink = 0usize;
    let allocs = allocations_during(|| {
        for _ in 0..100 {
            sink = sink
                .wrapping_add(tree.leaf_count())
                .wrapping_add(tree.occupancy_profile().count(0) as usize)
                .wrapping_add(tree.depth_table().leaves_at(2) as usize)
                .wrapping_add(tree.census().leaf_count());
        }
    });
    assert!(sink != 0, "reads must not be optimized away");
    assert_eq!(
        allocs, 0,
        "census reads allocated {allocs} times; they must be allocation-free"
    );

    // The traversal-based oracle does allocate — sanity-check that the
    // counter actually observes this binary's allocations.
    use popan_spatial::OccupancyInstrumented;
    let oracle_allocs = allocations_during(|| {
        sink = sink.wrapping_add(tree.leaf_records().len());
    });
    assert!(
        oracle_allocs > 0,
        "counting allocator failed to observe the traversal oracle's allocations"
    );
}
