//! Arena-backed core shared by the regular-decomposition PR trees.
//!
//! The boxed trees (`Node::Internal(Box<[Node; B]>)` plus one heap `Vec`
//! per leaf) spend most of their time in the allocator and in pointer
//! chasing. This module keeps every node in one contiguous slot pool
//! addressed by `u32` ids, stores leaf points in small inline buffers that
//! spill to a shared point arena, and maintains an
//! [`OccupancyCensus`](crate::node_stats::OccupancyCensus) incrementally —
//! O(1) amortized census work per leaf event, O(depth) per tree mutation —
//! so the occupancy reads the experiments hammer are zero-allocation,
//! zero-traversal lookups.
//!
//! # Layout
//!
//! * `slots[0]` is the root. An internal slot stores the base id of its
//!   `B` children, which always occupy `B` *contiguous* slots
//!   (`base .. base + B`); a child block freed by a remove-collapse goes on
//!   `free_blocks` and is reused wholesale by the next split.
//! * A leaf slot stores the id of a [`LeafBuf`]: a fixed `capacity + 1`
//!   stride of the pool's shared point slab, spilling *all* points to a
//!   shared `Vec` arena on overflow — which only coincident piles and
//!   max-depth leaves can reach (a spilled leaf stays spilled until the
//!   buffer is freed, so no points move back and forth on the boundary).
//!
//! # Bit-identity with the boxed implementation
//!
//! Traversal ([`ArenaTree::for_each_leaf`]) is pre-order by child *index*,
//! never by physical slot id, so free-list reuse cannot affect observable
//! order. Within a leaf, `push` appends and `swap_remove` replicates
//! `Vec::swap_remove`, and split/collapse redistribute and merge in the
//! exact order of the boxed code — `reference::BoxedPrQuadtree` is kept as
//! the oracle and the equivalence proptests assert bit-identical
//! `leaf_records()` after arbitrary insert/remove interleavings.

use crate::node_stats::{LeafRecord, OccupancyCensus};
use popan_geom::{Aabb3, BoxN, Octant, Point2, Point3, PointN, Quadrant, Rect};

// The Morton-radix bottom-up bulk path. A child module (kept in its own
// file per the layout convention) so it can reach the arena's private
// slot/leaf/census internals without widening their visibility.
#[path = "bottomup.rs"]
pub(crate) mod bottomup;

/// Sentinel for "no spill vector attached".
const NO_SPILL: u32 = u32::MAX;

/// Largest branching factor the bulk-build stack arrays accommodate
/// (`2^6` covers every tree the workspace instantiates); wider schemes
/// fall back to sequential insertion.
const MAX_BULK_BRANCHING: usize = 64;

/// A regular decomposition scheme: how a block splits into `BRANCHING`
/// children and which child a point belongs to. Implemented by zero-sized
/// markers; all methods are static so the arena stays monomorphized and
/// branch-free on the scheme.
pub(crate) trait Decomposition {
    /// Point type stored in the tree.
    type Point: Copy + PartialEq + Default + std::fmt::Debug + std::fmt::Display;
    /// Block (region) type being decomposed.
    type Block: Copy + std::fmt::Debug;
    /// Precomputed split thresholds of one block, for classifying many
    /// points without re-deriving the midpoints per point.
    type Splitter: Copy;
    /// Number of children per internal node.
    const BRANCHING: usize;
    /// The block of child `i` of `block` split at `depth`.
    fn child_block(block: &Self::Block, depth: u32, i: usize) -> Self::Block;
    /// Fused descent step: the index and block of the child of `block`
    /// containing `p`, computing the split once. The returned block must
    /// equal `child_block(block, depth, i)` bit for bit — the descent
    /// hot path uses this, and the oracle-equivalence proptests check
    /// the agreement end to end.
    fn descend(block: &Self::Block, depth: u32, p: &Self::Point) -> (usize, Self::Block);
    /// The split thresholds of `block` at `depth`.
    fn splitter(block: &Self::Block, depth: u32) -> Self::Splitter;
    /// The index of the child containing `p`, against precomputed
    /// thresholds — pure comparisons, no per-point midpoint math. Must
    /// agree with `descend`'s index.
    fn classify(s: &Self::Splitter, depth: u32, p: &Self::Point) -> usize;
    /// Whether `block` contains `p` (half-open semantics).
    fn contains(block: &Self::Block, p: &Self::Point) -> bool;
}

/// Quadrant decomposition of a [`Rect`] — the PR quadtree.
#[derive(Debug, Clone, Copy)]
pub(crate) struct QuadDecomp;

impl Decomposition for QuadDecomp {
    type Point = Point2;
    type Block = Rect;
    type Splitter = (f64, f64);
    const BRANCHING: usize = 4;

    fn child_block(block: &Rect, _depth: u32, i: usize) -> Rect {
        block.quadrant(Quadrant::from_index(i))
    }

    fn descend(block: &Rect, _depth: u32, p: &Point2) -> (usize, Rect) {
        let (q, child) = block.quadrant_descend(p);
        (q.index(), child)
    }

    fn splitter(block: &Rect, _depth: u32) -> (f64, f64) {
        (block.x().mid(), block.y().mid())
    }

    fn classify(&(mx, my): &(f64, f64), _depth: u32, p: &Point2) -> usize {
        usize::from(p.y >= my) * 2 + usize::from(p.x >= mx)
    }

    fn contains(block: &Rect, p: &Point2) -> bool {
        block.contains(p)
    }
}

/// Octant decomposition of an [`Aabb3`] — the PR octree.
#[derive(Debug, Clone, Copy)]
pub(crate) struct OctDecomp;

impl Decomposition for OctDecomp {
    type Point = Point3;
    type Block = Aabb3;
    type Splitter = (f64, f64, f64);
    const BRANCHING: usize = 8;

    fn child_block(block: &Aabb3, _depth: u32, i: usize) -> Aabb3 {
        block.octant(Octant::from_index(i))
    }

    fn descend(block: &Aabb3, _depth: u32, p: &Point3) -> (usize, Aabb3) {
        let (o, child) = block.octant_descend(p);
        (o.index(), child)
    }

    fn splitter(block: &Aabb3, _depth: u32) -> (f64, f64, f64) {
        (block.x().mid(), block.y().mid(), block.z().mid())
    }

    fn classify(&(mx, my, mz): &(f64, f64, f64), _depth: u32, p: &Point3) -> usize {
        usize::from(p.z >= mz) * 4 + usize::from(p.y >= my) * 2 + usize::from(p.x >= mx)
    }

    fn contains(block: &Aabb3, p: &Point3) -> bool {
        block.contains(p)
    }
}

/// Alternating-axis halving of a [`Rect`] — the bintree. Depth-even
/// levels split on x, depth-odd on y.
#[derive(Debug, Clone, Copy)]
pub(crate) struct BinDecomp;

impl Decomposition for BinDecomp {
    type Point = Point2;
    type Block = Rect;
    type Splitter = f64;
    const BRANCHING: usize = 2;

    fn child_block(block: &Rect, depth: u32, i: usize) -> Rect {
        if depth.is_multiple_of(2) {
            let half = block.x().split()[i];
            Rect::new(half, block.y())
        } else {
            let half = block.y().split()[i];
            Rect::new(block.x(), half)
        }
    }

    fn descend(block: &Rect, depth: u32, p: &Point2) -> (usize, Rect) {
        if depth.is_multiple_of(2) {
            let (h, half) = block.x().descend(p.x);
            (h.index(), Rect::new(half, block.y()))
        } else {
            let (h, half) = block.y().descend(p.y);
            (h.index(), Rect::new(block.x(), half))
        }
    }

    fn splitter(block: &Rect, depth: u32) -> f64 {
        if depth.is_multiple_of(2) {
            block.x().mid()
        } else {
            block.y().mid()
        }
    }

    fn classify(&mid: &f64, depth: u32, p: &Point2) -> usize {
        if depth.is_multiple_of(2) {
            usize::from(p.x >= mid)
        } else {
            usize::from(p.y >= mid)
        }
    }

    fn contains(block: &Rect, p: &Point2) -> bool {
        block.contains(p)
    }
}

/// Orthant decomposition of a [`BoxN`] — the `2^D`-ary PR tree.
#[derive(Debug, Clone, Copy)]
pub(crate) struct NdDecomp<const D: usize>;

impl<const D: usize> Decomposition for NdDecomp<D> {
    type Point = PointN<D>;
    type Block = BoxN<D>;
    type Splitter = PointN<D>;
    const BRANCHING: usize = 1 << D;

    fn child_block(block: &BoxN<D>, _depth: u32, i: usize) -> BoxN<D> {
        block.orthant(i)
    }

    fn descend(block: &BoxN<D>, _depth: u32, p: &PointN<D>) -> (usize, BoxN<D>) {
        block.orthant_descend(p)
    }

    fn splitter(block: &BoxN<D>, _depth: u32) -> PointN<D> {
        block.split_mids()
    }

    fn classify(mids: &PointN<D>, _depth: u32, p: &PointN<D>) -> usize {
        (0..D).fold(0, |acc, i| {
            acc | (usize::from(p.coords[i] >= mids.coords[i]) << i)
        })
    }

    fn contains(block: &BoxN<D>, p: &PointN<D>) -> bool {
        block.contains(p)
    }
}

/// One node slot: a leaf (holding a [`LeafBuf`] id) or an internal node
/// (holding the base id of its contiguous child slots).
#[derive(Debug, Clone, Copy)]
pub(crate) enum Slot {
    /// Leaf node; payload is the id into the [`LeafPool`].
    Leaf(u32),
    /// Internal node; children are slots `base .. base + BRANCHING`.
    Internal(u32),
}

/// A read-only view of a slot, for tree-specific query code.
pub(crate) enum SlotView<'a, P> {
    /// Leaf with its points.
    Leaf(&'a [P]),
    /// Internal node with its child base id.
    Internal(u32),
}

/// Per-leaf bookkeeping: point count plus the id of the spill vector
/// (if any). The points themselves live in the pool's strided slab.
#[derive(Debug, Clone, Copy)]
struct LeafBuf {
    len: u32,
    spill: u32,
}

/// Pool of leaf buffers over one shared, strided point slab.
///
/// Buffer `i` owns the slab segment `i * stride .. i * stride + len`,
/// where `stride = capacity + 1` — enough for a full leaf plus the one
/// transient over-capacity point a split redistributes away. Only leaves
/// that legitimately exceed that (coincident piles and max-depth leaves)
/// move to a spill vector, and a spilled leaf stays spilled until the
/// buffer is freed, so no points ping-pong across the boundary.
#[derive(Debug, Clone, Default)]
struct LeafPool<P> {
    stride: usize,
    bufs: Vec<LeafBuf>,
    free: Vec<u32>,
    slab: Vec<P>,
    spills: Vec<Vec<P>>,
    spill_free: Vec<u32>,
}

impl<P: Copy + Default + PartialEq> LeafPool<P> {
    fn new(stride: usize) -> Self {
        LeafPool {
            stride,
            bufs: Vec::new(),
            free: Vec::new(),
            slab: Vec::new(),
            spills: Vec::new(),
            spill_free: Vec::new(),
        }
    }

    /// Allocates an empty leaf buffer, reusing a freed one when possible.
    fn alloc(&mut self) -> u32 {
        if let Some(id) = self.free.pop() {
            id
        } else {
            self.bufs.push(LeafBuf {
                len: 0,
                spill: NO_SPILL,
            });
            self.slab
                .resize(self.slab.len() + self.stride, P::default());
            (self.bufs.len() - 1) as u32
        }
    }

    /// Allocates a leaf buffer holding exactly `pts` — the bottom-up
    /// builder's leaf emitter: one slab slice copy instead of per-point
    /// `push` calls. Runs too large for a stride (coincident piles,
    /// max-depth leaves) take the general push path and spill as usual.
    fn alloc_filled(&mut self, pts: &[P]) -> u32 {
        if pts.len() > self.stride {
            let id = self.alloc();
            for &p in pts {
                self.push(id, p);
            }
            return id;
        }
        if let Some(id) = self.free.pop() {
            let base = id as usize * self.stride;
            self.bufs[id as usize].len = pts.len() as u32;
            self.slab[base..base + pts.len()].copy_from_slice(pts);
            id
        } else {
            let id = self.bufs.len() as u32;
            self.bufs.push(LeafBuf {
                len: pts.len() as u32,
                spill: NO_SPILL,
            });
            debug_assert_eq!(self.slab.len(), id as usize * self.stride);
            // Manual pushes, not `extend_from_slice` + `resize`: most
            // leaves are a handful of points, where two `memcpy`
            // dispatches cost more than the copies themselves.
            self.slab.reserve(self.stride);
            for &p in pts {
                self.slab.push(p);
            }
            for _ in pts.len()..self.stride {
                self.slab.push(P::default());
            }
            id
        }
    }

    /// Pre-reserves room for `extra` more buffers (bulk-build hint, so
    /// the slab doesn't re-copy itself through doubling growth).
    fn reserve(&mut self, extra: usize) {
        self.bufs.reserve(extra);
        self.slab.reserve(extra * self.stride);
    }

    /// Frees a buffer (and detaches + recycles its spill vector).
    fn free(&mut self, id: u32) {
        let buf = &mut self.bufs[id as usize];
        buf.len = 0;
        if buf.spill != NO_SPILL {
            self.spills[buf.spill as usize].clear();
            self.spill_free.push(buf.spill);
            buf.spill = NO_SPILL;
        }
        self.free.push(id);
    }

    fn len(&self, id: u32) -> usize {
        self.bufs[id as usize].len as usize
    }

    fn points(&self, id: u32) -> &[P] {
        let buf = &self.bufs[id as usize];
        if buf.spill == NO_SPILL {
            let base = id as usize * self.stride;
            &self.slab[base..base + buf.len as usize]
        } else {
            &self.spills[buf.spill as usize]
        }
    }

    /// Appends a point, spilling the whole buffer to the arena when its
    /// slab stride overflows.
    fn push(&mut self, id: u32, p: P) {
        let buf = &mut self.bufs[id as usize];
        if buf.spill == NO_SPILL && (buf.len as usize) < self.stride {
            self.slab[id as usize * self.stride + buf.len as usize] = p;
            buf.len += 1;
            return;
        }
        if buf.spill != NO_SPILL {
            self.spills[buf.spill as usize].push(p);
        } else {
            let s = if let Some(s) = self.spill_free.pop() {
                s
            } else {
                self.spills.push(Vec::new());
                (self.spills.len() - 1) as u32
            };
            let base = id as usize * self.stride;
            let spill = &mut self.spills[s as usize];
            spill.reserve(buf.len as usize + 1);
            spill.extend_from_slice(&self.slab[base..base + buf.len as usize]);
            spill.push(p);
            buf.spill = s;
        }
        self.bufs[id as usize].len += 1;
    }

    /// Replicates `Vec::swap_remove(idx)` exactly (the removed point is
    /// replaced by the last one), preserving the boxed trees' within-leaf
    /// order bit for bit.
    fn swap_remove(&mut self, id: u32, idx: usize) {
        let buf = &mut self.bufs[id as usize];
        let len = buf.len as usize;
        debug_assert!(idx < len);
        if buf.spill == NO_SPILL {
            let base = id as usize * self.stride;
            self.slab[base + idx] = self.slab[base + len - 1];
        } else {
            self.spills[buf.spill as usize].swap_remove(idx);
        }
        self.bufs[id as usize].len -= 1;
    }

    /// Moves all points out of a buffer into `scratch` (cleared first)
    /// and frees the buffer, so the pool can be mutated while the points
    /// are redistributed.
    fn take_into(&mut self, id: u32, scratch: &mut Vec<P>) {
        scratch.clear();
        let buf = &mut self.bufs[id as usize];
        if buf.spill == NO_SPILL {
            let base = id as usize * self.stride;
            scratch.extend_from_slice(&self.slab[base..base + buf.len as usize]);
        } else {
            let s = buf.spill;
            buf.spill = NO_SPILL;
            scratch.extend_from_slice(&self.spills[s as usize]);
            self.spills[s as usize].clear();
            self.spill_free.push(s);
        }
        buf.len = 0;
        self.free.push(id);
    }

    /// Whether every stored point equals the first (the trees'
    /// coincident-pile exception). Empty buffers are trivially coincident.
    fn all_coincident(&self, id: u32) -> bool {
        let pts = self.points(id);
        match pts.first() {
            Some(&first) => pts.iter().all(|q| *q == first),
            None => true,
        }
    }

    /// Number of live (allocated, not freed) buffers.
    fn live_bufs(&self) -> usize {
        self.bufs.len() - self.free.len()
    }
}

/// The arena-backed PR tree core: slot pool, leaf pool, free lists and
/// the incrementally maintained occupancy census.
#[derive(Debug, Clone)]
pub(crate) struct ArenaTree<D: Decomposition> {
    slots: Vec<Slot>,
    free_blocks: Vec<u32>,
    leaves: LeafPool<D::Point>,
    census: OccupancyCensus,
    scratch: Vec<D::Point>,
    split_scratch: Vec<D::Point>,
    region: D::Block,
    capacity: usize,
    max_depth: u32,
    len: usize,
}

/// The root slot id.
pub(crate) const ROOT: u32 = 0;

impl<D: Decomposition> ArenaTree<D> {
    /// An empty tree: one empty root leaf (counted by the census).
    pub(crate) fn new(region: D::Block, capacity: usize, max_depth: u32) -> Self {
        debug_assert!(capacity >= 1, "wrappers validate capacity");
        // Stride `capacity + 1`: room for a full leaf plus the one
        // transient over-capacity point a cascading split hands a child
        // before splitting it in turn.
        let mut leaves = LeafPool::new(capacity + 1);
        let root_buf = leaves.alloc();
        let mut census = OccupancyCensus::new();
        census.leaf_added(0, 0);
        ArenaTree {
            slots: vec![Slot::Leaf(root_buf)],
            free_blocks: Vec::new(),
            leaves,
            census,
            scratch: Vec::new(),
            split_scratch: Vec::new(),
            region,
            capacity,
            max_depth,
            len: 0,
        }
    }

    pub(crate) fn region(&self) -> D::Block {
        self.region
    }

    pub(crate) fn capacity(&self) -> usize {
        self.capacity
    }

    pub(crate) fn max_depth(&self) -> u32 {
        self.max_depth
    }

    pub(crate) fn len(&self) -> usize {
        self.len
    }

    pub(crate) fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// The maintained census — zero-allocation, zero-traversal.
    pub(crate) fn census(&self) -> &OccupancyCensus {
        &self.census
    }

    /// Total node count (internal + leaf), from pool accounting: every
    /// allocated block contributes `BRANCHING` slots, freed blocks are
    /// parked on the free list.
    pub(crate) fn node_count(&self) -> usize {
        self.slots.len() - self.free_blocks.len() * D::BRANCHING
    }

    /// Read-only view of one slot.
    pub(crate) fn view(&self, slot: u32) -> SlotView<'_, D::Point> {
        match self.slots[slot as usize] {
            Slot::Leaf(buf) => SlotView::Leaf(self.leaves.points(buf)),
            Slot::Internal(base) => SlotView::Internal(base),
        }
    }

    /// Inserts a point the caller has already validated (finite, inside
    /// the region), splitting per the PR rule.
    pub(crate) fn insert(&mut self, p: D::Point) {
        let mut slot = ROOT;
        let mut block = self.region;
        let mut depth = 0u32;
        loop {
            match self.slots[slot as usize] {
                Slot::Internal(base) => {
                    let (i, child) = D::descend(&block, depth, &p);
                    block = child;
                    slot = base + i as u32;
                    depth += 1;
                }
                Slot::Leaf(buf) => {
                    let old = self.leaves.len(buf);
                    if old + 1 > self.capacity
                        && depth < self.max_depth
                        && !self.coincident_with(buf, &p)
                    {
                        // Split-before-push fast path: the leaf's points
                        // plus `p` go straight to the children (existing
                        // points in order, `p` last — exactly the order
                        // the boxed push-then-split redistributes in),
                        // skipping the push into a buffer that is about
                        // to be dismantled anyway.
                        self.split_leaf_with(slot, block, depth, Some(p));
                    } else {
                        self.leaves.push(buf, p);
                        self.census.occupancy_changed(depth, old, old + 1);
                    }
                    break;
                }
            }
        }
        self.len += 1;
    }

    /// Whether every point in the buffer equals `p` (so pushing `p`
    /// would leave a coincident pile). Equivalent to pushing `p` and
    /// asking [`LeafPool::all_coincident`]; empty buffers qualify.
    fn coincident_with(&self, buf: u32, p: &D::Point) -> bool {
        self.leaves.points(buf).iter().all(|q| q == p)
    }

    /// Fills an empty tree from an insertion-order point vector in one
    /// top-down pass, producing a tree bit-identical to inserting the
    /// points sequentially.
    ///
    /// Identity holds because insert-only construction is order
    /// independent: subtree populations only grow, so a block ends up
    /// internal iff its point count exceeds `capacity`, the points are
    /// not all coincident, and `max_depth` allows a split — a pure
    /// function of the point multiset. Within a leaf, sequential inserts
    /// keep points in insertion order (redistribution scans in order and
    /// appends), which the *stable* partition below reproduces. The
    /// payoff is the access pattern: instead of an O(depth) pointer walk
    /// per point, every level streams a contiguous range of points once,
    /// classifying against one precomputed splitter per node.
    ///
    /// # Panics
    ///
    /// Panics when the tree is not empty — in every build, not just
    /// debug. Bulk-filling a non-empty tree would double-count the
    /// census and silently corrupt every occupancy read downstream, so
    /// the precondition is enforced unconditionally (the public wrappers
    /// only call this on freshly constructed trees).
    pub(crate) fn bulk_fill(&mut self, points: Vec<D::Point>) {
        assert!(self.is_empty(), "bulk_fill requires an empty tree");
        if D::BRANCHING > MAX_BULK_BRANCHING {
            // Off the stack-array fast path (only reachable for PR trees
            // of dimension > 6); semantics are identical either way.
            for p in points {
                self.insert(p);
            }
            return;
        }
        let n = points.len();
        if n == 0 {
            return;
        }
        let mut pts = points;
        let mut scratch = vec![D::Point::default(); n];
        self.len = n;
        let region = self.region;
        self.bulk_rec(ROOT, region, 0, &mut pts, &mut scratch);
    }

    /// Recursive step of [`ArenaTree::bulk_fill`]: `pts` is the
    /// insertion-order run of points belonging to `block`, `scratch` an
    /// equally sized work area, and `slot` an empty leaf already counted
    /// by the census at `(depth, 0)`.
    fn bulk_rec(
        &mut self,
        slot: u32,
        block: D::Block,
        depth: u32,
        pts: &mut [D::Point],
        scratch: &mut [D::Point],
    ) {
        let n = pts.len();
        let make_leaf = n <= self.capacity || depth >= self.max_depth || {
            let first = pts[0];
            pts[1..].iter().all(|q| *q == first)
        };
        let Slot::Leaf(buf) = self.slots[slot as usize] else {
            unreachable!("bulk_rec target must be a leaf");
        };
        if make_leaf {
            for &p in pts.iter() {
                self.leaves.push(buf, p);
            }
            if n > 0 {
                self.census.occupancy_changed(depth, 0, n);
            }
            return;
        }
        self.leaves.free(buf);
        self.census.leaf_removed(depth, 0);
        let base = self.alloc_block();
        self.slots[slot as usize] = Slot::Internal(base);

        // Stable partition of the run into child runs: count, prefix-sum,
        // scatter through the parallel scratch, copy back. Two streaming
        // classify passes, no per-point midpoint math.
        let splitter = D::splitter(&block, depth);
        let mut offs = [0usize; MAX_BULK_BRANCHING + 1];
        for p in pts.iter() {
            offs[D::classify(&splitter, depth, p) + 1] += 1;
        }
        for i in 0..D::BRANCHING {
            offs[i + 1] += offs[i];
        }
        let mut cursors = offs;
        for &p in pts.iter() {
            let k = D::classify(&splitter, depth, &p);
            scratch[cursors[k]] = p;
            cursors[k] += 1;
        }
        pts.copy_from_slice(scratch);

        for _ in 0..D::BRANCHING {
            self.census.leaf_added(depth + 1, 0);
        }
        for i in 0..D::BRANCHING {
            let child_block = D::child_block(&block, depth, i);
            self.bulk_rec(
                base + i as u32,
                child_block,
                depth + 1,
                &mut pts[offs[i]..offs[i + 1]],
                &mut scratch[offs[i]..offs[i + 1]],
            );
        }
    }

    /// Converts an over-full leaf into an internal node, redistributing
    /// points and splitting children recursively while they overflow.
    /// Redistribution preserves point order and children split in index
    /// order, mirroring the boxed implementation exactly.
    fn split_leaf(&mut self, slot: u32, block: D::Block, depth: u32) {
        self.split_leaf_with(slot, block, depth, None);
    }

    /// [`ArenaTree::split_leaf`], with an optional in-flight point that
    /// joins the redistribution after the stored ones (the insert fast
    /// path hands over the point that triggered the split instead of
    /// pushing it into the doomed leaf first).
    fn split_leaf_with(&mut self, slot: u32, block: D::Block, depth: u32, extra: Option<D::Point>) {
        let Slot::Leaf(buf) = self.slots[slot as usize] else {
            unreachable!("split_leaf called on internal node");
        };
        let n = self.leaves.len(buf);
        // The scratch is recycled across splits; redistribution finishes
        // before the recursive child splits below, so handing it back
        // early lets the recursion reuse the same buffer.
        let mut taken = std::mem::take(&mut self.split_scratch);
        self.leaves.take_into(buf, &mut taken);
        self.census.leaf_removed(depth, n);

        let base = self.alloc_block();
        self.slots[slot as usize] = Slot::Internal(base);
        // One splitter for the whole redistribution: classifying a point
        // is then pure comparisons, with no per-point midpoint math.
        let splitter = D::splitter(&block, depth);
        for &p in taken.iter().chain(extra.iter()) {
            let i = D::classify(&splitter, depth, &p);
            let Slot::Leaf(child_buf) = self.slots[base as usize + i] else {
                unreachable!("fresh block slots are leaves");
            };
            self.leaves.push(child_buf, p);
        }
        taken.clear();
        self.split_scratch = taken;
        for i in 0..D::BRANCHING {
            let Slot::Leaf(child_buf) = self.slots[base as usize + i] else {
                unreachable!()
            };
            self.census
                .leaf_added(depth + 1, self.leaves.len(child_buf));
        }
        for i in 0..D::BRANCHING {
            let Slot::Leaf(child_buf) = self.slots[base as usize + i] else {
                unreachable!()
            };
            if self.leaves.len(child_buf) > self.capacity
                && depth + 1 < self.max_depth
                && !self.leaves.all_coincident(child_buf)
            {
                let child_block = D::child_block(&block, depth, i);
                self.split_leaf(base + i as u32, child_block, depth + 1);
            }
        }
    }

    /// Allocates `BRANCHING` contiguous child slots (reusing a freed
    /// block when possible), each initialized to a fresh empty leaf.
    fn alloc_block(&mut self) -> u32 {
        let base = self.alloc_block_bare();
        for i in 0..D::BRANCHING {
            let buf = self.leaves.alloc();
            self.slots[base as usize + i] = Slot::Leaf(buf);
        }
        base
    }

    /// Allocates `BRANCHING` contiguous child slots *without* leaf
    /// buffers — for the bottom-up builder, which knows before writing a
    /// child whether it will be a leaf or split again, and so skips the
    /// alloc-then-free churn `alloc_block` would pay on every internal
    /// child. Every slot of the block must be written before the tree is
    /// used; the placeholder is never a live node.
    #[inline]
    fn alloc_block_bare(&mut self) -> u32 {
        if let Some(b) = self.free_blocks.pop() {
            b
        } else {
            let b = self.slots.len() as u32;
            for _ in 0..D::BRANCHING {
                self.slots.push(Slot::Leaf(NO_SPILL));
            }
            b
        }
    }

    /// Removes one stored instance of `p` (already validated by the
    /// caller). Internal nodes left mergeable collapse on the unwind, so
    /// the structure equals a fresh build of the survivors.
    pub(crate) fn remove(&mut self, p: &D::Point) -> bool {
        let region = self.region;
        let removed = self.remove_rec(ROOT, region, 0, p);
        if removed {
            self.len -= 1;
        }
        removed
    }

    fn remove_rec(&mut self, slot: u32, block: D::Block, depth: u32, p: &D::Point) -> bool {
        match self.slots[slot as usize] {
            Slot::Leaf(buf) => match self.leaves.points(buf).iter().position(|q| q == p) {
                Some(idx) => {
                    let old = self.leaves.len(buf);
                    self.leaves.swap_remove(buf, idx);
                    self.census.occupancy_changed(depth, old, old - 1);
                    true
                }
                None => false,
            },
            Slot::Internal(base) => {
                let (i, child_block) = D::descend(&block, depth, p);
                let removed = self.remove_rec(base + i as u32, child_block, depth + 1, p);
                if removed {
                    self.try_collapse(slot, depth);
                }
                removed
            }
        }
    }

    /// Collapses an internal node whose children are all leaves holding
    /// at most `capacity` points combined — or an over-capacity pile of
    /// coincident points, mirroring insertion's exception.
    fn try_collapse(&mut self, slot: u32, depth: u32) {
        let Slot::Internal(base) = self.slots[slot as usize] else {
            return;
        };
        let mut total = 0usize;
        for i in 0..D::BRANCHING {
            match self.slots[base as usize + i] {
                Slot::Leaf(buf) => total += self.leaves.len(buf),
                Slot::Internal(_) => return,
            }
        }
        if total > self.capacity {
            let mut first: Option<D::Point> = None;
            for i in 0..D::BRANCHING {
                let Slot::Leaf(buf) = self.slots[base as usize + i] else {
                    unreachable!()
                };
                for q in self.leaves.points(buf) {
                    match first {
                        Some(f) => {
                            if *q != f {
                                return;
                            }
                        }
                        None => first = Some(*q),
                    }
                }
            }
        }
        // Merge in child order (within-child order preserved), matching
        // the boxed collapse's sequential `append`.
        let mut scratch = std::mem::take(&mut self.scratch);
        scratch.clear();
        for i in 0..D::BRANCHING {
            let Slot::Leaf(buf) = self.slots[base as usize + i] else {
                unreachable!()
            };
            scratch.extend_from_slice(self.leaves.points(buf));
            self.census.leaf_removed(depth + 1, self.leaves.len(buf));
            self.leaves.free(buf);
        }
        self.free_blocks.push(base);
        let merged = self.leaves.alloc();
        for &q in &scratch {
            self.leaves.push(merged, q);
        }
        self.slots[slot as usize] = Slot::Leaf(merged);
        self.census.leaf_added(depth, scratch.len());
        scratch.clear();
        self.scratch = scratch;
    }

    /// `true` when an exactly equal point is stored (caller handles the
    /// out-of-region fast path).
    pub(crate) fn contains(&self, p: &D::Point) -> bool {
        let mut slot = ROOT;
        let mut block = self.region;
        let mut depth = 0u32;
        loop {
            match self.slots[slot as usize] {
                Slot::Leaf(buf) => return self.leaves.points(buf).contains(p),
                Slot::Internal(base) => {
                    let (i, child) = D::descend(&block, depth, p);
                    block = child;
                    slot = base + i as u32;
                    depth += 1;
                }
            }
        }
    }

    /// Pre-order traversal by child index — physical slot ids and
    /// free-list state never affect visit order.
    pub(crate) fn for_each_leaf(&self, f: &mut impl FnMut(&D::Block, u32, &[D::Point])) {
        self.walk(ROOT, &self.region, 0, f);
    }

    fn walk(
        &self,
        slot: u32,
        block: &D::Block,
        depth: u32,
        f: &mut impl FnMut(&D::Block, u32, &[D::Point]),
    ) {
        match self.slots[slot as usize] {
            Slot::Leaf(buf) => f(block, depth, self.leaves.points(buf)),
            Slot::Internal(base) => {
                for i in 0..D::BRANCHING {
                    let child_block = D::child_block(block, depth, i);
                    self.walk(base + i as u32, &child_block, depth + 1, f);
                }
            }
        }
    }

    /// One record per leaf, in traversal order.
    pub(crate) fn leaf_records(&self) -> Vec<LeafRecord> {
        let mut out = Vec::new();
        self.for_each_leaf(&mut |_, depth, points| {
            out.push(LeafRecord {
                depth,
                occupancy: points.len(),
            })
        });
        out
    }

    /// Verifies structural invariants, pool accounting and — crucially —
    /// that the incremental census equals a census rebuilt from a full
    /// traversal. Panics with a description on violation.
    pub(crate) fn check_invariants(&self) {
        let mut total = 0usize;
        let mut records: Vec<LeafRecord> = Vec::new();
        self.for_each_leaf(&mut |block, depth, points| {
            total += points.len();
            records.push(LeafRecord {
                depth,
                occupancy: points.len(),
            });
            for p in points {
                assert!(
                    D::contains(block, p),
                    "point {p} stored in leaf {block:?} that does not contain it"
                );
            }
            if points.len() > self.capacity {
                let first = points[0];
                let coincident = points.iter().all(|q| *q == first);
                assert!(
                    depth >= self.max_depth || coincident,
                    "leaf at depth {depth} holds {} > capacity {} without cause",
                    points.len(),
                    self.capacity
                );
            }
            assert!(depth <= self.max_depth, "leaf deeper than max_depth");
        });
        assert_eq!(total, self.len, "stored point count mismatch");
        assert_eq!(
            self.census,
            OccupancyCensus::from_leaves(&records),
            "incremental census diverged from traversal census"
        );
        assert_eq!(
            self.leaves.live_bufs(),
            records.len(),
            "leaf buffer pool leak"
        );
        let internal = (records.len() - 1) / (D::BRANCHING - 1).max(1);
        assert_eq!(
            self.node_count(),
            records.len() + internal,
            "slot pool accounting diverged from tree shape"
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pt(x: f64, y: f64) -> Point2 {
        Point2::new(x, y)
    }

    #[test]
    fn free_list_reuses_blocks_and_bufs() {
        let mut t: ArenaTree<QuadDecomp> = ArenaTree::new(Rect::unit(), 1, 32);
        t.insert(pt(0.1, 0.1));
        t.insert(pt(0.9, 0.9));
        let slots_after_split = t.slots.len();
        assert!(t.remove(&pt(0.9, 0.9)));
        assert_eq!(t.free_blocks.len(), 1, "collapse frees the child block");
        t.insert(pt(0.9, 0.9));
        assert_eq!(
            t.slots.len(),
            slots_after_split,
            "re-split must reuse the freed block, not grow the pool"
        );
        assert!(t.free_blocks.is_empty());
        t.check_invariants();
    }

    #[test]
    fn max_depth_leaf_spills_past_its_slab_stride() {
        // max_depth 0: the root can never split, so distinct points pile
        // up past the stride (capacity + 1 = 3) and force a spill.
        let mut t: ArenaTree<QuadDecomp> = ArenaTree::new(Rect::unit(), 2, 0);
        let n = 7;
        for i in 0..n {
            t.insert(pt(0.001 * i as f64, 0.5));
        }
        assert_eq!(t.len(), n);
        assert_eq!(t.node_count(), 1);
        let SlotView::Leaf(points) = t.view(ROOT) else {
            panic!("root must still be a leaf")
        };
        assert_eq!(points.len(), n);
        // Order preserved across the spill boundary.
        for (i, p) in points.iter().enumerate() {
            assert_eq!(*p, pt(0.001 * i as f64, 0.5));
        }
        t.check_invariants();
    }

    #[test]
    fn coincident_pile_spills_and_its_vector_is_recycled_on_collapse() {
        let mut t: ArenaTree<QuadDecomp> = ArenaTree::new(Rect::unit(), 1, 32);
        // A pile of identical points exceeds the stride (2) without
        // splitting: the coincident exception spills the leaf.
        let pile = pt(0.9, 0.9);
        for _ in 0..6 {
            t.insert(pile);
        }
        t.insert(pt(0.1, 0.1)); // splits the root; the pile stays intact
        assert!(t.node_count() > 1);
        assert!(!t.leaves.spills.is_empty(), "pile must have spilled");
        for _ in 0..6 {
            assert!(t.remove(&pile));
        }
        // Survivor fits: cascaded collapse back to a single root leaf,
        // with the spill vector detached and parked for reuse.
        assert_eq!(t.node_count(), 1);
        assert_eq!(t.leaves.live_bufs(), 1);
        assert_eq!(t.leaves.spill_free.len(), t.leaves.spills.len());
        t.check_invariants();
    }

    #[test]
    fn census_reads_match_traversal_under_churn() {
        let mut t: ArenaTree<QuadDecomp> = ArenaTree::new(Rect::unit(), 2, 32);
        let pts: Vec<Point2> = (0..60)
            .map(|i| {
                pt(
                    (i as f64 * 0.618_033_9) % 1.0,
                    (i as f64 * 0.414_213_6) % 1.0,
                )
            })
            .collect();
        for &p in &pts {
            t.insert(p);
            t.check_invariants();
        }
        for &p in pts.iter().take(30) {
            assert!(t.remove(&p));
            t.check_invariants();
        }
        assert_eq!(t.census().leaf_count(), t.leaf_records().len());
    }

    #[test]
    fn descend_and_classify_agree_with_child_block() {
        // The fused descent and the precomputed-splitter classifier must
        // reproduce child_block and each other exactly, for every scheme
        // that branches on depth parity or not.
        let mut block = Rect::new(
            popan_geom::Interval::new(0.137, 1.731),
            popan_geom::Interval::new(-2.5, 0.875),
        );
        let p = pt(0.694_201_337, 0.333_333_3);
        for depth in 0..24 {
            let (i, child) = BinDecomp::descend(&block, depth, &p);
            assert_eq!(child, BinDecomp::child_block(&block, depth, i));
            let s = BinDecomp::splitter(&block, depth);
            assert_eq!(BinDecomp::classify(&s, depth, &p), i);
            assert!(BinDecomp::contains(&child, &p));
            block = child;
        }

        let mut block = Rect::unit();
        let p = pt(0.618_033_9, 0.414_213_6);
        for depth in 0..24 {
            let (i, child) = QuadDecomp::descend(&block, depth, &p);
            assert_eq!(child, QuadDecomp::child_block(&block, depth, i));
            let s = QuadDecomp::splitter(&block, depth);
            assert_eq!(QuadDecomp::classify(&s, depth, &p), i);
            block = child;
        }
    }

    #[test]
    fn bulk_fill_matches_sequential_insertion() {
        // Same multiset, same order: bulk construction must land on the
        // identical structure, leaf contents and census — including
        // coincident piles and max-depth truncation.
        let pile = pt(0.123, 0.456);
        let mut pts: Vec<Point2> = (0..80)
            .map(|i| {
                pt(
                    (i as f64 * 0.618_033_9) % 1.0,
                    (i as f64 * 0.414_213_6) % 1.0,
                )
            })
            .collect();
        pts.extend([pile; 5]);
        pts.push(pt(0.9999, 0.9999));
        for (capacity, max_depth) in [(1, 32), (4, 32), (2, 3), (8, 0)] {
            let mut seq: ArenaTree<QuadDecomp> = ArenaTree::new(Rect::unit(), capacity, max_depth);
            for &p in &pts {
                seq.insert(p);
            }
            let mut bulk: ArenaTree<QuadDecomp> = ArenaTree::new(Rect::unit(), capacity, max_depth);
            bulk.bulk_fill(pts.clone());
            bulk.check_invariants();
            assert_eq!(bulk.len(), seq.len());
            assert_eq!(bulk.node_count(), seq.node_count(), "m={capacity}");
            assert_eq!(bulk.census(), seq.census(), "m={capacity}");
            let mut seq_leaves = Vec::new();
            seq.for_each_leaf(&mut |_, d, ps| seq_leaves.push((d, ps.to_vec())));
            let mut bulk_leaves = Vec::new();
            bulk.for_each_leaf(&mut |_, d, ps| bulk_leaves.push((d, ps.to_vec())));
            assert_eq!(
                bulk_leaves, seq_leaves,
                "m={capacity} max_depth={max_depth}"
            );
        }
    }

    #[test]
    fn bulk_fill_of_empty_and_tiny_inputs() {
        let mut t: ArenaTree<QuadDecomp> = ArenaTree::new(Rect::unit(), 2, 32);
        t.bulk_fill(Vec::new());
        assert!(t.is_empty());
        t.check_invariants();
        t.insert(pt(0.5, 0.5));
        assert_eq!(t.len(), 1);

        let mut t: ArenaTree<BinDecomp> = ArenaTree::new(Rect::unit(), 1, 64);
        t.bulk_fill(vec![pt(0.1, 0.1), pt(0.2, 0.9)]);
        assert_eq!(t.node_count(), 5, "bintree alternating-axis bulk split");
        t.check_invariants();
    }

    #[test]
    fn bintree_decomp_alternates_axes() {
        let mut t: ArenaTree<BinDecomp> = ArenaTree::new(Rect::unit(), 1, 64);
        t.insert(pt(0.1, 0.1));
        t.insert(pt(0.2, 0.9)); // same x half: needs a second (y) split
        assert_eq!(t.node_count(), 5);
        t.check_invariants();
    }
}
