//! Morton-radix bottom-up bulk construction (DESIGN.md §15).
//!
//! The stable-partition bulk path ([`ArenaTree::bulk_fill`]) still
//! streams every point once per tree level, classifying against f64
//! midpoints. This module removes the per-level floating-point work
//! entirely for *grid-exact* regions
//! ([`popan_geom::morton::morton_grid_exact`]): quantize each point to
//! its Morton key once, LSD-radix-sort the keys (no comparison sort),
//! and then emit leaves and internal nodes in one linear walk over the
//! sorted order — every node's child boundaries are found by digit
//! search on the sorted keys, so no point is ever touched to descend,
//! classify, or scatter again.
//!
//! The sort moves one packed `u64` per point, never point coordinates:
//! the key is truncated to the levels three 11-bit LSD passes can
//! resolve and packed above the point's insertion index
//! (`(key >> drop) << key_shift | i`), so sorting the key bits is
//! automatically stable — ties order by the index bits, which start (and
//! therefore stay) ascending. All three pass histograms are accumulated
//! in the quantization loop itself (bucket counts are order-independent),
//! which also validates each point, so every scatter pass is a pure
//! read-and-bucket sweep and single-bucket passes are skipped outright.
//! Runs the truncated key cannot separate fall back to geometric
//! recursion (see below). One gather afterwards materializes the points
//! in sorted order, so leaf emission is a slab slice copy
//! (`LeafPool::alloc_filled` / `LinearBuilder::push_points`) instead of
//! per-point pushes.
//!
//! # Bit-identity
//!
//! The result is observationally identical to [`ArenaTree::bulk_fill`]
//! (and therefore to sequential insertion and the boxed oracle):
//!
//! * On a grid-exact region the Morton digit at level `d` *is* the
//!   geometric `>= mid` comparison, bit for bit, so digit partitioning
//!   and geometric classification agree on every point (proptested in
//!   `popan-geom` with no boundary exclusion). Quantization here
//!   multiplies by the region's exact reciprocal width instead of
//!   dividing: the certificate makes the width a power of two in a safe
//!   exponent range, so the reciprocal is exact and both operations
//!   round the same exact value — identical bits in every case.
//! * The split decision at every node — `n > capacity`, `depth <
//!   max_depth`, not all points coincident — is a pure function of the
//!   run, evaluated identically here and in `bulk_fill`.
//! * The LSD passes are stable, so equal keys keep insertion order;
//!   leaves whose runs mix distinct keys are re-ordered by original
//!   index at emission. Either way every leaf holds its points in
//!   insertion order, like the reference trees.
//! * Runs whose truncated keys are entirely equal — points closer than
//!   one quantum of the resolved levels, or piles the truncation simply
//!   cannot separate — fall back to the geometric `bulk_rec` for that
//!   subtree; non-exact regions fall back to `bulk_fill` wholesale.
//!   Both fallbacks are the reference semantics, so bit-identity never
//!   depends on the certificate or the truncation depth — only speed
//!   does.
//!
//! The occupancy census is not maintained per transition on this path:
//! final leaves are tallied into a local `(depth, occupancy)` table and
//! applied to the [`OccupancyCensus`] in one pass at the end — counter
//! arithmetic is commutative, so the final state equals `bulk_fill`'s
//! exactly (the equivalence suites compare it directly).
//!
//! The same recursion drives [`LinearQuadtree::from_points_direct`],
//! which freezes straight into the linear form: children are emitted in
//! digit order, which *is* ascending Morton order, so the leaf slab
//! comes out pre-sorted and the arena is skipped entirely. Leaf rects
//! there are derived from the Morton prefix in closed form (exact on a
//! grid-exact region, see [`leaf_block`]) instead of threading halved
//! rects through the recursion.

use super::{ArenaTree, BinDecomp, Decomposition, QuadDecomp, Slot, MAX_BULK_BRANCHING, ROOT};
use crate::linear_quadtree::{FreezeError, LinearBuilder, LinearQuadtree};
use crate::node_stats::OccupancyCensus;
use crate::pr_quadtree::TreeError;
use popan_geom::morton;
use popan_geom::{Point2, Rect};

/// A regular decomposition whose descent is mirrored by Morton key
/// digits: level `d`'s child index is `DIGIT_BITS` bits of the key,
/// most significant first. Only meaningful on grid-exact regions —
/// callers gate on [`morton::morton_grid_exact`] and fall back to the
/// geometric bulk path otherwise.
pub(crate) trait MortonDecomp: Decomposition<Point = Point2, Block = Rect> {
    /// Bits per level in the key (`log2(BRANCHING)`).
    const DIGIT_BITS: u32;
    /// Number of levels the key resolves; runs still unseparated at
    /// this depth fall back to geometric recursion.
    const KEY_LEVELS: u32;
    /// The sort key of `p` over the quantizer's region.
    fn key_of(q: &Quantizer, p: &Point2) -> u64;
}

impl MortonDecomp for QuadDecomp {
    const DIGIT_BITS: u32 = 2;
    const KEY_LEVELS: u32 = morton::MORTON_BITS;

    #[inline]
    fn key_of(q: &Quantizer, p: &Point2) -> u64 {
        // Standard interleave: level d's digit is (y-bit, x-bit), which
        // is exactly `classify`'s `y*2 + x` child index.
        let (qx, qy) = q.cell(p);
        morton::morton2(qx, qy)
    }
}

impl MortonDecomp for BinDecomp {
    const DIGIT_BITS: u32 = 1;
    const KEY_LEVELS: u32 = 2 * morton::MORTON_BITS;

    #[inline]
    fn key_of(q: &Quantizer, p: &Point2) -> u64 {
        // Transposed interleave (x in the odd/high bits): the bintree
        // splits x at even depths, so the key's bit sequence from the
        // top must be x₃₀, y₃₀, x₂₉, y₂₉, …
        let (qx, qy) = q.cell(p);
        morton::morton2(qy, qx)
    }
}

/// Division-free quantization over a grid-exact region, bit-identical
/// to [`morton::morton_of_point`]: the certificate guarantees each axis
/// length is a power of two with |exponent| ≤ 512, so its reciprocal is
/// exactly representable and `v * (1/w)` rounds the same exact value
/// `v / w` rounds — identical results in every case, subnormals
/// included, while replacing two division latencies per point with
/// multiplies.
pub(crate) struct Quantizer {
    lo_x: f64,
    lo_y: f64,
    inv_w: f64,
    inv_h: f64,
}

impl Quantizer {
    fn new(region: &Rect) -> Quantizer {
        debug_assert!(morton::morton_grid_exact(region));
        Quantizer {
            lo_x: region.x().lo(),
            lo_y: region.y().lo(),
            inv_w: 1.0 / region.width(),
            inv_h: 1.0 / region.height(),
        }
    }

    /// The quantized cell of `p`, mirroring [`morton::morton_of_point`]
    /// operation for operation (subtract, scale, floor, clamp).
    #[inline]
    fn cell(&self, p: &Point2) -> (u32, u32) {
        let scale = (1u64 << morton::MORTON_BITS) as f64;
        let fx = (p.x - self.lo_x) * self.inv_w;
        let fy = (p.y - self.lo_y) * self.inv_h;
        let qx = ((fx * scale) as u32).min((1 << morton::MORTON_BITS) - 1);
        let qy = ((fy * scale) as u32).min((1 << morton::MORTON_BITS) - 1);
        (qx, qy)
    }
}

/// Index of the first element of `keys` (sorted; all bits above
/// `shift + DIGIT_BITS` uniform across the run) whose digit at `shift`
/// exceeds `c` — the child boundary search. Works on packed elements
/// too: the index bits sit below every digit shift. Tiny runs scan
/// linearly; larger ones binary-search.
#[inline]
fn digit_end(keys: &[u64], shift: u32, mask: u64, c: u64) -> usize {
    if keys.len() <= 16 {
        let mut i = 0;
        while i < keys.len() && (keys[i] >> shift) & mask <= c {
            i += 1;
        }
        i
    } else {
        keys.partition_point(|&k| (k >> shift) & mask <= c)
    }
}

/// Bits consumed per LSD pass. The narrow radix keeps the count
/// tables in L1 and the scatter spread over ~2048 destination streams,
/// which the cache absorbs; wide (16-bit) passes thrash on the
/// 65536-way random scatter. Three passes cover the
/// truncated key; the index bits below it are never sorted — the
/// array starts in index order and stable key passes preserve it.
const PASS_BITS: usize = 11;
const PASS_RADIX: usize = 1 << PASS_BITS;

/// The sorted key order plus the points, both sorted and original.
///
/// The LSD sort moves a single `u64` per point — the key's top
/// `trunc_levels` digits packed above the insertion index — and a
/// gather afterwards materializes `spts` (points in sorted order) so
/// every leaf's points are a contiguous slice. `points` keeps the
/// caller's insertion order for the rare mixed-key leaf that must be
/// restored through the index bits.
struct Sorted {
    /// Number of levels the sorted (truncated) keys resolve — runs
    /// still unseparated at this depth go to the geometric reference
    /// recursion, exactly like sub-quantum runs. Sixteen quadtree
    /// levels at the bench scale: a run needing a deeper split keeps
    /// more than `capacity` points inside a 2^-16-sided cell —
    /// implausible outside adversarial clusters.
    trunc_levels: u32,
    /// Bit position of the lowest key bit in each packed element; the
    /// bits below it hold the insertion index.
    key_shift: u32,
    /// Mask selecting the index bits of a packed element.
    idx_mask: u64,
    /// The packed `(truncated key << key_shift) | index` elements,
    /// ascending — the walk reads digits and boundaries straight off
    /// this array. Equal keys keep ascending index (insertion order).
    a: Vec<u64>,
    /// The points in sorted order (`spts[i] == points[a[i] & idx_mask]`).
    spts: Vec<Point2>,
    /// The points, exactly as submitted.
    points: Vec<Point2>,
    /// Reusable buffers for per-leaf insertion-order restoration.
    perm: Vec<u32>,
    tmp: Vec<Point2>,
    // Reusable buffers for the geometric fallback on sub-quantum runs.
    fb_pts: Vec<Point2>,
    fb_scratch: Vec<Point2>,
}

impl Sorted {
    /// Quantizes and LSD-radix-sorts the points by Morton key.
    ///
    /// Each element is one packed `u64`: the top `key_bits` hold the
    /// key's leading digits, the low bits the insertion index. Sorting
    /// the packed value by its key bits is then automatically stable —
    /// ties keep ascending index — and the scatter passes move half
    /// the bytes a `(u64, u32)` pair would. The index bits are never
    /// sorted: the array starts in index order, and stable key passes
    /// preserve it within equal keys.
    ///
    /// Every pass's histogram is accumulated during the quantization
    /// loop (bucket counts are order-independent), so no separate
    /// counting sweep touches the data and each scatter pass is pure:
    /// one sequential read, one bucketed write. A pass whose digit is
    /// uniform across every element — common when points cluster low
    /// in the region — is the identity permutation (stability) and is
    /// skipped.
    /// Validation (finite, in-region) is fused into the same loop — the
    /// bulk path never takes a separate validation pass over the input.
    /// Errors surface before any output structure exists, in the same
    /// first-offender order as `validate_points`.
    fn build<D: MortonDecomp>(region: &Rect, points: Vec<Point2>) -> Result<Sorted, TreeError> {
        let n = points.len();
        let q = Quantizer::new(region);
        let idx_bits = (usize::BITS - n.saturating_sub(1).leading_zeros()).max(1);
        let full_bits = D::DIGIT_BITS * D::KEY_LEVELS;
        // Resolve at most three passes' worth of key digits. Deeper
        // resolution buys nothing at realistic densities — a run still
        // unsplit 16 quadtree levels down needs more than `capacity`
        // points inside a 2^-16-sided cell — and every extra pass is a
        // full rewrite of the array. The rare too-deep run takes the
        // geometric reference recursion, same as sub-quantum runs.
        let trunc_levels = ((64 - idx_bits) / D::DIGIT_BITS)
            .min(D::KEY_LEVELS)
            .min(3 * PASS_BITS as u32 / D::DIGIT_BITS);
        let key_bits = trunc_levels * D::DIGIT_BITS;
        let key_shift = 64 - key_bits;
        let drop = full_bits - key_bits;
        debug_assert_eq!(key_bits.div_ceil(PASS_BITS as u32), 3);
        let mut a: Vec<u64> = Vec::with_capacity(n);
        // All three pass histograms ride along with the quantization
        // loop (bucket counts are order-independent), so each scatter
        // pass below touches nothing but the array it permutes.
        let mut hist = vec![0u32; 3 * PASS_RADIX];
        {
            let (h0, rest) = hist.split_at_mut(PASS_RADIX);
            let (h1, h2) = rest.split_at_mut(PASS_RADIX);
            for (i, p) in points.iter().enumerate() {
                if !p.is_finite() {
                    return Err(TreeError::NonFinitePoint);
                }
                if !region.contains(p) {
                    return Err(TreeError::OutOfRegion { point: *p });
                }
                let v = ((D::key_of(&q, p) >> drop) << key_shift) | i as u64;
                let x = (v >> key_shift) as usize;
                h0[x & (PASS_RADIX - 1)] += 1;
                h1[(x >> PASS_BITS) & (PASS_RADIX - 1)] += 1;
                h2[(x >> (2 * PASS_BITS)) & (PASS_RADIX - 1)] += 1;
                a.push(v);
            }
        }
        let mut b: Vec<u64> = vec![0; n];
        for p in 0..3usize {
            let shift = key_shift + (PASS_BITS * p) as u32;
            let h = &mut hist[p * PASS_RADIX..(p + 1) * PASS_RADIX];
            // Exclusive prefix sum, doubling as bucket offsets below.
            let mut sum = 0u32;
            let mut largest = 0u32;
            for c in h.iter_mut() {
                let count = *c;
                *c = sum;
                sum += count;
                largest = largest.max(count);
            }
            // A single-bucket pass is the identity permutation
            // (stability) — skip the rewrite.
            if largest as usize == n {
                continue;
            }
            for &v in &a {
                let d = (v >> shift) as usize & (PASS_RADIX - 1);
                let dst = h[d] as usize;
                h[d] += 1;
                b[dst] = v;
            }
            std::mem::swap(&mut a, &mut b);
        }
        let idx_mask = (1u64 << key_shift) - 1;
        let mut spts = Vec::with_capacity(n);
        for &v in &a {
            spts.push(points[(v & idx_mask) as usize]);
        }
        Ok(Sorted {
            trunc_levels,
            key_shift,
            idx_mask,
            a,
            spts,
            points,
            perm: Vec::new(),
            tmp: Vec::new(),
            fb_pts: Vec::new(),
            fb_scratch: Vec::new(),
        })
    }

    /// Whether every point of the run equals the first — the trees'
    /// coincident-pile exception. Early-exits on the first mismatch;
    /// callers gate on key uniformity first (equal points have equal
    /// keys), so this O(n) scan only runs on sub-quantum runs.
    fn coincident(&self, lo: usize, hi: usize) -> bool {
        let p0 = self.spts[lo];
        self.spts[lo + 1..hi].iter().all(|q| *q == p0)
    }

    /// The run's points in insertion order, as one contiguous slice.
    /// Equal-key runs are already in insertion order (the LSD passes
    /// are stable) and borrow straight from `spts`; a run mixing
    /// distinct keys was reordered by the sort and is re-gathered
    /// through its original indices.
    #[inline]
    fn run_slice(&mut self, lo: usize, hi: usize) -> &[Point2] {
        if hi - lo >= 2 && (self.a[lo] ^ self.a[hi - 1]) >> self.key_shift != 0 {
            self.perm.clear();
            self.perm
                .extend(self.a[lo..hi].iter().map(|&v| (v & self.idx_mask) as u32));
            self.perm.sort_unstable();
            self.tmp.clear();
            self.tmp
                .extend(self.perm.iter().map(|&j| self.points[j as usize]));
            &self.tmp
        } else {
            &self.spts[lo..hi]
        }
    }
}

/// Local `(depth, occupancy)` leaf tally, applied to the census in one
/// pass after emission: one bulk [`OccupancyCensus::leaves_added`] per
/// occupied class instead of two counter-structure updates per leaf.
///
/// The common classes — occupancy at most `capacity`, depth within the
/// key resolution — live in one flat depth-major array, so the per-leaf
/// hot path is a single indexed increment. Oversized leaves (coincident
/// piles, `max_depth` spills) and depths beyond the flat rows go to the
/// `overflow` list, which `apply` replays one entry at a time.
struct CensusTally {
    stride: usize,
    flat: Vec<u64>,
    overflow: Vec<(u32, usize)>,
}

/// Emission depth never exceeds the key resolution (33 bintree levels),
/// so the flat tally carries a fixed number of rows.
const TALLY_DEPTHS: usize = 35;

impl CensusTally {
    fn new(capacity: usize) -> CensusTally {
        // Oversized capacities would make the flat table itself the
        // cost; beyond this the overflow path absorbs the (then few)
        // leaves.
        let stride = (capacity + 2).min(130);
        CensusTally {
            stride,
            flat: vec![0; TALLY_DEPTHS * stride],
            overflow: Vec::new(),
        }
    }

    #[inline]
    fn leaf(&mut self, depth: u32, occupancy: usize) {
        let slot = depth as usize * self.stride + occupancy;
        if occupancy < self.stride && slot < self.flat.len() {
            self.flat[slot] += 1;
        } else {
            self.overflow.push((depth, occupancy));
        }
    }

    fn apply(&self, census: &mut OccupancyCensus) {
        for (d, row) in self.flat.chunks_exact(self.stride).enumerate() {
            for (occ, &count) in row.iter().enumerate() {
                if count > 0 {
                    census.leaves_added(d as u32, occ, count);
                }
            }
        }
        for &(depth, occ) in &self.overflow {
            census.leaves_added(depth, occ, 1);
        }
    }
}

/// What the PR split rule says about a run.
enum Action {
    /// Emit a leaf: at/under capacity, at `max_depth`, or coincident.
    Leaf,
    /// Keys are uniform but points differ — the run separates below
    /// the key resolution; geometric recursion takes the subtree.
    Fallback,
    /// Split into children by the next key digit.
    Split,
}

impl<D: MortonDecomp> ArenaTree<D> {
    /// Bottom-up Morton bulk fill: observationally identical to
    /// [`ArenaTree::bulk_fill`] (which is itself bit-identical to
    /// sequential insertion), reached through a radix build that never
    /// descends per point. Non-grid-exact regions fall back to
    /// `bulk_fill` wholesale.
    ///
    /// Point validation (finite, in-region) is fused into the
    /// quantization pass; on error the tree is left untouched (and
    /// still empty).
    ///
    /// # Panics
    ///
    /// Panics when the tree is not empty, in every build — same
    /// unconditional precondition as `bulk_fill`.
    pub(crate) fn bulk_fill_bottomup(&mut self, points: Vec<Point2>) -> Result<(), TreeError> {
        assert!(self.is_empty(), "bulk_fill_bottomup requires an empty tree");
        let region = self.region;
        if D::BRANCHING > MAX_BULK_BRANCHING
            || points.len() >= u32::MAX as usize
            || !morton::morton_grid_exact(&region)
        {
            for p in &points {
                if !p.is_finite() {
                    return Err(TreeError::NonFinitePoint);
                }
                if !region.contains(p) {
                    return Err(TreeError::OutOfRegion { point: *p });
                }
            }
            self.bulk_fill(points);
            return Ok(());
        }
        let n = points.len();
        if n == 0 {
            return Ok(());
        }
        let mut s = Sorted::build::<D>(&region, points)?;
        self.len = n;
        // The root differs from every other node: `ArenaTree::new` made
        // it a live, census-counted empty leaf. Splitting it retires
        // that leaf exactly as `bulk_rec`'s split would; the subtree
        // below is then emitted through the churn-free path.
        match self.decide(&s, 0, 0, n) {
            Action::Leaf => {
                let Slot::Leaf(buf) = self.slots[ROOT as usize] else {
                    unreachable!("fresh tree root is a leaf");
                };
                for &p in s.run_slice(0, n) {
                    self.leaves.push(buf, p);
                }
                self.census.occupancy_changed(0, 0, n);
            }
            Action::Fallback => self.emit_fallback(&mut s, ROOT, region, 0, 0, n),
            Action::Split => {
                let Slot::Leaf(buf) = self.slots[ROOT as usize] else {
                    unreachable!("fresh tree root is a leaf");
                };
                self.leaves.free(buf);
                self.census.leaf_removed(0, 0);
                // Growth hints; ~3 leaves per capacity-full of points
                // comfortably covers the sparse-quadrant empties.
                let est_leaves = (n / self.capacity).saturating_mul(3).max(64);
                self.leaves.reserve(est_leaves);
                self.slots.reserve(est_leaves + est_leaves / 2);
                let mut tally = CensusTally::new(self.capacity);
                self.fill_split(&mut s, &mut tally, ROOT, 0, 0, 0, n);
                tally.apply(&mut self.census);
            }
        }
        Ok(())
    }

    /// The split rule on a run — the same decision `bulk_rec` makes,
    /// with the coincident check pre-filtered by key uniformity (equal
    /// points have equal keys). The run is sorted, so uniformity is the
    /// O(1) first-equals-last comparison.
    #[inline]
    fn decide(&self, s: &Sorted, depth: u32, lo: usize, hi: usize) -> Action {
        if hi - lo <= self.capacity || depth >= self.max_depth {
            return Action::Leaf;
        }
        if (s.a[lo] ^ s.a[hi - 1]) >> s.key_shift != 0 {
            return Action::Split;
        }
        if s.coincident(lo, hi) {
            Action::Leaf
        } else {
            Action::Fallback
        }
    }

    /// Reconstructs the geometric block of the node addressed by the
    /// top-down digit `prefix` at `depth`. Only the (rare) sub-quantum
    /// fallback needs a block, so the hot path carries the integer
    /// prefix instead of threading `Rect` math through every node.
    fn block_of(&self, prefix: u64, depth: u32) -> Rect {
        let mut block = self.region;
        for d in 0..depth {
            let shift = D::DIGIT_BITS * (depth - 1 - d);
            let c = ((prefix >> shift) & ((1u64 << D::DIGIT_BITS) - 1)) as usize;
            block = D::child_block(&block, d, c);
        }
        block
    }

    /// Writes `slot` as a fresh leaf holding run `[lo, hi)`. The leaf
    /// buffer is allocated here — never provisionally for a child that
    /// turns out to split — and filled with one slice copy; the leaf
    /// lands in the tally as its final `(depth, occupancy)` class.
    #[inline]
    fn make_leaf(
        &mut self,
        s: &mut Sorted,
        tally: &mut CensusTally,
        slot: u32,
        depth: u32,
        lo: usize,
        hi: usize,
    ) {
        let buf = self.leaves.alloc_filled(s.run_slice(lo, hi));
        self.slots[slot as usize] = Slot::Leaf(buf);
        tally.leaf(depth, hi - lo);
    }

    /// Writes `slot` as a fresh empty leaf and hands its sub-quantum
    /// run (one below the key resolution) to the geometric bulk
    /// recursion — the reference semantics. Census updates here are
    /// direct (not tallied): `bulk_rec` maintains the census itself.
    fn make_fallback(
        &mut self,
        s: &mut Sorted,
        slot: u32,
        prefix: u64,
        depth: u32,
        lo: usize,
        hi: usize,
    ) {
        let buf = self.leaves.alloc();
        self.slots[slot as usize] = Slot::Leaf(buf);
        self.census.leaf_added(depth, 0);
        let block = self.block_of(prefix, depth);
        self.emit_fallback(s, slot, block, depth, lo, hi);
    }

    /// Geometric bulk recursion over run `[lo, hi)`, entered at a live
    /// empty leaf `slot`. The run's keys are uniform, so the stable
    /// sort left it in insertion order — gathered as-is.
    fn emit_fallback(
        &mut self,
        s: &mut Sorted,
        slot: u32,
        block: Rect,
        depth: u32,
        lo: usize,
        hi: usize,
    ) {
        let mut pts = std::mem::take(&mut s.fb_pts);
        let mut scratch = std::mem::take(&mut s.fb_scratch);
        pts.clear();
        pts.extend_from_slice(&s.spts[lo..hi]);
        scratch.clear();
        scratch.resize(hi - lo, Point2::default());
        self.bulk_rec(slot, block, depth, &mut pts, &mut scratch);
        s.fb_pts = pts;
        s.fb_scratch = scratch;
    }

    /// Writes `slot` as an internal node and fills its children from
    /// the run's digit boundaries on the sorted keys. Children are
    /// written directly as whatever `decide` says they are — no empty
    /// leaves are ever allocated for nodes that split, so the per-node
    /// cost is one bare slot-block plus the boundary searches.
    #[allow(clippy::too_many_arguments)]
    fn fill_split(
        &mut self,
        s: &mut Sorted,
        tally: &mut CensusTally,
        slot: u32,
        prefix: u64,
        depth: u32,
        lo: usize,
        hi: usize,
    ) {
        let base = self.alloc_block_bare();
        self.slots[slot as usize] = Slot::Internal(base);
        let shift = 64 - D::DIGIT_BITS * (depth + 1);
        let mask = (1u64 << D::DIGIT_BITS) - 1;
        // Child boundaries: most runs this deep are small, and one
        // digit-counting sweep (a single load per element) beats four
        // boundary searches; large runs binary-search per child.
        debug_assert!(D::BRANCHING <= 4);
        let mut counts = [0usize; 4];
        let small = hi - lo <= 64;
        if small {
            for &v in &s.a[lo..hi] {
                counts[((v >> shift) & mask) as usize] += 1;
            }
        }
        let mut child_lo = lo;
        for (c, &count) in counts.iter().enumerate().take(D::BRANCHING) {
            let child_hi = if c + 1 == D::BRANCHING {
                hi
            } else if small {
                child_lo + count
            } else {
                child_lo + digit_end(&s.a[child_lo..hi], shift, mask, c as u64)
            };
            self.fill_run(
                s,
                tally,
                base + c as u32,
                (prefix << D::DIGIT_BITS) | c as u64,
                depth + 1,
                child_lo,
                child_hi,
            );
            child_lo = child_hi;
        }
    }

    /// Fills the not-yet-written `slot` with the subtree of run
    /// `[lo, hi)`.
    #[allow(clippy::too_many_arguments)]
    fn fill_run(
        &mut self,
        s: &mut Sorted,
        tally: &mut CensusTally,
        slot: u32,
        prefix: u64,
        depth: u32,
        lo: usize,
        hi: usize,
    ) {
        match self.decide(s, depth, lo, hi) {
            Action::Leaf => self.make_leaf(s, tally, slot, depth, lo, hi),
            Action::Fallback => self.make_fallback(s, slot, prefix, depth, lo, hi),
            Action::Split => self.fill_split(s, tally, slot, prefix, depth, lo, hi),
        }
    }
}

/// The block of the quadtree node with locational `prefix` at `depth`,
/// in closed form: decode the prefix to cell coordinates and scale by
/// the exact per-axis cell size. On a grid-exact region (origin `0.0`,
/// power-of-two sides) every value here is exact — the cell size
/// `w / 2^depth` is an exponent shift and the cell coordinates have at
/// most 31 significant bits, so each product is exact — and every bound
/// of the recursive halving `child_block` performs is the same exact
/// dyadic value, so the two constructions agree bit for bit (asserted
/// by `leaf_block_matches_child_block_recursion_bit_for_bit`).
#[cfg_attr(not(test), allow(dead_code))]
fn leaf_block(region: &Rect, prefix: u64, depth: u32) -> Rect {
    debug_assert!(depth <= morton::MORTON_BITS);
    let (cx, cy) = morton::demorton2(prefix);
    let (cx, cy) = (f64::from(cx), f64::from(cy));
    let scale = (1u64 << depth) as f64;
    let sx = region.width() / scale;
    let sy = region.height() / scale;
    Rect::from_bounds(cx * sx, cy * sy, (cx + 1.0) * sx, (cy + 1.0) * sy)
}

/// Errors from [`LinearQuadtree::from_points_direct`].
#[derive(Debug, Clone, PartialEq)]
pub enum DirectFreezeError {
    /// Input validation failed (bad capacity, out-of-region or
    /// non-finite point) — the same errors `PrQuadtree::build` reports.
    Tree(TreeError),
    /// The point set forces leaves below the Morton resolution; the
    /// depth reported is the deepest leaf the equivalent pointer tree
    /// would hold, matching `LinearQuadtree::from_tree`.
    Freeze(FreezeError),
}

impl std::fmt::Display for DirectFreezeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            DirectFreezeError::Tree(e) => write!(f, "validating points: {e}"),
            DirectFreezeError::Freeze(e) => write!(f, "freezing: {e}"),
        }
    }
}

impl std::error::Error for DirectFreezeError {}

/// Direct-freeze context: the sorted order plus the linear accumulator
/// and the worst too-deep leaf depth seen (emission keeps going so the
/// reported depth matches `from_tree`'s max over every offending leaf).
struct Freeze {
    s: Sorted,
    builder: LinearBuilder,
    capacity: usize,
    max_depth: u32,
    too_deep: Option<u32>,
    /// Per-depth cell sizes (`w / 2^d`, `h / 2^d`), precomputed by
    /// successive exact halving so [`Freeze::block`] needs no division.
    step: [(f64, f64); (morton::MORTON_BITS + 1) as usize],
}

impl Freeze {
    /// The block of the node with locational `prefix` at `depth` — the
    /// closed form of [`leaf_block`], with the per-depth cell size read
    /// from the precomputed table.
    fn block(&self, prefix: u64, depth: u32) -> Rect {
        let (cx, cy) = morton::demorton2(prefix);
        let (cx, cy) = (f64::from(cx), f64::from(cy));
        let (sx, sy) = self.step[depth as usize];
        Rect::from_bounds(cx * sx, cy * sy, (cx + 1.0) * sx, (cy + 1.0) * sy)
    }
}

/// The per-depth cell-size table for `region`: exact successive
/// halvings of the (power-of-two) side lengths.
fn step_table(region: &Rect) -> [(f64, f64); (morton::MORTON_BITS + 1) as usize] {
    let mut step = [(0.0, 0.0); (morton::MORTON_BITS + 1) as usize];
    let (mut sx, mut sy) = (region.width(), region.height());
    for s in step.iter_mut() {
        *s = (sx, sy);
        sx *= 0.5;
        sy *= 0.5;
    }
    step
}

impl LinearQuadtree {
    /// Freezes a point multiset straight into linear form — the arena
    /// is skipped entirely. Bit-identical to
    /// `PrQuadtree::build` + [`LinearQuadtree::from_tree`]
    /// (the differential suites pin the slabs and digests), but built
    /// bottom-up: one Morton quantization pass, one stable LSD radix
    /// sort, and leaves emitted already in ascending code order, so the
    /// `from_tree` sort disappears too. Non-grid-exact regions take the
    /// pointer-tree route internally.
    pub fn from_points_direct(
        region: Rect,
        capacity: usize,
        max_depth: u32,
        points: Vec<Point2>,
    ) -> Result<LinearQuadtree, DirectFreezeError> {
        if capacity == 0 {
            return Err(DirectFreezeError::Tree(TreeError::InvalidParameter(
                "node capacity must be at least 1".into(),
            )));
        }
        // Validation is fused into `Sorted::build`'s quantization pass
        // on the direct path; the pointer-tree fallback validates
        // inside `build_with_max_depth`. Same checks, same order.
        if points.len() >= u32::MAX as usize || !morton::morton_grid_exact(&region) {
            let tree = crate::pr_quadtree::PrQuadtree::build_with_max_depth(
                region, capacity, max_depth, points,
            )
            .map_err(DirectFreezeError::Tree)?;
            return LinearQuadtree::from_tree(&tree).map_err(DirectFreezeError::Freeze);
        }
        let n = points.len();
        let mut fz = Freeze {
            s: Sorted::build::<QuadDecomp>(&region, points).map_err(DirectFreezeError::Tree)?,
            builder: LinearBuilder::default(),
            capacity,
            max_depth,
            too_deep: None,
            step: step_table(&region),
        };
        fz.builder
            .reserve((n / capacity).saturating_mul(3).max(64), n);
        fz.emit(0, 0, 0, n);
        if let Some(depth) = fz.too_deep {
            return Err(DirectFreezeError::Freeze(
                FreezeError::DepthExceedsMortonBits {
                    depth,
                    max: morton::MORTON_BITS,
                },
            ));
        }
        Ok(LinearQuadtree::assemble(fz.builder, region))
    }
}

impl Freeze {
    /// Emits the subtree of run `[lo, hi)` at `depth` with Morton
    /// `prefix` (the node's `2·depth`-bit locational prefix). Children
    /// are visited in digit order — ascending Morton order — so the
    /// leaf slab is born sorted.
    fn emit(&mut self, depth: u32, prefix: u64, lo: usize, hi: usize) {
        let n = hi - lo;
        let leaf = n <= self.capacity
            || depth >= self.max_depth
            || (n > 0
                && (self.s.a[lo] ^ self.s.a[hi - 1]) >> self.s.key_shift == 0
                && self.s.coincident(lo, hi));
        if leaf {
            self.emit_leaf(depth, prefix, lo, hi);
            return;
        }
        if depth == self.s.trunc_levels {
            // The run still splits past the sorted key resolution —
            // its truncated keys are all equal (it shares every
            // resolved digit), so it is in insertion order. Hand the
            // subtree to the geometric reference recursion, like the
            // arena path's sub-quantum fallback.
            let block = self.block(prefix, depth);
            let mut pts = std::mem::take(&mut self.s.fb_pts);
            pts.clear();
            pts.extend_from_slice(&self.s.spts[lo..hi]);
            self.emit_geometric(depth, prefix, block, &pts);
            self.s.fb_pts = pts;
            return;
        }
        let shift = 64 - 2 * (depth + 1);
        let mut counts = [0usize; 4];
        let small = hi - lo <= 64;
        if small {
            for &v in &self.s.a[lo..hi] {
                counts[((v >> shift) & 0b11) as usize] += 1;
            }
        }
        let mut child_lo = lo;
        for c in 0..4u64 {
            let child_hi = if c == 3 {
                hi
            } else if small {
                child_lo + counts[c as usize]
            } else {
                child_lo + digit_end(&self.s.a[child_lo..hi], shift, 0b11, c)
            };
            self.emit(depth + 1, (prefix << 2) | c, child_lo, child_hi);
            child_lo = child_hi;
        }
    }

    /// Emits one leaf, in insertion order (see [`Sorted::run_slice`]).
    fn emit_leaf(&mut self, depth: u32, prefix: u64, lo: usize, hi: usize) {
        let code_lo = prefix << (2 * (morton::MORTON_BITS - depth));
        self.builder
            .begin_leaf(code_lo, depth, self.block(prefix, depth));
        let Freeze { s, builder, .. } = self;
        builder.push_points(s.run_slice(lo, hi));
    }

    /// Geometric reference recursion for a run past the sorted key
    /// resolution: stable 4-way partition per level (so leaves stay in
    /// insertion order), children visited in Morton order, blocks
    /// derived by the same halving `from_tree` performs. Leaves that
    /// split past the Morton code floor are recorded as too deep, like
    /// `from_tree`'s error path.
    fn emit_geometric(&mut self, depth: u32, prefix: u64, block: Rect, pts: &[Point2]) {
        let n = pts.len();
        let coincident = n > 0 && pts[1..].iter().all(|q| *q == pts[0]);
        if n <= self.capacity || depth >= self.max_depth || coincident {
            let code_lo = prefix << (2 * (morton::MORTON_BITS - depth));
            self.builder.begin_leaf(code_lo, depth, block);
            self.builder.push_points(pts);
            return;
        }
        if depth == morton::MORTON_BITS {
            let d = would_be_depth(block, depth, pts, self.capacity, self.max_depth);
            self.too_deep = Some(self.too_deep.map_or(d, |cur| cur.max(d)));
            return;
        }
        let mut parts: [Vec<Point2>; 4] = Default::default();
        let splitter = QuadDecomp::splitter(&block, depth);
        for &p in pts {
            parts[QuadDecomp::classify(&splitter, depth, &p)].push(p);
        }
        for (c, part) in parts.iter().enumerate() {
            self.emit_geometric(
                depth + 1,
                (prefix << 2) | c as u64,
                QuadDecomp::child_block(&block, depth, c),
                part,
            );
        }
    }
}

/// The deepest leaf the PR split rule produces for `pts` under `block`
/// at `depth` — the cold error path that reproduces `from_tree`'s
/// reported depth without building the tree. Bounded by `max_depth`,
/// like the tree itself.
fn would_be_depth(block: Rect, depth: u32, pts: &[Point2], capacity: usize, max_depth: u32) -> u32 {
    let n = pts.len();
    let coincident = n > 0 && pts[1..].iter().all(|q| *q == pts[0]);
    if n <= capacity || depth >= max_depth || coincident {
        return depth;
    }
    let mut parts: [Vec<Point2>; 4] = Default::default();
    let splitter = QuadDecomp::splitter(&block, depth);
    for &p in pts {
        parts[QuadDecomp::classify(&splitter, depth, &p)].push(p);
    }
    (0..4)
        .map(|c| {
            would_be_depth(
                QuadDecomp::child_block(&block, depth, c),
                depth + 1,
                &parts[c],
                capacity,
                max_depth,
            )
        })
        .max()
        .expect("four children")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pr_quadtree::PrQuadtree;

    fn pt(x: f64, y: f64) -> Point2 {
        Point2::new(x, y)
    }

    fn mixed_points() -> Vec<Point2> {
        let mut pts: Vec<Point2> = (0..300)
            .map(|i| {
                pt(
                    (i as f64 * 0.618_033_9) % 1.0,
                    (i as f64 * 0.414_213_6) % 1.0,
                )
            })
            .collect();
        pts.extend([pt(0.123, 0.456); 7]); // coincident pile
        pts.push(pt(0.0, 0.0));
        pts.push(pt(0.9999, 0.9999));
        // Sub-quantum cluster: same Morton cell, distinct points.
        pts.push(pt(0.5, 0.5));
        pts.push(pt(0.5 + 1e-12, 0.5));
        pts
    }

    #[test]
    fn quantizer_matches_morton_of_point_bit_for_bit() {
        for region in [
            Rect::unit(),
            Rect::from_bounds(0.0, 0.0, 2.0, 2.0),
            Rect::from_bounds(0.0, 0.0, 0.5, 8.0),
        ] {
            assert!(morton::morton_grid_exact(&region));
            let q = Quantizer::new(&region);
            for i in 0..2000 {
                let p = pt(
                    region.width() * ((i as f64 * 0.618_033_9) % 1.0),
                    region.height() * ((i as f64 * 0.414_213_6) % 1.0),
                );
                let (qx, qy) = q.cell(&p);
                assert_eq!(
                    morton::morton2(qx, qy),
                    morton::morton_of_point(&p, &region),
                    "point {p} region {region:?}"
                );
            }
        }
    }

    #[test]
    fn leaf_block_matches_child_block_recursion_bit_for_bit() {
        for region in [
            Rect::unit(),
            Rect::from_bounds(0.0, 0.0, 4.0, 4.0),
            Rect::from_bounds(0.0, 0.0, 0.25, 16.0),
        ] {
            let mut state = 0xdead_beefu64;
            for _ in 0..500 {
                state = state.wrapping_mul(6364136223846793005).wrapping_add(1);
                let depth = (state >> 58) as u32 % (morton::MORTON_BITS + 1);
                let prefix = if depth == 0 {
                    0
                } else {
                    (state >> 2) & ((1u64 << (2 * depth)) - 1)
                };
                let direct = leaf_block(&region, prefix, depth);
                let mut walked = region;
                for d in 0..depth {
                    let c = ((prefix >> (2 * (depth - 1 - d))) & 0b11) as usize;
                    walked = QuadDecomp::child_block(&walked, d, c);
                }
                let eq = |a: f64, b: f64| a.to_bits() == b.to_bits();
                assert!(
                    eq(direct.x().lo(), walked.x().lo())
                        && eq(direct.x().hi(), walked.x().hi())
                        && eq(direct.y().lo(), walked.y().lo())
                        && eq(direct.y().hi(), walked.y().hi()),
                    "depth {depth} prefix {prefix:#x}: {direct:?} vs {walked:?}"
                );
            }
        }
    }

    fn assert_trees_identical<D: Decomposition>(a: &ArenaTree<D>, b: &ArenaTree<D>, tag: &str) {
        assert_eq!(a.len(), b.len(), "{tag}: len");
        assert_eq!(a.node_count(), b.node_count(), "{tag}: node_count");
        assert_eq!(a.census(), b.census(), "{tag}: census");
        let mut la = Vec::new();
        a.for_each_leaf(&mut |_, d, ps| la.push((d, ps.to_vec())));
        let mut lb = Vec::new();
        b.for_each_leaf(&mut |_, d, ps| lb.push((d, ps.to_vec())));
        assert_eq!(la, lb, "{tag}: leaves");
    }

    #[test]
    fn quad_bottomup_matches_bulk_fill() {
        let pts = mixed_points();
        for (capacity, max_depth) in [(1, 32), (4, 32), (2, 3), (8, 0), (1, 31)] {
            let mut bulk: ArenaTree<QuadDecomp> = ArenaTree::new(Rect::unit(), capacity, max_depth);
            bulk.bulk_fill(pts.clone());
            let mut bu: ArenaTree<QuadDecomp> = ArenaTree::new(Rect::unit(), capacity, max_depth);
            bu.bulk_fill_bottomup(pts.clone()).unwrap();
            bu.check_invariants();
            assert_trees_identical(&bulk, &bu, &format!("m={capacity} d={max_depth}"));
        }
    }

    #[test]
    fn bintree_bottomup_matches_bulk_fill() {
        let pts = mixed_points();
        for (capacity, max_depth) in [(1, 64), (4, 64), (2, 5)] {
            let mut bulk: ArenaTree<BinDecomp> = ArenaTree::new(Rect::unit(), capacity, max_depth);
            bulk.bulk_fill(pts.clone());
            let mut bu: ArenaTree<BinDecomp> = ArenaTree::new(Rect::unit(), capacity, max_depth);
            bu.bulk_fill_bottomup(pts.clone()).unwrap();
            bu.check_invariants();
            assert_trees_identical(&bulk, &bu, &format!("bin m={capacity} d={max_depth}"));
        }
    }

    #[test]
    fn non_exact_region_falls_back_and_matches() {
        let region = Rect::from_bounds(-10.0, 5.0, 30.0, 25.0);
        assert!(!morton::morton_grid_exact(&region));
        let pts: Vec<Point2> = (0..120)
            .map(|i| {
                pt(
                    -10.0 + 40.0 * ((i as f64 * 0.618_033_9) % 1.0),
                    5.0 + 20.0 * ((i as f64 * 0.414_213_6) % 1.0),
                )
            })
            .collect();
        let mut bulk: ArenaTree<QuadDecomp> = ArenaTree::new(region, 2, 32);
        bulk.bulk_fill(pts.clone());
        let mut bu: ArenaTree<QuadDecomp> = ArenaTree::new(region, 2, 32);
        bu.bulk_fill_bottomup(pts).unwrap();
        assert_trees_identical(&bulk, &bu, "non-exact region");
    }

    #[test]
    fn bottomup_of_empty_and_singleton() {
        let mut t: ArenaTree<QuadDecomp> = ArenaTree::new(Rect::unit(), 2, 32);
        t.bulk_fill_bottomup(Vec::new()).unwrap();
        assert!(t.is_empty());
        t.check_invariants();
        let mut t: ArenaTree<QuadDecomp> = ArenaTree::new(Rect::unit(), 2, 32);
        t.bulk_fill_bottomup(vec![pt(0.5, 0.5)]).unwrap();
        assert_eq!(t.len(), 1);
        t.check_invariants();
    }

    #[test]
    fn freeze_direct_matches_from_tree_bit_for_bit() {
        // The sub-quantum pair is excluded: at capacity 1 it exceeds
        // the Morton depth on both routes (covered by the error-parity
        // test below).
        let mut pts = mixed_points();
        pts.truncate(pts.len() - 2);
        for capacity in [1, 4, 16] {
            let tree = PrQuadtree::build(Rect::unit(), capacity, pts.clone()).unwrap();
            let via_tree = LinearQuadtree::from_tree(&tree).unwrap();
            let direct =
                LinearQuadtree::from_points_direct(Rect::unit(), capacity, 32, pts.clone())
                    .unwrap();
            direct.check_invariants();
            assert_eq!(
                direct.section_digests(),
                via_tree.section_digests(),
                "m={capacity}"
            );
        }
    }

    #[test]
    fn freeze_direct_on_non_exact_region_matches_too() {
        let region = Rect::from_bounds(-10.0, 5.0, 30.0, 25.0);
        let pts: Vec<Point2> = (0..60)
            .map(|i| {
                pt(
                    -10.0 + (i as f64 * 0.61) % 40.0,
                    5.0 + (i as f64 * 0.41) % 20.0,
                )
            })
            .collect();
        let tree = PrQuadtree::build(region, 3, pts.clone()).unwrap();
        let via_tree = LinearQuadtree::from_tree(&tree).unwrap();
        let direct = LinearQuadtree::from_points_direct(region, 3, 32, pts).unwrap();
        assert_eq!(direct.section_digests(), via_tree.section_digests());
    }

    #[test]
    fn freeze_direct_reports_validation_errors() {
        let err = LinearQuadtree::from_points_direct(Rect::unit(), 0, 32, vec![]).unwrap_err();
        assert!(matches!(
            err,
            DirectFreezeError::Tree(TreeError::InvalidParameter(_))
        ));
        let err = LinearQuadtree::from_points_direct(Rect::unit(), 1, 32, vec![pt(2.0, 2.0)])
            .unwrap_err();
        assert!(matches!(
            err,
            DirectFreezeError::Tree(TreeError::OutOfRegion { .. })
        ));
        let err = LinearQuadtree::from_points_direct(Rect::unit(), 1, 32, vec![pt(f64::NAN, 0.5)])
            .unwrap_err();
        assert!(matches!(
            err,
            DirectFreezeError::Tree(TreeError::NonFinitePoint)
        ));
    }

    #[test]
    fn freeze_direct_depth_error_matches_from_tree() {
        // Two points in the same full-resolution Morton cell force the
        // split chain past the code resolution when max_depth allows:
        // both routes must report the same offending depth.
        let pts = vec![pt(0.5, 0.5), pt(0.5 + 1e-12, 0.5)];
        let tree = PrQuadtree::build(Rect::unit(), 1, pts.clone()).unwrap();
        let via_tree = LinearQuadtree::from_tree(&tree).unwrap_err();
        let direct =
            LinearQuadtree::from_points_direct(Rect::unit(), 1, 32, pts.clone()).unwrap_err();
        assert_eq!(direct, DirectFreezeError::Freeze(via_tree));
        // With max_depth at the Morton floor the pile legally spills
        // instead, on both routes.
        let direct = LinearQuadtree::from_points_direct(Rect::unit(), 1, 31, pts).unwrap();
        direct.check_invariants();
        assert_eq!(direct.len(), 2);
    }
}
