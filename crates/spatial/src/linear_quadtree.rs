//! The linear (pointerless) quadtree.
//!
//! A classic companion representation from the quadtree literature the
//! paper builds on (Gargantini's linear quadtrees; Samet's survey
//! \[Same84a\]): instead of pointer nodes, store one record per *leaf*,
//! keyed by its locational code — the Morton prefix of its block — in
//! sorted order. Point lookup is then a binary search, the whole index is
//! two flat allocations, and the structure is trivially serializable.
//!
//! [`LinearQuadtree`] is built by freezing a [`crate::PrQuadtree`]; the
//! two answer queries identically (tested), with the linear form trading
//! mutability for compactness and cache-friendly search.

use crate::pr_quadtree::PrQuadtree;
use popan_geom::{morton, Point2, Rect};

/// One leaf record: the block's locational code and its points.
#[derive(Debug, Clone, PartialEq)]
struct LeafEntry {
    /// Morton code of the block's low corner at full resolution — the
    /// first code contained in the block.
    code_lo: u64,
    /// One past the last full-resolution code contained in the block.
    code_hi: u64,
    /// Leaf depth (block side = region side / 2^depth).
    depth: u32,
    /// Offset of the leaf's points in the flat `points` array.
    points_start: u32,
    /// Number of points in the leaf.
    points_len: u32,
}

/// A frozen, pointerless PR quadtree.
#[derive(Debug, Clone)]
pub struct LinearQuadtree {
    region: Rect,
    /// Leaf entries sorted by `code_lo`; their `[code_lo, code_hi)`
    /// ranges partition the full Morton range.
    leaves: Vec<LeafEntry>,
    /// All points, grouped by leaf.
    points: Vec<Point2>,
}

impl LinearQuadtree {
    /// Freezes a PR quadtree into linear form.
    pub fn from_tree(tree: &PrQuadtree) -> Self {
        let region = tree.region();
        let mut leaves = Vec::new();
        let mut points = Vec::new();
        tree.for_each_leaf(|block, depth, pts| {
            // The block's Morton range: its low corner's code is the
            // smallest in the block; a depth-d block spans
            // 2^(2·(MORTON_BITS − d)) codes.
            let corner = Point2::new(block.x().lo(), block.y().lo());
            let code_lo = morton::morton_of_point(&corner, &region);
            let span = 1u64 << (2 * (morton::MORTON_BITS - depth.min(morton::MORTON_BITS)));
            leaves.push(LeafEntry {
                code_lo,
                code_hi: code_lo + span,
                depth,
                points_start: points.len() as u32,
                points_len: pts.len() as u32,
            });
            points.extend_from_slice(pts);
        });
        leaves.sort_by_key(|l| l.code_lo);
        LinearQuadtree {
            region,
            leaves,
            points,
        }
    }

    /// The region covered.
    pub fn region(&self) -> Rect {
        self.region
    }

    /// Number of stored points.
    pub fn len(&self) -> usize {
        self.points.len()
    }

    /// `true` when no points are stored.
    pub fn is_empty(&self) -> bool {
        self.points.is_empty()
    }

    /// Number of leaf records.
    pub fn leaf_count(&self) -> usize {
        self.leaves.len()
    }

    fn leaf_index_of(&self, p: &Point2) -> Option<usize> {
        if !self.region.contains(p) {
            return None;
        }
        let code = morton::morton_of_point(p, &self.region);
        // Last leaf with code_lo <= code.
        let idx = self.leaves.partition_point(|l| l.code_lo <= code);
        if idx == 0 {
            return None;
        }
        let leaf = &self.leaves[idx - 1];
        debug_assert!(code < leaf.code_hi, "leaf ranges must tile the space");
        Some(idx - 1)
    }

    /// The points stored in the leaf block containing `p` (empty slice
    /// when `p` is outside the region).
    pub fn block_points(&self, p: &Point2) -> &[Point2] {
        match self.leaf_index_of(p) {
            Some(i) => {
                let l = &self.leaves[i];
                &self.points[l.points_start as usize..(l.points_start + l.points_len) as usize]
            }
            None => &[],
        }
    }

    /// `true` when an exactly equal point is stored.
    pub fn contains(&self, p: &Point2) -> bool {
        self.block_points(p).contains(p)
    }

    /// The depth of the leaf block containing `p`.
    pub fn block_depth(&self, p: &Point2) -> Option<u32> {
        self.leaf_index_of(p).map(|i| self.leaves[i].depth)
    }

    /// All stored points inside `query`.
    ///
    /// Walks only the leaves whose Morton ranges can intersect the query
    /// rectangle's code range (a conservative prune: Z-order ranges of a
    /// rectangle are not contiguous, but the min/max corner codes bound
    /// them).
    pub fn range_query(&self, query: &Rect) -> Vec<Point2> {
        let mut out = Vec::new();
        if !self.region.overlaps(query) {
            return out;
        }
        // Clamp the query into the region to compute code bounds.
        let eps = f64::EPSILON;
        let lo = Point2::new(
            query.x().lo().max(self.region.x().lo()),
            query.y().lo().max(self.region.y().lo()),
        );
        let hi = Point2::new(
            (query.x().hi().min(self.region.x().hi()) - eps).max(lo.x),
            (query.y().hi().min(self.region.y().hi()) - eps).max(lo.y),
        );
        let code_min = morton::morton_of_point(&lo, &self.region);
        let code_max = morton::morton_of_point(&hi, &self.region);
        let start = self.leaves.partition_point(|l| l.code_hi <= code_min);
        for l in &self.leaves[start..] {
            if l.code_lo > code_max {
                break;
            }
            let pts =
                &self.points[l.points_start as usize..(l.points_start + l.points_len) as usize];
            out.extend(pts.iter().filter(|p| query.contains(p)).copied());
        }
        out
    }

    /// Approximate heap footprint in bytes (leaves + points arrays).
    pub fn heap_bytes(&self) -> usize {
        self.leaves.len() * std::mem::size_of::<LeafEntry>()
            + self.points.len() * std::mem::size_of::<Point2>()
    }

    /// Verifies that leaf ranges are sorted, disjoint, and tile the full
    /// Morton range; panics on violation.
    pub fn check_invariants(&self) {
        assert!(!self.leaves.is_empty(), "at least the root leaf exists");
        let full_span = 1u64 << (2 * morton::MORTON_BITS);
        assert_eq!(self.leaves[0].code_lo, 0, "first leaf starts at 0");
        for w in self.leaves.windows(2) {
            assert_eq!(w[0].code_hi, w[1].code_lo, "leaf ranges must be contiguous");
        }
        assert_eq!(
            self.leaves.last().expect("non-empty").code_hi,
            full_span,
            "last leaf ends the space"
        );
        let total: u32 = self.leaves.iter().map(|l| l.points_len).sum();
        assert_eq!(total as usize, self.points.len());
    }
}

impl From<&PrQuadtree> for LinearQuadtree {
    fn from(tree: &PrQuadtree) -> Self {
        LinearQuadtree::from_tree(tree)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use popan_rng::rngs::StdRng;
    use popan_rng::SeedableRng;
    use popan_workload::points::{PointSource, UniformRect};

    fn build_pair(n: usize, capacity: usize, seed: u64) -> (PrQuadtree, LinearQuadtree) {
        let mut rng = StdRng::seed_from_u64(seed);
        let points = UniformRect::unit().sample_n(&mut rng, n);
        let tree = PrQuadtree::build(Rect::unit(), capacity, points).unwrap();
        let linear = LinearQuadtree::from_tree(&tree);
        (tree, linear)
    }

    #[test]
    fn empty_tree_freezes_to_single_leaf() {
        let tree = PrQuadtree::new(Rect::unit(), 1).unwrap();
        let linear = LinearQuadtree::from_tree(&tree);
        assert!(linear.is_empty());
        assert_eq!(linear.leaf_count(), 1);
        linear.check_invariants();
    }

    #[test]
    fn ranges_tile_the_space() {
        let (_, linear) = build_pair(500, 2, 1);
        linear.check_invariants();
    }

    #[test]
    fn contains_matches_pointer_tree() {
        let (tree, linear) = build_pair(400, 3, 2);
        assert_eq!(linear.len(), tree.len());
        assert_eq!(linear.leaf_count(), tree.leaf_count());
        for p in tree.points() {
            assert!(linear.contains(&p), "{p}");
        }
        let mut rng = StdRng::seed_from_u64(3);
        for p in UniformRect::unit().sample_n(&mut rng, 200) {
            assert_eq!(linear.contains(&p), tree.contains(&p), "{p}");
        }
        assert!(!linear.contains(&Point2::new(2.0, 2.0)));
    }

    #[test]
    fn block_depth_matches_leaf_records() {
        use crate::node_stats::OccupancyInstrumented;
        let (tree, linear) = build_pair(300, 1, 4);
        // Every stored point's block depth appears in the tree's records.
        let depths: std::collections::BTreeSet<u32> =
            tree.leaf_records().iter().map(|r| r.depth).collect();
        for p in tree.points() {
            let d = linear.block_depth(&p).unwrap();
            assert!(depths.contains(&d), "depth {d}");
        }
        assert_eq!(linear.block_depth(&Point2::new(-1.0, 0.0)), None);
    }

    #[test]
    fn block_points_returns_the_leaf_contents() {
        let tree = PrQuadtree::build(
            Rect::unit(),
            2,
            [
                Point2::new(0.1, 0.1),
                Point2::new(0.15, 0.12),
                Point2::new(0.9, 0.9),
            ],
        )
        .unwrap();
        let linear = LinearQuadtree::from_tree(&tree);
        let blk = linear.block_points(&Point2::new(0.12, 0.11));
        assert_eq!(blk.len(), 2);
        assert!(linear.block_points(&Point2::new(5.0, 5.0)).is_empty());
    }

    #[test]
    fn range_query_matches_pointer_tree() {
        let (tree, linear) = build_pair(600, 2, 5);
        for rect in [
            Rect::from_bounds(0.1, 0.2, 0.5, 0.9),
            Rect::from_bounds(0.0, 0.0, 1.0, 1.0),
            Rect::from_bounds(0.48, 0.48, 0.52, 0.52),
            Rect::from_bounds(0.9, 0.9, 0.95, 0.95),
        ] {
            let mut a = linear.range_query(&rect);
            let mut b = tree.range_query(&rect);
            let key = |p: &Point2| (p.x, p.y);
            a.sort_by(|x, y| key(x).partial_cmp(&key(y)).unwrap());
            b.sort_by(|x, y| key(x).partial_cmp(&key(y)).unwrap());
            assert_eq!(a, b, "{rect}");
        }
    }

    #[test]
    fn range_query_outside_region_is_empty() {
        let (_, linear) = build_pair(100, 2, 6);
        assert!(linear
            .range_query(&Rect::from_bounds(2.0, 2.0, 3.0, 3.0))
            .is_empty());
    }

    #[test]
    fn footprint_is_reported() {
        let (_, linear) = build_pair(1000, 4, 7);
        let bytes = linear.heap_bytes();
        assert!(bytes > 0);
        // Flat arrays: points dominate (16 bytes each), leaves ~32 bytes.
        assert!(bytes < 1000 * 16 + linear.leaf_count() * 64 + 1024);
    }

    #[test]
    fn from_reference_conversion() {
        let (tree, _) = build_pair(50, 1, 8);
        let linear: LinearQuadtree = (&tree).into();
        assert_eq!(linear.len(), 50);
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use popan_proptest::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(48))]

        #[test]
        fn linear_and_pointer_trees_agree(
            raw in popan_proptest::collection::vec((0.0f64..1.0, 0.0f64..1.0), 0..120),
            capacity in 1usize..5,
            probe in popan_proptest::collection::vec((0.0f64..1.0, 0.0f64..1.0), 10),
        ) {
            let points: Vec<Point2> = raw.iter().map(|&(x, y)| Point2::new(x, y)).collect();
            let tree = PrQuadtree::build(Rect::unit(), capacity, points).unwrap();
            let linear = LinearQuadtree::from_tree(&tree);
            linear.check_invariants();
            for &(x, y) in &probe {
                let p = Point2::new(x, y);
                prop_assert_eq!(linear.contains(&p), tree.contains(&p));
            }
        }
    }
}
