//! The linear (pointerless) quadtree — the query tier's snapshot form.
//!
//! A classic companion representation from the quadtree literature the
//! paper builds on (Gargantini's linear quadtrees; Samet's survey
//! \[Same84a\]): instead of pointer nodes, store one record per *leaf*,
//! keyed by its locational code — the Morton prefix of its block — in
//! sorted order. Point lookup is then a binary search, the whole index is
//! three flat allocations, and the structure is trivially serializable.
//!
//! [`LinearQuadtree`] is built by freezing a [`crate::PrQuadtree`]; the
//! two answer queries identically (tested), with the linear form trading
//! mutability for compactness and cache-friendly search. PR 6 grew it
//! into the read-replica substrate of `popan-query`:
//!
//! * **Typed freeze.** [`LinearQuadtree::from_tree`] rejects trees with
//!   leaves deeper than [`morton::MORTON_BITS`] with
//!   [`FreezeError::DepthExceedsMortonBits`] instead of silently
//!   aliasing distinct blocks onto one locational code.
//! * **Morton-decomposed range queries.** [`LinearQuadtree::range_query_into`]
//!   and [`LinearQuadtree::count_in_range_with`] prune through
//!   [`morton::decompose_ranges_into`] spans: leaves wholly inside a
//!   *covered* span are bulk-copied (or bulk-counted off the flat
//!   offsets, never touching their points); only boundary leaves pay the
//!   per-point rectangle test.
//! * **Deterministic k-NN.** [`LinearQuadtree::k_nearest_into`] returns
//!   the `k` nearest points under the canonical
//!   `(distance², Point2::canonical_cmp)` order, so coincident-point and
//!   equidistant ties resolve identically on every backend.
//! * **Zero-allocation serving.** The `_into` variants write into
//!   caller-owned buffers and a reusable [`QueryScratch`]; after warmup
//!   a query batch performs no heap allocation (pinned by
//!   `crates/query/tests/zero_alloc_read.rs`).

use crate::pr_quadtree::PrQuadtree;
use popan_geom::morton::{self, MortonSpan};
use popan_geom::{Interval, Point2, Rect};
use popan_rng::hash::{Fnv64, Mix64x4};
use std::cmp::Ordering;

/// Errors from freezing a pointer tree into linear form.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FreezeError {
    /// A leaf sits deeper than the Morton code resolution: two distinct
    /// blocks at such depths would receive the *same* locational code,
    /// so the frozen index could return wrong blocks. The tree must be
    /// rebuilt with `max_depth ≤` [`morton::MORTON_BITS`].
    DepthExceedsMortonBits {
        /// The offending leaf depth.
        depth: u32,
        /// The deepest representable level, [`morton::MORTON_BITS`].
        max: u32,
    },
}

impl std::fmt::Display for FreezeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FreezeError::DepthExceedsMortonBits { depth, max } => write!(
                f,
                "leaf at depth {depth} exceeds the Morton resolution of {max} bits per axis; \
                 locational codes would alias"
            ),
        }
    }
}

impl std::error::Error for FreezeError {}

/// Depth of the Morton span decomposition used by the range paths: deep
/// enough that boundary leaves dominate only pathologically small
/// queries, shallow enough that the span list stays a few hundred
/// entries (it grows with the query perimeter, O(2^depth) worst case).
pub const RANGE_DECOMPOSE_DEPTH: u32 = 8;

/// Reusable buffers for the allocation-free query paths. One scratch per
/// reader thread; contents are meaningless between calls.
#[derive(Debug, Default, Clone)]
pub struct QueryScratch {
    /// Morton span decomposition of the current range query.
    spans: Vec<MortonSpan>,
    /// k-NN candidate list: `(distance², point)` sorted by the canonical
    /// k-NN order.
    best: Vec<(f64, Point2)>,
    /// Leaves scanned by the current *bounded* query: `(leaf index,
    /// covered-by-span)`. The budgeted paths replay this list to trim a
    /// partial answer to its guaranteed canonical prefix.
    visited: Vec<(u32, bool)>,
    /// Staging buffer for the bounded count path (it must materialize
    /// candidates to trim them against the truncation bound).
    staged: Vec<Point2>,
}

impl QueryScratch {
    /// Creates an empty scratch (buffers grow on first use and are
    /// reused afterwards).
    pub fn new() -> Self {
        QueryScratch::default()
    }
}

/// One frozen slab of a [`LinearQuadtree`], as named by integrity
/// reports and the fault-injection vocabulary (`corrupt:leaf|blocks|points`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum SnapshotSection {
    /// The Morton-sorted leaf records (codes, depths, point offsets).
    Leaves,
    /// The parallel geometric block rects.
    Blocks,
    /// The flat point slab.
    Points,
}

impl std::fmt::Display for SnapshotSection {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(match self {
            SnapshotSection::Leaves => "leaves",
            SnapshotSection::Blocks => "blocks",
            SnapshotSection::Points => "points",
        })
    }
}

/// The per-section FNV-1a 64 digests of a frozen index, plus a combined
/// digest folding in the region and the slab lengths. Computed once at
/// freeze, re-computed by `Snapshot::verify` in `popan-query`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SectionDigests {
    /// Digest of the leaf-record slab (codes, depths, offsets, lengths).
    pub leaves: u64,
    /// Digest of the block-rect slab (all four bounds, bit-exact).
    pub blocks: u64,
    /// Digest of the point slab (both coordinates, bit-exact).
    pub points: u64,
    /// Digest over the region bounds, slab lengths, and the three
    /// section digests — one number that pins the whole frozen index.
    pub combined: u64,
}

/// Heap bytes held per slab (allocated capacity, not live length — the
/// freeze shrinks each slab so the two coincide for a fresh snapshot).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct SlabFootprint {
    /// Bytes held by the leaf-record slab.
    pub leaves: usize,
    /// Bytes held by the block-rect slab.
    pub blocks: usize,
    /// Bytes held by the point slab.
    pub points: usize,
}

impl SlabFootprint {
    /// Total heap bytes across every slab.
    pub fn total(&self) -> usize {
        self.leaves + self.blocks + self.points
    }
}

/// A work-unit budget for the degraded (bounded) query paths.
///
/// Work is measured in deterministic units — leaves scanned and points
/// read off the slabs — never wall-clock time, so a budgeted answer is a
/// pure function of (snapshot, query, budget) and the determinism lint's
/// D2 rule holds. Metadata sweeps (span decomposition, the pruning scan
/// over leaf records) are O(leaf count) and not charged: the budget
/// bounds slab traffic, which is what a pathological or corrupted query
/// would otherwise blow up.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CostBudget {
    /// Leaves whose point slices may be scanned.
    pub leaf_visits: u64,
    /// Points that may be read off the point slab.
    pub point_visits: u64,
}

impl CostBudget {
    /// No limit: the bounded paths behave exactly like the unbounded
    /// ones and always report [`BoundedOutcome::Complete`].
    pub fn unbounded() -> CostBudget {
        CostBudget {
            leaf_visits: u64::MAX,
            point_visits: u64::MAX,
        }
    }

    /// A budget of `leaf_visits` leaves and `point_visits` points.
    pub fn new(leaf_visits: u64, point_visits: u64) -> CostBudget {
        CostBudget {
            leaf_visits,
            point_visits,
        }
    }
}

/// Work actually performed by a bounded query.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct QueryCost {
    /// Leaves whose point slices were scanned.
    pub leaf_visits: u64,
    /// Points read off the point slab.
    pub point_visits: u64,
}

/// How a bounded query ended.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BoundedOutcome {
    /// The full answer was produced within budget.
    Complete {
        /// Work performed.
        visited: QueryCost,
    },
    /// The budget ran out. The answer is the *guaranteed canonical
    /// prefix* of the full answer: every returned element is correct and
    /// no element canonically before it is missing (range results under
    /// [`popan_geom::Point2::canonical_cmp`], k-NN under [`knn_cmp`]).
    Partial {
        /// Work performed before exhaustion.
        visited: QueryCost,
        /// Candidate leaves that were *not* examined; their contents are
        /// what the prefix guarantee had to truncate against.
        truncated_spans: usize,
    },
}

impl BoundedOutcome {
    /// `true` for [`BoundedOutcome::Complete`].
    pub fn is_complete(&self) -> bool {
        matches!(self, BoundedOutcome::Complete { .. })
    }

    /// The work performed.
    pub fn visited(&self) -> QueryCost {
        match *self {
            BoundedOutcome::Complete { visited } => visited,
            BoundedOutcome::Partial { visited, .. } => visited,
        }
    }
}

/// One leaf record: the block's locational code and its points.
#[derive(Debug, Clone, PartialEq)]
struct LeafEntry {
    /// Morton code of the block's low corner at full resolution — the
    /// first code contained in the block.
    code_lo: u64,
    /// One past the last full-resolution code contained in the block.
    code_hi: u64,
    /// Leaf depth (block side = region side / 2^depth).
    depth: u32,
    /// Offset of the leaf's points in the flat `points` array.
    points_start: u32,
    /// Number of points in the leaf.
    points_len: u32,
}

/// Incremental slab accumulator for [`LinearQuadtree::assemble`]: the
/// bottom-up freeze emits leaves in ascending Morton order and points
/// grouped by leaf, exactly the frozen layout, so assembly is a move.
#[derive(Debug, Default)]
pub(crate) struct LinearBuilder {
    leaves: Vec<LeafEntry>,
    blocks: Vec<Rect>,
    points: Vec<Point2>,
}

impl LinearBuilder {
    /// Starts a leaf record; its `points_len` grows with each
    /// [`LinearBuilder::push_points`] until the next leaf begins.
    pub(crate) fn begin_leaf(&mut self, code_lo: u64, depth: u32, block: Rect) {
        self.leaves.push(LeafEntry {
            code_lo,
            code_hi: code_lo + morton::cells_at_depth(depth),
            depth,
            points_start: self.points.len() as u32,
            points_len: 0,
        });
        self.blocks.push(block);
    }

    /// Appends a whole run to the currently open leaf.
    pub(crate) fn push_points(&mut self, pts: &[Point2]) {
        self.points.extend_from_slice(pts);
        self.leaves
            .last_mut()
            .expect("push_points requires an open leaf")
            .points_len += pts.len() as u32;
    }

    /// Pre-reserves slab capacity (bulk-freeze hint).
    pub(crate) fn reserve(&mut self, leaves: usize, points: usize) {
        self.leaves.reserve(leaves);
        self.blocks.reserve(leaves);
        self.points.reserve(points);
    }
}

/// A frozen, pointerless PR quadtree.
#[derive(Debug, Clone)]
pub struct LinearQuadtree {
    region: Rect,
    /// Leaf entries sorted by `code_lo`; their `[code_lo, code_hi)`
    /// ranges partition the full Morton range.
    leaves: Vec<LeafEntry>,
    /// `blocks[i]` is the geometric rect of `leaves[i]` — precomputed at
    /// freeze so the k-NN pruning loop reads it straight off the slab.
    blocks: Vec<Rect>,
    /// All points, grouped by leaf.
    points: Vec<Point2>,
}

/// The canonical k-NN candidate order: squared distance first
/// ([`f64::total_cmp`]), then [`Point2::canonical_cmp`]. Total, so ties
/// on coincident or equidistant points resolve bit-identically on every
/// backend.
pub fn knn_cmp(a: &(f64, Point2), b: &(f64, Point2)) -> std::cmp::Ordering {
    a.0.total_cmp(&b.0).then_with(|| a.1.canonical_cmp(&b.1))
}

impl LinearQuadtree {
    /// Freezes a PR quadtree into linear form.
    ///
    /// Fails with [`FreezeError::DepthExceedsMortonBits`] when any leaf
    /// sits below the Morton resolution — such leaves cannot be given
    /// unique locational codes, and silently clamping (the pre-PR 6
    /// behavior) would alias distinct blocks onto one code.
    pub fn from_tree(tree: &PrQuadtree) -> Result<Self, FreezeError> {
        let region = tree.region();
        let mut leaves = Vec::new();
        let mut blocks = Vec::new();
        let mut points = Vec::new();
        let mut too_deep: Option<u32> = None;
        tree.for_each_leaf(|block, depth, pts| {
            if depth > morton::MORTON_BITS {
                too_deep = Some(too_deep.map_or(depth, |d| d.max(depth)));
                return;
            }
            // The block's Morton range: its low corner's code is the
            // smallest in the block; a depth-d block spans
            // 4^(MORTON_BITS − d) codes.
            let corner = Point2::new(block.x().lo(), block.y().lo());
            let code_lo = morton::morton_of_point(&corner, &region);
            leaves.push(LeafEntry {
                code_lo,
                code_hi: code_lo + morton::cells_at_depth(depth),
                depth,
                points_start: points.len() as u32,
                points_len: pts.len() as u32,
            });
            blocks.push(block);
            points.extend_from_slice(pts);
        });
        if let Some(depth) = too_deep {
            return Err(FreezeError::DepthExceedsMortonBits {
                depth,
                max: morton::MORTON_BITS,
            });
        }
        let mut order: Vec<usize> = (0..leaves.len()).collect();
        order.sort_by_key(|&i| leaves[i].code_lo);
        let leaves: Vec<LeafEntry> = order.iter().map(|&i| leaves[i].clone()).collect();
        let blocks: Vec<Rect> = order.iter().map(|&i| blocks[i]).collect();
        // The snapshot is immutable from here on; return the incremental
        // growth slack so the footprint accounting is exact.
        points.shrink_to_fit();
        Ok(LinearQuadtree {
            region,
            leaves,
            blocks,
            points,
        })
    }

    /// Crate-internal assembly for the bottom-up freeze path
    /// (`arena::bottomup`), which emits leaves already in ascending
    /// Morton order and so skips both the pointer tree and the
    /// `from_tree` sort. The builder enforces nothing at push time;
    /// [`LinearQuadtree::check_invariants`] and the differential suites
    /// pin the result against the `from_tree` route.
    pub(crate) fn assemble(builder: LinearBuilder, region: Rect) -> Self {
        let LinearBuilder {
            mut leaves,
            mut blocks,
            mut points,
        } = builder;
        // Freeze contract: every slab at exact capacity, so the
        // footprint is a linear function of the lengths.
        leaves.shrink_to_fit();
        blocks.shrink_to_fit();
        points.shrink_to_fit();
        LinearQuadtree {
            region,
            leaves,
            blocks,
            points,
        }
    }

    /// The region covered.
    pub fn region(&self) -> Rect {
        self.region
    }

    /// Number of stored points.
    pub fn len(&self) -> usize {
        self.points.len()
    }

    /// `true` when no points are stored.
    pub fn is_empty(&self) -> bool {
        self.points.is_empty()
    }

    /// Number of leaf records.
    pub fn leaf_count(&self) -> usize {
        self.leaves.len()
    }

    /// The geometric block of leaf `i` (freeze order, ascending Morton).
    pub fn leaf_block(&self, i: usize) -> Rect {
        self.blocks[i]
    }

    /// All stored points, grouped by leaf in ascending Morton order.
    pub fn points(&self) -> &[Point2] {
        &self.points
    }

    fn leaf_points(&self, l: &LeafEntry) -> &[Point2] {
        &self.points[l.points_start as usize..(l.points_start + l.points_len) as usize]
    }

    fn leaf_index_of(&self, p: &Point2) -> Option<usize> {
        if !self.region.contains(p) {
            return None;
        }
        let code = morton::morton_of_point(p, &self.region);
        // Last leaf with code_lo <= code.
        let idx = self.leaves.partition_point(|l| l.code_lo <= code);
        if idx == 0 {
            return None;
        }
        let leaf = &self.leaves[idx - 1];
        debug_assert!(code < leaf.code_hi, "leaf ranges must tile the space");
        Some(idx - 1)
    }

    /// The points stored in the leaf block containing `p` (empty slice
    /// when `p` is outside the region).
    pub fn block_points(&self, p: &Point2) -> &[Point2] {
        match self.leaf_index_of(p) {
            Some(i) => self.leaf_points(&self.leaves[i]),
            None => &[],
        }
    }

    /// `true` when an exactly equal point is stored.
    pub fn contains(&self, p: &Point2) -> bool {
        self.block_points(p).contains(p)
    }

    /// The depth of the leaf block containing `p`.
    pub fn block_depth(&self, p: &Point2) -> Option<u32> {
        self.leaf_index_of(p).map(|i| self.leaves[i].depth)
    }

    /// All stored points inside `query` (allocating convenience form of
    /// [`LinearQuadtree::range_query_into`]). Leaf-order output, same as
    /// the pointer tree's `range_query`.
    pub fn range_query(&self, query: &Rect) -> Vec<Point2> {
        let mut scratch = QueryScratch::new();
        let mut out = Vec::new();
        self.range_query_into(query, &mut scratch, &mut out);
        out
    }

    /// Appends all stored points inside `query` to `out` (cleared
    /// first), in leaf order.
    ///
    /// The query rectangle is decomposed into Morton spans
    /// ([`morton::decompose_ranges_into`]); a single monotone cursor
    /// sweep over the sorted leaves then visits each candidate leaf
    /// exactly once. Leaves wholly inside a *covered* span bulk-copy
    /// their points without the per-point rectangle test; boundary
    /// leaves filter. Allocation-free once `scratch` and `out` have
    /// warmed to the workload's high-water marks.
    pub fn range_query_into(
        &self,
        query: &Rect,
        scratch: &mut QueryScratch,
        out: &mut Vec<Point2>,
    ) {
        out.clear();
        self.for_range_leaves(
            query,
            scratch,
            |points, out| out.extend_from_slice(points),
            |points, query, out| out.extend(points.iter().filter(|p| query.contains(p)).copied()),
            out,
        );
    }

    /// Counts stored points inside `query` without materializing them
    /// (allocating convenience form of
    /// [`LinearQuadtree::count_in_range_with`]).
    pub fn count_in_range(&self, query: &Rect) -> usize {
        self.count_in_range_with(query, &mut QueryScratch::new())
    }

    /// Counts stored points inside `query`. Leaves wholly inside a
    /// covered span are counted off the flat offsets — their points are
    /// never touched — so counts over large rectangles cost O(spans ·
    /// log leaves + boundary points).
    pub fn count_in_range_with(&self, query: &Rect, scratch: &mut QueryScratch) -> usize {
        let mut count = 0usize;
        self.for_range_leaves(
            query,
            scratch,
            |points, count| *count += points.len(),
            |points, query, count| *count += points.iter().filter(|p| query.contains(p)).count(),
            &mut count,
        );
        count
    }

    /// The shared span-decomposed leaf sweep behind the range paths:
    /// calls `bulk` for leaves wholly inside a covered span and `filter`
    /// for boundary leaves, each leaf exactly once, in ascending Morton
    /// order.
    fn for_range_leaves<Acc>(
        &self,
        query: &Rect,
        scratch: &mut QueryScratch,
        mut bulk: impl FnMut(&[Point2], &mut Acc),
        mut filter: impl FnMut(&[Point2], &Rect, &mut Acc),
        acc: &mut Acc,
    ) {
        if !self.region.overlaps(query) {
            return;
        }
        morton::decompose_ranges_into(
            query,
            &self.region,
            RANGE_DECOMPOSE_DEPTH,
            &mut scratch.spans,
        );
        let mut cursor = 0usize;
        for span in &scratch.spans {
            // Skip leaves that end before this span starts. The cursor
            // never moves backwards: spans ascend and a leaf processed
            // under an earlier span was filtered against the full query,
            // so re-visiting it would double-report.
            cursor += self.leaves[cursor..].partition_point(|l| l.code_hi <= span.lo);
            while cursor < self.leaves.len() && self.leaves[cursor].code_lo < span.hi {
                let l = &self.leaves[cursor];
                if span.covered && span.lo <= l.code_lo && l.code_hi <= span.hi {
                    // Covered span ⊇ leaf block: every point matches.
                    bulk(self.leaf_points(l), acc);
                } else {
                    filter(self.leaf_points(l), query, acc);
                }
                cursor += 1;
            }
        }
    }

    /// The `k` stored points nearest to `target` under the canonical
    /// order (allocating convenience form of
    /// [`LinearQuadtree::k_nearest_into`]).
    pub fn k_nearest(&self, target: &Point2, k: usize) -> Vec<Point2> {
        let mut scratch = QueryScratch::new();
        let mut out = Vec::new();
        self.k_nearest_into(target, k, &mut scratch, &mut out);
        out
    }

    /// Writes the `k` stored points nearest to `target` into `out`
    /// (cleared first), nearest first; fewer when the snapshot holds
    /// fewer than `k` points.
    ///
    /// Ordering and tie-breaking follow [`knn_cmp`]: squared distance,
    /// then canonical point order — fully deterministic even for
    /// coincident piles and equidistant rings. The scan seeds its bound
    /// from the leaf containing `target`, then sweeps the flat leaf
    /// slab, pruning every leaf whose block cannot *strictly* beat the
    /// current k-th candidate (strict, so equal-distance ties are still
    /// examined and resolved canonically).
    pub fn k_nearest_into(
        &self,
        target: &Point2,
        k: usize,
        scratch: &mut QueryScratch,
        out: &mut Vec<Point2>,
    ) {
        out.clear();
        scratch.best.clear();
        if k == 0 || self.points.is_empty() {
            return;
        }
        scratch.best.reserve(k + 1);
        let seed = self.leaf_index_of(target);
        if let Some(i) = seed {
            Self::knn_scan_leaf(
                self.leaf_points(&self.leaves[i]),
                target,
                k,
                &mut scratch.best,
            );
        }
        for i in 0..self.leaves.len() {
            if Some(i) == seed {
                continue;
            }
            if scratch.best.len() == k {
                let worst = scratch.best[k - 1].0;
                if min_dist_squared(&self.blocks[i], target) > worst {
                    continue;
                }
            }
            Self::knn_scan_leaf(
                self.leaf_points(&self.leaves[i]),
                target,
                k,
                &mut scratch.best,
            );
        }
        out.extend(scratch.best.iter().map(|&(_, p)| p));
    }

    /// Folds one leaf's points into the sorted candidate list.
    fn knn_scan_leaf(points: &[Point2], target: &Point2, k: usize, best: &mut Vec<(f64, Point2)>) {
        for p in points {
            let cand = (p.distance_squared(target), *p);
            if best.len() == k && knn_cmp(&cand, &best[k - 1]) == std::cmp::Ordering::Greater {
                continue;
            }
            let pos = best.partition_point(|e| knn_cmp(e, &cand) != std::cmp::Ordering::Greater);
            best.insert(pos, cand);
            if best.len() > k {
                best.pop();
            }
        }
    }

    /// Budgeted range query: like
    /// [`LinearQuadtree::range_query_into`], but stops when `budget` is
    /// exhausted and degrades to the **guaranteed canonical prefix** of
    /// the full answer instead of running unbounded work.
    ///
    /// `out` is always sorted by [`Point2::canonical_cmp`]. On
    /// [`BoundedOutcome::Partial`], every returned point is a true
    /// answer and *no* canonically-smaller answer is missing: the sweep
    /// records which candidate leaves went unexamined, takes the
    /// canonically smallest possible answer point any of them could
    /// contain (the canonical-min corner of `block ∩ query`), and trims
    /// the collected answers strictly below that bound. The result is
    /// exactly the full answer's canonical prefix below the bound.
    pub fn range_query_bounded_into(
        &self,
        query: &Rect,
        budget: &CostBudget,
        scratch: &mut QueryScratch,
        out: &mut Vec<Point2>,
    ) -> BoundedOutcome {
        out.clear();
        let exhausted = self.bounded_sweep(query, budget, scratch, out);
        out.sort_unstable_by(Point2::canonical_cmp);
        let mut visited = QueryCost::default();
        for &(i, _) in &scratch.visited {
            visited.leaf_visits += 1;
            visited.point_visits += u64::from(self.leaves[i as usize].points_len);
        }
        match exhausted {
            None => BoundedOutcome::Complete { visited },
            Some(resume) => {
                let (bound, truncated) = self.truncation_bound(query, scratch, resume);
                match bound {
                    // Every unexamined leaf was outside the query: the
                    // answer is in fact complete.
                    None => BoundedOutcome::Complete { visited },
                    Some(bound) => {
                        let keep =
                            out.partition_point(|p| p.canonical_cmp(&bound) == Ordering::Less);
                        out.truncate(keep);
                        BoundedOutcome::Partial {
                            visited,
                            truncated_spans: truncated,
                        }
                    }
                }
            }
        }
    }

    /// Budgeted count: returns `(count, outcome)` where on
    /// [`BoundedOutcome::Partial`] the count equals
    /// `range_query_bounded_into(..).len()` under the same budget — the
    /// size of the guaranteed canonical prefix. The recount after
    /// exhaustion re-reads the already-visited leaves, so a partial
    /// count costs at most twice the point budget.
    pub fn count_in_range_bounded_with(
        &self,
        query: &Rect,
        budget: &CostBudget,
        scratch: &mut QueryScratch,
    ) -> (usize, BoundedOutcome) {
        let mut staged = std::mem::take(&mut scratch.staged);
        staged.clear();
        let exhausted = self.bounded_sweep(query, budget, scratch, &mut staged);
        let mut visited = QueryCost::default();
        for &(i, _) in &scratch.visited {
            visited.leaf_visits += 1;
            visited.point_visits += u64::from(self.leaves[i as usize].points_len);
        }
        let outcome = match exhausted {
            None => (staged.len(), BoundedOutcome::Complete { visited }),
            Some(resume) => {
                let (bound, truncated) = self.truncation_bound(query, scratch, resume);
                match bound {
                    None => (staged.len(), BoundedOutcome::Complete { visited }),
                    Some(bound) => {
                        let kept = staged
                            .iter()
                            .filter(|p| p.canonical_cmp(&bound) == Ordering::Less)
                            .count();
                        (
                            kept,
                            BoundedOutcome::Partial {
                                visited,
                                truncated_spans: truncated,
                            },
                        )
                    }
                }
            }
        };
        scratch.staged = staged;
        outcome
    }

    /// The shared budgeted sweep: visits candidate leaves in Morton
    /// order, appending matches to `out` and recording visited leaves in
    /// `scratch.visited`, until the budget runs out. Returns the resume
    /// point `(span index, leaf cursor)` on exhaustion.
    fn bounded_sweep(
        &self,
        query: &Rect,
        budget: &CostBudget,
        scratch: &mut QueryScratch,
        out: &mut Vec<Point2>,
    ) -> Option<(usize, usize)> {
        scratch.visited.clear();
        if !self.region.overlaps(query) {
            scratch.spans.clear();
            return None;
        }
        morton::decompose_ranges_into(
            query,
            &self.region,
            RANGE_DECOMPOSE_DEPTH,
            &mut scratch.spans,
        );
        let mut cost = QueryCost::default();
        let mut cursor = 0usize;
        for si in 0..scratch.spans.len() {
            let span = scratch.spans[si];
            cursor += self.leaves[cursor..].partition_point(|l| l.code_hi <= span.lo);
            while cursor < self.leaves.len() && self.leaves[cursor].code_lo < span.hi {
                let l = &self.leaves[cursor];
                let pts = u64::from(l.points_len);
                if cost.leaf_visits + 1 > budget.leaf_visits
                    || cost.point_visits + pts > budget.point_visits
                {
                    return Some((si, cursor));
                }
                cost.leaf_visits += 1;
                cost.point_visits += pts;
                let covered = span.covered && span.lo <= l.code_lo && l.code_hi <= span.hi;
                if covered {
                    out.extend_from_slice(self.leaf_points(l));
                } else {
                    out.extend(
                        self.leaf_points(l)
                            .iter()
                            .filter(|p| query.contains(p))
                            .copied(),
                    );
                }
                scratch.visited.push((cursor as u32, covered));
                cursor += 1;
            }
        }
        None
    }

    /// Enumerates the candidate leaves an exhausted sweep never reached
    /// (resuming at `(span index, leaf cursor)`) and returns the
    /// canonically smallest point any of them could contribute, plus
    /// their count. `None` bound means no unexamined leaf overlaps the
    /// query — the answer was complete after all.
    fn truncation_bound(
        &self,
        query: &Rect,
        scratch: &QueryScratch,
        resume: (usize, usize),
    ) -> (Option<Point2>, usize) {
        let (si, mut cursor) = resume;
        let mut bound: Option<Point2> = None;
        let mut truncated = 0usize;
        for span in &scratch.spans[si..] {
            cursor += self.leaves[cursor..].partition_point(|l| l.code_hi <= span.lo);
            while cursor < self.leaves.len() && self.leaves[cursor].code_lo < span.hi {
                let b = &self.blocks[cursor];
                if b.overlaps(query) {
                    truncated += 1;
                    let corner = Point2::new(
                        b.x().lo().max(query.x().lo()),
                        b.y().lo().max(query.y().lo()),
                    );
                    bound = Some(match bound {
                        Some(cur) if cur.canonical_cmp(&corner) != Ordering::Greater => cur,
                        _ => corner,
                    });
                }
                cursor += 1;
            }
        }
        (bound, truncated)
    }

    /// Budgeted k-NN: like [`LinearQuadtree::k_nearest_into`], but stops
    /// scanning leaves when `budget` is exhausted and trims the
    /// candidate list to the **guaranteed prefix** of the true answer
    /// under [`knn_cmp`]: only candidates strictly closer than any
    /// unexamined leaf's nearest possible point survive, so every
    /// returned neighbor is a true `i`-th nearest neighbor.
    pub fn k_nearest_bounded_into(
        &self,
        target: &Point2,
        k: usize,
        budget: &CostBudget,
        scratch: &mut QueryScratch,
        out: &mut Vec<Point2>,
    ) -> BoundedOutcome {
        out.clear();
        scratch.best.clear();
        scratch.visited.clear();
        let mut cost = QueryCost::default();
        if k == 0 || self.points.is_empty() {
            return BoundedOutcome::Complete { visited: cost };
        }
        scratch.best.reserve(k + 1);
        let seed = self.leaf_index_of(target);
        let mut exhausted = false;
        let order = seed
            .into_iter()
            .chain((0..self.leaves.len()).filter(|i| Some(*i) != seed));
        for i in order {
            if Some(i) != seed && scratch.best.len() == k {
                let worst = scratch.best[k - 1].0;
                if min_dist_squared(&self.blocks[i], target) > worst {
                    continue; // pruned: no slab traffic, not charged
                }
            }
            let pts = u64::from(self.leaves[i].points_len);
            if cost.leaf_visits + 1 > budget.leaf_visits
                || cost.point_visits + pts > budget.point_visits
            {
                exhausted = true;
                break;
            }
            cost.leaf_visits += 1;
            cost.point_visits += pts;
            scratch.visited.push((i as u32, false));
            Self::knn_scan_leaf(
                self.leaf_points(&self.leaves[i]),
                target,
                k,
                &mut scratch.best,
            );
        }
        if !exhausted {
            out.extend(scratch.best.iter().map(|&(_, p)| p));
            return BoundedOutcome::Complete { visited: cost };
        }
        // Every leaf not *scanned* — including ones pruned earlier, whose
        // lower bounds exceeded a then-current k-th distance — caps the
        // provable prefix: a candidate survives only if it is strictly
        // closer than the nearest possible point of every such leaf.
        let mut scanned: Vec<u32> = scratch.visited.iter().map(|&(i, _)| i).collect();
        scanned.sort_unstable();
        let mut bound = f64::INFINITY;
        let mut truncated = 0usize;
        let mut next = 0usize;
        for i in 0..self.leaves.len() {
            if next < scanned.len() && scanned[next] as usize == i {
                next += 1;
                continue;
            }
            truncated += 1;
            let d = min_dist_squared(&self.blocks[i], target);
            if d < bound {
                bound = d;
            }
        }
        out.extend(
            scratch
                .best
                .iter()
                .take_while(|&&(d, _)| d < bound)
                .map(|&(_, p)| p),
        );
        BoundedOutcome::Partial {
            visited: cost,
            truncated_spans: truncated,
        }
    }

    /// Heap footprint in bytes across every slab. Counts *allocated
    /// capacity*, not live length — before PR 8 this under-reported the
    /// point slab's growth slack; the freeze now shrinks the slabs so
    /// the two coincide, and [`LinearQuadtree::footprint`] breaks the
    /// total down per slab.
    pub fn heap_bytes(&self) -> usize {
        self.footprint().total()
    }

    /// Per-slab heap bytes (allocated capacity).
    pub fn footprint(&self) -> SlabFootprint {
        SlabFootprint {
            leaves: self.leaves.capacity() * std::mem::size_of::<LeafEntry>(),
            blocks: self.blocks.capacity() * std::mem::size_of::<Rect>(),
            points: self.points.capacity() * std::mem::size_of::<Point2>(),
        }
    }

    /// Digests of the frozen slabs (DESIGN.md §12): one per section
    /// over that slab's canonical word stream (four-lane word-at-a-time
    /// [`Mix64x4`] — the slabs are megabytes at serving scale, and the
    /// byte-serial FNV chain would double the freeze cost), plus a
    /// combined FNV-1a digest folding in the region bounds and slab
    /// lengths. The epoch is deliberately *not* part of any digest —
    /// the publisher re-stamps epochs at publish time and that must not
    /// invalidate the checksum.
    pub fn section_digests(&self) -> SectionDigests {
        // Each record maps onto one bulk absorb (a leaf record and a
        // block rect are four words; a pair of points is four), keeping
        // the multiply lanes saturated instead of paying round-robin
        // bookkeeping per word.
        let mut h = Mix64x4::new();
        h.write_word(self.leaves.len() as u64);
        for l in &self.leaves {
            // Two u32 fields share a word; points_len gets its own so
            // every field lands at a fixed word-lane position.
            h.write_words4([
                l.code_lo,
                l.code_hi,
                u64::from(l.depth) << 32 | u64::from(l.points_start),
                u64::from(l.points_len),
            ]);
        }
        let leaves = h.finish();

        let mut h = Mix64x4::new();
        h.write_word(self.blocks.len() as u64);
        for b in &self.blocks {
            h.write_words4([
                b.x().lo().to_bits(),
                b.x().hi().to_bits(),
                b.y().lo().to_bits(),
                b.y().hi().to_bits(),
            ]);
        }
        let blocks = h.finish();

        let mut h = Mix64x4::new();
        h.write_word(self.points.len() as u64);
        let mut pairs = self.points.chunks_exact(2);
        for pair in &mut pairs {
            h.write_words4([
                pair[0].x.to_bits(),
                pair[0].y.to_bits(),
                pair[1].x.to_bits(),
                pair[1].y.to_bits(),
            ]);
        }
        for p in pairs.remainder() {
            h.write_f64(p.x);
            h.write_f64(p.y);
        }
        let points = h.finish();

        let mut h = Fnv64::new();
        h.write_f64(self.region.x().lo());
        h.write_f64(self.region.x().hi());
        h.write_f64(self.region.y().lo());
        h.write_f64(self.region.y().hi());
        h.write_u64(self.leaves.len() as u64);
        h.write_u64(self.points.len() as u64);
        h.write_u64(leaves);
        h.write_u64(blocks);
        h.write_u64(points);
        SectionDigests {
            leaves,
            blocks,
            points,
            combined: h.finish(),
        }
    }

    /// **Fault-injection machinery** — flips one bit inside the chosen
    /// frozen slab, deterministically addressed by `bit` (taken modulo
    /// the section's total bit width, so any `u64` names a valid bit).
    /// Returns `false` when the section is empty and nothing could be
    /// damaged.
    ///
    /// This exists so the serving-path chaos suite (`popan-query`
    /// `tests/chaos.rs`, driven by `popan-engine`'s
    /// `Fault::Corrupt(..)`) can prove that `Snapshot::verify` catches
    /// arbitrary single-bit slab damage before a corrupt snapshot is
    /// published. The damaged index may violate every structural
    /// invariant — it must be quarantined, never queried.
    pub fn corrupt_slab_bit(&mut self, section: SnapshotSection, bit: u64) -> bool {
        match section {
            SnapshotSection::Leaves => {
                // 224 bits per record: code_lo | code_hi | depth |
                // points_start | points_len.
                if self.leaves.is_empty() {
                    return false;
                }
                let b = bit % (self.leaves.len() as u64 * 224);
                let l = &mut self.leaves[(b / 224) as usize];
                match b % 224 {
                    o @ 0..=63 => l.code_lo ^= 1 << o,
                    o @ 64..=127 => l.code_hi ^= 1 << (o - 64),
                    o @ 128..=159 => l.depth ^= 1 << (o - 128),
                    o @ 160..=191 => l.points_start ^= 1 << (o - 160),
                    o => l.points_len ^= 1 << (o - 192),
                }
            }
            SnapshotSection::Blocks => {
                // 256 bits per rect: x.lo | x.hi | y.lo | y.hi. The
                // damaged bounds may be inverted or non-finite; the
                // unchecked constructor is exactly for this.
                if self.blocks.is_empty() {
                    return false;
                }
                let b = bit % (self.blocks.len() as u64 * 256);
                let r = &mut self.blocks[(b / 256) as usize];
                let mut bounds = [
                    r.x().lo().to_bits(),
                    r.x().hi().to_bits(),
                    r.y().lo().to_bits(),
                    r.y().hi().to_bits(),
                ];
                let o = b % 256;
                bounds[(o / 64) as usize] ^= 1 << (o % 64);
                *r = Rect::new(
                    Interval::from_raw_unchecked(
                        f64::from_bits(bounds[0]),
                        f64::from_bits(bounds[1]),
                    ),
                    Interval::from_raw_unchecked(
                        f64::from_bits(bounds[2]),
                        f64::from_bits(bounds[3]),
                    ),
                );
            }
            SnapshotSection::Points => {
                // 128 bits per point: x | y.
                if self.points.is_empty() {
                    return false;
                }
                let b = bit % (self.points.len() as u64 * 128);
                let p = &mut self.points[(b / 128) as usize];
                let o = b % 128;
                if o < 64 {
                    p.x = f64::from_bits(p.x.to_bits() ^ (1 << o));
                } else {
                    p.y = f64::from_bits(p.y.to_bits() ^ (1 << (o - 64)));
                }
            }
        }
        true
    }

    /// Verifies that leaf ranges are sorted, disjoint, and tile the full
    /// Morton range, and that blocks stay parallel to leaves; panics on
    /// violation.
    pub fn check_invariants(&self) {
        assert!(!self.leaves.is_empty(), "at least the root leaf exists");
        assert_eq!(self.leaves.len(), self.blocks.len(), "blocks track leaves");
        let full_span = morton::cells_at_depth(0);
        assert_eq!(self.leaves[0].code_lo, 0, "first leaf starts at 0");
        for w in self.leaves.windows(2) {
            assert_eq!(w[0].code_hi, w[1].code_lo, "leaf ranges must be contiguous");
        }
        assert_eq!(
            self.leaves.last().expect("non-empty").code_hi,
            full_span,
            "last leaf ends the space"
        );
        let total: u32 = self.leaves.iter().map(|l| l.points_len).sum();
        assert_eq!(total as usize, self.points.len());
        for (l, b) in self.leaves.iter().zip(&self.blocks) {
            let corner = Point2::new(b.x().lo(), b.y().lo());
            assert_eq!(
                morton::morton_of_point(&corner, &self.region),
                l.code_lo,
                "block corner must reproduce the locational code"
            );
        }
    }
}

/// Smallest squared distance from `p` to any point of `block`.
fn min_dist_squared(block: &Rect, p: &Point2) -> f64 {
    let dx = (block.x().lo() - p.x).max(p.x - block.x().hi()).max(0.0);
    let dy = (block.y().lo() - p.y).max(p.y - block.y().hi()).max(0.0);
    dx * dx + dy * dy
}

impl TryFrom<&PrQuadtree> for LinearQuadtree {
    type Error = FreezeError;

    fn try_from(tree: &PrQuadtree) -> Result<Self, FreezeError> {
        LinearQuadtree::from_tree(tree)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use popan_rng::rngs::StdRng;
    use popan_rng::SeedableRng;
    use popan_workload::points::{PointSource, UniformRect};

    fn build_pair(n: usize, capacity: usize, seed: u64) -> (PrQuadtree, LinearQuadtree) {
        let mut rng = StdRng::seed_from_u64(seed);
        let points = UniformRect::unit().sample_n(&mut rng, n);
        let tree = PrQuadtree::build(Rect::unit(), capacity, points).unwrap();
        let linear = LinearQuadtree::from_tree(&tree).unwrap();
        (tree, linear)
    }

    #[test]
    fn empty_tree_freezes_to_single_leaf() {
        let tree = PrQuadtree::new(Rect::unit(), 1).unwrap();
        let linear = LinearQuadtree::from_tree(&tree).unwrap();
        assert!(linear.is_empty());
        assert_eq!(linear.leaf_count(), 1);
        linear.check_invariants();
    }

    #[test]
    fn ranges_tile_the_space() {
        let (_, linear) = build_pair(500, 2, 1);
        linear.check_invariants();
    }

    #[test]
    fn freeze_rejects_leaves_below_morton_resolution() {
        // Two points that separate only at depth 32 — representable in
        // the pointer tree (DEFAULT_MAX_DEPTH = 32) but one level below
        // the 31-bit Morton grid. The pre-PR 6 freeze silently clamped
        // the span, aliasing the two sibling blocks onto one code; now
        // the freeze refuses with a typed error.
        let step = (0.5f64).powi(32);
        let mut tree = PrQuadtree::new(Rect::unit(), 1).unwrap();
        tree.insert(Point2::new(0.0, 0.0)).unwrap();
        tree.insert(Point2::new(step, 0.0)).unwrap();
        let err = LinearQuadtree::from_tree(&tree).unwrap_err();
        assert_eq!(
            err,
            FreezeError::DepthExceedsMortonBits {
                depth: 32,
                max: morton::MORTON_BITS,
            }
        );
        assert!(err.to_string().contains("alias"), "{err}");
    }

    #[test]
    fn freeze_accepts_max_representable_depth() {
        // Separation exactly at depth 31 = MORTON_BITS: the deepest
        // representable leaf level must still freeze.
        let step = (0.5f64).powi(31);
        let mut tree = PrQuadtree::new(Rect::unit(), 1).unwrap();
        tree.insert(Point2::new(0.0, 0.0)).unwrap();
        tree.insert(Point2::new(step, 0.0)).unwrap();
        let linear = LinearQuadtree::from_tree(&tree).unwrap();
        linear.check_invariants();
        assert_eq!(linear.len(), 2);
        assert!(linear.contains(&Point2::new(step, 0.0)));
    }

    #[test]
    fn contains_matches_pointer_tree() {
        let (tree, linear) = build_pair(400, 3, 2);
        assert_eq!(linear.len(), tree.len());
        assert_eq!(linear.leaf_count(), tree.leaf_count());
        for p in tree.points() {
            assert!(linear.contains(&p), "{p}");
        }
        let mut rng = StdRng::seed_from_u64(3);
        for p in UniformRect::unit().sample_n(&mut rng, 200) {
            assert_eq!(linear.contains(&p), tree.contains(&p), "{p}");
        }
        assert!(!linear.contains(&Point2::new(2.0, 2.0)));
    }

    #[test]
    fn block_depth_matches_leaf_records() {
        use crate::node_stats::OccupancyInstrumented;
        let (tree, linear) = build_pair(300, 1, 4);
        // Every stored point's block depth appears in the tree's records.
        let depths: std::collections::BTreeSet<u32> =
            tree.leaf_records().iter().map(|r| r.depth).collect();
        for p in tree.points() {
            let d = linear.block_depth(&p).unwrap();
            assert!(depths.contains(&d), "depth {d}");
        }
        assert_eq!(linear.block_depth(&Point2::new(-1.0, 0.0)), None);
    }

    #[test]
    fn block_points_returns_the_leaf_contents() {
        let tree = PrQuadtree::build(
            Rect::unit(),
            2,
            [
                Point2::new(0.1, 0.1),
                Point2::new(0.15, 0.12),
                Point2::new(0.9, 0.9),
            ],
        )
        .unwrap();
        let linear = LinearQuadtree::from_tree(&tree).unwrap();
        let blk = linear.block_points(&Point2::new(0.12, 0.11));
        assert_eq!(blk.len(), 2);
        assert!(linear.block_points(&Point2::new(5.0, 5.0)).is_empty());
    }

    #[test]
    fn range_query_matches_pointer_tree() {
        let (tree, linear) = build_pair(600, 2, 5);
        for rect in [
            Rect::from_bounds(0.1, 0.2, 0.5, 0.9),
            Rect::from_bounds(0.0, 0.0, 1.0, 1.0),
            Rect::from_bounds(0.48, 0.48, 0.52, 0.52),
            Rect::from_bounds(0.9, 0.9, 0.95, 0.95),
        ] {
            let mut a = linear.range_query(&rect);
            let mut b = tree.range_query(&rect);
            a.sort_by(Point2::canonical_cmp);
            b.sort_by(Point2::canonical_cmp);
            assert_eq!(a, b, "{rect}");
        }
    }

    #[test]
    fn count_in_range_matches_range_query() {
        let (tree, linear) = build_pair(900, 3, 9);
        let mut scratch = QueryScratch::new();
        for rect in [
            Rect::from_bounds(0.0, 0.0, 1.0, 1.0),
            Rect::from_bounds(0.1, 0.2, 0.5, 0.9),
            Rect::from_bounds(0.25, 0.25, 0.75, 0.75),
            Rect::from_bounds(0.001, 0.001, 0.002, 0.002),
            Rect::from_bounds(0.5, 0.5, 0.500001, 0.500001),
        ] {
            assert_eq!(
                linear.count_in_range_with(&rect, &mut scratch),
                linear.range_query(&rect).len(),
                "{rect}"
            );
            assert_eq!(
                linear.count_in_range(&rect),
                tree.count_in_range(&rect),
                "{rect}"
            );
        }
    }

    #[test]
    fn range_query_outside_region_is_empty() {
        let (_, linear) = build_pair(100, 2, 6);
        assert!(linear
            .range_query(&Rect::from_bounds(2.0, 2.0, 3.0, 3.0))
            .is_empty());
        assert_eq!(
            linear.count_in_range(&Rect::from_bounds(2.0, 2.0, 3.0, 3.0)),
            0
        );
    }

    #[test]
    fn k_nearest_matches_sorted_scan() {
        let (tree, linear) = build_pair(400, 2, 7);
        let all = tree.points();
        for target in [
            Point2::new(0.3, 0.7),
            Point2::new(0.0, 0.0),
            Point2::new(2.0, -1.0), // outside the region
        ] {
            for k in [0usize, 1, 5, 50, 400, 500] {
                let got = linear.k_nearest(&target, k);
                let mut expect: Vec<(f64, Point2)> = all
                    .iter()
                    .map(|p| (p.distance_squared(&target), *p))
                    .collect();
                expect.sort_by(knn_cmp);
                expect.truncate(k);
                let expect: Vec<Point2> = expect.into_iter().map(|(_, p)| p).collect();
                assert_eq!(got.len(), expect.len(), "k={k}");
                for (g, e) in got.iter().zip(&expect) {
                    assert_eq!(g.x.to_bits(), e.x.to_bits(), "target {target} k={k}");
                    assert_eq!(g.y.to_bits(), e.y.to_bits(), "target {target} k={k}");
                }
            }
        }
    }

    #[test]
    fn k_nearest_breaks_coincident_ties_canonically() {
        // A pile of coincident points plus an equidistant ring: the
        // canonical order must pick the same winners every time.
        let pts = [
            Point2::new(0.5, 0.5),
            Point2::new(0.5, 0.5),
            Point2::new(0.5, 0.5),
            Point2::new(0.4, 0.5), // distance 0.1 (west)
            Point2::new(0.6, 0.5), // distance 0.1 (east)
            Point2::new(0.5, 0.4), // distance 0.1 (south)
            Point2::new(0.5, 0.6), // distance 0.1 (north)
        ];
        let tree = PrQuadtree::build(Rect::unit(), 1, pts).unwrap();
        let linear = LinearQuadtree::from_tree(&tree).unwrap();
        let got = linear.k_nearest(&Point2::new(0.5, 0.5), 5);
        // Three coincident points first, then the two canonically
        // smallest ring points: (0.4,0.5) before (0.5,0.4).
        assert_eq!(got.len(), 5);
        assert_eq!(got[0], Point2::new(0.5, 0.5));
        assert_eq!(got[1], Point2::new(0.5, 0.5));
        assert_eq!(got[2], Point2::new(0.5, 0.5));
        assert_eq!(got[3], Point2::new(0.4, 0.5));
        assert_eq!(got[4], Point2::new(0.5, 0.4));
    }

    #[test]
    fn into_variants_reuse_buffers() {
        let (_, linear) = build_pair(500, 4, 8);
        let mut scratch = QueryScratch::new();
        let mut out = Vec::new();
        let q = Rect::from_bounds(0.2, 0.2, 0.8, 0.8);
        linear.range_query_into(&q, &mut scratch, &mut out);
        let first = out.clone();
        linear.range_query_into(&q, &mut scratch, &mut out);
        assert_eq!(first, out, "repeat query must be identical");
        linear.k_nearest_into(&Point2::new(0.5, 0.5), 10, &mut scratch, &mut out);
        assert_eq!(out.len(), 10);
    }

    #[test]
    fn footprint_is_reported() {
        let (_, linear) = build_pair(1000, 4, 7);
        let bytes = linear.heap_bytes();
        assert!(bytes > 0);
        // Flat arrays: points (16 bytes each), leaves ~32 bytes, blocks 32.
        assert!(bytes < 1000 * 16 + linear.leaf_count() * 96 + 1024);
    }

    #[test]
    fn leaf_blocks_are_exposed_in_morton_order() {
        let (_, linear) = build_pair(200, 2, 11);
        for i in 0..linear.leaf_count() {
            let b = linear.leaf_block(i);
            assert!(Rect::unit().contains_rect(&b));
        }
    }

    #[test]
    fn footprint_accounts_every_slab_exactly() {
        let (_, linear) = build_pair(777, 3, 12);
        let fp = linear.footprint();
        // The freeze shrinks the slabs, so capacity == live length and
        // the accounting is exact per slab.
        assert_eq!(
            fp.points,
            linear.len() * std::mem::size_of::<Point2>(),
            "point slab"
        );
        assert_eq!(
            fp.blocks,
            linear.leaf_count() * std::mem::size_of::<Rect>(),
            "block slab"
        );
        assert_eq!(
            fp.leaves,
            linear.leaf_count() * std::mem::size_of::<LeafEntry>(),
            "leaf slab"
        );
        assert_eq!(linear.heap_bytes(), fp.total());
    }

    #[test]
    fn section_digests_localize_damage() {
        let (_, linear) = build_pair(300, 2, 13);
        let clean = linear.section_digests();
        assert_eq!(clean, linear.section_digests(), "digests are pure");

        for (section, bit) in [
            (SnapshotSection::Leaves, 7u64),
            (SnapshotSection::Blocks, 1_000_003),
            (SnapshotSection::Points, 42),
        ] {
            let mut damaged = linear.clone();
            assert!(damaged.corrupt_slab_bit(section, bit));
            let d = damaged.section_digests();
            let changed = |s: SnapshotSection| match s {
                SnapshotSection::Leaves => d.leaves != clean.leaves,
                SnapshotSection::Blocks => d.blocks != clean.blocks,
                SnapshotSection::Points => d.points != clean.points,
            };
            for probe in [
                SnapshotSection::Leaves,
                SnapshotSection::Blocks,
                SnapshotSection::Points,
            ] {
                assert_eq!(
                    changed(probe),
                    probe == section,
                    "corrupting {section} must change exactly that digest ({probe})"
                );
            }
            assert_ne!(d.combined, clean.combined, "{section}");
        }
    }

    #[test]
    fn corrupting_an_empty_section_is_a_no_op() {
        let tree = PrQuadtree::new(Rect::unit(), 1).unwrap();
        let mut linear = LinearQuadtree::from_tree(&tree).unwrap();
        assert!(!linear.corrupt_slab_bit(SnapshotSection::Points, 5));
        // Leaves/blocks always hold at least the root record.
        assert!(linear.corrupt_slab_bit(SnapshotSection::Leaves, 5));
    }

    #[test]
    fn unbounded_budget_reproduces_the_full_answers() {
        let (_, linear) = build_pair(800, 3, 14);
        let budget = CostBudget::unbounded();
        let mut scratch = QueryScratch::new();
        let mut bounded = Vec::new();
        for rect in [
            Rect::from_bounds(0.1, 0.2, 0.5, 0.9),
            Rect::from_bounds(0.0, 0.0, 1.0, 1.0),
            Rect::from_bounds(0.48, 0.48, 0.52, 0.52),
        ] {
            let outcome =
                linear.range_query_bounded_into(&rect, &budget, &mut scratch, &mut bounded);
            assert!(outcome.is_complete(), "{rect}");
            assert!(outcome.visited().leaf_visits > 0);
            let mut full = linear.range_query(&rect);
            full.sort_by(Point2::canonical_cmp);
            assert_eq!(bounded, full, "{rect}");
            let (count, c_outcome) =
                linear.count_in_range_bounded_with(&rect, &budget, &mut scratch);
            assert!(c_outcome.is_complete());
            assert_eq!(count, full.len(), "{rect}");
        }
        let target = Point2::new(0.3, 0.7);
        let outcome =
            linear.k_nearest_bounded_into(&target, 25, &budget, &mut scratch, &mut bounded);
        assert!(outcome.is_complete());
        assert_eq!(bounded, linear.k_nearest(&target, 25));
    }

    #[test]
    fn partial_range_is_a_canonical_prefix() {
        let (_, linear) = build_pair(600, 2, 15);
        let rect = Rect::from_bounds(0.05, 0.05, 0.95, 0.95);
        let mut full = linear.range_query(&rect);
        full.sort_by(Point2::canonical_cmp);
        let mut scratch = QueryScratch::new();
        let mut partial = Vec::new();
        // Tight and loose budgets, all in leaf visits.
        for leaf_budget in [1u64, 3, 10, 50] {
            let budget = CostBudget::new(leaf_budget, u64::MAX);
            let outcome =
                linear.range_query_bounded_into(&rect, &budget, &mut scratch, &mut partial);
            assert_eq!(&full[..partial.len()], &partial[..], "budget {leaf_budget}");
            if let BoundedOutcome::Partial { visited, .. } = outcome {
                assert!(visited.leaf_visits <= leaf_budget);
            }
            let (count, _) = linear.count_in_range_bounded_with(&rect, &budget, &mut scratch);
            assert_eq!(count, partial.len(), "count tracks the trimmed prefix");
        }
    }

    #[test]
    fn partial_knn_is_a_prefix_of_the_true_answer() {
        let (_, linear) = build_pair(500, 2, 16);
        let target = Point2::new(0.41, 0.57);
        let full = linear.k_nearest(&target, 40);
        let mut scratch = QueryScratch::new();
        let mut partial = Vec::new();
        for point_budget in [4u64, 16, 64, 256] {
            let budget = CostBudget::new(u64::MAX, point_budget);
            let outcome =
                linear.k_nearest_bounded_into(&target, 40, &budget, &mut scratch, &mut partial);
            assert_eq!(
                &full[..partial.len()],
                &partial[..],
                "budget {point_budget}"
            );
            if let BoundedOutcome::Partial {
                visited,
                truncated_spans,
            } = outcome
            {
                assert!(visited.point_visits <= point_budget);
                assert!(truncated_spans > 0);
            }
        }
    }

    #[test]
    fn try_from_reference_conversion() {
        let (tree, _) = build_pair(50, 1, 8);
        let linear: LinearQuadtree = (&tree).try_into().unwrap();
        assert_eq!(linear.len(), 50);
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use popan_proptest::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(48))]

        #[test]
        fn linear_and_pointer_trees_agree(
            raw in popan_proptest::collection::vec((0.0f64..1.0, 0.0f64..1.0), 0..120),
            capacity in 1usize..5,
            probe in popan_proptest::collection::vec((0.0f64..1.0, 0.0f64..1.0), 10),
        ) {
            let points: Vec<Point2> = raw.iter().map(|&(x, y)| Point2::new(x, y)).collect();
            let tree = PrQuadtree::build(Rect::unit(), capacity, points).unwrap();
            let linear = LinearQuadtree::from_tree(&tree).unwrap();
            linear.check_invariants();
            for &(x, y) in &probe {
                let p = Point2::new(x, y);
                prop_assert_eq!(linear.contains(&p), tree.contains(&p));
            }
        }

        #[test]
        fn range_and_count_agree_with_scan(
            raw in popan_proptest::collection::vec((0.0f64..1.0, 0.0f64..1.0), 0..150),
            capacity in 1usize..5,
            qx in 0.0f64..0.8,
            qy in 0.0f64..0.8,
            qw in 0.01f64..0.3,
        ) {
            let points: Vec<Point2> = raw.iter().map(|&(x, y)| Point2::new(x, y)).collect();
            let tree = PrQuadtree::build(Rect::unit(), capacity, points.iter().copied()).unwrap();
            let linear = LinearQuadtree::from_tree(&tree).unwrap();
            let query = Rect::from_bounds(qx, qy, qx + qw, qy + qw);
            let expect: Vec<&Point2> = points.iter().filter(|p| query.contains(p)).collect();
            let mut got = linear.range_query(&query);
            got.sort_by(Point2::canonical_cmp);
            let mut expect_sorted: Vec<Point2> = expect.iter().copied().copied().collect();
            expect_sorted.sort_by(Point2::canonical_cmp);
            prop_assert_eq!(got, expect_sorted);
            prop_assert_eq!(linear.count_in_range(&query), expect.len());
        }

        #[test]
        fn knn_matches_exhaustive_selection(
            raw in popan_proptest::collection::vec((0.0f64..1.0, 0.0f64..1.0), 1..100),
            tx in 0.0f64..1.0,
            ty in 0.0f64..1.0,
            k in 1usize..12,
        ) {
            let points: Vec<Point2> = raw.iter().map(|&(x, y)| Point2::new(x, y)).collect();
            let tree = PrQuadtree::build(Rect::unit(), 2, points.iter().copied()).unwrap();
            let linear = LinearQuadtree::from_tree(&tree).unwrap();
            let target = Point2::new(tx, ty);
            let got = linear.k_nearest(&target, k);
            let mut expect: Vec<(f64, Point2)> = points
                .iter()
                .map(|p| (p.distance_squared(&target), *p))
                .collect();
            expect.sort_by(knn_cmp);
            expect.truncate(k);
            prop_assert_eq!(got.len(), expect.len());
            for (g, (_, e)) in got.iter().zip(&expect) {
                prop_assert_eq!(g.x.to_bits(), e.x.to_bits());
                prop_assert_eq!(g.y.to_bits(), e.y.to_bits());
            }
        }
    }
}
