//! The PMR quadtree for line segments.
//!
//! The paper's companion analysis \[Nels86a/b\] applies population analysis
//! to this structure. The PMR quadtree differs from the PR quadtree in two
//! ways:
//!
//! * a segment is stored in **every** leaf whose block it passes through;
//! * the splitting rule is **split once**: when inserting a segment into a
//!   leaf pushes that leaf's count above the threshold `m`, the leaf is
//!   split a single time and its segments redistributed — children are
//!   *not* split further during the same insertion, so leaf occupancy can
//!   exceed `m` (with geometrically decaying probability).
//!
//! This "probabilistic" rule guarantees termination even when many
//! segments meet at a point, which the PR rule cannot.

use crate::node_stats::{LeafRecord, OccupancyInstrumented};
use crate::pr_quadtree::TreeError;
use popan_geom::{Quadrant, Rect, Segment2};

/// Default depth limit.
pub const DEFAULT_MAX_DEPTH: u32 = 32;

/// A segment with its insertion id (for deduplicating query results —
/// one segment lives in many leaves).
#[derive(Debug, Clone, Copy, PartialEq)]
struct Entry {
    id: u32,
    segment: Segment2,
}

#[derive(Debug, Clone)]
enum Node {
    Leaf(Vec<Entry>),
    Internal(Box<[Node; 4]>),
}

impl Node {
    fn empty_leaf() -> Node {
        Node::Leaf(Vec::new())
    }
}

/// A PMR quadtree with splitting threshold `m`.
#[derive(Debug, Clone)]
pub struct PmrQuadtree {
    root: Node,
    region: Rect,
    threshold: usize,
    max_depth: u32,
    len: usize,
    /// Incrementally maintained leaf-node count: starts at 1 (the root
    /// leaf) and each split-once turns one leaf into four (+3).
    leaf_nodes: usize,
}

impl PmrQuadtree {
    /// Creates an empty PMR quadtree over `region` with splitting
    /// threshold `threshold`.
    pub fn new(region: Rect, threshold: usize) -> Result<Self, TreeError> {
        Self::with_max_depth(region, threshold, DEFAULT_MAX_DEPTH)
    }

    /// Creates an empty tree with an explicit depth limit.
    pub fn with_max_depth(
        region: Rect,
        threshold: usize,
        max_depth: u32,
    ) -> Result<Self, TreeError> {
        if threshold == 0 {
            return Err(TreeError::InvalidParameter(
                "splitting threshold must be at least 1".into(),
            ));
        }
        Ok(PmrQuadtree {
            root: Node::empty_leaf(),
            region,
            threshold,
            max_depth,
            len: 0,
            leaf_nodes: 1,
        })
    }

    /// Builds a tree by inserting `segments` in order.
    pub fn build(
        region: Rect,
        threshold: usize,
        segments: impl IntoIterator<Item = Segment2>,
    ) -> Result<Self, TreeError> {
        let mut t = Self::new(region, threshold)?;
        for s in segments {
            t.insert(s)?;
        }
        Ok(t)
    }

    /// The region covered.
    pub fn region(&self) -> Rect {
        self.region
    }

    /// Number of distinct segments inserted.
    pub fn len(&self) -> usize {
        self.len
    }

    /// `true` when no segments are stored.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Inserts a segment. Errors if it does not pass through the region.
    pub fn insert(&mut self, segment: Segment2) -> Result<(), TreeError> {
        if !segment.crosses_rect(&self.region) {
            return Err(TreeError::InvalidParameter(format!(
                "segment {segment} does not pass through the tree region"
            )));
        }
        let entry = Entry {
            id: self.len as u32,
            segment,
        };
        let mut splits = 0usize;
        Self::insert_rec(
            &mut self.root,
            self.region,
            0,
            self.max_depth,
            self.threshold,
            entry,
            &mut splits,
        );
        self.len += 1;
        // Each split replaces one leaf with an internal and 4 leaves.
        self.leaf_nodes += 3 * splits;
        Ok(())
    }

    #[allow(clippy::too_many_arguments)]
    fn insert_rec(
        node: &mut Node,
        block: Rect,
        depth: u32,
        max_depth: u32,
        threshold: usize,
        entry: Entry,
        splits: &mut usize,
    ) {
        match node {
            Node::Internal(children) => {
                for (i, child) in children.iter_mut().enumerate() {
                    let child_block = block.quadrant(Quadrant::from_index(i));
                    if entry.segment.crosses_rect(&child_block) {
                        Self::insert_rec(
                            child,
                            child_block,
                            depth + 1,
                            max_depth,
                            threshold,
                            entry,
                            splits,
                        );
                    }
                }
            }
            Node::Leaf(entries) => {
                entries.push(entry);
                // Split-once rule: the threshold must be *exceeded* by the
                // insertion, and the split is not applied recursively.
                if entries.len() > threshold && depth < max_depth {
                    Self::split_leaf_once(node, block);
                    *splits += 1;
                }
            }
        }
    }

    /// Splits a leaf exactly once, redistributing entries into the
    /// quadrants their segments cross. No recursion: over-full children
    /// are allowed and will split on a later insertion.
    fn split_leaf_once(node: &mut Node, block: Rect) {
        let entries = match std::mem::replace(node, Node::empty_leaf()) {
            Node::Leaf(entries) => entries,
            Node::Internal(_) => unreachable!("split_leaf_once on internal node"),
        };
        let mut children = Box::new([
            Node::empty_leaf(),
            Node::empty_leaf(),
            Node::empty_leaf(),
            Node::empty_leaf(),
        ]);
        for entry in entries {
            for (i, child) in children.iter_mut().enumerate() {
                let child_block = block.quadrant(Quadrant::from_index(i));
                if entry.segment.crosses_rect(&child_block) {
                    match child {
                        Node::Leaf(v) => v.push(entry),
                        Node::Internal(_) => unreachable!(),
                    }
                }
            }
        }
        *node = Node::Internal(children);
    }

    /// All distinct segments passing through `query`, in insertion order.
    pub fn segments_crossing(&self, query: &Rect) -> Vec<Segment2> {
        let mut hits: Vec<(u32, Segment2)> = Vec::new();
        Self::query_rec(&self.root, self.region, query, &mut hits);
        hits.sort_by_key(|(id, _)| *id);
        hits.dedup_by_key(|(id, _)| *id);
        hits.into_iter()
            .filter(|(_, s)| s.crosses_rect(query))
            .map(|(_, s)| s)
            .collect()
    }

    fn query_rec(node: &Node, block: Rect, query: &Rect, out: &mut Vec<(u32, Segment2)>) {
        if !block.overlaps(query) {
            return;
        }
        match node {
            Node::Leaf(entries) => {
                out.extend(entries.iter().map(|e| (e.id, e.segment)));
            }
            Node::Internal(children) => {
                for (i, child) in children.iter().enumerate() {
                    Self::query_rec(child, block.quadrant(Quadrant::from_index(i)), query, out);
                }
            }
        }
    }

    /// Total node count (internal + leaf).
    pub fn node_count(&self) -> usize {
        fn walk(node: &Node) -> usize {
            match node {
                Node::Leaf(_) => 1,
                Node::Internal(children) => 1 + children.iter().map(walk).sum::<usize>(),
            }
        }
        walk(&self.root)
    }

    /// Leaf node count — served from the incrementally maintained
    /// counter, no traversal.
    pub fn leaf_count(&self) -> usize {
        self.leaf_nodes
    }

    /// Verifies structural invariants; panics on violation.
    ///
    /// Every stored entry's segment crosses its leaf's block, and every
    /// inserted segment is present in every leaf it crosses.
    pub fn check_invariants(&self) {
        // Gather every leaf with its block and entries.
        fn walk<'a>(node: &'a Node, block: Rect, out: &mut Vec<(Rect, &'a [Entry])>) {
            match node {
                Node::Leaf(entries) => out.push((block, entries)),
                Node::Internal(children) => {
                    for (i, child) in children.iter().enumerate() {
                        walk(child, block.quadrant(Quadrant::from_index(i)), out);
                    }
                }
            }
        }
        let mut leaves: Vec<(Rect, &[Entry])> = Vec::new();
        walk(&self.root, self.region, &mut leaves);
        assert_eq!(
            leaves.len(),
            self.leaf_nodes,
            "incremental leaf count diverged from traversal"
        );

        // Each stored entry crosses its leaf's block.
        let mut by_id: std::collections::BTreeMap<u32, Segment2> =
            std::collections::BTreeMap::new();
        for (block, entries) in &leaves {
            for e in *entries {
                assert!(
                    e.segment.crosses_rect(block),
                    "segment {} stored in leaf {} it does not cross",
                    e.segment,
                    block
                );
                by_id.insert(e.id, e.segment);
            }
        }
        assert_eq!(by_id.len(), self.len, "distinct stored ids != len");

        // Coverage: every segment is present in *every* leaf it crosses.
        for (&id, segment) in &by_id {
            for (block, entries) in &leaves {
                let crosses = segment.crosses_rect(block);
                let present = entries.iter().any(|e| e.id == id);
                assert_eq!(
                    crosses, present,
                    "segment {segment} (id {id}) crosses={crosses} present={present} in leaf {block}"
                );
            }
        }
    }
}

impl OccupancyInstrumented for PmrQuadtree {
    fn capacity(&self) -> usize {
        self.threshold
    }

    fn leaf_records(&self) -> Vec<LeafRecord> {
        fn walk(node: &Node, depth: u32, out: &mut Vec<LeafRecord>) {
            match node {
                Node::Leaf(entries) => out.push(LeafRecord {
                    depth,
                    occupancy: entries.len(),
                }),
                Node::Internal(children) => {
                    for child in children.iter() {
                        walk(child, depth + 1, out);
                    }
                }
            }
        }
        let mut out = Vec::new();
        walk(&self.root, 0, &mut out);
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use popan_geom::Point2;
    use popan_rng::rngs::StdRng;
    use popan_rng::SeedableRng;
    use popan_workload::lines::{SegmentSource, UniformEndpoints};

    fn seg(ax: f64, ay: f64, bx: f64, by: f64) -> Segment2 {
        Segment2::new(Point2::new(ax, ay), Point2::new(bx, by))
    }

    #[test]
    fn empty_tree() {
        let t = PmrQuadtree::new(Rect::unit(), 2).unwrap();
        assert!(t.is_empty());
        assert_eq!(t.node_count(), 1);
        assert!(PmrQuadtree::new(Rect::unit(), 0).is_err());
    }

    #[test]
    fn rejects_segment_outside_region() {
        let mut t = PmrQuadtree::new(Rect::unit(), 2).unwrap();
        assert!(t.insert(seg(2.0, 2.0, 3.0, 3.0)).is_err());
        assert_eq!(t.len(), 0);
    }

    #[test]
    fn below_threshold_no_split() {
        let mut t = PmrQuadtree::new(Rect::unit(), 2).unwrap();
        t.insert(seg(0.1, 0.1, 0.9, 0.1)).unwrap();
        t.insert(seg(0.1, 0.2, 0.9, 0.2)).unwrap();
        assert_eq!(t.node_count(), 1);
        t.check_invariants();
    }

    #[test]
    fn exceeding_threshold_splits_once() {
        let mut t = PmrQuadtree::new(Rect::unit(), 2).unwrap();
        // Three long horizontal segments through the lower half.
        t.insert(seg(0.1, 0.1, 0.9, 0.1)).unwrap();
        t.insert(seg(0.1, 0.2, 0.9, 0.2)).unwrap();
        t.insert(seg(0.1, 0.3, 0.9, 0.3)).unwrap();
        // Root split exactly once: 5 nodes, children may exceed threshold.
        assert_eq!(t.node_count(), 5);
        // Each lower child holds all three segments (> threshold, allowed).
        let profile = t.occupancy_profile();
        assert_eq!(profile.count(3), 2, "SW and SE each hold 3 segments");
        assert_eq!(profile.count(0), 2, "NW and NE empty");
        t.check_invariants();
    }

    #[test]
    fn later_insertion_splits_overfull_child() {
        let mut t = PmrQuadtree::new(Rect::unit(), 2).unwrap();
        for y in [0.1, 0.2, 0.3] {
            t.insert(seg(0.1, y, 0.9, y)).unwrap();
        }
        let before = t.node_count();
        // A fourth segment through the SW child triggers its split.
        t.insert(seg(0.05, 0.15, 0.45, 0.15)).unwrap();
        assert!(t.node_count() > before);
        t.check_invariants();
    }

    #[test]
    fn segments_stored_in_all_crossed_leaves() {
        let mut t = PmrQuadtree::new(Rect::unit(), 1).unwrap();
        t.insert(seg(0.1, 0.6, 0.4, 0.9)).unwrap(); // NW only
        t.insert(seg(0.05, 0.05, 0.95, 0.06)).unwrap(); // crosses SW+SE, splits root
        t.check_invariants();
        let hits = t.segments_crossing(&Rect::from_bounds(0.5, 0.0, 1.0, 0.5));
        assert_eq!(hits.len(), 1);
        assert_eq!(hits[0], seg(0.05, 0.05, 0.95, 0.06));
    }

    #[test]
    fn query_deduplicates_multi_leaf_segments() {
        let mut t = PmrQuadtree::new(Rect::unit(), 1).unwrap();
        let long = seg(0.05, 0.5001, 0.95, 0.5001);
        t.insert(long).unwrap();
        t.insert(seg(0.1, 0.1, 0.2, 0.2)).unwrap();
        // The long segment lives in NW and NE (after split); a query
        // covering the whole region must return it once.
        let hits = t.segments_crossing(&Rect::unit());
        assert_eq!(hits.len(), 2);
    }

    #[test]
    fn many_segments_through_one_point_terminate() {
        // The PR rule would recurse forever here; the PMR split-once rule
        // must terminate with bounded depth growth.
        let mut t = PmrQuadtree::new(Rect::unit(), 2).unwrap();
        let center = Point2::new(0.5001, 0.5001);
        for i in 0..12 {
            let angle = i as f64 * std::f64::consts::PI / 12.0;
            let (s, c) = angle.sin_cos();
            let tip = Point2::new(center.x + 0.4 * c, center.y + 0.4 * s);
            t.insert(Segment2::new(center, tip)).unwrap();
        }
        assert_eq!(t.len(), 12);
        t.check_invariants();
        let max_depth = t.leaf_records().iter().map(|r| r.depth).max().unwrap();
        assert!(max_depth <= 12, "depth {max_depth} should stay bounded");
    }

    #[test]
    fn random_build_invariants_and_occupancy_decay() {
        let src = UniformEndpoints::unit();
        let mut rng = StdRng::seed_from_u64(99);
        let segs = src.sample_n(&mut rng, 150);
        let t = PmrQuadtree::build(Rect::unit(), 4, segs).unwrap();
        t.check_invariants();
        let profile = t.occupancy_profile();
        // Occupancy above threshold is possible but must be rare:
        // P(occupancy = threshold + k) decays with k.
        let above: u64 = (6..=profile.max_occupancy())
            .map(|i| profile.count(i))
            .sum();
        let total = profile.total_leaves();
        assert!(
            (above as f64) < 0.25 * total as f64,
            "{above} of {total} leaves far above threshold"
        );
        // Queries agree with a linear scan.
        let query = Rect::from_bounds(0.3, 0.3, 0.7, 0.7);
        let hits = t.segments_crossing(&query);
        for h in &hits {
            assert!(h.crosses_rect(&query));
        }
    }

    #[test]
    fn query_matches_linear_scan() {
        let src = UniformEndpoints::unit();
        let mut rng = StdRng::seed_from_u64(101);
        let segs = src.sample_n(&mut rng, 120);
        let t = PmrQuadtree::build(Rect::unit(), 3, segs.iter().copied()).unwrap();
        let query = Rect::from_bounds(0.25, 0.1, 0.6, 0.55);
        let got = t.segments_crossing(&query).len();
        let expect = segs.iter().filter(|s| s.crosses_rect(&query)).count();
        assert_eq!(got, expect);
    }
}
