//! The generalized PR quadtree for point data.
//!
//! Regular decomposition of a square region into quadrants with the
//! paper's splitting rule: *"split until no block contains more than m
//! points"* (§II). `m = 1` gives the simple PR quadtree of Figure 1;
//! larger `m` gives the generalized (bucket) PR quadtree whose occupancy
//! populations the paper analyzes.
//!
//! # Semantics
//!
//! * The tree covers a fixed region; inserting a point outside it is an
//!   error (regular decomposition has "pre-defined boundaries").
//! * Points are a multiset: exact duplicates are stored. Since coincident
//!   points can never be separated by splitting, a leaf whose points are
//!   all coincident is not split further (and a `max_depth` bound caps
//!   pathological near-duplicates, reproducing the paper's
//!   depth-truncation artifact when set low).
//! * Leaves at `max_depth` may exceed the capacity.
//!
//! # Representation
//!
//! Nodes live in a contiguous arena ([`crate::arena`], `u32` slot ids,
//! free-list reuse on remove-collapse) and the occupancy census is
//! maintained incrementally, so [`PrQuadtree::occupancy_profile`],
//! [`PrQuadtree::depth_table`] and [`PrQuadtree::leaf_count`] are
//! zero-allocation O(m) reads instead of full traversals. Leaf traversal
//! order (NW→SE pre-order) and every floating-point result are
//! bit-identical to the original boxed implementation, which survives as
//! [`crate::reference::BoxedPrQuadtree`] — the equivalence-test oracle.

use crate::arena::{ArenaTree, QuadDecomp, SlotView, ROOT};
use crate::node_stats::{DepthOccupancyTable, LeafRecord, OccupancyInstrumented, OccupancyProfile};
use popan_geom::{Point2, Quadrant, Rect};

/// Default depth limit: effectively unbounded for the workloads here, but
/// protects against coincident-point pathologies.
pub const DEFAULT_MAX_DEPTH: u32 = 32;

/// Error type for tree operations.
#[derive(Debug, Clone, PartialEq)]
pub enum TreeError {
    /// The point lies outside the tree's region.
    OutOfRegion {
        /// The offending point.
        point: Point2,
    },
    /// The point has a non-finite coordinate.
    NonFinitePoint,
    /// Invalid construction parameter.
    InvalidParameter(String),
}

impl std::fmt::Display for TreeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TreeError::OutOfRegion { point } => {
                write!(f, "point {point} lies outside the tree region")
            }
            TreeError::NonFinitePoint => write!(f, "point has a non-finite coordinate"),
            TreeError::InvalidParameter(msg) => write!(f, "invalid parameter: {msg}"),
        }
    }
}

impl std::error::Error for TreeError {}

/// A generalized PR quadtree with node capacity `m`.
#[derive(Debug, Clone)]
pub struct PrQuadtree {
    tree: ArenaTree<QuadDecomp>,
}

impl PrQuadtree {
    /// Creates an empty tree over `region` with node capacity `capacity`
    /// and the default depth limit.
    pub fn new(region: Rect, capacity: usize) -> Result<Self, TreeError> {
        Self::with_max_depth(region, capacity, DEFAULT_MAX_DEPTH)
    }

    /// Creates an empty tree with an explicit depth limit.
    ///
    /// The paper's implementation "truncates the tree at that depth
    /// (9)"; passing `max_depth = 9` reproduces its Table 3 artifact.
    pub fn with_max_depth(
        region: Rect,
        capacity: usize,
        max_depth: u32,
    ) -> Result<Self, TreeError> {
        if capacity == 0 {
            return Err(TreeError::InvalidParameter(
                "node capacity must be at least 1".into(),
            ));
        }
        Ok(PrQuadtree {
            tree: ArenaTree::new(region, capacity, max_depth),
        })
    }

    /// Builds a tree by inserting `points` in order.
    pub fn build(
        region: Rect,
        capacity: usize,
        points: impl IntoIterator<Item = Point2>,
    ) -> Result<Self, TreeError> {
        let mut t = Self::new(region, capacity)?;
        let mut pts = Vec::new();
        for p in points {
            if !p.is_finite() {
                return Err(TreeError::NonFinitePoint);
            }
            if !t.region().contains(&p) {
                return Err(TreeError::OutOfRegion { point: p });
            }
            pts.push(p);
        }
        // Bulk construction: bit-identical to sequential inserts (see
        // `ArenaTree::bulk_fill`), but streams points level by level
        // instead of descending per point.
        t.tree.bulk_fill(pts);
        Ok(t)
    }

    /// [`PrQuadtree::build`] with an explicit depth limit.
    pub fn build_with_max_depth(
        region: Rect,
        capacity: usize,
        max_depth: u32,
        points: impl IntoIterator<Item = Point2>,
    ) -> Result<Self, TreeError> {
        let mut t = Self::with_max_depth(region, capacity, max_depth)?;
        let pts = t.validate_points(points)?;
        t.tree.bulk_fill(pts);
        Ok(t)
    }

    /// Builds via the Morton-radix bottom-up bulk path: bit-identical
    /// to [`PrQuadtree::build`] (same errors, same tree, same census),
    /// but on grid-exact regions the points are quantized once and the
    /// tree is emitted from stable radix scatters with zero per-point
    /// descent. Non-grid-exact regions silently use the level-streaming
    /// bulk path instead.
    pub fn build_bottomup(
        region: Rect,
        capacity: usize,
        points: impl IntoIterator<Item = Point2>,
    ) -> Result<Self, TreeError> {
        let mut t = Self::new(region, capacity)?;
        t.tree.bulk_fill_bottomup(points.into_iter().collect())?;
        Ok(t)
    }

    fn validate_points(
        &self,
        points: impl IntoIterator<Item = Point2>,
    ) -> Result<Vec<Point2>, TreeError> {
        let mut pts = Vec::new();
        for p in points {
            if !p.is_finite() {
                return Err(TreeError::NonFinitePoint);
            }
            if !self.region().contains(&p) {
                return Err(TreeError::OutOfRegion { point: p });
            }
            pts.push(p);
        }
        Ok(pts)
    }

    /// The region covered.
    pub fn region(&self) -> Rect {
        self.tree.region()
    }

    /// The depth limit.
    pub fn max_depth(&self) -> u32 {
        self.tree.max_depth()
    }

    /// Number of stored points.
    pub fn len(&self) -> usize {
        self.tree.len()
    }

    /// `true` when no points are stored.
    pub fn is_empty(&self) -> bool {
        self.tree.is_empty()
    }

    /// Inserts a point, splitting per the PR rule.
    pub fn insert(&mut self, p: Point2) -> Result<(), TreeError> {
        if !p.is_finite() {
            return Err(TreeError::NonFinitePoint);
        }
        if !self.region().contains(&p) {
            return Err(TreeError::OutOfRegion { point: p });
        }
        self.tree.insert(p);
        Ok(())
    }

    /// Removes one stored instance of `p`. Returns `true` when a point
    /// was removed.
    ///
    /// Non-finite points are rejected outright (mirroring `insert` — they
    /// can never be stored, so there is nothing to remove and no reason
    /// to descend).
    ///
    /// After a removal, internal nodes whose children are all leaves and
    /// whose combined occupancy fits within the capacity are collapsed
    /// back into a single leaf, restoring the PR quadtree's minimality:
    /// the structure after deletions is exactly what building from the
    /// surviving point set produces (order-independence extends to
    /// deletion).
    pub fn remove(&mut self, p: &Point2) -> bool {
        if !p.is_finite() || !self.region().contains(p) {
            return false;
        }
        self.tree.remove(p)
    }

    /// `true` when an exactly equal point is stored.
    pub fn contains(&self, p: &Point2) -> bool {
        if !self.region().contains(p) {
            return false;
        }
        self.tree.contains(p)
    }

    /// All stored points inside `query` (half-open on both axes).
    pub fn range_query(&self, query: &Rect) -> Vec<Point2> {
        let mut out = Vec::new();
        self.range_rec(ROOT, self.region(), query, &mut out);
        out
    }

    fn range_rec(&self, slot: u32, block: Rect, query: &Rect, out: &mut Vec<Point2>) {
        if !block.overlaps(query) {
            return;
        }
        match self.tree.view(slot) {
            SlotView::Leaf(points) => {
                out.extend(points.iter().filter(|p| query.contains(p)).copied());
            }
            SlotView::Internal(base) => {
                for i in 0..4 {
                    self.range_rec(
                        base + i as u32,
                        block.quadrant(Quadrant::from_index(i)),
                        query,
                        out,
                    );
                }
            }
        }
    }

    /// Counts stored points inside `query` without materializing them.
    pub fn count_in_range(&self, query: &Rect) -> usize {
        self.count_rec(ROOT, self.region(), query)
    }

    fn count_rec(&self, slot: u32, block: Rect, query: &Rect) -> usize {
        if !block.overlaps(query) {
            return 0;
        }
        match self.tree.view(slot) {
            SlotView::Leaf(points) => points.iter().filter(|p| query.contains(p)).count(),
            SlotView::Internal(base) => {
                if query.contains_rect(&block) {
                    // Whole block inside the query: count everything.
                    return (0..4)
                        .map(|i| {
                            self.count_all(base + i as u32, block.quadrant(Quadrant::from_index(i)))
                        })
                        .sum();
                }
                (0..4)
                    .map(|i| {
                        self.count_rec(
                            base + i as u32,
                            block.quadrant(Quadrant::from_index(i)),
                            query,
                        )
                    })
                    .sum()
            }
        }
    }

    fn count_all(&self, slot: u32, block: Rect) -> usize {
        match self.tree.view(slot) {
            SlotView::Leaf(points) => points.len(),
            SlotView::Internal(base) => (0..4)
                .map(|i| self.count_all(base + i as u32, block.quadrant(Quadrant::from_index(i))))
                .sum(),
        }
    }

    /// The `k` stored points nearest to `target`, nearest first (fewer
    /// when the tree holds fewer than `k` points).
    ///
    /// Ordering and tie-breaking follow the query tier's canonical k-NN
    /// order ([`crate::linear_quadtree::knn_cmp`]: squared distance,
    /// then [`Point2::canonical_cmp`]), so the result is bit-identical
    /// to every other `Queryable` backend even on coincident piles and
    /// equidistant rings.
    pub fn k_nearest(&self, target: &Point2, k: usize) -> Vec<Point2> {
        if k == 0 {
            return Vec::new();
        }
        // Best list kept sorted ascending by the canonical order;
        // worst-first pruning.
        let mut best: Vec<(f64, Point2)> = Vec::with_capacity(k + 1);
        self.k_nearest_rec(ROOT, self.region(), target, k, &mut best);
        best.into_iter().map(|(_, p)| p).collect()
    }

    fn k_nearest_rec(
        &self,
        slot: u32,
        block: Rect,
        target: &Point2,
        k: usize,
        best: &mut Vec<(f64, Point2)>,
    ) {
        if best.len() == k {
            let worst = best.last().expect("non-empty at capacity").0;
            if Self::min_dist_squared(&block, target) > worst {
                return;
            }
        }
        match self.tree.view(slot) {
            SlotView::Leaf(points) => {
                use crate::linear_quadtree::knn_cmp;
                for p in points {
                    let cand = (p.distance_squared(target), *p);
                    if best.len() == k
                        && knn_cmp(&cand, &best[k - 1]) == std::cmp::Ordering::Greater
                    {
                        continue;
                    }
                    let pos =
                        best.partition_point(|e| knn_cmp(e, &cand) != std::cmp::Ordering::Greater);
                    best.insert(pos, cand);
                    if best.len() > k {
                        best.pop();
                    }
                }
            }
            SlotView::Internal(base) => {
                let mut order: Vec<(f64, usize)> = (0..4)
                    .map(|i| {
                        let b = block.quadrant(Quadrant::from_index(i));
                        (Self::min_dist_squared(&b, target), i)
                    })
                    .collect();
                order.sort_by(|a, b| a.0.partial_cmp(&b.0).expect("finite distances"));
                for (_, i) in order {
                    self.k_nearest_rec(
                        base + i as u32,
                        block.quadrant(Quadrant::from_index(i)),
                        target,
                        k,
                        best,
                    );
                }
            }
        }
    }

    /// The stored point nearest to `target` (ties broken arbitrarily);
    /// `None` when the tree is empty. `target` need not be in the region.
    pub fn nearest(&self, target: &Point2) -> Option<Point2> {
        let mut best: Option<(f64, Point2)> = None;
        self.nearest_rec(ROOT, self.region(), target, &mut best);
        best.map(|(_, p)| p)
    }

    fn nearest_rec(
        &self,
        slot: u32,
        block: Rect,
        target: &Point2,
        best: &mut Option<(f64, Point2)>,
    ) {
        // Prune blocks that cannot beat the current best.
        if let Some((best_d2, _)) = best {
            if Self::min_dist_squared(&block, target) > *best_d2 {
                return;
            }
        }
        match self.tree.view(slot) {
            SlotView::Leaf(points) => {
                for p in points {
                    let d2 = p.distance_squared(target);
                    if best.is_none_or(|(bd, _)| d2 < bd) {
                        *best = Some((d2, *p));
                    }
                }
            }
            SlotView::Internal(base) => {
                // Visit children nearest-first for tighter pruning.
                let mut order: Vec<(f64, usize)> = (0..4)
                    .map(|i| {
                        let b = block.quadrant(Quadrant::from_index(i));
                        (Self::min_dist_squared(&b, target), i)
                    })
                    .collect();
                order.sort_by(|a, b| a.0.partial_cmp(&b.0).expect("finite distances"));
                for (_, i) in order {
                    self.nearest_rec(
                        base + i as u32,
                        block.quadrant(Quadrant::from_index(i)),
                        target,
                        best,
                    );
                }
            }
        }
    }

    fn min_dist_squared(block: &Rect, p: &Point2) -> f64 {
        let dx = (block.x().lo() - p.x).max(p.x - block.x().hi()).max(0.0);
        let dy = (block.y().lo() - p.y).max(p.y - block.y().hi()).max(0.0);
        dx * dx + dy * dy
    }

    /// Total node count (internal + leaf) — O(1) pool accounting.
    pub fn node_count(&self) -> usize {
        self.tree.node_count()
    }

    /// Leaf node count — the paper's `nodes` column (its node counts are
    /// leaf counts: Table 4 reports 16.9 "nodes" for 64 points at m = 8).
    /// Served from the maintained census: O(1), no traversal.
    pub fn leaf_count(&self) -> usize {
        self.tree.census().leaf_count()
    }

    /// The occupancy profile, maintained incrementally — a
    /// zero-allocation, zero-traversal read.
    pub fn occupancy_profile(&self) -> &OccupancyProfile {
        self.tree.census().profile()
    }

    /// The per-depth occupancy table, maintained incrementally — a
    /// zero-allocation, zero-traversal read.
    pub fn depth_table(&self) -> &DepthOccupancyTable {
        self.tree.census().depth_table()
    }

    /// The full incremental census (profile + depth table + leaf count).
    pub fn census(&self) -> &crate::node_stats::OccupancyCensus {
        self.tree.census()
    }

    /// Visits every leaf with its block, depth and points.
    pub fn for_each_leaf(&self, mut f: impl FnMut(Rect, u32, &[Point2])) {
        self.tree
            .for_each_leaf(&mut |block, depth, points| f(*block, depth, points));
    }

    /// All stored points, in leaf order.
    pub fn points(&self) -> Vec<Point2> {
        let mut out = Vec::with_capacity(self.len());
        self.for_each_leaf(|_, _, pts| out.extend_from_slice(pts));
        out
    }

    /// Verifies structural invariants; panics with a description on
    /// violation. Test/diagnostic hook.
    ///
    /// Checks: point count consistency; every point inside its leaf block;
    /// no leaf above capacity unless at `max_depth` or all-coincident;
    /// arena pool accounting; and that the incremental census equals a
    /// census rebuilt from a full traversal.
    pub fn check_invariants(&self) {
        self.tree.check_invariants();
    }
}

impl OccupancyInstrumented for PrQuadtree {
    fn capacity(&self) -> usize {
        self.tree.capacity()
    }

    fn leaf_records(&self) -> Vec<LeafRecord> {
        self.tree.leaf_records()
    }

    fn occupancy_profile(&self) -> OccupancyProfile {
        self.tree.census().profile().clone()
    }

    fn depth_table(&self) -> DepthOccupancyTable {
        self.tree.census().depth_table().clone()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::node_stats::OccupancyInstrumented;
    use popan_rng::rngs::StdRng;
    use popan_rng::SeedableRng;
    use popan_workload::points::{PointSource, UniformRect};

    fn pt(x: f64, y: f64) -> Point2 {
        Point2::new(x, y)
    }

    #[test]
    fn empty_tree() {
        let t = PrQuadtree::new(Rect::unit(), 1).unwrap();
        assert!(t.is_empty());
        assert_eq!(t.len(), 0);
        assert_eq!(t.node_count(), 1);
        assert_eq!(t.leaf_count(), 1);
        assert_eq!(t.nearest(&pt(0.5, 0.5)), None);
        t.check_invariants();
    }

    #[test]
    fn rejects_zero_capacity() {
        assert!(matches!(
            PrQuadtree::new(Rect::unit(), 0),
            Err(TreeError::InvalidParameter(_))
        ));
    }

    #[test]
    fn rejects_out_of_region_and_non_finite() {
        let mut t = PrQuadtree::new(Rect::unit(), 1).unwrap();
        assert!(matches!(
            t.insert(pt(1.5, 0.5)),
            Err(TreeError::OutOfRegion { .. })
        ));
        assert!(matches!(
            t.insert(pt(f64::NAN, 0.5)),
            Err(TreeError::NonFinitePoint)
        ));
        assert_eq!(t.len(), 0);
    }

    #[test]
    fn remove_rejects_non_finite_points() {
        let mut t = PrQuadtree::new(Rect::unit(), 1).unwrap();
        t.insert(pt(0.5, 0.5)).unwrap();
        assert!(!t.remove(&pt(f64::NAN, 0.5)));
        assert!(!t.remove(&pt(0.5, f64::NAN)));
        assert!(!t.remove(&pt(f64::INFINITY, 0.5)));
        assert!(!t.remove(&pt(0.5, f64::NEG_INFINITY)));
        assert_eq!(t.len(), 1, "non-finite removals must be no-ops");
        t.check_invariants();
    }

    #[test]
    fn single_insert_no_split() {
        let mut t = PrQuadtree::new(Rect::unit(), 1).unwrap();
        t.insert(pt(0.3, 0.3)).unwrap();
        assert_eq!(t.len(), 1);
        assert_eq!(t.node_count(), 1);
        assert!(t.contains(&pt(0.3, 0.3)));
        assert!(!t.contains(&pt(0.3, 0.31)));
        t.check_invariants();
    }

    #[test]
    fn figure1_four_points() {
        // Four points in separate quadrants at m = 1: one split, 5 nodes.
        let mut t = PrQuadtree::new(Rect::unit(), 1).unwrap();
        for p in [pt(0.1, 0.1), pt(0.9, 0.1), pt(0.1, 0.9), pt(0.9, 0.9)] {
            t.insert(p).unwrap();
        }
        assert_eq!(t.node_count(), 5);
        assert_eq!(t.leaf_count(), 4);
        let profile = t.occupancy_profile();
        assert_eq!(profile.count(1), 4);
        assert_eq!(profile.count(0), 0);
        t.check_invariants();
    }

    #[test]
    fn close_points_force_recursive_splitting() {
        // Two points in the same deep quadrant chain: repeated splits.
        let mut t = PrQuadtree::new(Rect::unit(), 1).unwrap();
        t.insert(pt(0.01, 0.01)).unwrap();
        t.insert(pt(0.02, 0.02)).unwrap();
        // Both in SW repeatedly; they separate at depth 6
        // (block size 1/64: 0.01 -> cell 0, 0.02 -> cell 1 at scale 64).
        let records = t.leaf_records();
        let max_depth = records.iter().map(|r| r.depth).max().unwrap();
        assert!(max_depth >= 5, "expected deep split, got {max_depth}");
        assert!(t.contains(&pt(0.01, 0.01)));
        assert!(t.contains(&pt(0.02, 0.02)));
        t.check_invariants();
    }

    #[test]
    fn capacity_m_defers_split() {
        let mut t = PrQuadtree::new(Rect::unit(), 4).unwrap();
        for i in 0..4 {
            t.insert(pt(0.1 + 0.2 * i as f64, 0.5)).unwrap();
        }
        assert_eq!(t.node_count(), 1, "4 points fit in an m=4 root");
        t.insert(pt(0.9, 0.9)).unwrap();
        assert!(t.node_count() > 1, "5th point splits the m=4 root");
        t.check_invariants();
    }

    #[test]
    fn duplicates_are_stored_without_infinite_split() {
        let mut t = PrQuadtree::new(Rect::unit(), 1).unwrap();
        for _ in 0..5 {
            t.insert(pt(0.25, 0.25)).unwrap();
        }
        assert_eq!(t.len(), 5);
        // All coincident: no split should have happened.
        assert_eq!(t.node_count(), 1);
        t.check_invariants();
    }

    #[test]
    fn near_duplicates_respect_max_depth() {
        let mut t = PrQuadtree::with_max_depth(Rect::unit(), 1, 4).unwrap();
        t.insert(pt(0.100000, 0.1)).unwrap();
        t.insert(pt(0.100001, 0.1)).unwrap(); // separate only at depth ~20
        let records = t.leaf_records();
        assert!(records.iter().all(|r| r.depth <= 4));
        // The max-depth leaf holds both.
        assert!(records.iter().any(|r| r.occupancy == 2));
        t.check_invariants();
    }

    #[test]
    fn mixed_duplicate_and_distinct_points_split_correctly() {
        let mut t = PrQuadtree::new(Rect::unit(), 1).unwrap();
        t.insert(pt(0.25, 0.25)).unwrap();
        t.insert(pt(0.25, 0.25)).unwrap(); // coincident pair, no split
        t.insert(pt(0.75, 0.75)).unwrap(); // distinct: now splits
        assert_eq!(t.len(), 3);
        t.check_invariants();
        // The coincident pair stays together in one leaf.
        let profile = t.occupancy_profile();
        assert_eq!(profile.count(2), 1);
        assert_eq!(profile.count(1), 1);
    }

    #[test]
    fn contains_finds_all_inserted_points() {
        let src = UniformRect::unit();
        let mut rng = StdRng::seed_from_u64(11);
        let points = src.sample_n(&mut rng, 500);
        let t = PrQuadtree::build(Rect::unit(), 3, points.iter().copied()).unwrap();
        assert_eq!(t.len(), 500);
        for p in &points {
            assert!(t.contains(p));
        }
        assert!(!t.contains(&pt(2.0, 2.0)));
        t.check_invariants();
    }

    #[test]
    fn range_query_matches_linear_scan() {
        let src = UniformRect::unit();
        let mut rng = StdRng::seed_from_u64(13);
        let points = src.sample_n(&mut rng, 400);
        let t = PrQuadtree::build(Rect::unit(), 2, points.iter().copied()).unwrap();
        let query = Rect::from_bounds(0.2, 0.3, 0.6, 0.9);
        let mut got = t.range_query(&query);
        let mut expect: Vec<Point2> = points
            .iter()
            .filter(|p| query.contains(p))
            .copied()
            .collect();
        let key = |p: &Point2| (p.x, p.y);
        got.sort_by(|a, b| key(a).partial_cmp(&key(b)).unwrap());
        expect.sort_by(|a, b| key(a).partial_cmp(&key(b)).unwrap());
        assert_eq!(got, expect);
    }

    #[test]
    fn range_query_whole_region_returns_everything() {
        let src = UniformRect::unit();
        let mut rng = StdRng::seed_from_u64(17);
        let points = src.sample_n(&mut rng, 100);
        let t = PrQuadtree::build(Rect::unit(), 1, points.iter().copied()).unwrap();
        assert_eq!(t.range_query(&Rect::unit()).len(), 100);
        assert_eq!(t.points().len(), 100);
    }

    #[test]
    fn nearest_matches_linear_scan() {
        let src = UniformRect::unit();
        let mut rng = StdRng::seed_from_u64(19);
        let points = src.sample_n(&mut rng, 300);
        let t = PrQuadtree::build(Rect::unit(), 2, points.iter().copied()).unwrap();
        for target in src.sample_n(&mut rng, 50) {
            let got = t.nearest(&target).unwrap();
            let best = points
                .iter()
                .min_by(|a, b| {
                    a.distance_squared(&target)
                        .partial_cmp(&b.distance_squared(&target))
                        .unwrap()
                })
                .unwrap();
            assert_eq!(
                got.distance_squared(&target),
                best.distance_squared(&target),
                "target {target}"
            );
        }
    }

    #[test]
    fn nearest_works_for_targets_outside_region() {
        let t = PrQuadtree::build(Rect::unit(), 1, [pt(0.1, 0.1), pt(0.9, 0.9)]).unwrap();
        assert_eq!(t.nearest(&pt(2.0, 2.0)).unwrap(), pt(0.9, 0.9));
        assert_eq!(t.nearest(&pt(-1.0, -1.0)).unwrap(), pt(0.1, 0.1));
    }

    #[test]
    fn node_count_identity() {
        // Every split adds exactly 4 nodes: node_count = 1 + 4·splits.
        let src = UniformRect::unit();
        let mut rng = StdRng::seed_from_u64(23);
        let t = PrQuadtree::build(Rect::unit(), 1, src.sample_n(&mut rng, 200)).unwrap();
        let n = t.node_count();
        assert_eq!((n - 1) % 4, 0, "node count {n} not of form 1 + 4k");
        let leaves = t.leaf_count();
        // For a 4-ary tree: leaves = internal·3 + 1.
        let internal = n - leaves;
        assert_eq!(leaves, internal * 3 + 1);
    }

    #[test]
    fn occupancy_profile_consistency() {
        let src = UniformRect::unit();
        let mut rng = StdRng::seed_from_u64(29);
        let t = PrQuadtree::build(Rect::unit(), 4, src.sample_n(&mut rng, 1000)).unwrap();
        let profile = t.occupancy_profile();
        assert_eq!(profile.total_items(), 1000);
        assert_eq!(profile.total_leaves() as usize, t.leaf_count());
        assert!(profile.max_occupancy() <= 4);
        let props = profile.proportions(4);
        assert!((props.iter().sum::<f64>() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn incremental_profile_equals_traversal_profile() {
        let src = UniformRect::unit();
        let mut rng = StdRng::seed_from_u64(30);
        let t = PrQuadtree::build(Rect::unit(), 3, src.sample_n(&mut rng, 700)).unwrap();
        let incremental = t.occupancy_profile();
        let traversal = OccupancyProfile::from_leaves(&t.leaf_records());
        assert_eq!(incremental, &traversal);
        let table = DepthOccupancyTable::from_leaves(&t.leaf_records());
        assert_eq!(t.depth_table(), &table);
    }

    #[test]
    fn m1_distribution_is_roughly_half_empty_half_full() {
        // The paper's headline experimental result: ~53% empty, ~47% full.
        let src = UniformRect::unit();
        let mut rng = StdRng::seed_from_u64(31);
        let t = PrQuadtree::build(Rect::unit(), 1, src.sample_n(&mut rng, 1000)).unwrap();
        let props = t.occupancy_profile().proportions(1);
        assert!(
            (props[0] - 0.53).abs() < 0.06,
            "empty fraction {} far from paper's 0.53",
            props[0]
        );
        assert!(
            (props[1] - 0.47).abs() < 0.06,
            "full fraction {} far from paper's 0.47",
            props[1]
        );
    }

    #[test]
    fn insertion_order_invariance_of_point_set() {
        // The PR quadtree's shape is determined by the point set, not the
        // insertion order (unlike the point quadtree) — paper §II.
        let src = UniformRect::unit();
        let mut rng = StdRng::seed_from_u64(37);
        let points = src.sample_n(&mut rng, 200);
        let forward = PrQuadtree::build(Rect::unit(), 2, points.iter().copied()).unwrap();
        let mut reversed = points.clone();
        reversed.reverse();
        let backward = PrQuadtree::build(Rect::unit(), 2, reversed).unwrap();
        assert_eq!(forward.node_count(), backward.node_count());
        let mut fr = forward.leaf_records();
        let mut br = backward.leaf_records();
        let key = |r: &LeafRecord| (r.depth, r.occupancy);
        fr.sort_by_key(key);
        br.sort_by_key(key);
        assert_eq!(fr, br);
    }

    #[test]
    fn remove_missing_and_out_of_region() {
        let mut t = PrQuadtree::build(Rect::unit(), 1, [pt(0.2, 0.2)]).unwrap();
        assert!(!t.remove(&pt(0.3, 0.3)));
        assert!(!t.remove(&pt(5.0, 5.0)));
        assert_eq!(t.len(), 1);
    }

    #[test]
    fn remove_collapses_back_to_single_leaf() {
        let mut t = PrQuadtree::new(Rect::unit(), 1).unwrap();
        t.insert(pt(0.1, 0.1)).unwrap();
        t.insert(pt(0.9, 0.9)).unwrap();
        assert_eq!(t.node_count(), 5);
        assert!(t.remove(&pt(0.9, 0.9)));
        assert_eq!(t.len(), 1);
        assert_eq!(t.node_count(), 1, "merge must collapse the split");
        assert!(t.contains(&pt(0.1, 0.1)));
        t.check_invariants();
    }

    #[test]
    fn remove_cascades_collapse_through_deep_splits() {
        let mut t = PrQuadtree::new(Rect::unit(), 1).unwrap();
        t.insert(pt(0.01, 0.01)).unwrap();
        t.insert(pt(0.02, 0.02)).unwrap(); // deep recursive split
        assert!(t.node_count() > 5);
        assert!(t.remove(&pt(0.02, 0.02)));
        assert_eq!(t.node_count(), 1, "cascaded collapse to the root");
        t.check_invariants();
    }

    #[test]
    fn remove_one_of_coincident_duplicates() {
        let mut t = PrQuadtree::new(Rect::unit(), 1).unwrap();
        t.insert(pt(0.4, 0.4)).unwrap();
        t.insert(pt(0.4, 0.4)).unwrap();
        assert!(t.remove(&pt(0.4, 0.4)));
        assert_eq!(t.len(), 1);
        assert!(t.contains(&pt(0.4, 0.4)));
        assert!(t.remove(&pt(0.4, 0.4)));
        assert!(t.is_empty());
        t.check_invariants();
    }

    #[test]
    fn deletion_restores_fresh_build_shape() {
        // Build 300, delete 150, compare against building the survivors
        // from scratch: identical structure (deletion order-independence).
        let src = UniformRect::unit();
        let mut rng = StdRng::seed_from_u64(59);
        let points = src.sample_n(&mut rng, 300);
        let mut tree = PrQuadtree::build(Rect::unit(), 2, points.iter().copied()).unwrap();
        for p in &points[..150] {
            assert!(tree.remove(p), "{p}");
        }
        tree.check_invariants();
        let fresh = PrQuadtree::build(Rect::unit(), 2, points[150..].iter().copied()).unwrap();
        assert_eq!(tree.node_count(), fresh.node_count());
        let mut a = tree.leaf_records();
        let mut b = fresh.leaf_records();
        let key = |r: &LeafRecord| (r.depth, r.occupancy);
        a.sort_by_key(key);
        b.sort_by_key(key);
        assert_eq!(a, b);
    }

    #[test]
    fn coincident_pile_collapses_after_sibling_empties() {
        let mut t = PrQuadtree::new(Rect::unit(), 1).unwrap();
        t.insert(pt(0.2, 0.2)).unwrap();
        t.insert(pt(0.2, 0.2)).unwrap(); // coincident pair, single leaf
        t.insert(pt(0.9, 0.9)).unwrap(); // forces split
        assert!(t.node_count() > 1);
        assert!(t.remove(&pt(0.9, 0.9)));
        // The surviving pile exceeds capacity but is coincident: a fresh
        // build would keep it at the root, so the collapse must too.
        assert_eq!(t.node_count(), 1);
        t.check_invariants();
    }

    #[test]
    fn count_in_range_matches_range_query() {
        let src = UniformRect::unit();
        let mut rng = StdRng::seed_from_u64(61);
        let t = PrQuadtree::build(Rect::unit(), 3, src.sample_n(&mut rng, 800)).unwrap();
        for rect in [
            Rect::from_bounds(0.1, 0.1, 0.4, 0.9),
            Rect::from_bounds(0.0, 0.0, 1.0, 1.0),
            Rect::from_bounds(0.45, 0.45, 0.55, 0.55),
        ] {
            assert_eq!(t.count_in_range(&rect), t.range_query(&rect).len());
        }
    }

    #[test]
    fn k_nearest_matches_sorted_scan() {
        let src = UniformRect::unit();
        let mut rng = StdRng::seed_from_u64(67);
        let points = src.sample_n(&mut rng, 400);
        let t = PrQuadtree::build(Rect::unit(), 2, points.iter().copied()).unwrap();
        let target = pt(0.3, 0.7);
        for k in [0usize, 1, 5, 50, 400, 500] {
            let got = t.k_nearest(&target, k);
            let mut expect = points.clone();
            expect.sort_by(|a, b| {
                a.distance_squared(&target)
                    .partial_cmp(&b.distance_squared(&target))
                    .unwrap()
            });
            expect.truncate(k);
            assert_eq!(got.len(), expect.len(), "k={k}");
            for (g, e) in got.iter().zip(&expect) {
                assert_eq!(
                    g.distance_squared(&target),
                    e.distance_squared(&target),
                    "k={k}"
                );
            }
            // Results are sorted nearest-first.
            for w in got.windows(2) {
                assert!(w[0].distance_squared(&target) <= w[1].distance_squared(&target));
            }
        }
    }

    #[test]
    fn build_over_non_unit_region() {
        let region = Rect::from_bounds(-10.0, 5.0, 30.0, 25.0);
        let src = UniformRect::new(region);
        let mut rng = StdRng::seed_from_u64(41);
        let points = src.sample_n(&mut rng, 300);
        let t = PrQuadtree::build(region, 3, points.iter().copied()).unwrap();
        t.check_invariants();
        for p in &points {
            assert!(t.contains(p));
        }
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use popan_proptest::prelude::*;

    fn arb_points() -> impl Strategy<Value = Vec<Point2>> {
        popan_proptest::collection::vec((0.0f64..1.0, 0.0f64..1.0), 0..150)
            .prop_map(|v| v.into_iter().map(|(x, y)| Point2::new(x, y)).collect())
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        #[test]
        fn invariants_hold_for_random_builds(
            points in arb_points(),
            capacity in 1usize..6,
        ) {
            let t = PrQuadtree::build(Rect::unit(), capacity, points.iter().copied()).unwrap();
            t.check_invariants();
            prop_assert_eq!(t.len(), points.len());
            for p in &points {
                prop_assert!(t.contains(p));
            }
        }

        #[test]
        fn range_query_agrees_with_scan(
            points in arb_points(),
            qx in 0.0f64..0.8,
            qy in 0.0f64..0.8,
            qw in 0.05f64..0.2,
        ) {
            let t = PrQuadtree::build(Rect::unit(), 2, points.iter().copied()).unwrap();
            let query = Rect::from_bounds(qx, qy, qx + qw, qy + qw);
            let got = t.range_query(&query).len();
            let expect = points.iter().filter(|p| query.contains(p)).count();
            prop_assert_eq!(got, expect);
        }

        #[test]
        fn mixed_insert_remove_matches_multiset_model(
            seed_points in arb_points(),
            ops in popan_proptest::collection::vec((0.0f64..1.0, 0.0f64..1.0, popan_proptest::bool::ANY), 0..80),
            capacity in 1usize..4,
        ) {
            let mut tree = PrQuadtree::build(Rect::unit(), capacity, seed_points.iter().copied()).unwrap();
            let mut model: Vec<Point2> = seed_points.clone();
            for (x, y, is_insert) in ops {
                if is_insert {
                    let p = Point2::new(x, y);
                    tree.insert(p).unwrap();
                    model.push(p);
                } else if let Some(p) = model.first().copied() {
                    // Remove an existing point (deterministic choice).
                    prop_assert!(tree.remove(&p));
                    model.remove(0);
                }
            }
            prop_assert_eq!(tree.len(), model.len());
            tree.check_invariants();
            for p in &model {
                prop_assert!(tree.contains(p));
            }
            // After deletions, the structure equals a fresh build of the
            // survivors.
            let fresh = PrQuadtree::build(Rect::unit(), capacity, model.iter().copied()).unwrap();
            prop_assert_eq!(tree.node_count(), fresh.node_count());
        }

        #[test]
        fn leaf_occupancies_account_for_all_points(
            points in arb_points(),
            capacity in 1usize..5,
        ) {
            let t = PrQuadtree::build(Rect::unit(), capacity, points.iter().copied()).unwrap();
            let profile = t.occupancy_profile();
            prop_assert_eq!(profile.total_items() as usize, points.len());
        }
    }
}
