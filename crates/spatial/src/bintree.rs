//! The bintree: regular decomposition with alternating axis halving.
//!
//! A bintree (Samet & Tamminen; Knowlton's original) splits a block in two
//! along one axis, alternating axes level by level — branching factor 2.
//! It is the `d = 1` end of the paper's "the same principles apply …"
//! generalization; the `dims` experiment validates the `b = 2` population
//! model against it.
//!
//! Backed by the contiguous arena core with an incrementally maintained
//! census, like every regular-decomposition tree in this crate.

use crate::arena::{ArenaTree, BinDecomp};
use crate::node_stats::{DepthOccupancyTable, LeafRecord, OccupancyInstrumented, OccupancyProfile};
use crate::pr_quadtree::TreeError;
use popan_geom::{Point2, Rect};

/// Default depth limit. A bintree halves area every *two* levels, so it
/// runs twice as deep as a quadtree for the same resolution.
pub const DEFAULT_MAX_DEPTH: u32 = 64;

/// A generalized bintree with node capacity `m`.
#[derive(Debug, Clone)]
pub struct Bintree {
    tree: ArenaTree<BinDecomp>,
}

impl Bintree {
    /// Creates an empty bintree over `region` with node capacity
    /// `capacity`.
    pub fn new(region: Rect, capacity: usize) -> Result<Self, TreeError> {
        if capacity == 0 {
            return Err(TreeError::InvalidParameter(
                "node capacity must be at least 1".into(),
            ));
        }
        Ok(Bintree {
            tree: ArenaTree::new(region, capacity, DEFAULT_MAX_DEPTH),
        })
    }

    /// Builds a bintree by inserting `points` in order.
    pub fn build(
        region: Rect,
        capacity: usize,
        points: impl IntoIterator<Item = Point2>,
    ) -> Result<Self, TreeError> {
        let mut t = Self::new(region, capacity)?;
        let mut pts = Vec::new();
        for p in points {
            if !p.is_finite() {
                return Err(TreeError::NonFinitePoint);
            }
            if !t.region().contains(&p) {
                return Err(TreeError::OutOfRegion { point: p });
            }
            pts.push(p);
        }
        t.tree.bulk_fill(pts);
        Ok(t)
    }

    /// Builds via the Morton-radix bottom-up bulk path — bit-identical
    /// to [`Bintree::build`], with zero per-point descent on grid-exact
    /// regions (see `popan_geom::morton::morton_grid_exact`).
    pub fn build_bottomup(
        region: Rect,
        capacity: usize,
        points: impl IntoIterator<Item = Point2>,
    ) -> Result<Self, TreeError> {
        let mut t = Self::new(region, capacity)?;
        t.tree.bulk_fill_bottomup(points.into_iter().collect())?;
        Ok(t)
    }

    /// The region covered.
    pub fn region(&self) -> Rect {
        self.tree.region()
    }

    /// Number of stored points.
    pub fn len(&self) -> usize {
        self.tree.len()
    }

    /// `true` when empty.
    pub fn is_empty(&self) -> bool {
        self.tree.is_empty()
    }

    /// Inserts a point, splitting per the PR rule with alternating axes
    /// (depth-even splits are on x, depth-odd on y).
    pub fn insert(&mut self, p: Point2) -> Result<(), TreeError> {
        if !p.is_finite() {
            return Err(TreeError::NonFinitePoint);
        }
        if !self.region().contains(&p) {
            return Err(TreeError::OutOfRegion { point: p });
        }
        self.tree.insert(p);
        Ok(())
    }

    /// `true` when an exactly equal point is stored.
    pub fn contains(&self, p: &Point2) -> bool {
        if !self.region().contains(p) {
            return false;
        }
        self.tree.contains(p)
    }

    /// Total node count (internal + leaf) — O(1) pool accounting.
    pub fn node_count(&self) -> usize {
        self.tree.node_count()
    }

    /// Visits every leaf: the block, its depth, and its stored points.
    pub fn for_each_leaf(&self, mut f: impl FnMut(Rect, u32, &[Point2])) {
        self.tree
            .for_each_leaf(&mut |block, depth, points| f(*block, depth, points));
    }

    /// All stored points, in leaf-traversal order.
    pub fn points(&self) -> Vec<Point2> {
        let mut out = Vec::with_capacity(self.len());
        self.for_each_leaf(|_, _, pts| out.extend_from_slice(pts));
        out
    }

    /// All stored points inside `query`, in leaf-traversal order.
    ///
    /// A leaf sweep pruned by block overlap — fine for the oracle and
    /// verification paths this backend serves; the query tier freezes
    /// hot structures into a `Snapshot` for serving.
    pub fn range_query(&self, query: &Rect) -> Vec<Point2> {
        let mut out = Vec::new();
        self.for_each_leaf(|block, _, pts| {
            if block.overlaps(query) {
                out.extend(pts.iter().filter(|p| query.contains(p)).copied());
            }
        });
        out
    }

    /// Counts stored points inside `query` without materializing them.
    pub fn count_in_range(&self, query: &Rect) -> usize {
        let mut count = 0;
        self.for_each_leaf(|block, _, pts| {
            if query.contains_rect(&block) {
                count += pts.len();
            } else if block.overlaps(query) {
                count += pts.iter().filter(|p| query.contains(p)).count();
            }
        });
        count
    }

    /// Leaf node count, served from the maintained census: O(1).
    pub fn leaf_count(&self) -> usize {
        self.tree.census().leaf_count()
    }

    /// The occupancy profile, maintained incrementally — a
    /// zero-allocation, zero-traversal read.
    pub fn occupancy_profile(&self) -> &OccupancyProfile {
        self.tree.census().profile()
    }

    /// The per-depth occupancy table, maintained incrementally — a
    /// zero-allocation, zero-traversal read.
    pub fn depth_table(&self) -> &DepthOccupancyTable {
        self.tree.census().depth_table()
    }

    /// Verifies structural invariants (including census/traversal
    /// agreement); panics on violation.
    pub fn check_invariants(&self) {
        self.tree.check_invariants();
    }
}

impl OccupancyInstrumented for Bintree {
    fn capacity(&self) -> usize {
        self.tree.capacity()
    }

    fn leaf_records(&self) -> Vec<LeafRecord> {
        self.tree.leaf_records()
    }

    fn occupancy_profile(&self) -> OccupancyProfile {
        self.tree.census().profile().clone()
    }

    fn depth_table(&self) -> DepthOccupancyTable {
        self.tree.census().depth_table().clone()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use popan_rng::rngs::StdRng;
    use popan_rng::SeedableRng;
    use popan_workload::points::{PointSource, UniformRect};

    fn pt(x: f64, y: f64) -> Point2 {
        Point2::new(x, y)
    }

    #[test]
    fn empty_and_errors() {
        assert!(Bintree::new(Rect::unit(), 0).is_err());
        let mut t = Bintree::new(Rect::unit(), 1).unwrap();
        assert!(t.is_empty());
        assert!(t.insert(pt(2.0, 0.0)).is_err());
        assert!(t.insert(pt(0.0, f64::INFINITY)).is_err());
    }

    #[test]
    fn first_split_is_on_x() {
        let mut t = Bintree::new(Rect::unit(), 1).unwrap();
        t.insert(pt(0.1, 0.5)).unwrap();
        t.insert(pt(0.9, 0.5)).unwrap();
        // Same y, different x halves: one split suffices.
        assert_eq!(t.node_count(), 3);
        assert_eq!(t.leaf_count(), 2);
        t.check_invariants();
    }

    #[test]
    fn same_x_half_requires_y_split() {
        let mut t = Bintree::new(Rect::unit(), 1).unwrap();
        t.insert(pt(0.1, 0.1)).unwrap();
        t.insert(pt(0.2, 0.9)).unwrap();
        // Both in the left x half; second split (on y) separates them:
        // root + 2 children + 2 grandchildren = 5 nodes.
        assert_eq!(t.node_count(), 5);
        t.check_invariants();
    }

    #[test]
    fn random_build_invariants() {
        let src = UniformRect::unit();
        let mut rng = StdRng::seed_from_u64(77);
        let points = src.sample_n(&mut rng, 800);
        let t = Bintree::build(Rect::unit(), 3, points.iter().copied()).unwrap();
        t.check_invariants();
        for p in &points {
            assert!(t.contains(p));
        }
        let profile = t.occupancy_profile();
        assert_eq!(profile.total_items(), 800);
        assert!(profile.max_occupancy() <= 3);
    }

    #[test]
    fn node_count_identity_binary() {
        // leaves = internal + 1 in a proper binary tree.
        let src = UniformRect::unit();
        let mut rng = StdRng::seed_from_u64(78);
        let t = Bintree::build(Rect::unit(), 1, src.sample_n(&mut rng, 400)).unwrap();
        let n = t.node_count();
        let leaves = t.leaf_count();
        assert_eq!(leaves, (n - leaves) + 1);
    }

    #[test]
    fn coincident_points_do_not_split() {
        let mut t = Bintree::new(Rect::unit(), 2).unwrap();
        for _ in 0..6 {
            t.insert(pt(0.4, 0.4)).unwrap();
        }
        assert_eq!(t.node_count(), 1);
        t.check_invariants();
    }

    #[test]
    fn range_and_count_agree_with_scan() {
        let src = UniformRect::unit();
        let mut rng = StdRng::seed_from_u64(80);
        let points = src.sample_n(&mut rng, 600);
        let t = Bintree::build(Rect::unit(), 2, points.iter().copied()).unwrap();
        assert_eq!(t.points().len(), 600);
        for query in [
            Rect::from_bounds(0.0, 0.0, 1.0, 1.0),
            Rect::from_bounds(0.1, 0.3, 0.6, 0.7),
            Rect::from_bounds(0.9, 0.9, 0.95, 0.95),
        ] {
            let expect = points.iter().filter(|p| query.contains(p)).count();
            assert_eq!(t.range_query(&query).len(), expect, "{query}");
            assert_eq!(t.count_in_range(&query), expect, "{query}");
        }
    }

    #[test]
    fn bintree_needs_about_twice_quadtree_depth() {
        use crate::pr_quadtree::PrQuadtree;
        let src = UniformRect::unit();
        let mut rng = StdRng::seed_from_u64(79);
        let points = src.sample_n(&mut rng, 500);
        let bt = Bintree::build(Rect::unit(), 1, points.iter().copied()).unwrap();
        let qt = PrQuadtree::build(Rect::unit(), 1, points.iter().copied()).unwrap();
        let bt_depth = bt.leaf_records().iter().map(|r| r.depth).max().unwrap();
        let qt_depth = qt.leaf_records().iter().map(|r| r.depth).max().unwrap();
        assert!(
            bt_depth >= qt_depth && bt_depth <= 2 * qt_depth + 1,
            "bintree depth {bt_depth} vs quadtree depth {qt_depth}"
        );
    }
}
