//! The bintree: regular decomposition with alternating axis halving.
//!
//! A bintree (Samet & Tamminen; Knowlton's original) splits a block in two
//! along one axis, alternating axes level by level — branching factor 2.
//! It is the `d = 1` end of the paper's "the same principles apply …"
//! generalization; the `dims` experiment validates the `b = 2` population
//! model against it.

use crate::node_stats::{LeafRecord, OccupancyInstrumented};
use crate::pr_quadtree::TreeError;
use popan_geom::{Point2, Rect};

/// Default depth limit. A bintree halves area every *two* levels, so it
/// runs twice as deep as a quadtree for the same resolution.
pub const DEFAULT_MAX_DEPTH: u32 = 64;

/// Axis being split at a level.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Axis {
    X,
    Y,
}

impl Axis {
    fn next(self) -> Axis {
        match self {
            Axis::X => Axis::Y,
            Axis::Y => Axis::X,
        }
    }
}

fn split_block(block: Rect, axis: Axis) -> [Rect; 2] {
    match axis {
        Axis::X => {
            let [lo, hi] = block.x().split();
            [Rect::new(lo, block.y()), Rect::new(hi, block.y())]
        }
        Axis::Y => {
            let [lo, hi] = block.y().split();
            [Rect::new(block.x(), lo), Rect::new(block.x(), hi)]
        }
    }
}

fn child_index(block: &Rect, axis: Axis, p: &Point2) -> usize {
    match axis {
        Axis::X => usize::from(p.x >= block.x().mid()),
        Axis::Y => usize::from(p.y >= block.y().mid()),
    }
}

#[derive(Debug, Clone)]
enum Node {
    Leaf(Vec<Point2>),
    Internal(Box<[Node; 2]>),
}

impl Node {
    fn empty_leaf() -> Node {
        Node::Leaf(Vec::new())
    }
}

/// A generalized bintree with node capacity `m`.
#[derive(Debug, Clone)]
pub struct Bintree {
    root: Node,
    region: Rect,
    capacity: usize,
    max_depth: u32,
    len: usize,
}

impl Bintree {
    /// Creates an empty bintree over `region` with node capacity
    /// `capacity`.
    pub fn new(region: Rect, capacity: usize) -> Result<Self, TreeError> {
        if capacity == 0 {
            return Err(TreeError::InvalidParameter(
                "node capacity must be at least 1".into(),
            ));
        }
        Ok(Bintree {
            root: Node::empty_leaf(),
            region,
            capacity,
            max_depth: DEFAULT_MAX_DEPTH,
            len: 0,
        })
    }

    /// Builds a bintree by inserting `points` in order.
    pub fn build(
        region: Rect,
        capacity: usize,
        points: impl IntoIterator<Item = Point2>,
    ) -> Result<Self, TreeError> {
        let mut t = Self::new(region, capacity)?;
        for p in points {
            t.insert(p)?;
        }
        Ok(t)
    }

    /// The region covered.
    pub fn region(&self) -> Rect {
        self.region
    }

    /// Number of stored points.
    pub fn len(&self) -> usize {
        self.len
    }

    /// `true` when empty.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Inserts a point, splitting per the PR rule with alternating axes
    /// (depth-even splits are on x, depth-odd on y).
    pub fn insert(&mut self, p: Point2) -> Result<(), TreeError> {
        if !p.is_finite() {
            return Err(TreeError::NonFinitePoint);
        }
        if !self.region.contains(&p) {
            return Err(TreeError::OutOfRegion { point: p });
        }
        Self::insert_rec(
            &mut self.root,
            self.region,
            Axis::X,
            0,
            self.max_depth,
            self.capacity,
            p,
        );
        self.len += 1;
        Ok(())
    }

    #[allow(clippy::too_many_arguments)]
    fn insert_rec(
        node: &mut Node,
        block: Rect,
        axis: Axis,
        depth: u32,
        max_depth: u32,
        capacity: usize,
        p: Point2,
    ) {
        match node {
            Node::Internal(children) => {
                let i = child_index(&block, axis, &p);
                Self::insert_rec(
                    &mut children[i],
                    split_block(block, axis)[i],
                    axis.next(),
                    depth + 1,
                    max_depth,
                    capacity,
                    p,
                );
            }
            Node::Leaf(points) => {
                points.push(p);
                if points.len() > capacity && depth < max_depth {
                    let first = points[0];
                    if points.iter().all(|q| *q == first) {
                        return;
                    }
                    Self::split_leaf(node, block, axis, depth, max_depth, capacity);
                }
            }
        }
    }

    fn split_leaf(
        node: &mut Node,
        block: Rect,
        axis: Axis,
        depth: u32,
        max_depth: u32,
        capacity: usize,
    ) {
        let points = match std::mem::replace(node, Node::empty_leaf()) {
            Node::Leaf(points) => points,
            Node::Internal(_) => unreachable!("split_leaf called on internal node"),
        };
        let mut children = Box::new([Node::empty_leaf(), Node::empty_leaf()]);
        for p in points {
            let i = child_index(&block, axis, &p);
            match &mut children[i] {
                Node::Leaf(v) => v.push(p),
                Node::Internal(_) => unreachable!(),
            }
        }
        let halves = split_block(block, axis);
        for (i, child) in children.iter_mut().enumerate() {
            let needs_split = match child {
                Node::Leaf(v) => {
                    v.len() > capacity && depth + 1 < max_depth && {
                        let first = v[0];
                        !v.iter().all(|q| *q == first)
                    }
                }
                Node::Internal(_) => false,
            };
            if needs_split {
                Self::split_leaf(
                    child,
                    halves[i],
                    axis.next(),
                    depth + 1,
                    max_depth,
                    capacity,
                );
            }
        }
        *node = Node::Internal(children);
    }

    /// `true` when an exactly equal point is stored.
    pub fn contains(&self, p: &Point2) -> bool {
        if !self.region.contains(p) {
            return false;
        }
        let mut node = &self.root;
        let mut block = self.region;
        let mut axis = Axis::X;
        loop {
            match node {
                Node::Leaf(points) => return points.contains(p),
                Node::Internal(children) => {
                    let i = child_index(&block, axis, p);
                    node = &children[i];
                    block = split_block(block, axis)[i];
                    axis = axis.next();
                }
            }
        }
    }

    /// Total node count (internal + leaf).
    pub fn node_count(&self) -> usize {
        fn walk(node: &Node) -> usize {
            match node {
                Node::Leaf(_) => 1,
                Node::Internal(children) => 1 + children.iter().map(walk).sum::<usize>(),
            }
        }
        walk(&self.root)
    }

    /// Leaf node count.
    pub fn leaf_count(&self) -> usize {
        self.leaf_records().len()
    }

    /// Verifies structural invariants; panics on violation.
    pub fn check_invariants(&self) {
        fn walk(
            node: &Node,
            block: Rect,
            axis: Axis,
            depth: u32,
            capacity: usize,
            max_depth: u32,
            total: &mut usize,
        ) {
            match node {
                Node::Leaf(points) => {
                    *total += points.len();
                    for p in points {
                        assert!(block.contains(p), "point {p} outside its bintree leaf");
                    }
                    if points.len() > capacity {
                        let first = points[0];
                        let coincident = points.iter().all(|q| *q == first);
                        assert!(
                            depth >= max_depth || coincident,
                            "over-full bintree leaf at depth {depth}"
                        );
                    }
                }
                Node::Internal(children) => {
                    let halves = split_block(block, axis);
                    for (i, child) in children.iter().enumerate() {
                        walk(
                            child,
                            halves[i],
                            axis.next(),
                            depth + 1,
                            capacity,
                            max_depth,
                            total,
                        );
                    }
                }
            }
        }
        let mut total = 0;
        walk(
            &self.root,
            self.region,
            Axis::X,
            0,
            self.capacity,
            self.max_depth,
            &mut total,
        );
        assert_eq!(total, self.len, "stored point count mismatch");
    }
}

impl OccupancyInstrumented for Bintree {
    fn capacity(&self) -> usize {
        self.capacity
    }

    fn leaf_records(&self) -> Vec<LeafRecord> {
        fn walk(node: &Node, depth: u32, out: &mut Vec<LeafRecord>) {
            match node {
                Node::Leaf(points) => out.push(LeafRecord {
                    depth,
                    occupancy: points.len(),
                }),
                Node::Internal(children) => {
                    for child in children.iter() {
                        walk(child, depth + 1, out);
                    }
                }
            }
        }
        let mut out = Vec::new();
        walk(&self.root, 0, &mut out);
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use popan_rng::rngs::StdRng;
    use popan_rng::SeedableRng;
    use popan_workload::points::{PointSource, UniformRect};

    fn pt(x: f64, y: f64) -> Point2 {
        Point2::new(x, y)
    }

    #[test]
    fn empty_and_errors() {
        assert!(Bintree::new(Rect::unit(), 0).is_err());
        let mut t = Bintree::new(Rect::unit(), 1).unwrap();
        assert!(t.is_empty());
        assert!(t.insert(pt(2.0, 0.0)).is_err());
        assert!(t.insert(pt(0.0, f64::INFINITY)).is_err());
    }

    #[test]
    fn first_split_is_on_x() {
        let mut t = Bintree::new(Rect::unit(), 1).unwrap();
        t.insert(pt(0.1, 0.5)).unwrap();
        t.insert(pt(0.9, 0.5)).unwrap();
        // Same y, different x halves: one split suffices.
        assert_eq!(t.node_count(), 3);
        assert_eq!(t.leaf_count(), 2);
        t.check_invariants();
    }

    #[test]
    fn same_x_half_requires_y_split() {
        let mut t = Bintree::new(Rect::unit(), 1).unwrap();
        t.insert(pt(0.1, 0.1)).unwrap();
        t.insert(pt(0.2, 0.9)).unwrap();
        // Both in the left x half; second split (on y) separates them:
        // root + 2 children + 2 grandchildren = 5 nodes.
        assert_eq!(t.node_count(), 5);
        t.check_invariants();
    }

    #[test]
    fn random_build_invariants() {
        let src = UniformRect::unit();
        let mut rng = StdRng::seed_from_u64(77);
        let points = src.sample_n(&mut rng, 800);
        let t = Bintree::build(Rect::unit(), 3, points.iter().copied()).unwrap();
        t.check_invariants();
        for p in &points {
            assert!(t.contains(p));
        }
        let profile = t.occupancy_profile();
        assert_eq!(profile.total_items(), 800);
        assert!(profile.max_occupancy() <= 3);
    }

    #[test]
    fn node_count_identity_binary() {
        // leaves = internal + 1 in a proper binary tree.
        let src = UniformRect::unit();
        let mut rng = StdRng::seed_from_u64(78);
        let t = Bintree::build(Rect::unit(), 1, src.sample_n(&mut rng, 400)).unwrap();
        let n = t.node_count();
        let leaves = t.leaf_count();
        assert_eq!(leaves, (n - leaves) + 1);
    }

    #[test]
    fn coincident_points_do_not_split() {
        let mut t = Bintree::new(Rect::unit(), 2).unwrap();
        for _ in 0..6 {
            t.insert(pt(0.4, 0.4)).unwrap();
        }
        assert_eq!(t.node_count(), 1);
        t.check_invariants();
    }

    #[test]
    fn bintree_needs_about_twice_quadtree_depth() {
        use crate::pr_quadtree::PrQuadtree;
        let src = UniformRect::unit();
        let mut rng = StdRng::seed_from_u64(79);
        let points = src.sample_n(&mut rng, 500);
        let bt = Bintree::build(Rect::unit(), 1, points.iter().copied()).unwrap();
        let qt = PrQuadtree::build(Rect::unit(), 1, points.iter().copied()).unwrap();
        let bt_depth = bt.leaf_records().iter().map(|r| r.depth).max().unwrap();
        let qt_depth = qt.leaf_records().iter().map(|r| r.depth).max().unwrap();
        assert!(
            bt_depth >= qt_depth && bt_depth <= 2 * qt_depth + 1,
            "bintree depth {bt_depth} vs quadtree depth {qt_depth}"
        );
    }
}
