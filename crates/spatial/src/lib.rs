//! Hierarchical spatial data structures with occupancy instrumentation.
//!
//! The experimental half of the SIGMOD '87 population-analysis paper:
//! actual bucketing trees that can be built from synthetic workloads and
//! interrogated for the node-occupancy statistics the model predicts.
//!
//! * [`PrQuadtree`] — the generalized PR quadtree (regular decomposition,
//!   node capacity `m`, "split until no block contains more than m
//!   points"). The paper's primary experimental subject.
//! * [`PrOctree`] — the same discipline in 3-D (branching factor 8).
//! * [`Bintree`] — regular decomposition with alternating axis halving
//!   (branching factor 2).
//! * [`PointQuadtree`] — the classical Finkel–Bentley point quadtree,
//!   where partitions are data-dependent (included for the paper's §II
//!   taxonomy; it has no bucket populations, so only depth statistics).
//! * [`MarySearchTree`] — the random m-ary search tree over keys, the
//!   comparison-based member of Devroye's split-tree family
//!   (`SplitSpec::mary_search_tree` in `popan-core`), with the same
//!   census integration as the spatial trees plus total-path-length
//!   accounting over pivots.
//! * [`PmrQuadtree`] — the PMR quadtree for line segments (split-once
//!   rule), subject of the paper's companion analysis \[Nels86a/b\].
//! * [`node_stats`] — occupancy profiles, per-depth tables, and the
//!   [`OccupancyInstrumented`] trait the experiments consume.
//! * [`visualize`] — ASCII rendering of a quadtree's block decomposition
//!   (Figure 1).
//!
//! The regular-decomposition trees (`PrQuadtree`, `PrOctree`, `Bintree`,
//! `PrTreeNd`) share one arena-backed core ([`arena`], crate-private):
//! nodes live in a contiguous slot pool addressed by `u32` ids, points in
//! per-leaf small buffers that spill to a shared point arena, and an
//! [`node_stats::OccupancyCensus`] is maintained incrementally so
//! `occupancy_profile()` / `depth_table()` / `leaf_count()` are
//! zero-allocation reads. [`reference`] keeps the original boxed
//! implementation as the bit-identity oracle for the equivalence tests.
//!
//! All trees are deterministic given their insertion sequence, use
//! half-open regular decomposition from [`popan_geom`], and enforce their
//! splitting rule as an internal invariant (checked by `debug_assert` and
//! by each tree's `check_invariants` test hook).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod arena;

pub mod bintree;
pub mod linear_quadtree;
pub mod mary_tree;
pub mod node_stats;
pub mod pmr_quadtree;
pub mod point_quadtree;
pub mod pr_octree;
pub mod pr_quadtree;
pub mod pr_tree_nd;
pub mod reference;
pub mod visualize;

pub use arena::bottomup::DirectFreezeError;
pub use bintree::Bintree;
pub use linear_quadtree::{
    knn_cmp, BoundedOutcome, CostBudget, FreezeError, LinearQuadtree, QueryCost, QueryScratch,
    SectionDigests, SlabFootprint, SnapshotSection,
};
pub use mary_tree::MarySearchTree;
pub use node_stats::{
    DepthOccupancyTable, LeafRecord, OccupancyCensus, OccupancyInstrumented, OccupancyProfile,
};
pub use pmr_quadtree::PmrQuadtree;
pub use point_quadtree::PointQuadtree;
pub use pr_octree::PrOctree;
pub use pr_quadtree::PrQuadtree;
pub use pr_tree_nd::PrTreeNd;
