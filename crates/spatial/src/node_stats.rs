//! Occupancy statistics over a tree's leaf nodes.
//!
//! The paper's state vector `d = (p_0, p_1, …, p_m)` is "the proportion of
//! the nodes having occupancy i" over the *leaf* nodes of a quadtree.
//! [`OccupancyProfile`] computes that vector (and the derived average
//! occupancy) from a tree; [`DepthOccupancyTable`] breaks the counts down
//! by node depth for the aging analysis (Table 3).
//!
//! Both containers support *incremental* maintenance
//! ([`OccupancyProfile::record_leaf`] / [`OccupancyProfile::unrecord_leaf`]
//! and the depth-table analogues), bundled by [`OccupancyCensus`]: a tree
//! that reports every leaf birth, death and occupancy change keeps a census
//! that is structurally identical to one rebuilt from a full traversal —
//! the paper's own framing, where the population state *is* the count
//! vector and each insertion only moves a node from class `i` to `i + 1`.

/// One leaf node observation: its depth and how many items it holds.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LeafRecord {
    /// Depth of the leaf (root = 0).
    pub depth: u32,
    /// Number of stored items.
    pub occupancy: usize,
}

/// Counts of leaf nodes by occupancy.
#[derive(Debug, Clone, PartialEq)]
pub struct OccupancyProfile {
    /// `counts[i]` = number of leaves holding exactly `i` items.
    counts: Vec<u64>,
}

impl OccupancyProfile {
    /// Builds a profile from leaf records.
    pub fn from_leaves<'a>(leaves: impl IntoIterator<Item = &'a LeafRecord>) -> Self {
        let mut counts: Vec<u64> = Vec::new();
        for leaf in leaves {
            if leaf.occupancy >= counts.len() {
                counts.resize(leaf.occupancy + 1, 0);
            }
            counts[leaf.occupancy] += 1;
        }
        OccupancyProfile { counts }
    }

    /// Builds a profile directly from occupancy counts (`counts[i]` leaves
    /// of occupancy `i`).
    pub fn from_counts(counts: Vec<u64>) -> Self {
        OccupancyProfile { counts }
    }

    /// Number of leaves with occupancy `i`.
    pub fn count(&self, i: usize) -> u64 {
        self.counts.get(i).copied().unwrap_or(0)
    }

    /// Total number of leaves.
    pub fn total_leaves(&self) -> u64 {
        self.counts.iter().sum()
    }

    /// Total number of stored items.
    pub fn total_items(&self) -> u64 {
        self.counts
            .iter()
            .enumerate()
            .map(|(i, &c)| i as u64 * c)
            .sum()
    }

    /// Highest observed occupancy.
    pub fn max_occupancy(&self) -> usize {
        self.counts.len().saturating_sub(1)
    }

    /// Average items per leaf — the paper's *average node occupancy*.
    /// Returns 0 for an empty profile.
    pub fn average_occupancy(&self) -> f64 {
        let leaves = self.total_leaves();
        if leaves == 0 {
            0.0
        } else {
            self.total_items() as f64 / leaves as f64
        }
    }

    /// The proportion vector `(p_0, …, p_m)` of length `capacity + 1`.
    ///
    /// Occupancies above `capacity` (possible only for max-depth-truncated
    /// leaves) are folded into the last component, mirroring how the
    /// paper's implementation reported its deepest level. Returns all
    /// zeros for an empty profile.
    pub fn proportions(&self, capacity: usize) -> Vec<f64> {
        let total = self.total_leaves();
        let mut out = vec![0.0; capacity + 1];
        if total == 0 {
            return out;
        }
        for (i, &c) in self.counts.iter().enumerate() {
            out[i.min(capacity)] += c as f64 / total as f64;
        }
        out
    }

    /// Storage utilization: average occupancy divided by capacity.
    pub fn utilization(&self, capacity: usize) -> f64 {
        assert!(capacity > 0, "capacity must be positive");
        self.average_occupancy() / capacity as f64
    }

    /// Incrementally records one leaf of the given occupancy — O(1)
    /// amortized.
    pub fn record_leaf(&mut self, occupancy: usize) {
        self.record_leaves(occupancy, 1);
    }

    /// Records `count` leaves of one occupancy class at once — the bulk
    /// form the bottom-up builder uses to apply a whole build's tally in
    /// one pass. Lands on exactly the state `count` repeated
    /// [`OccupancyProfile::record_leaf`] calls reach.
    pub fn record_leaves(&mut self, occupancy: usize, count: u64) {
        if occupancy >= self.counts.len() {
            self.counts.resize(occupancy + 1, 0);
        }
        self.counts[occupancy] += count;
    }

    /// Incrementally removes one previously recorded leaf. Trailing zero
    /// classes are trimmed so the profile stays structurally identical to
    /// one built by [`OccupancyProfile::from_leaves`] over the surviving
    /// leaves (`==`, `max_occupancy` and friends agree exactly).
    pub fn unrecord_leaf(&mut self, occupancy: usize) {
        assert!(
            self.counts.get(occupancy).copied().unwrap_or(0) > 0,
            "unrecord of an absent occupancy class {occupancy}"
        );
        self.counts[occupancy] -= 1;
        while self.counts.last() == Some(&0) {
            self.counts.pop();
        }
    }

    /// Moves one leaf from occupancy class `old` to `new` in a single
    /// pass — the fused unrecord+record used on the tree mutation hot
    /// path. Structurally identical to `unrecord_leaf(old)` followed by
    /// `record_leaf(new)`: the trimmed representation is a pure function
    /// of the recorded multiset, so the fused update lands on the same
    /// state.
    pub fn shift_leaf(&mut self, old: usize, new: usize) {
        assert!(
            self.counts.get(old).copied().unwrap_or(0) > 0,
            "shift out of an absent occupancy class {old}"
        );
        if new >= self.counts.len() {
            self.counts.resize(new + 1, 0);
        }
        self.counts[old] -= 1;
        self.counts[new] += 1;
        while self.counts.last() == Some(&0) {
            self.counts.pop();
        }
    }
}

/// Leaf counts broken down by depth — the raw data of the paper's
/// Table 3 ("Occupancy by node size").
///
/// Tree depths are small dense integers (root = 0, bounded by the
/// tree's `max_depth`), so the rows live in a `Vec` indexed by depth —
/// every maintenance call is an array index, not a map lookup. The
/// canonical form keeps each row trailing-zero-trimmed and drops
/// trailing empty rows (interior depths with no leaves stay as empty
/// rows), so a maintained table is `==` to a
/// [`DepthOccupancyTable::from_leaves`] rebuild.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct DepthOccupancyTable {
    /// `rows[depth]` = occupancy counts at that depth.
    rows: Vec<Vec<u64>>,
}

impl DepthOccupancyTable {
    /// Builds the table from leaf records.
    pub fn from_leaves<'a>(leaves: impl IntoIterator<Item = &'a LeafRecord>) -> Self {
        let mut table = DepthOccupancyTable::default();
        for leaf in leaves {
            table.record(leaf.depth, leaf.occupancy);
        }
        table
    }

    /// Depths present (holding at least one leaf), ascending.
    pub fn depths(&self) -> Vec<u32> {
        self.rows
            .iter()
            .enumerate()
            .filter(|(_, row)| !row.is_empty())
            .map(|(depth, _)| depth as u32)
            .collect()
    }

    /// Count of depth-`d` leaves with occupancy `i`.
    pub fn count(&self, depth: u32, occupancy: usize) -> u64 {
        self.rows
            .get(depth as usize)
            .and_then(|r| r.get(occupancy))
            .copied()
            .unwrap_or(0)
    }

    /// Total leaves at a depth.
    pub fn leaves_at(&self, depth: u32) -> u64 {
        self.rows.get(depth as usize).map_or(0, |r| r.iter().sum())
    }

    /// Total stored items at a depth (`Σ i · count(depth, i)`).
    pub fn items_at(&self, depth: u32) -> u64 {
        self.rows.get(depth as usize).map_or(0, |r| {
            r.iter().enumerate().map(|(i, &c)| i as u64 * c).sum()
        })
    }

    /// Deepest depth holding at least one leaf (`None` when empty).
    pub fn max_depth(&self) -> Option<u32> {
        self.rows
            .iter()
            .enumerate()
            .rev()
            .find(|(_, row)| !row.is_empty())
            .map(|(depth, _)| depth as u32)
    }

    /// Total path length of the *stored items*: `Σ_d d · items_at(d)` —
    /// the split-tree quantity `Υ_n` of Broutin–Holmgren (for
    /// structures that also store items at internal nodes, e.g. the
    /// m-ary search tree's pivots, the structure adds its internal
    /// contribution on top of this leaf term).
    pub fn total_item_path_length(&self) -> u64 {
        self.rows
            .iter()
            .enumerate()
            .map(|(d, _)| d as u64 * self.items_at(d as u32))
            .sum()
    }

    /// Average depth of a stored item (`None` when no items) — the
    /// per-item normalization `Υ_n / n` of the path length, the
    /// quantity Holmgren's `c·ln n` law bounds.
    pub fn average_item_depth(&self) -> Option<f64> {
        let items: u64 = (0..self.rows.len()).map(|d| self.items_at(d as u32)).sum();
        if items == 0 {
            return None;
        }
        Some(self.total_item_path_length() as f64 / items as f64)
    }

    /// Average occupancy of the leaves at a depth (`None` if no leaves).
    ///
    /// The paper's Table 3 shows this decreasing with depth (i.e. with
    /// decreasing block size): the *aging* effect.
    pub fn average_occupancy_at(&self, depth: u32) -> Option<f64> {
        let row = self.rows.get(depth as usize)?;
        let leaves: u64 = row.iter().sum();
        if leaves == 0 {
            return None;
        }
        let items: u64 = row.iter().enumerate().map(|(i, &c)| i as u64 * c).sum();
        Some(items as f64 / leaves as f64)
    }

    /// Incrementally records one leaf at `depth` with the given occupancy.
    pub fn record(&mut self, depth: u32, occupancy: usize) {
        self.record_many(depth, occupancy, 1);
    }

    /// Records `count` leaves of one `(depth, occupancy)` class at once
    /// — the bulk form the bottom-up builder uses. Lands on exactly the
    /// state `count` repeated [`DepthOccupancyTable::record`] calls
    /// reach.
    pub fn record_many(&mut self, depth: u32, occupancy: usize, count: u64) {
        let d = depth as usize;
        if d >= self.rows.len() {
            self.rows.resize_with(d + 1, Vec::new);
        }
        let row = &mut self.rows[d];
        if occupancy >= row.len() {
            row.resize(occupancy + 1, 0);
        }
        row[occupancy] += count;
    }

    /// Incrementally removes one previously recorded leaf. Rows are trimmed
    /// (trailing zeros dropped, trailing empty depths removed) so the table
    /// stays structurally identical to one built by
    /// [`DepthOccupancyTable::from_leaves`] over the surviving leaves.
    pub fn unrecord(&mut self, depth: u32, occupancy: usize) {
        let row = self
            .rows
            .get_mut(depth as usize)
            .unwrap_or_else(|| panic!("unrecord at absent depth {depth}"));
        assert!(
            row.get(occupancy).copied().unwrap_or(0) > 0,
            "unrecord of an absent occupancy class {occupancy} at depth {depth}"
        );
        row[occupancy] -= 1;
        while row.last() == Some(&0) {
            row.pop();
        }
        while self.rows.last().is_some_and(Vec::is_empty) {
            self.rows.pop();
        }
    }

    /// Moves one depth-`depth` leaf from occupancy class `old` to `new`
    /// in a single row access — the fused unrecord+record used on the
    /// tree mutation hot path. Lands on the same canonical state as
    /// `unrecord(depth, old)` followed by `record(depth, new)`; the
    /// depth row cannot empty out because the leaf stays at its depth.
    pub fn shift(&mut self, depth: u32, old: usize, new: usize) {
        let row = self
            .rows
            .get_mut(depth as usize)
            .unwrap_or_else(|| panic!("shift at absent depth {depth}"));
        assert!(
            row.get(old).copied().unwrap_or(0) > 0,
            "shift out of an absent occupancy class {old} at depth {depth}"
        );
        if new >= row.len() {
            row.resize(new + 1, 0);
        }
        row[old] -= 1;
        row[new] += 1;
        while row.last() == Some(&0) {
            row.pop();
        }
    }

    /// Collapses the table into an [`OccupancyProfile`].
    pub fn profile(&self) -> OccupancyProfile {
        let max = self.rows.iter().map(Vec::len).max().unwrap_or(0);
        let mut counts = vec![0u64; max];
        for row in &self.rows {
            for (i, &c) in row.iter().enumerate() {
                counts[i] += c;
            }
        }
        OccupancyProfile::from_counts(counts)
    }
}

/// Incrementally maintained occupancy census: the profile, the per-depth
/// table and the leaf count, kept in lockstep with a tree's mutations.
///
/// A tree calls [`OccupancyCensus::leaf_added`] when a leaf comes into
/// existence, [`OccupancyCensus::leaf_removed`] when one disappears (split
/// or collapse), and [`OccupancyCensus::occupancy_changed`] when a leaf's
/// item count changes in place. Each call is O(1) amortized, so a whole
/// insert or remove costs O(depth) census work — and the reads
/// (`profile()`, `depth_table()`, `leaf_count()`) are free: they just hand
/// back references to the maintained state.
///
/// Invariant (checked by every tree's `check_invariants` and the arena
/// equivalence proptests): the maintained state is `==` to
/// [`OccupancyCensus::from_leaves`] over the tree's current
/// `leaf_records()`.
#[derive(Debug, Clone, PartialEq)]
pub struct OccupancyCensus {
    profile: OccupancyProfile,
    table: DepthOccupancyTable,
    leaves: usize,
}

impl Default for OccupancyCensus {
    fn default() -> Self {
        Self::new()
    }
}

impl OccupancyCensus {
    /// An empty census (no leaves at all).
    pub fn new() -> Self {
        OccupancyCensus {
            profile: OccupancyProfile::from_counts(Vec::new()),
            table: DepthOccupancyTable::default(),
            leaves: 0,
        }
    }

    /// Builds a census from a full traversal — the oracle the incremental
    /// state is checked against.
    pub fn from_leaves<'a>(leaves: impl IntoIterator<Item = &'a LeafRecord>) -> Self {
        let records: Vec<&LeafRecord> = leaves.into_iter().collect();
        OccupancyCensus {
            profile: OccupancyProfile::from_leaves(records.iter().copied()),
            table: DepthOccupancyTable::from_leaves(records.iter().copied()),
            leaves: records.len(),
        }
    }

    /// A leaf with the given depth and occupancy came into existence.
    pub fn leaf_added(&mut self, depth: u32, occupancy: usize) {
        self.profile.record_leaf(occupancy);
        self.table.record(depth, occupancy);
        self.leaves += 1;
    }

    /// `count` leaves of one `(depth, occupancy)` class came into
    /// existence at once. Bulk builders tally their leaves locally and
    /// apply the whole tally through this — one profile/table touch per
    /// class instead of per leaf — landing on exactly the state `count`
    /// repeated [`OccupancyCensus::leaf_added`] calls reach.
    pub fn leaves_added(&mut self, depth: u32, occupancy: usize, count: u64) {
        self.profile.record_leaves(occupancy, count);
        self.table.record_many(depth, occupancy, count);
        self.leaves += count as usize;
    }

    /// A leaf with the given depth and occupancy ceased to exist.
    pub fn leaf_removed(&mut self, depth: u32, occupancy: usize) {
        self.profile.unrecord_leaf(occupancy);
        self.table.unrecord(depth, occupancy);
        self.leaves -= 1;
    }

    /// An existing leaf's occupancy changed from `old` to `new` in place.
    pub fn occupancy_changed(&mut self, depth: u32, old: usize, new: usize) {
        self.profile.shift_leaf(old, new);
        self.table.shift(depth, old, new);
    }

    /// The maintained occupancy profile — a free read.
    pub fn profile(&self) -> &OccupancyProfile {
        &self.profile
    }

    /// The maintained per-depth table — a free read.
    pub fn depth_table(&self) -> &DepthOccupancyTable {
        &self.table
    }

    /// The maintained leaf count — a free read.
    pub fn leaf_count(&self) -> usize {
        self.leaves
    }
}

/// A tree whose leaves can be enumerated for occupancy analysis.
///
/// Implemented by every bucketing structure in this crate; the experiment
/// harness is generic over it.
pub trait OccupancyInstrumented {
    /// Node capacity `m` of the splitting rule.
    fn capacity(&self) -> usize;

    /// One record per leaf node.
    fn leaf_records(&self) -> Vec<LeafRecord>;

    /// Occupancy profile over all leaves.
    fn occupancy_profile(&self) -> OccupancyProfile {
        OccupancyProfile::from_leaves(&self.leaf_records())
    }

    /// Per-depth occupancy table.
    fn depth_table(&self) -> DepthOccupancyTable {
        DepthOccupancyTable::from_leaves(&self.leaf_records())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn leaves(records: &[(u32, usize)]) -> Vec<LeafRecord> {
        records
            .iter()
            .map(|&(depth, occupancy)| LeafRecord { depth, occupancy })
            .collect()
    }

    #[test]
    fn profile_counts_and_totals() {
        let ls = leaves(&[(1, 0), (1, 1), (2, 1), (2, 2), (3, 2)]);
        let p = OccupancyProfile::from_leaves(&ls);
        assert_eq!(p.count(0), 1);
        assert_eq!(p.count(1), 2);
        assert_eq!(p.count(2), 2);
        assert_eq!(p.count(3), 0);
        assert_eq!(p.total_leaves(), 5);
        assert_eq!(p.total_items(), 6);
        assert_eq!(p.max_occupancy(), 2);
        assert!((p.average_occupancy() - 1.2).abs() < 1e-12);
    }

    #[test]
    fn empty_profile_is_all_zero() {
        let p = OccupancyProfile::from_leaves(&[]);
        assert_eq!(p.total_leaves(), 0);
        assert_eq!(p.average_occupancy(), 0.0);
        assert_eq!(p.proportions(3), vec![0.0; 4]);
    }

    #[test]
    fn proportions_sum_to_one_and_fold_overflow() {
        let ls = leaves(&[(9, 0), (9, 1), (9, 3)]); // occupancy 3 > capacity 1
        let p = OccupancyProfile::from_leaves(&ls);
        let props = p.proportions(1);
        assert_eq!(props.len(), 2);
        assert!((props.iter().sum::<f64>() - 1.0).abs() < 1e-12);
        assert!((props[0] - 1.0 / 3.0).abs() < 1e-12);
        assert!((props[1] - 2.0 / 3.0).abs() < 1e-12); // 1 and the folded 3
    }

    #[test]
    fn utilization_is_relative_to_capacity() {
        let p = OccupancyProfile::from_counts(vec![0, 0, 4]); // all leaves at occupancy 2
        assert!((p.utilization(4) - 0.5).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "capacity must be positive")]
    fn utilization_rejects_zero_capacity() {
        OccupancyProfile::from_counts(vec![1]).utilization(0);
    }

    #[test]
    fn depth_table_reproduces_table3_shape() {
        // Two depths: the shallow one better filled (aging).
        let ls = leaves(&[(4, 1), (4, 1), (4, 0), (5, 0), (5, 0), (5, 1)]);
        let t = DepthOccupancyTable::from_leaves(&ls);
        assert_eq!(t.depths(), vec![4, 5]);
        assert_eq!(t.count(4, 1), 2);
        assert_eq!(t.count(4, 0), 1);
        assert_eq!(t.leaves_at(5), 3);
        assert!(t.average_occupancy_at(4).unwrap() > t.average_occupancy_at(5).unwrap());
        assert_eq!(t.average_occupancy_at(9), None);
        assert_eq!(t.count(9, 0), 0);
    }

    #[test]
    fn path_length_accessors_sum_depth_weighted_items() {
        let ls = leaves(&[(1, 2), (2, 0), (2, 3), (3, 1)]);
        let t = DepthOccupancyTable::from_leaves(&ls);
        assert_eq!(t.items_at(1), 2);
        assert_eq!(t.items_at(2), 3);
        assert_eq!(t.items_at(3), 1);
        assert_eq!(t.items_at(9), 0);
        assert_eq!(t.max_depth(), Some(3));
        // Υ = 1·2 + 2·3 + 3·1 = 11 over 6 items.
        assert_eq!(t.total_item_path_length(), 11);
        assert!((t.average_item_depth().unwrap() - 11.0 / 6.0).abs() < 1e-12);
        let empty = DepthOccupancyTable::default();
        assert_eq!(empty.max_depth(), None);
        assert_eq!(empty.total_item_path_length(), 0);
        assert_eq!(empty.average_item_depth(), None);
        // Leaves with zero items contribute no path length.
        let zeros = DepthOccupancyTable::from_leaves(&leaves(&[(4, 0), (5, 0)]));
        assert_eq!(zeros.total_item_path_length(), 0);
        assert_eq!(zeros.average_item_depth(), None);
        assert_eq!(zeros.max_depth(), Some(5));
    }

    #[test]
    fn depth_table_collapses_to_profile() {
        let ls = leaves(&[(4, 1), (5, 1), (5, 2)]);
        let t = DepthOccupancyTable::from_leaves(&ls);
        let p = t.profile();
        assert_eq!(p.count(1), 2);
        assert_eq!(p.count(2), 1);
        assert_eq!(p.total_leaves(), 3);
        assert_eq!(p, OccupancyProfile::from_leaves(&ls));
    }

    #[test]
    fn incremental_profile_matches_from_leaves_after_unrecord() {
        let mut p = OccupancyProfile::from_counts(Vec::new());
        for occ in [0, 3, 3, 1, 5] {
            p.record_leaf(occ);
        }
        p.unrecord_leaf(5);
        p.unrecord_leaf(3);
        // Survivors: occupancies 0, 3, 1 — trailing class 4/5 must be gone.
        let survivors = leaves(&[(0, 0), (0, 3), (0, 1)]);
        assert_eq!(p, OccupancyProfile::from_leaves(&survivors));
        assert_eq!(p.max_occupancy(), 3);
    }

    #[test]
    #[should_panic(expected = "absent occupancy class")]
    fn unrecord_of_absent_class_panics() {
        let mut p = OccupancyProfile::from_counts(vec![1]);
        p.unrecord_leaf(2);
    }

    #[test]
    fn fused_shift_lands_on_the_unrecord_record_state() {
        // Profile: shrinking shift out of the top class must trim.
        let mut fused = OccupancyProfile::from_counts(Vec::new());
        let mut stepwise = fused.clone();
        for occ in [0, 2, 5] {
            fused.record_leaf(occ);
            stepwise.record_leaf(occ);
        }
        fused.shift_leaf(5, 4);
        stepwise.unrecord_leaf(5);
        stepwise.record_leaf(4);
        assert_eq!(fused, stepwise);
        assert_eq!(fused.max_occupancy(), 4);
        // Growing shift past the current top class must extend.
        fused.shift_leaf(4, 9);
        stepwise.unrecord_leaf(4);
        stepwise.record_leaf(9);
        assert_eq!(fused, stepwise);

        // Table: same contract per depth row.
        let mut fused = DepthOccupancyTable::default();
        let mut stepwise = DepthOccupancyTable::default();
        for &(d, o) in &[(3, 1), (3, 4), (5, 0)] {
            fused.record(d, o);
            stepwise.record(d, o);
        }
        fused.shift(3, 4, 3);
        stepwise.unrecord(3, 4);
        stepwise.record(3, 3);
        assert_eq!(fused, stepwise);
        fused.shift(5, 0, 1);
        stepwise.unrecord(5, 0);
        stepwise.record(5, 1);
        assert_eq!(fused, stepwise);
    }

    #[test]
    #[should_panic(expected = "shift out of an absent occupancy class")]
    fn shift_out_of_absent_class_panics() {
        let mut t = DepthOccupancyTable::default();
        t.record(2, 1);
        t.shift(2, 3, 4);
    }

    #[test]
    fn incremental_table_trims_rows_and_depths() {
        let mut t = DepthOccupancyTable::default();
        t.record(2, 4);
        t.record(2, 1);
        t.record(7, 0);
        t.unrecord(2, 4);
        t.unrecord(7, 0);
        let survivors = leaves(&[(2, 1)]);
        assert_eq!(t, DepthOccupancyTable::from_leaves(&survivors));
        assert_eq!(t.depths(), vec![2]);
    }

    #[test]
    fn census_tracks_adds_removes_and_changes() {
        let mut census = OccupancyCensus::new();
        assert_eq!(census, OccupancyCensus::from_leaves(&[]));
        census.leaf_added(0, 0); // empty tree: one empty root leaf
        census.occupancy_changed(0, 0, 1);
        census.occupancy_changed(0, 1, 2);
        // Split: the root leaf dies, two children appear.
        census.leaf_removed(0, 2);
        census.leaf_added(1, 1);
        census.leaf_added(1, 1);
        let expected = leaves(&[(1, 1), (1, 1)]);
        assert_eq!(census, OccupancyCensus::from_leaves(&expected));
        assert_eq!(census.leaf_count(), 2);
        assert_eq!(census.profile().total_items(), 2);
        assert_eq!(census.depth_table().leaves_at(1), 2);
    }

    #[test]
    fn trait_default_methods_agree_with_manual_construction() {
        struct Fake;
        impl OccupancyInstrumented for Fake {
            fn capacity(&self) -> usize {
                2
            }
            fn leaf_records(&self) -> Vec<LeafRecord> {
                leaves(&[(1, 0), (1, 2), (2, 1)])
            }
        }
        let f = Fake;
        assert_eq!(f.occupancy_profile().total_leaves(), 3);
        assert_eq!(f.depth_table().leaves_at(1), 2);
        assert_eq!(f.capacity(), 2);
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use popan_proptest::prelude::*;

    proptest! {
        #[test]
        fn proportions_always_sum_to_one_when_nonempty(
            occupancies in popan_proptest::collection::vec((0u32..12, 0usize..10), 1..60),
            capacity in 1usize..9,
        ) {
            let ls: Vec<LeafRecord> = occupancies
                .iter()
                .map(|&(d, o)| LeafRecord { depth: d, occupancy: o })
                .collect();
            let p = OccupancyProfile::from_leaves(&ls);
            let props = p.proportions(capacity);
            prop_assert!((props.iter().sum::<f64>() - 1.0).abs() < 1e-9);
            prop_assert!(props.iter().all(|&x| (0.0..=1.0 + 1e-12).contains(&x)));
        }

        #[test]
        fn incremental_census_is_structurally_equal_to_rebuild(
            ops in popan_proptest::collection::vec((0u32..6, 0usize..8), 1..80),
        ) {
            // Treat each (depth, occupancy) as a leaf birth; then kill them
            // off in an interleaved order and check the census against a
            // from_leaves rebuild of the survivors at every step.
            let mut census = OccupancyCensus::new();
            let mut live: Vec<LeafRecord> = Vec::new();
            for (i, &(d, o)) in ops.iter().enumerate() {
                census.leaf_added(d, o);
                live.push(LeafRecord { depth: d, occupancy: o });
                if i % 3 == 2 {
                    let victim = live.remove((i * 7919) % live.len());
                    census.leaf_removed(victim.depth, victim.occupancy);
                }
                prop_assert_eq!(&census, &OccupancyCensus::from_leaves(&live));
                prop_assert_eq!(census.leaf_count(), live.len());
            }
        }

        #[test]
        fn depth_table_conserves_counts(
            occupancies in popan_proptest::collection::vec((0u32..8, 0usize..6), 0..60),
        ) {
            let ls: Vec<LeafRecord> = occupancies
                .iter()
                .map(|&(d, o)| LeafRecord { depth: d, occupancy: o })
                .collect();
            let t = DepthOccupancyTable::from_leaves(&ls);
            let total: u64 = t.depths().iter().map(|&d| t.leaves_at(d)).sum();
            prop_assert_eq!(total, ls.len() as u64);
            prop_assert_eq!(t.profile().total_leaves(), ls.len() as u64);
        }
    }
}
