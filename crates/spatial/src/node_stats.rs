//! Occupancy statistics over a tree's leaf nodes.
//!
//! The paper's state vector `d = (p_0, p_1, …, p_m)` is "the proportion of
//! the nodes having occupancy i" over the *leaf* nodes of a quadtree.
//! [`OccupancyProfile`] computes that vector (and the derived average
//! occupancy) from a tree; [`DepthOccupancyTable`] breaks the counts down
//! by node depth for the aging analysis (Table 3).

use std::collections::BTreeMap;

/// One leaf node observation: its depth and how many items it holds.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LeafRecord {
    /// Depth of the leaf (root = 0).
    pub depth: u32,
    /// Number of stored items.
    pub occupancy: usize,
}

/// Counts of leaf nodes by occupancy.
#[derive(Debug, Clone, PartialEq)]
pub struct OccupancyProfile {
    /// `counts[i]` = number of leaves holding exactly `i` items.
    counts: Vec<u64>,
}

impl OccupancyProfile {
    /// Builds a profile from leaf records.
    pub fn from_leaves<'a>(leaves: impl IntoIterator<Item = &'a LeafRecord>) -> Self {
        let mut counts: Vec<u64> = Vec::new();
        for leaf in leaves {
            if leaf.occupancy >= counts.len() {
                counts.resize(leaf.occupancy + 1, 0);
            }
            counts[leaf.occupancy] += 1;
        }
        OccupancyProfile { counts }
    }

    /// Builds a profile directly from occupancy counts (`counts[i]` leaves
    /// of occupancy `i`).
    pub fn from_counts(counts: Vec<u64>) -> Self {
        OccupancyProfile { counts }
    }

    /// Number of leaves with occupancy `i`.
    pub fn count(&self, i: usize) -> u64 {
        self.counts.get(i).copied().unwrap_or(0)
    }

    /// Total number of leaves.
    pub fn total_leaves(&self) -> u64 {
        self.counts.iter().sum()
    }

    /// Total number of stored items.
    pub fn total_items(&self) -> u64 {
        self.counts
            .iter()
            .enumerate()
            .map(|(i, &c)| i as u64 * c)
            .sum()
    }

    /// Highest observed occupancy.
    pub fn max_occupancy(&self) -> usize {
        self.counts.len().saturating_sub(1)
    }

    /// Average items per leaf — the paper's *average node occupancy*.
    /// Returns 0 for an empty profile.
    pub fn average_occupancy(&self) -> f64 {
        let leaves = self.total_leaves();
        if leaves == 0 {
            0.0
        } else {
            self.total_items() as f64 / leaves as f64
        }
    }

    /// The proportion vector `(p_0, …, p_m)` of length `capacity + 1`.
    ///
    /// Occupancies above `capacity` (possible only for max-depth-truncated
    /// leaves) are folded into the last component, mirroring how the
    /// paper's implementation reported its deepest level. Returns all
    /// zeros for an empty profile.
    pub fn proportions(&self, capacity: usize) -> Vec<f64> {
        let total = self.total_leaves();
        let mut out = vec![0.0; capacity + 1];
        if total == 0 {
            return out;
        }
        for (i, &c) in self.counts.iter().enumerate() {
            out[i.min(capacity)] += c as f64 / total as f64;
        }
        out
    }

    /// Storage utilization: average occupancy divided by capacity.
    pub fn utilization(&self, capacity: usize) -> f64 {
        assert!(capacity > 0, "capacity must be positive");
        self.average_occupancy() / capacity as f64
    }
}

/// Leaf counts broken down by depth — the raw data of the paper's
/// Table 3 ("Occupancy by node size").
#[derive(Debug, Clone, Default)]
pub struct DepthOccupancyTable {
    /// depth → occupancy counts at that depth.
    rows: BTreeMap<u32, Vec<u64>>,
}

impl DepthOccupancyTable {
    /// Builds the table from leaf records.
    pub fn from_leaves<'a>(leaves: impl IntoIterator<Item = &'a LeafRecord>) -> Self {
        let mut rows: BTreeMap<u32, Vec<u64>> = BTreeMap::new();
        for leaf in leaves {
            let row = rows.entry(leaf.depth).or_default();
            if leaf.occupancy >= row.len() {
                row.resize(leaf.occupancy + 1, 0);
            }
            row[leaf.occupancy] += 1;
        }
        DepthOccupancyTable { rows }
    }

    /// Depths present, ascending.
    pub fn depths(&self) -> Vec<u32> {
        self.rows.keys().copied().collect()
    }

    /// Count of depth-`d` leaves with occupancy `i`.
    pub fn count(&self, depth: u32, occupancy: usize) -> u64 {
        self.rows
            .get(&depth)
            .and_then(|r| r.get(occupancy))
            .copied()
            .unwrap_or(0)
    }

    /// Total leaves at a depth.
    pub fn leaves_at(&self, depth: u32) -> u64 {
        self.rows.get(&depth).map_or(0, |r| r.iter().sum())
    }

    /// Average occupancy of the leaves at a depth (`None` if no leaves).
    ///
    /// The paper's Table 3 shows this decreasing with depth (i.e. with
    /// decreasing block size): the *aging* effect.
    pub fn average_occupancy_at(&self, depth: u32) -> Option<f64> {
        let row = self.rows.get(&depth)?;
        let leaves: u64 = row.iter().sum();
        if leaves == 0 {
            return None;
        }
        let items: u64 = row.iter().enumerate().map(|(i, &c)| i as u64 * c).sum();
        Some(items as f64 / leaves as f64)
    }

    /// Collapses the table into an [`OccupancyProfile`].
    pub fn profile(&self) -> OccupancyProfile {
        let max = self.rows.values().map(|r| r.len()).max().unwrap_or(0);
        let mut counts = vec![0u64; max];
        for row in self.rows.values() {
            for (i, &c) in row.iter().enumerate() {
                counts[i] += c;
            }
        }
        OccupancyProfile::from_counts(counts)
    }
}

/// A tree whose leaves can be enumerated for occupancy analysis.
///
/// Implemented by every bucketing structure in this crate; the experiment
/// harness is generic over it.
pub trait OccupancyInstrumented {
    /// Node capacity `m` of the splitting rule.
    fn capacity(&self) -> usize;

    /// One record per leaf node.
    fn leaf_records(&self) -> Vec<LeafRecord>;

    /// Occupancy profile over all leaves.
    fn occupancy_profile(&self) -> OccupancyProfile {
        OccupancyProfile::from_leaves(&self.leaf_records())
    }

    /// Per-depth occupancy table.
    fn depth_table(&self) -> DepthOccupancyTable {
        DepthOccupancyTable::from_leaves(&self.leaf_records())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn leaves(records: &[(u32, usize)]) -> Vec<LeafRecord> {
        records
            .iter()
            .map(|&(depth, occupancy)| LeafRecord { depth, occupancy })
            .collect()
    }

    #[test]
    fn profile_counts_and_totals() {
        let ls = leaves(&[(1, 0), (1, 1), (2, 1), (2, 2), (3, 2)]);
        let p = OccupancyProfile::from_leaves(&ls);
        assert_eq!(p.count(0), 1);
        assert_eq!(p.count(1), 2);
        assert_eq!(p.count(2), 2);
        assert_eq!(p.count(3), 0);
        assert_eq!(p.total_leaves(), 5);
        assert_eq!(p.total_items(), 6);
        assert_eq!(p.max_occupancy(), 2);
        assert!((p.average_occupancy() - 1.2).abs() < 1e-12);
    }

    #[test]
    fn empty_profile_is_all_zero() {
        let p = OccupancyProfile::from_leaves(&[]);
        assert_eq!(p.total_leaves(), 0);
        assert_eq!(p.average_occupancy(), 0.0);
        assert_eq!(p.proportions(3), vec![0.0; 4]);
    }

    #[test]
    fn proportions_sum_to_one_and_fold_overflow() {
        let ls = leaves(&[(9, 0), (9, 1), (9, 3)]); // occupancy 3 > capacity 1
        let p = OccupancyProfile::from_leaves(&ls);
        let props = p.proportions(1);
        assert_eq!(props.len(), 2);
        assert!((props.iter().sum::<f64>() - 1.0).abs() < 1e-12);
        assert!((props[0] - 1.0 / 3.0).abs() < 1e-12);
        assert!((props[1] - 2.0 / 3.0).abs() < 1e-12); // 1 and the folded 3
    }

    #[test]
    fn utilization_is_relative_to_capacity() {
        let p = OccupancyProfile::from_counts(vec![0, 0, 4]); // all leaves at occupancy 2
        assert!((p.utilization(4) - 0.5).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "capacity must be positive")]
    fn utilization_rejects_zero_capacity() {
        OccupancyProfile::from_counts(vec![1]).utilization(0);
    }

    #[test]
    fn depth_table_reproduces_table3_shape() {
        // Two depths: the shallow one better filled (aging).
        let ls = leaves(&[(4, 1), (4, 1), (4, 0), (5, 0), (5, 0), (5, 1)]);
        let t = DepthOccupancyTable::from_leaves(&ls);
        assert_eq!(t.depths(), vec![4, 5]);
        assert_eq!(t.count(4, 1), 2);
        assert_eq!(t.count(4, 0), 1);
        assert_eq!(t.leaves_at(5), 3);
        assert!(t.average_occupancy_at(4).unwrap() > t.average_occupancy_at(5).unwrap());
        assert_eq!(t.average_occupancy_at(9), None);
        assert_eq!(t.count(9, 0), 0);
    }

    #[test]
    fn depth_table_collapses_to_profile() {
        let ls = leaves(&[(4, 1), (5, 1), (5, 2)]);
        let t = DepthOccupancyTable::from_leaves(&ls);
        let p = t.profile();
        assert_eq!(p.count(1), 2);
        assert_eq!(p.count(2), 1);
        assert_eq!(p.total_leaves(), 3);
        assert_eq!(p, OccupancyProfile::from_leaves(&ls));
    }

    #[test]
    fn trait_default_methods_agree_with_manual_construction() {
        struct Fake;
        impl OccupancyInstrumented for Fake {
            fn capacity(&self) -> usize {
                2
            }
            fn leaf_records(&self) -> Vec<LeafRecord> {
                leaves(&[(1, 0), (1, 2), (2, 1)])
            }
        }
        let f = Fake;
        assert_eq!(f.occupancy_profile().total_leaves(), 3);
        assert_eq!(f.depth_table().leaves_at(1), 2);
        assert_eq!(f.capacity(), 2);
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use popan_proptest::prelude::*;

    proptest! {
        #[test]
        fn proportions_always_sum_to_one_when_nonempty(
            occupancies in popan_proptest::collection::vec((0u32..12, 0usize..10), 1..60),
            capacity in 1usize..9,
        ) {
            let ls: Vec<LeafRecord> = occupancies
                .iter()
                .map(|&(d, o)| LeafRecord { depth: d, occupancy: o })
                .collect();
            let p = OccupancyProfile::from_leaves(&ls);
            let props = p.proportions(capacity);
            prop_assert!((props.iter().sum::<f64>() - 1.0).abs() < 1e-9);
            prop_assert!(props.iter().all(|&x| (0.0..=1.0 + 1e-12).contains(&x)));
        }

        #[test]
        fn depth_table_conserves_counts(
            occupancies in popan_proptest::collection::vec((0u32..8, 0usize..6), 0..60),
        ) {
            let ls: Vec<LeafRecord> = occupancies
                .iter()
                .map(|&(d, o)| LeafRecord { depth: d, occupancy: o })
                .collect();
            let t = DepthOccupancyTable::from_leaves(&ls);
            let total: u64 = t.depths().iter().map(|&d| t.leaves_at(d)).sum();
            prop_assert_eq!(total, ls.len() as u64);
            prop_assert_eq!(t.profile().total_leaves(), ls.len() as u64);
        }
    }
}
