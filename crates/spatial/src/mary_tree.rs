//! The random m-ary search tree over keys.
//!
//! The classic comparison-based member of Devroye's split-tree family
//! (`popan_core::split::SplitSpec::mary_search_tree`): a node buffers up
//! to `b − 1` keys; the `b`-th arrival freezes the buffered keys as
//! *pivots*, creates `b` children (one per pivot gap), and sends the new
//! key down. `b = 2` is the classic binary search tree built leaf-ward.
//!
//! In split-tree terms: branch factor `b`, capacity `s = b − 1`,
//! `s₀ = s = b − 1` (every buffered key is retained as a pivot),
//! `s₁ = 0`, and exactly one key scatters — under uniformly random keys
//! the pivot gaps are `Dirichlet(1,…,1)` spacings, so the expected split
//! row is `(b−1)·e₀ + e₁` and the renewal-theory depth constant is
//! `1/(H_b − 1)` (Holmgren; `b = 2` gives the BST's `2·ln n`).
//!
//! Structurally the tree follows the arena idiom of the regular-
//! decomposition trees: nodes in a contiguous `Vec` addressed by `u32`
//! ids, children allocated as one contiguous block per split, and an
//! [`OccupancyCensus`] maintained incrementally so `depth_table()` /
//! `occupancy_profile()` / `leaf_count()` are zero-allocation reads.
//! Unlike the spatial trees, items also live at internal nodes (the
//! pivots); the tree tracks their count and path length so
//! [`MarySearchTree::total_path_length`] reports the full
//! Broutin–Holmgren `Υ_n` over *all* stored keys.

use crate::node_stats::{
    DepthOccupancyTable, LeafRecord, OccupancyCensus, OccupancyInstrumented, OccupancyProfile,
};
use crate::pr_quadtree::TreeError;

/// One node: a leaf buffering up to `b − 1` keys, or an internal node
/// whose `b − 1` keys act as pivots over a contiguous block of `b`
/// children.
#[derive(Debug, Clone)]
struct Node {
    depth: u32,
    /// Sorted keys: the leaf buffer, or the pivots once internal.
    keys: Vec<u64>,
    /// Base id of the contiguous `b`-child block (`None` for a leaf).
    children: Option<u32>,
}

impl Node {
    fn leaf(depth: u32) -> Self {
        Node {
            depth,
            keys: Vec::new(),
            children: None,
        }
    }
}

/// A random m-ary search tree over `u64` keys with branch factor `b ≥ 2`.
///
/// Duplicate keys are accepted (equal keys route to the right), so a
/// pathological all-equal stream degrades to a rightmost chain — the
/// usual BST caveat, bounded per insert by one descent and one split.
#[derive(Debug, Clone)]
pub struct MarySearchTree {
    branch: usize,
    nodes: Vec<Node>,
    census: OccupancyCensus,
    len: usize,
    /// Keys frozen as pivots at internal nodes.
    pivot_count: usize,
    /// Σ depth over pivot keys — the internal-node share of `Υ_n`.
    pivot_path: u64,
}

impl MarySearchTree {
    /// Creates an empty tree with branch factor `branch ≥ 2` (leaf
    /// capacity `branch − 1`).
    pub fn new(branch: usize) -> Result<Self, TreeError> {
        if branch < 2 {
            return Err(TreeError::InvalidParameter(
                "branch factor must be at least 2".into(),
            ));
        }
        let mut census = OccupancyCensus::new();
        census.leaf_added(0, 0);
        Ok(MarySearchTree {
            branch,
            nodes: vec![Node::leaf(0)],
            census,
            len: 0,
            pivot_count: 0,
            pivot_path: 0,
        })
    }

    /// Builds a tree by inserting `keys` in order.
    pub fn build(branch: usize, keys: impl IntoIterator<Item = u64>) -> Result<Self, TreeError> {
        let mut t = Self::new(branch)?;
        for k in keys {
            t.insert(k);
        }
        Ok(t)
    }

    /// Branch factor `b`.
    pub fn branch(&self) -> usize {
        self.branch
    }

    /// Number of stored keys (pivots + leaf buffers).
    pub fn len(&self) -> usize {
        self.len
    }

    /// `true` when no keys are stored.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Number of keys frozen as pivots at internal nodes.
    pub fn pivot_count(&self) -> usize {
        self.pivot_count
    }

    /// Total node count (internal + leaf).
    pub fn node_count(&self) -> usize {
        self.nodes.len()
    }

    /// Leaf count, served from the maintained census: O(1).
    pub fn leaf_count(&self) -> usize {
        self.census.leaf_count()
    }

    /// Deepest leaf depth (0 for the fresh root-only tree).
    pub fn height(&self) -> u32 {
        self.census.depth_table().max_depth().unwrap_or(0)
    }

    /// Child index for `key` among sorted `pivots`: equal keys go right.
    fn route(pivots: &[u64], key: u64) -> usize {
        pivots.partition_point(|&p| p <= key)
    }

    /// Inserts a key. One descent plus at most one split: when the
    /// `b`-th key reaches a full leaf, the buffered `b − 1` keys become
    /// pivots over `b` fresh empty children and the arriving key routes
    /// one level down.
    pub fn insert(&mut self, key: u64) {
        let mut id = 0usize;
        while let Some(base) = self.nodes[id].children {
            id = base as usize + Self::route(&self.nodes[id].keys, key);
        }
        let depth = self.nodes[id].depth;
        let occ = self.nodes[id].keys.len();
        if occ < self.branch - 1 {
            let at = self.nodes[id].keys.partition_point(|&k| k <= key);
            self.nodes[id].keys.insert(at, key);
            self.census.occupancy_changed(depth, occ, occ + 1);
        } else {
            // Split: the buffer freezes into pivots, b children appear.
            self.census.leaf_removed(depth, occ);
            self.pivot_count += occ;
            self.pivot_path += u64::from(depth) * occ as u64;
            let base = self.nodes.len() as u32;
            for _ in 0..self.branch {
                self.nodes.push(Node::leaf(depth + 1));
                self.census.leaf_added(depth + 1, 0);
            }
            self.nodes[id].children = Some(base);
            let child = base as usize + Self::route(&self.nodes[id].keys, key);
            self.nodes[child].keys.push(key);
            self.census.occupancy_changed(depth + 1, 0, 1);
        }
        self.len += 1;
    }

    /// `true` when an exactly equal key is stored (as pivot or buffered).
    pub fn contains(&self, key: u64) -> bool {
        let mut id = 0usize;
        loop {
            let node = &self.nodes[id];
            if node.keys.binary_search(&key).is_ok() {
                return true;
            }
            match node.children {
                Some(base) => id = base as usize + Self::route(&node.keys, key),
                None => return false,
            }
        }
    }

    /// All stored keys in sorted (in-order) order.
    pub fn keys(&self) -> Vec<u64> {
        let mut out = Vec::with_capacity(self.len);
        // Explicit stack of (node id, next in-order slot). Slots at an
        // internal node alternate child 0, pivot 0, child 1, …, child b−1.
        let mut stack: Vec<(usize, usize)> = vec![(0, 0)];
        while let Some((id, slot)) = stack.pop() {
            let node = &self.nodes[id];
            match node.children {
                None => out.extend_from_slice(&node.keys),
                Some(base) => {
                    if slot >= 2 * self.branch - 1 {
                        continue;
                    }
                    stack.push((id, slot + 1));
                    if slot % 2 == 1 {
                        out.push(node.keys[slot / 2]);
                    } else {
                        stack.push((base as usize + slot / 2, 0));
                    }
                }
            }
        }
        out
    }

    /// One record per leaf node (traversal; the census serves the same
    /// data incrementally).
    pub fn leaf_records(&self) -> Vec<LeafRecord> {
        self.nodes
            .iter()
            .filter(|n| n.children.is_none())
            .map(|n| LeafRecord {
                depth: n.depth,
                occupancy: n.keys.len(),
            })
            .collect()
    }

    /// The occupancy profile over leaf buffers, maintained
    /// incrementally — a zero-allocation, zero-traversal read.
    pub fn occupancy_profile(&self) -> &OccupancyProfile {
        self.census.profile()
    }

    /// The per-depth occupancy table, maintained incrementally — a
    /// zero-allocation, zero-traversal read.
    pub fn depth_table(&self) -> &DepthOccupancyTable {
        self.census.depth_table()
    }

    /// Total path length `Υ_n = Σ depth(key)` over *all* stored keys:
    /// the pivots' share (tracked at split time) plus the buffered
    /// keys' share from the census — the Broutin–Holmgren quantity.
    pub fn total_path_length(&self) -> u64 {
        self.pivot_path + self.census.depth_table().total_item_path_length()
    }

    /// Average depth of a stored key (0 for an empty tree).
    pub fn average_key_depth(&self) -> f64 {
        if self.len == 0 {
            0.0
        } else {
            self.total_path_length() as f64 / self.len as f64
        }
    }

    /// Expected depth at which the *next* uniformly random key would be
    /// buffered — Holmgren's `D_n`, computed exactly from the census.
    ///
    /// The `n` stored keys cut the key space into `n + 1` gaps; a leaf
    /// buffering `j` keys spans `j + 1` of them, so the next key lands
    /// in it with probability `(j + 1)/(n + 1)`:
    /// `E[D] = Σ_d d·(items_at(d) + leaves_at(d)) / (n + 1)`.
    pub fn expected_insertion_depth(&self) -> f64 {
        let t = self.census.depth_table();
        let weighted: u64 = (0..=t.max_depth().unwrap_or(0))
            .map(|d| u64::from(d) * (t.items_at(d) + t.leaves_at(d)))
            .sum();
        weighted as f64 / (self.len as f64 + 1.0)
    }

    /// Verifies structural invariants; panics on violation.
    ///
    /// Checks: node shape (internal nodes carry exactly `b − 1` sorted
    /// pivots, leaves at most that many sorted keys, children one level
    /// down), the incremental census against a full-traversal rebuild,
    /// the pivot accounting against a recount, and global in-order
    /// sortedness.
    pub fn check_invariants(&self) {
        let mut pivots = 0usize;
        let mut pivot_path = 0u64;
        let mut leaf_keys = 0usize;
        for (id, node) in self.nodes.iter().enumerate() {
            assert!(
                node.keys.windows(2).all(|w| w[0] <= w[1]),
                "node {id}: keys not sorted"
            );
            match node.children {
                Some(base) => {
                    assert_eq!(
                        node.keys.len(),
                        self.branch - 1,
                        "internal node {id} must hold exactly b-1 pivots"
                    );
                    pivots += node.keys.len();
                    pivot_path += u64::from(node.depth) * node.keys.len() as u64;
                    for c in 0..self.branch {
                        let child = &self.nodes[base as usize + c];
                        assert_eq!(child.depth, node.depth + 1, "child depth under node {id}");
                    }
                }
                None => {
                    assert!(
                        node.keys.len() < self.branch,
                        "leaf {id} over capacity: {} keys",
                        node.keys.len()
                    );
                    leaf_keys += node.keys.len();
                }
            }
        }
        assert_eq!(pivots, self.pivot_count, "pivot count drifted");
        assert_eq!(pivot_path, self.pivot_path, "pivot path length drifted");
        assert_eq!(pivots + leaf_keys, self.len, "key count drifted");
        let records = self.leaf_records();
        assert_eq!(
            self.census,
            OccupancyCensus::from_leaves(&records),
            "incremental census drifted from traversal rebuild"
        );
        let keys = self.keys();
        assert_eq!(keys.len(), self.len, "in-order enumeration lost keys");
        assert!(
            keys.windows(2).all(|w| w[0] <= w[1]),
            "in-order enumeration not sorted"
        );
    }
}

impl OccupancyInstrumented for MarySearchTree {
    fn capacity(&self) -> usize {
        self.branch - 1
    }

    fn leaf_records(&self) -> Vec<LeafRecord> {
        MarySearchTree::leaf_records(self)
    }

    fn occupancy_profile(&self) -> OccupancyProfile {
        self.census.profile().clone()
    }

    fn depth_table(&self) -> DepthOccupancyTable {
        self.census.depth_table().clone()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use popan_rng::rngs::StdRng;
    use popan_rng::SeedableRng;
    use popan_workload::keys::UniformKeys;

    #[test]
    fn rejects_branch_below_two() {
        assert!(MarySearchTree::new(0).is_err());
        assert!(MarySearchTree::new(1).is_err());
        assert!(MarySearchTree::new(2).is_ok());
    }

    #[test]
    fn empty_tree_is_one_empty_root_leaf() {
        let t = MarySearchTree::new(4).unwrap();
        assert!(t.is_empty());
        assert_eq!(t.node_count(), 1);
        assert_eq!(t.leaf_count(), 1);
        assert_eq!(t.height(), 0);
        assert_eq!(t.total_path_length(), 0);
        assert_eq!(t.average_key_depth(), 0.0);
        assert_eq!(t.expected_insertion_depth(), 0.0);
        t.check_invariants();
    }

    #[test]
    fn first_split_freezes_buffer_into_pivots() {
        // b = 4: three keys buffer at the root; the fourth splits.
        let mut t = MarySearchTree::new(4).unwrap();
        for k in [30u64, 10, 20] {
            t.insert(k);
        }
        assert_eq!(t.node_count(), 1);
        assert_eq!(t.pivot_count(), 0);
        t.insert(15);
        assert_eq!(t.node_count(), 5, "root + 4 children");
        assert_eq!(t.pivot_count(), 3);
        assert_eq!(t.leaf_count(), 4);
        assert_eq!(t.len(), 4);
        // 15 routed between pivots 10 and 20 → child 1, depth 1.
        assert_eq!(t.total_path_length(), 1);
        assert_eq!(t.keys(), vec![10, 15, 20, 30]);
        assert!(t.contains(15) && t.contains(10) && !t.contains(99));
        t.check_invariants();
    }

    #[test]
    fn bst_case_matches_hand_trace() {
        // b = 2 is a leaf-buffered BST: capacity-1 leaves, every second
        // key per subtree becomes a pivot.
        let mut t = MarySearchTree::new(2).unwrap();
        t.insert(50);
        assert_eq!(t.node_count(), 1);
        t.insert(30); // splits root: pivot 50, children; 30 goes left
        assert_eq!(t.node_count(), 3);
        assert_eq!(t.pivot_count(), 1);
        t.insert(70); // right child buffers 70
        assert_eq!(t.node_count(), 3);
        t.insert(60); // splits right child: pivot 70, 60 goes left of it
        assert_eq!(t.node_count(), 5);
        assert_eq!(t.keys(), vec![30, 50, 60, 70]);
        // Depths: 30@1, 50@0 (pivot), 60@2, 70@1 (pivot) → Υ = 4.
        assert_eq!(t.total_path_length(), 4);
        t.check_invariants();
    }

    #[test]
    fn duplicates_route_right_and_are_retained() {
        let mut t = MarySearchTree::new(3).unwrap();
        for _ in 0..7 {
            t.insert(42);
        }
        assert_eq!(t.len(), 7);
        assert_eq!(t.keys(), vec![42; 7]);
        assert!(t.contains(42));
        t.check_invariants();
    }

    #[test]
    fn random_build_invariants_across_branches() {
        for branch in [2usize, 3, 4, 8] {
            let mut rng = StdRng::seed_from_u64(0x5117 + branch as u64);
            let keys = UniformKeys.sample_n(&mut rng, 500);
            let t = MarySearchTree::build(branch, keys.iter().copied()).unwrap();
            assert_eq!(t.len(), 500);
            t.check_invariants();
            for &k in &keys {
                assert!(t.contains(k));
            }
            let mut sorted = keys.clone();
            sorted.sort_unstable();
            assert_eq!(t.keys(), sorted);
            // Node-count identity: internal·(b−1) + 1 = leaves.
            let internal = t.node_count() - t.leaf_count();
            assert_eq!(internal * (branch - 1) + 1, t.leaf_count());
            // Pivot accounting: internal·(b−1) pivots.
            assert_eq!(t.pivot_count(), internal * (branch - 1));
        }
    }

    #[test]
    fn census_reads_match_traversal() {
        let mut rng = StdRng::seed_from_u64(0xa11ce);
        let keys = UniformKeys.sample_n(&mut rng, 300);
        let t = MarySearchTree::build(4, keys).unwrap();
        let records = t.leaf_records();
        assert_eq!(
            t.occupancy_profile(),
            &OccupancyProfile::from_leaves(&records)
        );
        assert_eq!(t.depth_table(), &DepthOccupancyTable::from_leaves(&records));
        assert_eq!(t.leaf_count(), records.len());
        assert!(OccupancyInstrumented::capacity(&t) == 3);
    }

    #[test]
    fn depth_grows_like_holmgren_constant() {
        // Coarse asymptotics smoke test (the split experiment does the
        // real regression): BST average depth ≈ 2·ln n within a wide
        // band at n = 4096.
        let mut rng = StdRng::seed_from_u64(0xdeeb);
        let keys = UniformKeys.sample_n(&mut rng, 4096);
        let t = MarySearchTree::build(2, keys).unwrap();
        let expect = 2.0 * 4096f64.ln();
        let measured = t.average_key_depth();
        assert!(
            measured > 0.6 * expect && measured < 1.2 * expect,
            "BST average depth {measured} vs 2 ln n = {expect}"
        );
        // Larger branch ⇒ shallower: H_8 − 1 > H_2 − 1.
        let mut rng = StdRng::seed_from_u64(0xdeeb);
        let keys = UniformKeys.sample_n(&mut rng, 4096);
        let t8 = MarySearchTree::build(8, keys).unwrap();
        assert!(t8.average_key_depth() < measured);
    }

    #[test]
    fn expected_insertion_depth_weights_gaps() {
        // Root split just happened (b = 2, one pivot, two leaves: left
        // holds 1 key, right empty): gaps are 2 at depth 1 (left leaf)
        // and 1 at depth 1 (right leaf) over n + 1 = 3 ⇒ E[D] = 1.
        let mut t = MarySearchTree::new(2).unwrap();
        t.insert(50);
        t.insert(30);
        assert!((t.expected_insertion_depth() - 1.0).abs() < 1e-12);
        // And it matches a direct traversal computation on a random tree.
        let mut rng = StdRng::seed_from_u64(0xfeed);
        let keys = UniformKeys.sample_n(&mut rng, 400);
        let t = MarySearchTree::build(3, keys).unwrap();
        let direct: f64 = t
            .leaf_records()
            .iter()
            .map(|r| f64::from(r.depth) * (r.occupancy as f64 + 1.0))
            .sum::<f64>()
            / (t.len() as f64 + 1.0);
        assert!((t.expected_insertion_depth() - direct).abs() < 1e-9);
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use popan_proptest::prelude::*;

    proptest! {
        #[test]
        fn invariants_hold_under_arbitrary_insertions(
            keys in popan_proptest::collection::vec(0u64..1000, 1..200),
            branch in 2usize..9,
        ) {
            let t = MarySearchTree::build(branch, keys.iter().copied()).unwrap();
            t.check_invariants();
            prop_assert_eq!(t.len(), keys.len());
            let mut sorted = keys.clone();
            sorted.sort_unstable();
            prop_assert_eq!(t.keys(), sorted);
            for &k in &keys {
                prop_assert!(t.contains(k));
            }
        }
    }
}
