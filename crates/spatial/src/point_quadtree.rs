//! The classical (Finkel–Bentley) point quadtree.
//!
//! Included for the paper's §II taxonomy: the second decomposition family,
//! where "the partition is determined explicitly by the data as it is
//! entered into the structure" — each stored point becomes the partition
//! origin of its subtree, so "the shape of the final structure depends
//! critically on the order in which the information was inserted".
//!
//! Because every node holds exactly one point, the point quadtree has no
//! occupancy populations; the interesting statistics are depth-related,
//! which is what this implementation exposes.

use crate::pr_quadtree::TreeError;
use popan_geom::{Point2, Rect};

#[derive(Debug, Clone)]
struct Node {
    point: Point2,
    /// Children by quadrant relative to `point`: index = (y ≥ py)·2 + (x ≥ px),
    /// matching [`popan_geom::Quadrant`] numbering.
    children: [Option<Box<Node>>; 4],
}

impl Node {
    fn new(point: Point2) -> Node {
        Node {
            point,
            children: [None, None, None, None],
        }
    }

    fn quadrant_index(&self, p: &Point2) -> usize {
        usize::from(p.y >= self.point.y) * 2 + usize::from(p.x >= self.point.x)
    }
}

/// A point quadtree: one point per node, data-dependent partitions.
#[derive(Debug, Clone, Default)]
pub struct PointQuadtree {
    root: Option<Box<Node>>,
    len: usize,
}

impl PointQuadtree {
    /// Creates an empty tree.
    pub fn new() -> Self {
        PointQuadtree::default()
    }

    /// Builds a tree by inserting `points` in order.
    pub fn build(points: impl IntoIterator<Item = Point2>) -> Result<Self, TreeError> {
        let mut t = Self::new();
        for p in points {
            t.insert(p)?;
        }
        Ok(t)
    }

    /// Number of stored points.
    pub fn len(&self) -> usize {
        self.len
    }

    /// `true` when empty.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Inserts a point. Duplicate points are rejected (the point quadtree
    /// stores *distinct* keys; a duplicate would land forever in the same
    /// `≥/≥` quadrant of itself).
    pub fn insert(&mut self, p: Point2) -> Result<(), TreeError> {
        if !p.is_finite() {
            return Err(TreeError::NonFinitePoint);
        }
        match &mut self.root {
            None => {
                self.root = Some(Box::new(Node::new(p)));
            }
            Some(root) => {
                let mut node = root.as_mut();
                loop {
                    if node.point == p {
                        return Err(TreeError::InvalidParameter(format!("duplicate point {p}")));
                    }
                    let q = node.quadrant_index(&p);
                    if node.children[q].is_none() {
                        node.children[q] = Some(Box::new(Node::new(p)));
                        break;
                    }
                    node = node.children[q].as_mut().unwrap();
                }
            }
        }
        self.len += 1;
        Ok(())
    }

    /// `true` when an exactly equal point is stored.
    pub fn contains(&self, p: &Point2) -> bool {
        let mut node = match &self.root {
            None => return false,
            Some(n) => n.as_ref(),
        };
        loop {
            if node.point == *p {
                return true;
            }
            match &node.children[node.quadrant_index(p)] {
                None => return false,
                Some(child) => node = child.as_ref(),
            }
        }
    }

    /// Depth of the deepest node (root = 0); `None` when empty.
    pub fn max_depth(&self) -> Option<u32> {
        fn walk(node: &Node) -> u32 {
            node.children
                .iter()
                .flatten()
                .map(|c| 1 + walk(c))
                .max()
                .unwrap_or(0)
        }
        self.root.as_ref().map(|r| walk(r))
    }

    /// Mean node depth; `None` when empty. Order-sensitivity shows up
    /// here: sorted insertions degenerate toward a list.
    pub fn mean_depth(&self) -> Option<f64> {
        fn walk(node: &Node, depth: u64, sum: &mut u64, count: &mut u64) {
            *sum += depth;
            *count += 1;
            for c in node.children.iter().flatten() {
                walk(c, depth + 1, sum, count);
            }
        }
        let root = self.root.as_ref()?;
        let mut sum = 0;
        let mut count = 0;
        walk(root, 0, &mut sum, &mut count);
        Some(sum as f64 / count as f64)
    }

    /// Total node count (equals [`Self::len`] — one point per node).
    pub fn node_count(&self) -> usize {
        self.len
    }

    /// All stored points, in preorder (root, then children by quadrant
    /// index).
    pub fn points(&self) -> Vec<Point2> {
        fn walk(node: &Node, out: &mut Vec<Point2>) {
            out.push(node.point);
            for c in node.children.iter().flatten() {
                walk(c, out);
            }
        }
        let mut out = Vec::with_capacity(self.len);
        if let Some(root) = &self.root {
            walk(root, &mut out);
        }
        out
    }

    /// All stored points inside `query` (half-open on both axes, like
    /// the PR trees), in preorder.
    ///
    /// Prunes subtrees by the partition each node's point induces: a
    /// child quadrant is descended only when the query rectangle can
    /// reach its `≥/<` half-planes.
    pub fn range_query(&self, query: &Rect) -> Vec<Point2> {
        fn walk(node: &Node, query: &Rect, out: &mut Vec<Point2>) {
            if query.contains(&node.point) {
                out.push(node.point);
            }
            let (px, py) = (node.point.x, node.point.y);
            // Child q = (y ≥ py)·2 + (x ≥ px); the query touches the
            // x < px half-plane iff its low edge is left of px, the
            // x ≥ px half-plane iff its (exclusive) high edge passes px.
            let x_reach = [query.x().lo() < px, query.x().hi() > px];
            let y_reach = [query.y().lo() < py, query.y().hi() > py];
            for (q, child) in node.children.iter().enumerate() {
                if let Some(child) = child {
                    if x_reach[q & 1] && y_reach[q >> 1] {
                        walk(child, query, out);
                    }
                }
            }
        }
        let mut out = Vec::new();
        if let Some(root) = &self.root {
            walk(root, query, &mut out);
        }
        out
    }

    /// Counts stored points inside `query` without materializing them.
    pub fn count_in_range(&self, query: &Rect) -> usize {
        fn walk(node: &Node, query: &Rect, count: &mut usize) {
            if query.contains(&node.point) {
                *count += 1;
            }
            let (px, py) = (node.point.x, node.point.y);
            let x_reach = [query.x().lo() < px, query.x().hi() > px];
            let y_reach = [query.y().lo() < py, query.y().hi() > py];
            for (q, child) in node.children.iter().enumerate() {
                if let Some(child) = child {
                    if x_reach[q & 1] && y_reach[q >> 1] {
                        walk(child, query, count);
                    }
                }
            }
        }
        let mut count = 0;
        if let Some(root) = &self.root {
            walk(root, query, &mut count);
        }
        count
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use popan_rng::rngs::StdRng;
    use popan_rng::SeedableRng;
    use popan_workload::points::{PointSource, UniformRect};

    fn pt(x: f64, y: f64) -> Point2 {
        Point2::new(x, y)
    }

    #[test]
    fn empty_tree() {
        let t = PointQuadtree::new();
        assert!(t.is_empty());
        assert_eq!(t.max_depth(), None);
        assert_eq!(t.mean_depth(), None);
        assert!(!t.contains(&pt(0.0, 0.0)));
    }

    #[test]
    fn insert_and_find() {
        let mut t = PointQuadtree::new();
        t.insert(pt(0.5, 0.5)).unwrap();
        t.insert(pt(0.25, 0.75)).unwrap();
        t.insert(pt(0.75, 0.25)).unwrap();
        assert_eq!(t.len(), 3);
        assert!(t.contains(&pt(0.25, 0.75)));
        assert!(!t.contains(&pt(0.25, 0.25)));
        assert_eq!(t.max_depth(), Some(1));
    }

    #[test]
    fn duplicates_rejected() {
        let mut t = PointQuadtree::new();
        t.insert(pt(0.5, 0.5)).unwrap();
        assert!(t.insert(pt(0.5, 0.5)).is_err());
        assert_eq!(t.len(), 1);
    }

    #[test]
    fn non_finite_rejected() {
        let mut t = PointQuadtree::new();
        assert!(t.insert(pt(f64::NAN, 0.0)).is_err());
    }

    #[test]
    fn shape_depends_on_insertion_order() {
        // Paper §II: the point quadtree is order-sensitive (the PR
        // quadtree is not — see the PR quadtree tests).
        let balanced = PointQuadtree::build([
            pt(0.5, 0.5),
            pt(0.25, 0.25),
            pt(0.75, 0.75),
            pt(0.25, 0.75),
            pt(0.75, 0.25),
        ])
        .unwrap();
        // Sorted along the diagonal: degenerates to a path.
        let degenerate = PointQuadtree::build([
            pt(0.1, 0.1),
            pt(0.2, 0.2),
            pt(0.3, 0.3),
            pt(0.4, 0.4),
            pt(0.5, 0.5),
        ])
        .unwrap();
        assert_eq!(balanced.max_depth(), Some(1));
        assert_eq!(degenerate.max_depth(), Some(4));
    }

    #[test]
    fn range_query_matches_scan() {
        let src = UniformRect::unit();
        let mut rng = StdRng::seed_from_u64(9);
        let points = src.sample_n(&mut rng, 400);
        let t = PointQuadtree::build(points.iter().copied()).unwrap();
        assert_eq!(t.points().len(), 400);
        for query in [
            popan_geom::Rect::from_bounds(0.0, 0.0, 1.0, 1.0),
            popan_geom::Rect::from_bounds(0.2, 0.3, 0.6, 0.9),
            popan_geom::Rect::from_bounds(0.5, 0.5, 0.50001, 0.50001),
        ] {
            let expect = points.iter().filter(|p| query.contains(p)).count();
            assert_eq!(t.range_query(&query).len(), expect, "{query}");
            assert_eq!(t.count_in_range(&query), expect, "{query}");
        }
    }

    #[test]
    fn range_query_prunes_on_partition_boundaries() {
        // A query whose edges coincide with stored partition points —
        // the ≥/< half-plane reach tests must not lose boundary nodes.
        let t = PointQuadtree::build([
            pt(0.5, 0.5),
            pt(0.25, 0.25),
            pt(0.75, 0.75),
            pt(0.25, 0.75),
            pt(0.75, 0.25),
        ])
        .unwrap();
        let q = popan_geom::Rect::from_bounds(0.25, 0.25, 0.75, 0.75);
        // Half-open: (0.75, ·) and (·, 0.75) excluded, (0.25, 0.25) and
        // (0.5, 0.5) included.
        let got = t.range_query(&q);
        assert_eq!(got.len(), 2);
        assert_eq!(t.count_in_range(&q), 2);
    }

    #[test]
    fn random_build_contains_everything() {
        let src = UniformRect::unit();
        let mut rng = StdRng::seed_from_u64(3);
        let points = src.sample_n(&mut rng, 500);
        let t = PointQuadtree::build(points.iter().copied()).unwrap();
        assert_eq!(t.len(), 500);
        assert_eq!(t.node_count(), 500);
        for p in &points {
            assert!(t.contains(p));
        }
        // Random order gives roughly logarithmic depth.
        let d = t.max_depth().unwrap();
        assert!(d < 25, "random point quadtree depth {d} suspiciously large");
        assert!(t.mean_depth().unwrap() < d as f64);
    }
}
