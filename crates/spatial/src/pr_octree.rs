//! The PR octree: the PR bucketing discipline in 3-D.
//!
//! The paper remarks that "the same principles apply in the case of
//! octrees and higher dimensional data structures" — branching factor 8
//! instead of 4. The `dims` extension experiment validates the generalized
//! population model against this tree.
//!
//! Like [`crate::PrQuadtree`], the octree is backed by the contiguous
//! arena core with an incrementally maintained census, so occupancy reads
//! are zero-allocation and traversal-free.

use crate::arena::{ArenaTree, OctDecomp};
use crate::node_stats::{DepthOccupancyTable, LeafRecord, OccupancyInstrumented, OccupancyProfile};
use crate::pr_quadtree::TreeError;
use popan_geom::{Aabb3, Point3};

/// Default depth limit (see [`crate::pr_quadtree::DEFAULT_MAX_DEPTH`]).
pub const DEFAULT_MAX_DEPTH: u32 = 32;

/// A generalized PR octree with node capacity `m`.
#[derive(Debug, Clone)]
pub struct PrOctree {
    tree: ArenaTree<OctDecomp>,
}

impl PrOctree {
    /// Creates an empty octree over `region` with node capacity `capacity`.
    pub fn new(region: Aabb3, capacity: usize) -> Result<Self, TreeError> {
        if capacity == 0 {
            return Err(TreeError::InvalidParameter(
                "node capacity must be at least 1".into(),
            ));
        }
        Ok(PrOctree {
            tree: ArenaTree::new(region, capacity, DEFAULT_MAX_DEPTH),
        })
    }

    /// Builds an octree by inserting `points` in order.
    pub fn build(
        region: Aabb3,
        capacity: usize,
        points: impl IntoIterator<Item = Point3>,
    ) -> Result<Self, TreeError> {
        let mut t = Self::new(region, capacity)?;
        let mut pts = Vec::new();
        for p in points {
            if !p.is_finite() {
                return Err(TreeError::NonFinitePoint);
            }
            if !t.region().contains(&p) {
                return Err(TreeError::InvalidParameter(format!(
                    "point {p} lies outside the octree region"
                )));
            }
            pts.push(p);
        }
        t.tree.bulk_fill(pts);
        Ok(t)
    }

    /// The region covered.
    pub fn region(&self) -> Aabb3 {
        self.tree.region()
    }

    /// Number of stored points.
    pub fn len(&self) -> usize {
        self.tree.len()
    }

    /// `true` when empty.
    pub fn is_empty(&self) -> bool {
        self.tree.is_empty()
    }

    /// Inserts a point, splitting per the PR rule.
    pub fn insert(&mut self, p: Point3) -> Result<(), TreeError> {
        if !p.is_finite() {
            return Err(TreeError::NonFinitePoint);
        }
        if !self.region().contains(&p) {
            return Err(TreeError::InvalidParameter(format!(
                "point {p} lies outside the octree region"
            )));
        }
        self.tree.insert(p);
        Ok(())
    }

    /// `true` when an exactly equal point is stored.
    pub fn contains(&self, p: &Point3) -> bool {
        if !self.region().contains(p) {
            return false;
        }
        self.tree.contains(p)
    }

    /// Total node count (internal + leaf) — O(1) pool accounting.
    pub fn node_count(&self) -> usize {
        self.tree.node_count()
    }

    /// Leaf node count, served from the maintained census: O(1).
    pub fn leaf_count(&self) -> usize {
        self.tree.census().leaf_count()
    }

    /// The occupancy profile, maintained incrementally — a
    /// zero-allocation, zero-traversal read.
    pub fn occupancy_profile(&self) -> &OccupancyProfile {
        self.tree.census().profile()
    }

    /// The per-depth occupancy table, maintained incrementally — a
    /// zero-allocation, zero-traversal read.
    pub fn depth_table(&self) -> &DepthOccupancyTable {
        self.tree.census().depth_table()
    }

    /// Verifies structural invariants (see
    /// [`crate::pr_quadtree::PrQuadtree::check_invariants`]), including
    /// census/traversal agreement.
    pub fn check_invariants(&self) {
        self.tree.check_invariants();
    }
}

impl OccupancyInstrumented for PrOctree {
    fn capacity(&self) -> usize {
        self.tree.capacity()
    }

    fn leaf_records(&self) -> Vec<LeafRecord> {
        self.tree.leaf_records()
    }

    fn occupancy_profile(&self) -> OccupancyProfile {
        self.tree.census().profile().clone()
    }

    fn depth_table(&self) -> DepthOccupancyTable {
        self.tree.census().depth_table().clone()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use popan_rng::rngs::StdRng;
    use popan_rng::SeedableRng;
    use popan_workload::points::UniformCube;

    #[test]
    fn empty_and_single() {
        let mut t = PrOctree::new(Aabb3::unit(), 1).unwrap();
        assert!(t.is_empty());
        t.insert(Point3::new(0.5, 0.5, 0.5)).unwrap();
        assert_eq!(t.len(), 1);
        assert_eq!(t.node_count(), 1);
        assert!(t.contains(&Point3::new(0.5, 0.5, 0.5)));
        t.check_invariants();
    }

    #[test]
    fn rejects_invalid() {
        assert!(PrOctree::new(Aabb3::unit(), 0).is_err());
        let mut t = PrOctree::new(Aabb3::unit(), 1).unwrap();
        assert!(t.insert(Point3::new(2.0, 0.0, 0.0)).is_err());
        assert!(t.insert(Point3::new(f64::NAN, 0.0, 0.0)).is_err());
    }

    #[test]
    fn split_produces_eight_children() {
        let mut t = PrOctree::new(Aabb3::unit(), 1).unwrap();
        t.insert(Point3::new(0.1, 0.1, 0.1)).unwrap();
        t.insert(Point3::new(0.9, 0.9, 0.9)).unwrap();
        assert_eq!(t.node_count(), 9); // root + 8 children
        assert_eq!(t.leaf_count(), 8);
        let profile = t.occupancy_profile();
        assert_eq!(profile.count(0), 6);
        assert_eq!(profile.count(1), 2);
        t.check_invariants();
    }

    #[test]
    fn random_build_invariants_and_lookup() {
        let src = UniformCube::unit();
        let mut rng = StdRng::seed_from_u64(5);
        let points = src.sample_n(&mut rng, 600);
        let t = PrOctree::build(Aabb3::unit(), 4, points.iter().copied()).unwrap();
        t.check_invariants();
        assert_eq!(t.len(), 600);
        for p in &points {
            assert!(t.contains(p));
        }
        let profile = t.occupancy_profile();
        assert_eq!(profile.total_items(), 600);
        assert!(profile.max_occupancy() <= 4);
    }

    #[test]
    fn coincident_points_do_not_split() {
        let mut t = PrOctree::new(Aabb3::unit(), 1).unwrap();
        for _ in 0..4 {
            t.insert(Point3::new(0.3, 0.3, 0.3)).unwrap();
        }
        assert_eq!(t.node_count(), 1);
        t.check_invariants();
    }

    #[test]
    fn node_count_identity_for_octree() {
        // Every split adds 8 nodes: leaves = 7·internal + 1.
        let src = UniformCube::unit();
        let mut rng = StdRng::seed_from_u64(6);
        let t = PrOctree::build(Aabb3::unit(), 1, src.sample_n(&mut rng, 300)).unwrap();
        let n = t.node_count();
        let leaves = t.leaf_count();
        let internal = n - leaves;
        assert_eq!(leaves, internal * 7 + 1);
    }
}
