//! The PR octree: the PR bucketing discipline in 3-D.
//!
//! The paper remarks that "the same principles apply in the case of
//! octrees and higher dimensional data structures" — branching factor 8
//! instead of 4. The `dims` extension experiment validates the generalized
//! population model against this tree.

use crate::node_stats::{LeafRecord, OccupancyInstrumented};
use crate::pr_quadtree::TreeError;
use popan_geom::{Aabb3, Octant, Point3};

/// Default depth limit (see [`crate::pr_quadtree::DEFAULT_MAX_DEPTH`]).
pub const DEFAULT_MAX_DEPTH: u32 = 32;

#[derive(Debug, Clone)]
enum Node {
    Leaf(Vec<Point3>),
    Internal(Vec<Node>), // always 8 children
}

impl Node {
    fn empty_leaf() -> Node {
        Node::Leaf(Vec::new())
    }
}

/// A generalized PR octree with node capacity `m`.
#[derive(Debug, Clone)]
pub struct PrOctree {
    root: Node,
    region: Aabb3,
    capacity: usize,
    max_depth: u32,
    len: usize,
}

impl PrOctree {
    /// Creates an empty octree over `region` with node capacity `capacity`.
    pub fn new(region: Aabb3, capacity: usize) -> Result<Self, TreeError> {
        if capacity == 0 {
            return Err(TreeError::InvalidParameter(
                "node capacity must be at least 1".into(),
            ));
        }
        Ok(PrOctree {
            root: Node::empty_leaf(),
            region,
            capacity,
            max_depth: DEFAULT_MAX_DEPTH,
            len: 0,
        })
    }

    /// Builds an octree by inserting `points` in order.
    pub fn build(
        region: Aabb3,
        capacity: usize,
        points: impl IntoIterator<Item = Point3>,
    ) -> Result<Self, TreeError> {
        let mut t = Self::new(region, capacity)?;
        for p in points {
            t.insert(p)?;
        }
        Ok(t)
    }

    /// The region covered.
    pub fn region(&self) -> Aabb3 {
        self.region
    }

    /// Number of stored points.
    pub fn len(&self) -> usize {
        self.len
    }

    /// `true` when empty.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Inserts a point, splitting per the PR rule.
    pub fn insert(&mut self, p: Point3) -> Result<(), TreeError> {
        if !p.is_finite() {
            return Err(TreeError::NonFinitePoint);
        }
        if !self.region.contains(&p) {
            return Err(TreeError::InvalidParameter(format!(
                "point {p} lies outside the octree region"
            )));
        }
        Self::insert_rec(
            &mut self.root,
            self.region,
            0,
            self.max_depth,
            self.capacity,
            p,
        );
        self.len += 1;
        Ok(())
    }

    fn insert_rec(
        node: &mut Node,
        block: Aabb3,
        depth: u32,
        max_depth: u32,
        capacity: usize,
        p: Point3,
    ) {
        match node {
            Node::Internal(children) => {
                let o = block.octant_of(&p);
                Self::insert_rec(
                    &mut children[o.index()],
                    block.octant(o),
                    depth + 1,
                    max_depth,
                    capacity,
                    p,
                );
            }
            Node::Leaf(points) => {
                points.push(p);
                if points.len() > capacity && depth < max_depth {
                    let first = points[0];
                    if points.iter().all(|q| *q == first) {
                        return;
                    }
                    Self::split_leaf(node, block, depth, max_depth, capacity);
                }
            }
        }
    }

    fn split_leaf(node: &mut Node, block: Aabb3, depth: u32, max_depth: u32, capacity: usize) {
        let points = match std::mem::replace(node, Node::empty_leaf()) {
            Node::Leaf(points) => points,
            Node::Internal(_) => unreachable!("split_leaf called on internal node"),
        };
        let mut children: Vec<Node> = (0..8).map(|_| Node::empty_leaf()).collect();
        for p in points {
            let o = block.octant_of(&p);
            match &mut children[o.index()] {
                Node::Leaf(v) => v.push(p),
                Node::Internal(_) => unreachable!(),
            }
        }
        for (i, child) in children.iter_mut().enumerate() {
            let needs_split = match child {
                Node::Leaf(v) => {
                    v.len() > capacity && depth + 1 < max_depth && {
                        let first = v[0];
                        !v.iter().all(|q| *q == first)
                    }
                }
                Node::Internal(_) => false,
            };
            if needs_split {
                Self::split_leaf(
                    child,
                    block.octant(Octant::from_index(i)),
                    depth + 1,
                    max_depth,
                    capacity,
                );
            }
        }
        *node = Node::Internal(children);
    }

    /// `true` when an exactly equal point is stored.
    pub fn contains(&self, p: &Point3) -> bool {
        if !self.region.contains(p) {
            return false;
        }
        let mut node = &self.root;
        let mut block = self.region;
        loop {
            match node {
                Node::Leaf(points) => return points.contains(p),
                Node::Internal(children) => {
                    let o = block.octant_of(p);
                    node = &children[o.index()];
                    block = block.octant(o);
                }
            }
        }
    }

    /// Total node count (internal + leaf).
    pub fn node_count(&self) -> usize {
        fn walk(node: &Node) -> usize {
            match node {
                Node::Leaf(_) => 1,
                Node::Internal(children) => 1 + children.iter().map(walk).sum::<usize>(),
            }
        }
        walk(&self.root)
    }

    /// Leaf node count.
    pub fn leaf_count(&self) -> usize {
        self.leaf_records().len()
    }

    /// Verifies structural invariants (see
    /// [`crate::pr_quadtree::PrQuadtree::check_invariants`]).
    pub fn check_invariants(&self) {
        fn walk(
            node: &Node,
            block: Aabb3,
            depth: u32,
            capacity: usize,
            max_depth: u32,
            total: &mut usize,
        ) {
            match node {
                Node::Leaf(points) => {
                    *total += points.len();
                    for p in points {
                        assert!(block.contains(p), "point {p} outside its leaf block");
                    }
                    if points.len() > capacity {
                        let first = points[0];
                        let coincident = points.iter().all(|q| *q == first);
                        assert!(
                            depth >= max_depth || coincident,
                            "over-full octree leaf at depth {depth}"
                        );
                    }
                }
                Node::Internal(children) => {
                    assert_eq!(children.len(), 8);
                    for (i, child) in children.iter().enumerate() {
                        walk(
                            child,
                            block.octant(Octant::from_index(i)),
                            depth + 1,
                            capacity,
                            max_depth,
                            total,
                        );
                    }
                }
            }
        }
        let mut total = 0;
        walk(
            &self.root,
            self.region,
            0,
            self.capacity,
            self.max_depth,
            &mut total,
        );
        assert_eq!(total, self.len, "stored point count mismatch");
    }
}

impl OccupancyInstrumented for PrOctree {
    fn capacity(&self) -> usize {
        self.capacity
    }

    fn leaf_records(&self) -> Vec<LeafRecord> {
        fn walk(node: &Node, depth: u32, out: &mut Vec<LeafRecord>) {
            match node {
                Node::Leaf(points) => out.push(LeafRecord {
                    depth,
                    occupancy: points.len(),
                }),
                Node::Internal(children) => {
                    for child in children {
                        walk(child, depth + 1, out);
                    }
                }
            }
        }
        let mut out = Vec::new();
        walk(&self.root, 0, &mut out);
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use popan_rng::rngs::StdRng;
    use popan_rng::SeedableRng;
    use popan_workload::points::UniformCube;

    #[test]
    fn empty_and_single() {
        let mut t = PrOctree::new(Aabb3::unit(), 1).unwrap();
        assert!(t.is_empty());
        t.insert(Point3::new(0.5, 0.5, 0.5)).unwrap();
        assert_eq!(t.len(), 1);
        assert_eq!(t.node_count(), 1);
        assert!(t.contains(&Point3::new(0.5, 0.5, 0.5)));
        t.check_invariants();
    }

    #[test]
    fn rejects_invalid() {
        assert!(PrOctree::new(Aabb3::unit(), 0).is_err());
        let mut t = PrOctree::new(Aabb3::unit(), 1).unwrap();
        assert!(t.insert(Point3::new(2.0, 0.0, 0.0)).is_err());
        assert!(t.insert(Point3::new(f64::NAN, 0.0, 0.0)).is_err());
    }

    #[test]
    fn split_produces_eight_children() {
        let mut t = PrOctree::new(Aabb3::unit(), 1).unwrap();
        t.insert(Point3::new(0.1, 0.1, 0.1)).unwrap();
        t.insert(Point3::new(0.9, 0.9, 0.9)).unwrap();
        assert_eq!(t.node_count(), 9); // root + 8 children
        assert_eq!(t.leaf_count(), 8);
        let profile = t.occupancy_profile();
        assert_eq!(profile.count(0), 6);
        assert_eq!(profile.count(1), 2);
        t.check_invariants();
    }

    #[test]
    fn random_build_invariants_and_lookup() {
        let src = UniformCube::unit();
        let mut rng = StdRng::seed_from_u64(5);
        let points = src.sample_n(&mut rng, 600);
        let t = PrOctree::build(Aabb3::unit(), 4, points.iter().copied()).unwrap();
        t.check_invariants();
        assert_eq!(t.len(), 600);
        for p in &points {
            assert!(t.contains(p));
        }
        let profile = t.occupancy_profile();
        assert_eq!(profile.total_items(), 600);
        assert!(profile.max_occupancy() <= 4);
    }

    #[test]
    fn coincident_points_do_not_split() {
        let mut t = PrOctree::new(Aabb3::unit(), 1).unwrap();
        for _ in 0..4 {
            t.insert(Point3::new(0.3, 0.3, 0.3)).unwrap();
        }
        assert_eq!(t.node_count(), 1);
        t.check_invariants();
    }

    #[test]
    fn node_count_identity_for_octree() {
        // Every split adds 8 nodes: leaves = 7·internal + 1.
        let src = UniformCube::unit();
        let mut rng = StdRng::seed_from_u64(6);
        let t = PrOctree::build(Aabb3::unit(), 1, src.sample_n(&mut rng, 300)).unwrap();
        let n = t.node_count();
        let leaves = t.leaf_count();
        let internal = n - leaves;
        assert_eq!(leaves, internal * 7 + 1);
    }
}
