//! ASCII rendering of a PR quadtree's block decomposition.
//!
//! Reproduces the paper's Figure 1 ("PR quadtree for four points: blocks
//! are recursively quartered until no block contains more than one
//! point") as a character grid: block borders drawn with `+-|`, stored
//! points marked `*`.

use crate::pr_quadtree::PrQuadtree;
use popan_geom::Rect;

/// Renders the tree's leaf blocks on a `cells × cells` character grid
/// (each cell is 2 characters wide for squarer output).
///
/// `cells` must be a power of two at least `2^max_leaf_depth` for block
/// borders to land on grid lines; the function rounds up internally, and
/// caps the grid at 128×128 cells to keep output printable.
pub fn render_blocks(tree: &PrQuadtree, min_cells: usize) -> String {
    // Find the deepest leaf to choose the resolution.
    let mut max_depth = 0;
    tree.for_each_leaf(|_, depth, _| max_depth = max_depth.max(depth));
    let mut cells = 1usize << max_depth.min(7);
    while cells < min_cells && cells < 128 {
        cells *= 2;
    }

    let width = cells * 2 + 1; // 2 chars per cell + border column
    let height = cells + 1;
    let mut grid = vec![vec![' '; width]; height];

    let region = tree.region();
    let col_of = |x: f64| -> usize {
        let f = (x - region.x().lo()) / region.width();
        ((f * cells as f64).round() as usize).min(cells) * 2
    };
    let row_of = |y: f64| -> usize {
        // Flip y: row 0 is the top of the region.
        let f = (y - region.y().lo()) / region.height();
        cells - ((f * cells as f64).round() as usize).min(cells)
    };

    tree.for_each_leaf(|block, _, points| {
        let c0 = col_of(block.x().lo());
        let c1 = col_of(block.x().hi());
        let r_top = row_of(block.y().hi());
        let r_bot = row_of(block.y().lo());
        // Horizontal borders.
        for r in [r_top, r_bot] {
            for (c, cell) in grid[r].iter_mut().enumerate().take(c1 + 1).skip(c0) {
                let corner = c == c0 || c == c1;
                *cell = if *cell == '|' || *cell == '+' || corner {
                    '+'
                } else {
                    '-'
                };
            }
        }
        // Vertical borders.
        for row in grid.iter_mut().take(r_bot + 1).skip(r_top) {
            for c in [c0, c1] {
                row[c] = if row[c] == '-' || row[c] == '+' {
                    '+'
                } else {
                    '|'
                };
            }
        }
        // Points.
        for p in points {
            let pc = (col_of(p.x) + 1).min(width - 2);
            let pr = row_of(p.y).clamp(r_top + 1, r_bot.saturating_sub(1).max(r_top + 1));
            grid[pr][pc] = '*';
        }
    });

    let mut out = String::with_capacity(height * (width + 1));
    for row in &grid {
        out.extend(row.iter());
        out.push('\n');
    }
    out
}

/// Convenience: renders the decomposition of `points` (capacity 1, the
/// simple PR quadtree of Figure 1) over `region`.
pub fn figure1(region: Rect, points: &[popan_geom::Point2]) -> String {
    let tree = PrQuadtree::build(region, 1, points.iter().copied())
        .expect("figure1: points must lie inside the region");
    render_blocks(&tree, 8)
}

#[cfg(test)]
mod tests {
    use super::*;
    use popan_geom::Point2;

    #[test]
    fn renders_empty_tree_as_single_block() {
        let t = PrQuadtree::new(Rect::unit(), 1).unwrap();
        let s = render_blocks(&t, 4);
        assert!(s.contains('+'));
        assert!(s.contains('-'));
        assert!(s.contains('|'));
        assert!(!s.contains('*'));
    }

    #[test]
    fn renders_points_as_stars() {
        let s = figure1(
            Rect::unit(),
            &[
                Point2::new(0.1, 0.1),
                Point2::new(0.9, 0.1),
                Point2::new(0.1, 0.9),
                Point2::new(0.9, 0.9),
            ],
        );
        assert_eq!(s.matches('*').count(), 4);
        // The split introduces interior borders: more than 4 corner '+'.
        assert!(s.matches('+').count() > 4);
    }

    #[test]
    fn output_is_rectangular() {
        let s = figure1(
            Rect::unit(),
            &[Point2::new(0.3, 0.6), Point2::new(0.31, 0.61)],
        );
        let lines: Vec<&str> = s.lines().collect();
        assert!(!lines.is_empty());
        let w = lines[0].chars().count();
        assert!(lines.iter().all(|l| l.chars().count() == w));
    }

    #[test]
    fn deeper_trees_render_more_blocks() {
        let shallow = figure1(
            Rect::unit(),
            &[Point2::new(0.2, 0.2), Point2::new(0.8, 0.8)],
        );
        let deep = figure1(
            Rect::unit(),
            &[Point2::new(0.501, 0.501), Point2::new(0.52, 0.52)],
        );
        assert!(deep.matches('+').count() >= shallow.matches('+').count());
    }
}
