//! The generalized PR tree in `D` dimensions (branching factor `2^D`).
//!
//! The paper: "The same principles apply in the case of octrees and
//! higher dimensional data structures." This const-generic tree
//! instantiates the PR bucketing discipline for any `D`, so the
//! generalized `b = 2^D` population model can be validated well beyond
//! the quadtree — `PrTreeNd<1>` is a 1-D bintree, `PrTreeNd<2>` matches
//! [`crate::PrQuadtree`], `PrTreeNd<3>` matches [`crate::PrOctree`], and
//! `PrTreeNd<4>` gives the `b = 16` data point no concrete structure in
//! this crate otherwise provides.

use crate::node_stats::{LeafRecord, OccupancyInstrumented};
use crate::pr_quadtree::TreeError;
use popan_geom::{BoxN, PointN};

/// Default depth limit.
pub const DEFAULT_MAX_DEPTH: u32 = 32;

#[derive(Debug, Clone)]
enum Node<const D: usize> {
    Leaf(Vec<PointN<D>>),
    Internal(Vec<Node<D>>), // always 2^D children
}

impl<const D: usize> Node<D> {
    fn empty_leaf() -> Self {
        Node::Leaf(Vec::new())
    }
}

/// A PR tree over `[f64; D]` points with node capacity `m`.
#[derive(Debug, Clone)]
pub struct PrTreeNd<const D: usize> {
    root: Node<D>,
    region: BoxN<D>,
    capacity: usize,
    max_depth: u32,
    len: usize,
}

impl<const D: usize> PrTreeNd<D> {
    /// Creates an empty tree over `region` with node capacity `capacity`.
    pub fn new(region: BoxN<D>, capacity: usize) -> Result<Self, TreeError> {
        if D == 0 {
            return Err(TreeError::InvalidParameter(
                "dimension must be at least 1".into(),
            ));
        }
        if capacity == 0 {
            return Err(TreeError::InvalidParameter(
                "node capacity must be at least 1".into(),
            ));
        }
        Ok(PrTreeNd {
            root: Node::empty_leaf(),
            region,
            capacity,
            max_depth: DEFAULT_MAX_DEPTH,
            len: 0,
        })
    }

    /// Builds a tree by inserting `points` in order.
    pub fn build(
        region: BoxN<D>,
        capacity: usize,
        points: impl IntoIterator<Item = PointN<D>>,
    ) -> Result<Self, TreeError> {
        let mut t = Self::new(region, capacity)?;
        for p in points {
            t.insert(p)?;
        }
        Ok(t)
    }

    /// Branching factor `2^D`.
    pub const fn branching() -> usize {
        1 << D
    }

    /// The region covered.
    pub fn region(&self) -> BoxN<D> {
        self.region
    }

    /// Number of stored points.
    pub fn len(&self) -> usize {
        self.len
    }

    /// `true` when empty.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Inserts a point, splitting per the PR rule.
    pub fn insert(&mut self, p: PointN<D>) -> Result<(), TreeError> {
        if !p.is_finite() {
            return Err(TreeError::NonFinitePoint);
        }
        if !self.region.contains(&p) {
            return Err(TreeError::InvalidParameter(format!(
                "point {p} lies outside the tree region"
            )));
        }
        Self::insert_rec(
            &mut self.root,
            self.region,
            0,
            self.max_depth,
            self.capacity,
            p,
        );
        self.len += 1;
        Ok(())
    }

    fn insert_rec(
        node: &mut Node<D>,
        block: BoxN<D>,
        depth: u32,
        max_depth: u32,
        capacity: usize,
        p: PointN<D>,
    ) {
        match node {
            Node::Internal(children) => {
                let o = block.orthant_of(&p);
                Self::insert_rec(
                    &mut children[o],
                    block.orthant(o),
                    depth + 1,
                    max_depth,
                    capacity,
                    p,
                );
            }
            Node::Leaf(points) => {
                points.push(p);
                if points.len() > capacity && depth < max_depth {
                    let first = points[0];
                    if points.iter().all(|q| *q == first) {
                        return;
                    }
                    Self::split_leaf(node, block, depth, max_depth, capacity);
                }
            }
        }
    }

    fn split_leaf(node: &mut Node<D>, block: BoxN<D>, depth: u32, max_depth: u32, capacity: usize) {
        let points = match std::mem::replace(node, Node::empty_leaf()) {
            Node::Leaf(points) => points,
            Node::Internal(_) => unreachable!("split_leaf on internal node"),
        };
        let mut children: Vec<Node<D>> =
            (0..Self::branching()).map(|_| Node::empty_leaf()).collect();
        for p in points {
            match &mut children[block.orthant_of(&p)] {
                Node::Leaf(v) => v.push(p),
                Node::Internal(_) => unreachable!(),
            }
        }
        for (i, child) in children.iter_mut().enumerate() {
            let needs_split = match child {
                Node::Leaf(v) => {
                    v.len() > capacity && depth + 1 < max_depth && {
                        let first = v[0];
                        !v.iter().all(|q| *q == first)
                    }
                }
                Node::Internal(_) => false,
            };
            if needs_split {
                Self::split_leaf(child, block.orthant(i), depth + 1, max_depth, capacity);
            }
        }
        *node = Node::Internal(children);
    }

    /// `true` when an exactly equal point is stored.
    pub fn contains(&self, p: &PointN<D>) -> bool {
        if !self.region.contains(p) {
            return false;
        }
        let mut node = &self.root;
        let mut block = self.region;
        loop {
            match node {
                Node::Leaf(points) => return points.contains(p),
                Node::Internal(children) => {
                    let o = block.orthant_of(p);
                    node = &children[o];
                    block = block.orthant(o);
                }
            }
        }
    }

    /// Total node count (internal + leaf).
    pub fn node_count(&self) -> usize {
        fn walk<const D: usize>(node: &Node<D>) -> usize {
            match node {
                Node::Leaf(_) => 1,
                Node::Internal(children) => 1 + children.iter().map(walk).sum::<usize>(),
            }
        }
        walk(&self.root)
    }

    /// Leaf node count.
    pub fn leaf_count(&self) -> usize {
        self.leaf_records().len()
    }

    /// Verifies structural invariants; panics on violation.
    pub fn check_invariants(&self) {
        fn walk<const D: usize>(
            node: &Node<D>,
            block: BoxN<D>,
            depth: u32,
            capacity: usize,
            max_depth: u32,
            total: &mut usize,
        ) {
            match node {
                Node::Leaf(points) => {
                    *total += points.len();
                    for p in points {
                        assert!(block.contains(p), "point {p} outside its leaf block");
                    }
                    if points.len() > capacity {
                        let first = points[0];
                        let coincident = points.iter().all(|q| *q == first);
                        assert!(depth >= max_depth || coincident, "over-full leaf");
                    }
                }
                Node::Internal(children) => {
                    assert_eq!(children.len(), 1 << D);
                    for (i, child) in children.iter().enumerate() {
                        walk(
                            child,
                            block.orthant(i),
                            depth + 1,
                            capacity,
                            max_depth,
                            total,
                        );
                    }
                }
            }
        }
        let mut total = 0;
        walk(
            &self.root,
            self.region,
            0,
            self.capacity,
            self.max_depth,
            &mut total,
        );
        assert_eq!(total, self.len);
    }
}

impl<const D: usize> OccupancyInstrumented for PrTreeNd<D> {
    fn capacity(&self) -> usize {
        self.capacity
    }

    fn leaf_records(&self) -> Vec<LeafRecord> {
        fn walk<const D: usize>(node: &Node<D>, depth: u32, out: &mut Vec<LeafRecord>) {
            match node {
                Node::Leaf(points) => out.push(LeafRecord {
                    depth,
                    occupancy: points.len(),
                }),
                Node::Internal(children) => {
                    for child in children {
                        walk(child, depth + 1, out);
                    }
                }
            }
        }
        let mut out = Vec::new();
        walk(&self.root, 0, &mut out);
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use popan_rng::rngs::StdRng;
    use popan_rng::{Rng, SeedableRng};

    fn sample_points<const D: usize>(n: usize, seed: u64) -> Vec<PointN<D>> {
        let mut rng = StdRng::seed_from_u64(seed);
        (0..n)
            .map(|_| PointN::new(std::array::from_fn(|_| rng.random_range(0.0..1.0))))
            .collect()
    }

    #[test]
    fn basic_operations_in_4d() {
        let points = sample_points::<4>(500, 1);
        let t = PrTreeNd::build(BoxN::unit(), 3, points.iter().copied()).unwrap();
        t.check_invariants();
        assert_eq!(t.len(), 500);
        assert_eq!(PrTreeNd::<4>::branching(), 16);
        for p in &points {
            assert!(t.contains(p));
        }
        assert!(!t.contains(&PointN::new([0.999999; 4])));
    }

    #[test]
    fn rejects_invalid() {
        assert!(PrTreeNd::<2>::new(BoxN::unit(), 0).is_err());
        let mut t = PrTreeNd::<2>::new(BoxN::unit(), 1).unwrap();
        assert!(t.insert(PointN::new([2.0, 0.0])).is_err());
        assert!(t.insert(PointN::new([f64::NAN, 0.0])).is_err());
    }

    #[test]
    fn node_count_identity_for_16_ary() {
        let points = sample_points::<4>(800, 2);
        let t = PrTreeNd::build(BoxN::unit(), 1, points).unwrap();
        let internal = t.node_count() - t.leaf_count();
        assert_eq!(t.leaf_count(), internal * 15 + 1);
    }

    #[test]
    fn coincident_points_do_not_split() {
        let mut t = PrTreeNd::<3>::new(BoxN::unit(), 1).unwrap();
        for _ in 0..4 {
            t.insert(PointN::new([0.3; 3])).unwrap();
        }
        assert_eq!(t.node_count(), 1);
        t.check_invariants();
    }

    #[test]
    fn matches_quadtree_structure_in_2d() {
        use crate::pr_quadtree::PrQuadtree;
        use popan_geom::{Point2, Rect};
        let nd_points = sample_points::<2>(400, 3);
        let q_points: Vec<Point2> = nd_points
            .iter()
            .map(|p| Point2::new(p.coords[0], p.coords[1]))
            .collect();
        let nd = PrTreeNd::build(BoxN::unit(), 2, nd_points).unwrap();
        let qt = PrQuadtree::build(Rect::unit(), 2, q_points).unwrap();
        assert_eq!(nd.node_count(), qt.node_count());
        assert_eq!(nd.leaf_count(), qt.leaf_count());
        let mut a = nd.leaf_records();
        let mut b = qt.leaf_records();
        let key = |r: &LeafRecord| (r.depth, r.occupancy);
        a.sort_by_key(key);
        b.sort_by_key(key);
        assert_eq!(a, b, "PrTreeNd<2> must mirror PrQuadtree exactly");
    }

    #[test]
    fn one_dimensional_tree_works() {
        let points = sample_points::<1>(300, 4);
        let t = PrTreeNd::build(BoxN::unit(), 2, points.iter().copied()).unwrap();
        t.check_invariants();
        let internal = t.node_count() - t.leaf_count();
        assert_eq!(t.leaf_count(), internal + 1);
    }

    #[test]
    fn occupancy_decreases_with_dimension() {
        // Higher branching scatters points more thinly (same trend the
        // model predicts for growing b).
        let occ1 = {
            let t = PrTreeNd::<1>::build(BoxN::unit(), 4, sample_points(2000, 5)).unwrap();
            t.occupancy_profile().average_occupancy()
        };
        let occ4 = {
            let t = PrTreeNd::<4>::build(BoxN::unit(), 4, sample_points(2000, 5)).unwrap();
            t.occupancy_profile().average_occupancy()
        };
        assert!(occ1 > occ4, "d=1 {occ1:.2} vs d=4 {occ4:.2}");
    }
}
