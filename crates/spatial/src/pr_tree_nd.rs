//! The generalized PR tree in `D` dimensions (branching factor `2^D`).
//!
//! The paper: "The same principles apply in the case of octrees and
//! higher dimensional data structures." This const-generic tree
//! instantiates the PR bucketing discipline for any `D`, so the
//! generalized `b = 2^D` population model can be validated well beyond
//! the quadtree — `PrTreeNd<1>` is a 1-D bintree, `PrTreeNd<2>` matches
//! [`crate::PrQuadtree`], `PrTreeNd<3>` matches [`crate::PrOctree`], and
//! `PrTreeNd<4>` gives the `b = 16` data point no concrete structure in
//! this crate otherwise provides.
//!
//! Backed by the contiguous arena core with an incrementally maintained
//! census, like every regular-decomposition tree in this crate.

use crate::arena::{ArenaTree, NdDecomp};
use crate::node_stats::{DepthOccupancyTable, LeafRecord, OccupancyInstrumented, OccupancyProfile};
use crate::pr_quadtree::TreeError;
use popan_geom::{BoxN, PointN};

/// Default depth limit.
pub const DEFAULT_MAX_DEPTH: u32 = 32;

/// A PR tree over `[f64; D]` points with node capacity `m`.
#[derive(Debug, Clone)]
pub struct PrTreeNd<const D: usize> {
    tree: ArenaTree<NdDecomp<D>>,
}

impl<const D: usize> PrTreeNd<D> {
    /// Creates an empty tree over `region` with node capacity `capacity`.
    pub fn new(region: BoxN<D>, capacity: usize) -> Result<Self, TreeError> {
        if D == 0 {
            return Err(TreeError::InvalidParameter(
                "dimension must be at least 1".into(),
            ));
        }
        if capacity == 0 {
            return Err(TreeError::InvalidParameter(
                "node capacity must be at least 1".into(),
            ));
        }
        Ok(PrTreeNd {
            tree: ArenaTree::new(region, capacity, DEFAULT_MAX_DEPTH),
        })
    }

    /// Builds a tree by inserting `points` in order.
    pub fn build(
        region: BoxN<D>,
        capacity: usize,
        points: impl IntoIterator<Item = PointN<D>>,
    ) -> Result<Self, TreeError> {
        let mut t = Self::new(region, capacity)?;
        let mut pts = Vec::new();
        for p in points {
            if !p.is_finite() {
                return Err(TreeError::NonFinitePoint);
            }
            if !t.region().contains(&p) {
                return Err(TreeError::InvalidParameter(format!(
                    "point {p} lies outside the tree region"
                )));
            }
            pts.push(p);
        }
        t.tree.bulk_fill(pts);
        Ok(t)
    }

    /// Branching factor `2^D`.
    pub const fn branching() -> usize {
        1 << D
    }

    /// The region covered.
    pub fn region(&self) -> BoxN<D> {
        self.tree.region()
    }

    /// Number of stored points.
    pub fn len(&self) -> usize {
        self.tree.len()
    }

    /// `true` when empty.
    pub fn is_empty(&self) -> bool {
        self.tree.is_empty()
    }

    /// Inserts a point, splitting per the PR rule.
    pub fn insert(&mut self, p: PointN<D>) -> Result<(), TreeError> {
        if !p.is_finite() {
            return Err(TreeError::NonFinitePoint);
        }
        if !self.region().contains(&p) {
            return Err(TreeError::InvalidParameter(format!(
                "point {p} lies outside the tree region"
            )));
        }
        self.tree.insert(p);
        Ok(())
    }

    /// `true` when an exactly equal point is stored.
    pub fn contains(&self, p: &PointN<D>) -> bool {
        if !self.region().contains(p) {
            return false;
        }
        self.tree.contains(p)
    }

    /// Total node count (internal + leaf) — O(1) pool accounting.
    pub fn node_count(&self) -> usize {
        self.tree.node_count()
    }

    /// Visits every leaf: the block, its depth, and its stored points.
    pub fn for_each_leaf(&self, mut f: impl FnMut(&BoxN<D>, u32, &[PointN<D>])) {
        self.tree.for_each_leaf(&mut f);
    }

    /// All stored points, in leaf-traversal order.
    pub fn points(&self) -> Vec<PointN<D>> {
        let mut out = Vec::with_capacity(self.len());
        self.for_each_leaf(|_, _, pts| out.extend_from_slice(pts));
        out
    }

    /// All stored points inside the axis-aligned box `[lo, hi)` on every
    /// axis, in leaf-traversal order.
    ///
    /// A leaf sweep pruned by a conservative (closed-interval) block
    /// overlap test — fine for the oracle and verification paths this
    /// backend serves; the query tier freezes hot structures into a
    /// `Snapshot` for serving.
    pub fn range_query(&self, lo: &[f64; D], hi: &[f64; D]) -> Vec<PointN<D>> {
        let mut out = Vec::new();
        self.for_each_leaf(|block, _, pts| {
            let disjoint = (0..D).any(|i| block.hi()[i] < lo[i] || hi[i] < block.lo()[i]);
            if !disjoint {
                out.extend(
                    pts.iter()
                        .filter(|p| (0..D).all(|i| lo[i] <= p.coords[i] && p.coords[i] < hi[i]))
                        .copied(),
                );
            }
        });
        out
    }

    /// Leaf node count, served from the maintained census: O(1).
    pub fn leaf_count(&self) -> usize {
        self.tree.census().leaf_count()
    }

    /// The occupancy profile, maintained incrementally — a
    /// zero-allocation, zero-traversal read.
    pub fn occupancy_profile(&self) -> &OccupancyProfile {
        self.tree.census().profile()
    }

    /// The per-depth occupancy table, maintained incrementally — a
    /// zero-allocation, zero-traversal read.
    pub fn depth_table(&self) -> &DepthOccupancyTable {
        self.tree.census().depth_table()
    }

    /// Verifies structural invariants (including census/traversal
    /// agreement); panics on violation.
    pub fn check_invariants(&self) {
        self.tree.check_invariants();
    }
}

impl<const D: usize> OccupancyInstrumented for PrTreeNd<D> {
    fn capacity(&self) -> usize {
        self.tree.capacity()
    }

    fn leaf_records(&self) -> Vec<LeafRecord> {
        self.tree.leaf_records()
    }

    fn occupancy_profile(&self) -> OccupancyProfile {
        self.tree.census().profile().clone()
    }

    fn depth_table(&self) -> DepthOccupancyTable {
        self.tree.census().depth_table().clone()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use popan_rng::rngs::StdRng;
    use popan_rng::{Rng, SeedableRng};

    fn sample_points<const D: usize>(n: usize, seed: u64) -> Vec<PointN<D>> {
        let mut rng = StdRng::seed_from_u64(seed);
        (0..n)
            .map(|_| PointN::new(std::array::from_fn(|_| rng.random_range(0.0..1.0))))
            .collect()
    }

    #[test]
    fn basic_operations_in_4d() {
        let points = sample_points::<4>(500, 1);
        let t = PrTreeNd::build(BoxN::unit(), 3, points.iter().copied()).unwrap();
        t.check_invariants();
        assert_eq!(t.len(), 500);
        assert_eq!(PrTreeNd::<4>::branching(), 16);
        for p in &points {
            assert!(t.contains(p));
        }
        assert!(!t.contains(&PointN::new([0.999999; 4])));
    }

    #[test]
    fn rejects_invalid() {
        assert!(PrTreeNd::<2>::new(BoxN::unit(), 0).is_err());
        let mut t = PrTreeNd::<2>::new(BoxN::unit(), 1).unwrap();
        assert!(t.insert(PointN::new([2.0, 0.0])).is_err());
        assert!(t.insert(PointN::new([f64::NAN, 0.0])).is_err());
    }

    #[test]
    fn node_count_identity_for_16_ary() {
        let points = sample_points::<4>(800, 2);
        let t = PrTreeNd::build(BoxN::unit(), 1, points).unwrap();
        let internal = t.node_count() - t.leaf_count();
        assert_eq!(t.leaf_count(), internal * 15 + 1);
    }

    #[test]
    fn coincident_points_do_not_split() {
        let mut t = PrTreeNd::<3>::new(BoxN::unit(), 1).unwrap();
        for _ in 0..4 {
            t.insert(PointN::new([0.3; 3])).unwrap();
        }
        assert_eq!(t.node_count(), 1);
        t.check_invariants();
    }

    #[test]
    fn matches_quadtree_structure_in_2d() {
        use crate::pr_quadtree::PrQuadtree;
        use popan_geom::{Point2, Rect};
        let nd_points = sample_points::<2>(400, 3);
        let q_points: Vec<Point2> = nd_points
            .iter()
            .map(|p| Point2::new(p.coords[0], p.coords[1]))
            .collect();
        let nd = PrTreeNd::build(BoxN::unit(), 2, nd_points).unwrap();
        let qt = PrQuadtree::build(Rect::unit(), 2, q_points).unwrap();
        assert_eq!(nd.node_count(), qt.node_count());
        assert_eq!(nd.leaf_count(), qt.leaf_count());
        let mut a = nd.leaf_records();
        let mut b = qt.leaf_records();
        let key = |r: &LeafRecord| (r.depth, r.occupancy);
        a.sort_by_key(key);
        b.sort_by_key(key);
        assert_eq!(a, b, "PrTreeNd<2> must mirror PrQuadtree exactly");
    }

    #[test]
    fn one_dimensional_tree_works() {
        let points = sample_points::<1>(300, 4);
        let t = PrTreeNd::build(BoxN::unit(), 2, points.iter().copied()).unwrap();
        t.check_invariants();
        let internal = t.node_count() - t.leaf_count();
        assert_eq!(t.leaf_count(), internal + 1);
    }

    #[test]
    fn range_query_matches_scan_in_3d() {
        let points = sample_points::<3>(500, 6);
        let t = PrTreeNd::build(BoxN::unit(), 2, points.iter().copied()).unwrap();
        assert_eq!(t.points().len(), 500);
        let (lo, hi) = ([0.2, 0.1, 0.3], [0.7, 0.9, 0.6]);
        let expect = points
            .iter()
            .filter(|p| (0..3).all(|i| lo[i] <= p.coords[i] && p.coords[i] < hi[i]))
            .count();
        assert_eq!(t.range_query(&lo, &hi).len(), expect);
        assert!(t.range_query(&[2.0; 3], &[3.0; 3]).is_empty());
    }

    #[test]
    fn occupancy_decreases_with_dimension() {
        // Higher branching scatters points more thinly (same trend the
        // model predicts for growing b).
        let occ1 = {
            let t = PrTreeNd::<1>::build(BoxN::unit(), 4, sample_points(2000, 5)).unwrap();
            t.occupancy_profile().average_occupancy()
        };
        let occ4 = {
            let t = PrTreeNd::<4>::build(BoxN::unit(), 4, sample_points(2000, 5)).unwrap();
            t.occupancy_profile().average_occupancy()
        };
        assert!(occ1 > occ4, "d=1 {occ1:.2} vs d=4 {occ4:.2}");
    }
}
