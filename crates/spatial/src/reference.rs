//! Reference boxed PR quadtree — the bit-identity oracle.
//!
//! This is the original pointer-based implementation
//! (`Node::Internal(Box<[Node; 4]>)` + one heap `Vec` per leaf) that
//! [`crate::PrQuadtree`] replaced with the arena core. It is kept, frozen,
//! for two purposes:
//!
//! * the arena equivalence proptests build the same point sequences here
//!   and assert bit-identical `leaf_records()` and traversal output after
//!   arbitrary insert/remove interleavings;
//! * the `BENCH_spatial` micro group measures the arena speedup against
//!   this implementation as its "before" baseline.
//!
//! Every branch mirrors the semantics documented on [`crate::PrQuadtree`]:
//! push-then-check splitting, the coincident-pile exception, max-depth
//! truncation, and merge-on-underflow collapse.

use crate::node_stats::{LeafRecord, OccupancyInstrumented};
use crate::pr_quadtree::{TreeError, DEFAULT_MAX_DEPTH};
use popan_geom::{Point2, Quadrant, Rect};

#[derive(Debug, Clone)]
enum Node {
    Leaf(Vec<Point2>),
    Internal(Box<[Node; 4]>),
}

impl Node {
    fn empty_leaf() -> Node {
        Node::Leaf(Vec::new())
    }
}

/// The original boxed PR quadtree, kept as an oracle and bench baseline.
#[derive(Debug, Clone)]
pub struct BoxedPrQuadtree {
    root: Node,
    region: Rect,
    capacity: usize,
    max_depth: u32,
    len: usize,
}

impl BoxedPrQuadtree {
    /// Creates an empty tree over `region` with node capacity `capacity`.
    pub fn new(region: Rect, capacity: usize) -> Result<Self, TreeError> {
        Self::with_max_depth(region, capacity, DEFAULT_MAX_DEPTH)
    }

    /// Creates an empty tree with an explicit depth limit.
    pub fn with_max_depth(
        region: Rect,
        capacity: usize,
        max_depth: u32,
    ) -> Result<Self, TreeError> {
        if capacity == 0 {
            return Err(TreeError::InvalidParameter(
                "node capacity must be at least 1".into(),
            ));
        }
        Ok(BoxedPrQuadtree {
            root: Node::empty_leaf(),
            region,
            capacity,
            max_depth,
            len: 0,
        })
    }

    /// Builds a tree by inserting `points` in order.
    pub fn build(
        region: Rect,
        capacity: usize,
        points: impl IntoIterator<Item = Point2>,
    ) -> Result<Self, TreeError> {
        let mut t = Self::new(region, capacity)?;
        for p in points {
            t.insert(p)?;
        }
        Ok(t)
    }

    /// The region covered.
    pub fn region(&self) -> Rect {
        self.region
    }

    /// Number of stored points.
    pub fn len(&self) -> usize {
        self.len
    }

    /// `true` when empty.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Inserts a point, splitting per the PR rule.
    pub fn insert(&mut self, p: Point2) -> Result<(), TreeError> {
        if !p.is_finite() {
            return Err(TreeError::NonFinitePoint);
        }
        if !self.region.contains(&p) {
            return Err(TreeError::OutOfRegion { point: p });
        }
        Self::insert_rec(
            &mut self.root,
            self.region,
            0,
            self.max_depth,
            self.capacity,
            p,
        );
        self.len += 1;
        Ok(())
    }

    fn insert_rec(
        node: &mut Node,
        block: Rect,
        depth: u32,
        max_depth: u32,
        capacity: usize,
        p: Point2,
    ) {
        match node {
            Node::Internal(children) => {
                let q = block.quadrant_of(&p);
                Self::insert_rec(
                    &mut children[q.index()],
                    block.quadrant(q),
                    depth + 1,
                    max_depth,
                    capacity,
                    p,
                );
            }
            Node::Leaf(points) => {
                points.push(p);
                if points.len() > capacity && depth < max_depth {
                    let first = points[0];
                    if points.iter().all(|q| *q == first) {
                        return;
                    }
                    Self::split_leaf(node, block, depth, max_depth, capacity);
                }
            }
        }
    }

    fn split_leaf(node: &mut Node, block: Rect, depth: u32, max_depth: u32, capacity: usize) {
        let points = match std::mem::replace(node, Node::empty_leaf()) {
            Node::Leaf(points) => points,
            Node::Internal(_) => unreachable!("split_leaf called on internal node"),
        };
        let mut children = Box::new([
            Node::empty_leaf(),
            Node::empty_leaf(),
            Node::empty_leaf(),
            Node::empty_leaf(),
        ]);
        for p in points {
            let q = block.quadrant_of(&p);
            match &mut children[q.index()] {
                Node::Leaf(v) => v.push(p),
                Node::Internal(_) => unreachable!(),
            }
        }
        for (i, child) in children.iter_mut().enumerate() {
            let needs_split = match child {
                Node::Leaf(v) => {
                    v.len() > capacity && depth + 1 < max_depth && {
                        let first = v[0];
                        !v.iter().all(|q| *q == first)
                    }
                }
                Node::Internal(_) => false,
            };
            if needs_split {
                let q = Quadrant::from_index(i);
                Self::split_leaf(child, block.quadrant(q), depth + 1, max_depth, capacity);
            }
        }
        *node = Node::Internal(children);
    }

    /// Removes one stored instance of `p`; collapses mergeable internals.
    pub fn remove(&mut self, p: &Point2) -> bool {
        if !p.is_finite() || !self.region.contains(p) {
            return false;
        }
        let removed = Self::remove_rec(&mut self.root, self.region, self.capacity, p);
        if removed {
            self.len -= 1;
        }
        removed
    }

    fn remove_rec(node: &mut Node, block: Rect, capacity: usize, p: &Point2) -> bool {
        match node {
            Node::Leaf(points) => match points.iter().position(|q| q == p) {
                Some(idx) => {
                    points.swap_remove(idx);
                    true
                }
                None => false,
            },
            Node::Internal(children) => {
                let q = block.quadrant_of(p);
                let removed =
                    Self::remove_rec(&mut children[q.index()], block.quadrant(q), capacity, p);
                if removed {
                    Self::try_collapse(node, capacity);
                }
                removed
            }
        }
    }

    fn try_collapse(node: &mut Node, capacity: usize) {
        let Node::Internal(children) = node else {
            return;
        };
        let mut total = 0;
        for child in children.iter() {
            match child {
                Node::Leaf(points) => total += points.len(),
                Node::Internal(_) => return,
            }
        }
        if total > capacity {
            let mut first: Option<Point2> = None;
            let all_coincident = children.iter().all(|child| match child {
                Node::Leaf(points) => points.iter().all(|q| match first {
                    Some(f) => *q == f,
                    None => {
                        first = Some(*q);
                        true
                    }
                }),
                Node::Internal(_) => false,
            });
            if !all_coincident {
                return;
            }
        }
        let mut merged = Vec::with_capacity(total);
        for child in children.iter_mut() {
            if let Node::Leaf(points) = child {
                merged.append(points);
            }
        }
        *node = Node::Leaf(merged);
    }

    /// Total node count (internal + leaf).
    pub fn node_count(&self) -> usize {
        fn walk(node: &Node) -> usize {
            match node {
                Node::Leaf(_) => 1,
                Node::Internal(children) => 1 + children.iter().map(walk).sum::<usize>(),
            }
        }
        walk(&self.root)
    }

    /// Leaf node count (full traversal — this is the implementation whose
    /// cost the arena census eliminates).
    pub fn leaf_count(&self) -> usize {
        self.leaf_records().len()
    }

    /// Visits every leaf with its block, depth and points, NW→SE
    /// pre-order.
    pub fn for_each_leaf(&self, mut f: impl FnMut(Rect, u32, &[Point2])) {
        fn walk(node: &Node, block: Rect, depth: u32, f: &mut impl FnMut(Rect, u32, &[Point2])) {
            match node {
                Node::Leaf(points) => f(block, depth, points),
                Node::Internal(children) => {
                    for (i, child) in children.iter().enumerate() {
                        walk(child, block.quadrant(Quadrant::from_index(i)), depth + 1, f);
                    }
                }
            }
        }
        walk(&self.root, self.region, 0, &mut f);
    }

    /// All stored points, in leaf order.
    pub fn points(&self) -> Vec<Point2> {
        let mut out = Vec::with_capacity(self.len);
        self.for_each_leaf(|_, _, pts| out.extend_from_slice(pts));
        out
    }
}

impl OccupancyInstrumented for BoxedPrQuadtree {
    fn capacity(&self) -> usize {
        self.capacity
    }

    fn leaf_records(&self) -> Vec<LeafRecord> {
        let mut out = Vec::new();
        self.for_each_leaf(|_, depth, points| {
            out.push(LeafRecord {
                depth,
                occupancy: points.len(),
            })
        });
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn oracle_basics() {
        let mut t = BoxedPrQuadtree::new(Rect::unit(), 1).unwrap();
        assert!(t.is_empty());
        for p in [
            Point2::new(0.1, 0.1),
            Point2::new(0.9, 0.1),
            Point2::new(0.1, 0.9),
            Point2::new(0.9, 0.9),
        ] {
            t.insert(p).unwrap();
        }
        assert_eq!(t.node_count(), 5);
        assert_eq!(t.leaf_count(), 4);
        assert!(t.remove(&Point2::new(0.9, 0.9)));
        assert!(t.remove(&Point2::new(0.1, 0.9)));
        assert!(t.remove(&Point2::new(0.9, 0.1)));
        assert_eq!(t.node_count(), 1, "collapse restores the single leaf");
        assert_eq!(t.len(), 1);
    }
}
