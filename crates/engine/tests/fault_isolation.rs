//! Integration tests for the engine's fault-tolerance surface: panic
//! isolation, deterministic retry streams, fault injection, and
//! checkpoint/resume — all through the public API only.

use popan_engine::{
    fingerprint_of, Engine, EngineError, Experiment, Fault, FaultPlan, RetryPolicy,
};
use popan_rng::rngs::StdRng;
use popan_rng::Rng;
use popan_workload::TrialRunner;
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};

/// A toy experiment whose trials are cheap but RNG-dependent, so
/// bit-identity checks are meaningful.
struct Sum {
    seed: u64,
    trials: usize,
}

impl Experiment for Sum {
    type Config = ();
    type Theory = ();
    type Trial = (usize, f64);
    type Summary = Vec<(usize, f64)>;

    fn name(&self) -> String {
        "sum".into()
    }
    fn config(&self) -> &() {
        &()
    }
    fn fingerprint(&self) -> u64 {
        fingerprint_of(&[self.seed, self.trials as u64])
    }
    fn runner(&self) -> TrialRunner {
        TrialRunner::new(self.seed, self.trials)
    }
    fn theory(&self) {}
    fn run_trial(&self, t: usize, rng: &mut StdRng) -> (usize, f64) {
        let draws: f64 = (0..16).map(|_| rng.random::<f64>()).sum();
        (t, draws)
    }
    fn aggregate(&self, _theory: (), trials: &[(usize, f64)]) -> Self::Summary {
        trials.to_vec()
    }
}

static DIR_COUNTER: AtomicU64 = AtomicU64::new(0);

fn temp_dir(tag: &str) -> PathBuf {
    let n = DIR_COUNTER.fetch_add(1, Ordering::Relaxed);
    let dir = std::env::temp_dir().join(format!(
        "popan-fault-isolation-{tag}-{}-{n}",
        std::process::id()
    ));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

#[test]
fn survivors_are_bit_identical_across_thread_counts() {
    let exp = Sum {
        seed: 0xdead,
        trials: 9,
    };
    let plan = FaultPlan::none()
        .inject("sum", 2, Fault::Panic)
        .inject("sum", 7, Fault::Nan);
    let baseline = Engine::sequential()
        .with_fault_plan(plan.clone())
        .try_run(&exp)
        .unwrap();
    assert_eq!(baseline.completed, 7);
    assert_eq!(
        baseline
            .failures
            .iter()
            .map(|f| f.trial)
            .collect::<Vec<_>>(),
        vec![2, 7]
    );
    for threads in [2, 3, 4, 8] {
        let report = Engine::with_threads(threads)
            .with_fault_plan(plan.clone())
            .try_run(&exp)
            .unwrap();
        let bits = |summary: &Vec<(usize, f64)>| {
            summary
                .iter()
                .map(|&(t, x)| (t, x.to_bits()))
                .collect::<Vec<_>>()
        };
        assert_eq!(
            bits(&report.summary),
            bits(&baseline.summary),
            "threads = {threads}"
        );
    }
}

#[test]
fn survivors_match_the_clean_run_exactly() {
    let exp = Sum {
        seed: 0xbeef,
        trials: 6,
    };
    let clean = Engine::sequential().try_run(&exp).unwrap().summary;
    let report = Engine::with_threads(4)
        .with_fault_plan(FaultPlan::none().inject("sum", 4, Fault::Panic))
        .try_run(&exp)
        .unwrap();
    let expected: Vec<(usize, u64)> = clean
        .iter()
        .filter(|&&(t, _)| t != 4)
        .map(|&(t, x)| (t, x.to_bits()))
        .collect();
    let got: Vec<(usize, u64)> = report
        .summary
        .iter()
        .map(|&(t, x)| (t, x.to_bits()))
        .collect();
    assert_eq!(
        got, expected,
        "a failing sibling must not perturb survivors"
    );
}

#[test]
fn delay_fault_changes_timing_but_not_results() {
    let exp = Sum {
        seed: 0x0123,
        trials: 4,
    };
    let clean = Engine::sequential().try_run(&exp).unwrap();
    let delayed = Engine::with_threads(4)
        .with_fault_plan(FaultPlan::none().inject(
            "sum",
            0,
            Fault::Delay(std::time::Duration::from_millis(30)),
        ))
        .try_run(&exp)
        .unwrap();
    assert!(delayed.is_complete());
    assert_eq!(
        format!("{:?}", delayed.summary),
        format!("{:?}", clean.summary)
    );
}

#[test]
fn all_trials_failing_is_a_typed_error_not_a_panic() {
    let exp = Sum {
        seed: 0x7777,
        trials: 3,
    };
    let plan = (0..3).fold(FaultPlan::none(), |p, t| p.inject("*", t, Fault::Panic));
    match Engine::with_threads(2).with_fault_plan(plan).try_run(&exp) {
        Err(EngineError::AllTrialsFailed { name, failures }) => {
            assert_eq!(name, "sum");
            assert_eq!(failures.len(), 3);
            for f in &failures {
                assert_eq!(f.attempts, 1);
                assert!(f.payload.contains("injected fault"), "{}", f.payload);
            }
        }
        other => panic!("expected AllTrialsFailed, got {other:?}"),
    }
}

#[test]
fn retry_on_same_stream_reproduces_the_clean_run() {
    let exp = Sum {
        seed: 0x4242,
        trials: 5,
    };
    let clean = Engine::sequential().try_run(&exp).unwrap();
    for threads in [1, 4] {
        let report = Engine::with_threads(threads)
            .with_retry(RetryPolicy::retries(2))
            .with_fault_plan(
                FaultPlan::none()
                    .inject_at("sum", 1, 0, Fault::Panic)
                    .inject_at("sum", 1, 1, Fault::Nan),
            )
            .try_run(&exp)
            .unwrap();
        assert!(report.is_complete(), "third attempt succeeds");
        assert_eq!(
            format!("{:?}", report.summary),
            format!("{:?}", clean.summary),
            "replayed attempt-0 stream must reproduce the clean result (threads = {threads})"
        );
    }
}

#[test]
fn exhausted_retries_report_the_attempt_count_and_last_payload() {
    let exp = Sum {
        seed: 0x1111,
        trials: 2,
    };
    let report = Engine::sequential()
        .with_retry(RetryPolicy::retries(1))
        .with_fault_plan(
            FaultPlan::none()
                .inject_at("sum", 0, 0, Fault::Nan)
                .inject_at("sum", 0, 1, Fault::Panic),
        )
        .try_run(&exp)
        .unwrap();
    assert_eq!(report.failures.len(), 1);
    let failure = &report.failures[0];
    assert_eq!(failure.attempts, 2);
    assert!(
        failure.payload.contains("panic"),
        "last attempt's payload wins: {}",
        failure.payload
    );
}

#[test]
fn checkpoint_resume_reproduces_the_uninterrupted_aggregate() {
    let exp = Sum {
        seed: 0x5555,
        trials: 8,
    };
    let clean = Engine::sequential().try_run(&exp).unwrap();
    let dir = temp_dir("resume");

    // Run 1: three trials fail, five checkpoint.
    let plan = (0..3).fold(FaultPlan::none(), |p, t| {
        p.inject("sum", 2 * t, Fault::Panic)
    });
    let partial = Engine::with_threads(4)
        .with_checkpoint(&dir)
        .with_fault_plan(plan)
        .try_run(&exp)
        .unwrap();
    assert_eq!(partial.completed, 5);

    // Run 2: resume; only the three failed trials execute.
    let resumed = Engine::with_threads(4)
        .with_checkpoint(&dir)
        .try_run(&exp)
        .unwrap();
    assert!(resumed.is_complete());
    assert_eq!(resumed.resumed, 5);
    assert_eq!(
        format!("{:?}", resumed.summary),
        format!("{:?}", clean.summary),
        "resumed aggregate must be bit-identical to the uninterrupted run"
    );
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn corrupted_checkpoint_lines_degrade_to_recomputation() {
    let exp = Sum {
        seed: 0x9999,
        trials: 4,
    };
    let clean = Engine::sequential().try_run(&exp).unwrap();
    let dir = temp_dir("corrupt");
    Engine::sequential()
        .with_checkpoint(&dir)
        .try_run(&exp)
        .unwrap();

    // Vandalize the checkpoint: truncate the single file mid-line.
    let file = std::fs::read_dir(&dir)
        .unwrap()
        .next()
        .unwrap()
        .unwrap()
        .path();
    let contents = std::fs::read_to_string(&file).unwrap();
    let cut = contents.len() - contents.len() / 3;
    std::fs::write(&file, &contents[..cut]).unwrap();

    let resumed = Engine::sequential()
        .with_checkpoint(&dir)
        .try_run(&exp)
        .unwrap();
    assert!(resumed.is_complete());
    assert!(
        resumed.resumed < 4,
        "the damaged tail must not be trusted (resumed {})",
        resumed.resumed
    );
    assert_eq!(
        format!("{:?}", resumed.summary),
        format!("{:?}", clean.summary),
        "recomputed trials land on the identical bits"
    );
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn checkpoints_of_different_experiments_do_not_mix() {
    let dir = temp_dir("mix");
    let a = Sum {
        seed: 0xaaaa,
        trials: 3,
    };
    let b = Sum {
        seed: 0xbbbb,
        trials: 3,
    };
    let engine = Engine::sequential().with_checkpoint(&dir);
    engine.try_run(&a).unwrap();
    // Same name, different seed/fingerprint: must not reuse a's trials.
    let report = engine.try_run(&b).unwrap();
    assert_eq!(report.resumed, 0);
    let clean = Engine::sequential().try_run(&b).unwrap();
    assert_eq!(
        format!("{:?}", report.summary),
        format!("{:?}", clean.summary)
    );
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn unwritable_checkpoint_dir_is_a_typed_error() {
    let exp = Sum {
        seed: 0xcccc,
        trials: 2,
    };
    // A path under a regular file cannot be created.
    let bogus = std::env::temp_dir().join(format!("popan-flat-file-{}", std::process::id()));
    std::fs::write(&bogus, b"flat").unwrap();
    let result = Engine::sequential()
        .with_checkpoint(bogus.join("nested"))
        .try_run(&exp);
    assert!(
        matches!(result, Err(EngineError::Checkpoint { .. })),
        "{result:?}"
    );
    let _ = std::fs::remove_file(&bogus);
}
