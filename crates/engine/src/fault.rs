//! Deterministic fault injection.
//!
//! Robustness code that only runs when something actually breaks is
//! untested code. A [`FaultPlan`] lets tests, `scripts/verify.sh`, and
//! ad-hoc debugging sessions inject failures at chosen `(experiment,
//! trial, attempt)` coordinates — panics, NaN results, artificial delays,
//! or a hard process abort — so the isolation, retry, and checkpoint
//! machinery is exercised on demand and reproducibly.
//!
//! Plans are deterministic by construction: a fault fires iff its
//! coordinates match, never randomly. The environment syntax
//! (`POPAN_FAULTS`) is a comma-separated list of
//! `scope:trial:kind[@attempt]` entries:
//!
//! ```text
//! table1/m4:2:panic        panic in trial 2 of table1/m4 (attempt 0)
//! *:0:nan                  every experiment's trial 0 returns NaN
//! table3:1:delay50         trial 1 sleeps 50 ms before running
//! table1/m2:2:abort@0      hard process exit (simulates kill -9)
//! table1/m4:2:panic@1      panic only on the first retry
//! ```
//!
//! PR 8 extended the vocabulary to the serving tier (`popan-query`'s
//! chaos suite interprets these; the engine only carries the plan):
//!
//! ```text
//! chaos:2:corrupt:points   flip one bit in epoch 2's frozen point slab
//! chaos:3:corrupt:leaf     … in the leaf-record slab (`leaves` works too)
//! chaos:4:corrupt:blocks   … in the block-rect slab
//! chaos:1:publish-stall    hold the candidate back one round (readers
//!                          keep serving the last-good epoch)
//! chaos:5:reject-epoch     operator-forced quarantine of the candidate
//! ```
//!
//! For the query-tier kinds, `trial` addresses the publish *round*.

use crate::outcome::EngineError;
use std::time::Duration;

/// The frozen snapshot slab a [`Fault::Corrupt`] fault damages.
///
/// Mirrors `popan_spatial::SnapshotSection` without depending on it —
/// the engine is fault *bookkeeping*; the chaos suite in `popan-query`
/// maps targets onto actual slabs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CorruptTarget {
    /// The Morton-sorted leaf-record slab (`corrupt:leaf` / `corrupt:leaves`).
    Leaves,
    /// The geometric block-rect slab (`corrupt:blocks`).
    Blocks,
    /// The flat point slab (`corrupt:points`).
    Points,
}

impl std::fmt::Display for CorruptTarget {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(match self {
            CorruptTarget::Leaves => "leaves",
            CorruptTarget::Blocks => "blocks",
            CorruptTarget::Points => "points",
        })
    }
}

/// The kinds of fault the engine can inject.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Fault {
    /// Panic inside the trial (exercises `catch_unwind` isolation).
    Panic,
    /// Run the trial, then poison the attempt as if it produced a
    /// non-finite result (exercises retry without unwinding).
    Nan,
    /// Sleep this long before running the trial (exercises scheduling
    /// skew and checkpoint interleaving).
    Delay(Duration),
    /// Exit the process immediately with [`ABORT_EXIT_CODE`] (simulates a
    /// kill mid-run for checkpoint/resume tests).
    Abort,
    /// Query tier: flip one deterministic bit in the named frozen slab
    /// of the candidate snapshot before it is offered for publishing
    /// (exercises checksum verification and quarantine).
    Corrupt(CorruptTarget),
    /// Query tier: hold the candidate snapshot back one publish round;
    /// readers keep serving the last-good epoch (exercises stale-but-
    /// complete serving and delayed recovery).
    PublishStall,
    /// Query tier: operator-forced quarantine of the candidate epoch
    /// (exercises the rejection path without slab damage).
    RejectEpoch,
}

/// Exit code used by [`Fault::Abort`] so harnesses can tell an injected
/// abort from an ordinary failure.
pub const ABORT_EXIT_CODE: i32 = 86;

/// One planned fault at `(scope, trial, attempt)`.
#[derive(Debug, Clone, PartialEq, Eq)]
struct PlannedFault {
    /// Experiment name the fault applies to; `None` is the `*` wildcard.
    scope: Option<String>,
    trial: usize,
    attempt: usize,
    fault: Fault,
}

/// A deterministic set of planned faults.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct FaultPlan {
    faults: Vec<PlannedFault>,
}

impl FaultPlan {
    /// The empty plan: no faults ever fire.
    pub fn none() -> Self {
        FaultPlan::default()
    }

    /// `true` when the plan contains no faults.
    pub fn is_empty(&self) -> bool {
        self.faults.is_empty()
    }

    /// Adds a fault at `(scope, trial)`, attempt 0. `"*"` as the scope
    /// matches every experiment.
    pub fn inject(self, scope: &str, trial: usize, fault: Fault) -> Self {
        self.inject_at(scope, trial, 0, fault)
    }

    /// Adds a fault at `(scope, trial, attempt)`.
    pub fn inject_at(mut self, scope: &str, trial: usize, attempt: usize, fault: Fault) -> Self {
        self.faults.push(PlannedFault {
            scope: (scope != "*").then(|| scope.to_string()),
            trial,
            attempt,
            fault,
        });
        self
    }

    /// The fault planned for `(experiment, trial, attempt)`, if any.
    /// First match wins when entries overlap.
    pub fn fault_for(&self, experiment: &str, trial: usize, attempt: usize) -> Option<Fault> {
        self.faults
            .iter()
            .find(|p| {
                p.trial == trial
                    && p.attempt == attempt
                    && p.scope.as_deref().is_none_or(|s| s == experiment)
            })
            .map(|p| p.fault)
    }

    /// Parses the `POPAN_FAULTS` syntax: comma-separated
    /// `scope:trial:kind[@attempt]` entries (see the module docs). The
    /// empty string is the empty plan.
    pub fn parse(spec: &str) -> Result<Self, EngineError> {
        let bad = |reason: &str| EngineError::BadFaultSpec {
            value: spec.to_string(),
            reason: reason.to_string(),
        };
        let mut plan = FaultPlan::none();
        for entry in spec.split(',').map(str::trim).filter(|e| !e.is_empty()) {
            // Split from the left: the kind itself may contain `:`
            // (`corrupt:points`), while scope and trial never do —
            // registry scopes use `/` for sub-rows, not `:`.
            let (scope, rest) = entry
                .split_once(':')
                .ok_or_else(|| bad("entry is not scope:trial:kind"))?;
            let (trial_spec, kind_spec) = rest
                .split_once(':')
                .ok_or_else(|| bad("entry is not scope:trial:kind"))?;
            if scope.is_empty() {
                return Err(bad("empty scope (use `*` for any experiment)"));
            }
            let trial: usize = trial_spec
                .parse()
                .map_err(|_| bad("trial index is not an integer"))?;
            let (kind, attempt) = match kind_spec.split_once('@') {
                None => (kind_spec, 0),
                Some((kind, attempt_spec)) => (
                    kind,
                    attempt_spec
                        .parse()
                        .map_err(|_| bad("attempt is not an integer"))?,
                ),
            };
            let fault = match kind {
                "panic" => Fault::Panic,
                "nan" => Fault::Nan,
                "abort" => Fault::Abort,
                "publish-stall" => Fault::PublishStall,
                "reject-epoch" => Fault::RejectEpoch,
                "corrupt:leaf" | "corrupt:leaves" => Fault::Corrupt(CorruptTarget::Leaves),
                "corrupt:blocks" => Fault::Corrupt(CorruptTarget::Blocks),
                "corrupt:points" => Fault::Corrupt(CorruptTarget::Points),
                _ if kind.starts_with("corrupt") => {
                    return Err(bad("corrupt needs a section: corrupt:leaf|blocks|points"))
                }
                _ => match kind.strip_prefix("delay") {
                    Some(ms) => {
                        Fault::Delay(Duration::from_millis(ms.parse().map_err(|_| {
                            bad("delay needs integer milliseconds, e.g. delay50")
                        })?))
                    }
                    None => return Err(bad("unknown fault kind")),
                },
            };
            plan = plan.inject_at(scope, trial, attempt, fault);
        }
        Ok(plan)
    }

    /// The plan selected by `POPAN_FAULTS` (the empty plan when unset).
    pub fn from_env() -> Result<Self, EngineError> {
        match std::env::var("POPAN_FAULTS") {
            Ok(spec) => FaultPlan::parse(&spec),
            Err(_) => Ok(FaultPlan::none()),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_plan_never_fires() {
        let plan = FaultPlan::none();
        assert!(plan.is_empty());
        assert_eq!(plan.fault_for("table1/m4", 0, 0), None);
    }

    #[test]
    fn scoped_fault_fires_only_at_its_coordinates() {
        let plan = FaultPlan::none().inject("table1/m4", 2, Fault::Panic);
        assert_eq!(plan.fault_for("table1/m4", 2, 0), Some(Fault::Panic));
        assert_eq!(plan.fault_for("table1/m4", 1, 0), None);
        assert_eq!(plan.fault_for("table1/m8", 2, 0), None);
        assert_eq!(plan.fault_for("table1/m4", 2, 1), None, "attempt-0 only");
    }

    #[test]
    fn wildcard_scope_matches_every_experiment() {
        let plan = FaultPlan::none().inject("*", 0, Fault::Nan);
        assert_eq!(plan.fault_for("table1/m4", 0, 0), Some(Fault::Nan));
        assert_eq!(plan.fault_for("anything", 0, 0), Some(Fault::Nan));
        assert_eq!(plan.fault_for("anything", 1, 0), None);
    }

    #[test]
    fn attempt_targeted_fault() {
        let plan = FaultPlan::none().inject_at("x", 3, 1, Fault::Panic);
        assert_eq!(plan.fault_for("x", 3, 0), None);
        assert_eq!(plan.fault_for("x", 3, 1), Some(Fault::Panic));
    }

    #[test]
    fn parses_the_env_syntax() {
        let plan = FaultPlan::parse("table1/m4:2:panic, *:0:nan ,table3:1:delay50").unwrap();
        assert_eq!(plan.fault_for("table1/m4", 2, 0), Some(Fault::Panic));
        assert_eq!(plan.fault_for("whatever", 0, 0), Some(Fault::Nan));
        assert_eq!(
            plan.fault_for("table3", 1, 0),
            Some(Fault::Delay(Duration::from_millis(50)))
        );
    }

    #[test]
    fn parses_attempt_suffix_and_abort() {
        let plan = FaultPlan::parse("a:1:panic@2,b:0:abort").unwrap();
        assert_eq!(plan.fault_for("a", 1, 2), Some(Fault::Panic));
        assert_eq!(plan.fault_for("a", 1, 0), None);
        assert_eq!(plan.fault_for("b", 0, 0), Some(Fault::Abort));
    }

    #[test]
    fn parses_the_query_tier_vocabulary() {
        let plan = FaultPlan::parse(
            "chaos:2:corrupt:points,chaos:3:corrupt:leaf,chaos:4:corrupt:blocks,\
             chaos:1:publish-stall,chaos:5:reject-epoch,chaos:6:corrupt:leaves@1",
        )
        .unwrap();
        assert_eq!(
            plan.fault_for("chaos", 2, 0),
            Some(Fault::Corrupt(CorruptTarget::Points))
        );
        assert_eq!(
            plan.fault_for("chaos", 3, 0),
            Some(Fault::Corrupt(CorruptTarget::Leaves))
        );
        assert_eq!(
            plan.fault_for("chaos", 4, 0),
            Some(Fault::Corrupt(CorruptTarget::Blocks))
        );
        assert_eq!(plan.fault_for("chaos", 1, 0), Some(Fault::PublishStall));
        assert_eq!(plan.fault_for("chaos", 5, 0), Some(Fault::RejectEpoch));
        assert_eq!(
            plan.fault_for("chaos", 6, 1),
            Some(Fault::Corrupt(CorruptTarget::Leaves)),
            "attempt suffix composes with sectioned kinds"
        );
        assert_eq!(plan.fault_for("chaos", 6, 0), None);
    }

    #[test]
    fn rejects_sectionless_or_unknown_corrupt() {
        for spec in ["a:1:corrupt", "a:1:corrupt:", "a:1:corrupt:nodes"] {
            let err = FaultPlan::parse(spec).unwrap_err();
            assert!(
                matches!(err, EngineError::BadFaultSpec { .. }),
                "{spec}: {err:?}"
            );
        }
    }

    #[test]
    fn empty_spec_is_the_empty_plan() {
        assert_eq!(FaultPlan::parse("").unwrap(), FaultPlan::none());
        assert_eq!(FaultPlan::parse(" , ").unwrap(), FaultPlan::none());
    }

    #[test]
    fn rejects_malformed_specs() {
        for spec in [
            "nocolons",
            "a:b",         // too few fields
            "a:x:panic",   // non-integer trial
            "a:1:explode", // unknown kind
            "a:1:delay",   // delay without milliseconds
            "a:1:delayxx", // delay with junk
            "a:1:panic@x", // non-integer attempt
            ":1:panic",    // empty scope
        ] {
            let err = FaultPlan::parse(spec).unwrap_err();
            assert!(
                matches!(err, EngineError::BadFaultSpec { .. }),
                "{spec} should fail as BadFaultSpec, got {err:?}"
            );
        }
    }

    #[test]
    fn first_match_wins_on_overlap() {
        let plan = FaultPlan::none()
            .inject("x", 0, Fault::Panic)
            .inject("*", 0, Fault::Nan);
        assert_eq!(plan.fault_for("x", 0, 0), Some(Fault::Panic));
        assert_eq!(plan.fault_for("y", 0, 0), Some(Fault::Nan));
    }
}
