//! # popan-engine — the unified experiment engine
//!
//! Every paper table/figure driver follows the same protocol: solve the
//! deterministic theory side once, build `N` independently seeded trees,
//! and aggregate the per-tree measurements. This crate factors that
//! protocol out of the drivers:
//!
//! * [`Experiment`] — the trait a driver implements instead of
//!   open-coding the loop: a deterministic [`theory`](Experiment::theory)
//!   step, an independently seeded
//!   [`run_trial`](Experiment::run_trial), and an order-sensitive
//!   [`aggregate`](Experiment::aggregate).
//! * [`Engine`] — the executor. It runs the trials either sequentially
//!   or across `std::thread` workers
//!   ([`TrialRunner::run_par`](popan_workload::TrialRunner::run_par)),
//!   and reassembles results in trial order before aggregation.
//!
//! ## Determinism contract
//!
//! Trial `t`'s RNG stream is derived from `(master_seed, t)` alone, and
//! the engine hands `aggregate` the trial results sorted by trial index.
//! Therefore **every summary is bit-identical for every thread count**:
//! `Engine::with_threads(8)` produces exactly the bytes
//! `Engine::sequential()` produces. The test suites pin this for each
//! experiment in the workspace.
//!
//! ## Thread-count selection
//!
//! [`Engine::from_env`] reads `POPAN_THREADS`: unset or `0` means "use
//! [`std::thread::available_parallelism`]", `1` forces the sequential
//! path, any other value is the worker count. Experiments never spawn
//! more workers than trials.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use popan_rng::rngs::StdRng;
use popan_workload::TrialRunner;

/// One Monte-Carlo experiment: a deterministic theory side, an
/// independently seeded trial, and an order-sensitive aggregation.
///
/// Implementations must be [`Sync`]: the engine shares `&self` across
/// worker threads while trials run.
pub trait Experiment: Sync {
    /// The run configuration the experiment was built from (exposed so
    /// generic tooling — reports, determinism tests — can inspect it).
    type Config;
    /// Output of the deterministic (non-Monte-Carlo) side, computed once
    /// per run before any trial.
    type Theory: Send;
    /// One trial's measurement. Crosses thread boundaries.
    type Trial: Send;
    /// The aggregated result.
    type Summary;

    /// Stable experiment id for reports and logs (`"table1/m4"`, …).
    fn name(&self) -> String;

    /// The configuration this experiment runs under.
    fn config(&self) -> &Self::Config;

    /// The trial schedule: master seed (already salted per experiment)
    /// and trial count.
    fn runner(&self) -> TrialRunner;

    /// Solves the deterministic side (model steady state, closed forms).
    /// Called exactly once per run, before the trials, on the caller's
    /// thread. Experiments without a theory side return `()`.
    fn theory(&self) -> Self::Theory;

    /// Runs trial `t` on its own RNG stream. Must depend only on
    /// `(&self, t, rng)` — never on other trials or shared mutable
    /// state — so the scheduler may execute trials in any order on any
    /// worker.
    fn run_trial(&self, t: usize, rng: &mut StdRng) -> Self::Trial;

    /// Reduces the theory output and the trial results (always in trial
    /// order) to the experiment's summary.
    fn aggregate(&self, theory: Self::Theory, trials: &[Self::Trial]) -> Self::Summary;
}

/// Executes [`Experiment`]s over a fixed worker count.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Engine {
    threads: usize,
}

impl Engine {
    /// An engine that runs trials one after another on the calling
    /// thread.
    pub fn sequential() -> Self {
        Engine { threads: 1 }
    }

    /// An engine with an explicit worker count. Panics if `threads == 0`.
    pub fn with_threads(threads: usize) -> Self {
        assert!(threads > 0, "thread count must be positive");
        Engine { threads }
    }

    /// The engine selected by the environment: `POPAN_THREADS` workers,
    /// where unset or `0` means [`std::thread::available_parallelism`]
    /// and `1` forces the sequential path. Panics on an unparsable
    /// value — a misconfigured run should fail loudly, not silently
    /// fall back to one thread.
    pub fn from_env() -> Self {
        let spec = std::env::var("POPAN_THREADS").ok();
        match threads_from_spec(spec.as_deref()) {
            Ok(n) => Engine::with_threads(n),
            Err(bad) => panic!("POPAN_THREADS={bad:?} is not a thread count (expected an integer; 0 = all cores, 1 = sequential)"),
        }
    }

    /// The worker count this engine schedules onto.
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// Runs an experiment end to end: theory once, all trials (in
    /// parallel when `threads > 1`), then aggregation over the
    /// trial-ordered results.
    pub fn run<E: Experiment>(&self, experiment: &E) -> E::Summary {
        let theory = experiment.theory();
        let trials = experiment
            .runner()
            .run_par(self.threads, |t, rng| experiment.run_trial(t, rng));
        experiment.aggregate(theory, &trials)
    }

    /// Runs a bare trial closure over a runner's schedule — the engine
    /// path for sub-loops that don't warrant a named [`Experiment`]
    /// (cycle averages inside a sweep, for example). Results come back
    /// in trial order, bit-identical for every thread count.
    pub fn map_trials<T: Send>(
        &self,
        runner: TrialRunner,
        f: impl Fn(usize, &mut StdRng) -> T + Sync,
    ) -> Vec<T> {
        runner.run_par(self.threads, f)
    }

    /// [`map_trials`](Engine::map_trials) reduced to the trial mean via a
    /// streaming [`Welford`](popan_workload::Welford) accumulator.
    pub fn mean_trials(
        &self,
        runner: TrialRunner,
        f: impl Fn(usize, &mut StdRng) -> f64 + Sync,
    ) -> f64 {
        let mut acc = popan_workload::Welford::new();
        for x in self.map_trials(runner, f) {
            acc.push(x);
        }
        acc.mean()
    }
}

/// Parses a `POPAN_THREADS` specification: `None` or `Some("0")` →
/// available parallelism, otherwise the integer worker count.
fn threads_from_spec(spec: Option<&str>) -> Result<usize, String> {
    match spec {
        None | Some("") => Ok(available_parallelism()),
        Some(s) => match s.trim().parse::<usize>() {
            Ok(0) => Ok(available_parallelism()),
            Ok(n) => Ok(n),
            Err(_) => Err(s.to_string()),
        },
    }
}

fn available_parallelism() -> usize {
    std::thread::available_parallelism().map_or(1, |n| n.get())
}

#[cfg(test)]
mod tests {
    use super::*;
    use popan_rng::Rng;

    /// A toy experiment: theory = trial count, trial = one draw + its
    /// index, summary = (theory, draws).
    struct Draws {
        config: u64,
        trials: usize,
    }

    impl Experiment for Draws {
        type Config = u64;
        type Theory = usize;
        type Trial = (usize, u64);
        type Summary = (usize, Vec<(usize, u64)>);

        fn name(&self) -> String {
            "draws".into()
        }
        fn config(&self) -> &u64 {
            &self.config
        }
        fn runner(&self) -> TrialRunner {
            TrialRunner::new(self.config, self.trials)
        }
        fn theory(&self) -> usize {
            self.trials
        }
        fn run_trial(&self, t: usize, rng: &mut StdRng) -> (usize, u64) {
            (t, rng.random())
        }
        fn aggregate(&self, theory: usize, trials: &[(usize, u64)]) -> Self::Summary {
            (theory, trials.to_vec())
        }
    }

    #[test]
    fn engine_runs_theory_trials_and_aggregation() {
        let exp = Draws {
            config: 9,
            trials: 5,
        };
        let (theory, trials) = Engine::sequential().run(&exp);
        assert_eq!(theory, 5);
        assert_eq!(trials.len(), 5);
        assert_eq!(exp.name(), "draws");
        assert_eq!(*exp.config(), 9);
        for (i, (t, _)) in trials.iter().enumerate() {
            assert_eq!(i, *t);
        }
    }

    #[test]
    fn parallel_summary_is_bit_identical_to_sequential() {
        let exp = Draws {
            config: 0xabc,
            trials: 13,
        };
        let seq = Engine::sequential().run(&exp);
        for threads in 2..=8 {
            assert_eq!(Engine::with_threads(threads).run(&exp), seq);
        }
    }

    #[test]
    fn mean_trials_streams_the_trial_mean() {
        let engine = Engine::sequential();
        let mean = engine.mean_trials(TrialRunner::new(0, 4), |t, _| t as f64);
        assert_eq!(mean, 1.5);
        let par = Engine::with_threads(3).mean_trials(TrialRunner::new(0, 4), |t, _| t as f64);
        assert_eq!(par.to_bits(), mean.to_bits());
    }

    #[test]
    fn map_trials_preserves_order_across_threads() {
        let engine = Engine::with_threads(4);
        let out = engine.map_trials(TrialRunner::new(1, 9), |t, _| t * t);
        assert_eq!(out, (0..9).map(|t| t * t).collect::<Vec<_>>());
    }

    #[test]
    fn thread_spec_parsing() {
        let cores = available_parallelism();
        assert_eq!(threads_from_spec(None), Ok(cores));
        assert_eq!(threads_from_spec(Some("")), Ok(cores));
        assert_eq!(threads_from_spec(Some("0")), Ok(cores));
        assert_eq!(threads_from_spec(Some("1")), Ok(1));
        assert_eq!(threads_from_spec(Some("4")), Ok(4));
        assert_eq!(threads_from_spec(Some(" 2 ")), Ok(2));
        assert!(threads_from_spec(Some("four")).is_err());
        assert!(threads_from_spec(Some("-1")).is_err());
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_threads_is_rejected() {
        Engine::with_threads(0);
    }
}
