//! # popan-engine — the unified experiment engine
//!
//! Every paper table/figure driver follows the same protocol: solve the
//! deterministic theory side once, build `N` independently seeded trees,
//! and aggregate the per-tree measurements. This crate factors that
//! protocol out of the drivers:
//!
//! * [`Experiment`] — the trait a driver implements instead of
//!   open-coding the loop: a deterministic [`theory`](Experiment::theory)
//!   step, an independently seeded
//!   [`run_trial`](Experiment::run_trial), and an order-sensitive
//!   [`aggregate`](Experiment::aggregate).
//! * [`Engine`] — the executor. It runs the trials either sequentially
//!   or across `std::thread` workers
//!   ([`TrialRunner::run_par`](popan_workload::TrialRunner::run_par)),
//!   and reassembles results in trial order before aggregation.
//!
//! ## Determinism contract
//!
//! Trial `t`'s RNG stream is derived from `(master_seed, t)` alone, and
//! the engine hands `aggregate` the trial results sorted by trial index.
//! Therefore **every summary is bit-identical for every thread count**:
//! `Engine::with_threads(8)` produces exactly the bytes
//! `Engine::sequential()` produces. The test suites pin this for each
//! experiment in the workspace.
//!
//! ## Fault tolerance
//!
//! [`Engine::try_run`] isolates every trial behind
//! [`std::panic::catch_unwind`]: a panicking trial takes down neither its
//! worker nor its siblings. Failed trials may be retried under a
//! [`RetryPolicy`] whose re-run RNG streams are pure functions of
//! `(master_seed, trial, attempt)` — so retried runs stay bit-identical
//! at any thread count, and the default policy (replay the attempt-0
//! stream) makes a retried transient fault reproduce the no-fault result
//! exactly. The [`RunReport`] aggregates over the surviving trials and
//! itemizes every [`TrialFailure`]; only a run with **zero** surviving
//! trials is an error. Faults can be injected deterministically for
//! testing via a [`FaultPlan`] (`POPAN_FAULTS`), and completed trials can
//! stream to an append-only checkpoint (`POPAN_CHECKPOINT`) that a later
//! run resumes from, reproducing the uninterrupted aggregate
//! byte-for-byte (see [`checkpoint`]).
//!
//! ## Environment knobs
//!
//! | variable | meaning |
//! |---|---|
//! | `POPAN_THREADS` | worker count; unset/`0` = all cores, `1` = sequential |
//! | `POPAN_RETRIES` | re-runs per failed trial (default 0) |
//! | `POPAN_FAULTS` | fault plan, `scope:trial:kind[@attempt]`, comma-separated |
//! | `POPAN_CHECKPOINT` | directory for trial checkpoints (and resume source) |
//!
//! [`Engine::from_env`] is lenient — a malformed value warns on stderr
//! and falls back to a safe default (sequential, no retries, no faults)
//! rather than killing a long batch. [`Engine::try_from_env`] is the
//! strict variant for front-ends that want to reject a misconfigured run
//! before it starts.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod checkpoint;
pub mod codec;
pub mod fault;
pub mod outcome;

pub use checkpoint::{Checkpoint, CheckpointKey, CheckpointWriter};
pub use codec::{ByteReader, TrialData};
pub use fault::{CorruptTarget, Fault, FaultPlan, ABORT_EXIT_CODE};
pub use outcome::{EngineError, RetryPolicy, RunReport, TrialFailure};

use popan_rng::rngs::StdRng;
use popan_workload::keys::mix64;
use popan_workload::TrialRunner;
use std::collections::BTreeMap;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::path::PathBuf;
use std::time::Instant;

/// One Monte-Carlo experiment: a deterministic theory side, an
/// independently seeded trial, and an order-sensitive aggregation.
///
/// Implementations must be [`Sync`]: the engine shares `&self` across
/// worker threads while trials run.
pub trait Experiment: Sync {
    /// The run configuration the experiment was built from (exposed so
    /// generic tooling — reports, determinism tests — can inspect it).
    type Config;
    /// Output of the deterministic (non-Monte-Carlo) side, computed once
    /// per run before any trial.
    type Theory: Send;
    /// One trial's measurement. Crosses thread boundaries, and — for
    /// checkpoint/resume — roundtrips bit-exactly through [`TrialData`].
    type Trial: Send + TrialData;
    /// The aggregated result.
    type Summary;

    /// Stable experiment id for reports and logs (`"table1/m4"`, …).
    fn name(&self) -> String;

    /// The configuration this experiment runs under.
    fn config(&self) -> &Self::Config;

    /// A digest of every parameter that changes trial results, used to
    /// key checkpoints: a resumed run only reuses a recorded trial when
    /// name, master seed **and** fingerprint all match. Build it with
    /// [`fingerprint_of`].
    fn fingerprint(&self) -> u64;

    /// The trial schedule: master seed (already salted per experiment)
    /// and trial count.
    fn runner(&self) -> TrialRunner;

    /// Solves the deterministic side (model steady state, closed forms).
    /// Called exactly once per run, before the trials, on the caller's
    /// thread. Experiments without a theory side return `()`.
    fn theory(&self) -> Self::Theory;

    /// Runs trial `t` on its own RNG stream. Must depend only on
    /// `(&self, t, rng)` — never on other trials or shared mutable
    /// state — so the scheduler may execute trials in any order on any
    /// worker.
    fn run_trial(&self, t: usize, rng: &mut StdRng) -> Self::Trial;

    /// Reduces the theory output and the trial results (always in trial
    /// order) to the experiment's summary.
    fn aggregate(&self, theory: Self::Theory, trials: &[Self::Trial]) -> Self::Summary;
}

/// Folds experiment parameters into a checkpoint fingerprint. Hash
/// floats via [`f64::to_bits`] before passing them in. Order-sensitive,
/// and `fingerprint_of(&[])` is a fixed non-zero constant.
pub fn fingerprint_of(parts: &[u64]) -> u64 {
    let mut acc = 0x9e37_79b9_7f4a_7c15;
    for &part in parts {
        acc = mix64(acc ^ mix64(part));
    }
    acc
}

/// Executes [`Experiment`]s over a fixed worker count, with per-trial
/// panic isolation, optional deterministic fault injection, retries, and
/// checkpoint/resume.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Engine {
    threads: usize,
    retry: RetryPolicy,
    faults: FaultPlan,
    checkpoint: Option<PathBuf>,
}

impl Engine {
    /// An engine that runs trials one after another on the calling
    /// thread.
    pub fn sequential() -> Self {
        Engine::with_threads(1)
    }

    /// An engine with an explicit worker count. Panics if `threads == 0`.
    pub fn with_threads(threads: usize) -> Self {
        assert!(threads > 0, "thread count must be positive");
        Engine {
            threads,
            retry: RetryPolicy::none(),
            faults: FaultPlan::none(),
            checkpoint: None,
        }
    }

    /// Sets the retry policy for failed trials.
    pub fn with_retry(mut self, retry: RetryPolicy) -> Self {
        self.retry = retry;
        self
    }

    /// Sets a deterministic fault-injection plan.
    pub fn with_fault_plan(mut self, faults: FaultPlan) -> Self {
        self.faults = faults;
        self
    }

    /// Streams completed trials to (and resumes them from) JSONL
    /// checkpoints under `dir`.
    pub fn with_checkpoint(mut self, dir: impl Into<PathBuf>) -> Self {
        self.checkpoint = Some(dir.into());
        self
    }

    /// The engine selected by the environment (see the module docs for
    /// the variables). **Lenient**: a malformed value warns on stderr and
    /// falls back to a safe default — sequential execution for
    /// `POPAN_THREADS`, no retries, no faults — instead of panicking;
    /// a long batch run keeps going, just slower and louder.
    pub fn from_env() -> Self {
        match Engine::try_from_env() {
            Ok(engine) => engine,
            Err(first_error) => {
                // Rebuild knob by knob so one bad variable doesn't
                // discard the good ones.
                let threads = match threads_from_spec(env_spec("POPAN_THREADS").as_deref()) {
                    Ok(n) => n,
                    Err(value) => {
                        warn_fallback(
                            &EngineError::BadThreadSpec { value },
                            "running sequentially",
                        );
                        1
                    }
                };
                let retry = match retry_from_spec(env_spec("POPAN_RETRIES").as_deref()) {
                    Ok(retry) => retry,
                    Err(e) => {
                        warn_fallback(&e, "not retrying failed trials");
                        RetryPolicy::none()
                    }
                };
                let faults = match FaultPlan::from_env() {
                    Ok(plan) => plan,
                    Err(e) => {
                        warn_fallback(&e, "injecting no faults");
                        FaultPlan::none()
                    }
                };
                // try_from_env only fails on the three specs above, all
                // now defaulted — but keep the original error visible if
                // a future knob slips through this rebuild.
                let _ = first_error;
                Engine {
                    threads,
                    retry,
                    faults,
                    checkpoint: env_spec("POPAN_CHECKPOINT").map(PathBuf::from),
                }
            }
        }
    }

    /// The engine selected by the environment, **strict**: any malformed
    /// variable is a typed [`EngineError`] naming the knob, for
    /// front-ends that validate configuration before starting a run.
    pub fn try_from_env() -> Result<Self, EngineError> {
        let threads = threads_from_spec(env_spec("POPAN_THREADS").as_deref())
            .map_err(|value| EngineError::BadThreadSpec { value })?;
        let retry = retry_from_spec(env_spec("POPAN_RETRIES").as_deref())?;
        let faults = FaultPlan::from_env()?;
        let mut engine = Engine::with_threads(threads)
            .with_retry(retry)
            .with_fault_plan(faults);
        if let Some(dir) = env_spec("POPAN_CHECKPOINT") {
            engine = engine.with_checkpoint(dir);
        }
        Ok(engine)
    }

    /// The worker count this engine schedules onto.
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// The retry policy applied to failed trials.
    pub fn retry(&self) -> RetryPolicy {
        self.retry
    }

    /// Runs an experiment end to end, strict: theory once, all trials (in
    /// parallel when `threads > 1`), then aggregation over the
    /// trial-ordered results. Panics with an itemized message if any
    /// trial fails every attempt — for callers that tolerate partial
    /// results, use [`try_run`](Engine::try_run).
    pub fn run<E: Experiment>(&self, experiment: &E) -> E::Summary {
        match self.try_run(experiment) {
            Ok(report) if report.is_complete() => report.summary,
            Ok(report) => {
                let mut message = format!(
                    "{}: {} of {} trials failed",
                    report.name,
                    report.failures.len(),
                    report.total
                );
                for failure in &report.failures {
                    message.push_str("\n  ");
                    message.push_str(&failure.to_string());
                }
                panic!("{message}");
            }
            Err(error) => panic!("{error}"),
        }
    }

    /// Runs an experiment with per-trial fault isolation: a panicking
    /// trial is caught, optionally retried under the engine's
    /// [`RetryPolicy`], and — if it exhausts its attempts — recorded as a
    /// [`TrialFailure`] while every other trial proceeds. The summary
    /// aggregates the surviving trials in trial order; surviving results
    /// are bit-identical for every thread count whether or not other
    /// trials failed.
    ///
    /// With a checkpoint configured, completed trials stream to an
    /// append-only JSONL file as they finish, and already-recorded trials
    /// are loaded instead of re-run (see [`checkpoint`]).
    ///
    /// Errors only when there is nothing to aggregate
    /// ([`EngineError::AllTrialsFailed`]) or the checkpoint is unusable.
    pub fn try_run<E: Experiment>(
        &self,
        experiment: &E,
    ) -> Result<RunReport<E::Summary>, EngineError> {
        let name = experiment.name();
        let runner = experiment.runner();
        let total = runner.trials();

        let mut resumed: BTreeMap<usize, E::Trial> = BTreeMap::new();
        let writer = match &self.checkpoint {
            None => None,
            Some(dir) => {
                let checkpoint = Checkpoint::new(dir);
                let key = CheckpointKey {
                    scope: name.clone(),
                    seed: runner.master_seed(),
                    fingerprint: experiment.fingerprint(),
                };
                for (t, bytes) in checkpoint.load(&key)? {
                    // A checkpoint from a longer run of the same
                    // configuration may hold trials past this schedule;
                    // an undecodable payload just means the trial reruns.
                    if t < total {
                        if let Some(trial) = E::Trial::from_bytes(&bytes) {
                            resumed.insert(t, trial);
                        }
                    }
                }
                Some(checkpoint.writer(&key)?)
            }
        };
        let resumed_count = resumed.len();

        let theory = experiment.theory();
        let pending: Vec<usize> = (0..total).filter(|t| !resumed.contains_key(t)).collect();
        let outcomes = runner.run_par_subset(self.threads, &pending, |t| {
            self.execute_trial(experiment, &runner, &name, t, writer.as_ref())
        });

        let mut completed: Vec<(usize, E::Trial)> = resumed.into_iter().collect();
        let mut failures = Vec::new();
        for (t, outcome) in outcomes {
            match outcome {
                Ok(trial) => completed.push((t, trial)),
                Err(failure) => failures.push(failure),
            }
        }
        completed.sort_by_key(|&(t, _)| t);
        failures.sort_by_key(|f| f.trial);

        if completed.is_empty() {
            return Err(EngineError::AllTrialsFailed { name, failures });
        }
        let trials: Vec<E::Trial> = completed.into_iter().map(|(_, trial)| trial).collect();
        let summary = experiment.aggregate(theory, &trials);
        Ok(RunReport {
            name,
            summary,
            completed: trials.len(),
            resumed: resumed_count,
            failures,
            total,
        })
    }

    /// One trial under isolation: fault injection, `catch_unwind`, the
    /// retry loop, and checkpoint streaming on success.
    fn execute_trial<E: Experiment>(
        &self,
        experiment: &E,
        runner: &TrialRunner,
        name: &str,
        t: usize,
        writer: Option<&CheckpointWriter>,
    ) -> Result<E::Trial, TrialFailure> {
        // popan-lint: allow(D2, "elapsed time feeds TrialFailure diagnostics only, never results")
        let start = Instant::now(); // popan-lint: allow(D2T, "same site as the D2 waiver above: diagnostics only")
        let mut last_payload = String::new();
        for attempt in 0..self.retry.max_attempts {
            let fault = self.faults.fault_for(name, t, attempt);
            match fault {
                Some(Fault::Abort) => {
                    // Simulate a kill mid-run for resume testing: flush
                    // nothing further, just die. Checkpointed trials are
                    // already on disk (each record is flushed).
                    eprintln!(
                        "popan-engine: injected abort at ({name}, trial {t}, attempt {attempt})"
                    );
                    std::process::exit(ABORT_EXIT_CODE);
                }
                Some(Fault::Delay(duration)) => std::thread::sleep(duration),
                _ => {}
            }
            let stream = self.retry.stream_for_attempt(attempt);
            let outcome = catch_unwind(AssertUnwindSafe(|| -> Result<E::Trial, String> {
                if fault == Some(Fault::Panic) {
                    panic!("injected fault: panic at ({name}, trial {t}, attempt {attempt})");
                }
                let mut rng = runner.rng_for_attempt(t, stream);
                let trial = experiment.run_trial(t, &mut rng);
                if fault == Some(Fault::Nan) {
                    return Err(format!(
                        "injected fault: non-finite result at ({name}, trial {t}, attempt {attempt})"
                    ));
                }
                Ok(trial)
            }));
            match outcome {
                Ok(Ok(trial)) => {
                    if let Some(writer) = writer {
                        if let Err(e) = writer.record(t, &trial.to_bytes()) {
                            // Losing durability must not fail the trial.
                            eprintln!("popan-engine: warning: {e}");
                        }
                    }
                    return Ok(trial);
                }
                Ok(Err(payload)) => last_payload = payload,
                Err(panic) => last_payload = panic_message(panic.as_ref()),
            }
        }
        Err(TrialFailure {
            trial: t,
            attempts: self.retry.max_attempts,
            payload: last_payload,
            elapsed: start.elapsed(), // popan-lint: allow(D2T, "duration feeds TrialFailure diagnostics only")
        })
    }

    /// Runs a bare trial closure over a runner's schedule — the engine
    /// path for sub-loops that don't warrant a named [`Experiment`]
    /// (cycle averages inside a sweep, for example). Results come back
    /// in trial order, bit-identical for every thread count. No fault
    /// isolation: a panic here propagates.
    pub fn map_trials<T: Send>(
        &self,
        runner: TrialRunner,
        f: impl Fn(usize, &mut StdRng) -> T + Sync,
    ) -> Vec<T> {
        runner.run_par(self.threads, f)
    }

    /// [`map_trials`](Engine::map_trials) reduced to the trial mean via a
    /// streaming [`Welford`](popan_workload::Welford) accumulator.
    pub fn mean_trials(
        &self,
        runner: TrialRunner,
        f: impl Fn(usize, &mut StdRng) -> f64 + Sync,
    ) -> f64 {
        let mut acc = popan_workload::Welford::new();
        for x in self.map_trials(runner, f) {
            acc.push(x);
        }
        acc.mean()
    }
}

/// Renders a panic payload for failure reports: the `&str` / `String`
/// payloads `panic!` produces, or a placeholder for exotic types.
fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "panic with non-string payload".to_string()
    }
}

fn env_spec(name: &str) -> Option<String> {
    std::env::var(name).ok().filter(|v| !v.is_empty())
}

fn warn_fallback(error: &EngineError, fallback: &str) {
    eprintln!("popan-engine: warning: {error}; {fallback}");
}

/// Parses a `POPAN_THREADS` specification: `None` or `Some("0")` →
/// available parallelism, otherwise the integer worker count.
fn threads_from_spec(spec: Option<&str>) -> Result<usize, String> {
    match spec {
        None | Some("") => Ok(available_parallelism()),
        Some(s) => match s.trim().parse::<usize>() {
            Ok(0) => Ok(available_parallelism()),
            Ok(n) => Ok(n),
            Err(_) => Err(s.to_string()),
        },
    }
}

/// Parses a `POPAN_RETRIES` specification: the number of re-runs granted
/// to a failed trial (`None`/empty → zero).
fn retry_from_spec(spec: Option<&str>) -> Result<RetryPolicy, EngineError> {
    match spec {
        None | Some("") => Ok(RetryPolicy::none()),
        Some(s) => s
            .trim()
            .parse::<usize>()
            .map(RetryPolicy::retries)
            .map_err(|_| EngineError::BadRetrySpec {
                value: s.to_string(),
            }),
    }
}

fn available_parallelism() -> usize {
    std::thread::available_parallelism().map_or(1, |n| n.get())
}

#[cfg(test)]
mod tests {
    use super::*;
    use popan_rng::Rng;
    use std::sync::Mutex;

    /// A toy experiment: theory = trial count, trial = one draw + its
    /// index, summary = (theory, draws).
    struct Draws {
        config: u64,
        trials: usize,
    }

    impl Experiment for Draws {
        type Config = u64;
        type Theory = usize;
        type Trial = (usize, u64);
        type Summary = (usize, Vec<(usize, u64)>);

        fn name(&self) -> String {
            "draws".into()
        }
        fn config(&self) -> &u64 {
            &self.config
        }
        fn fingerprint(&self) -> u64 {
            fingerprint_of(&[self.config, self.trials as u64])
        }
        fn runner(&self) -> TrialRunner {
            TrialRunner::new(self.config, self.trials)
        }
        fn theory(&self) -> usize {
            self.trials
        }
        fn run_trial(&self, t: usize, rng: &mut StdRng) -> (usize, u64) {
            (t, rng.random())
        }
        fn aggregate(&self, theory: usize, trials: &[(usize, u64)]) -> Self::Summary {
            (theory, trials.to_vec())
        }
    }

    #[test]
    fn engine_runs_theory_trials_and_aggregation() {
        let exp = Draws {
            config: 9,
            trials: 5,
        };
        let (theory, trials) = Engine::sequential().run(&exp);
        assert_eq!(theory, 5);
        assert_eq!(trials.len(), 5);
        assert_eq!(exp.name(), "draws");
        assert_eq!(*exp.config(), 9);
        for (i, (t, _)) in trials.iter().enumerate() {
            assert_eq!(i, *t);
        }
    }

    #[test]
    fn parallel_summary_is_bit_identical_to_sequential() {
        let exp = Draws {
            config: 0xabc,
            trials: 13,
        };
        let seq = Engine::sequential().run(&exp);
        for threads in 2..=8 {
            assert_eq!(Engine::with_threads(threads).run(&exp), seq);
        }
    }

    #[test]
    fn try_run_reports_a_clean_run_as_complete() {
        let exp = Draws {
            config: 1,
            trials: 4,
        };
        let report = Engine::sequential().try_run(&exp).unwrap();
        assert!(report.is_complete());
        assert_eq!(report.name, "draws");
        assert_eq!(report.completed, 4);
        assert_eq!(report.resumed, 0);
        assert_eq!(report.total, 4);
        assert_eq!(report.summary, Engine::sequential().run(&exp));
    }

    #[test]
    fn injected_panic_is_isolated_and_itemized() {
        let exp = Draws {
            config: 5,
            trials: 6,
        };
        let clean = Engine::sequential().run(&exp);
        let engine = Engine::sequential().with_fault_plan(FaultPlan::none().inject(
            "draws",
            2,
            Fault::Panic,
        ));
        let report = engine.try_run(&exp).unwrap();
        assert_eq!(report.failures.len(), 1);
        assert_eq!(report.failures[0].trial, 2);
        assert_eq!(report.failures[0].attempts, 1);
        assert!(report.failures[0].payload.contains("injected fault"));
        assert_eq!(report.completed, 5);
        // Survivors are exactly the clean trials minus trial 2.
        let expected: Vec<(usize, u64)> =
            clean.1.iter().copied().filter(|&(t, _)| t != 2).collect();
        assert_eq!(report.summary.1, expected);
    }

    #[test]
    fn strict_run_panics_on_trial_failure() {
        let exp = Draws {
            config: 5,
            trials: 3,
        };
        let engine =
            Engine::sequential().with_fault_plan(FaultPlan::none().inject("*", 1, Fault::Panic));
        let panic = catch_unwind(AssertUnwindSafe(|| engine.run(&exp))).unwrap_err();
        let message = panic_message(panic.as_ref());
        assert!(message.contains("1 of 3 trials failed"), "{message}");
        assert!(message.contains("injected fault"), "{message}");
    }

    #[test]
    fn all_trials_failing_is_a_typed_error() {
        let exp = Draws {
            config: 5,
            trials: 2,
        };
        let engine = Engine::sequential().with_fault_plan(
            FaultPlan::none()
                .inject("*", 0, Fault::Panic)
                .inject("*", 1, Fault::Nan),
        );
        match engine.try_run(&exp) {
            Err(EngineError::AllTrialsFailed { name, failures }) => {
                assert_eq!(name, "draws");
                assert_eq!(failures.len(), 2);
                assert!(failures[1].payload.contains("non-finite"));
            }
            other => panic!("expected AllTrialsFailed, got {other:?}"),
        }
    }

    #[test]
    fn default_retry_reproduces_the_no_fault_summary_exactly() {
        let exp = Draws {
            config: 0xfeed,
            trials: 5,
        };
        let clean = Engine::sequential().run(&exp);
        // Fault on attempt 0 only; one retry replays the attempt-0 stream.
        let engine = Engine::sequential()
            .with_retry(RetryPolicy::retries(1))
            .with_fault_plan(FaultPlan::none().inject_at("draws", 3, 0, Fault::Panic));
        let report = engine.try_run(&exp).unwrap();
        assert!(report.is_complete());
        assert_eq!(report.summary, clean);
    }

    #[test]
    fn reseeded_retry_draws_a_fresh_deterministic_stream() {
        let exp = Draws {
            config: 0xfeed,
            trials: 5,
        };
        let clean = Engine::sequential().run(&exp);
        let engine = Engine::sequential()
            .with_retry(RetryPolicy::retries(1).reseeded())
            .with_fault_plan(FaultPlan::none().inject_at("draws", 3, 0, Fault::Panic));
        let report = engine.try_run(&exp).unwrap();
        assert!(report.is_complete());
        assert_ne!(report.summary, clean, "attempt-1 stream differs");
        // But it is still a pure function of (seed, trial, attempt):
        let again = engine.try_run(&exp).unwrap();
        assert_eq!(report.summary, again.summary);
        // And matches the directly derived attempt-1 draw.
        let mut rng = exp.runner().rng_for_attempt(3, 1);
        assert_eq!(report.summary.1[3], (3, rng.random::<u64>()));
    }

    #[test]
    fn mean_trials_streams_the_trial_mean() {
        let engine = Engine::sequential();
        let mean = engine.mean_trials(TrialRunner::new(0, 4), |t, _| t as f64);
        assert_eq!(mean, 1.5);
        let par = Engine::with_threads(3).mean_trials(TrialRunner::new(0, 4), |t, _| t as f64);
        assert_eq!(par.to_bits(), mean.to_bits());
    }

    #[test]
    fn map_trials_preserves_order_across_threads() {
        let engine = Engine::with_threads(4);
        let out = engine.map_trials(TrialRunner::new(1, 9), |t, _| t * t);
        assert_eq!(out, (0..9).map(|t| t * t).collect::<Vec<_>>());
    }

    #[test]
    fn thread_spec_parsing() {
        let cores = available_parallelism();
        assert_eq!(threads_from_spec(None), Ok(cores));
        assert_eq!(threads_from_spec(Some("")), Ok(cores));
        assert_eq!(threads_from_spec(Some("0")), Ok(cores));
        assert_eq!(threads_from_spec(Some("1")), Ok(1));
        assert_eq!(threads_from_spec(Some("4")), Ok(4));
        assert_eq!(threads_from_spec(Some(" 2 ")), Ok(2));
        assert!(threads_from_spec(Some("four")).is_err());
        assert!(threads_from_spec(Some("-1")).is_err());
    }

    #[test]
    fn retry_spec_parsing() {
        assert_eq!(retry_from_spec(None), Ok(RetryPolicy::none()));
        assert_eq!(retry_from_spec(Some("")), Ok(RetryPolicy::none()));
        assert_eq!(retry_from_spec(Some("0")), Ok(RetryPolicy::none()));
        assert_eq!(retry_from_spec(Some("2")), Ok(RetryPolicy::retries(2)));
        assert!(matches!(
            retry_from_spec(Some("lots")),
            Err(EngineError::BadRetrySpec { .. })
        ));
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_threads_is_rejected() {
        Engine::with_threads(0);
    }

    #[test]
    fn fingerprint_of_distinguishes_parameter_sets() {
        assert_eq!(fingerprint_of(&[1, 2]), fingerprint_of(&[1, 2]));
        assert_ne!(fingerprint_of(&[1, 2]), fingerprint_of(&[2, 1]));
        assert_ne!(fingerprint_of(&[1]), fingerprint_of(&[1, 0]));
        assert_ne!(fingerprint_of(&[]), 0);
    }

    /// Env-mutating tests share this lock so they cannot interleave with
    /// each other (Rust runs tests concurrently in one process).
    static ENV_LOCK: Mutex<()> = Mutex::new(());

    struct EnvGuard {
        name: &'static str,
        saved: Option<String>,
    }

    impl EnvGuard {
        fn set(name: &'static str, value: Option<&str>) -> Self {
            let saved = std::env::var(name).ok();
            match value {
                Some(v) => std::env::set_var(name, v),
                None => std::env::remove_var(name),
            }
            EnvGuard { name, saved }
        }
    }

    impl Drop for EnvGuard {
        fn drop(&mut self) {
            match &self.saved {
                Some(v) => std::env::set_var(self.name, v),
                None => std::env::remove_var(self.name),
            }
        }
    }

    #[test]
    fn from_env_warns_and_falls_back_on_malformed_threads() {
        let _lock = ENV_LOCK.lock().unwrap();
        let _threads = EnvGuard::set("POPAN_THREADS", Some("four"));
        let _retries = EnvGuard::set("POPAN_RETRIES", Some("2"));
        let _faults = EnvGuard::set("POPAN_FAULTS", None);
        let _checkpoint = EnvGuard::set("POPAN_CHECKPOINT", None);
        // Lenient: sequential fallback, but the valid knobs still apply.
        let engine = Engine::from_env();
        assert_eq!(engine.threads(), 1);
        assert_eq!(engine.retry(), RetryPolicy::retries(2));
        // Strict: typed error naming the knob.
        match Engine::try_from_env() {
            Err(EngineError::BadThreadSpec { value }) => assert_eq!(value, "four"),
            other => panic!("expected BadThreadSpec, got {other:?}"),
        }
    }

    #[test]
    fn from_env_reads_all_knobs_when_well_formed() {
        let _lock = ENV_LOCK.lock().unwrap();
        let _threads = EnvGuard::set("POPAN_THREADS", Some("3"));
        let _retries = EnvGuard::set("POPAN_RETRIES", Some("1"));
        let _faults = EnvGuard::set("POPAN_FAULTS", Some("draws:0:nan"));
        let _checkpoint = EnvGuard::set("POPAN_CHECKPOINT", Some("/tmp/popan-ckpt"));
        let engine = Engine::try_from_env().unwrap();
        assert_eq!(engine.threads(), 3);
        assert_eq!(engine.retry(), RetryPolicy::retries(1));
        assert_eq!(engine.faults.fault_for("draws", 0, 0), Some(Fault::Nan));
        assert_eq!(
            engine.checkpoint.as_deref(),
            Some(std::path::Path::new("/tmp/popan-ckpt"))
        );
        assert_eq!(Engine::from_env(), engine);
    }

    #[test]
    fn from_env_malformed_faults_fall_back_to_none() {
        let _lock = ENV_LOCK.lock().unwrap();
        let _threads = EnvGuard::set("POPAN_THREADS", Some("2"));
        let _retries = EnvGuard::set("POPAN_RETRIES", None);
        let _faults = EnvGuard::set("POPAN_FAULTS", Some("garbage"));
        let _checkpoint = EnvGuard::set("POPAN_CHECKPOINT", None);
        let engine = Engine::from_env();
        assert_eq!(engine.threads(), 2, "valid thread spec survives");
        assert!(engine.faults.is_empty());
        assert!(matches!(
            Engine::try_from_env(),
            Err(EngineError::BadFaultSpec { .. })
        ));
    }

    #[test]
    fn checkpointed_run_resumes_and_reproduces_the_clean_summary() {
        let exp = Draws {
            config: 0xc0ffee,
            trials: 6,
        };
        let clean = Engine::sequential().run(&exp);
        let dir = std::env::temp_dir().join(format!("popan-engine-ckpt-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);

        // First run fails trial 4 and checkpoints the other five.
        let faulty = Engine::sequential()
            .with_checkpoint(&dir)
            .with_fault_plan(FaultPlan::none().inject("draws", 4, Fault::Panic));
        let partial = faulty.try_run(&exp).unwrap();
        assert_eq!(partial.completed, 5);
        assert_eq!(partial.resumed, 0);

        // Second run (no faults) resumes the five and runs only trial 4.
        let resumed = Engine::sequential()
            .with_checkpoint(&dir)
            .try_run(&exp)
            .unwrap();
        assert!(resumed.is_complete());
        assert_eq!(resumed.resumed, 5);
        assert_eq!(
            resumed.summary, clean,
            "bit-identical to the uninterrupted run"
        );
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn checkpoint_is_keyed_by_fingerprint() {
        let dir = std::env::temp_dir().join(format!("popan-engine-fp-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let small = Draws {
            config: 7,
            trials: 2,
        };
        let engine = Engine::sequential().with_checkpoint(&dir);
        engine.try_run(&small).unwrap();
        // Same name and seed, different fingerprint: nothing reused.
        let large = Draws {
            config: 7,
            trials: 3,
        };
        let report = engine.try_run(&large).unwrap();
        assert_eq!(report.resumed, 0);
        assert!(report.is_complete());
        let _ = std::fs::remove_dir_all(&dir);
    }
}
