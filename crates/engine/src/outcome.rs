//! Structured results of a fault-isolated run: per-trial failures, the
//! retry policy that governs re-runs, the run report, and the engine's
//! typed error.

use std::fmt;
use std::time::Duration;

/// How many times a trial may run, and on which RNG streams.
///
/// The re-run stream for `(trial t, attempt a)` is a pure function of
/// `(master_seed, t, a)` (see
/// [`TrialRunner::rng_for_attempt`](popan_workload::TrialRunner::rng_for_attempt)),
/// so retries are bit-identical at any thread count. By default every
/// attempt replays the *attempt-0* stream — a retried transient fault
/// (a panic injected on attempt 0, say) reproduces the no-fault result
/// exactly. [`reseeded`](RetryPolicy::reseeded) switches later attempts
/// to their own independent streams for failures that are data-dependent
/// rather than transient.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RetryPolicy {
    /// Total attempts per trial (first run included). Never zero.
    pub max_attempts: usize,
    /// When `true`, attempt `a > 0` runs on its own `(seed, t, a)` stream
    /// instead of replaying the attempt-0 stream.
    pub reseed: bool,
}

impl RetryPolicy {
    /// One attempt, no retries — the default.
    pub fn none() -> Self {
        RetryPolicy {
            max_attempts: 1,
            reseed: false,
        }
    }

    /// Up to `retries` re-runs after the first attempt, all replaying the
    /// attempt-0 RNG stream.
    pub fn retries(retries: usize) -> Self {
        RetryPolicy {
            max_attempts: 1 + retries,
            reseed: false,
        }
    }

    /// Re-runs draw from independent per-attempt streams instead of
    /// replaying the first attempt's stream.
    pub fn reseeded(self) -> Self {
        RetryPolicy {
            reseed: true,
            ..self
        }
    }

    /// The stream index attempt `a` runs on under this policy.
    pub(crate) fn stream_for_attempt(&self, attempt: usize) -> usize {
        if self.reseed {
            attempt
        } else {
            0
        }
    }
}

impl Default for RetryPolicy {
    fn default() -> Self {
        RetryPolicy::none()
    }
}

/// One trial that failed every attempt it was given.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TrialFailure {
    /// The trial index within the experiment's schedule.
    pub trial: usize,
    /// How many attempts ran (= the policy's `max_attempts` unless the
    /// run was cut short).
    pub attempts: usize,
    /// The panic payload (or synthetic fault description) of the **last**
    /// attempt.
    pub payload: String,
    /// Wall-clock time spent across all attempts of this trial.
    pub elapsed: Duration,
}

impl fmt::Display for TrialFailure {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "trial {} failed after {} attempt{} ({:.1?}): {}",
            self.trial,
            self.attempts,
            if self.attempts == 1 { "" } else { "s" },
            self.elapsed,
            self.payload
        )
    }
}

/// What a fault-isolated run produced: the aggregate over surviving
/// trials plus an account of what did not survive.
#[derive(Debug, Clone)]
pub struct RunReport<S> {
    /// The experiment's [`name`](crate::Experiment::name).
    pub name: String,
    /// The aggregate over all trials that completed (in trial order).
    pub summary: S,
    /// Trials that exhausted their retry budget, in trial order. Empty on
    /// a clean run.
    pub failures: Vec<TrialFailure>,
    /// Number of trials whose results entered the aggregate.
    pub completed: usize,
    /// Of `completed`, how many were loaded from a checkpoint instead of
    /// being executed.
    pub resumed: usize,
    /// The experiment's total trial count (`completed + failures.len()`).
    pub total: usize,
}

impl<S> RunReport<S> {
    /// `true` when every scheduled trial contributed to the summary.
    pub fn is_complete(&self) -> bool {
        self.failures.is_empty() && self.completed == self.total
    }
}

/// The engine's typed error.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum EngineError {
    /// `POPAN_THREADS` was set to something that is not a thread count.
    BadThreadSpec {
        /// The offending value.
        value: String,
    },
    /// `POPAN_FAULTS` did not parse as a fault plan.
    BadFaultSpec {
        /// The offending value.
        value: String,
        /// What was wrong with it.
        reason: String,
    },
    /// `POPAN_RETRIES` was set to something that is not a retry count.
    BadRetrySpec {
        /// The offending value.
        value: String,
    },
    /// Every trial of the experiment failed — there is nothing to
    /// aggregate.
    AllTrialsFailed {
        /// The experiment's name.
        name: String,
        /// The per-trial failures, in trial order.
        failures: Vec<TrialFailure>,
    },
    /// The checkpoint file could not be opened, read, or appended to.
    Checkpoint {
        /// The path involved.
        path: String,
        /// The underlying I/O error.
        reason: String,
    },
}

impl fmt::Display for EngineError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            EngineError::BadThreadSpec { value } => write!(
                f,
                "POPAN_THREADS={value:?} is not a thread count \
                 (expected an integer; 0 = all cores, 1 = sequential)"
            ),
            EngineError::BadFaultSpec { value, reason } => write!(
                f,
                "POPAN_FAULTS={value:?} is not a fault plan: {reason} \
                 (expected `scope:trial:kind[@attempt]`, comma-separated; \
                 kind = panic | nan | abort | delay<ms>)"
            ),
            EngineError::BadRetrySpec { value } => write!(
                f,
                "POPAN_RETRIES={value:?} is not a retry count (expected a non-negative integer)"
            ),
            EngineError::AllTrialsFailed { name, failures } => {
                write!(f, "every trial of {name} failed:")?;
                for failure in failures {
                    write!(f, "\n  {failure}")?;
                }
                Ok(())
            }
            EngineError::Checkpoint { path, reason } => {
                write!(f, "checkpoint {path}: {reason}")
            }
        }
    }
}

impl std::error::Error for EngineError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn retry_policy_constructors() {
        assert_eq!(RetryPolicy::none().max_attempts, 1);
        assert_eq!(RetryPolicy::retries(2).max_attempts, 3);
        assert!(!RetryPolicy::retries(2).reseed);
        assert!(RetryPolicy::retries(2).reseeded().reseed);
        assert_eq!(RetryPolicy::default(), RetryPolicy::none());
    }

    #[test]
    fn default_policy_replays_attempt_zero_stream() {
        let same = RetryPolicy::retries(3);
        assert_eq!(same.stream_for_attempt(0), 0);
        assert_eq!(same.stream_for_attempt(2), 0);
        let reseeded = same.reseeded();
        assert_eq!(reseeded.stream_for_attempt(0), 0);
        assert_eq!(reseeded.stream_for_attempt(2), 2);
    }

    #[test]
    fn trial_failure_displays_the_essentials() {
        let failure = TrialFailure {
            trial: 3,
            attempts: 2,
            payload: "boom".into(),
            elapsed: Duration::from_millis(5),
        };
        let text = failure.to_string();
        assert!(text.contains("trial 3"), "{text}");
        assert!(text.contains("2 attempts"), "{text}");
        assert!(text.contains("boom"), "{text}");
    }

    #[test]
    fn run_report_completeness() {
        let clean: RunReport<f64> = RunReport {
            name: "x".into(),
            summary: 1.0,
            failures: vec![],
            completed: 4,
            resumed: 0,
            total: 4,
        };
        assert!(clean.is_complete());
        let degraded = RunReport {
            failures: vec![TrialFailure {
                trial: 0,
                attempts: 1,
                payload: "p".into(),
                elapsed: Duration::ZERO,
            }],
            completed: 3,
            ..clean
        };
        assert!(!degraded.is_complete());
    }

    #[test]
    fn error_messages_name_the_knob() {
        let e = EngineError::BadThreadSpec {
            value: "four".into(),
        };
        assert!(e.to_string().contains("POPAN_THREADS"));
        let e = EngineError::BadFaultSpec {
            value: "x".into(),
            reason: "missing field".into(),
        };
        assert!(e.to_string().contains("POPAN_FAULTS"));
        assert!(e.to_string().contains("missing field"));
        let e = EngineError::BadRetrySpec { value: "-1".into() };
        assert!(e.to_string().contains("POPAN_RETRIES"));
        let e = EngineError::AllTrialsFailed {
            name: "table1/m4".into(),
            failures: vec![TrialFailure {
                trial: 1,
                attempts: 1,
                payload: "injected".into(),
                elapsed: Duration::ZERO,
            }],
        };
        let text = e.to_string();
        assert!(text.contains("table1/m4"), "{text}");
        assert!(text.contains("trial 1"), "{text}");
        let e = EngineError::Checkpoint {
            path: "/tmp/x.jsonl".into(),
            reason: "permission denied".into(),
        };
        assert!(e.to_string().contains("/tmp/x.jsonl"));
    }
}
