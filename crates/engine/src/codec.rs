//! Bit-exact serialization for trial results.
//!
//! Checkpoint/resume only works if a trial decoded from disk is
//! indistinguishable from one that just ran: the aggregate over resumed
//! trials must be **byte-identical** to the uninterrupted run. That rules
//! out decimal text for floats, so [`TrialData`] encodes `f64` via
//! [`f64::to_bits`] (NaN payloads and `-0.0` included) into a compact
//! little-endian byte stream, which the checkpoint stores hex-encoded
//! inside its JSONL lines.
//!
//! Implementations exist for every shape the drivers use as
//! [`Experiment::Trial`](crate::Experiment::Trial): scalars, tuples up to
//! arity six, `Vec`s, options and nested combinations thereof. Decoding is
//! total: any truncated or corrupt input yields `None`, never a panic —
//! a checkpoint file killed mid-write must not poison the resume.

use std::time::Duration;

/// A cursor over checkpoint bytes. [`TrialData::decode`] consumes from
/// the front; [`ByteReader::is_exhausted`] lets callers insist the
/// payload had no trailing garbage.
#[derive(Debug)]
pub struct ByteReader<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> ByteReader<'a> {
    /// A reader over `bytes`, positioned at the start.
    pub fn new(bytes: &'a [u8]) -> Self {
        ByteReader { bytes, pos: 0 }
    }

    /// Takes the next `n` bytes, or `None` past the end.
    pub fn take(&mut self, n: usize) -> Option<&'a [u8]> {
        let end = self.pos.checked_add(n)?;
        if end > self.bytes.len() {
            return None;
        }
        let out = &self.bytes[self.pos..end];
        self.pos = end;
        Some(out)
    }

    /// `true` once every byte has been consumed.
    pub fn is_exhausted(&self) -> bool {
        self.pos == self.bytes.len()
    }

    fn take_u64(&mut self) -> Option<u64> {
        let bytes = self.take(8)?;
        Some(u64::from_le_bytes(bytes.try_into().ok()?))
    }
}

/// A trial result that can roundtrip through the checkpoint byte format
/// without losing a single bit.
pub trait TrialData: Sized {
    /// Appends this value's encoding to `out`.
    fn encode(&self, out: &mut Vec<u8>);

    /// Decodes one value from the reader, or `None` on truncated or
    /// malformed input.
    fn decode(reader: &mut ByteReader<'_>) -> Option<Self>;

    /// This value's encoding as a fresh byte vector.
    fn to_bytes(&self) -> Vec<u8> {
        let mut out = Vec::new();
        self.encode(&mut out);
        out
    }

    /// Decodes a value that must occupy `bytes` exactly (no trailing
    /// garbage) — the form checkpoint loading uses.
    fn from_bytes(bytes: &[u8]) -> Option<Self> {
        let mut reader = ByteReader::new(bytes);
        let value = Self::decode(&mut reader)?;
        reader.is_exhausted().then_some(value)
    }
}

impl TrialData for u64 {
    fn encode(&self, out: &mut Vec<u8>) {
        out.extend_from_slice(&self.to_le_bytes());
    }
    fn decode(reader: &mut ByteReader<'_>) -> Option<Self> {
        reader.take_u64()
    }
}

impl TrialData for usize {
    fn encode(&self, out: &mut Vec<u8>) {
        (*self as u64).encode(out);
    }
    fn decode(reader: &mut ByteReader<'_>) -> Option<Self> {
        usize::try_from(reader.take_u64()?).ok()
    }
}

impl TrialData for u32 {
    fn encode(&self, out: &mut Vec<u8>) {
        u64::from(*self).encode(out);
    }
    fn decode(reader: &mut ByteReader<'_>) -> Option<Self> {
        u32::try_from(reader.take_u64()?).ok()
    }
}

impl TrialData for f64 {
    fn encode(&self, out: &mut Vec<u8>) {
        self.to_bits().encode(out);
    }
    fn decode(reader: &mut ByteReader<'_>) -> Option<Self> {
        Some(f64::from_bits(reader.take_u64()?))
    }
}

impl TrialData for bool {
    fn encode(&self, out: &mut Vec<u8>) {
        out.push(u8::from(*self));
    }
    fn decode(reader: &mut ByteReader<'_>) -> Option<Self> {
        match reader.take(1)? {
            [0] => Some(false),
            [1] => Some(true),
            _ => None,
        }
    }
}

impl TrialData for () {
    fn encode(&self, _out: &mut Vec<u8>) {}
    fn decode(_reader: &mut ByteReader<'_>) -> Option<Self> {
        Some(())
    }
}

impl TrialData for Duration {
    fn encode(&self, out: &mut Vec<u8>) {
        self.as_secs().encode(out);
        u64::from(self.subsec_nanos()).encode(out);
    }
    fn decode(reader: &mut ByteReader<'_>) -> Option<Self> {
        let secs = reader.take_u64()?;
        let nanos = u32::try_from(reader.take_u64()?).ok()?;
        (nanos < 1_000_000_000).then(|| Duration::new(secs, nanos))
    }
}

impl<T: TrialData> TrialData for Vec<T> {
    fn encode(&self, out: &mut Vec<u8>) {
        self.len().encode(out);
        for item in self {
            item.encode(out);
        }
    }
    fn decode(reader: &mut ByteReader<'_>) -> Option<Self> {
        let len = usize::decode(reader)?;
        // A corrupt length would otherwise ask for an absurd
        // pre-allocation; each element consumes ≥ 1 byte, so the
        // remaining input bounds any honest length.
        if len > reader.bytes.len().saturating_sub(reader.pos) {
            return None;
        }
        let mut items = Vec::with_capacity(len);
        for _ in 0..len {
            items.push(T::decode(reader)?);
        }
        Some(items)
    }
}

impl<T: TrialData> TrialData for Option<T> {
    fn encode(&self, out: &mut Vec<u8>) {
        match self {
            None => false.encode(out),
            Some(value) => {
                true.encode(out);
                value.encode(out);
            }
        }
    }
    fn decode(reader: &mut ByteReader<'_>) -> Option<Self> {
        if bool::decode(reader)? {
            Some(Some(T::decode(reader)?))
        } else {
            Some(None)
        }
    }
}

impl<T: TrialData, const N: usize> TrialData for [T; N] {
    fn encode(&self, out: &mut Vec<u8>) {
        for item in self {
            item.encode(out);
        }
    }
    fn decode(reader: &mut ByteReader<'_>) -> Option<Self> {
        let mut items = Vec::with_capacity(N);
        for _ in 0..N {
            items.push(T::decode(reader)?);
        }
        items.try_into().ok()
    }
}

macro_rules! tuple_trial_data {
    ($($name:ident : $idx:tt),+) => {
        impl<$($name: TrialData),+> TrialData for ($($name,)+) {
            fn encode(&self, out: &mut Vec<u8>) {
                $(self.$idx.encode(out);)+
            }
            fn decode(reader: &mut ByteReader<'_>) -> Option<Self> {
                Some(($($name::decode(reader)?,)+))
            }
        }
    };
}

tuple_trial_data!(A: 0, B: 1);
tuple_trial_data!(A: 0, B: 1, C: 2);
tuple_trial_data!(A: 0, B: 1, C: 2, D: 3);
tuple_trial_data!(A: 0, B: 1, C: 2, D: 3, E: 4);
tuple_trial_data!(A: 0, B: 1, C: 2, D: 3, E: 4, F: 5);

/// Lowercase hex of `bytes` — the form checkpoint lines store payloads in.
pub fn to_hex(bytes: &[u8]) -> String {
    const HEX: &[u8; 16] = b"0123456789abcdef";
    let mut s = String::with_capacity(bytes.len() * 2);
    for b in bytes {
        s.push(char::from(HEX[usize::from(b >> 4)]));
        s.push(char::from(HEX[usize::from(b & 0xf)]));
    }
    s
}

/// Decodes lowercase/uppercase hex, or `None` on odd length or
/// non-hex characters.
pub fn from_hex(s: &str) -> Option<Vec<u8>> {
    if !s.len().is_multiple_of(2) {
        return None;
    }
    let digits: Vec<u8> = s
        .chars()
        .map(|c| c.to_digit(16).map(|d| d as u8))
        .collect::<Option<_>>()?;
    Some(
        digits
            .chunks(2)
            .map(|pair| (pair[0] << 4) | pair[1])
            .collect(),
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip<T: TrialData + PartialEq + std::fmt::Debug>(value: T) {
        let bytes = value.to_bytes();
        assert_eq!(T::from_bytes(&bytes), Some(value));
    }

    #[test]
    fn scalars_roundtrip() {
        roundtrip(0u64);
        roundtrip(u64::MAX);
        roundtrip(42usize);
        roundtrip(7u32);
        roundtrip(true);
        roundtrip(false);
        roundtrip(());
        roundtrip(Duration::from_millis(1234));
    }

    #[test]
    fn floats_roundtrip_bit_exactly() {
        for value in [
            0.0,
            -0.0,
            1.5,
            f64::INFINITY,
            f64::NEG_INFINITY,
            f64::MIN_POSITIVE,
        ] {
            let bytes = value.to_bytes();
            assert_eq!(
                f64::from_bytes(&bytes).map(f64::to_bits),
                Some(value.to_bits()),
                "{value}"
            );
        }
        // NaN payload preserved, not canonicalized.
        let nan = f64::from_bits(0x7ff8_dead_beef_0001);
        assert_eq!(
            f64::from_bytes(&nan.to_bytes()).map(f64::to_bits),
            Some(nan.to_bits())
        );
    }

    #[test]
    fn driver_trial_shapes_roundtrip() {
        // The shapes every Experiment in crates/experiments uses.
        roundtrip((vec![0.1, 0.2, 0.7], 1.5)); // table1
        roundtrip(vec![(3u32, 1.0, 2.0, 3.0, 4.0)]); // table3
        roundtrip((0.25, 0.75)); // table45 / exthash
        roundtrip(vec![0.5; 9]); // skew / pmr
        roundtrip((1.0, 2.0, 3.0, 4.0, 5.0, 6.0)); // excell
        roundtrip((11usize, vec![0.0, 1.0])); // churn
        roundtrip([0.1f64, 0.2, 0.3, 0.4]); // fixed-size arrays
        roundtrip(Some(vec![(1usize, 2u64)]));
        roundtrip(Option::<f64>::None);
    }

    #[test]
    fn truncated_input_decodes_to_none() {
        let bytes = (vec![1.0f64, 2.0], 3.0f64).to_bytes();
        for cut in 0..bytes.len() {
            assert_eq!(
                <(Vec<f64>, f64)>::from_bytes(&bytes[..cut]),
                None,
                "cut at {cut}"
            );
        }
    }

    #[test]
    fn trailing_garbage_is_rejected() {
        let mut bytes = 1.5f64.to_bytes();
        bytes.push(0);
        assert_eq!(f64::from_bytes(&bytes), None);
    }

    #[test]
    fn absurd_vec_length_is_rejected_without_allocation() {
        let mut bytes = Vec::new();
        u64::MAX.encode(&mut bytes);
        assert_eq!(Vec::<f64>::from_bytes(&bytes), None);
    }

    #[test]
    fn hex_roundtrips() {
        for bytes in [
            vec![],
            vec![0u8],
            vec![0xde, 0xad, 0xbe, 0xef],
            (0..=255u8).collect(),
        ] {
            let hex = to_hex(&bytes);
            assert_eq!(from_hex(&hex), Some(bytes));
        }
        assert_eq!(from_hex("abc"), None, "odd length");
        assert_eq!(from_hex("zz"), None, "non-hex");
        assert_eq!(from_hex("DEADbeef"), Some(vec![0xde, 0xad, 0xbe, 0xef]));
    }
}
