//! Append-only trial checkpoints for kill-and-resume.
//!
//! Long sweeps should not lose finished work to a crash. As each trial
//! completes, the engine appends one line to a per-experiment JSONL file
//! and flushes it; a resumed run loads the file, skips every trial it
//! already holds, and aggregates loaded and fresh results together —
//! byte-identical to the uninterrupted run (the codec in
//! [`crate::codec`] roundtrips `f64`s bit-exactly).
//!
//! ## File format
//!
//! One line per completed trial:
//!
//! ```text
//! {"v":1,"scope":"table1/m4","seed":"5167…","fp":"9e37…","t":3,"data":"3ff0…"}
//! ```
//!
//! * `scope` — the experiment's [`name`](crate::Experiment::name);
//! * `seed` — the master seed, hex;
//! * `fp` — the experiment's [`fingerprint`](crate::Experiment::fingerprint)
//!   (a digest of its parameters), hex;
//! * `t` — the trial index;
//! * `data` — the [`TrialData`](crate::codec::TrialData) encoding, hex.
//!
//! Every line carries the full key, and loading drops lines whose key
//! does not match the requesting experiment — so a stale file from a
//! different configuration can never leak foreign trial results into an
//! aggregate. Unparsable lines (a write cut off mid-line by the very
//! crash this module exists for) are skipped, not fatal: those trials
//! simply run again.
//!
//! The trial *count* is deliberately not part of the key: a checkpoint
//! taken at `--quick` trial counts still serves a longer run of the same
//! configuration, because trial `t`'s stream depends only on
//! `(master_seed, t)`.

use crate::codec::{from_hex, to_hex};
use crate::outcome::EngineError;
use std::collections::BTreeMap;
use std::fs::{File, OpenOptions};
use std::io::{BufRead, BufReader, Write};
use std::path::{Path, PathBuf};
use std::sync::Mutex;

/// Identifies whose trials a checkpoint line belongs to.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CheckpointKey {
    /// The experiment's name.
    pub scope: String,
    /// The master seed of the trial schedule.
    pub seed: u64,
    /// Digest of the experiment's parameters.
    pub fingerprint: u64,
}

impl CheckpointKey {
    fn file_name(&self) -> String {
        // '/' in scopes (e.g. "table1/m4") must not create directories.
        let safe: String = self
            .scope
            .chars()
            .map(|c| if c.is_ascii_alphanumeric() { c } else { '_' })
            .collect();
        format!("{safe}-{:016x}.jsonl", self.seed ^ self.fingerprint)
    }

    fn render_line(&self, trial: usize, data: &[u8]) -> String {
        format!(
            "{{\"v\":1,\"scope\":\"{}\",\"seed\":\"{:016x}\",\"fp\":\"{:016x}\",\"t\":{},\"data\":\"{}\"}}",
            self.scope,
            self.seed,
            self.fingerprint,
            trial,
            to_hex(data)
        )
    }

    /// Parses one checkpoint line; `None` for malformed input or a line
    /// belonging to a different key.
    fn parse_line(&self, line: &str) -> Option<(usize, Vec<u8>)> {
        let line = line.trim();
        let body = line.strip_prefix('{')?.strip_suffix('}')?;
        let mut version = None;
        let mut scope = None;
        let mut seed = None;
        let mut fp = None;
        let mut trial = None;
        let mut data = None;
        for field in split_fields(body) {
            let (key, value) = field.split_once(':')?;
            match key {
                "\"v\"" => version = Some(value.to_string()),
                "\"scope\"" => scope = Some(unquote(value)?),
                "\"seed\"" => seed = Some(u64::from_str_radix(&unquote(value)?, 16).ok()?),
                "\"fp\"" => fp = Some(u64::from_str_radix(&unquote(value)?, 16).ok()?),
                "\"t\"" => trial = Some(value.parse::<usize>().ok()?),
                "\"data\"" => data = Some(from_hex(&unquote(value)?)?),
                _ => return None,
            }
        }
        (version.as_deref() == Some("1")
            && scope.as_deref() == Some(self.scope.as_str())
            && seed == Some(self.seed)
            && fp == Some(self.fingerprint))
        .then_some(())?;
        Some((trial?, data?))
    }
}

/// Splits a JSON object body into `"key":value` fields. Checkpoint
/// strings never contain `,`, `:` or escapes (scopes are identifiers,
/// everything else is hex), so a flat split suffices.
fn split_fields(body: &str) -> impl Iterator<Item = &str> {
    body.split(',').map(str::trim)
}

fn unquote(value: &str) -> Option<String> {
    let inner = value.strip_prefix('"')?.strip_suffix('"')?;
    (!inner.contains(['"', '\\'])).then(|| inner.to_string())
}

/// A checkpoint directory.
#[derive(Debug, Clone)]
pub struct Checkpoint {
    dir: PathBuf,
}

impl Checkpoint {
    /// A checkpoint rooted at `dir` (created on first write).
    pub fn new(dir: impl Into<PathBuf>) -> Self {
        Checkpoint { dir: dir.into() }
    }

    /// The directory this checkpoint lives in.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    fn path_for(&self, key: &CheckpointKey) -> PathBuf {
        self.dir.join(key.file_name())
    }

    /// Loads every completed trial recorded for `key`: trial index →
    /// encoded trial bytes, in trial order. A missing file is an empty
    /// map; malformed or foreign lines are skipped. Later lines win on
    /// duplicate indices (they re-recorded the same deterministic
    /// result).
    pub fn load(&self, key: &CheckpointKey) -> Result<BTreeMap<usize, Vec<u8>>, EngineError> {
        let path = self.path_for(key);
        let file = match File::open(&path) {
            Ok(file) => file,
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => return Ok(BTreeMap::new()),
            Err(e) => return Err(checkpoint_error(&path, e)),
        };
        let mut loaded = BTreeMap::new();
        for line in BufReader::new(file).lines() {
            let line = line.map_err(|e| checkpoint_error(&path, e))?;
            if let Some((trial, data)) = key.parse_line(&line) {
                loaded.insert(trial, data);
            }
        }
        Ok(loaded)
    }

    /// Opens an append-mode writer for `key`, creating the directory as
    /// needed.
    pub fn writer(&self, key: &CheckpointKey) -> Result<CheckpointWriter, EngineError> {
        std::fs::create_dir_all(&self.dir).map_err(|e| checkpoint_error(&self.dir, e))?;
        let path = self.path_for(key);
        let file = OpenOptions::new()
            .create(true)
            .append(true)
            .open(&path)
            .map_err(|e| checkpoint_error(&path, e))?;
        Ok(CheckpointWriter {
            key: key.clone(),
            path,
            file: Mutex::new(file),
        })
    }
}

fn checkpoint_error(path: &Path, e: std::io::Error) -> EngineError {
    EngineError::Checkpoint {
        path: path.display().to_string(),
        reason: e.to_string(),
    }
}

/// Appends completed trials to a checkpoint file. Shared across worker
/// threads; each record is one line, flushed immediately so a kill loses
/// at most the line being written.
#[derive(Debug)]
pub struct CheckpointWriter {
    key: CheckpointKey,
    path: PathBuf,
    file: Mutex<File>,
}

impl CheckpointWriter {
    /// Records trial `t`'s encoded result.
    pub fn record(&self, trial: usize, data: &[u8]) -> Result<(), EngineError> {
        let line = self.key.render_line(trial, data);
        // A panicking writer thread poisons the mutex, but the file
        // handle itself stays valid — recover it and keep recording
        // (dropping further checkpoints would lose finished work, the
        // exact failure this module exists to prevent).
        let mut file = match self.file.lock() {
            Ok(file) => file,
            Err(poisoned) => poisoned.into_inner(),
        };
        writeln!(file, "{line}")
            .and_then(|()| file.flush())
            .map_err(|e| checkpoint_error(&self.path, e))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicU64, Ordering};

    static DIR_COUNTER: AtomicU64 = AtomicU64::new(0);

    fn temp_dir() -> PathBuf {
        let n = DIR_COUNTER.fetch_add(1, Ordering::Relaxed);
        let dir =
            std::env::temp_dir().join(format!("popan-checkpoint-test-{}-{n}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    fn key() -> CheckpointKey {
        CheckpointKey {
            scope: "table1/m4".into(),
            seed: 0x5167_4d0d_1987,
            fingerprint: 0xdead_beef,
        }
    }

    #[test]
    fn missing_file_loads_empty() {
        let ckpt = Checkpoint::new(temp_dir());
        assert!(ckpt.load(&key()).unwrap().is_empty());
    }

    #[test]
    fn record_then_load_roundtrips() {
        let dir = temp_dir();
        let ckpt = Checkpoint::new(&dir);
        let writer = ckpt.writer(&key()).unwrap();
        writer.record(0, &[1, 2, 3]).unwrap();
        writer.record(2, &[0xff]).unwrap();
        writer.record(5, &[]).unwrap();
        let loaded = ckpt.load(&key()).unwrap();
        assert_eq!(loaded.len(), 3);
        assert_eq!(loaded[&0], vec![1, 2, 3]);
        assert_eq!(loaded[&2], vec![0xff]);
        assert_eq!(loaded[&5], Vec::<u8>::new());
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn foreign_keys_do_not_leak() {
        let dir = temp_dir();
        let ckpt = Checkpoint::new(&dir);
        let mine = key();
        // Same file name would be fine — the key fields gate loading.
        let other_seed = CheckpointKey {
            seed: 99,
            ..mine.clone()
        };
        let other_fp = CheckpointKey {
            fingerprint: 1,
            ..mine.clone()
        };
        let other_scope = CheckpointKey {
            scope: "table3".into(),
            ..mine.clone()
        };
        ckpt.writer(&other_seed).unwrap().record(0, &[1]).unwrap();
        ckpt.writer(&other_fp).unwrap().record(1, &[2]).unwrap();
        ckpt.writer(&other_scope).unwrap().record(2, &[3]).unwrap();
        assert!(ckpt.load(&mine).unwrap().is_empty());
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn truncated_and_corrupt_lines_are_skipped() {
        let dir = temp_dir();
        let ckpt = Checkpoint::new(&dir);
        let key = key();
        let writer = ckpt.writer(&key).unwrap();
        writer.record(0, &[0xaa]).unwrap();
        writer.record(1, &[0xbb]).unwrap();
        // Simulate a crash mid-write: append garbage and a cut-off line.
        let path = ckpt.path_for(&key);
        let mut contents = std::fs::read_to_string(&path).unwrap();
        contents.push_str("not json at all\n");
        let full = key.render_line(2, &[0xcc]);
        contents.push_str(&full[..full.len() / 2]);
        std::fs::write(&path, contents).unwrap();

        let loaded = ckpt.load(&key).unwrap();
        assert_eq!(loaded.len(), 2, "only the intact lines survive");
        assert_eq!(loaded[&0], vec![0xaa]);
        assert_eq!(loaded[&1], vec![0xbb]);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn line_format_is_the_documented_json() {
        let line = key().render_line(3, &[0x3f, 0xf0]);
        assert_eq!(
            line,
            "{\"v\":1,\"scope\":\"table1/m4\",\"seed\":\"000051674d0d1987\",\
             \"fp\":\"00000000deadbeef\",\"t\":3,\"data\":\"3ff0\"}"
        );
        assert_eq!(key().parse_line(&line), Some((3, vec![0x3f, 0xf0])));
    }

    #[test]
    fn version_bump_invalidates_old_lines() {
        let line = key().render_line(0, &[1]).replace("\"v\":1", "\"v\":2");
        assert_eq!(key().parse_line(&line), None);
    }

    #[test]
    fn scope_slashes_stay_in_one_file_name() {
        assert!(!key().file_name().contains('/'));
        assert!(key().file_name().ends_with(".jsonl"));
    }

    #[test]
    fn writer_is_shareable_across_threads() {
        let dir = temp_dir();
        let ckpt = Checkpoint::new(&dir);
        let writer = ckpt.writer(&key()).unwrap();
        std::thread::scope(|scope| {
            for w in 0..4u8 {
                let writer = &writer;
                scope.spawn(move || {
                    for i in 0..8usize {
                        writer.record(usize::from(w) * 8 + i, &[w]).unwrap();
                    }
                });
            }
        });
        let loaded = ckpt.load(&key()).unwrap();
        assert_eq!(loaded.len(), 32, "every concurrent record landed intact");
        let _ = std::fs::remove_dir_all(&dir);
    }
}
