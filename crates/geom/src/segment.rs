//! Line segments and segment–rectangle intersection.
//!
//! The PMR quadtree stores line segments; inserting a segment requires
//! knowing which quadrants of a block it passes through. The intersection
//! test is Liang–Barsky parametric clipping against the (closed) block
//! boundary: a segment "is in" a block when the clipped parameter range is
//! non-degenerate, i.e. the segment actually passes through the block's
//! interior for a positive length, or it lies on the boundary.

use crate::point::Point2;
use crate::rect::Rect;
use std::fmt;

/// A directed line segment between two endpoints.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Segment2 {
    /// Start point.
    pub a: Point2,
    /// End point.
    pub b: Point2,
}

impl Segment2 {
    /// Creates a segment. Panics if the endpoints coincide or are
    /// non-finite — zero-length "segments" break quadrant classification
    /// and indicate a generator bug.
    pub fn new(a: Point2, b: Point2) -> Self {
        assert!(
            a.is_finite() && b.is_finite(),
            "non-finite segment endpoint"
        );
        assert!(a != b, "degenerate segment: endpoints coincide at {a}");
        Segment2 { a, b }
    }

    /// Segment length.
    pub fn length(&self) -> f64 {
        self.a.distance(&self.b)
    }

    /// Point at parameter `t ∈ [0, 1]` along the segment.
    pub fn eval(&self, t: f64) -> Point2 {
        Point2::new(
            self.a.x + t * (self.b.x - self.a.x),
            self.a.y + t * (self.b.y - self.a.y),
        )
    }

    /// Liang–Barsky clip of the segment's parameter interval to the closed
    /// rectangle `[x_lo, x_hi] × [y_lo, y_hi]`.
    ///
    /// Returns `Some((t0, t1))` with `0 ≤ t0 ≤ t1 ≤ 1` when a portion of
    /// the segment lies inside (or on the boundary of) the rectangle,
    /// `None` otherwise.
    pub fn clip_to_rect(&self, rect: &Rect) -> Option<(f64, f64)> {
        let dx = self.b.x - self.a.x;
        let dy = self.b.y - self.a.y;
        let mut t0 = 0.0_f64;
        let mut t1 = 1.0_f64;

        // Each boundary contributes p·t ≤ q.
        let checks = [
            (-dx, self.a.x - rect.x().lo()), // x ≥ x_lo
            (dx, rect.x().hi() - self.a.x),  // x ≤ x_hi
            (-dy, self.a.y - rect.y().lo()), // y ≥ y_lo
            (dy, rect.y().hi() - self.a.y),  // y ≤ y_hi
        ];
        for (p, q) in checks {
            if p == 0.0 {
                if q < 0.0 {
                    return None; // parallel and outside
                }
                continue;
            }
            let r = q / p;
            if p < 0.0 {
                if r > t1 {
                    return None;
                }
                if r > t0 {
                    t0 = r;
                }
            } else {
                if r < t0 {
                    return None;
                }
                if r < t1 {
                    t1 = r;
                }
            }
        }
        if t0 <= t1 {
            Some((t0, t1))
        } else {
            None
        }
    }

    /// `true` when the segment passes through the rectangle's interior for
    /// a positive length (a grazing touch at a single point does not
    /// count — a segment touching only a block corner is not stored in
    /// that block).
    pub fn crosses_rect(&self, rect: &Rect) -> bool {
        match self.clip_to_rect(rect) {
            Some((t0, t1)) => (t1 - t0) * self.length() > 1e-12,
            None => false,
        }
    }

    /// The quadrants of `rect` the segment passes through (positive-length
    /// crossings only), as indices into [`crate::rect::Quadrant::ALL`].
    pub fn quadrants_crossed(&self, rect: &Rect) -> Vec<usize> {
        rect.quadrants()
            .iter()
            .enumerate()
            .filter(|(_, q)| self.crosses_rect(q))
            .map(|(i, _)| i)
            .collect()
    }
}

impl fmt::Display for Segment2 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}→{}", self.a, self.b)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn seg(ax: f64, ay: f64, bx: f64, by: f64) -> Segment2 {
        Segment2::new(Point2::new(ax, ay), Point2::new(bx, by))
    }

    #[test]
    fn basic_measures() {
        let s = seg(0.0, 0.0, 3.0, 4.0);
        assert_eq!(s.length(), 5.0);
        assert_eq!(s.eval(0.0), Point2::new(0.0, 0.0));
        assert_eq!(s.eval(1.0), Point2::new(3.0, 4.0));
        assert_eq!(s.eval(0.5), Point2::new(1.5, 2.0));
    }

    #[test]
    #[should_panic(expected = "degenerate segment")]
    fn rejects_zero_length() {
        seg(1.0, 1.0, 1.0, 1.0);
    }

    #[test]
    fn clip_fully_inside() {
        let r = Rect::unit();
        let s = seg(0.25, 0.25, 0.75, 0.75);
        assert_eq!(s.clip_to_rect(&r), Some((0.0, 1.0)));
        assert!(s.crosses_rect(&r));
    }

    #[test]
    fn clip_crossing_through() {
        let r = Rect::unit();
        let s = seg(-1.0, 0.5, 2.0, 0.5);
        let (t0, t1) = s.clip_to_rect(&r).unwrap();
        assert!((t0 - 1.0 / 3.0).abs() < 1e-12);
        assert!((t1 - 2.0 / 3.0).abs() < 1e-12);
        assert!(s.crosses_rect(&r));
    }

    #[test]
    fn clip_misses() {
        let r = Rect::unit();
        assert_eq!(seg(2.0, 0.0, 3.0, 1.0).clip_to_rect(&r), None);
        assert!(!seg(2.0, 0.0, 3.0, 1.0).crosses_rect(&r));
        // Parallel to an edge, outside.
        assert_eq!(seg(-0.5, 2.0, 1.5, 2.0).clip_to_rect(&r), None);
    }

    #[test]
    fn corner_graze_does_not_count_as_crossing() {
        let r = Rect::from_bounds(0.0, 0.0, 1.0, 1.0);
        // Passes exactly through the corner (1, 1) at a point.
        let s = seg(0.5, 1.5, 1.5, 0.5);
        // Clip returns a degenerate interval at the corner...
        if let Some((t0, t1)) = s.clip_to_rect(&r) {
            assert!((t1 - t0).abs() < 1e-12);
        }
        // ...which crosses_rect rejects.
        assert!(!s.crosses_rect(&r));
    }

    #[test]
    fn diagonal_crosses_expected_quadrants() {
        let r = Rect::unit();
        // Main diagonal passes through SW and NE (touches center point
        // shared with the others only at a point).
        let s = seg(0.01, 0.01, 0.99, 0.99);
        let q = s.quadrants_crossed(&r);
        assert_eq!(q, vec![0, 3]); // SW, NE
    }

    #[test]
    fn horizontal_segment_crosses_two_lower_quadrants() {
        let r = Rect::unit();
        let s = seg(0.1, 0.25, 0.9, 0.25);
        assert_eq!(s.quadrants_crossed(&r), vec![0, 1]); // SW, SE
    }

    #[test]
    fn segment_confined_to_one_quadrant() {
        let r = Rect::unit();
        let s = seg(0.1, 0.6, 0.4, 0.9);
        assert_eq!(s.quadrants_crossed(&r), vec![2]); // NW
    }

    #[test]
    fn long_segment_crosses_three_quadrants() {
        let r = Rect::unit();
        // From SW up through NW into NE.
        let s = seg(0.1, 0.1, 0.9, 0.9001);
        let q = s.quadrants_crossed(&r);
        assert!(q.contains(&0) && q.contains(&3));
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use popan_proptest::prelude::*;

    proptest! {
        #[test]
        fn clip_interval_is_ordered_and_bounded(
            ax in -2.0f64..3.0, ay in -2.0f64..3.0,
            bx in -2.0f64..3.0, by in -2.0f64..3.0,
        ) {
            prop_assume!((ax, ay) != (bx, by));
            let s = Segment2::new(Point2::new(ax, ay), Point2::new(bx, by));
            if let Some((t0, t1)) = s.clip_to_rect(&Rect::unit()) {
                prop_assert!((0.0..=1.0).contains(&t0));
                prop_assert!((0.0..=1.0).contains(&t1));
                prop_assert!(t0 <= t1);
                // Clipped endpoints lie in the closed unit square.
                for t in [t0, t1] {
                    let p = s.eval(t);
                    prop_assert!(p.x >= -1e-9 && p.x <= 1.0 + 1e-9);
                    prop_assert!(p.y >= -1e-9 && p.y <= 1.0 + 1e-9);
                }
            }
        }

        #[test]
        fn segment_inside_square_crosses_at_least_one_quadrant(
            ax in 0.0f64..1.0, ay in 0.0f64..1.0,
            bx in 0.0f64..1.0, by in 0.0f64..1.0,
        ) {
            prop_assume!((ax, ay) != (bx, by));
            let s = Segment2::new(Point2::new(ax, ay), Point2::new(bx, by));
            prop_assume!(s.length() > 1e-6);
            let q = s.quadrants_crossed(&Rect::unit());
            prop_assert!(!q.is_empty());
            prop_assert!(q.len() <= 3, "a straight segment crosses at most 3 quadrants");
        }
    }
}
