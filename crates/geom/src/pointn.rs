//! Const-generic d-dimensional points and boxes.
//!
//! The paper: "the basic principle generalizes to 3 and higher
//! dimensions". [`PointN`] and [`BoxN`] carry the regular decomposition
//! to arbitrary dimension `D`, where a split produces `2^D` orthants —
//! the `b = 2^D` instances of the generalized population model.

use std::fmt;

/// A point in `D`-dimensional space.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PointN<const D: usize> {
    /// Coordinates.
    pub coords: [f64; D],
}

impl<const D: usize> PointN<D> {
    /// Creates a point.
    pub const fn new(coords: [f64; D]) -> Self {
        PointN { coords }
    }

    /// `true` when every coordinate is finite.
    pub fn is_finite(&self) -> bool {
        self.coords.iter().all(|c| c.is_finite())
    }

    /// Squared Euclidean distance.
    pub fn distance_squared(&self, other: &PointN<D>) -> f64 {
        self.coords
            .iter()
            .zip(&other.coords)
            .map(|(a, b)| (a - b) * (a - b))
            .sum()
    }
}

impl<const D: usize> Default for PointN<D> {
    /// The origin — lets fixed-size point buffers initialize without
    /// tracking validity per element.
    fn default() -> Self {
        PointN { coords: [0.0; D] }
    }
}

impl<const D: usize> fmt::Display for PointN<D> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "(")?;
        for (i, c) in self.coords.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{c}")?;
        }
        write!(f, ")")
    }
}

/// An axis-aligned box in `D` dimensions, half-open on every axis.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BoxN<const D: usize> {
    lo: [f64; D],
    hi: [f64; D],
}

impl<const D: usize> BoxN<D> {
    /// Number of orthants a split produces (`2^D`).
    pub const ORTHANTS: usize = 1 << D;

    /// Creates a box. Panics on degenerate or non-finite bounds.
    pub fn new(lo: [f64; D], hi: [f64; D]) -> Self {
        for i in 0..D {
            assert!(
                lo[i].is_finite() && hi[i].is_finite() && lo[i] < hi[i],
                "invalid box bound on axis {i}: [{}, {})",
                lo[i],
                hi[i]
            );
        }
        BoxN { lo, hi }
    }

    /// The unit box `[0, 1)^D`.
    pub fn unit() -> Self {
        BoxN::new([0.0; D], [1.0; D])
    }

    /// Lower bounds.
    pub fn lo(&self) -> &[f64; D] {
        &self.lo
    }

    /// Upper bounds.
    pub fn hi(&self) -> &[f64; D] {
        &self.hi
    }

    /// Volume (product of extents).
    pub fn volume(&self) -> f64 {
        (0..D).map(|i| self.hi[i] - self.lo[i]).product()
    }

    /// Half-open containment.
    pub fn contains(&self, p: &PointN<D>) -> bool {
        (0..D).all(|i| p.coords[i] >= self.lo[i] && p.coords[i] < self.hi[i])
    }

    /// Axis midpoints.
    fn mids(&self) -> [f64; D] {
        std::array::from_fn(|i| self.lo[i] + (self.hi[i] - self.lo[i]) / 2.0)
    }

    /// The orthant index of `p`: bit `i` set iff coordinate `i` is in the
    /// upper half (midpoints go up, matching the half-open convention).
    pub fn orthant_of(&self, p: &PointN<D>) -> usize {
        debug_assert!(self.contains(p), "orthant_of: point outside box");
        let mids = self.mids();
        (0..D).fold(0, |acc, i| acc | (usize::from(p.coords[i] >= mids[i]) << i))
    }

    /// The child box for an orthant index in `0..2^D`.
    pub fn orthant(&self, index: usize) -> BoxN<D> {
        assert!(index < Self::ORTHANTS, "orthant index out of range");
        let mids = self.mids();
        let lo = std::array::from_fn(|i| {
            if index & (1 << i) == 0 {
                self.lo[i]
            } else {
                mids[i]
            }
        });
        let hi = std::array::from_fn(|i| {
            if index & (1 << i) == 0 {
                mids[i]
            } else {
                self.hi[i]
            }
        });
        BoxN::new(lo, hi)
    }

    /// Axis midpoints, as a point (the split thresholds of this box).
    pub fn split_mids(&self) -> PointN<D> {
        PointN::new(self.mids())
    }

    /// Fused [`BoxN::orthant_of`] + [`BoxN::orthant`]: the orthant
    /// containing `p` and its box, computing the midpoints once and
    /// constructing only the chosen child. Bit-identical to the unfused
    /// pair; callers must ensure `self.contains(p)` (debug-asserted).
    pub fn orthant_descend(&self, p: &PointN<D>) -> (usize, BoxN<D>) {
        debug_assert!(self.contains(p), "orthant_descend: point outside box");
        let mids = self.mids();
        let index = (0..D).fold(0, |acc, i| acc | (usize::from(p.coords[i] >= mids[i]) << i));
        let lo = std::array::from_fn(|i| {
            if index & (1 << i) == 0 {
                self.lo[i]
            } else {
                mids[i]
            }
        });
        let hi = std::array::from_fn(|i| {
            if index & (1 << i) == 0 {
                mids[i]
            } else {
                self.hi[i]
            }
        });
        (index, BoxN::new(lo, hi))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn point_basics() {
        let p = PointN::new([1.0, 2.0, 3.0, 4.0]);
        assert!(p.is_finite());
        assert!(!PointN::new([f64::NAN, 0.0]).is_finite());
        let q = PointN::new([1.0, 2.0, 3.0, 6.0]);
        assert_eq!(p.distance_squared(&q), 4.0);
        assert_eq!(format!("{}", PointN::new([1.0, 2.5])), "(1, 2.5)");
    }

    #[test]
    fn unit_box_measures() {
        let b = BoxN::<4>::unit();
        assert_eq!(b.volume(), 1.0);
        assert_eq!(BoxN::<4>::ORTHANTS, 16);
        assert!(b.contains(&PointN::new([0.0; 4])));
        assert!(!b.contains(&PointN::new([0.5, 0.5, 1.0, 0.5])));
    }

    #[test]
    #[should_panic(expected = "invalid box bound")]
    fn rejects_degenerate_box() {
        BoxN::new([0.0, 0.0], [1.0, 0.0]);
    }

    #[test]
    fn orthants_tile_the_box() {
        let b = BoxN::<3>::unit();
        let total: f64 = (0..8).map(|i| b.orthant(i).volume()).sum();
        assert!((total - 1.0).abs() < 1e-12);
    }

    #[test]
    fn orthant_descend_is_bit_identical_to_unfused_pair() {
        let mut b = BoxN::<3>::unit();
        let p = PointN::new([0.694_201_337, 0.333_333_3, 0.871]);
        for _ in 0..40 {
            let (o, child) = b.orthant_descend(&p);
            assert_eq!(o, b.orthant_of(&p));
            assert_eq!(child, b.orthant(o));
            assert_eq!(b.split_mids().coords, {
                let q = b.orthant(0);
                q.hi
            });
            b = child;
        }
    }

    #[test]
    fn orthant_of_matches_orthant_box() {
        let b = BoxN::<4>::unit();
        let samples = [
            PointN::new([0.1, 0.1, 0.1, 0.1]),
            PointN::new([0.9, 0.1, 0.9, 0.1]),
            PointN::new([0.5, 0.5, 0.5, 0.5]), // mid goes to the top orthant
            PointN::new([0.3, 0.8, 0.2, 0.6]),
        ];
        for p in samples {
            let o = b.orthant_of(&p);
            assert!(b.orthant(o).contains(&p), "{p} orthant {o}");
            let hits = (0..16).filter(|&i| b.orthant(i).contains(&p)).count();
            assert_eq!(hits, 1, "{p}");
        }
        assert_eq!(b.orthant_of(&PointN::new([0.5; 4])), 15);
    }

    #[test]
    fn dimension_one_reduces_to_interval_halving() {
        let b = BoxN::<1>::new([2.0], [6.0]);
        assert_eq!(b.orthant_of(&PointN::new([3.0])), 0);
        assert_eq!(b.orthant_of(&PointN::new([4.0])), 1);
        assert_eq!(b.orthant(0).hi()[0], 4.0);
        assert_eq!(b.orthant(1).lo()[0], 4.0);
    }

    #[test]
    fn consistency_with_2d_rect_quadrants() {
        use crate::{Point2, Rect};
        // BoxN<2> orthant indexing matches Rect's quadrant indexing
        // (bit 0 = x half, bit 1 = y half).
        let bn = BoxN::<2>::unit();
        let r = Rect::unit();
        for &(x, y) in &[(0.1, 0.1), (0.9, 0.1), (0.1, 0.9), (0.9, 0.9), (0.5, 0.5)] {
            let o = bn.orthant_of(&PointN::new([x, y]));
            let q = r.quadrant_of(&Point2::new(x, y)).index();
            assert_eq!(o, q, "({x}, {y})");
        }
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use popan_proptest::prelude::*;

    proptest! {
        #[test]
        fn contained_point_in_exactly_one_orthant(
            coords in popan_proptest::array::uniform4(0.0f64..1.0)
        ) {
            let b = BoxN::<4>::unit();
            let p = PointN::new(coords);
            prop_assume!(b.contains(&p));
            let hits = (0..16).filter(|&i| b.orthant(i).contains(&p)).count();
            prop_assert_eq!(hits, 1);
            prop_assert!(b.orthant(b.orthant_of(&p)).contains(&p));
        }
    }
}
