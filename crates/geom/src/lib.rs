//! Geometric primitives for hierarchical spatial data structures.
//!
//! Everything the quadtree/octree/bintree substrates need:
//!
//! * [`Point2`] / [`Point3`] — points in the plane and in space.
//! * [`Rect`] — axis-aligned rectangles with exact *regular decomposition*
//!   into quadrants (the PR quadtree's split operation).
//! * [`Aabb3`] — axis-aligned boxes with octant decomposition.
//! * [`Interval`] — 1-D intervals with halving (bintree splits).
//! * [`Segment2`] — line segments with rectangle-intersection tests
//!   (Liang–Barsky clipping), the primitive stored by PMR quadtrees.
//! * [`morton`] — Z-order (Morton) codes, useful for ordering points and
//!   for sanity-checking block addressing.
//! * [`epsilon`] — explicit approximate comparison helpers.
//!
//! Regular decomposition is done with midpoint arithmetic on `f64`
//! coordinates. Child blocks tile the parent exactly (the midpoint value
//! is shared, with half-open `[lo, hi)` containment), so a point belongs
//! to exactly one child — an invariant the trees rely on and the tests
//! enforce.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod cube;
pub mod epsilon;
pub mod interval;
pub mod morton;
pub mod point;
pub mod pointn;
pub mod rect;
pub mod segment;

pub use cube::{Aabb3, Octant};
pub use interval::{Half, Interval};
pub use point::{Point2, Point3};
pub use pointn::{BoxN, PointN};
pub use rect::{Quadrant, Rect};
pub use segment::Segment2;
