//! Axis-aligned 3-D boxes with regular octant decomposition.
//!
//! [`Aabb3`] is the block of a PR octree — the paper notes its method
//! applies unchanged "in the case of octrees and higher dimensional data
//! structures" (branching factor 8 instead of 4), and the `dims`
//! validation experiment exercises exactly that.

use crate::interval::Interval;
use crate::point::Point3;
use std::fmt;

/// One of the eight octants of a split box. The index is a 3-bit code:
/// bit 0 = x half, bit 1 = y half, bit 2 = z half.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Octant(u8);

impl Octant {
    /// Creates an octant from an index in `0..8`.
    pub fn from_index(i: usize) -> Octant {
        assert!(i < 8, "octant index {i} out of range");
        Octant(i as u8)
    }

    /// The octant's index.
    pub fn index(self) -> usize {
        self.0 as usize
    }

    /// All eight octants in index order.
    pub fn all() -> impl Iterator<Item = Octant> {
        (0..8).map(Octant::from_index)
    }
}

impl fmt::Display for Octant {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "O{}", self.0)
    }
}

/// An axis-aligned box, half-open on all three axes.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Aabb3 {
    x: Interval,
    y: Interval,
    z: Interval,
}

impl Aabb3 {
    /// Creates a box from three half-open intervals.
    pub fn new(x: Interval, y: Interval, z: Interval) -> Self {
        Aabb3 { x, y, z }
    }

    /// The unit cube `[0, 1)³`.
    pub fn unit() -> Self {
        Aabb3::new(Interval::unit(), Interval::unit(), Interval::unit())
    }

    /// X interval.
    pub fn x(&self) -> Interval {
        self.x
    }

    /// Y interval.
    pub fn y(&self) -> Interval {
        self.y
    }

    /// Z interval.
    pub fn z(&self) -> Interval {
        self.z
    }

    /// Volume.
    pub fn volume(&self) -> f64 {
        self.x.length() * self.y.length() * self.z.length()
    }

    /// Half-open containment.
    pub fn contains(&self, p: &Point3) -> bool {
        self.x.contains(p.x) && self.y.contains(p.y) && self.z.contains(p.z)
    }

    /// The octant of this box containing `p` (debug-asserted containment).
    pub fn octant_of(&self, p: &Point3) -> Octant {
        debug_assert!(self.contains(p), "octant_of: point outside box");
        let xi = usize::from(p.x >= self.x.mid());
        let yi = usize::from(p.y >= self.y.mid());
        let zi = usize::from(p.z >= self.z.mid());
        Octant::from_index(zi * 4 + yi * 2 + xi)
    }

    /// A single child octant as a box.
    pub fn octant(&self, o: Octant) -> Aabb3 {
        let i = o.index();
        let [xl, xh] = self.x.split();
        let [yl, yh] = self.y.split();
        let [zl, zh] = self.z.split();
        Aabb3::new(
            if i & 1 == 0 { xl } else { xh },
            if i & 2 == 0 { yl } else { yh },
            if i & 4 == 0 { zl } else { zh },
        )
    }

    /// All eight octants in index order.
    pub fn octants(&self) -> Vec<Aabb3> {
        Octant::all().map(|o| self.octant(o)).collect()
    }

    /// Fused [`Aabb3::octant_of`] + [`Aabb3::octant`]: the octant
    /// containing `p` and its box, computing each axis midpoint once and
    /// constructing only the chosen child. Bit-identical to the unfused
    /// pair; callers must ensure `self.contains(p)` (debug-asserted).
    pub fn octant_descend(&self, p: &Point3) -> (Octant, Aabb3) {
        debug_assert!(self.contains(p), "octant_descend: point outside box");
        let (xh, x) = self.x.descend(p.x);
        let (yh, y) = self.y.descend(p.y);
        let (zh, z) = self.z.descend(p.z);
        (
            Octant::from_index(zh.index() * 4 + yh.index() * 2 + xh.index()),
            Aabb3::new(x, y, z),
        )
    }
}

impl fmt::Display for Aabb3 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}×{}×{}", self.x, self.y, self.z)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn octant_descend_is_bit_identical_to_unfused_pair() {
        let mut b = Aabb3::unit();
        let p = Point3::new(0.694_201_337, 0.333_333_3, 0.871);
        for _ in 0..40 {
            let (o, child) = b.octant_descend(&p);
            assert_eq!(o, b.octant_of(&p));
            assert_eq!(child, b.octant(o));
            b = child;
        }
    }

    #[test]
    fn volume_and_containment() {
        let b = Aabb3::unit();
        assert_eq!(b.volume(), 1.0);
        assert!(b.contains(&Point3::new(0.0, 0.0, 0.0)));
        assert!(!b.contains(&Point3::new(1.0, 0.5, 0.5)));
        assert!(!b.contains(&Point3::new(0.5, 0.5, -0.1)));
    }

    #[test]
    fn octants_tile_parent() {
        let b = Aabb3::unit();
        let os = b.octants();
        assert_eq!(os.len(), 8);
        let total: f64 = os.iter().map(Aabb3::volume).sum();
        assert!((total - 1.0).abs() < 1e-12);
    }

    #[test]
    fn octant_of_matches_octant_box() {
        let b = Aabb3::unit();
        let samples = [
            Point3::new(0.1, 0.1, 0.1),
            Point3::new(0.9, 0.1, 0.1),
            Point3::new(0.1, 0.9, 0.1),
            Point3::new(0.1, 0.1, 0.9),
            Point3::new(0.9, 0.9, 0.9),
            Point3::new(0.5, 0.5, 0.5), // midpoint goes to upper halves
        ];
        for p in samples {
            let o = b.octant_of(&p);
            assert!(b.octant(o).contains(&p), "{p}");
            // Exactly one octant contains it.
            let hits = Octant::all().filter(|&o| b.octant(o).contains(&p)).count();
            assert_eq!(hits, 1, "{p}");
        }
    }

    #[test]
    fn octant_index_round_trips() {
        for o in Octant::all() {
            assert_eq!(Octant::from_index(o.index()), o);
        }
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn octant_index_bounds() {
        Octant::from_index(8);
    }

    #[test]
    fn midpoint_goes_to_upper_octant() {
        let b = Aabb3::unit();
        assert_eq!(b.octant_of(&Point3::new(0.5, 0.5, 0.5)).index(), 7);
        assert_eq!(b.octant_of(&Point3::new(0.5, 0.0, 0.0)).index(), 1);
        assert_eq!(b.octant_of(&Point3::new(0.0, 0.5, 0.0)).index(), 2);
        assert_eq!(b.octant_of(&Point3::new(0.0, 0.0, 0.5)).index(), 4);
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use popan_proptest::prelude::*;

    proptest! {
        #[test]
        fn contained_point_in_exactly_one_octant(
            x in 0.0f64..1.0,
            y in 0.0f64..1.0,
            z in 0.0f64..1.0,
        ) {
            let b = Aabb3::unit();
            let p = Point3::new(x, y, z);
            prop_assume!(b.contains(&p));
            let hits = Octant::all().filter(|&o| b.octant(o).contains(&p)).count();
            prop_assert_eq!(hits, 1);
        }
    }
}
