//! Points in 2 and 3 dimensions.

use std::fmt;

/// A point in the plane.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct Point2 {
    /// Horizontal coordinate.
    pub x: f64,
    /// Vertical coordinate.
    pub y: f64,
}

impl Point2 {
    /// Creates a point.
    pub const fn new(x: f64, y: f64) -> Self {
        Point2 { x, y }
    }

    /// The origin `(0, 0)`.
    pub const ORIGIN: Point2 = Point2::new(0.0, 0.0);

    /// Euclidean distance to `other`.
    pub fn distance(&self, other: &Point2) -> f64 {
        self.distance_squared(other).sqrt()
    }

    /// Squared Euclidean distance (no sqrt; use for comparisons).
    pub fn distance_squared(&self, other: &Point2) -> f64 {
        let dx = self.x - other.x;
        let dy = self.y - other.y;
        dx * dx + dy * dy
    }

    /// Componentwise midpoint.
    pub fn midpoint(&self, other: &Point2) -> Point2 {
        Point2::new((self.x + other.x) / 2.0, (self.y + other.y) / 2.0)
    }

    /// `true` when both coordinates are finite.
    pub fn is_finite(&self) -> bool {
        self.x.is_finite() && self.y.is_finite()
    }

    /// Lexicographic comparison key `(x, y)`; useful for deterministic
    /// ordering in tests. Panics on NaN coordinates.
    pub fn lex_key(&self) -> (f64, f64) {
        assert!(self.is_finite(), "lex_key on non-finite point");
        (self.x, self.y)
    }

    /// Canonical total order on points: `x` then `y`, each by
    /// [`f64::total_cmp`]. This is *the* tie-breaking order of the query
    /// tier — every `Queryable` backend sorts range results and resolves
    /// k-NN ties with it, which is what makes results bit-identical
    /// across backends and reader counts. Total (never panics), and on
    /// the finite points the structures store it agrees with the usual
    /// `(x, y)` lexicographic order.
    pub fn canonical_cmp(&self, other: &Point2) -> std::cmp::Ordering {
        self.x.total_cmp(&other.x).then(self.y.total_cmp(&other.y))
    }
}

impl fmt::Display for Point2 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "({}, {})", self.x, self.y)
    }
}

impl From<(f64, f64)> for Point2 {
    fn from((x, y): (f64, f64)) -> Self {
        Point2::new(x, y)
    }
}

/// A point in 3-space.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct Point3 {
    /// X coordinate.
    pub x: f64,
    /// Y coordinate.
    pub y: f64,
    /// Z coordinate.
    pub z: f64,
}

impl Point3 {
    /// Creates a point.
    pub const fn new(x: f64, y: f64, z: f64) -> Self {
        Point3 { x, y, z }
    }

    /// The origin `(0, 0, 0)`.
    pub const ORIGIN: Point3 = Point3::new(0.0, 0.0, 0.0);

    /// Euclidean distance to `other`.
    pub fn distance(&self, other: &Point3) -> f64 {
        self.distance_squared(other).sqrt()
    }

    /// Squared Euclidean distance.
    pub fn distance_squared(&self, other: &Point3) -> f64 {
        let dx = self.x - other.x;
        let dy = self.y - other.y;
        let dz = self.z - other.z;
        dx * dx + dy * dy + dz * dz
    }

    /// `true` when all coordinates are finite.
    pub fn is_finite(&self) -> bool {
        self.x.is_finite() && self.y.is_finite() && self.z.is_finite()
    }
}

impl fmt::Display for Point3 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "({}, {}, {})", self.x, self.y, self.z)
    }
}

impl From<(f64, f64, f64)> for Point3 {
    fn from((x, y, z): (f64, f64, f64)) -> Self {
        Point3::new(x, y, z)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn canonical_cmp_is_lexicographic_and_total() {
        use std::cmp::Ordering;
        let a = Point2::new(0.1, 0.9);
        let b = Point2::new(0.2, 0.0);
        assert_eq!(a.canonical_cmp(&b), Ordering::Less);
        assert_eq!(b.canonical_cmp(&a), Ordering::Greater);
        assert_eq!(a.canonical_cmp(&a), Ordering::Equal);
        assert_eq!(
            Point2::new(0.1, 0.2).canonical_cmp(&Point2::new(0.1, 0.3)),
            Ordering::Less
        );
        // Total even on NaN (never panics).
        let nan = Point2::new(f64::NAN, 0.0);
        let _ = nan.canonical_cmp(&a);
    }

    #[test]
    fn distances_2d() {
        let a = Point2::new(0.0, 0.0);
        let b = Point2::new(3.0, 4.0);
        assert_eq!(a.distance(&b), 5.0);
        assert_eq!(a.distance_squared(&b), 25.0);
        assert_eq!(a.distance(&a), 0.0);
    }

    #[test]
    fn midpoint_2d() {
        let m = Point2::new(0.0, 2.0).midpoint(&Point2::new(4.0, 0.0));
        assert_eq!(m, Point2::new(2.0, 1.0));
    }

    #[test]
    fn finiteness() {
        assert!(Point2::new(1.0, 2.0).is_finite());
        assert!(!Point2::new(f64::NAN, 0.0).is_finite());
        assert!(!Point3::new(0.0, f64::INFINITY, 0.0).is_finite());
    }

    #[test]
    fn conversions_and_display() {
        let p: Point2 = (1.5, 2.5).into();
        assert_eq!(format!("{p}"), "(1.5, 2.5)");
        let q: Point3 = (1.0, 2.0, 3.0).into();
        assert_eq!(format!("{q}"), "(1, 2, 3)");
    }

    #[test]
    fn distances_3d() {
        let a = Point3::ORIGIN;
        let b = Point3::new(1.0, 2.0, 2.0);
        assert_eq!(a.distance(&b), 3.0);
        assert_eq!(a.distance_squared(&b), 9.0);
    }

    #[test]
    #[should_panic(expected = "non-finite")]
    fn lex_key_panics_on_nan() {
        Point2::new(f64::NAN, 0.0).lex_key();
    }
}
