//! Half-open 1-D intervals with regular (midpoint) decomposition.
//!
//! The bintree splits a block in half along one axis at a time; an
//! [`Interval`] models one axis of that decomposition. Containment is
//! half-open `[lo, hi)` so the two halves of a split partition the parent
//! exactly.

use std::fmt;

/// Which half of a split interval.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Half {
    /// The lower half `[lo, mid)`.
    Lower,
    /// The upper half `[mid, hi)`.
    Upper,
}

impl Half {
    /// Both halves, in index order.
    pub const ALL: [Half; 2] = [Half::Lower, Half::Upper];

    /// Index of the half (`Lower = 0`, `Upper = 1`).
    pub fn index(self) -> usize {
        match self {
            Half::Lower => 0,
            Half::Upper => 1,
        }
    }
}

/// A half-open interval `[lo, hi)`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Interval {
    lo: f64,
    hi: f64,
}

impl Interval {
    /// Creates `[lo, hi)`. Panics if `lo >= hi` or a bound is non-finite —
    /// degenerate intervals are a construction bug in the caller.
    pub fn new(lo: f64, hi: f64) -> Self {
        assert!(
            lo.is_finite() && hi.is_finite() && lo < hi,
            "invalid interval [{lo}, {hi})"
        );
        Interval { lo, hi }
    }

    /// The unit interval `[0, 1)`.
    pub fn unit() -> Self {
        Interval::new(0.0, 1.0)
    }

    /// Creates `[lo, hi)` **without validation** — the bounds may be
    /// inverted, non-finite, anything. Fault-injection machinery only:
    /// the query tier's chaos suite flips single bits inside frozen
    /// block slabs to prove `Snapshot::verify` catches the damage, and a
    /// flipped exponent bit is allowed to produce a degenerate interval
    /// (the corrupted snapshot is quarantined, never queried). Every
    /// other caller must use [`Interval::new`].
    #[doc(hidden)]
    pub fn from_raw_unchecked(lo: f64, hi: f64) -> Self {
        Interval { lo, hi }
    }

    /// Lower bound (inclusive).
    pub fn lo(&self) -> f64 {
        self.lo
    }

    /// Upper bound (exclusive).
    pub fn hi(&self) -> f64 {
        self.hi
    }

    /// Length `hi − lo`.
    pub fn length(&self) -> f64 {
        self.hi - self.lo
    }

    /// Midpoint.
    pub fn mid(&self) -> f64 {
        self.lo + (self.hi - self.lo) / 2.0
    }

    /// Half-open containment test.
    pub fn contains(&self, v: f64) -> bool {
        v >= self.lo && v < self.hi
    }

    /// The half of this interval that contains `v`.
    ///
    /// Callers must ensure `self.contains(v)`; the midpoint itself belongs
    /// to the upper half, matching the half-open convention.
    pub fn half_of(&self, v: f64) -> Half {
        debug_assert!(self.contains(v));
        if v < self.mid() {
            Half::Lower
        } else {
            Half::Upper
        }
    }

    /// Splits into `[lo, mid)` and `[mid, hi)`.
    pub fn split(&self) -> [Interval; 2] {
        let m = self.mid();
        [Interval::new(self.lo, m), Interval::new(m, self.hi)]
    }

    /// Fused [`Interval::half_of`] + [`Interval::child`]: which half
    /// contains `v` and that half as an interval, computing the midpoint
    /// once and constructing only the chosen child. Bit-identical to the
    /// unfused pair (same midpoint, same bounds); callers must ensure
    /// `self.contains(v)`.
    pub fn descend(&self, v: f64) -> (Half, Interval) {
        debug_assert!(self.contains(v));
        let m = self.mid();
        if v < m {
            (Half::Lower, Interval::new(self.lo, m))
        } else {
            (Half::Upper, Interval::new(m, self.hi))
        }
    }

    /// The child half as an interval.
    pub fn child(&self, half: Half) -> Interval {
        self.split()[half.index()]
    }

    /// `true` when the intervals overlap (half-open semantics).
    pub fn overlaps(&self, other: &Interval) -> bool {
        self.lo < other.hi && other.lo < self.hi
    }
}

impl fmt::Display for Interval {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "[{}, {})", self.lo, self.hi)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_and_accessors() {
        let i = Interval::new(1.0, 3.0);
        assert_eq!(i.lo(), 1.0);
        assert_eq!(i.hi(), 3.0);
        assert_eq!(i.length(), 2.0);
        assert_eq!(i.mid(), 2.0);
        assert_eq!(format!("{i}"), "[1, 3)");
    }

    #[test]
    #[should_panic(expected = "invalid interval")]
    fn rejects_empty() {
        Interval::new(1.0, 1.0);
    }

    #[test]
    #[should_panic(expected = "invalid interval")]
    fn rejects_nan() {
        Interval::new(f64::NAN, 1.0);
    }

    #[test]
    fn half_open_containment() {
        let i = Interval::unit();
        assert!(i.contains(0.0));
        assert!(i.contains(0.999));
        assert!(!i.contains(1.0));
        assert!(!i.contains(-0.1));
    }

    #[test]
    fn split_partitions_exactly() {
        let i = Interval::new(0.0, 1.0);
        let [lo, hi] = i.split();
        assert_eq!(lo.hi(), hi.lo());
        assert_eq!(lo.length() + hi.length(), i.length());
        // Midpoint belongs to exactly one half.
        assert!(!lo.contains(0.5));
        assert!(hi.contains(0.5));
    }

    #[test]
    fn descend_is_bit_identical_to_half_of_plus_child() {
        let mut i = Interval::new(0.137, 1.731);
        let v = 0.694_201_337;
        for _ in 0..40 {
            let (h, child) = i.descend(v);
            assert_eq!(h, i.half_of(v));
            assert_eq!(child, i.child(h));
            i = child;
        }
    }

    #[test]
    fn half_of_is_consistent_with_children() {
        let i = Interval::new(2.0, 6.0);
        for v in [2.0, 3.9, 4.0, 5.9] {
            let h = i.half_of(v);
            assert!(i.child(h).contains(v), "value {v}");
            // And the other half does not contain it.
            let other = match h {
                Half::Lower => Half::Upper,
                Half::Upper => Half::Lower,
            };
            assert!(!i.child(other).contains(v), "value {v}");
        }
    }

    #[test]
    fn overlap_semantics() {
        let a = Interval::new(0.0, 1.0);
        assert!(a.overlaps(&Interval::new(0.5, 2.0)));
        assert!(!a.overlaps(&Interval::new(1.0, 2.0))); // touching, half-open
        assert!(a.overlaps(&Interval::new(-1.0, 0.1)));
        assert!(!a.overlaps(&Interval::new(-1.0, 0.0)));
    }

    #[test]
    fn half_indices() {
        assert_eq!(Half::Lower.index(), 0);
        assert_eq!(Half::Upper.index(), 1);
        assert_eq!(Half::ALL.len(), 2);
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use popan_proptest::prelude::*;

    proptest! {
        #[test]
        fn every_contained_value_is_in_exactly_one_child(
            lo in -100.0f64..100.0,
            len in 0.001f64..100.0,
            frac in 0.0f64..1.0,
        ) {
            let i = Interval::new(lo, lo + len);
            let v = lo + frac * len * 0.999_999;
            prop_assume!(i.contains(v));
            let containing: Vec<_> = Half::ALL
                .iter()
                .filter(|&&h| i.child(h).contains(v))
                .collect();
            prop_assert_eq!(containing.len(), 1);
        }

        #[test]
        fn split_lengths_sum(lo in -1e6f64..1e6, len in 1e-6f64..1e6) {
            let i = Interval::new(lo, lo + len);
            let [a, b] = i.split();
            prop_assert!((a.length() + b.length() - i.length()).abs() < 1e-9 * len.max(1.0));
        }
    }
}
