//! Z-order (Morton) codes.
//!
//! A Morton code interleaves the bits of quantized coordinates, linearizing
//! the quadtree's regular decomposition: two points share a length-`2k`
//! Morton prefix exactly when they fall in the same depth-`k` quadtree
//! block. The spatial tests use this duality to cross-check block
//! addressing, and the workload tooling uses it for deterministic
//! space-filling orderings.

use crate::point::Point2;
use crate::rect::Rect;

/// Number of bits per coordinate in a [`morton2`] code.
pub const MORTON_BITS: u32 = 31;

/// Spreads the low 31 bits of `v` so bit `i` moves to bit `2i`.
#[inline]
fn spread_bits(v: u32) -> u64 {
    let mut x = (v as u64) & 0x7fff_ffff;
    x = (x | (x << 16)) & 0x0000_ffff_0000_ffff;
    x = (x | (x << 8)) & 0x00ff_00ff_00ff_00ff;
    x = (x | (x << 4)) & 0x0f0f_0f0f_0f0f_0f0f;
    x = (x | (x << 2)) & 0x3333_3333_3333_3333;
    x = (x | (x << 1)) & 0x5555_5555_5555_5555;
    x
}

/// Collapses bits at even positions back into a compact integer.
#[inline]
fn compact_bits(v: u64) -> u32 {
    let mut x = v & 0x5555_5555_5555_5555;
    x = (x | (x >> 1)) & 0x3333_3333_3333_3333;
    x = (x | (x >> 2)) & 0x0f0f_0f0f_0f0f_0f0f;
    x = (x | (x >> 4)) & 0x00ff_00ff_00ff_00ff;
    x = (x | (x >> 8)) & 0x0000_ffff_0000_ffff;
    x = (x | (x >> 16)) & 0x0000_0000_ffff_ffff;
    x as u32
}

/// Interleaves two 31-bit integers into a Morton code (x in even bits).
#[inline]
pub fn morton2(x: u32, y: u32) -> u64 {
    spread_bits(x) | (spread_bits(y) << 1)
}

/// Inverse of [`morton2`].
#[inline]
pub fn demorton2(code: u64) -> (u32, u32) {
    (compact_bits(code), compact_bits(code >> 1))
}

/// Quantizes a point in `rect` to a Morton code with [`MORTON_BITS`] bits
/// per axis. Callers must ensure `rect.contains(p)` (debug-asserted).
#[inline]
pub fn morton_of_point(p: &Point2, rect: &Rect) -> u64 {
    debug_assert!(rect.contains(p), "morton_of_point: point outside rect");
    let scale = (1u64 << MORTON_BITS) as f64;
    let fx = (p.x - rect.x().lo()) / rect.width();
    let fy = (p.y - rect.y().lo()) / rect.height();
    let qx = ((fx * scale) as u32).min((1 << MORTON_BITS) - 1);
    let qy = ((fy * scale) as u32).min((1 << MORTON_BITS) - 1);
    morton2(qx, qy)
}

/// Whether quantization over `rect` is *grid-exact*: the Morton digits
/// of [`morton_of_point`] agree bit-for-bit with the geometric midpoint
/// descent (`v >= Interval::mid()`) at every depth the code resolves.
///
/// The certificate is per axis: lower bound exactly `0.0` and length a
/// power of two within a comfortable exponent range. Then every
/// operation in the quantization is exact — `(p.x - lo)` is `p.x`
/// itself, division by a power of two and the `2^31` scaling only
/// adjust exponents, and the `as u32` floor is the true floor — while
/// every geometric sub-interval bound is the dyadic rational
/// `i · w / 2^d` with an exactly representable midpoint, so
/// `p.x >= mid` at depth `d` is exactly "bit `31 - d` of the quantized
/// coordinate". Regions that fail the certificate (a non-zero origin
/// rounds `p.x - lo`; a non-power-of-two width rounds the division) can
/// disagree within one quantum of a split line, so bulk paths keyed on
/// Morton digits must fall back to geometric classification there.
pub fn morton_grid_exact(rect: &Rect) -> bool {
    axis_grid_exact(rect.x().lo(), rect.x().hi()) && axis_grid_exact(rect.y().lo(), rect.y().hi())
}

/// One axis of [`morton_grid_exact`]: `[0, 2^k)` with `k` in a range
/// where 62 further halvings stay normal (no subnormal rounding in the
/// midpoint chain) and products with `2^31` stay finite.
fn axis_grid_exact(lo: f64, hi: f64) -> bool {
    // NaN bounds land in the `!is_finite` arm.
    if lo != 0.0 || hi <= 0.0 || !hi.is_finite() {
        return false;
    }
    let bits = hi.to_bits();
    let mantissa = bits & ((1u64 << 52) - 1);
    let exponent = ((bits >> 52) & 0x7ff) as i64 - 1023;
    mantissa == 0 && (-512..=512).contains(&exponent)
}

/// The depth-`k` quadtree block id of a Morton code: its top `2k` bits.
///
/// Two points are in the same depth-`k` block of the regular decomposition
/// of `rect` iff their codes agree on this prefix.
pub fn block_id_at_depth(code: u64, depth: u32) -> u64 {
    assert!(depth <= MORTON_BITS, "depth {depth} exceeds {MORTON_BITS}");
    if depth == 0 {
        0
    } else {
        code >> (2 * (MORTON_BITS - depth))
    }
}

/// Number of full-resolution codes a depth-`d` block spans.
///
/// `depth` must not exceed [`MORTON_BITS`] — deeper blocks would alias
/// onto the same single code (the failure mode
/// `LinearQuadtree`'s freeze path reports as a typed error).
pub fn cells_at_depth(depth: u32) -> u64 {
    assert!(depth <= MORTON_BITS, "depth {depth} exceeds {MORTON_BITS}");
    1u64 << (2 * (MORTON_BITS - depth))
}

/// One half-open interval `[lo, hi)` of Morton codes produced by
/// [`decompose_ranges_into`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MortonSpan {
    /// First code in the span.
    pub lo: u64,
    /// One past the last code in the span.
    pub hi: u64,
    /// `true` when every block the span was built from lies entirely
    /// inside the query rectangle, so points with codes in the span are
    /// matches without a geometric re-check. `false` spans are
    /// *boundary* spans: they cover the query conservatively and their
    /// points must still be filtered by the exact rectangle test.
    pub covered: bool,
}

/// Decomposes a query rectangle into sorted, disjoint Morton code spans.
///
/// Walks the regular decomposition of `region` (the same
/// [`crate::Rect::quadrant`] recursion the PR trees use, so span
/// boundaries are bit-exactly the codes a frozen tree assigns its
/// leaves): blocks fully inside `query` become `covered` spans, blocks
/// merely overlapping it are refined until `max_depth`, where they are
/// emitted as boundary spans. Adjacent spans with the same flag merge,
/// and the output is ascending and pairwise disjoint.
///
/// Every point of `query ∩ region` has its Morton code inside exactly
/// one span (the spans jointly cover the query; `covered` spans contain
/// only query points, boundary spans may also hold near-boundary
/// non-matches). Visiting order is quadrant-index order, which *is*
/// ascending Morton order, so the result needs no sort and is fully
/// deterministic.
///
/// `max_depth` bounds the refinement (must be ≤ [`MORTON_BITS`]); the
/// number of boundary spans grows like the query perimeter,
/// O(2^max_depth) in the worst case, so serving paths pick a small
/// constant (see `QueryScratch` in `popan-spatial`).
pub fn decompose_ranges_into(
    query: &Rect,
    region: &Rect,
    max_depth: u32,
    out: &mut Vec<MortonSpan>,
) {
    assert!(
        max_depth <= MORTON_BITS,
        "decomposition depth {max_depth} exceeds {MORTON_BITS}"
    );
    out.clear();
    decompose_rec(query, region, region, 0, max_depth, out);
}

/// Allocating convenience form of [`decompose_ranges_into`].
pub fn decompose_ranges(query: &Rect, region: &Rect, max_depth: u32) -> Vec<MortonSpan> {
    let mut out = Vec::new();
    decompose_ranges_into(query, region, max_depth, &mut out);
    out
}

fn decompose_rec(
    query: &Rect,
    region: &Rect,
    block: &Rect,
    depth: u32,
    max_depth: u32,
    out: &mut Vec<MortonSpan>,
) {
    if !block.overlaps(query) {
        return;
    }
    let fully_inside = query.contains_rect(block);
    if fully_inside || depth == max_depth {
        let corner = Point2::new(block.x().lo(), block.y().lo());
        let lo = morton_of_point(&corner, region);
        let hi = lo + cells_at_depth(depth);
        push_span(out, lo, hi, fully_inside);
        return;
    }
    for q in crate::Quadrant::ALL {
        decompose_rec(query, region, &block.quadrant(q), depth + 1, max_depth, out);
    }
}

/// Appends a span, merging it into the previous one when contiguous and
/// identically flagged.
fn push_span(out: &mut Vec<MortonSpan>, lo: u64, hi: u64, covered: bool) {
    if let Some(last) = out.last_mut() {
        if last.hi == lo && last.covered == covered {
            last.hi = hi;
            return;
        }
    }
    out.push(MortonSpan { lo, hi, covered });
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn interleave_round_trips() {
        for &(x, y) in &[
            (0u32, 0u32),
            (1, 0),
            (0, 1),
            (12345, 67890),
            (0x7fff_ffff, 0x7fff_ffff),
        ] {
            assert_eq!(demorton2(morton2(x, y)), (x, y));
        }
    }

    #[test]
    fn bit_interleaving_is_correct_for_small_values() {
        // x = 0b11, y = 0b01 → code = y1 x1 y0 x0 = 0 1 1 1 = 0b0111.
        assert_eq!(morton2(0b11, 0b01), 0b0111);
        assert_eq!(morton2(0b01, 0b11), 0b1011);
    }

    #[test]
    fn morton_order_is_monotone_in_each_axis_at_fixed_other() {
        assert!(morton2(1, 0) < morton2(2, 0));
        assert!(morton2(0, 1) < morton2(0, 2));
    }

    #[test]
    fn point_quantization_respects_quadrants() {
        let r = Rect::unit();
        // Depth-1 block ids follow quadrant structure: points in the same
        // quadrant share a depth-1 id, points in different quadrants don't.
        let sw = morton_of_point(&Point2::new(0.1, 0.1), &r);
        let sw2 = morton_of_point(&Point2::new(0.4, 0.4), &r);
        let ne = morton_of_point(&Point2::new(0.9, 0.9), &r);
        assert_eq!(block_id_at_depth(sw, 1), block_id_at_depth(sw2, 1));
        assert_ne!(block_id_at_depth(sw, 1), block_id_at_depth(ne, 1));
    }

    #[test]
    fn depth_zero_is_one_block() {
        let r = Rect::unit();
        let a = morton_of_point(&Point2::new(0.1, 0.9), &r);
        let b = morton_of_point(&Point2::new(0.9, 0.1), &r);
        assert_eq!(block_id_at_depth(a, 0), block_id_at_depth(b, 0));
    }

    #[test]
    #[should_panic(expected = "exceeds")]
    fn depth_bound_enforced() {
        block_id_at_depth(0, MORTON_BITS + 1);
    }

    fn check_spans(spans: &[MortonSpan]) {
        for s in spans {
            assert!(s.lo < s.hi, "empty span {s:?}");
        }
        for w in spans.windows(2) {
            assert!(w[0].hi <= w[1].lo, "overlap/disorder: {w:?}");
            // Contiguous same-flag spans must have merged.
            assert!(
                w[0].hi < w[1].lo || w[0].covered != w[1].covered,
                "unmerged neighbors: {w:?}"
            );
        }
    }

    #[test]
    fn decompose_whole_region_is_one_covered_span() {
        let r = Rect::unit();
        let spans = decompose_ranges(&r, &r, 8);
        assert_eq!(
            spans,
            vec![MortonSpan {
                lo: 0,
                hi: cells_at_depth(0),
                covered: true
            }]
        );
    }

    #[test]
    fn decompose_disjoint_query_is_empty() {
        let spans = decompose_ranges(&Rect::from_bounds(2.0, 2.0, 3.0, 3.0), &Rect::unit(), 8);
        assert!(spans.is_empty());
    }

    #[test]
    fn decompose_quadrant_aligned_query_is_exact() {
        let r = Rect::unit();
        // The SW quadrant: one covered span, a quarter of the space.
        let spans = decompose_ranges(&Rect::from_bounds(0.0, 0.0, 0.5, 0.5), &r, 8);
        assert_eq!(
            spans,
            vec![MortonSpan {
                lo: 0,
                hi: cells_at_depth(1),
                covered: true
            }]
        );
        // The NE quadrant starts three quarters in.
        let spans = decompose_ranges(&Rect::from_bounds(0.5, 0.5, 1.0, 1.0), &r, 8);
        assert_eq!(
            spans,
            vec![MortonSpan {
                lo: 3 * cells_at_depth(1),
                hi: cells_at_depth(0),
                covered: true
            }]
        );
    }

    #[test]
    fn decompose_spans_cover_query_points() {
        let r = Rect::unit();
        let query = Rect::from_bounds(0.13, 0.22, 0.61, 0.58);
        for depth in [0u32, 1, 3, 6, 10] {
            let spans = decompose_ranges(&query, &r, depth);
            check_spans(&spans);
            for i in 0..40 {
                for j in 0..40 {
                    let p = Point2::new(
                        0.13 + 0.48 * (i as f64 + 0.5) / 40.0,
                        0.22 + 0.36 * (j as f64 + 0.5) / 40.0,
                    );
                    assert!(query.contains(&p));
                    let code = morton_of_point(&p, &r);
                    assert!(
                        spans.iter().any(|s| s.lo <= code && code < s.hi),
                        "point {p} code {code} escaped spans at depth {depth}"
                    );
                }
            }
        }
    }

    #[test]
    fn decompose_covered_spans_only_contain_query_points() {
        let r = Rect::unit();
        let query = Rect::from_bounds(0.2, 0.3, 0.7, 0.9);
        let spans = decompose_ranges(&query, &r, 8);
        check_spans(&spans);
        // Sample codes from covered spans; decoding must land in the query.
        for s in spans.iter().filter(|s| s.covered) {
            for code in [s.lo, s.lo + (s.hi - s.lo) / 2, s.hi - 1] {
                let (qx, qy) = demorton2(code);
                let scale = (1u64 << MORTON_BITS) as f64;
                let p = Point2::new((qx as f64 + 0.5) / scale, (qy as f64 + 0.5) / scale);
                assert!(query.contains(&p), "covered code {code} decodes outside");
            }
        }
    }

    #[test]
    fn decompose_depth_zero_marks_everything_boundary() {
        let r = Rect::unit();
        let query = Rect::from_bounds(0.1, 0.1, 0.9, 0.9);
        let spans = decompose_ranges(&query, &r, 0);
        assert_eq!(spans.len(), 1);
        assert!(!spans[0].covered);
        assert_eq!(spans[0].hi - spans[0].lo, cells_at_depth(0));
    }

    #[test]
    #[should_panic(expected = "exceeds")]
    fn decompose_depth_bound_enforced() {
        decompose_ranges(&Rect::unit(), &Rect::unit(), MORTON_BITS + 1);
    }

    #[test]
    fn cells_at_depth_halves_per_level() {
        assert_eq!(cells_at_depth(0), 1u64 << (2 * MORTON_BITS));
        for d in 1..=MORTON_BITS {
            assert_eq!(cells_at_depth(d - 1), 4 * cells_at_depth(d));
        }
        assert_eq!(cells_at_depth(MORTON_BITS), 1);
    }

    #[test]
    fn grid_exactness_certificate_accepts_dyadic_origin_rects() {
        assert!(morton_grid_exact(&Rect::unit()));
        assert!(morton_grid_exact(&Rect::from_bounds(0.0, 0.0, 2.0, 2.0)));
        assert!(morton_grid_exact(&Rect::from_bounds(0.0, 0.0, 0.5, 8.0)));
        // Non-zero origin: p − lo rounds.
        assert!(!morton_grid_exact(&Rect::from_bounds(
            -10.0, 5.0, 30.0, 25.0
        )));
        assert!(!morton_grid_exact(&Rect::from_bounds(0.5, 0.0, 1.5, 1.0)));
        // Non-power-of-two width: the division rounds.
        assert!(!morton_grid_exact(&Rect::from_bounds(0.0, 0.0, 3.0, 3.0)));
        assert!(!morton_grid_exact(&Rect::from_bounds(0.0, 0.0, 1.0, 0.7)));
        // Extreme exponents fall outside the certified range.
        assert!(!morton_grid_exact(&Rect::from_bounds(
            0.0, 0.0, 1e-200, 1e-200
        )));
    }

    #[test]
    fn deeper_blocks_refine_shallower() {
        let r = Rect::unit();
        let c = morton_of_point(&Point2::new(0.3, 0.7), &r);
        for depth in 1..10 {
            let parent = block_id_at_depth(c, depth - 1);
            let child = block_id_at_depth(c, depth);
            assert_eq!(child >> 2, parent, "depth {depth}");
        }
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use popan_proptest::prelude::*;

    proptest! {
        #[test]
        fn round_trip(x in 0u32..0x8000_0000, y in 0u32..0x8000_0000) {
            prop_assert_eq!(demorton2(morton2(x, y)), (x, y));
        }

        #[test]
        fn decomposed_spans_cover_random_query_points(
            qx in 0.0f64..0.9, qy in 0.0f64..0.9,
            qw in 0.01f64..0.4, qh in 0.01f64..0.4,
            px in 0.0f64..1.0, py in 0.0f64..1.0,
            depth in 0u32..12,
        ) {
            let r = Rect::unit();
            let query = Rect::from_bounds(qx, qy, (qx + qw).min(1.0), (qy + qh).min(1.0));
            let spans = decompose_ranges(&query, &r, depth);
            for w in spans.windows(2) {
                prop_assert!(w[0].hi <= w[1].lo);
            }
            let p = Point2::new(px, py);
            if query.contains(&p) {
                let code = morton_of_point(&p, &r);
                prop_assert!(spans.iter().any(|s| s.lo <= code && code < s.hi));
            }
        }

        #[test]
        fn grid_exact_regions_agree_with_geometry_everywhere(
            px in 0.0f64..1.0, py in 0.0f64..1.0,
            depth in 1u32..16,
            scale_pow in 0i32..3,
        ) {
            // On a certified region the agreement is exact for EVERY
            // point — no near-boundary exclusion, unlike the general
            // proptest below. Snap some inputs onto dyadic boundaries
            // to stress the `>= mid` tie itself.
            let w = f64::powi(2.0, scale_pow);
            let r = Rect::from_bounds(0.0, 0.0, w, w);
            prop_assert!(morton_grid_exact(&r));
            let snap = |v: f64| (v * 64.0).floor() / 64.0 * w;
            for p in [
                Point2::new(px * w, py * w),
                Point2::new(snap(px), py * w),
                Point2::new(snap(px), snap(py)),
            ] {
                let mut block = r;
                for _ in 0..depth {
                    block = block.quadrant(block.quadrant_of(&p));
                }
                let corner = Point2::new(block.x().lo(), block.y().lo());
                let code = morton_of_point(&p, &r);
                prop_assert_eq!(
                    block_id_at_depth(code, depth),
                    block_id_at_depth(morton_of_point(&corner, &r), depth),
                    "point {} depth {}", p, depth
                );
            }
        }

        #[test]
        fn same_block_iff_same_prefix(
            px in 0.0f64..1.0, py in 0.0f64..1.0,
            qx in 0.0f64..1.0, qy in 0.0f64..1.0,
            depth in 1u32..8,
        ) {
            let r = Rect::unit();
            let p = Point2::new(px, py);
            let q = Point2::new(qx, qy);
            // Compute the depth-k block by walking the decomposition.
            let mut bp = r;
            let mut bq = r;
            for _ in 0..depth {
                bp = bp.quadrant(bp.quadrant_of(&p));
                bq = bq.quadrant(bq.quadrant_of(&q));
            }
            let same_block_geom = bp == bq;
            let same_block_morton = block_id_at_depth(morton_of_point(&p, &r), depth)
                == block_id_at_depth(morton_of_point(&q, &r), depth);
            // Quantization at 31 bits vs f64 midpoints can only disagree
            // on points within one quantum of a split line; exclude those.
            let quantum = 1.0 / (1u64 << MORTON_BITS) as f64 * 4.0;
            let near_boundary = |v: f64| {
                let scaled = v * (1u64 << depth) as f64;
                (scaled - scaled.round()).abs() * (1.0 / (1u64 << depth) as f64) < quantum
            };
            prop_assume!(![px, py, qx, qy].iter().any(|&v| near_boundary(v)));
            prop_assert_eq!(same_block_geom, same_block_morton);
        }
    }
}
