//! Z-order (Morton) codes.
//!
//! A Morton code interleaves the bits of quantized coordinates, linearizing
//! the quadtree's regular decomposition: two points share a length-`2k`
//! Morton prefix exactly when they fall in the same depth-`k` quadtree
//! block. The spatial tests use this duality to cross-check block
//! addressing, and the workload tooling uses it for deterministic
//! space-filling orderings.

use crate::point::Point2;
use crate::rect::Rect;

/// Number of bits per coordinate in a [`morton2`] code.
pub const MORTON_BITS: u32 = 31;

/// Spreads the low 31 bits of `v` so bit `i` moves to bit `2i`.
fn spread_bits(v: u32) -> u64 {
    let mut x = (v as u64) & 0x7fff_ffff;
    x = (x | (x << 16)) & 0x0000_ffff_0000_ffff;
    x = (x | (x << 8)) & 0x00ff_00ff_00ff_00ff;
    x = (x | (x << 4)) & 0x0f0f_0f0f_0f0f_0f0f;
    x = (x | (x << 2)) & 0x3333_3333_3333_3333;
    x = (x | (x << 1)) & 0x5555_5555_5555_5555;
    x
}

/// Collapses bits at even positions back into a compact integer.
fn compact_bits(v: u64) -> u32 {
    let mut x = v & 0x5555_5555_5555_5555;
    x = (x | (x >> 1)) & 0x3333_3333_3333_3333;
    x = (x | (x >> 2)) & 0x0f0f_0f0f_0f0f_0f0f;
    x = (x | (x >> 4)) & 0x00ff_00ff_00ff_00ff;
    x = (x | (x >> 8)) & 0x0000_ffff_0000_ffff;
    x = (x | (x >> 16)) & 0x0000_0000_ffff_ffff;
    x as u32
}

/// Interleaves two 31-bit integers into a Morton code (x in even bits).
pub fn morton2(x: u32, y: u32) -> u64 {
    spread_bits(x) | (spread_bits(y) << 1)
}

/// Inverse of [`morton2`].
pub fn demorton2(code: u64) -> (u32, u32) {
    (compact_bits(code), compact_bits(code >> 1))
}

/// Quantizes a point in `rect` to a Morton code with [`MORTON_BITS`] bits
/// per axis. Callers must ensure `rect.contains(p)` (debug-asserted).
pub fn morton_of_point(p: &Point2, rect: &Rect) -> u64 {
    debug_assert!(rect.contains(p), "morton_of_point: point outside rect");
    let scale = (1u64 << MORTON_BITS) as f64;
    let fx = (p.x - rect.x().lo()) / rect.width();
    let fy = (p.y - rect.y().lo()) / rect.height();
    let qx = ((fx * scale) as u32).min((1 << MORTON_BITS) - 1);
    let qy = ((fy * scale) as u32).min((1 << MORTON_BITS) - 1);
    morton2(qx, qy)
}

/// The depth-`k` quadtree block id of a Morton code: its top `2k` bits.
///
/// Two points are in the same depth-`k` block of the regular decomposition
/// of `rect` iff their codes agree on this prefix.
pub fn block_id_at_depth(code: u64, depth: u32) -> u64 {
    assert!(depth <= MORTON_BITS, "depth {depth} exceeds {MORTON_BITS}");
    if depth == 0 {
        0
    } else {
        code >> (2 * (MORTON_BITS - depth))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn interleave_round_trips() {
        for &(x, y) in &[
            (0u32, 0u32),
            (1, 0),
            (0, 1),
            (12345, 67890),
            (0x7fff_ffff, 0x7fff_ffff),
        ] {
            assert_eq!(demorton2(morton2(x, y)), (x, y));
        }
    }

    #[test]
    fn bit_interleaving_is_correct_for_small_values() {
        // x = 0b11, y = 0b01 → code = y1 x1 y0 x0 = 0 1 1 1 = 0b0111.
        assert_eq!(morton2(0b11, 0b01), 0b0111);
        assert_eq!(morton2(0b01, 0b11), 0b1011);
    }

    #[test]
    fn morton_order_is_monotone_in_each_axis_at_fixed_other() {
        assert!(morton2(1, 0) < morton2(2, 0));
        assert!(morton2(0, 1) < morton2(0, 2));
    }

    #[test]
    fn point_quantization_respects_quadrants() {
        let r = Rect::unit();
        // Depth-1 block ids follow quadrant structure: points in the same
        // quadrant share a depth-1 id, points in different quadrants don't.
        let sw = morton_of_point(&Point2::new(0.1, 0.1), &r);
        let sw2 = morton_of_point(&Point2::new(0.4, 0.4), &r);
        let ne = morton_of_point(&Point2::new(0.9, 0.9), &r);
        assert_eq!(block_id_at_depth(sw, 1), block_id_at_depth(sw2, 1));
        assert_ne!(block_id_at_depth(sw, 1), block_id_at_depth(ne, 1));
    }

    #[test]
    fn depth_zero_is_one_block() {
        let r = Rect::unit();
        let a = morton_of_point(&Point2::new(0.1, 0.9), &r);
        let b = morton_of_point(&Point2::new(0.9, 0.1), &r);
        assert_eq!(block_id_at_depth(a, 0), block_id_at_depth(b, 0));
    }

    #[test]
    #[should_panic(expected = "exceeds")]
    fn depth_bound_enforced() {
        block_id_at_depth(0, MORTON_BITS + 1);
    }

    #[test]
    fn deeper_blocks_refine_shallower() {
        let r = Rect::unit();
        let c = morton_of_point(&Point2::new(0.3, 0.7), &r);
        for depth in 1..10 {
            let parent = block_id_at_depth(c, depth - 1);
            let child = block_id_at_depth(c, depth);
            assert_eq!(child >> 2, parent, "depth {depth}");
        }
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use popan_proptest::prelude::*;

    proptest! {
        #[test]
        fn round_trip(x in 0u32..0x8000_0000, y in 0u32..0x8000_0000) {
            prop_assert_eq!(demorton2(morton2(x, y)), (x, y));
        }

        #[test]
        fn same_block_iff_same_prefix(
            px in 0.0f64..1.0, py in 0.0f64..1.0,
            qx in 0.0f64..1.0, qy in 0.0f64..1.0,
            depth in 1u32..8,
        ) {
            let r = Rect::unit();
            let p = Point2::new(px, py);
            let q = Point2::new(qx, qy);
            // Compute the depth-k block by walking the decomposition.
            let mut bp = r;
            let mut bq = r;
            for _ in 0..depth {
                bp = bp.quadrant(bp.quadrant_of(&p));
                bq = bq.quadrant(bq.quadrant_of(&q));
            }
            let same_block_geom = bp == bq;
            let same_block_morton = block_id_at_depth(morton_of_point(&p, &r), depth)
                == block_id_at_depth(morton_of_point(&q, &r), depth);
            // Quantization at 31 bits vs f64 midpoints can only disagree
            // on points within one quantum of a split line; exclude those.
            let quantum = 1.0 / (1u64 << MORTON_BITS) as f64 * 4.0;
            let near_boundary = |v: f64| {
                let scaled = v * (1u64 << depth) as f64;
                (scaled - scaled.round()).abs() * (1.0 / (1u64 << depth) as f64) < quantum
            };
            prop_assume!(![px, py, qx, qy].iter().any(|&v| near_boundary(v)));
            prop_assert_eq!(same_block_geom, same_block_morton);
        }
    }
}
