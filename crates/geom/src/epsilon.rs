//! Approximate floating-point comparisons, made explicit.
//!
//! Geometry code that compares `f64` implicitly is a bug factory; these
//! helpers make tolerance choices visible at call sites.

/// Default absolute tolerance for geometric predicates.
pub const DEFAULT_EPS: f64 = 1e-12;

/// `true` when `a` and `b` differ by at most `eps` absolutely.
#[inline]
pub fn approx_eq(a: f64, b: f64, eps: f64) -> bool {
    (a - b).abs() <= eps
}

/// `true` when `a` and `b` differ by at most [`DEFAULT_EPS`].
#[inline]
pub fn approx_eq_default(a: f64, b: f64) -> bool {
    approx_eq(a, b, DEFAULT_EPS)
}

/// `true` when `a ≤ b + eps`.
#[inline]
pub fn approx_le(a: f64, b: f64, eps: f64) -> bool {
    a <= b + eps
}

/// `true` when `a ≥ b − eps`.
#[inline]
pub fn approx_ge(a: f64, b: f64, eps: f64) -> bool {
    a >= b - eps
}

/// Clamps `v` into `[lo, hi]`.
#[inline]
pub fn clamp(v: f64, lo: f64, hi: f64) -> f64 {
    debug_assert!(lo <= hi);
    v.max(lo).min(hi)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn approx_eq_basic() {
        assert!(approx_eq(1.0, 1.0 + 1e-13, 1e-12));
        assert!(!approx_eq(1.0, 1.0 + 1e-6, 1e-12));
        assert!(approx_eq_default(0.1 + 0.2, 0.3));
    }

    #[test]
    fn approx_inequalities() {
        assert!(approx_le(1.0 + 1e-13, 1.0, 1e-12));
        assert!(!approx_le(1.1, 1.0, 1e-12));
        assert!(approx_ge(1.0 - 1e-13, 1.0, 1e-12));
        assert!(!approx_ge(0.9, 1.0, 1e-12));
    }

    #[test]
    fn clamp_behaviour() {
        assert_eq!(clamp(5.0, 0.0, 1.0), 1.0);
        assert_eq!(clamp(-5.0, 0.0, 1.0), 0.0);
        assert_eq!(clamp(0.5, 0.0, 1.0), 0.5);
    }
}
