//! Axis-aligned rectangles with regular quadrant decomposition.
//!
//! [`Rect`] is the block of a quadtree. Containment is half-open in both
//! axes (`[x_lo, x_hi) × [y_lo, y_hi)`) so the four quadrants of a split
//! tile the parent exactly and every contained point belongs to exactly
//! one quadrant — the invariant the PR quadtree depends on.

use crate::interval::Interval;
use crate::point::Point2;
use std::fmt;

/// One of the four quadrants of a split rectangle.
///
/// Naming follows compass convention: `Sw` is low-x/low-y.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Quadrant {
    /// Low x, low y.
    Sw,
    /// High x, low y.
    Se,
    /// Low x, high y.
    Nw,
    /// High x, high y.
    Ne,
}

impl Quadrant {
    /// All four quadrants in index order.
    pub const ALL: [Quadrant; 4] = [Quadrant::Sw, Quadrant::Se, Quadrant::Nw, Quadrant::Ne];

    /// Index (`Sw=0, Se=1, Nw=2, Ne=3`): bit 0 is the x half, bit 1 the y
    /// half.
    pub fn index(self) -> usize {
        match self {
            Quadrant::Sw => 0,
            Quadrant::Se => 1,
            Quadrant::Nw => 2,
            Quadrant::Ne => 3,
        }
    }

    /// Quadrant from an index in `0..4`.
    pub fn from_index(i: usize) -> Quadrant {
        Quadrant::ALL[i]
    }
}

impl fmt::Display for Quadrant {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            Quadrant::Sw => "SW",
            Quadrant::Se => "SE",
            Quadrant::Nw => "NW",
            Quadrant::Ne => "NE",
        };
        write!(f, "{s}")
    }
}

/// An axis-aligned rectangle, half-open on both axes.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Rect {
    x: Interval,
    y: Interval,
}

impl Rect {
    /// Creates a rectangle from two half-open intervals.
    pub fn new(x: Interval, y: Interval) -> Self {
        Rect { x, y }
    }

    /// Creates a rectangle from corner coordinates. Panics on degenerate
    /// bounds (see [`Interval::new`]).
    pub fn from_bounds(x_lo: f64, y_lo: f64, x_hi: f64, y_hi: f64) -> Self {
        Rect::new(Interval::new(x_lo, x_hi), Interval::new(y_lo, y_hi))
    }

    /// The unit square `[0, 1) × [0, 1)`, the region all the paper's
    /// experiments run in.
    pub fn unit() -> Self {
        Rect::new(Interval::unit(), Interval::unit())
    }

    /// Horizontal interval.
    pub fn x(&self) -> Interval {
        self.x
    }

    /// Vertical interval.
    pub fn y(&self) -> Interval {
        self.y
    }

    /// Width.
    pub fn width(&self) -> f64 {
        self.x.length()
    }

    /// Height.
    pub fn height(&self) -> f64 {
        self.y.length()
    }

    /// Area.
    pub fn area(&self) -> f64 {
        self.width() * self.height()
    }

    /// Center point.
    pub fn center(&self) -> Point2 {
        Point2::new(self.x.mid(), self.y.mid())
    }

    /// Half-open containment.
    pub fn contains(&self, p: &Point2) -> bool {
        self.x.contains(p.x) && self.y.contains(p.y)
    }

    /// The quadrant of this rectangle containing `p`.
    ///
    /// Callers must ensure `self.contains(p)` (debug-asserted).
    pub fn quadrant_of(&self, p: &Point2) -> Quadrant {
        debug_assert!(self.contains(p), "quadrant_of: point outside rect");
        let xi = usize::from(p.x >= self.x.mid());
        let yi = usize::from(p.y >= self.y.mid());
        Quadrant::from_index(yi * 2 + xi)
    }

    /// The four quadrants, in [`Quadrant::ALL`] order.
    pub fn quadrants(&self) -> [Rect; 4] {
        let [xl, xh] = self.x.split();
        let [yl, yh] = self.y.split();
        [
            Rect::new(xl, yl), // SW
            Rect::new(xh, yl), // SE
            Rect::new(xl, yh), // NW
            Rect::new(xh, yh), // NE
        ]
    }

    /// A single quadrant.
    pub fn quadrant(&self, q: Quadrant) -> Rect {
        self.quadrants()[q.index()]
    }

    /// Fused [`Rect::quadrant_of`] + [`Rect::quadrant`]: the quadrant
    /// containing `p` and its rect, computing each axis midpoint once and
    /// constructing only the chosen child. Bit-identical to the unfused
    /// pair; callers must ensure `self.contains(p)` (debug-asserted).
    pub fn quadrant_descend(&self, p: &Point2) -> (Quadrant, Rect) {
        debug_assert!(self.contains(p), "quadrant_descend: point outside rect");
        let (xh, x) = self.x.descend(p.x);
        let (yh, y) = self.y.descend(p.y);
        (
            Quadrant::from_index(yh.index() * 2 + xh.index()),
            Rect::new(x, y),
        )
    }

    /// `true` when the rectangles overlap (half-open semantics: touching
    /// edges do not overlap).
    pub fn overlaps(&self, other: &Rect) -> bool {
        self.x.overlaps(&other.x) && self.y.overlaps(&other.y)
    }

    /// `true` when `other` lies entirely inside `self`.
    pub fn contains_rect(&self, other: &Rect) -> bool {
        other.x.lo() >= self.x.lo()
            && other.x.hi() <= self.x.hi()
            && other.y.lo() >= self.y.lo()
            && other.y.hi() <= self.y.hi()
    }
}

impl fmt::Display for Rect {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}×{}", self.x, self.y)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_and_measures() {
        let r = Rect::from_bounds(0.0, 0.0, 4.0, 2.0);
        assert_eq!(r.width(), 4.0);
        assert_eq!(r.height(), 2.0);
        assert_eq!(r.area(), 8.0);
        assert_eq!(r.center(), Point2::new(2.0, 1.0));
    }

    #[test]
    fn containment_is_half_open() {
        let r = Rect::unit();
        assert!(r.contains(&Point2::new(0.0, 0.0)));
        assert!(r.contains(&Point2::new(0.999, 0.999)));
        assert!(!r.contains(&Point2::new(1.0, 0.5)));
        assert!(!r.contains(&Point2::new(0.5, 1.0)));
        assert!(!r.contains(&Point2::new(-0.001, 0.5)));
    }

    #[test]
    fn quadrants_tile_parent() {
        let r = Rect::from_bounds(0.0, 0.0, 2.0, 2.0);
        let qs = r.quadrants();
        let total: f64 = qs.iter().map(Rect::area).sum();
        assert_eq!(total, r.area());
        // No pair overlaps.
        for i in 0..4 {
            for j in (i + 1)..4 {
                assert!(!qs[i].overlaps(&qs[j]), "{i} overlaps {j}");
            }
        }
        // All inside the parent.
        for q in &qs {
            assert!(r.contains_rect(q));
        }
    }

    #[test]
    fn quadrant_descend_is_bit_identical_to_unfused_pair() {
        // The arena trees descend with the fused call; it must reproduce
        // quadrant_of + quadrant exactly, bounds bit for bit.
        let mut r = Rect::new(Interval::new(0.137, 1.731), Interval::new(-2.5, 0.875));
        let p = Point2::new(0.694_201_337, 0.333_333_3);
        for _ in 0..40 {
            let (q, child) = r.quadrant_descend(&p);
            assert_eq!(q, r.quadrant_of(&p));
            assert_eq!(child, r.quadrant(q));
            r = child;
        }
    }

    #[test]
    fn quadrant_of_matches_quadrant_rect() {
        let r = Rect::unit();
        let samples = [
            (Point2::new(0.1, 0.1), Quadrant::Sw),
            (Point2::new(0.9, 0.1), Quadrant::Se),
            (Point2::new(0.1, 0.9), Quadrant::Nw),
            (Point2::new(0.9, 0.9), Quadrant::Ne),
            // Midpoints go to the upper half on each axis.
            (Point2::new(0.5, 0.5), Quadrant::Ne),
            (Point2::new(0.5, 0.0), Quadrant::Se),
            (Point2::new(0.0, 0.5), Quadrant::Nw),
        ];
        for (p, expect) in samples {
            assert_eq!(r.quadrant_of(&p), expect, "{p}");
            assert!(r.quadrant(expect).contains(&p), "{p}");
        }
    }

    #[test]
    fn overlap_and_containment_of_rects() {
        let r = Rect::unit();
        assert!(r.overlaps(&Rect::from_bounds(0.5, 0.5, 2.0, 2.0)));
        assert!(!r.overlaps(&Rect::from_bounds(1.0, 0.0, 2.0, 1.0))); // shared edge
        assert!(r.contains_rect(&Rect::from_bounds(0.25, 0.25, 0.75, 0.75)));
        assert!(!r.contains_rect(&Rect::from_bounds(0.5, 0.5, 1.5, 0.9)));
        assert!(r.contains_rect(&r));
    }

    #[test]
    fn quadrant_indexing_round_trips() {
        for q in Quadrant::ALL {
            assert_eq!(Quadrant::from_index(q.index()), q);
        }
        assert_eq!(format!("{}", Quadrant::Nw), "NW");
    }

    #[test]
    fn display_format() {
        let r = Rect::unit();
        assert_eq!(format!("{r}"), "[0, 1)×[0, 1)");
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use popan_proptest::prelude::*;

    proptest! {
        #[test]
        fn contained_point_is_in_exactly_one_quadrant(
            px in 0.0f64..1.0,
            py in 0.0f64..1.0,
        ) {
            let r = Rect::unit();
            let p = Point2::new(px, py);
            prop_assume!(r.contains(&p));
            let hits = r
                .quadrants()
                .iter()
                .filter(|q| q.contains(&p))
                .count();
            prop_assert_eq!(hits, 1);
            // And quadrant_of names that quadrant.
            let q = r.quadrant_of(&p);
            prop_assert!(r.quadrant(q).contains(&p));
        }

        #[test]
        fn recursive_decomposition_preserves_area(
            x_lo in -10.0f64..10.0,
            y_lo in -10.0f64..10.0,
            w in 0.1f64..10.0,
            h in 0.1f64..10.0,
        ) {
            let r = Rect::from_bounds(x_lo, y_lo, x_lo + w, y_lo + h);
            // Two levels of decomposition: 16 grandchildren tile the root.
            let mut total = 0.0;
            for q in r.quadrants() {
                for g in q.quadrants() {
                    total += g.area();
                }
            }
            prop_assert!((total - r.area()).abs() < 1e-9 * r.area().max(1.0));
        }
    }
}
