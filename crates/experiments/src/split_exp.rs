//! Extension: renewal-theory depth laws across the split-tree family.
//!
//! The `SplitSpec` refactor turned every model in `popan-core` into an
//! instance of Devroye's split-tree parameterization, and that
//! parameterization carries its own asymptotic theory: Holmgren's law
//! puts the depth of the `n`-th item at `~ c·ln n` and Broutin–Holmgren
//! put the total path length at `~ c·n·ln n`, with `c = 1/μ` the inverse
//! split entropy ([`SplitSpec::depth_coefficient`]). This experiment
//! closes the loop experimentally: build real structures along a ×2
//! size ladder, measure expected probe depth and path length per item,
//! regress both against `ln n`, and compare the fitted slopes to the
//! spec-derived constant.
//!
//! Five structures cover both halves of the family:
//!
//! * regular decomposition (fixed uniform `V`, `μ = ln b`): bintree
//!   (`b = 2`), PR quadtree (`b = 4`), PR octree (`b = 8`);
//! * comparison-based (Dirichlet `V`, `μ = H_b − 1`): random `m`-ary
//!   search trees with `b = 3` and `b = 8`.
//!
//! Probe depth is an exact functional of the occupancy census, not a
//! sampled quantity: for the spatial trees a uniform probe lands in a
//! leaf with probability equal to its volume `b^{−depth}`, so
//! `E[D] = Σ_d d·leaves(d)·b^{−d}`; for the search tree an insertion
//! reaches depth `d` with probability proportional to the key gaps
//! there, giving the gap-weighted mean
//! ([`MarySearchTree::expected_insertion_depth`]).

use crate::config::ExperimentConfig;
use crate::report::TableData;
use popan_core::SplitSpec;
use popan_engine::{fingerprint_of, Experiment};
use popan_geom::{Aabb3, Rect};
use popan_numeric::series::{linear_fit, LinearFit};
use popan_rng::rngs::StdRng;
use popan_spatial::{Bintree, DepthOccupancyTable, MarySearchTree, PrOctree, PrQuadtree};
use popan_workload::keys::UniformKeys;
use popan_workload::points::{PointSource, UniformCube, UniformRect};
use popan_workload::{TrialRunner, Welford};

/// Node capacity used for the spatial structures (matches `dims`).
pub const CAPACITY: usize = 4;

/// Which member of the split-tree family to build.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SplitStructure {
    /// Regular halving, `b = 2`.
    Bintree,
    /// PR quadtree, `b = 4`.
    Quadtree,
    /// PR octree, `b = 8`.
    Octree,
    /// Random `m`-ary search tree with the given branch factor.
    Mary(usize),
}

impl SplitStructure {
    /// The structures the sweep covers, in branch order within each
    /// half of the family.
    pub fn all() -> [SplitStructure; 5] {
        [
            SplitStructure::Bintree,
            SplitStructure::Quadtree,
            SplitStructure::Octree,
            SplitStructure::Mary(3),
            SplitStructure::Mary(8),
        ]
    }

    /// Display name.
    pub fn name(self) -> String {
        match self {
            SplitStructure::Bintree => "bintree".into(),
            SplitStructure::Quadtree => "PR quadtree".into(),
            SplitStructure::Octree => "PR octree".into(),
            SplitStructure::Mary(b) => format!("m-ary search (b={b})"),
        }
    }

    /// Short name for fingerprints and engine labels.
    fn tag(self) -> String {
        match self {
            SplitStructure::Bintree => "bintree".into(),
            SplitStructure::Quadtree => "quad".into(),
            SplitStructure::Octree => "oct".into(),
            SplitStructure::Mary(b) => format!("mary{b}"),
        }
    }

    /// Branch factor `b`.
    pub fn branch(self) -> usize {
        match self {
            SplitStructure::Bintree => 2,
            SplitStructure::Quadtree => 4,
            SplitStructure::Octree => 8,
            SplitStructure::Mary(b) => b,
        }
    }

    /// The structure's split-tree parameterization.
    pub fn spec(self) -> SplitSpec {
        match self {
            SplitStructure::Mary(b) => SplitSpec::mary_search_tree(b).expect("branch ≥ 2 is valid"),
            other => SplitSpec::uniform(other.branch(), CAPACITY).expect("uniform spec is valid"),
        }
    }

    /// Numeric salt component (distinct per structure).
    fn salt(self) -> u64 {
        match self {
            SplitStructure::Bintree => 2,
            SplitStructure::Quadtree => 4,
            SplitStructure::Octree => 8,
            SplitStructure::Mary(b) => 100 + b as u64,
        }
    }
}

/// Expected uniform-probe depth from the census: a probe lands in a
/// depth-`d` leaf with probability `b^{−d}` (its volume share), so the
/// leaf volumes form a probability distribution over depths.
pub fn volumetric_probe_depth(table: &DepthOccupancyTable, branch: usize) -> f64 {
    let Some(max) = table.max_depth() else {
        return 0.0;
    };
    (0..=max)
        .map(|d| f64::from(d) * table.leaves_at(d) as f64 * (branch as f64).powi(-(d as i32)))
        .sum()
}

/// Mean measurements at one ladder point.
#[derive(Debug, Clone, PartialEq)]
pub struct SplitPoint {
    /// Items inserted.
    pub n: usize,
    /// Mean expected probe depth over trials.
    pub probe_depth: f64,
    /// Mean total path length per stored item over trials.
    pub path_per_item: f64,
}

/// One `(structure, n)` cell of the sweep: `config.trials` structures of
/// `n` uniform items each, reduced to mean probe depth and mean path
/// length per item; theory = the spec's depth coefficient `1/μ`.
#[derive(Debug, Clone)]
pub struct SplitPointExperiment {
    config: ExperimentConfig,
    structure: SplitStructure,
    n: usize,
}

impl SplitPointExperiment {
    /// An instance for one structure and size.
    pub fn new(config: ExperimentConfig, structure: SplitStructure, n: usize) -> Self {
        SplitPointExperiment {
            config,
            structure,
            n,
        }
    }
}

impl Experiment for SplitPointExperiment {
    type Config = ExperimentConfig;
    type Theory = f64;
    type Trial = (f64, f64);
    type Summary = SplitPoint;

    fn name(&self) -> String {
        format!("split/{}/n{}", self.structure.tag(), self.n)
    }

    fn config(&self) -> &ExperimentConfig {
        &self.config
    }

    fn fingerprint(&self) -> u64 {
        fingerprint_of(&[0x5917, self.structure.salt(), self.n as u64])
    }

    fn runner(&self) -> TrialRunner {
        self.config
            .runner(0x5917 ^ (self.structure.salt() << 44) ^ (self.n as u64) << 20)
    }

    fn theory(&self) -> f64 {
        self.structure.spec().depth_coefficient()
    }

    fn run_trial(&self, _t: usize, rng: &mut StdRng) -> (f64, f64) {
        let n = self.n;
        match self.structure {
            SplitStructure::Bintree => {
                let tree =
                    Bintree::build(Rect::unit(), CAPACITY, UniformRect::unit().sample_n(rng, n))
                        .expect("in-region points");
                measure_spatial(tree.depth_table(), 2, n)
            }
            SplitStructure::Quadtree => {
                let tree =
                    PrQuadtree::build(Rect::unit(), CAPACITY, UniformRect::unit().sample_n(rng, n))
                        .expect("in-region points");
                measure_spatial(tree.depth_table(), 4, n)
            }
            SplitStructure::Octree => {
                let tree = PrOctree::build(
                    Aabb3::unit(),
                    CAPACITY,
                    UniformCube::unit().sample_n(rng, n),
                )
                .expect("in-region points");
                measure_spatial(tree.depth_table(), 8, n)
            }
            SplitStructure::Mary(b) => {
                let tree =
                    MarySearchTree::build(b, UniformKeys.sample_n(rng, n)).expect("branch ≥ 2");
                (
                    tree.expected_insertion_depth(),
                    tree.total_path_length() as f64 / n as f64,
                )
            }
        }
    }

    fn aggregate(&self, _theory: f64, trials: &[(f64, f64)]) -> SplitPoint {
        let mut probe = Welford::new();
        let mut path = Welford::new();
        for &(d, p) in trials {
            probe.push(d);
            path.push(p);
        }
        SplitPoint {
            n: self.n,
            probe_depth: probe.mean(),
            path_per_item: path.mean(),
        }
    }
}

fn measure_spatial(table: &DepthOccupancyTable, branch: usize, n: usize) -> (f64, f64) {
    (
        volumetric_probe_depth(table, branch),
        table.total_item_path_length() as f64 / n as f64,
    )
}

/// The ×2 size ladder: `config.points · 2^k, k = 0..=6`. The span covers
/// whole phasing periods for every structure (×64 = two ×8 periods,
/// three ×4, six ×2), so the log-periodic oscillation averages out of
/// the fitted slope instead of biasing it.
pub fn ladder(config: &ExperimentConfig) -> Vec<usize> {
    (0..=6).map(|k| config.points << k).collect()
}

/// Regression outcome for one structure.
#[derive(Debug, Clone)]
pub struct SplitRow {
    /// Structure name.
    pub structure: String,
    /// Branch factor.
    pub branch: usize,
    /// Spec-derived depth coefficient `c = 1/μ`.
    pub theory: f64,
    /// Fitted slope of probe depth vs `ln n` (Holmgren).
    pub depth_fit: LinearFit,
    /// Fitted slope of path length per item vs `ln n`
    /// (Broutin–Holmgren).
    pub path_fit: LinearFit,
}

impl SplitRow {
    /// `100·(depth slope − c)/c`.
    pub fn depth_drift_percent(&self) -> f64 {
        100.0 * (self.depth_fit.slope - self.theory) / self.theory
    }

    /// `100·(path slope − c)/c`.
    pub fn path_drift_percent(&self) -> f64 {
        100.0 * (self.path_fit.slope - self.theory) / self.theory
    }
}

/// Runs the sweep: every structure over the full ladder, then one
/// regression per structure and observable.
pub fn run(config: &ExperimentConfig) -> Vec<SplitRow> {
    let engine = config.engine();
    SplitStructure::all()
        .into_iter()
        .map(|structure| {
            let points: Vec<SplitPoint> = ladder(config)
                .into_iter()
                .map(|n| engine.run(&SplitPointExperiment::new(*config, structure, n)))
                .collect();
            let ln_n: Vec<f64> = points.iter().map(|p| (p.n as f64).ln()).collect();
            let depths: Vec<f64> = points.iter().map(|p| p.probe_depth).collect();
            let paths: Vec<f64> = points.iter().map(|p| p.path_per_item).collect();
            SplitRow {
                structure: structure.name(),
                branch: structure.branch(),
                theory: structure.spec().depth_coefficient(),
                depth_fit: linear_fit(&ln_n, &depths).expect("ladder has ≥ 2 points"),
                path_fit: linear_fit(&ln_n, &paths).expect("ladder has ≥ 2 points"),
            }
        })
        .collect()
}

/// Renders the renewal-theory regression table.
pub fn table(config: &ExperimentConfig) -> TableData {
    let rows = run(config);
    let max_drift = rows
        .iter()
        .flat_map(|r| [r.depth_drift_percent().abs(), r.path_drift_percent().abs()])
        .fold(0.0f64, f64::max);
    let body = rows
        .iter()
        .map(|r| {
            vec![
                r.structure.clone(),
                r.branch.to_string(),
                format!("{:.4}", r.theory),
                format!("{:.4}", r.depth_fit.slope),
                format!("{:+.1}", r.depth_drift_percent()),
                format!("{:.4}", r.depth_fit.r_squared),
                format!("{:.4}", r.path_fit.slope),
                format!("{:+.1}", r.path_drift_percent()),
                format!("{:.4}", r.path_fit.r_squared),
            ]
        })
        .collect();
    TableData::new(
        "split",
        "Split-tree renewal theory: depth and path-length slopes vs 1/μ (extension)",
        vec![
            "structure".into(),
            "b".into(),
            "c = 1/μ".into(),
            "depth slope".into(),
            "drift %".into(),
            "R²".into(),
            "path slope".into(),
            "drift %".into(),
            "R²".into(),
        ],
        body,
    )
    .with_note(format!(
        "slopes of probe depth (Holmgren, D ~ c·ln n) and path length per item \
         (Broutin–Holmgren, Υ/n ~ c·ln n) fitted over n = {}·2^k, k ≤ 6; \
         max |drift| {:.1}% of the spec-derived coefficient",
        config.points, max_drift,
    ))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg() -> ExperimentConfig {
        ExperimentConfig {
            trials: 3,
            points: 500,
            ..ExperimentConfig::paper()
        }
    }

    #[test]
    fn theory_constants_per_structure() {
        let c: Vec<f64> = SplitStructure::all()
            .into_iter()
            .map(|s| s.spec().depth_coefficient())
            .collect();
        assert!((c[0] - 1.0 / 2f64.ln()).abs() < 1e-12, "bintree 1/ln 2");
        assert!((c[1] - 1.0 / 4f64.ln()).abs() < 1e-12, "quadtree 1/ln 4");
        assert!((c[2] - 1.0 / 8f64.ln()).abs() < 1e-12, "octree 1/ln 8");
        // H₃ − 1 = 5/6; H₈ − 1 = Σ_{j=2..8} 1/j.
        assert!((c[3] - 1.2).abs() < 1e-12, "mary b=3: 1/(H₃−1)");
        let h8m1: f64 = (2..=8).map(|j| 1.0 / j as f64).sum();
        assert!((c[4] - 1.0 / h8m1).abs() < 1e-12, "mary b=8: 1/(H₈−1)");
    }

    #[test]
    fn volumetric_probe_depth_is_a_mean_over_a_distribution() {
        // A perfect 2-level quadtree: 16 leaves of volume 1/16 at depth 2.
        let mut table = DepthOccupancyTable::default();
        for _ in 0..16 {
            table.record(2, 1);
        }
        assert!((volumetric_probe_depth(&table, 4) - 2.0).abs() < 1e-12);
        assert_eq!(
            volumetric_probe_depth(&DepthOccupancyTable::default(), 4),
            0.0
        );
    }

    #[test]
    fn slopes_match_renewal_theory() {
        for row in run(&cfg()) {
            let dd = row.depth_drift_percent().abs();
            let pd = row.path_drift_percent().abs();
            assert!(
                dd < 15.0,
                "{}: depth slope {} vs c {} ({dd:.1}%)",
                row.structure,
                row.depth_fit.slope,
                row.theory
            );
            assert!(
                pd < 15.0,
                "{}: path slope {} vs c {} ({pd:.1}%)",
                row.structure,
                row.path_fit.slope,
                row.theory
            );
            assert!(
                row.depth_fit.r_squared > 0.97 && row.path_fit.r_squared > 0.97,
                "{}: fits should be near-linear (R² {} / {})",
                row.structure,
                row.depth_fit.r_squared,
                row.path_fit.r_squared
            );
        }
    }

    #[test]
    fn slope_ordering_follows_split_entropy() {
        // 1/ln 2 > 1/(H₃−1) > 1/ln 4 > 1/(H₈−1) > 1/ln 8: measured
        // slopes should sort the same way the entropies do.
        let rows = run(&cfg());
        let slope = |name: &str| {
            rows.iter()
                .find(|r| r.structure.contains(name))
                .map(|r| r.depth_fit.slope)
                .expect("structure present")
        };
        assert!(slope("bintree") > slope("b=3"));
        assert!(slope("b=3") > slope("quadtree"));
        assert!(slope("quadtree") > slope("b=8"));
        assert!(slope("b=8") > slope("octree"));
    }

    #[test]
    fn table_renders() {
        let t = table(&ExperimentConfig::quick());
        assert_eq!(t.rows.len(), 5);
        let rendered = t.render();
        assert!(rendered.contains("bintree"));
        assert!(rendered.contains("m-ary search"));
        assert!(t.notes.join(" ").contains("Holmgren"));
    }
}
