//! Extension: population analysis of the PMR quadtree for lines.
//!
//! The paper's conclusion reports that the same technique applied to the
//! PMR quadtree "yields results which agree with experimental data even
//! better than in the case of the PR quadtree". The closed-form line
//! analysis is in the unavailable TR-1740, so the model side here uses
//! the local Monte-Carlo estimator
//! ([`popan_core::pmr_model::PmrModel`]); the experimental side builds
//! real PMR quadtrees from uniform-endpoint segments.

use crate::config::ExperimentConfig;
use crate::report::{format_distribution, TableData};
use popan_core::pmr_model::{PmrModel, RandomChords};
use popan_core::SteadyStateSolver;
use popan_engine::{fingerprint_of, Experiment};
use popan_geom::Rect;
use popan_rng::rngs::StdRng;
use popan_spatial::{OccupancyInstrumented, PmrQuadtree};
use popan_workload::lines::{SegmentSource, UniformEndpoints};
use popan_workload::{ClassAccumulator, TrialRunner};

/// Classes kept above the splitting threshold in both the model state
/// space and the measured histogram.
pub const EXTRA_CLASSES: usize = 6;

/// Result of the PMR validation.
#[derive(Debug, Clone, PartialEq)]
pub struct PmrResult {
    /// Splitting threshold `m`.
    pub threshold: usize,
    /// Model steady-state occupancy distribution over `0..=m+EXTRA`.
    pub theory: Vec<f64>,
    /// Measured mean distribution over trials.
    pub experiment: Vec<f64>,
    /// Model average occupancy.
    pub theory_occupancy: f64,
    /// Measured average occupancy.
    pub experiment_occupancy: f64,
}

/// The PMR validation experiment: theory = the local Monte-Carlo chord
/// model's steady state (itself seeded and deterministic), trial = one
/// PMR quadtree's occupancy mix.
#[derive(Debug, Clone)]
pub struct PmrExperiment {
    config: ExperimentConfig,
    threshold: usize,
    segments: usize,
}

impl PmrExperiment {
    /// An instance for one `(threshold, segment count)` pair.
    pub fn new(config: ExperimentConfig, threshold: usize, segments: usize) -> Self {
        PmrExperiment {
            config,
            threshold,
            segments,
        }
    }
}

impl Experiment for PmrExperiment {
    type Config = ExperimentConfig;
    type Theory = Vec<f64>;
    type Trial = Vec<f64>;
    type Summary = PmrResult;

    fn name(&self) -> String {
        format!("pmr/t{}", self.threshold)
    }

    fn config(&self) -> &ExperimentConfig {
        &self.config
    }

    fn fingerprint(&self) -> u64 {
        fingerprint_of(&[0x9a72, self.threshold as u64, self.segments as u64])
    }

    fn runner(&self) -> TrialRunner {
        self.config.runner(0x9a72 ^ (self.threshold as u64) << 16)
    }

    fn theory(&self) -> Vec<f64> {
        let model = PmrModel::estimate(
            self.threshold,
            EXTRA_CLASSES,
            &RandomChords,
            20_000,
            self.config.master_seed ^ 0x9a7,
        )
        .expect("valid PMR model");
        SteadyStateSolver::new()
            .tolerance(1e-12)
            .solve(&model)
            .expect("PMR model solves")
            .distribution()
            .proportions()
            .to_vec()
    }

    fn run_trial(&self, _t: usize, rng: &mut StdRng) -> Vec<f64> {
        let tree = PmrQuadtree::build(
            Rect::unit(),
            self.threshold,
            UniformEndpoints::unit().sample_n(rng, self.segments),
        )
        .expect("segments cross the unit square");
        tree.occupancy_profile()
            .proportions(self.threshold + EXTRA_CLASSES)
    }

    fn aggregate(&self, theory: Vec<f64>, trials: &[Vec<f64>]) -> PmrResult {
        let mut classes = ClassAccumulator::new();
        for vector in trials {
            classes.push(vector);
        }
        let experiment = classes.means();
        let weighted =
            |v: &[f64]| -> f64 { v.iter().enumerate().map(|(i, &p)| i as f64 * p).sum() };
        PmrResult {
            threshold: self.threshold,
            theory_occupancy: weighted(&theory),
            experiment_occupancy: weighted(&experiment),
            theory,
            experiment,
        }
    }
}

/// Runs the validation for one threshold.
pub fn run(config: &ExperimentConfig, threshold: usize, segments: usize) -> PmrResult {
    config
        .engine()
        .run(&PmrExperiment::new(*config, threshold, segments))
}

/// Renders the PMR validation table.
pub fn table(config: &ExperimentConfig) -> TableData {
    let result = run(config, 4, 600);
    let body = vec![
        vec![
            result.threshold.to_string(),
            "theory (local MC chords)".into(),
            format_distribution(&result.theory),
            format!("{:.2}", result.theory_occupancy),
        ],
        vec![
            String::new(),
            "experiment (PMR trees)".into(),
            format_distribution(&result.experiment),
            format!("{:.2}", result.experiment_occupancy),
        ],
    ];
    TableData::new(
        "pmr",
        "PMR quadtree population analysis vs simulation (extension)",
        vec![
            "threshold".into(),
            "row".into(),
            "occupancy distribution".into(),
            "avg occupancy".into(),
        ],
        body,
    )
    .with_note(
        "model transform rows estimated by Monte-Carlo simulation of the local split \
         (random chords), per the paper's 'only the local probabilities need be evaluated'",
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn model_tracks_simulation_shape() {
        let cfg = ExperimentConfig {
            trials: 4,
            ..ExperimentConfig::paper()
        };
        let r = run(&cfg, 4, 500);
        // Both distributions peak at-or-below the threshold and decay
        // above it.
        let peak_thy = r
            .theory
            .iter()
            .enumerate()
            .max_by(|a, b| a.1.partial_cmp(b.1).unwrap())
            .unwrap()
            .0;
        let peak_exp = r
            .experiment
            .iter()
            .enumerate()
            .max_by(|a, b| a.1.partial_cmp(b.1).unwrap())
            .unwrap()
            .0;
        assert!(peak_thy <= r.threshold + 1, "theory peak at {peak_thy}");
        assert!(peak_exp <= r.threshold + 1, "experiment peak at {peak_exp}");
        // Average occupancy within a third of each other (the local-model
        // mismatch — chords vs finite segments — bounds achievable
        // accuracy).
        let rel = (r.theory_occupancy - r.experiment_occupancy).abs() / r.experiment_occupancy;
        assert!(
            rel < 0.35,
            "theory {} vs experiment {} (rel {rel:.2})",
            r.theory_occupancy,
            r.experiment_occupancy
        );
    }

    #[test]
    fn tail_above_threshold_decays_in_both() {
        let cfg = ExperimentConfig {
            trials: 3,
            ..ExperimentConfig::paper()
        };
        let r = run(&cfg, 3, 400);
        let t = r.threshold;
        assert!(r.theory[t + 2] < r.theory[t], "theory tail must decay");
        assert!(
            r.experiment[t + 2] < r.experiment[t].max(1e-9),
            "experimental tail must decay"
        );
    }

    #[test]
    fn table_renders() {
        let t = table(&ExperimentConfig::quick());
        assert_eq!(t.rows.len(), 2);
        assert!(t.render().contains("local MC chords"));
    }
}
