//! Extension: the steady state under deletion churn.
//!
//! The paper's model covers pure insertion. Real indexes also delete;
//! with merge-on-underflow (implemented by
//! [`popan_spatial::PrQuadtree::remove`]) the natural question is whether
//! churn shifts the occupancy steady state. Because PR-quadtree deletion
//! restores exactly the structure a fresh build of the survivors would
//! produce, the answer is knowable in advance: the occupancy mix of a
//! churned tree of `N` live points is *distributed identically* to a
//! freshly built `N`-point tree — churn does not degrade the PR quadtree
//! the way it degrades B-trees. This experiment verifies that
//! shape-equivalence empirically and documents it as a property of
//! order-independent structures.

use crate::config::ExperimentConfig;
use crate::report::{format_distribution, TableData};
use popan_engine::{fingerprint_of, Experiment};
use popan_geom::Rect;
use popan_rng::rngs::StdRng;
use popan_spatial::PrQuadtree;
use popan_workload::points::{PointSource, UniformRect};
use popan_workload::{ClassAccumulator, TrialRunner};

/// Result of the churn comparison.
#[derive(Debug, Clone, PartialEq)]
pub struct ChurnResult {
    /// Node capacity.
    pub capacity: usize,
    /// Live points at measurement time.
    pub live_points: usize,
    /// Total operations applied to the churned trees (inserts + deletes).
    pub operations: usize,
    /// Mean occupancy mix of churned trees.
    pub churned: Vec<f64>,
    /// Mean occupancy mix of freshly built trees with the same live set
    /// size.
    pub fresh: Vec<f64>,
    /// Total-variation distance between the two.
    pub tv_distance: f64,
}

/// Which side of the churn comparison an experiment instance measures.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ChurnPhase {
    /// Grow to `2·target`, churn down and up three times, end at
    /// `target` live points.
    Churned,
    /// Build a fresh tree of `target` points.
    Fresh,
}

/// One side of the churn comparison: trial = `(operations applied,
/// occupancy proportions)`, summary = `(operations, mean proportions)`.
#[derive(Debug, Clone)]
pub struct ChurnExperiment {
    config: ExperimentConfig,
    capacity: usize,
    target: usize,
    phase: ChurnPhase,
}

impl ChurnExperiment {
    /// An instance for one `(capacity, live-point target, phase)` triple.
    pub fn new(
        config: ExperimentConfig,
        capacity: usize,
        target: usize,
        phase: ChurnPhase,
    ) -> Self {
        ChurnExperiment {
            config,
            capacity,
            target,
            phase,
        }
    }
}

impl Experiment for ChurnExperiment {
    type Config = ExperimentConfig;
    type Theory = ();
    type Trial = (usize, Vec<f64>);
    type Summary = (usize, Vec<f64>);

    fn name(&self) -> String {
        match self.phase {
            ChurnPhase::Churned => format!("churn/churned/m{}", self.capacity),
            ChurnPhase::Fresh => format!("churn/fresh/m{}", self.capacity),
        }
    }

    fn config(&self) -> &ExperimentConfig {
        &self.config
    }

    fn fingerprint(&self) -> u64 {
        let phase = match self.phase {
            ChurnPhase::Churned => 0xc4a,
            ChurnPhase::Fresh => 0xc4b,
        };
        fingerprint_of(&[phase, self.capacity as u64, self.target as u64])
    }

    fn runner(&self) -> TrialRunner {
        let salt = match self.phase {
            ChurnPhase::Churned => 0xc4a,
            ChurnPhase::Fresh => 0xc4b,
        };
        self.config.runner(salt ^ (self.capacity as u64) << 32)
    }

    fn theory(&self) {}

    fn run_trial(&self, _t: usize, rng: &mut StdRng) -> (usize, Vec<f64>) {
        let source = UniformRect::unit();
        let (capacity, target) = (self.capacity, self.target);
        match self.phase {
            ChurnPhase::Churned => {
                let mut tree = PrQuadtree::new(Rect::unit(), capacity).expect("valid");
                let mut live: Vec<popan_geom::Point2> = Vec::new();
                let mut ops = 0usize;
                // Grow to 2×target.
                for p in source.sample_n(rng, 2 * target) {
                    tree.insert(p).expect("in region");
                    live.push(p);
                    ops += 1;
                }
                // Three churn cycles: delete half (random victims),
                // insert back.
                for cycle in 0..3 {
                    for _ in 0..target {
                        use popan_rng::Rng;
                        let idx = rng.random_range(0..live.len());
                        let victim = live.swap_remove(idx);
                        assert!(tree.remove(&victim));
                        ops += 1;
                    }
                    let refill = if cycle < 2 { target } else { 0 };
                    for p in source.sample_n(rng, refill) {
                        tree.insert(p).expect("in region");
                        live.push(p);
                        ops += 1;
                    }
                }
                assert_eq!(tree.len(), target);
                (ops, tree.occupancy_profile().proportions(capacity))
            }
            ChurnPhase::Fresh => {
                let tree = PrQuadtree::build(Rect::unit(), capacity, source.sample_n(rng, target))
                    .expect("in region");
                (target, tree.occupancy_profile().proportions(capacity))
            }
        }
    }

    fn aggregate(&self, _theory: (), trials: &[(usize, Vec<f64>)]) -> (usize, Vec<f64>) {
        let mut classes = ClassAccumulator::new();
        let mut operations = 0;
        for (ops, vector) in trials {
            operations = *ops;
            classes.push(vector);
        }
        (operations, classes.means())
    }
}

/// Runs the comparison: grow to `2·target`, churn down and up repeatedly,
/// end at `target` live points; compare against fresh builds of `target`
/// points.
pub fn run(config: &ExperimentConfig, capacity: usize, target: usize) -> ChurnResult {
    let engine = config.engine();
    let (total_ops, churned) = engine.run(&ChurnExperiment::new(
        *config,
        capacity,
        target,
        ChurnPhase::Churned,
    ));
    let (_, fresh) = engine.run(&ChurnExperiment::new(
        *config,
        capacity,
        target,
        ChurnPhase::Fresh,
    ));
    let tv_distance =
        popan_numeric::goodness::total_variation(&churned, &fresh).expect("same length");

    ChurnResult {
        capacity,
        live_points: target,
        operations: total_ops,
        churned,
        fresh,
        tv_distance,
    }
}

/// Renders the churn table.
pub fn table(config: &ExperimentConfig) -> TableData {
    let r = run(config, 4, config.points);
    let body = vec![
        vec![
            format!("churned ({} ops)", r.operations),
            format_distribution(&r.churned),
        ],
        vec!["fresh build".into(), format_distribution(&r.fresh)],
    ];
    TableData::new(
        "churn",
        format!(
            "Occupancy mix under deletion churn vs fresh build (m = {}, {} live points, extension)",
            r.capacity, r.live_points
        ),
        vec!["row".into(), "occupancy distribution".into()],
        body,
    )
    .with_note(format!(
        "TV distance {:.3}: merge-on-underflow makes the PR quadtree churn-proof \
         (deletion restores the fresh-build structure exactly)",
        r.tv_distance
    ))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn churn_does_not_shift_the_steady_state() {
        let cfg = ExperimentConfig {
            trials: 4,
            points: 800,
            ..ExperimentConfig::paper()
        };
        let r = run(&cfg, 4, 800);
        assert!(
            r.tv_distance < 0.03,
            "churned vs fresh TV distance {} (should be sampling noise only)",
            r.tv_distance
        );
        assert!(r.operations > 4 * 800, "churn actually happened");
    }

    #[test]
    fn holds_for_m1_too() {
        let cfg = ExperimentConfig {
            trials: 4,
            points: 500,
            ..ExperimentConfig::paper()
        };
        let r = run(&cfg, 1, 500);
        assert!(r.tv_distance < 0.04, "TV {}", r.tv_distance);
    }

    #[test]
    fn table_renders() {
        let t = table(&ExperimentConfig::quick());
        assert_eq!(t.rows.len(), 2);
        assert!(t.render().contains("churn-proof"));
    }
}
