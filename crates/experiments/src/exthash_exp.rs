//! Extension: the Fagin et al. baseline on real extendible hashing.
//!
//! The paper motivates population analysis against the statistical
//! tradition of Fagin et al. (1979), whose extendible-hashing analysis
//! "turns out also to apply to certain types of quadtrees" and already
//! exhibits the oscillation the paper names *phasing*. This experiment
//! builds real extendible hash tables along a geometric key-count ladder
//! and shows:
//!
//! * storage utilization oscillating around `ln 2 ≈ 0.693`;
//! * the oscillation period is ×2 in N (`log₂` phasing — the hashing
//!   analogue of the quadtree's ×4).

use crate::config::ExperimentConfig;
use crate::report::TableData;
use popan_core::phasing::analyze_phasing;
use popan_engine::{fingerprint_of, Experiment};
use popan_exthash::{fagin, ExtendibleHashTable};
use popan_rng::rngs::StdRng;
use popan_workload::keys::UniformKeys;
use popan_workload::{TrialRunner, Welford};

/// One ladder point.
#[derive(Debug, Clone, PartialEq)]
pub struct ExthashRow {
    /// Keys inserted.
    pub keys: usize,
    /// Mean bucket count over trials.
    pub buckets: f64,
    /// Mean storage utilization over trials.
    pub utilization: f64,
    /// Fagin prediction for the bucket count.
    pub predicted_buckets: f64,
}

/// Bucket capacity used for the sweep.
pub const BUCKET_CAPACITY: usize = 8;

/// The ×√2 key-count ladder (same shape as the paper's Tables 4–5).
pub fn ladder() -> Vec<usize> {
    (0..15)
        .map(|k| (256.0 * 2f64.powf(k as f64 / 2.0)).round() as usize)
        .collect()
}

/// One ladder point of the extendible-hashing sweep: `config.trials`
/// tables of `keys` uniform keys, reduced to mean bucket count and mean
/// utilization; theory = the Fagin bucket-count prediction.
#[derive(Debug, Clone)]
pub struct ExthashPointExperiment {
    config: ExperimentConfig,
    keys: usize,
}

impl ExthashPointExperiment {
    /// An instance for one key count.
    pub fn new(config: ExperimentConfig, keys: usize) -> Self {
        ExthashPointExperiment { config, keys }
    }
}

impl Experiment for ExthashPointExperiment {
    type Config = ExperimentConfig;
    type Theory = f64;
    type Trial = (f64, f64);
    type Summary = ExthashRow;

    fn name(&self) -> String {
        format!("exthash/n{}", self.keys)
    }

    fn config(&self) -> &ExperimentConfig {
        &self.config
    }

    fn fingerprint(&self) -> u64 {
        fingerprint_of(&[0xe8a5, self.keys as u64])
    }

    fn runner(&self) -> TrialRunner {
        self.config.runner(0xe8a5 ^ (self.keys as u64) << 20)
    }

    fn theory(&self) -> f64 {
        fagin::expected_bucket_count(self.keys, BUCKET_CAPACITY)
    }

    fn run_trial(&self, _t: usize, rng: &mut StdRng) -> (f64, f64) {
        let mut table = ExtendibleHashTable::new(BUCKET_CAPACITY).expect("capacity ≥ 1");
        for k in UniformKeys.sample_n(rng, self.keys) {
            table.insert(k);
        }
        (table.bucket_count() as f64, table.utilization())
    }

    fn aggregate(&self, theory: f64, trials: &[(f64, f64)]) -> ExthashRow {
        let mut buckets = Welford::new();
        let mut utilization = Welford::new();
        for &(b, u) in trials {
            buckets.push(b);
            utilization.push(u);
        }
        ExthashRow {
            keys: self.keys,
            buckets: buckets.mean(),
            utilization: utilization.mean(),
            predicted_buckets: theory,
        }
    }
}

/// Runs the sweep.
pub fn run(config: &ExperimentConfig) -> Vec<ExthashRow> {
    let engine = config.engine();
    ladder()
        .into_iter()
        .map(|n| engine.run(&ExthashPointExperiment::new(*config, n)))
        .collect()
}

/// Renders the baseline table.
pub fn table(config: &ExperimentConfig) -> TableData {
    let rows = run(config);
    let series: Vec<f64> = rows.iter().map(|r| r.utilization).collect();
    // b = 2 for hashing: utilization repeats every doubling of N, i.e.
    // every 2 samples on the ×√2 ladder.
    let report = analyze_phasing(&series, 2, 2f64.sqrt()).expect("long series");
    let body = rows
        .iter()
        .map(|r| {
            vec![
                r.keys.to_string(),
                format!("{:.1}", r.buckets),
                format!("{:.1}", r.predicted_buckets),
                format!("{:.3}", r.utilization),
            ]
        })
        .collect();
    TableData::new(
        "exthash",
        "Extendible hashing (Fagin baseline): utilization vs keys (extension)",
        vec![
            "keys".into(),
            "buckets (measured)".into(),
            "buckets (Fagin n/(b·ln2))".into(),
            "utilization".into(),
        ],
        body,
    )
    .with_note(format!(
        "expected utilization ln 2 = {:.4}; phasing amplitude {:.3} with period 2 samples (×2 in N)",
        fagin::expected_utilization(),
        report.metrics.amplitude,
    ))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg() -> ExperimentConfig {
        ExperimentConfig {
            trials: 5,
            ..ExperimentConfig::paper()
        }
    }

    #[test]
    fn utilization_oscillates_around_ln2() {
        let rows = run(&cfg());
        let mean: f64 = rows.iter().map(|r| r.utilization).sum::<f64>() / rows.len() as f64;
        assert!(
            (mean - fagin::expected_utilization()).abs() < 0.04,
            "mean utilization {mean} vs ln2"
        );
        for r in &rows {
            assert!(
                (0.55..=0.85).contains(&r.utilization),
                "n={}: utilization {}",
                r.keys,
                r.utilization
            );
        }
    }

    #[test]
    fn bucket_counts_track_fagin_prediction() {
        for r in run(&cfg()) {
            let ratio = r.buckets / r.predicted_buckets;
            assert!(
                (0.85..=1.20).contains(&ratio),
                "n={}: measured {} vs predicted {}",
                r.keys,
                r.buckets,
                r.predicted_buckets
            );
        }
    }

    #[test]
    fn phasing_has_period_two_on_sqrt2_ladder() {
        let rows = run(&cfg());
        let series: Vec<f64> = rows.iter().map(|r| r.utilization).collect();
        let report = analyze_phasing(&series, 2, 2f64.sqrt()).unwrap();
        assert_eq!(report.period_samples, 2);
        assert!(
            report.oscillates(0.1),
            "hashing utilization should phase: {:?}",
            report.metrics
        );
    }

    #[test]
    fn table_renders() {
        let t = table(&ExperimentConfig::quick());
        assert!(t.render().contains("ln 2"));
        assert_eq!(t.rows.len(), ladder().len());
    }
}
