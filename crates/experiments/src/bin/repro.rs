//! `repro` — regenerate every table and figure of the paper.
//!
//! ```text
//! cargo run -p popan-experiments --release --bin repro            # everything
//! cargo run -p popan-experiments --release --bin repro -- table1  # one artifact
//! cargo run -p popan-experiments --release --bin repro -- --list  # what exists
//! cargo run -p popan-experiments --release --bin repro -- --quick # fast pass
//! cargo run -p popan-experiments --release --bin repro -- --out EXPERIMENTS.md
//! cargo run -p popan-experiments --release --bin repro -- --json target/report
//! cargo run -p popan-experiments --release --bin repro -- --threads 4
//! cargo run -p popan-experiments --release --bin repro -- --resume target/ckpt
//! ```
//!
//! Experiments come from the registry (`popan_experiments::registry`);
//! any subset can be selected by id. `--out <path>` additionally writes
//! the full report as a Markdown file (ASCII figures fenced), `--json
//! <dir>` writes one JSON artifact per experiment, `--threads <n>` sets
//! `POPAN_THREADS` for the run (0 = available parallelism). SVG figures
//! land in `target/figures/`.
//!
//! ## Fault tolerance
//!
//! * `--resume <dir>` streams completed trials to JSONL checkpoints
//!   under `<dir>` and, on a re-run after a crash or kill, loads them
//!   instead of recomputing — the finished report is byte-identical to
//!   an uninterrupted run (sets `POPAN_CHECKPOINT`).
//! * `--retries <n>` grants each failed trial `n` deterministic re-runs
//!   (sets `POPAN_RETRIES`).
//! * `--faults <plan>` injects deterministic faults for testing the
//!   machinery, e.g. `table1/m4:2:panic` (sets `POPAN_FAULTS`).
//! * A driver that still fails is reported — in the report, and as
//!   `{"id":…,"error":…}` in its JSON artifact — while the remaining
//!   drivers run to completion; the exit code is then 1.

use popan_experiments::registry::{self, Artifact};
use popan_experiments::ExperimentConfig;
use std::io::Write;

fn render(artifact: &Artifact) -> String {
    let mut s = artifact.section();
    if let Artifact::Figure(fig) = artifact {
        if !fig.svg.is_empty() {
            let dir = std::path::Path::new("target/figures");
            if std::fs::create_dir_all(dir).is_ok() {
                let path = dir.join(format!("{}.svg", fig.id));
                if std::fs::write(&path, &fig.svg).is_ok() {
                    s.push_str(&format!("\n(SVG written to {})\n", path.display()));
                }
            }
        }
    }
    s
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let quick = args.iter().any(|a| a == "--quick");
    let value_of = |flag: &str| -> Option<String> {
        args.iter()
            .position(|a| a == flag)
            .and_then(|i| args.get(i + 1))
            .cloned()
    };
    let out_path = value_of("--out");
    let json_dir = value_of("--json");

    if args.iter().any(|a| a == "--list") {
        for e in registry::ALL {
            println!("{:14} {}", e.id, e.title);
        }
        return;
    }
    // Engine::from_env reads these at construction; setting them here
    // (before any engine exists) configures the whole run.
    if let Some(threads) = value_of("--threads") {
        std::env::set_var("POPAN_THREADS", threads);
    }
    if let Some(retries) = value_of("--retries") {
        std::env::set_var("POPAN_RETRIES", retries);
    }
    if let Some(faults) = value_of("--faults") {
        std::env::set_var("POPAN_FAULTS", faults);
    }
    if let Some(dir) = value_of("--resume") {
        std::env::set_var("POPAN_CHECKPOINT", dir);
    }
    // Fail a misconfigured run up front with the typed message, rather
    // than letting every driver warn-and-fall-back individually.
    if let Err(e) = popan_engine::Engine::try_from_env() {
        eprintln!("repro: {e}");
        std::process::exit(2);
    }

    let config = if quick {
        ExperimentConfig::quick()
    } else {
        ExperimentConfig::paper()
    };
    let flags_with_value = [
        "--out",
        "--json",
        "--threads",
        "--retries",
        "--faults",
        "--resume",
    ];
    let mut skip_next = false;
    let selected: Vec<&str> = args
        .iter()
        .filter(|a| {
            if skip_next {
                skip_next = false;
                return false;
            }
            if flags_with_value.contains(&a.as_str()) {
                skip_next = true;
                return false;
            }
            !a.starts_with("--")
        })
        .map(String::as_str)
        .collect();
    let selected: Vec<&str> = if selected.is_empty() {
        registry::ids()
    } else {
        for s in &selected {
            if registry::find(s).is_none() {
                eprintln!("unknown experiment {s:?}; known: {:?}", registry::ids());
                std::process::exit(2);
            }
        }
        selected
    };

    let header = format!(
        "# popan reproduction — Nelson & Samet, SIGMOD 1987\n\n\
         Seed {:#x}, {} trials per configuration, {} points per tree \
         (Tables 1–3); regenerate with `cargo run -p popan-experiments \
         --release --bin repro`.\n",
        config.master_seed, config.trials, config.points
    );

    let stdout = std::io::stdout();
    let mut out = stdout.lock();
    writeln!(out, "{header}").unwrap();

    let mut report = header;
    report.push('\n');

    if let Some(dir) = &json_dir {
        std::fs::create_dir_all(dir).unwrap_or_else(|e| {
            eprintln!("failed to create {dir}: {e}");
            std::process::exit(1);
        });
    }

    let mut failed: Vec<&str> = Vec::new();
    for id in selected {
        let experiment = registry::find(id).expect("validated above");
        // popan-lint: allow(D2, "operator progress display only; never enters an artifact")
        let t0 = std::time::Instant::now();
        let (section, json) = match experiment.try_run(&config) {
            Ok(artifact) => (render(&artifact), artifact.to_json()),
            Err(error) => {
                failed.push(id);
                eprintln!("repro: {id} FAILED: {error}");
                (
                    format!("## {id} — FAILED\n\n```text\n{error}\n```\n"),
                    format!(
                        "{{\"id\":{},\"error\":{}}}",
                        popan_experiments::report::json_string(id),
                        popan_experiments::report::json_string(&error),
                    ),
                )
            }
        };
        writeln!(out, "{section}").unwrap();
        writeln!(out, "  [{id} done in {:.1?}]\n", t0.elapsed()).unwrap();
        report.push_str(&section);
        report.push('\n');
        if let Some(dir) = &json_dir {
            let path = std::path::Path::new(dir).join(format!("{id}.json"));
            std::fs::write(&path, json).unwrap_or_else(|e| {
                eprintln!("failed to write {}: {e}", path.display());
                std::process::exit(1);
            });
        }
    }

    if let Some(path) = out_path {
        std::fs::write(&path, &report).unwrap_or_else(|e| {
            eprintln!("failed to write {path}: {e}");
            std::process::exit(1);
        });
        writeln!(out, "report written to {path}").unwrap();
    }
    if let Some(dir) = json_dir {
        writeln!(out, "JSON artifacts written to {dir}/").unwrap();
    }
    if !failed.is_empty() {
        eprintln!(
            "repro: {} experiment(s) failed: {}",
            failed.len(),
            failed.join(", ")
        );
        std::process::exit(1);
    }
}
