//! `repro` — regenerate every table and figure of the paper.
//!
//! ```text
//! cargo run -p popan-experiments --release --bin repro            # everything
//! cargo run -p popan-experiments --release --bin repro -- table1  # one artifact
//! cargo run -p popan-experiments --release --bin repro -- --list  # what exists
//! cargo run -p popan-experiments --release --bin repro -- --quick # fast pass
//! cargo run -p popan-experiments --release --bin repro -- --out EXPERIMENTS.md
//! cargo run -p popan-experiments --release --bin repro -- --json target/report
//! cargo run -p popan-experiments --release --bin repro -- --threads 4
//! ```
//!
//! Experiments come from the registry (`popan_experiments::registry`);
//! any subset can be selected by id. `--out <path>` additionally writes
//! the full report as a Markdown file (ASCII figures fenced), `--json
//! <dir>` writes one JSON artifact per experiment, `--threads <n>` sets
//! `POPAN_THREADS` for the run (0 = available parallelism). SVG figures
//! land in `target/figures/`.

use popan_experiments::registry::{self, Artifact};
use popan_experiments::ExperimentConfig;
use std::io::Write;

fn render(artifact: &Artifact) -> String {
    let mut s = artifact.section();
    if let Artifact::Figure(fig) = artifact {
        if !fig.svg.is_empty() {
            let dir = std::path::Path::new("target/figures");
            if std::fs::create_dir_all(dir).is_ok() {
                let path = dir.join(format!("{}.svg", fig.id));
                if std::fs::write(&path, &fig.svg).is_ok() {
                    s.push_str(&format!("\n(SVG written to {})\n", path.display()));
                }
            }
        }
    }
    s
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let quick = args.iter().any(|a| a == "--quick");
    let value_of = |flag: &str| -> Option<String> {
        args.iter()
            .position(|a| a == flag)
            .and_then(|i| args.get(i + 1))
            .cloned()
    };
    let out_path = value_of("--out");
    let json_dir = value_of("--json");

    if args.iter().any(|a| a == "--list") {
        for e in registry::ALL {
            println!("{:14} {}", e.id, e.title);
        }
        return;
    }
    if let Some(threads) = value_of("--threads") {
        // Engine::from_env reads POPAN_THREADS at construction; setting
        // it here (before any engine exists) configures the whole run.
        std::env::set_var("POPAN_THREADS", threads);
    }

    let config = if quick {
        ExperimentConfig::quick()
    } else {
        ExperimentConfig::paper()
    };
    let flags_with_value = ["--out", "--json", "--threads"];
    let mut skip_next = false;
    let selected: Vec<&str> = args
        .iter()
        .filter(|a| {
            if skip_next {
                skip_next = false;
                return false;
            }
            if flags_with_value.contains(&a.as_str()) {
                skip_next = true;
                return false;
            }
            !a.starts_with("--")
        })
        .map(String::as_str)
        .collect();
    let selected: Vec<&str> = if selected.is_empty() {
        registry::ids()
    } else {
        for s in &selected {
            if registry::find(s).is_none() {
                eprintln!("unknown experiment {s:?}; known: {:?}", registry::ids());
                std::process::exit(2);
            }
        }
        selected
    };

    let header = format!(
        "# popan reproduction — Nelson & Samet, SIGMOD 1987\n\n\
         Seed {:#x}, {} trials per configuration, {} points per tree \
         (Tables 1–3); regenerate with `cargo run -p popan-experiments \
         --release --bin repro`.\n",
        config.master_seed, config.trials, config.points
    );

    let stdout = std::io::stdout();
    let mut out = stdout.lock();
    writeln!(out, "{header}").unwrap();

    let mut report = header;
    report.push('\n');

    if let Some(dir) = &json_dir {
        std::fs::create_dir_all(dir).unwrap_or_else(|e| {
            eprintln!("failed to create {dir}: {e}");
            std::process::exit(1);
        });
    }

    for id in selected {
        let experiment = registry::find(id).expect("validated above");
        let t0 = std::time::Instant::now();
        let artifact = experiment.run(&config);
        let section = render(&artifact);
        writeln!(out, "{section}").unwrap();
        writeln!(out, "  [{id} done in {:.1?}]\n", t0.elapsed()).unwrap();
        report.push_str(&section);
        report.push('\n');
        if let Some(dir) = &json_dir {
            let path = std::path::Path::new(dir).join(format!("{id}.json"));
            std::fs::write(&path, artifact.to_json()).unwrap_or_else(|e| {
                eprintln!("failed to write {}: {e}", path.display());
                std::process::exit(1);
            });
        }
    }

    if let Some(path) = out_path {
        std::fs::write(&path, &report).unwrap_or_else(|e| {
            eprintln!("failed to write {path}: {e}");
            std::process::exit(1);
        });
        writeln!(out, "report written to {path}").unwrap();
    }
    if let Some(dir) = json_dir {
        writeln!(out, "JSON artifacts written to {dir}/").unwrap();
    }
}
