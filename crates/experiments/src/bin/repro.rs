//! `repro` — regenerate every table and figure of the paper.
//!
//! ```text
//! cargo run -p popan-experiments --release --bin repro            # everything
//! cargo run -p popan-experiments --release --bin repro -- table1  # one artifact
//! cargo run -p popan-experiments --release --bin repro -- --quick # fast pass
//! cargo run -p popan-experiments --release --bin repro -- --out EXPERIMENTS.md
//! ```
//!
//! `--out <path>` additionally writes the full report as a Markdown file
//! (ASCII figures fenced); SVG figures land in `target/figures/`.

use popan_experiments::table45::Workload;
use popan_experiments::{
    ablation, aging_exp, churn, dims, excell_exp, exthash_exp, figures, phasing_sweep, pmr_exp, skew, table1,
    table2, table3, table45, ExperimentConfig,
};
use std::io::Write;

const ALL: &[&str] = &[
    "fig1", "table1", "table2", "table3", "table4", "fig2", "table5", "fig3", "dims", "exthash",
    "excell", "pmr", "aging", "ablation", "skew", "churn", "phasing_sweep",
];

fn render_figure(fig: &popan_experiments::figures::Figure) -> String {
    let mut s = format!("## {} — {}\n\n```text\n{}```\n", fig.id, fig.caption, fig.ascii);
    if !fig.svg.is_empty() {
        let dir = std::path::Path::new("target/figures");
        if std::fs::create_dir_all(dir).is_ok() {
            let path = dir.join(format!("{}.svg", fig.id));
            if std::fs::write(&path, &fig.svg).is_ok() {
                s.push_str(&format!("\n(SVG written to {})\n", path.display()));
            }
        }
    }
    s
}

fn render(id: &str, config: &ExperimentConfig) -> String {
    match id {
        "fig1" => render_figure(&figures::fig1()),
        "fig2" => render_figure(&figures::fig2(config)),
        "fig3" => render_figure(&figures::fig3(config)),
        "table1" => table1::table(config).render(),
        "table2" => table2::table(config).render(),
        "table3" => table3::table(config).render(),
        "table4" => table45::table(config, Workload::Uniform).render(),
        "table5" => table45::table(config, Workload::Gaussian).render(),
        "dims" => dims::table(config).render(),
        "exthash" => exthash_exp::table(config).render(),
        "excell" => excell_exp::table(config).render(),
        "skew" => skew::table(config).render(),
        "churn" => churn::table(config).render(),
        "phasing_sweep" => phasing_sweep::table(config).render(),
        "pmr" => pmr_exp::table(config).render(),
        "aging" => aging_exp::table(config).render(),
        "ablation" => ablation::table(config).render(),
        other => unreachable!("validated in main: {other}"),
    }
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let quick = args.iter().any(|a| a == "--quick");
    let out_path = args
        .iter()
        .position(|a| a == "--out")
        .and_then(|i| args.get(i + 1))
        .cloned();
    let config = if quick {
        ExperimentConfig::quick()
    } else {
        ExperimentConfig::paper()
    };
    let mut skip_next = false;
    let selected: Vec<&str> = args
        .iter()
        .filter(|a| {
            if skip_next {
                skip_next = false;
                return false;
            }
            if *a == "--out" {
                skip_next = true;
                return false;
            }
            !a.starts_with("--")
        })
        .map(String::as_str)
        .collect();
    let selected: Vec<&str> = if selected.is_empty() {
        ALL.to_vec()
    } else {
        for s in &selected {
            if !ALL.contains(s) {
                eprintln!("unknown experiment {s:?}; known: {ALL:?}");
                std::process::exit(2);
            }
        }
        selected
    };

    let header = format!(
        "# popan reproduction — Nelson & Samet, SIGMOD 1987\n\n\
         Seed {:#x}, {} trials per configuration, {} points per tree \
         (Tables 1–3); regenerate with `cargo run -p popan-experiments \
         --release --bin repro`.\n",
        config.master_seed, config.trials, config.points
    );

    let stdout = std::io::stdout();
    let mut out = stdout.lock();
    writeln!(out, "{header}").unwrap();

    let mut report = header;
    report.push('\n');

    for id in selected {
        let t0 = std::time::Instant::now();
        let section = render(id, &config);
        writeln!(out, "{section}").unwrap();
        writeln!(out, "  [{id} done in {:.1?}]\n", t0.elapsed()).unwrap();
        report.push_str(&section);
        report.push('\n');
    }

    if let Some(path) = out_path {
        std::fs::write(&path, &report).unwrap_or_else(|e| {
            eprintln!("failed to write {path}: {e}");
            std::process::exit(1);
        });
        writeln!(out, "report written to {path}").unwrap();
    }
}
