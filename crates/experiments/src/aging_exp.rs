//! Extension: quantifying the aging correction.
//!
//! §IV argues qualitatively that weighting insertion probability by node
//! *area* (instead of node count) corrects the model's uniform
//! over-prediction. The area-weighted mean-field dynamics
//! ([`popan_core::dynamics::MeanFieldTree`]) implements that correction;
//! this experiment compares three numbers per capacity:
//!
//! 1. the count-proportional model's occupancy (the paper's theory
//!    column),
//! 2. the area-weighted mean-field occupancy (averaged over one phasing
//!    cycle),
//! 3. measured PR quadtrees (the paper's experiment column).
//!
//! The mean-field number should land between theory and measurement —
//! closing most of the aging gap.

use crate::config::ExperimentConfig;
use crate::report::TableData;
use popan_core::dynamics::MeanFieldTree;
use popan_core::{PrModel, SteadyStateSolver};
use popan_geom::Rect;
use popan_spatial::PrQuadtree;
use popan_workload::points::{PointSource, UniformRect};

/// Result for one capacity.
#[derive(Debug, Clone)]
pub struct AgingRow {
    /// Node capacity `m`.
    pub capacity: usize,
    /// Count-proportional model prediction (paper's theory).
    pub count_model: f64,
    /// Area-weighted mean-field prediction, cycle-averaged.
    pub mean_field: f64,
    /// Measured PR quadtree occupancy, cycle-averaged over tree sizes.
    pub measured: f64,
}

/// Cycle-averages the mean-field occupancy over one ×4 span starting at
/// `from_items`.
fn mean_field_cycle_average(capacity: usize, from_items: usize) -> f64 {
    let mut t = MeanFieldTree::new(4, capacity).expect("valid");
    t.run(from_items);
    let mut n = from_items;
    let mut samples = Vec::new();
    // 8 samples across one ×4 cycle.
    for k in 1..=8 {
        let target = (from_items as f64 * 4f64.powf(k as f64 / 8.0)) as usize;
        t.run(target - n);
        n = target;
        samples.push(t.average_occupancy());
    }
    samples.iter().sum::<f64>() / samples.len() as f64
}

/// Cycle-averages measured tree occupancy over one ×4 span of sizes.
fn measured_cycle_average(config: &ExperimentConfig, capacity: usize, from_points: usize) -> f64 {
    let sizes: Vec<usize> = (0..8)
        .map(|k| (from_points as f64 * 4f64.powf(k as f64 / 8.0)) as usize)
        .collect();
    let engine = config.engine();
    let mut samples = Vec::new();
    for n in sizes {
        let runner = config.runner(0xa9e ^ ((capacity as u64) << 40) ^ (n as u64));
        samples.push(engine.mean_trials(runner, |_, rng| {
            let tree =
                PrQuadtree::build(Rect::unit(), capacity, UniformRect::unit().sample_n(rng, n))
                    .expect("in-region points");
            tree.occupancy_profile().average_occupancy()
        }));
    }
    samples.iter().sum::<f64>() / samples.len() as f64
}

/// Runs the comparison for several capacities.
pub fn run(config: &ExperimentConfig, capacities: &[usize]) -> Vec<AgingRow> {
    capacities
        .iter()
        .map(|&m| {
            let model = PrModel::quadtree(m).expect("valid");
            let count_model = SteadyStateSolver::new()
                .solve(&model)
                .expect("solves")
                .distribution()
                .average_occupancy();
            AgingRow {
                capacity: m,
                count_model,
                mean_field: mean_field_cycle_average(m, 1000),
                measured: measured_cycle_average(config, m, 500),
            }
        })
        .collect()
}

/// Renders the aging-correction table.
pub fn table(config: &ExperimentConfig) -> TableData {
    let rows = run(config, &[1, 2, 4, 8]);
    let body = rows
        .iter()
        .map(|r| {
            vec![
                r.capacity.to_string(),
                format!("{:.3}", r.count_model),
                format!("{:.3}", r.mean_field),
                format!("{:.3}", r.measured),
                format!("{:+.1}%", 100.0 * (r.count_model - r.measured) / r.measured),
                format!("{:+.1}%", 100.0 * (r.mean_field - r.measured) / r.measured),
            ]
        })
        .collect();
    TableData::new(
        "aging",
        "Aging correction: count-proportional model vs area-weighted mean field (extension)",
        vec![
            "m".into(),
            "count model".into(),
            "area mean-field".into(),
            "measured".into(),
            "count err".into(),
            "mean-field err".into(),
        ],
        body,
    )
    .with_note(
        "the area weighting implements §IV's qualitative correction; its prediction \
         sits below the count model, closing most of the gap to measurement",
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mean_field_sits_between_theory_and_measurement() {
        let cfg = ExperimentConfig {
            trials: 3,
            ..ExperimentConfig::paper()
        };
        for row in run(&cfg, &[2, 4]) {
            assert!(
                row.mean_field < row.count_model,
                "m={}: mean field {} should undercut count model {}",
                row.capacity,
                row.mean_field,
                row.count_model
            );
            let count_err = (row.count_model - row.measured).abs();
            let mf_err = (row.mean_field - row.measured).abs();
            assert!(
                mf_err < count_err + 0.02,
                "m={}: mean-field error {mf_err:.3} should not exceed count-model error {count_err:.3}",
                row.capacity
            );
        }
    }

    #[test]
    fn count_model_overpredicts_measurement() {
        let cfg = ExperimentConfig {
            trials: 3,
            ..ExperimentConfig::paper()
        };
        for row in run(&cfg, &[4]) {
            assert!(
                row.count_model > row.measured,
                "aging bias must be positive"
            );
        }
    }

    #[test]
    fn table_renders() {
        let t = table(&ExperimentConfig::quick());
        assert_eq!(t.rows.len(), 4);
        assert!(t.render().contains("mean-field err"));
    }
}
