//! Tables 4 & 5 — variation of occupancy with tree size (phasing).
//!
//! `m = 8`, point counts along the ×√2 ladder 64…4096, 10 trees per
//! count. Table 4 uses uniform points: the average occupancy oscillates
//! with period ×4 in N and does not damp. Table 5 uses the centered
//! Gaussian: the oscillation damps as differently-dense regions drift out
//! of phase.

use crate::config::ExperimentConfig;
use crate::paper_data::SIZE_LADDER;
use crate::report::TableData;
use popan_core::phasing::{analyze_phasing, PhasingReport};
use popan_engine::{fingerprint_of, Experiment};
use popan_geom::Rect;
use popan_rng::rngs::StdRng;
use popan_spatial::PrQuadtree;
use popan_workload::points::{GaussianCentered, PointSource, UniformRect};
use popan_workload::{TrialRunner, Welford};

/// Node capacity used by the paper for these tables.
pub const CAPACITY: usize = 8;

/// Which workload drives the sweep.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Workload {
    /// Uniform over the unit square (Table 4 / Figure 2).
    Uniform,
    /// Gaussian, two standard deviations wide, centered (Table 5 /
    /// Figure 3).
    Gaussian,
}

/// One ladder point.
#[derive(Debug, Clone, PartialEq)]
pub struct SizeSweepRow {
    /// Number of points inserted.
    pub points: usize,
    /// Mean leaf count over trials.
    pub nodes: f64,
    /// Mean average occupancy over trials.
    pub occupancy: f64,
}

/// One ladder point of the Tables 4/5 size sweep: `config.trials` trees
/// of `points` points from `workload`, reduced to mean leaf count and
/// mean occupancy.
#[derive(Debug, Clone)]
pub struct SizePointExperiment {
    config: ExperimentConfig,
    workload: Workload,
    points: usize,
}

impl SizePointExperiment {
    /// An instance for one `(workload, tree size)` pair.
    pub fn new(config: ExperimentConfig, workload: Workload, points: usize) -> Self {
        SizePointExperiment {
            config,
            workload,
            points,
        }
    }
}

impl Experiment for SizePointExperiment {
    type Config = ExperimentConfig;
    type Theory = ();
    type Trial = (f64, f64);
    type Summary = SizeSweepRow;

    fn name(&self) -> String {
        let table = match self.workload {
            Workload::Uniform => "table4",
            Workload::Gaussian => "table5",
        };
        format!("{table}/n{}", self.points)
    }

    fn config(&self) -> &ExperimentConfig {
        &self.config
    }

    fn fingerprint(&self) -> u64 {
        let workload = match self.workload {
            Workload::Uniform => 0x7ab1e4,
            Workload::Gaussian => 0x7ab1e5,
        };
        fingerprint_of(&[workload, self.points as u64])
    }

    fn runner(&self) -> TrialRunner {
        let salt = match self.workload {
            Workload::Uniform => 0x7ab1e4,
            Workload::Gaussian => 0x7ab1e5,
        };
        self.config.runner(salt ^ (self.points as u64) << 24)
    }

    fn theory(&self) {}

    fn run_trial(&self, _t: usize, rng: &mut StdRng) -> (f64, f64) {
        let pts = match self.workload {
            Workload::Uniform => UniformRect::unit().sample_n(rng, self.points),
            Workload::Gaussian => {
                GaussianCentered::two_sigma_wide(Rect::unit()).sample_n(rng, self.points)
            }
        };
        let tree = PrQuadtree::build(Rect::unit(), CAPACITY, pts).expect("in-region points");
        let profile = tree.occupancy_profile();
        (profile.total_leaves() as f64, profile.average_occupancy())
    }

    fn aggregate(&self, _theory: (), trials: &[(f64, f64)]) -> SizeSweepRow {
        let mut nodes = Welford::new();
        let mut occupancy = Welford::new();
        for &(n, o) in trials {
            nodes.push(n);
            occupancy.push(o);
        }
        SizeSweepRow {
            points: self.points,
            nodes: nodes.mean(),
            occupancy: occupancy.mean(),
        }
    }
}

/// Runs the sweep for a workload over the paper's ladder.
pub fn run(config: &ExperimentConfig, workload: Workload) -> Vec<SizeSweepRow> {
    run_ladder(config, workload, &SIZE_LADDER)
}

/// Runs the sweep over an explicit ladder (test hook).
pub fn run_ladder(
    config: &ExperimentConfig,
    workload: Workload,
    ladder: &[usize],
) -> Vec<SizeSweepRow> {
    let engine = config.engine();
    ladder
        .iter()
        .map(|&n| engine.run(&SizePointExperiment::new(*config, workload, n)))
        .collect()
}

/// Phasing analysis of a sweep's occupancy series (period hypothesis:
/// ×4 in N = 4 samples on the ×√2 ladder).
pub fn phasing_report(rows: &[SizeSweepRow]) -> PhasingReport {
    let series: Vec<f64> = rows.iter().map(|r| r.occupancy).collect();
    analyze_phasing(&series, 4, 2f64.sqrt()).expect("series long enough")
}

/// Renders Table 4 (uniform) or Table 5 (Gaussian) with the paper's
/// printed values alongside.
pub fn table(config: &ExperimentConfig, workload: Workload) -> TableData {
    let rows = run(config, workload);
    let (id, title, paper): (&str, &str, &[(usize, f64, f64)]) = match workload {
        Workload::Uniform => (
            "table4",
            "Variation of occupancy with tree size (m = 8, uniform)",
            &crate::paper_data::TABLE4,
        ),
        Workload::Gaussian => (
            "table5",
            "Variation of occupancy with tree size (m = 8, Gaussian)",
            &crate::paper_data::TABLE5,
        ),
    };
    let body = rows
        .iter()
        .map(|r| {
            let p = paper.iter().find(|&&(n, _, _)| n == r.points);
            let (pn, po) = p.map(|&(_, n, o)| (n, o)).unwrap_or((f64::NAN, f64::NAN));
            vec![
                r.points.to_string(),
                format!("{:.1}", r.nodes),
                format!("{:.2}", r.occupancy),
                format!("{pn:.1}"),
                format!("{po:.2}"),
            ]
        })
        .collect();
    let report = phasing_report(&rows);
    TableData::new(
        id,
        title,
        vec![
            "points".into(),
            "nodes (ours)".into(),
            "occupancy (ours)".into(),
            "nodes (paper)".into(),
            "occupancy (paper)".into(),
        ],
        body,
    )
    .with_note(format!(
        "phasing: amplitude {:.2}, autocorrelation at period 4 = {:.2}, damping {:.2}",
        report.metrics.amplitude,
        report.metrics.autocorr_at_period.unwrap_or(f64::NAN),
        report.damping,
    ))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg() -> ExperimentConfig {
        ExperimentConfig {
            trials: 5,
            ..ExperimentConfig::paper()
        }
    }

    #[test]
    fn occupancy_equals_points_over_nodes() {
        let rows = run_ladder(&ExperimentConfig::quick(), Workload::Uniform, &[64, 128]);
        for r in rows {
            let implied = r.points as f64 / r.nodes;
            assert!(
                (implied - r.occupancy).abs() < 0.05,
                "n={}: {} vs {}",
                r.points,
                implied,
                r.occupancy
            );
        }
    }

    #[test]
    fn uniform_sweep_oscillates_without_damping() {
        let rows = run(&cfg(), Workload::Uniform);
        let report = phasing_report(&rows);
        assert!(
            report.oscillates(0.2),
            "uniform sweep should phase: {:?}",
            report.metrics
        );
        assert!(
            report.metrics.amplitude > 0.3,
            "amplitude {}",
            report.metrics.amplitude
        );
        assert!(
            !report.is_damped(0.45),
            "uniform phasing must not damp (damping {})",
            report.damping
        );
    }

    #[test]
    fn gaussian_sweep_damps_relative_to_uniform() {
        let uniform = phasing_report(&run(&cfg(), Workload::Uniform));
        let gauss = phasing_report(&run(&cfg(), Workload::Gaussian));
        // Late-series swing: Gaussian's is smaller than uniform's.
        let late = |r: &popan_core::phasing::PhasingReport| r.metrics.amplitude - r.damping;
        assert!(
            late(&gauss) < late(&uniform),
            "gaussian late swing {} vs uniform {}",
            late(&gauss),
            late(&uniform)
        );
    }

    #[test]
    fn occupancies_stay_in_paper_band() {
        // The paper's Table 4 occupancies live in [3.30, 4.15]; ours
        // (different RNG) should inhabit a similar band.
        let rows = run(&cfg(), Workload::Uniform);
        for r in &rows {
            assert!(
                (2.9..=4.6).contains(&r.occupancy),
                "n={}: occupancy {}",
                r.points,
                r.occupancy
            );
        }
        // Node counts grow with N.
        for w in rows.windows(2) {
            assert!(w[1].nodes > w[0].nodes * 0.9);
        }
    }

    #[test]
    fn tables_render_with_paper_columns() {
        let t4 = table(&ExperimentConfig::quick(), Workload::Uniform);
        assert_eq!(t4.id, "table4");
        assert_eq!(t4.rows.len(), 13);
        let t5 = table(&ExperimentConfig::quick(), Workload::Gaussian);
        assert_eq!(t5.id, "table5");
        assert!(t5.render().contains("Gaussian"));
    }
}
