//! Reproduction harness for every table and figure of the paper.
//!
//! Each experiment module exposes `run(&ExperimentConfig)` returning typed
//! rows plus a `table(...)`/`figure(...)` renderer producing the same
//! rows/series the paper prints, side by side with the published values
//! (embedded in [`paper_data`]).
//!
//! | module | paper artifact |
//! |---|---|
//! | [`table1`] | Table 1 — expected distribution, theory vs experiment |
//! | [`table2`] | Table 2 — average node occupancy + percent difference |
//! | [`table3`] | Table 3 — occupancy by node size (aging) |
//! | [`table45`] | Tables 4 & 5 — occupancy vs tree size (phasing), uniform & Gaussian |
//! | [`figures`] | Figures 1–3 — block diagram and semi-log plots |
//!
//! Extension experiments (beyond the published artifacts):
//!
//! | module | question |
//! |---|---|
//! | [`dims`] | does the model generalize across b = 2, 4, 8, 16? |
//! | [`exthash_exp`] | the Fagin baseline: utilization ≈ ln 2 with log₂ phasing |
//! | [`excell_exp`] | EXCELL vs PR quadtree: directory blow-up under clustering |
//! | [`pmr_exp`] | PMR quadtree model (local Monte-Carlo) vs simulation |
//! | [`query_exp`] | snapshot query tier: frozen directory population, serving accuracy |
//! | [`aging_exp`] | area-weighted mean-field vs count-proportional model |
//! | [`skew`] | skew-aware model vs multiplicative-cascade data |
//! | [`churn`] | does insert/delete churn shift the steady state? (no) |
//! | [`phasing_sweep`] | oscillation amplitude vs node capacity |
//! | [`split_exp`] | do measured depth/path-length slopes match the split-tree constants 1/μ? |
//! | [`ablation`] | solver ablation: fixed-point vs Newton, contraction rates |
//!
//! Run everything with `cargo run -p popan-experiments --release --bin
//! repro`, or a single experiment with `… --bin repro -- table1`.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod ablation;
pub mod aging_exp;
pub mod churn;
pub mod config;
pub mod dims;
pub mod excell_exp;
pub mod exthash_exp;
pub mod figures;
pub mod paper_data;
pub mod phasing_sweep;
pub mod plot;
pub mod pmr_exp;
pub mod query_exp;
pub mod registry;
pub mod report;
pub mod skew;
pub mod split_exp;
pub mod table1;
pub mod table2;
pub mod table3;
pub mod table45;

pub use config::ExperimentConfig;
pub use registry::{Artifact, RegisteredExperiment};
pub use report::TableData;
