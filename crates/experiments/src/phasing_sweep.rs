//! Extension: phasing amplitude as a function of node capacity.
//!
//! §IV: "This effect becomes more pronounced as the node capacity
//! increases since the probability of having a local density fluctuation
//! which would require splitting at more than one level decreases with
//! increasing m." This sweep measures the oscillation amplitude of the
//! occupancy-vs-size series for several capacities, on real trees and on
//! the deterministic mean-field dynamics (which isolates the phasing
//! mechanism from sampling noise).

use crate::config::ExperimentConfig;
use crate::report::TableData;
use popan_core::dynamics::MeanFieldTree;
use popan_core::phasing::analyze_phasing;
use popan_geom::Rect;
use popan_spatial::PrQuadtree;
use popan_workload::points::{PointSource, UniformRect};

/// Result for one capacity.
#[derive(Debug, Clone)]
pub struct PhasingSweepRow {
    /// Node capacity `m`.
    pub capacity: usize,
    /// Oscillation amplitude measured on real trees (×√2 ladder,
    /// trial-averaged), relative to the mean occupancy.
    pub measured_relative_amplitude: f64,
    /// Amplitude of the deterministic mean-field series, relative to its
    /// mean.
    pub mean_field_relative_amplitude: f64,
    /// Autocorrelation at the ×4 period (measured series).
    pub autocorr: f64,
}

fn ladder() -> Vec<usize> {
    (0..13)
        .map(|k| (64.0 * 2f64.powf(k as f64 / 2.0)).round() as usize)
        .collect()
}

/// Runs the sweep over `capacities`.
pub fn run(config: &ExperimentConfig, capacities: &[usize]) -> Vec<PhasingSweepRow> {
    let engine = config.engine();
    capacities
        .iter()
        .map(|&m| {
            // Measured series.
            let series: Vec<f64> = ladder()
                .into_iter()
                .map(|n| {
                    let runner = config.runner(0x9a5e ^ ((m as u64) << 40) ^ (n as u64));
                    engine.mean_trials(runner, |_, rng| {
                        let tree = PrQuadtree::build(
                            Rect::unit(),
                            m,
                            UniformRect::unit().sample_n(rng, n),
                        )
                        .expect("in-region points");
                        tree.occupancy_profile().average_occupancy()
                    })
                })
                .collect();
            let mean = series.iter().sum::<f64>() / series.len() as f64;
            let report = analyze_phasing(&series, 4, 2f64.sqrt()).expect("long series");

            // Mean-field series over the same ladder.
            let mut t = MeanFieldTree::new(4, m).expect("valid");
            let mut inserted = 0usize;
            let mf_series: Vec<f64> = ladder()
                .into_iter()
                .map(|n| {
                    t.run(n - inserted);
                    inserted = n;
                    t.average_occupancy()
                })
                .collect();
            let mf_mean = mf_series.iter().sum::<f64>() / mf_series.len() as f64;
            let mf_report = analyze_phasing(&mf_series, 4, 2f64.sqrt()).expect("long series");

            PhasingSweepRow {
                capacity: m,
                measured_relative_amplitude: report.metrics.amplitude / mean,
                mean_field_relative_amplitude: mf_report.metrics.amplitude / mf_mean,
                autocorr: report.metrics.autocorr_at_period.unwrap_or(f64::NAN),
            }
        })
        .collect()
}

/// Renders the sweep table.
pub fn table(config: &ExperimentConfig) -> TableData {
    let rows = run(config, &[1, 2, 4, 8, 16]);
    let body = rows
        .iter()
        .map(|r| {
            vec![
                r.capacity.to_string(),
                format!("{:.3}", r.measured_relative_amplitude),
                format!("{:.3}", r.mean_field_relative_amplitude),
                format!("{:+.2}", r.autocorr),
            ]
        })
        .collect();
    TableData::new(
        "phasing_sweep",
        "Phasing amplitude vs node capacity (uniform workload, extension)",
        vec![
            "m".into(),
            "relative amplitude (trees)".into(),
            "relative amplitude (mean field)".into(),
            "autocorr @ ×4".into(),
        ],
        body,
    )
    .with_note(
        "§IV: 'this effect becomes more pronounced as the node capacity increases' — \
         both the measured and the noise-free mean-field amplitudes grow with m",
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn amplitude_grows_with_capacity() {
        let cfg = ExperimentConfig {
            trials: 4,
            ..ExperimentConfig::paper()
        };
        let rows = run(&cfg, &[1, 4, 16]);
        // The paper's claim, on the noise-free mean-field series: strictly
        // increasing relative amplitude.
        assert!(
            rows[0].mean_field_relative_amplitude < rows[1].mean_field_relative_amplitude
                && rows[1].mean_field_relative_amplitude < rows[2].mean_field_relative_amplitude,
            "mean-field amplitudes {:?}",
            rows.iter()
                .map(|r| r.mean_field_relative_amplitude)
                .collect::<Vec<_>>()
        );
        // And the measured series shows m=16 well above m=1 (noise makes
        // strict monotonicity too brittle to assert).
        assert!(
            rows[2].measured_relative_amplitude > rows[0].measured_relative_amplitude,
            "measured amplitudes {:?}",
            rows.iter()
                .map(|r| r.measured_relative_amplitude)
                .collect::<Vec<_>>()
        );
    }

    #[test]
    fn high_capacity_series_is_period_aligned() {
        let cfg = ExperimentConfig {
            trials: 4,
            ..ExperimentConfig::paper()
        };
        let rows = run(&cfg, &[8]);
        assert!(rows[0].autocorr > 0.2, "autocorr {}", rows[0].autocorr);
    }

    #[test]
    fn table_renders() {
        let t = table(&ExperimentConfig::quick());
        assert_eq!(t.rows.len(), 5);
        assert!(t.render().contains("pronounced"));
    }
}
