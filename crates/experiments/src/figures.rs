//! Figures 1–3.
//!
//! * Figure 1 — the PR-quadtree block diagram for four points.
//! * Figure 2 — Table 4's occupancy-vs-size series on a semi-log plot
//!   (uniform workload; sustained oscillation).
//! * Figure 3 — Table 5's series (Gaussian workload; damped oscillation).
//!
//! Each figure renders both as ASCII (for the terminal) and as SVG (for
//! files); ours and the paper's published series are overlaid.

use crate::config::ExperimentConfig;
use crate::plot::{ascii_semilog, svg_semilog, Series};
use crate::table45::{run, Workload};
use popan_geom::{Point2, Rect};

/// A rendered figure.
#[derive(Debug, Clone)]
pub struct Figure {
    /// Figure id (`fig1`, `fig2`, `fig3`).
    pub id: String,
    /// Caption.
    pub caption: String,
    /// Terminal rendering.
    pub ascii: String,
    /// SVG rendering (empty for ASCII-only figures).
    pub svg: String,
}

/// Figure 1: the paper's four-point PR quadtree diagram.
pub fn fig1() -> Figure {
    // Four points chosen to reproduce the paper's diagram: one split
    // separates three of them, a second separates the close pair.
    let points = [
        Point2::new(0.20, 0.75),
        Point2::new(0.60, 0.80),
        Point2::new(0.85, 0.60),
        Point2::new(0.30, 0.25),
    ];
    let ascii = popan_spatial::visualize::figure1(Rect::unit(), &points);
    Figure {
        id: "fig1".into(),
        caption: "PR quadtree for four points: blocks are recursively quartered \
                  until no block contains more than one point"
            .into(),
        ascii,
        svg: String::new(),
    }
}

fn size_figure(config: &ExperimentConfig, workload: Workload) -> Figure {
    let rows = run(config, workload);
    let ours = Series::new(
        "ours",
        rows.iter()
            .map(|r| (r.points as f64, r.occupancy))
            .collect(),
    );
    let paper_rows: &[(usize, f64, f64)] = match workload {
        Workload::Uniform => &crate::paper_data::TABLE4,
        Workload::Gaussian => &crate::paper_data::TABLE5,
    };
    let paper = Series::new(
        "paper (1987)",
        paper_rows
            .iter()
            .map(|&(n, _, occ)| (n as f64, occ))
            .collect(),
    );
    let (id, caption) = match workload {
        Workload::Uniform => (
            "fig2",
            "Average node occupancy vs number of points, uniform distribution \
             (m = 8): sustained log-periodic oscillation",
        ),
        Workload::Gaussian => (
            "fig3",
            "Average node occupancy vs number of points, Gaussian distribution \
             (m = 8): oscillation damps out",
        ),
    };
    let series = [ours, paper];
    Figure {
        id: id.into(),
        caption: caption.into(),
        ascii: ascii_semilog(&series, 72, 18),
        svg: svg_semilog(&series, caption),
    }
}

/// Figure 2: uniform-workload occupancy series.
pub fn fig2(config: &ExperimentConfig) -> Figure {
    size_figure(config, Workload::Uniform)
}

/// Figure 3: Gaussian-workload occupancy series.
pub fn fig3(config: &ExperimentConfig) -> Figure {
    size_figure(config, Workload::Gaussian)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fig1_draws_four_points_and_nested_blocks() {
        let f = fig1();
        assert_eq!(f.id, "fig1");
        assert_eq!(f.ascii.matches('*').count(), 4);
        assert!(f.ascii.matches('+').count() > 4, "needs interior borders");
        assert!(f.svg.is_empty());
    }

    #[test]
    fn fig2_overlays_ours_and_paper() {
        let f = fig2(&ExperimentConfig::quick());
        assert_eq!(f.id, "fig2");
        assert!(f.ascii.contains("* = ours"));
        assert!(f.ascii.contains("o = paper"));
        assert!(f.svg.contains("<svg"));
        assert!(f.svg.contains("polyline"));
    }

    #[test]
    fn fig3_is_gaussian() {
        let f = fig3(&ExperimentConfig::quick());
        assert_eq!(f.id, "fig3");
        assert!(f.caption.contains("Gaussian"));
        assert!(f.svg.contains("damps"));
    }
}
