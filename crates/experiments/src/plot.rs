//! Minimal plotting: ASCII charts for the terminal and hand-rolled SVG
//! for files. Enough to regenerate the paper's Figures 2 and 3 (average
//! occupancy against the number of points on a semi-log axis).

/// A named data series.
#[derive(Debug, Clone)]
pub struct Series {
    /// Legend label.
    pub label: String,
    /// `(x, y)` points, x ascending.
    pub points: Vec<(f64, f64)>,
}

impl Series {
    /// Creates a series.
    pub fn new(label: impl Into<String>, points: Vec<(f64, f64)>) -> Self {
        Series {
            label: label.into(),
            points,
        }
    }
}

/// Renders series as an ASCII chart with a log₂ x-axis.
///
/// Each series gets a marker (`*`, `o`, `x`, `+`). The y-axis is linear
/// between the data's min and max (padded 5%).
pub fn ascii_semilog(series: &[Series], width: usize, height: usize) -> String {
    assert!(width >= 20 && height >= 5, "chart too small to render");
    assert!(!series.is_empty(), "nothing to plot");
    let markers = ['*', 'o', 'x', '+'];

    let xs: Vec<f64> = series
        .iter()
        .flat_map(|s| s.points.iter().map(|&(x, _)| x))
        .collect();
    let ys: Vec<f64> = series
        .iter()
        .flat_map(|s| s.points.iter().map(|&(_, y)| y))
        .collect();
    assert!(!xs.is_empty(), "series have no points");
    assert!(
        xs.iter().all(|&x| x > 0.0),
        "semi-log x-axis requires positive x"
    );
    let (x_lo, x_hi) = (
        xs.iter().copied().fold(f64::INFINITY, f64::min).log2(),
        xs.iter().copied().fold(f64::NEG_INFINITY, f64::max).log2(),
    );
    let (mut y_lo, mut y_hi) = (
        ys.iter().copied().fold(f64::INFINITY, f64::min),
        ys.iter().copied().fold(f64::NEG_INFINITY, f64::max),
    );
    let pad = ((y_hi - y_lo) * 0.05).max(1e-9);
    y_lo -= pad;
    y_hi += pad;

    let mut grid = vec![vec![' '; width]; height];
    for (si, s) in series.iter().enumerate() {
        let marker = markers[si % markers.len()];
        for &(x, y) in &s.points {
            let fx = if x_hi > x_lo {
                (x.log2() - x_lo) / (x_hi - x_lo)
            } else {
                0.5
            };
            let fy = (y - y_lo) / (y_hi - y_lo);
            let col = ((fx * (width - 1) as f64).round() as usize).min(width - 1);
            let row = height - 1 - ((fy * (height - 1) as f64).round() as usize).min(height - 1);
            grid[row][col] = marker;
        }
    }

    let mut out = String::new();
    for (r, row) in grid.iter().enumerate() {
        let y_label = if r == 0 {
            format!("{y_hi:7.2} ")
        } else if r == height - 1 {
            format!("{y_lo:7.2} ")
        } else {
            "        ".to_string()
        };
        out.push_str(&y_label);
        out.push('|');
        out.extend(row.iter());
        out.push('\n');
    }
    out.push_str("        +");
    out.push_str(&"-".repeat(width));
    out.push('\n');
    out.push_str(&format!(
        "         {:<10.0}{}{:>10.0}  (log₂ x)\n",
        2f64.powf(x_lo),
        " ".repeat(width.saturating_sub(20)),
        2f64.powf(x_hi)
    ));
    for (si, s) in series.iter().enumerate() {
        out.push_str(&format!(
            "         {} = {}\n",
            markers[si % markers.len()],
            s.label
        ));
    }
    out
}

/// Renders series as a self-contained SVG with a log₂ x-axis, polyline
/// per series, and a small legend.
pub fn svg_semilog(series: &[Series], title: &str) -> String {
    assert!(!series.is_empty(), "nothing to plot");
    const W: f64 = 640.0;
    const H: f64 = 400.0;
    const MARGIN: f64 = 50.0;
    let colors = ["#1f77b4", "#d62728", "#2ca02c", "#9467bd"];

    let xs: Vec<f64> = series
        .iter()
        .flat_map(|s| s.points.iter().map(|&(x, _)| x))
        .collect();
    let ys: Vec<f64> = series
        .iter()
        .flat_map(|s| s.points.iter().map(|&(_, y)| y))
        .collect();
    assert!(xs.iter().all(|&x| x > 0.0), "semi-log needs positive x");
    let x_lo = xs.iter().copied().fold(f64::INFINITY, f64::min).log2();
    let x_hi = xs.iter().copied().fold(f64::NEG_INFINITY, f64::max).log2();
    let mut y_lo = ys.iter().copied().fold(f64::INFINITY, f64::min);
    let mut y_hi = ys.iter().copied().fold(f64::NEG_INFINITY, f64::max);
    let pad = ((y_hi - y_lo) * 0.08).max(1e-9);
    y_lo -= pad;
    y_hi += pad;

    let px = |x: f64| MARGIN + (x.log2() - x_lo) / (x_hi - x_lo).max(1e-12) * (W - 2.0 * MARGIN);
    let py = |y: f64| H - MARGIN - (y - y_lo) / (y_hi - y_lo) * (H - 2.0 * MARGIN);

    let mut svg = String::new();
    svg.push_str(&format!(
        r#"<svg xmlns="http://www.w3.org/2000/svg" width="{W}" height="{H}" viewBox="0 0 {W} {H}">"#
    ));
    svg.push_str(&format!(
        r#"<rect width="{W}" height="{H}" fill="white"/><text x="{}" y="24" text-anchor="middle" font-size="15">{title}</text>"#,
        W / 2.0
    ));
    // Axes.
    svg.push_str(&format!(
        r#"<line x1="{m}" y1="{b}" x2="{r}" y2="{b}" stroke="black"/><line x1="{m}" y1="{t}" x2="{m}" y2="{b}" stroke="black"/>"#,
        m = MARGIN,
        r = W - MARGIN,
        t = MARGIN,
        b = H - MARGIN
    ));
    // X tick labels at powers of two.
    let mut p = x_lo.ceil() as i64;
    while (p as f64) <= x_hi {
        let x = px(2f64.powi(p as i32));
        svg.push_str(&format!(
            r#"<line x1="{x}" y1="{b}" x2="{x}" y2="{b2}" stroke="black"/><text x="{x}" y="{ty}" text-anchor="middle" font-size="10">{v}</text>"#,
            b = H - MARGIN,
            b2 = H - MARGIN + 5.0,
            ty = H - MARGIN + 18.0,
            v = 2f64.powi(p as i32) as u64,
        ));
        p += 1;
    }
    // Y tick labels.
    for k in 0..=4 {
        let y = y_lo + (y_hi - y_lo) * k as f64 / 4.0;
        svg.push_str(&format!(
            r#"<text x="{tx}" y="{ty}" text-anchor="end" font-size="10">{y:.2}</text>"#,
            tx = MARGIN - 6.0,
            ty = py(y) + 3.0,
        ));
    }
    // Series.
    for (si, s) in series.iter().enumerate() {
        let color = colors[si % colors.len()];
        let path: Vec<String> = s
            .points
            .iter()
            .map(|&(x, y)| format!("{:.1},{:.1}", px(x), py(y)))
            .collect();
        svg.push_str(&format!(
            r#"<polyline points="{}" fill="none" stroke="{color}" stroke-width="1.5"/>"#,
            path.join(" ")
        ));
        for &(x, y) in &s.points {
            svg.push_str(&format!(
                r#"<circle cx="{:.1}" cy="{:.1}" r="3" fill="{color}"/>"#,
                px(x),
                py(y)
            ));
        }
        svg.push_str(&format!(
            r#"<text x="{tx}" y="{ty}" font-size="11" fill="{color}">{label}</text>"#,
            tx = MARGIN + 8.0,
            ty = MARGIN + 14.0 + 14.0 * si as f64,
            label = s.label,
        ));
    }
    svg.push_str("</svg>");
    svg
}

#[cfg(test)]
mod tests {
    use super::*;

    fn demo_series() -> Vec<Series> {
        vec![
            Series::new(
                "ours",
                (0..13)
                    .map(|i| {
                        let n = 64.0 * 2f64.powf(i as f64 / 2.0);
                        (n, 3.7 + 0.4 * (i as f64 * 1.57).sin())
                    })
                    .collect(),
            ),
            Series::new("paper", vec![(64.0, 3.79), (1024.0, 3.84), (4096.0, 3.81)]),
        ]
    }

    #[test]
    fn ascii_chart_renders_markers_and_legend() {
        let s = ascii_semilog(&demo_series(), 60, 15);
        assert!(s.contains('*'));
        assert!(s.contains('o'));
        assert!(s.contains("* = ours"));
        assert!(s.contains("o = paper"));
        assert!(s.contains("log₂ x"));
    }

    #[test]
    fn ascii_chart_has_requested_dimensions() {
        let s = ascii_semilog(&demo_series(), 60, 15);
        let plot_lines = s.lines().filter(|l| l.contains('|')).count();
        assert_eq!(plot_lines, 15);
    }

    #[test]
    #[should_panic(expected = "too small")]
    fn ascii_chart_rejects_tiny_dimensions() {
        ascii_semilog(&demo_series(), 5, 2);
    }

    #[test]
    #[should_panic(expected = "positive x")]
    fn ascii_chart_rejects_nonpositive_x() {
        ascii_semilog(&[Series::new("bad", vec![(0.0, 1.0)])], 40, 10);
    }

    #[test]
    fn svg_is_well_formed_enough() {
        let svg = svg_semilog(&demo_series(), "Figure 2");
        assert!(svg.starts_with("<svg"));
        assert!(svg.ends_with("</svg>"));
        assert!(svg.contains("Figure 2"));
        assert!(svg.contains("polyline"));
        assert_eq!(svg.matches("<polyline").count(), 2);
        // Every circle closed.
        assert_eq!(svg.matches("<circle").count(), 13 + 3);
    }

    #[test]
    fn svg_places_x_ticks_at_powers_of_two() {
        let svg = svg_semilog(&demo_series(), "t");
        assert!(svg.contains(">64<"));
        assert!(svg.contains(">1024<"));
        assert!(svg.contains(">4096<"));
    }
}
