//! Extension: EXCELL vs the PR quadtree on uniform and clustered data.
//!
//! EXCELL (Tamminen 1981) and the PR quadtree share the bucket-splitting
//! discipline but differ in *where* refinement happens: the quadtree
//! splits only the overflowing path, EXCELL doubles a global cell
//! directory. On uniform data the two behave alike; on clustered data
//! EXCELL's directory explodes while its bucket count stays modest — the
//! trade-off the literature the paper cites (Tamminen '83, Regnier '85)
//! analyzes. This experiment measures both structures on both workloads.

use crate::config::ExperimentConfig;
use crate::report::TableData;
use popan_engine::{fingerprint_of, Experiment};
use popan_exthash::excell::ExcellGrid;
use popan_geom::Rect;
use popan_rng::rngs::StdRng;
use popan_spatial::PrQuadtree;
use popan_workload::points::{Clustered, PointSource, UniformRect};
use popan_workload::{TrialRunner, Welford};

/// One structure × workload measurement.
#[derive(Debug, Clone, PartialEq)]
pub struct ExcellRow {
    /// Structure name.
    pub structure: &'static str,
    /// Workload name.
    pub workload: &'static str,
    /// Mean buckets (EXCELL) or leaves (quadtree).
    pub buckets: f64,
    /// Mean directory cells (EXCELL) or total nodes (quadtree).
    pub directory: f64,
    /// Mean storage utilization (items / (buckets·capacity)).
    pub utilization: f64,
}

/// Bucket capacity / node capacity used.
pub const CAPACITY: usize = 8;

/// One trial's raw numbers: (EXCELL buckets, EXCELL cells, EXCELL
/// utilization, quadtree leaves, quadtree nodes, quadtree utilization).
type Measurement = (f64, f64, f64, f64, f64, f64);

/// One workload of the four-way comparison: trial = both structures'
/// counts on the same point set, summary = the EXCELL row and the PR
/// quadtree row for that workload.
#[derive(Debug, Clone)]
pub struct ExcellExperiment {
    config: ExperimentConfig,
    workload: &'static str,
    points: usize,
}

impl ExcellExperiment {
    /// An instance for one workload (`"uniform"` or `"clustered"`).
    pub fn new(config: ExperimentConfig, workload: &'static str, points: usize) -> Self {
        ExcellExperiment {
            config,
            workload,
            points,
        }
    }
}

impl Experiment for ExcellExperiment {
    type Config = ExperimentConfig;
    type Theory = ();
    type Trial = Measurement;
    type Summary = [ExcellRow; 2];

    fn name(&self) -> String {
        format!("excell/{}", self.workload)
    }

    fn config(&self) -> &ExperimentConfig {
        &self.config
    }

    fn fingerprint(&self) -> u64 {
        let workload = match self.workload {
            "uniform" => 0xecu64,
            _ => 0xec1,
        };
        fingerprint_of(&[workload, self.points as u64])
    }

    fn runner(&self) -> TrialRunner {
        let salt = match self.workload {
            "uniform" => 0xecu64,
            _ => 0xec1,
        };
        self.config.runner(salt)
    }

    fn theory(&self) {}

    fn run_trial(&self, _t: usize, rng: &mut StdRng) -> Measurement {
        let pts = match self.workload {
            "uniform" => UniformRect::unit().sample_n(rng, self.points),
            _ => {
                let src = Clustered::new(Rect::unit(), 8, 0.01, rng);
                src.sample_n(rng, self.points)
            }
        };
        let mut grid = ExcellGrid::new(Rect::unit(), CAPACITY).expect("valid");
        for p in &pts {
            grid.insert(*p).expect("in region");
        }
        let tree =
            PrQuadtree::build(Rect::unit(), CAPACITY, pts.iter().copied()).expect("in region");
        let profile = tree.occupancy_profile();
        (
            grid.bucket_count() as f64,
            grid.cell_count() as f64,
            grid.utilization(),
            profile.total_leaves() as f64,
            tree.node_count() as f64,
            profile.utilization(CAPACITY),
        )
    }

    fn aggregate(&self, _theory: (), trials: &[Measurement]) -> [ExcellRow; 2] {
        let mut stats = [(); 6].map(|_| Welford::new());
        for &(a, b, c, d, e, f) in trials {
            for (w, v) in stats.iter_mut().zip([a, b, c, d, e, f]) {
                w.push(v);
            }
        }
        [
            ExcellRow {
                structure: "EXCELL",
                workload: self.workload,
                buckets: stats[0].mean(),
                directory: stats[1].mean(),
                utilization: stats[2].mean(),
            },
            ExcellRow {
                structure: "PR quadtree",
                workload: self.workload,
                buckets: stats[3].mean(),
                directory: stats[4].mean(),
                utilization: stats[5].mean(),
            },
        ]
    }
}

/// Runs the four-way comparison.
pub fn run(config: &ExperimentConfig, points: usize) -> Vec<ExcellRow> {
    let engine = config.engine();
    ["uniform", "clustered"]
        .into_iter()
        .flat_map(|workload| engine.run(&ExcellExperiment::new(*config, workload, points)))
        .collect()
}

/// Renders the comparison table.
pub fn table(config: &ExperimentConfig) -> TableData {
    let rows = run(config, 4000);
    let body = rows
        .iter()
        .map(|r| {
            vec![
                r.structure.to_string(),
                r.workload.to_string(),
                format!("{:.0}", r.buckets),
                format!("{:.0}", r.directory),
                format!("{:.3}", r.utilization),
            ]
        })
        .collect();
    TableData::new(
        "excell",
        "EXCELL vs PR quadtree: buckets, directory/nodes, utilization (extension)",
        vec![
            "structure".into(),
            "workload".into(),
            "buckets/leaves".into(),
            "directory cells / tree nodes".into(),
            "utilization".into(),
        ],
        body,
    )
    .with_note(
        "EXCELL's global directory explodes under clustering while the quadtree's \
         node count grows only with the data — the weakness adaptive per-path \
         splitting avoids",
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg() -> ExperimentConfig {
        ExperimentConfig {
            trials: 3,
            ..ExperimentConfig::paper()
        }
    }

    #[test]
    fn similar_bucket_counts_on_uniform_data() {
        let rows = run(&cfg(), 3000);
        let excell = &rows[0];
        let quad = &rows[1];
        assert_eq!(excell.workload, "uniform");
        // Bucket counts within 2× of each other on uniform data.
        let ratio = excell.buckets / quad.buckets;
        assert!((0.5..=2.0).contains(&ratio), "ratio {ratio}");
        assert!(excell.utilization > 0.55);
    }

    #[test]
    fn clustering_explodes_excell_directory_not_quadtree_nodes() {
        let rows = run(&cfg(), 3000);
        let (excell_uni, quad_uni) = (&rows[0], &rows[1]);
        let (excell_clu, quad_clu) = (&rows[2], &rows[3]);
        // EXCELL's directory grows much faster under clustering than the
        // quadtree's node count does.
        let excell_blowup = excell_clu.directory / excell_uni.directory;
        let quad_blowup = quad_clu.directory / quad_uni.directory;
        assert!(
            excell_blowup > 4.0 * quad_blowup,
            "EXCELL blowup {excell_blowup:.1}× vs quadtree {quad_blowup:.1}×"
        );
        // Bucket counts stay comparable for both.
        assert!(excell_clu.buckets < 6.0 * quad_clu.buckets);
    }

    #[test]
    fn table_renders() {
        let t = table(&ExperimentConfig::quick());
        assert_eq!(t.rows.len(), 4);
        assert!(t.render().contains("EXCELL"));
    }
}
