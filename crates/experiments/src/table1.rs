//! Table 1 — expected distribution in PR quadtrees, theory vs experiment.
//!
//! For each node capacity `m = 1..=8`:
//! * **theory**: solve the `b = 4` PR population model for its steady
//!   state;
//! * **experiment**: build `trials` PR quadtrees of `points` uniform
//!   points each and average the leaf-occupancy proportion vectors.

use crate::config::ExperimentConfig;
use crate::report::{format_distribution, TableData};
use popan_core::{PrModel, SteadyStateSolver};
use popan_engine::{fingerprint_of, Experiment};
use popan_geom::Rect;
use popan_rng::rngs::StdRng;
use popan_spatial::PrQuadtree;
use popan_workload::points::{PointSource, UniformRect};
use popan_workload::{ClassAccumulator, TrialRunner, Welford};

/// Result for one node capacity.
#[derive(Debug, Clone, PartialEq)]
pub struct Table1Row {
    /// Node capacity `m`.
    pub capacity: usize,
    /// Theoretical expected distribution (solved model).
    pub theory: Vec<f64>,
    /// Experimental mean distribution over trials.
    pub experiment: Vec<f64>,
    /// Worst relative spread of per-trial average occupancy (the paper:
    /// "typically within about 10% of each other").
    pub trial_spread: f64,
}

/// The Table 1 experiment for one node capacity: theory = solved PR
/// model, trial = one tree's occupancy proportions + average occupancy.
#[derive(Debug, Clone)]
pub struct Table1Experiment {
    config: ExperimentConfig,
    capacity: usize,
}

impl Table1Experiment {
    /// An experiment instance for one capacity.
    pub fn new(config: ExperimentConfig, capacity: usize) -> Self {
        Table1Experiment { config, capacity }
    }
}

impl Experiment for Table1Experiment {
    type Config = ExperimentConfig;
    type Theory = Vec<f64>;
    type Trial = (Vec<f64>, f64);
    type Summary = Table1Row;

    fn name(&self) -> String {
        format!("table1/m{}", self.capacity)
    }

    fn config(&self) -> &ExperimentConfig {
        &self.config
    }

    fn fingerprint(&self) -> u64 {
        fingerprint_of(&[0x7ab1e1, self.capacity as u64, self.config.points as u64])
    }

    fn runner(&self) -> TrialRunner {
        self.config.runner(0x7ab1e1 ^ (self.capacity as u64) << 32)
    }

    fn theory(&self) -> Vec<f64> {
        let model = PrModel::quadtree(self.capacity).expect("capacity ≥ 1");
        SteadyStateSolver::new()
            .solve(&model)
            .expect("paper models solve")
            .distribution()
            .proportions()
            .to_vec()
    }

    fn run_trial(&self, _t: usize, rng: &mut StdRng) -> (Vec<f64>, f64) {
        let tree = PrQuadtree::build(
            Rect::unit(),
            self.capacity,
            UniformRect::unit().sample_n(rng, self.config.points),
        )
        .expect("points lie in the unit square");
        let profile = tree.occupancy_profile();
        (
            profile.proportions(self.capacity),
            profile.average_occupancy(),
        )
    }

    fn aggregate(&self, theory: Vec<f64>, trials: &[(Vec<f64>, f64)]) -> Table1Row {
        let mut classes = ClassAccumulator::new();
        let mut occupancy = Welford::new();
        for (vector, avg) in trials {
            classes.push(vector);
            occupancy.push(*avg);
        }
        Table1Row {
            capacity: self.capacity,
            theory,
            experiment: classes.means(),
            trial_spread: occupancy.relative_spread(),
        }
    }
}

/// Runs the experiment for capacities `1..=max_capacity`.
pub fn run(config: &ExperimentConfig, max_capacity: usize) -> Vec<Table1Row> {
    (1..=max_capacity)
        .map(|m| run_capacity(config, m))
        .collect()
}

/// Runs one capacity.
pub fn run_capacity(config: &ExperimentConfig, capacity: usize) -> Table1Row {
    config
        .engine()
        .run(&Table1Experiment::new(*config, capacity))
}

/// Renders the paper's Table 1 with the published values alongside.
pub fn table(config: &ExperimentConfig) -> TableData {
    let rows = run(config, 8);
    let mut out = Vec::new();
    for row in &rows {
        out.push(vec![
            row.capacity.to_string(),
            "thy (ours)".to_string(),
            format_distribution(&row.theory),
        ]);
        out.push(vec![
            String::new(),
            "thy (paper)".to_string(),
            format_distribution(crate::paper_data::TABLE1_THEORY[row.capacity - 1]),
        ]);
        out.push(vec![
            String::new(),
            "exp (ours)".to_string(),
            format_distribution(&row.experiment),
        ]);
        out.push(vec![
            String::new(),
            "exp (paper)".to_string(),
            format_distribution(crate::paper_data::TABLE1_EXPERIMENT[row.capacity - 1]),
        ]);
    }
    TableData::new(
        "table1",
        "Expected distribution in PR quadtrees: theoretical (thy) and experimental (exp)",
        vec![
            "bucket size".into(),
            "row".into(),
            "expected distribution vector".into(),
        ],
        out,
    )
    .with_note(format!(
        "experiment: {} trees × {} uniform points per capacity, master seed {:#x}",
        config.trials, config.points, config.master_seed
    ))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quick() -> ExperimentConfig {
        ExperimentConfig {
            trials: 4,
            points: 600,
            ..ExperimentConfig::paper()
        }
    }

    #[test]
    fn theory_matches_paper_print() {
        let row = run_capacity(&quick(), 2);
        for (i, &want) in crate::paper_data::TABLE1_THEORY[1].iter().enumerate() {
            assert!(
                (row.theory[i] - want).abs() < 2e-3,
                "i={i}: {} vs {want}",
                row.theory[i]
            );
        }
    }

    #[test]
    fn experiment_tracks_paper_experiment_shape() {
        // Experimental columns are stochastic: assert the paper's
        // qualitative claims — experiment has more empty nodes than
        // theory (aging) and the vectors are close overall.
        let row = run_capacity(&quick(), 2);
        assert!(
            row.experiment[0] > row.theory[0],
            "aging: measured empty fraction {} should exceed theory {}",
            row.experiment[0],
            row.theory[0]
        );
        let l1: f64 = row
            .experiment
            .iter()
            .zip(crate::paper_data::TABLE1_EXPERIMENT[1])
            .map(|(a, b)| (a - b).abs())
            .sum();
        assert!(l1 < 0.15, "L1 distance to paper experiment row: {l1}");
    }

    #[test]
    fn trial_spread_is_moderate() {
        // "Corresponding data points from different trees were typically
        // within about 10% of each other" — allow a loose band.
        let row = run_capacity(&quick(), 1);
        assert!(row.trial_spread < 0.25, "spread {}", row.trial_spread);
    }

    #[test]
    fn distributions_are_probability_vectors() {
        for row in run(&ExperimentConfig::quick(), 3) {
            let st: f64 = row.theory.iter().sum();
            let se: f64 = row.experiment.iter().sum();
            assert!((st - 1.0).abs() < 1e-9);
            assert!((se - 1.0).abs() < 1e-9);
            assert_eq!(row.theory.len(), row.capacity + 1);
            assert_eq!(row.experiment.len(), row.capacity + 1);
        }
    }

    #[test]
    fn table_renders_all_capacities() {
        let t = table(&ExperimentConfig::quick());
        assert_eq!(t.rows.len(), 8 * 4);
        let s = t.render();
        assert!(s.contains("thy (ours)"));
        assert!(s.contains("exp (paper)"));
    }
}
